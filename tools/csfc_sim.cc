// csfc_sim: command-line front end to the simulator. Generates (or
// replays) a workload, runs it through any registered scheduler, and
// prints the full metric set — the quickest way to explore the design
// space without writing C++.
//
// Flags come from the shared table in cli_flags.h (same workload and
// scheduler flags as csfc_serve); run `csfc_sim --help` for the full
// generated list. Configuration flows through ServerConfig, the same
// surface the service front-end builds from, so an offline replay and a
// service run of the same flags cannot drift apart.
//
// --trace-jsonl streams every lifecycle event of the run to FILE in the
// JSONL schema of DESIGN.md section 10 (inspect with trace_inspect).
// --json replaces the human-readable summary with RunMetrics::ToJson().
//
// Examples:
//   csfc_sim --sched=edf --count=5000 --interarrival=20
//   csfc_sim --sched=csfc --sfc1=diagonal --f=1 --r=3 --window=0.05
//   csfc_sim --sched=csfc --queue=flat --count=200000
//   csfc_sim --trace-in=load.trace --sched=scan-rt
//   csfc_sim --sched=csfc --trace-jsonl=run.jsonl && trace_inspect run.jsonl

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "exp/runner.h"
#include "obs/export.h"

using namespace csfc;

int main(int argc, char** argv) {
  tools::WorkloadFlags wf;
  wf.cfg.count = 5000;
  tools::SchedulerFlags sf;
  std::string trace_in, trace_out, trace_jsonl;
  bool json = false;
  bool list = false;

  tools::FlagSet flags("csfc_sim");
  flags.AddString("trace-in", "FILE", "replay a binary trace instead of generating",
                  &trace_in);
  flags.AddString("trace-out", "FILE", "save the generated workload as a binary trace",
                  &trace_out);
  flags.AddString("trace-jsonl", "FILE",
                  "stream lifecycle events as JSONL (DESIGN.md section 10)",
                  &trace_jsonl);
  flags.AddBool("json", "print RunMetrics as JSON instead of the summary",
                &json);
  flags.AddBool("list", "list registered schedulers and exit", &list);
  tools::AddSchedulerFlags(flags, &sf);
  tools::AddWorkloadFlags(flags, &wf);
  if (int rc = flags.Parse(argc, argv); rc != 0) return rc;

  if (list) {
    std::printf("schedulers:");
    for (auto n : AllSchedulerNames()) std::printf(" %s", std::string(n).c_str());
    std::printf("\n");
    return 0;
  }

  // Workload: trace replay or synthetic.
  std::vector<Request> trace;
  if (!trace_in.empty()) {
    auto loaded = LoadTrace(trace_in);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*loaded);
  } else {
    auto built = tools::BuildWorkload(wf);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*built);
  }
  if (!trace_out.empty()) {
    if (Status s = SaveTrace(trace_out, trace); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("trace written: %s (%zu requests)\n", trace_out.c_str(),
                trace.size());
  }

  ServerConfig config;
  if (Status s = tools::ApplySchedulerFlags(sf, wf, &config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }

  // Optional lifecycle trace, streamed to disk as the run progresses.
  std::optional<obs::FileWriter> trace_file;
  std::optional<obs::JsonlSink> trace_sink;
  if (!trace_jsonl.empty()) {
    auto opened = obs::FileWriter::Open(trace_jsonl);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    trace_file.emplace(std::move(*opened));
    trace_sink.emplace(*trace_file);
    config.WithTraceSink(&*trace_sink);
  }

  if (Status s = config.Validate(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  auto disk = DiskModel::Create(config.sim.disk);
  if (!disk.ok()) {
    std::fprintf(stderr, "%s\n", disk.status().ToString().c_str());
    return 1;
  }
  auto factory = config.MakeFactory(*disk);
  if (!factory.ok()) {
    std::fprintf(stderr, "%s\n", factory.status().ToString().c_str());
    return 1;
  }

  auto metrics = RunSchedulerOnTrace(config.sim, trace, *factory);
  if (!metrics.ok()) {
    std::fprintf(stderr, "%s\n", metrics.status().ToString().c_str());
    return 1;
  }
  const RunMetrics& m = *metrics;

  if (trace_sink) {
    if (!trace_sink->status().ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   trace_sink->status().ToString().c_str());
      return 1;
    }
    if (Status s = trace_file->Close(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written: %s (%llu events)\n",
                 trace_jsonl.c_str(),
                 static_cast<unsigned long long>(trace_sink->events_written()));
  }

  if (json) {
    std::printf("%s\n", m.ToJson().c_str());
    return 0;
  }
  std::printf("scheduler:        %s\n", config.scheduler.c_str());
  std::printf("requests:         %llu\n",
              static_cast<unsigned long long>(m.completions));
  std::printf("makespan:         %.1f ms\n", SimToMs(m.makespan));
  std::printf("mean response:    %.2f ms (max %.2f)\n", m.response_ms.mean(),
              m.response_ms.max());
  std::printf("total seek:       %.1f ms (mean %.3f ms/request)\n",
              m.total_seek_ms, m.mean_seek_ms());
  if (m.deadline_total > 0) {
    std::printf("deadline misses:  %llu / %llu (%.2f%%)\n",
                static_cast<unsigned long long>(m.deadline_misses),
                static_cast<unsigned long long>(m.deadline_total),
                100.0 * static_cast<double>(m.deadline_misses) /
                    static_cast<double>(m.deadline_total));
  }
  if (!m.inversions_per_dim.empty()) {
    std::printf("priority inversions:");
    for (size_t k = 0; k < m.inversions_per_dim.size(); ++k) {
      std::printf(" d%zu=%llu", k,
                  static_cast<unsigned long long>(m.inversions_per_dim[k]));
    }
    std::printf(" (total %llu, stddev %.1f)\n",
                static_cast<unsigned long long>(m.total_inversions()),
                m.inversion_stddev());
  }
  return 0;
}
