// csfc_sim: command-line front end to the simulator. Generates (or
// replays) a workload, runs it through any registered scheduler, and
// prints the full metric set — the quickest way to explore the design
// space without writing C++.
//
// Usage:
//   csfc_sim [--sched=NAME] [--workload=synthetic|mpeg|edl] [--users=N]
//            [--duration=MS] [--count=N] [--interarrival=MS] [--burst=N]
//            [--dims=D] [--levels=L] [--deadline=LO:HI | --relaxed]
//            [--bytes=LO:HI] [--seed=S] [--transfer-only]
//            [--trace-in=FILE] [--trace-out=FILE]
//            [--trace-jsonl=FILE] [--json]
//            [--sfc1=CURVE] [--f=F] [--r=R] [--window=W]
//            [--queue=flat|calendar]
//   csfc_sim --list
//
// --trace-jsonl streams every lifecycle event of the run to FILE in the
// JSONL schema of DESIGN.md section 10 (inspect with trace_inspect).
// --json replaces the human-readable summary with RunMetrics::ToJson().
//
// Examples:
//   csfc_sim --sched=edf --count=5000 --interarrival=20
//   csfc_sim --sched=csfc --sfc1=diagonal --f=1 --r=3 --window=0.05
//   csfc_sim --sched=csfc --queue=calendar --count=200000
//   csfc_sim --trace-in=load.trace --sched=scan-rt
//   csfc_sim --sched=csfc --trace-jsonl=run.jsonl && trace_inspect run.jsonl

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "core/presets.h"
#include "exp/runner.h"
#include "obs/export.h"
#include "sched/registry.h"
#include "workload/edl.h"
#include "workload/mpeg.h"
#include "workload/trace.h"

using namespace csfc;

namespace {

struct Args {
  std::string sched = "csfc";
  std::string workload = "synthetic";  // synthetic | mpeg | edl
  uint32_t users = 40;
  double duration_ms = 20000.0;
  WorkloadConfig workload_cfg;
  bool transfer_only = false;
  std::string trace_in;
  std::string trace_out;
  std::string trace_jsonl;
  bool json = false;
  std::string sfc1 = "hilbert";
  double f = 1.0;
  uint32_t r = 3;
  double window = 0.05;
  std::string queue = "flat";  // flat | calendar
  bool list = false;
};

bool ParseKv(const char* arg, const char* key, std::string* out) {
  const size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

bool ParseRange(const std::string& v, double* lo, double* hi) {
  const size_t colon = v.find(':');
  if (colon == std::string::npos) return false;
  *lo = std::atof(v.substr(0, colon).c_str());
  *hi = std::atof(v.substr(colon + 1).c_str());
  return true;
}

int Usage() {
  std::fprintf(stderr,
               "usage: csfc_sim [--sched=NAME] [--count=N] "
               "[--interarrival=MS] [--burst=N] [--dims=D] [--levels=L]\n"
               "                [--deadline=LO:HI | --relaxed] "
               "[--bytes=LO:HI] [--seed=S] [--transfer-only]\n"
               "                [--trace-in=F] [--trace-out=F] "
               "[--trace-jsonl=F] [--json]\n"
               "                [--sfc1=CURVE] [--f=F] [--r=R] [--window=W] "
               "[--queue=flat|calendar] | --list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  args.workload_cfg.count = 5000;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (std::strcmp(argv[i], "--list") == 0) {
      args.list = true;
    } else if (std::strcmp(argv[i], "--relaxed") == 0) {
      args.workload_cfg.relaxed_deadlines = true;
    } else if (std::strcmp(argv[i], "--transfer-only") == 0) {
      args.transfer_only = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      args.json = true;
    } else if (ParseKv(argv[i], "--sched", &v)) {
      args.sched = v;
    } else if (ParseKv(argv[i], "--workload", &v)) {
      args.workload = v;
    } else if (ParseKv(argv[i], "--users", &v)) {
      args.users = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseKv(argv[i], "--duration", &v)) {
      args.duration_ms = std::atof(v.c_str());
    } else if (ParseKv(argv[i], "--count", &v)) {
      args.workload_cfg.count = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseKv(argv[i], "--interarrival", &v)) {
      args.workload_cfg.mean_interarrival_ms = std::atof(v.c_str());
    } else if (ParseKv(argv[i], "--burst", &v)) {
      args.workload_cfg.burst_size = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseKv(argv[i], "--dims", &v)) {
      args.workload_cfg.priority_dims = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseKv(argv[i], "--levels", &v)) {
      args.workload_cfg.priority_levels =
          static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseKv(argv[i], "--deadline", &v)) {
      if (!ParseRange(v, &args.workload_cfg.deadline_lo_ms,
                      &args.workload_cfg.deadline_hi_ms)) {
        return Usage();
      }
    } else if (ParseKv(argv[i], "--bytes", &v)) {
      double lo, hi;
      if (!ParseRange(v, &lo, &hi)) return Usage();
      args.workload_cfg.bytes_lo = static_cast<uint64_t>(lo);
      args.workload_cfg.bytes_hi = static_cast<uint64_t>(hi);
    } else if (ParseKv(argv[i], "--seed", &v)) {
      args.workload_cfg.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseKv(argv[i], "--trace-in", &v)) {
      args.trace_in = v;
    } else if (ParseKv(argv[i], "--trace-out", &v)) {
      args.trace_out = v;
    } else if (ParseKv(argv[i], "--trace-jsonl", &v)) {
      args.trace_jsonl = v;
    } else if (ParseKv(argv[i], "--sfc1", &v)) {
      args.sfc1 = v;
    } else if (ParseKv(argv[i], "--f", &v)) {
      args.f = std::atof(v.c_str());
    } else if (ParseKv(argv[i], "--r", &v)) {
      args.r = static_cast<uint32_t>(std::atoi(v.c_str()));
    } else if (ParseKv(argv[i], "--window", &v)) {
      args.window = std::atof(v.c_str());
    } else if (ParseKv(argv[i], "--queue", &v)) {
      if (v != "flat" && v != "calendar") return Usage();
      args.queue = v;
    } else {
      return Usage();
    }
  }

  if (args.list) {
    std::printf("schedulers:");
    for (auto n : AllSchedulerNames()) std::printf(" %s", std::string(n).c_str());
    std::printf("\n");
    return 0;
  }

  // Workload: trace replay or synthetic.
  std::vector<Request> trace;
  if (!args.trace_in.empty()) {
    auto loaded = LoadTrace(args.trace_in);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    trace = std::move(*loaded);
  } else if (args.workload == "mpeg") {
    MpegWorkloadConfig mc;
    mc.seed = args.workload_cfg.seed;
    mc.num_users = args.users;
    mc.duration_ms = args.duration_ms;
    mc.user_phase_spread_ms = mc.PeriodMs() - mc.batch_jitter_ms;
    auto gen = MpegStreamGenerator::Create(mc);
    if (!gen.ok()) {
      std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
      return 1;
    }
    trace = DrainGenerator(**gen);
  } else if (args.workload == "edl") {
    EdlWorkloadConfig ec;
    ec.seed = args.workload_cfg.seed;
    ec.num_editors = args.users;
    auto gen = EdlWorkloadGenerator::Create(ec);
    if (!gen.ok()) {
      std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
      return 1;
    }
    trace = DrainGenerator(**gen);
  } else if (args.workload == "synthetic") {
    auto gen = SyntheticGenerator::Create(args.workload_cfg);
    if (!gen.ok()) {
      std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
      return 1;
    }
    trace = DrainGenerator(**gen);
  } else {
    std::fprintf(stderr, "unknown --workload=%s (synthetic|mpeg|edl)\n",
                 args.workload.c_str());
    return 2;
  }
  if (!args.trace_out.empty()) {
    if (Status s = SaveTrace(args.trace_out, trace); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("trace written: %s (%zu requests)\n", args.trace_out.c_str(),
                trace.size());
  }

  SimulatorConfig sc;
  sc.service_model = args.transfer_only ? ServiceModel::kTransferOnly
                                        : ServiceModel::kFullDisk;
  sc.metrics.dims = args.workload_cfg.priority_dims;
  sc.metrics.levels = args.workload_cfg.priority_levels;

  // Optional lifecycle trace, streamed to disk as the run progresses.
  std::optional<obs::FileWriter> trace_file;
  std::optional<obs::JsonlSink> trace_sink;
  if (!args.trace_jsonl.empty()) {
    auto opened = obs::FileWriter::Open(args.trace_jsonl);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    trace_file.emplace(std::move(*opened));
    trace_sink.emplace(*trace_file);
    sc.trace_sink = &*trace_sink;
  }

  auto disk = DiskModel::Create(sc.disk);
  if (!disk.ok()) {
    std::fprintf(stderr, "%s\n", disk.status().ToString().c_str());
    return 1;
  }
  SchedulerRegistryContext ctx;
  ctx.disk = &*disk;
  ctx.priority_levels = args.workload_cfg.priority_levels;
  ctx.cascaded = WithQueueBackend(
      PresetFull(args.sfc1, args.workload_cfg.priority_dims,
                 /*bits=*/4, args.f, args.r, sc.disk.cylinders, args.window,
                 args.workload_cfg.deadline_hi_ms),
      args.queue == "calendar" ? QueueBackend::kCalendar
                               : QueueBackend::kFlat);
  auto factory = MakeSchedulerFactory(args.sched, ctx);
  if (!factory.ok()) {
    std::fprintf(stderr, "%s\n", factory.status().ToString().c_str());
    return 1;
  }

  auto metrics = RunSchedulerOnTrace(sc, trace, *factory);
  if (!metrics.ok()) {
    std::fprintf(stderr, "%s\n", metrics.status().ToString().c_str());
    return 1;
  }
  const RunMetrics& m = *metrics;

  if (trace_sink) {
    if (!trace_sink->status().ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   trace_sink->status().ToString().c_str());
      return 1;
    }
    if (Status s = trace_file->Close(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written: %s (%llu events)\n",
                 args.trace_jsonl.c_str(),
                 static_cast<unsigned long long>(trace_sink->events_written()));
  }

  if (args.json) {
    std::printf("%s\n", m.ToJson().c_str());
    return 0;
  }
  std::printf("scheduler:        %s\n", args.sched.c_str());
  std::printf("requests:         %llu\n",
              static_cast<unsigned long long>(m.completions));
  std::printf("makespan:         %.1f ms\n", SimToMs(m.makespan));
  std::printf("mean response:    %.2f ms (max %.2f)\n", m.response_ms.mean(),
              m.response_ms.max());
  std::printf("total seek:       %.1f ms (mean %.3f ms/request)\n",
              m.total_seek_ms, m.mean_seek_ms());
  if (m.deadline_total > 0) {
    std::printf("deadline misses:  %llu / %llu (%.2f%%)\n",
                static_cast<unsigned long long>(m.deadline_misses),
                static_cast<unsigned long long>(m.deadline_total),
                100.0 * static_cast<double>(m.deadline_misses) /
                    static_cast<double>(m.deadline_total));
  }
  if (!m.inversions_per_dim.empty()) {
    std::printf("priority inversions:");
    for (size_t k = 0; k < m.inversions_per_dim.size(); ++k) {
      std::printf(" d%zu=%llu", k,
                  static_cast<unsigned long long>(m.inversions_per_dim[k]));
    }
    std::printf(" (total %llu, stddev %.1f)\n",
                static_cast<unsigned long long>(m.total_inversions()),
                m.inversion_stddev());
  }
  return 0;
}
