// csfc_golden: the cross-build golden-output ledger — the dynamic half of
// the determinism contract (csfc_analyze's determinism-taint / fp-contract
// / rng-seed-flow families are the static half; DESIGN.md section 14).
//
// A pinned matrix of simulator, service (RunVirtual), characterization and
// curve-encode configurations runs to completion; every byte each entry
// exports (the JSONL lifecycle trace, the final metrics document, the
// characterization values, the curve index tables) streams through an
// FNV-1a-64 HashWriter instead of a file. The resulting digests are
// checked against the committed tools/GOLDEN.json.
//
// CI runs `csfc_golden --verify` on four build flavors — default
// (RelWithDebInfo), Release, CSFC_SIMD=scalar, and UBSan — and all four
// must reproduce the committed digests bit for bit. That turns the repo's
// standing bit-identity claims (SIMD vs scalar kernels, calendar vs flat
// dispatch, RunVirtual vs the offline simulator, seeded RNG streams)
// from per-PR test assertions into a permanent cross-build gate: any
// codegen, libm, or ordering change that perturbs one exported byte
// fails the job.
//
// Usage:
//   csfc_golden --verify                  # default; exit 1 on any drift
//   csfc_golden --update                  # rewrite GOLDEN.json in place
//   csfc_golden --list                    # entry names, no runs
//   csfc_golden --only=sim/ --verify      # prefix-filter the matrix
//   csfc_golden --golden=FILE ...         # ledger path (default
//                                         # tools/GOLDEN.json, so running
//                                         # from the repo root just works)
//
// Regenerating after an intentional behavior change: run --update on the
// default build, commit the new GOLDEN.json, and say in the PR why the
// bytes moved. The four-flavor CI gate then re-proves the new bytes are
// build-invariant.

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "cli_flags.h"
#include "core/encapsulator.h"
#include "exp/runner.h"
#include "obs/export.h"
#include "obs/json.h"
#include "sfc/registry.h"

using namespace csfc;

namespace {

// ---------------------------------------------------------------------
// HashWriter: an obs::Writer that folds every appended byte into an
// FNV-1a-64 digest. Entries export through it exactly as they would
// export through a FileWriter, so the hash covers the real byte stream.

class HashWriter : public obs::Writer {
 public:
  Status Append(std::string_view data) override {
    for (const char c : data) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001B3ULL;
    }
    bytes_ += data.size();
    return Status::OK();
  }

  /// "fnv1a64:<16 hex digits>:<byte count>" — the byte count makes
  /// "hash moved" failures diagnosable at a glance (did the stream grow,
  /// shrink, or merely change?).
  std::string Digest() const {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "fnv1a64:%016llx:%llu",
                  static_cast<unsigned long long>(hash_),
                  static_cast<unsigned long long>(bytes_));
    return buf;
  }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
  uint64_t bytes_ = 0;
};

// ---------------------------------------------------------------------
// Matrix entries. Every entry is a pure function of its pinned config:
// no wall clocks, no environment (CSFC_SIMD is the sanctioned exception
// — the simd-scalar CI flavor exists precisely to prove it changes
// nothing), no entropy. Workload seeds are fixed here and nowhere else.

Result<std::vector<Request>> PinnedWorkload(const std::string& kind,
                                            uint64_t seed, uint64_t count) {
  tools::WorkloadFlags wf;
  wf.kind = kind;
  wf.cfg.seed = seed;
  wf.cfg.count = count;
  wf.users = 6;              // mpeg streams / edl editors
  wf.duration_ms = 3000.0;   // mpeg horizon
  return tools::BuildWorkload(wf);
}

/// Builds the ServerConfig the scheduler flags describe, the same path
/// csfc_sim and csfc_serve take, so the ledger pins the user-facing
/// configuration surface and not a hand-rolled twin of it.
Result<ServerConfig> PinnedConfig(const std::string& sched,
                                  const std::string& queue) {
  tools::WorkloadFlags wf;  // defaults only: dims/levels/deadline shape
  tools::SchedulerFlags sf;
  sf.sched = sched;
  sf.queue = queue;
  ServerConfig config;
  if (Status s = tools::ApplySchedulerFlags(sf, wf, &config); !s.ok()) {
    return s;
  }
  return config;
}

/// Offline simulator run: hashes the full JSONL lifecycle trace plus the
/// final RunMetrics document.
Result<std::string> SimDigest(const std::string& sched,
                              const std::string& queue,
                              const std::string& workload, uint64_t seed,
                              std::optional<uint64_t> latency_seed) {
  auto trace = PinnedWorkload(workload, seed, /*count=*/2000);
  if (!trace.ok()) return trace.status();
  auto config = PinnedConfig(sched, queue);
  if (!config.ok()) return config.status();
  config->sim.latency_seed = latency_seed;

  HashWriter hash;
  obs::JsonlSink sink(hash);
  config->WithTraceSink(&sink);
  if (Status s = config->Validate(); !s.ok()) return s;

  auto disk = DiskModel::Create(config->sim.disk);
  if (!disk.ok()) return disk.status();
  auto factory = config->MakeFactory(*disk);
  if (!factory.ok()) return factory.status();
  auto metrics = RunSchedulerOnTrace(config->sim, *trace, *factory);
  if (!metrics.ok()) return metrics.status();
  if (!sink.status().ok()) return sink.status();

  if (Status s = obs::Export(*metrics, hash, obs::ExportFormat::kJsonl);
      !s.ok()) {
    return s;
  }
  return hash.Digest();
}

/// Service front-end run in deterministic virtual time: hashes the event
/// stream RunVirtual emits plus the settled ServiceStats.
Result<std::string> ServeDigest(const std::string& sched) {
  auto trace = PinnedWorkload("synthetic", /*seed=*/42, /*count=*/1500);
  if (!trace.ok()) return trace.status();
  auto config = PinnedConfig(sched, "calendar");
  if (!config.ok()) return config.status();

  HashWriter hash;
  obs::JsonlSink sink(hash);
  config->WithTraceSink(&sink);
  if (Status s = config->Validate(); !s.ok()) return s;

  auto handle = MakeServer(*config);
  if (!handle.ok()) return handle.status();
  const svc::ServiceStats stats = handle->server->RunVirtual(std::move(*trace));
  if (!sink.status().ok()) return sink.status();

  obs::JsonWriter jw;
  jw.BeginObject()
      .Field("offered", stats.admission.offered)
      .Field("admitted", stats.admission.admitted)
      .Field("rejected_rate", stats.admission.rejected_rate)
      .Field("rejected_load", stats.admission.rejected_load)
      .Field("rejected_ring_full", stats.admission.rejected_ring_full)
      .Field("enqueued", stats.enqueued)
      .Field("dispatched", stats.dispatched)
      .Field("completions", stats.completions)
      .Field("p50_wait_ms", stats.p50_wait_ms)
      .Field("p99_wait_ms", stats.p99_wait_ms)
      .Field("p999_wait_ms", stats.p999_wait_ms)
      .Field("max_wait_ms", stats.max_wait_ms)
      .Field("mean_wait_ms", stats.mean_wait_ms)
      .EndObject();
  if (Status s = hash.Append(jw.str()); !s.ok()) return s;
  if (Status s = hash.Append("\n"); !s.ok()) return s;
  return hash.Digest();
}

/// Encapsulator characterization over a pinned request set under rolling
/// head positions: hashes one JSONL line per request. Batch and scalar
/// paths are cross-checked request for request, so the simd-scalar CI
/// flavor proves the kernel bit-identity claim against the same digest.
Result<std::string> CharacterizeDigest() {
  auto trace = PinnedWorkload("synthetic", /*seed=*/1234, /*count=*/1024);
  if (!trace.ok()) return trace.status();

  EncapsulatorConfig ec;  // hilbert, D=3, 4 bits, f=1, R=3, PanaViss-sized
  auto enc = Encapsulator::Create(ec);
  if (!enc.ok()) return enc.status();

  HashWriter hash;
  const size_t kBatch = 128;
  std::vector<const Request*> ptrs;
  std::vector<CValue> batch_v(kBatch);
  for (size_t base = 0; base < trace->size(); base += kBatch) {
    const size_t n = std::min(kBatch, trace->size() - base);
    ptrs.clear();
    for (size_t i = 0; i < n; ++i) ptrs.push_back(&(*trace)[base + i]);
    DispatchContext ctx;
    ctx.now = (*trace)[base].arrival;
    ctx.head = static_cast<Cylinder>((base * 97) % ec.cylinders);
    (*enc)->CharacterizeBatch({ptrs.data(), n}, ctx, {batch_v.data(), n});
    for (size_t i = 0; i < n; ++i) {
      const CValue scalar = (*enc)->Characterize(*ptrs[i], ctx);
      if (scalar != batch_v[i]) {
        return Status::Internal("characterize batch/scalar divergence at " +
                                std::to_string(base + i));
      }
      obs::JsonWriter jw;
      jw.BeginObject()
          .Field("i", static_cast<uint64_t>(base + i))
          .Field("vc", batch_v[i])
          .EndObject();
      if (Status s = hash.Append(jw.str()); !s.ok()) return s;
      if (Status s = hash.Append("\n"); !s.ok()) return s;
    }
  }
  return hash.Digest();
}

/// Full index tables of every registered curve over small 2-D and 3-D
/// grids, encoded through IndexBatch (the SIMD-dispatched path for
/// Z-order/Gray) with a Point() round-trip check per cell.
Result<std::string> CurvesDigest() {
  HashWriter hash;
  for (std::string_view name : AllCurveNames()) {
    for (const GridSpec spec : {GridSpec{2, 5}, GridSpec{3, 3}}) {
      char head[64];
      std::snprintf(head, sizeof(head), "%s d%u b%u:",
                    std::string(name).c_str(), spec.dims, spec.bits);
      if (Status s = hash.Append(head); !s.ok()) return s;
      auto curve = MakeCurve(name, spec);
      if (!curve.ok()) {
        // Some curves only support some shapes; pin the fact, not the
        // message (status text is free to improve without moving bytes).
        if (Status s = hash.Append(" unsupported\n"); !s.ok()) return s;
        continue;
      }
      const uint64_t cells = spec.num_cells();
      std::vector<uint32_t> flat;
      flat.reserve(cells * spec.dims);
      std::vector<uint32_t> point(spec.dims);
      for (uint64_t cell = 0; cell < cells; ++cell) {
        uint64_t rest = cell;
        for (uint32_t k = spec.dims; k-- > 0;) {
          point[k] = static_cast<uint32_t>(rest & (spec.side() - 1));
          rest >>= spec.bits;
        }
        flat.insert(flat.end(), point.begin(), point.end());
      }
      std::vector<uint64_t> idx(cells);
      (*curve)->IndexBatch({flat.data(), flat.size()},
                           {idx.data(), idx.size()});
      for (uint64_t cell = 0; cell < cells; ++cell) {
        (*curve)->Point(idx[cell], {point.data(), point.size()});
        uint64_t repacked = 0;
        for (uint32_t k = 0; k < spec.dims; ++k) {
          repacked = (repacked << spec.bits) | point[k];
        }
        if (repacked != cell) {
          return Status::Internal(std::string(name) +
                                  ": Point(Index) round-trip failed at cell " +
                                  std::to_string(cell));
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), " %llu",
                      static_cast<unsigned long long>(idx[cell]));
        if (Status s = hash.Append(buf); !s.ok()) return s;
      }
      if (Status s = hash.Append("\n"); !s.ok()) return s;
    }
  }
  return hash.Digest();
}

struct GoldenEntry {
  std::string name;
  Result<std::string> (*compute)(const GoldenEntry&);
  // SimDigest parameters (unused by the other entry kinds).
  std::string sched, queue, workload;
  uint64_t seed = 42;
  std::optional<uint64_t> latency_seed;
};

Result<std::string> ComputeSim(const GoldenEntry& e) {
  return SimDigest(e.sched, e.queue, e.workload, e.seed, e.latency_seed);
}
Result<std::string> ComputeServe(const GoldenEntry& e) {
  return ServeDigest(e.sched);
}
Result<std::string> ComputeCharacterize(const GoldenEntry&) {
  return CharacterizeDigest();
}
Result<std::string> ComputeCurves(const GoldenEntry&) {
  return CurvesDigest();
}

/// The pinned matrix. Names are stable identifiers — renaming one is a
/// ledger change and needs --update + review like any digest change.
std::vector<GoldenEntry> BuildMatrix() {
  std::vector<GoldenEntry> m;
  for (const char* sched : {"fcfs", "sstf", "edf", "scan-rt"}) {
    m.push_back({std::string("sim/") + sched + "/synthetic", ComputeSim,
                 sched, "calendar", "synthetic", 42, std::nullopt});
  }
  // The two dispatcher backends must hash identically-configured runs to
  // different names but equal streams is NOT required — what is required
  // is that each backend reproduces its own bytes on every build flavor
  // (the backend-equivalence property itself is a tier-1 test).
  m.push_back({"sim/csfc-flat/synthetic", ComputeSim, "csfc", "flat",
               "synthetic", 42, std::nullopt});
  m.push_back({"sim/csfc-calendar/synthetic", ComputeSim, "csfc", "calendar",
               "synthetic", 42, std::nullopt});
  m.push_back({"sim/csfc-calendar/mpeg", ComputeSim, "csfc", "calendar",
               "mpeg", 42, std::nullopt});
  m.push_back({"sim/csfc-calendar/edl", ComputeSim, "csfc", "calendar",
               "edl", 42, std::nullopt});
  // Seeded rotational latency: the one simulator path that draws from an
  // Rng at service time, pinning the xoshiro stream and the latency
  // distribution math across builds.
  m.push_back({"sim/csfc-calendar/synthetic-latency7", ComputeSim, "csfc",
               "calendar", "synthetic", 42, uint64_t{7}});
  m.push_back({"serve/csfc/virtual", ComputeServe, "csfc", "", "", 42,
               std::nullopt});
  m.push_back({"serve/edf/virtual", ComputeServe, "edf", "", "", 42,
               std::nullopt});
  m.push_back({"characterize/hilbert-f1-r3", ComputeCharacterize, "", "", "",
               42, std::nullopt});
  m.push_back({"curves/index-tables", ComputeCurves, "", "", "", 42,
               std::nullopt});
  return m;
}

// ---------------------------------------------------------------------
// Ledger I/O. GOLDEN.json is one flat JSON object (entry name -> digest
// string), one entry per line — parseable by obs::ParseFlatJsonObject
// and diffable by humans.

Result<obs::JsonObject> LoadLedger(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open golden ledger: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return obs::ParseFlatJsonObject(text);
}

Status SaveLedger(const std::string& path,
                  const std::vector<std::pair<std::string, std::string>>&
                      digests) {
  auto w = obs::FileWriter::Open(path);
  if (!w.ok()) return w.status();
  if (Status s = w->Append("{\n"); !s.ok()) return s;
  for (size_t i = 0; i < digests.size(); ++i) {
    const std::string line = "  \"" + obs::JsonEscape(digests[i].first) +
                             "\": \"" + obs::JsonEscape(digests[i].second) +
                             (i + 1 < digests.size() ? "\",\n" : "\"\n");
    if (Status s = w->Append(line); !s.ok()) return s;
  }
  if (Status s = w->Append("}\n"); !s.ok()) return s;
  return w->Close();
}

}  // namespace

int main(int argc, char** argv) {
  std::string golden_path = "tools/GOLDEN.json";
  std::string only;
  bool verify = false, update = false, list = false;

  tools::FlagSet flags("csfc_golden");
  flags.AddString("golden", "FILE", "ledger path (default tools/GOLDEN.json)",
                  &golden_path);
  flags.AddString("only", "PREFIX", "run only entries whose name starts with "
                  "PREFIX", &only);
  flags.AddBool("verify", "check digests against the ledger (default)",
                &verify);
  flags.AddBool("update", "recompute and rewrite the ledger", &update);
  flags.AddBool("list", "print entry names without running", &list);
  if (int rc = flags.Parse(argc, argv); rc != 0) return rc;
  if (update && verify) {
    std::fprintf(stderr, "csfc_golden: --verify and --update conflict\n");
    return 2;
  }

  const std::vector<GoldenEntry> matrix = BuildMatrix();
  if (list) {
    for (const GoldenEntry& e : matrix) std::printf("%s\n", e.name.c_str());
    return 0;
  }

  std::vector<std::pair<std::string, std::string>> digests;
  for (const GoldenEntry& e : matrix) {
    if (!only.empty() && e.name.rfind(only, 0) != 0) continue;
    auto digest = e.compute(e);
    if (!digest.ok()) {
      std::fprintf(stderr, "csfc_golden: %s: %s\n", e.name.c_str(),
                   digest.status().ToString().c_str());
      return 1;
    }
    digests.emplace_back(e.name, *digest);
  }
  if (digests.empty()) {
    std::fprintf(stderr, "csfc_golden: no entries match --only=%s\n",
                 only.c_str());
    return 2;
  }

  if (update) {
    if (!only.empty()) {
      std::fprintf(stderr,
                   "csfc_golden: --update rewrites the whole ledger and "
                   "cannot be combined with --only\n");
      return 2;
    }
    if (Status s = SaveLedger(golden_path, digests); !s.ok()) {
      std::fprintf(stderr, "csfc_golden: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("csfc_golden: wrote %zu digests to %s\n", digests.size(),
                golden_path.c_str());
    return 0;
  }

  // Verify (the default action).
  auto ledger = LoadLedger(golden_path);
  if (!ledger.ok()) {
    std::fprintf(stderr, "csfc_golden: %s\n",
                 ledger.status().ToString().c_str());
    return 1;
  }
  int drift = 0;
  for (const auto& [name, digest] : digests) {
    auto it = ledger->find(name);
    if (it == ledger->end()) {
      std::fprintf(stderr, "csfc_golden: MISSING  %s (run --update)\n",
                   name.c_str());
      ++drift;
    } else if (!it->second.is_string() || it->second.str != digest) {
      std::fprintf(stderr, "csfc_golden: DRIFT    %s\n  ledger: %s\n  build:  %s\n",
                   name.c_str(),
                   it->second.is_string() ? it->second.str.c_str() : "<non-string>",
                   digest.c_str());
      ++drift;
    } else {
      std::printf("csfc_golden: ok       %s  %s\n", name.c_str(),
                  digest.c_str());
    }
  }
  // Stale ledger rows only matter on a full run (--only legitimately
  // skips entries).
  if (only.empty()) {
    for (const auto& [name, value] : *ledger) {
      (void)value;
      bool known = false;
      for (const auto& [n, d] : digests) {
        (void)d;
        if (n == name) { known = true; break; }
      }
      if (!known) {
        std::fprintf(stderr,
                     "csfc_golden: STALE    %s (in ledger, not in matrix)\n",
                     name.c_str());
        ++drift;
      }
    }
  }
  if (drift > 0) {
    std::fprintf(stderr, "csfc_golden: %d entr%s drifted\n", drift,
                 drift == 1 ? "y" : "ies");
    return 1;
  }
  std::printf("csfc_golden: all %zu digests match %s\n", digests.size(),
              golden_path.c_str());
  return 0;
}
