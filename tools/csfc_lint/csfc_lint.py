#!/usr/bin/env python3
"""csfc_lint: static checks for repo contracts clang-tidy cannot know.

Rules (all scoped to src/, tools/, DESIGN.md — tests may break them):

  registry          Every Scheduler subclass in src/ must be constructible
                    through sched/registry.cc (make_unique<X> or X::Create),
                    so CLI tools and sweeps can reach every policy.
  trace-contract    Every TraceEventKind must have (a) an emission site in
                    src/ outside src/obs, (b) a schema entry in
                    tools/trace_inspect.cc, and (c) its wire name mentioned
                    in DESIGN.md section 10.
  no-std-function   src/core and src/sched hot paths must not use
                    std::function (FunctionRef or templates instead; the
                    one sanctioned use is the SchedulerFactory alias in
                    sched/scheduler.h — a cold-path factory seam).
  include-hygiene   src/core and src/sched may include from obs/ only the
                    tracer seam; the scheduler core must not grow a
                    dependency on sinks, recorders or exporters. The seam
                    set is read from tools/csfc_analyze/layers.toml (the
                    layering manifest csfc_analyze enforces in full), with
                    a builtin fallback when the manifest is absent.

The former textual `determinism` rule (rand/time/wall-clock token ban)
retired in favor of csfc_analyze's manifest-driven determinism families
(determinism-taint / fp-contract / rng-seed-flow, driven by
tools/csfc_analyze/determinism.toml) — the same single-source-of-truth
move that folded include-hygiene onto layers.toml.

Run `csfc_lint.py --repo <root>` (CI, and `cmake --build build --target
lint`); `--self-test` checks each rule catches a seeded violation.
Stdlib only. Exit code 0 = clean, 1 = findings, 2 = usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, NamedTuple

try:
    import tomllib
except ImportError:  # pragma: no cover - python < 3.11
    tomllib = None

CXX_SUFFIXES = (".h", ".cc")
LAYERS_MANIFEST = "tools/csfc_analyze/layers.toml"


class Finding(NamedTuple):
    rule: str
    path: str
    line: int  # 1-based; 0 = whole-file / cross-file finding
    message: str

    def render(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


# A "tree" is a {relative_posix_path: content} mapping. The real run loads
# it from disk; the self-test injects synthetic trees with seeded
# violations so every rule's detection logic stays covered.
Tree = Dict[str, str]


def load_tree(repo: Path) -> Tree:
    tree: Tree = {}
    for sub in ("src", "tools"):
        base = repo / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CXX_SUFFIXES and path.is_file():
                rel = path.relative_to(repo).as_posix()
                tree[rel] = path.read_text(encoding="utf-8")
    design = repo / "DESIGN.md"
    if design.is_file():
        tree["DESIGN.md"] = design.read_text(encoding="utf-8")
    manifest = repo / LAYERS_MANIFEST
    if manifest.is_file():
        tree[LAYERS_MANIFEST] = manifest.read_text(encoding="utf-8")
    return tree


RAW_STRING_RE = re.compile(r'(?:u8|[uUL])?R"([^()\\ \t\n]{0,16})\(')


def strip_comments(text: str) -> str:
    """Blanks // and /* */ comments, preserving line numbers.

    String-literal aware: comment markers inside "...", '...' and raw
    string literals R"tag(...)tag" do not start comments (an over-strip
    there would hide real code from the contract greps). A backslash-
    newline at the end of a // comment continues it onto the next line,
    matching the preprocessor's line splicing. Literal contents are kept
    verbatim — only comments are blanked.
    """
    out: List[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            # Line comment; an odd run of trailing backslashes before the
            # newline splices the next line into the comment.
            j = i
            while j < n:
                nl = text.find("\n", j)
                if nl < 0:
                    j = n
                    break
                k = nl - 1
                backslashes = 0
                while k >= i and text[k] == "\\":
                    backslashes += 1
                    k -= 1
                if backslashes % 2 == 1:
                    j = nl + 1
                    continue
                j = nl
                break
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            stop = n if end < 0 else end + 2
            out.append(re.sub(r"[^\n]", " ", text[i:stop]))
            i = stop
        elif c == '"' or (c in "uULR" and RAW_STRING_RE.match(text, i)):
            m = RAW_STRING_RE.match(text, i)
            if m:
                # Raw string: closes only at )tag" — quotes, // and */
                # inside are all literal.
                end = text.find(")" + m.group(1) + '"', m.end())
                stop = n if end < 0 else end + len(m.group(1)) + 2
                out.append(text[i:stop])
                i = stop
            else:
                j = i + 1
                while j < n and text[j] not in '"\n':
                    j += 2 if text[j] == "\\" else 1
                j = min(j + 1, n)
                out.append(text[i:j])
                i = j
        elif c == "'":
            # Char literal (or a digit separator pair, which is harmless
            # to copy verbatim the same way).
            j = i + 1
            while j < n and text[j] not in "'\n":
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# --- registry ---------------------------------------------------------------

SCHEDULER_CLASS_RE = re.compile(
    r"class\s+(\w+)\s+(?:final\s+)?:\s*public\s+Scheduler\b")


def check_registry(tree: Tree) -> List[Finding]:
    registry = tree.get("src/sched/registry.cc", "")
    registry_code = strip_comments(registry)
    findings: List[Finding] = []
    for path, text in tree.items():
        if not path.startswith("src/"):
            continue
        code = strip_comments(text)
        for m in SCHEDULER_CLASS_RE.finditer(code):
            name = m.group(1)
            if (f"make_unique<{name}>" in registry_code
                    or f"{name}::Create" in registry_code):
                continue
            findings.append(Finding(
                "registry", path, line_of(code, m.start()),
                f"scheduler {name} is not constructible via "
                f"sched/registry.cc — register it in MakeSchedulerFactory "
                f"(and AllSchedulerNames) so tools and sweeps can reach it"))
    return findings


# --- trace-contract ---------------------------------------------------------

ENUM_RE = re.compile(
    r"enum\s+class\s+TraceEventKind[^{]*\{(.*?)\}", re.DOTALL)
ENUMERATOR_RE = re.compile(r"\b(k[A-Z]\w*)\b")
# Matches both the {kind, "name"} table form and a case/return switch.
WIRE_NAME_RE = re.compile(
    r"TraceEventKind::(k\w+)[,:]\s*(?:return\s+)?\"(\w+)\"")


def design_section(tree: Tree, number: int) -> str:
    design = tree.get("DESIGN.md", "")
    m = re.search(rf"^## {number}\..*?(?=^## \d|\Z)", design,
                  re.DOTALL | re.MULTILINE)
    return m.group(0) if m else ""


def check_trace_contract(tree: Tree) -> List[Finding]:
    header = tree.get("src/obs/trace_event.h", "")
    enum_m = ENUM_RE.search(strip_comments(header))
    if enum_m is None:
        return [Finding("trace-contract", "src/obs/trace_event.h", 0,
                        "enum class TraceEventKind not found")]
    kinds = ENUMERATOR_RE.findall(enum_m.group(1))

    wire_names = dict(WIRE_NAME_RE.findall(
        strip_comments(tree.get("src/obs/trace_event.cc", ""))))

    emitters = "\n".join(
        strip_comments(text) for path, text in sorted(tree.items())
        if path.startswith("src/") and not path.startswith("src/obs/"))
    inspector = strip_comments(tree.get("tools/trace_inspect.cc", ""))
    section10 = design_section(tree, 10)

    findings: List[Finding] = []
    for kind in kinds:
        if f"TraceEventKind::{kind}" not in emitters:
            findings.append(Finding(
                "trace-contract", "src/obs/trace_event.h", 0,
                f"TraceEventKind::{kind} has no emission site in src/ — "
                f"dead event kinds rot the schema; emit it or remove it"))
        if not re.search(rf"\b{kind}\b", inspector):
            findings.append(Finding(
                "trace-contract", "tools/trace_inspect.cc", 0,
                f"TraceEventKind::{kind} has no schema entry in "
                f"trace_inspect — the validator would pass unknown "
                f"payloads for it"))
        name = wire_names.get(kind)
        if name is None:
            findings.append(Finding(
                "trace-contract", "src/obs/trace_event.cc", 0,
                f"TraceEventKind::{kind} has no wire name in "
                f"TraceEventKindName"))
        elif name not in section10:
            findings.append(Finding(
                "trace-contract", "DESIGN.md", 0,
                f"trace event \"{name}\" is not documented in DESIGN.md "
                f"section 10"))
    return findings


# --- no-std-function --------------------------------------------------------

# The one sanctioned std::function in the scheduler layer: the factory
# alias. Factories run once per sweep point, never per request.
STD_FUNCTION_ALLOWED = {
    ("src/sched/scheduler.h", "SchedulerFactory"),
}


def check_no_std_function(tree: Tree) -> List[Finding]:
    findings: List[Finding] = []
    for path, text in sorted(tree.items()):
        if not (path.startswith("src/core/") or path.startswith("src/sched/")):
            continue
        code = strip_comments(text)
        for m in re.finditer(r"std::function\b", code):
            ln = line_of(code, m.start())
            line_text = code.splitlines()[ln - 1]
            if any(path == p and marker in line_text
                   for p, marker in STD_FUNCTION_ALLOWED):
                continue
            findings.append(Finding(
                "no-std-function", path, ln,
                "std::function in a scheduler hot path — use FunctionRef "
                "(common/function_ref.h) or a template parameter"))
    return findings


# --- include-hygiene --------------------------------------------------------

TRACER_SEAM = {"obs/tracer.h", "obs/trace_event.h"}
INCLUDE_RE = re.compile(r"#\s*include\s+\"(obs/[^\"]+)\"")


def tracer_seam(tree: Tree) -> set:
    """The obs/ headers the scheduler core may include.

    Single source of truth is the [seam] table in the layering manifest
    (tools/csfc_analyze/layers.toml, enforced in full by csfc_analyze);
    the builtin set is a fallback for trees without the manifest.
    """
    text = tree.get(LAYERS_MANIFEST)
    if text is None or tomllib is None:
        return TRACER_SEAM
    try:
        headers = tomllib.loads(text).get("seam", {}).get("headers", [])
    except Exception:
        return TRACER_SEAM
    seam = {h for h in headers if h.startswith("obs/")}
    return seam or TRACER_SEAM


def check_include_hygiene(tree: Tree) -> List[Finding]:
    seam = tracer_seam(tree)
    findings: List[Finding] = []
    for path, text in sorted(tree.items()):
        if not (path.startswith("src/core/") or path.startswith("src/sched/")):
            continue
        code = strip_comments(text)
        for m in INCLUDE_RE.finditer(code):
            inc = m.group(1)
            if inc in seam:
                continue
            findings.append(Finding(
                "include-hygiene", path, line_of(code, m.start()),
                f"#include \"{inc}\": the scheduler core may only see the "
                f"tracer seam ({', '.join(sorted(seam))}, from "
                f"{LAYERS_MANIFEST}) — sinks and exporters stay outside "
                f"the hot path"))
    return findings


ALL_CHECKS = [
    check_registry,
    check_trace_contract,
    check_no_std_function,
    check_include_hygiene,
]


def run_checks(tree: Tree) -> List[Finding]:
    findings: List[Finding] = []
    for check in ALL_CHECKS:
        findings.extend(check(tree))
    return findings


# --- self-test --------------------------------------------------------------

def _clean_tree() -> Tree:
    """A minimal tree satisfying every rule."""
    return {
        "src/sched/scheduler.h":
            "class Scheduler {};\n"
            "using SchedulerFactory = std::function<SchedulerPtr()>;\n",
        "src/sched/fancy.h":
            "class FancyScheduler final : public Scheduler {};\n",
        "src/sched/registry.cc":
            "factory = std::make_unique<FancyScheduler>();\n",
        "src/obs/trace_event.h":
            "enum class TraceEventKind : uint8_t { kArrival, kDispatch };\n",
        "src/obs/trace_event.cc":
            "case TraceEventKind::kArrival: return \"arrival\";\n"
            "case TraceEventKind::kDispatch: return \"dispatch\";\n",
        "src/sim/simulator.cc":
            "e.kind = obs::TraceEventKind::kArrival;\n"
            "e.kind = obs::TraceEventKind::kDispatch;\n",
        "tools/trace_inspect.cc":
            "case K::kArrival: break;\ncase K::kDispatch: break;\n",
        "src/core/dispatcher.h":
            "#include \"obs/tracer.h\"\n// std::function would be flagged\n",
        "DESIGN.md":
            "## 10. Observability\narrival dispatch\n## 11. Next\n",
    }


def self_test() -> int:
    failures: List[str] = []

    def expect(name: str, findings: List[Finding], rule: str, fragment: str):
        hits = [f for f in findings if f.rule == rule and fragment in f.message]
        if not hits:
            failures.append(
                f"{name}: expected a [{rule}] finding mentioning "
                f"{fragment!r}, got {[f.render() for f in findings]}")

    clean = _clean_tree()
    residue = run_checks(clean)
    if residue:
        failures.append("clean tree not clean: "
                        + "; ".join(f.render() for f in residue))

    # 1. Unregistered scheduler subclass.
    t = _clean_tree()
    t["src/sched/rogue.h"] = "class RogueScheduler final : public Scheduler {};\n"
    expect("unregistered-scheduler", run_checks(t), "registry",
           "RogueScheduler")

    # 2. std::function on a core hot path (comments must NOT trip it).
    t = _clean_tree()
    t["src/core/dispatcher.h"] += "std::function<void()> hook_;\n"
    expect("std-function-in-core", run_checks(t), "no-std-function",
           "std::function")

    # 3. TraceEventKind missing from the trace_inspect schema.
    t = _clean_tree()
    t["src/obs/trace_event.h"] = (
        "enum class TraceEventKind : uint8_t { kArrival, kDispatch, "
        "kRetry };\n")
    t["src/obs/trace_event.cc"] += (
        "case TraceEventKind::kRetry: return \"retry\";\n")
    t["src/sim/simulator.cc"] += "e.kind = obs::TraceEventKind::kRetry;\n"
    t["DESIGN.md"] = "## 10. Observability\narrival dispatch retry\n## 11. N\n"
    expect("missing-schema-entry", run_checks(t), "trace-contract",
           "no schema entry")

    # 3b. Kind that is never emitted, and one missing from DESIGN §10.
    t = _clean_tree()
    t["src/obs/trace_event.h"] = (
        "enum class TraceEventKind : uint8_t { kArrival, kDispatch, "
        "kGhost };\n")
    t["src/obs/trace_event.cc"] += (
        "case TraceEventKind::kGhost: return \"ghost\";\n")
    t["tools/trace_inspect.cc"] += "case K::kGhost: break;\n"
    found = run_checks(t)
    expect("unemitted-kind", found, "trace-contract", "no emission site")
    expect("undocumented-kind", found, "trace-contract", "not documented")

    # 4. (retired) The textual determinism rule moved to csfc_analyze's
    # manifest-driven families — determinism-taint / fp-contract /
    # rng-seed-flow, driven by tools/csfc_analyze/determinism.toml — which
    # see annotations and the call graph instead of banning tokens. Assert
    # the retirement so a stray reintroduction of the old rule fails loudly.
    t = _clean_tree()
    t["src/sim/simulator.cc"] += "int jitter = rand() % 7;\n"
    leftovers = [f for f in run_checks(t) if f.rule == "determinism"]
    if leftovers:
        failures.append(
            "determinism rule should be retired (csfc_analyze owns it): "
            + "; ".join(f.render() for f in leftovers))

    # 5. Core reaching past the tracer seam into a sink.
    t = _clean_tree()
    t["src/core/dispatcher.h"] += "#include \"obs/recorder.h\"\n"
    expect("core-includes-sink", run_checks(t), "include-hygiene",
           "obs/recorder.h")

    # Comment-stripping control: violations in comments are not findings.
    t = _clean_tree()
    t["src/core/dispatcher.h"] += (
        "// std::function and rand() and #include \"obs/export.h\"\n"
        "/* std::random_device too */\n")
    residue = [f for f in run_checks(t)
               if f.path == "src/core/dispatcher.h"]
    if residue:
        failures.append("commented-out violations were flagged: "
                        + "; ".join(f.render() for f in residue))

    # 6. Stripper hardening: a // inside a string literal must not blank
    # the rest of the line (over-stripping hides real violations).
    t = _clean_tree()
    t["src/core/dispatcher.h"] += (
        "const char* url = \"http://x\"; std::function<void()> f;\n")
    expect("slash-slash-in-string", run_checks(t), "no-std-function",
           "std::function")

    # 6b. Raw strings: unbalanced quotes and comment markers inside
    # R"(...)" must not derail parsing of the code that follows.
    t = _clean_tree()
    t["src/core/dispatcher.h"] += (
        "const char* raw = R\"(quote \" and // and /* inside)\";\n"
        "std::function<void()> g;\n")
    expect("raw-string", run_checks(t), "no-std-function", "std::function")

    # 6c. A backslash-continued // comment splices the next line into the
    # comment — code there is not live and must not be flagged.
    t = _clean_tree()
    t["src/core/dispatcher.h"] += (
        "// disabled hook: \\\n"
        "std::function<void()> h;\n")
    residue = [f for f in run_checks(t) if f.rule == "no-std-function"]
    if residue:
        failures.append("line-spliced comment was flagged as live code: "
                        + "; ".join(f.render() for f in residue))

    # 7. The tracer seam is read from layers.toml when the tree has one:
    # a widened manifest admits the extra header, everything else still
    # gets flagged.
    t = _clean_tree()
    t[LAYERS_MANIFEST] = (
        "[seam]\n"
        "headers = [\"obs/tracer.h\", \"obs/trace_event.h\", "
        "\"obs/probe.h\"]\n"
        "layers = [\"core\", \"sched\"]\n")
    t["src/core/dispatcher.h"] += (
        "#include \"obs/probe.h\"\n#include \"obs/recorder.h\"\n")
    found = run_checks(t)
    if any(f.rule == "include-hygiene"
           and f.message.startswith("#include \"obs/probe.h\"")
           for f in found):
        failures.append("manifest-sanctioned seam header was flagged")
    expect("manifest-seam-still-fences", found, "include-hygiene",
           "obs/recorder.h")

    if failures:
        print("csfc_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"csfc_lint self-test OK ({len(ALL_CHECKS)} rules, "
          f"seeded violations all caught)")
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", type=Path, default=Path(__file__).parents[2],
                        help="repository root (default: two levels up)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule catches a seeded violation")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    repo = args.repo.resolve()
    if not (repo / "src").is_dir():
        print(f"csfc_lint: {repo} does not look like the repo root",
              file=sys.stderr)
        return 2
    tree = load_tree(repo)
    findings = run_checks(tree)
    for f in findings:
        print(f.render(), file=sys.stderr)
    if findings:
        print(f"csfc_lint: {len(findings)} finding(s) in {len(tree)} files",
              file=sys.stderr)
        return 1
    print(f"csfc_lint: OK ({len(tree)} files, {len(ALL_CHECKS)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
