#!/usr/bin/env python3
"""csfc_analyze: AST-backed contract analyzer for the csfc codebase.

Ten rule families, three checked-in manifests
(tools/csfc_analyze/layers.toml, tools/csfc_analyze/concurrency.toml and
tools/csfc_analyze/determinism.toml):

  layering       src/ include edges must follow the layer DAG declared in
                 layers.toml, plus the tracer seam and per-file exceptions
                 declared there. Subsumes csfc_lint's include-hygiene rule
                 (csfc_lint now reads the same manifest).
  hot-alloc      Functions annotated CSFC_HOT (common/annotations.h) and
                 functions that hold a lock (REQUIRES(...)) must not
                 allocate: no operator new / malloc family /
                 make_unique|make_shared / std::function / node-based
                 containers / std::string construction / container growth
                 calls. A sanctioned amortized allocation is marked on its
                 own line with `// csfc:alloc-ok(<reason>)`. Code compiled
                 out of release builds (#ifndef NDEBUG) is exempt.
  hot-coverage   The manifest's [hot] entry_points list pins which
                 functions MUST carry the CSFC_HOT annotation. hot-alloc
                 only audits what is annotated; this closes the loop so a
                 backend rewrite cannot silently drop the per-request path
                 out of the audit.
  exc-safety     Types on the zero-copy queue path (Request, SmallVector)
                 must declare explicit noexcept move operations, and
                 Status / Result must be [[nodiscard]] at class level —
                 a throwing move silently degrades every vector growth
                 and slot-pool recycle back to copies.
  atomics-discipline
                 Every atomic operation in src/ must spell an explicit
                 std::memory_order, and every atomic variable must have an
                 [[atomic]] row in concurrency.toml declaring its role and
                 the allowed orders per operation kind (load/store/rmw/cas).
                 Unmanifested atomics, stale rows, implicit seq_cst, and
                 orders outside the declared set are all errors.
  lock-hierarchy Every Mutex instance must have a [[lock]] row, and nested
                 MutexLock acquisitions (plus REQUIRES(...) regions) must
                 follow the total acquisition order declared in
                 [locks].order — out-of-order or recursive acquisition is
                 an error.
  hot-blocking   CSFC_HOT functions may not block: no mutex acquisition,
                 condvar wait, sleep, or I/O. Unbounded spin loops over
                 atomics must justify progress with a
                 `// csfc:spin-ok(<reason>)` marker on the loop header.
  determinism-taint
                 Functions annotated CSFC_DETERMINISTIC must be pure
                 functions of their inputs and recorded seeds: the
                 manifest's [deterministic] entry_points list pins the
                 annotations (like hot-coverage pins CSFC_HOT), annotated
                 bodies may not read wall clocks, branch on thread ids, or
                 cast pointers to integers, and std::unordered_ use there
                 needs a `// csfc:unordered-ok(<reason>)` marker. Tree-wide,
                 wall clocks live only behind the clock seam
                 (common/clock.h) and every getenv needs an [[envread]]
                 row. Subsumes csfc_lint's former `determinism` rule.
  fp-contract    Every TU under [fp].contract_scope must compile with
                 -ffp-contract=off and without fast-math flags (verified
                 from compile_commands.json — contracted FMA and licensed
                 reassociation both change result bits between builds).
                 `long double` is banned, and a libm transcendental needs
                 a `// csfc:libm-ok(<reason>)` marker on its line.
  rng-seed-flow  Every RNG constructed in src/ outside the rng seam
                 (common/random) needs an [[rng]] row declaring its role
                 and seed provenance, and the seed expression must still
                 appear in the declaring file or its sibling. Raw std
                 engines, std::random_device, rand()/srand(), and
                 default-constructed Rng are all errors.

Engines:

  libclang   (preferred) python3-clang + libclang over the build tree's
             compile_commands.json. The hot-alloc rule walks the real call
             graph: every project-defined function *reachable* from a
             CSFC_HOT or REQUIRES root is scanned; traversal stops at
             virtual and external calls. noexcept and [[nodiscard]] are
             verified on the AST (exception specifications and the
             WarnUnusedResult attribute), not by pattern match.
  regex      fallback when libclang is unavailable (the dev container is
             gcc-only). Implements all rules textually; the hot-alloc
             scan degrades to the direct bodies of annotated functions —
             no transitive call graph. The degradation is announced on
             stderr so a clean exit is never mistaken for full AST
             coverage.

The three concurrency families are textual in BOTH engines: memory_order
arguments, MutexLock statements, and spin markers are lexical facts, and
sharing one implementation makes engine agreement structural (the same
stance layering already takes). The three determinism families take the
same stance — annotations, markers, manifest rows, and compile commands
are all lexical facts — and the libclang engine additionally walks the
call graph so functions *reachable* from a CSFC_DETERMINISTIC root are
taint-scanned too (traversal stops at virtual and external calls, and at
the clock/rng seam files).

`--self-test` seeds one violation per rule against synthetic trees and
verifies each is caught. `--seed-violation=RULE` injects a violation into
the real tree (in memory — forces the regex engine) so the CLI test can
assert exit codes end to end. Exit 0 = clean, 1 = findings, 2 =
usage/engine error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

try:
    import tomllib
except ImportError:  # pragma: no cover - python < 3.11
    tomllib = None

# The hardened comment stripper lives in csfc_lint; one implementation,
# two tools.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "csfc_lint"))
import csfc_lint  # noqa: E402

strip_comments = csfc_lint.strip_comments

CXX_SUFFIXES = (".h", ".cc")
ALLOC_OK_MARKER = "csfc:alloc-ok("
SPIN_OK_MARKER = "csfc:spin-ok("
UNORDERED_OK_MARKER = "csfc:unordered-ok("
LIBM_OK_MARKER = "csfc:libm-ok("
HOT_TOKEN = "CSFC_HOT"
DET_TOKEN = "CSFC_DETERMINISTIC"


class Finding(NamedTuple):
    rule: str
    path: str
    line: int  # 1-based; 0 = whole-file finding
    message: str

    def render(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


Tree = Dict[str, str]


def load_tree(repo: Path) -> Tree:
    tree: Tree = {}
    base = repo / "src"
    for path in sorted(base.rglob("*")):
        if path.suffix in CXX_SUFFIXES and path.is_file():
            tree[path.relative_to(repo).as_posix()] = path.read_text(
                encoding="utf-8")
    return tree


# --- manifest (layers.toml) -------------------------------------------------


class Manifest(NamedTuple):
    layers: Dict[str, List[str]]
    seam_headers: List[str]
    seam_layers: List[str]
    exceptions: Dict[str, List[str]]  # src-relative file -> allowed includes
    hot_entry_points: List[str]  # "Class::Name" that must be CSFC_HOT


def parse_manifest(text: str) -> Manifest:
    if tomllib is None:
        raise RuntimeError("python >= 3.11 (tomllib) required")
    data = tomllib.loads(text)
    seam = data.get("seam", {})
    exceptions: Dict[str, List[str]] = {}
    for exc in data.get("exception", []):
        exceptions.setdefault(exc["file"], []).extend(exc["allow"])
    return Manifest(
        layers={k: list(v) for k, v in data.get("layers", {}).items()},
        seam_headers=list(seam.get("headers", [])),
        seam_layers=list(seam.get("layers", [])),
        exceptions=exceptions,
        hot_entry_points=list(data.get("hot", {}).get("entry_points", [])))


# --- contract tables --------------------------------------------------------


class Contracts(NamedTuple):
    # (header path, type name): must declare explicit noexcept move ops.
    nothrow_move: List[Tuple[str, str]]
    # (header path, type name): must be `class [[nodiscard]]`.
    nodiscard: List[Tuple[str, str]]


DEFAULT_CONTRACTS = Contracts(
    nothrow_move=[
        # Slot-pool entries and SmallVector spill both live inside Request;
        # CValue is a trivial double alias and needs no declaration.
        ("src/workload/request.h", "Request"),
        ("src/common/small_vector.h", "SmallVector"),
    ],
    nodiscard=[
        ("src/common/status.h", "Status"),
        ("src/common/status.h", "Result"),
    ])


# --- text utilities ---------------------------------------------------------


def blank_strings(code: str) -> str:
    """Blanks the contents of string/char literals, preserving offsets.

    Run on comment-stripped text. Keeps the quotes so tokens stay
    delimited; handles escapes. Raw strings survive strip_comments with
    their delimiters intact and are blanked here by the same scan (the
    d-char-seq is rare enough in this codebase that plain-quote pairing is
    sufficient for structure matching).
    """
    out: List[str] = []
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and code[i] != quote:
                if code[i] == "\\" and i + 1 < n:
                    out.append("  " if code[i + 1] != "\n" else " \n")
                    i += 2
                    continue
                out.append("\n" if code[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def scrub(text: str) -> str:
    """Comments stripped, string contents blanked. Offsets preserved."""
    return blank_strings(strip_comments(text))


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_delim(code: str, open_idx: int, open_c: str, close_c: str) -> int:
    """Index just past the delimiter matching code[open_idx], or len."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == open_c:
            depth += 1
        elif code[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def ndebug_exempt_lines(code: str) -> Set[int]:
    """0-based indices of lines inside `#ifndef NDEBUG` regions.

    Release builds (RelWithDebInfo defines NDEBUG) compile these out, so
    debug-only shadow/audit blocks are exempt from the hot-alloc rule.
    """
    exempt: Set[int] = set()
    stack: List[str] = []
    for idx, raw in enumerate(code.splitlines()):
        line = raw.lstrip()
        m = re.match(r"#\s*(ifndef|ifdef|if|elif|else|endif)\b\s*(\w+)?", line)
        if m:
            kind, macro = m.group(1), m.group(2)
            if kind == "ifndef":
                stack.append("ndebug" if macro == "NDEBUG" else "other")
            elif kind in ("ifdef", "if"):
                stack.append("other")
            elif kind in ("else", "elif"):
                if stack:
                    stack[-1] = "other" if stack[-1] == "ndebug" else stack[-1]
            elif kind == "endif":
                if stack:
                    stack.pop()
        if "ndebug" in stack:
            exempt.add(idx)
    return exempt


def class_scopes(code: str) -> List[Tuple[int, int, str]]:
    """(body_start, body_end, name) for every class/struct body in `code`.

    Expects scrubbed text. Used to qualify out-of-line definition lookups
    for annotated member declarations.
    """
    scopes: List[Tuple[int, int, str]] = []
    for m in re.finditer(
            r"\b(?:class|struct)\s+(?:\[\[[^\]]*\]\]\s*)?(\w+)[^;{}()]*\{",
            code):
        open_idx = m.end() - 1
        scopes.append((open_idx, match_delim(code, open_idx, "{", "}"),
                       m.group(1)))
    return scopes


def enclosing_class(scopes: List[Tuple[int, int, str]],
                    offset: int) -> Optional[str]:
    best = None
    for start, end, name in scopes:
        if start < offset < end:
            if best is None or start > best[0]:
                best = (start, name)
    return best[1] if best else None


def sibling_path(path: str) -> Optional[str]:
    if path.endswith(".h"):
        return path[:-2] + ".cc"
    if path.endswith(".cc"):
        return path[:-3] + ".h"
    return None


# --- rule 1: layering -------------------------------------------------------

INCLUDE_RE = re.compile(r"#\s*include\s+\"([^\"]+)\"")


def check_layering(tree: Tree, manifest: Manifest) -> List[Finding]:
    findings: List[Finding] = []
    for path, text in sorted(tree.items()):
        parts = path.split("/")
        if parts[0] != "src" or len(parts) < 3:
            continue
        layer = parts[1]
        if layer not in manifest.layers:
            findings.append(Finding(
                "layering", path, 0,
                f"layer `{layer}` is not declared in layers.toml — every "
                f"src/ directory must have a row in [layers]"))
            continue
        allowed = set(manifest.layers[layer])
        code = strip_comments(text)
        for m in INCLUDE_RE.finditer(code):
            inc = m.group(1)
            inc_layer = inc.split("/")[0] if "/" in inc else None
            if inc_layer is None or inc_layer not in manifest.layers:
                continue
            if inc_layer == layer or inc_layer in allowed:
                continue
            if (inc in manifest.seam_headers
                    and layer in manifest.seam_layers):
                continue
            if inc in manifest.exceptions.get(path, []):
                continue
            findings.append(Finding(
                "layering", path, line_of(code, m.start()),
                f"#include \"{inc}\": layer `{layer}` may not depend on "
                f"`{inc_layer}` — see tools/csfc_analyze/layers.toml for "
                f"the DAG (add a [[exception]] there only with a comment "
                f"saying why)"))
    return findings


# --- rule 2: hot-path allocation freedom (regex engine) ---------------------

ALLOC_PATTERNS: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup)\s*\("),
     "C heap allocation"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\bstd::function\b"),
     "std::function (type-erasing, may allocate)"),
    (re.compile(r"\bstd::(?:multi)?(?:map|set)\b"
                r"|\bstd::(?:unordered_\w+|list|forward_list|deque)\b"),
     "node-based container"),
    (re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|emplace|resize|"
                r"reserve|insert|append|assign)\s*\("),
     "container growth call"),
    (re.compile(r"\bstd::string\b(?!\s*[&*])|\bstd::to_string\b"),
     "std::string construction"),
]

HOT_MESSAGE = ("CSFC_HOT code must stay allocation-free; if this allocation "
               "is amortized by design, mark the line with "
               "// csfc:alloc-ok(reason)")


def _scan_body(path: str, text: str, code: str, start: int, end: int,
               label: str, exempt: Set[int], why: str,
               seen: Set[Tuple[str, int, str]],
               findings: List[Finding]) -> None:
    orig_lines = text.splitlines()
    code_lines = code.splitlines()
    first = line_of(code, start) - 1
    last = line_of(code, min(end, len(code) - 1) if code else 0) - 1
    for idx in range(first, min(last + 1, len(code_lines))):
        if idx in exempt:
            continue
        if idx < len(orig_lines) and ALLOC_OK_MARKER in orig_lines[idx]:
            continue
        sline = code_lines[idx]
        for pat, what in ALLOC_PATTERNS:
            if not pat.search(sline):
                continue
            if what == "node-based container" and "iterator" in sline:
                continue  # naming an iterator type allocates nothing
            key = (path, idx + 1, what)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "hot-alloc", path, idx + 1,
                f"{what} in {why} `{label}` — {HOT_MESSAGE}"))


def _body_after_signature(code: str, j: int) -> Optional[int]:
    """Scans past trailing signature tokens (const, noexcept(...),
    override, ->ret) to the defining `{`; None for declarations, calls
    and anything else."""
    n = len(code)
    while j < n:
        c = code[j]
        if c == "{":
            return j
        if c in ";=)}":
            return None
        if c == "(":
            j = match_delim(code, j, "(", ")")
            continue
        j += 1
    return None


def _definition_bodies(code: str, cls: Optional[str],
                       name: str) -> List[Tuple[int, int]]:
    """(body_start, body_end) of out-of-line definitions of cls::name."""
    qual = rf"\b{re.escape(cls)}\s*::\s*{re.escape(name)}\s*\(" if cls \
        else rf"\b{re.escape(name)}\s*\("
    bodies: List[Tuple[int, int]] = []
    for m in re.finditer(qual, code):
        close = match_delim(code, m.end() - 1, "(", ")")
        body = _body_after_signature(code, close)
        if body is not None:
            bodies.append((body, match_delim(code, body, "{", "}")))
    return bodies


def hot_function_bodies(
        scrubbed: Dict[str, str],
        token: str = HOT_TOKEN) -> List[Tuple[str, str, int, int]]:
    """(path, label, body_start, body_end) for every `token`-annotated
    function (CSFC_HOT by default; the determinism family passes
    CSFC_DETERMINISTIC).

    Resolves declaration-only annotations to their out-of-line
    definitions in the same file (inline/template) or the .h/.cc
    sibling, qualified by the enclosing class so same-named methods of
    other classes (e.g. the reference implementations) are not swept
    in. Shared by the hot-alloc, hot-blocking and determinism-taint
    rule families.
    """
    bodies: List[Tuple[str, str, int, int]] = []
    seen: Set[Tuple[str, int]] = set()

    def add(path: str, label: str, start: int, end: int) -> None:
        if (path, start) not in seen:
            seen.add((path, start))
            bodies.append((path, label, start, end))

    for path, code in sorted(scrubbed.items()):
        if path == "src/common/annotations.h":
            continue
        scopes = None
        for m in re.finditer(rf"\b{token}\b", code):
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue  # the macro definition itself
            brace = code.find("{", m.end())
            semi = code.find(";", m.end())
            head_end = min(x for x in (brace, semi, len(code)) if x >= 0)
            head = code[m.end():head_end]
            paren = head.find("(")
            if paren < 0:
                continue
            name_m = re.search(r"(\w+)\s*$", head[:paren])
            if not name_m:
                continue
            name = name_m.group(1)
            if brace != -1 and (semi == -1 or brace < semi):
                add(path, name, brace, match_delim(code, brace, "{", "}"))
                continue
            if scopes is None:
                scopes = class_scopes(code)
            cls = enclosing_class(scopes, m.start())
            label = f"{cls}::{name}" if cls else name
            candidates = [path]
            sib = sibling_path(path)
            if sib in scrubbed:
                candidates.append(sib)
            for cand in candidates:
                for start, end in _definition_bodies(scrubbed[cand], cls,
                                                     name):
                    add(cand, label, start, end)
    return bodies


def check_hot_alloc(tree: Tree) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    scrubbed = {p: scrub(t) for p, t in tree.items()
                if p.startswith("src/")}
    exempt = {p: ndebug_exempt_lines(c) for p, c in scrubbed.items()}

    for path, label, start, end in hot_function_bodies(scrubbed):
        _scan_body(path, tree[path], scrubbed[path], start, end, label,
                   exempt[path], "hot function", seen, findings)

    for path, code in sorted(scrubbed.items()):
        if path == "src/common/annotations.h":
            continue
        text = tree[path]
        # Lock-holding functions: REQUIRES(...) marks a region that runs
        # under a capability; allocating there stretches the critical
        # section by a potential syscall.
        for m in re.finditer(r"\bREQUIRES\s*\(", code):
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue  # the macro definition
            close = match_delim(code, m.end() - 1, "(", ")")
            body = _body_after_signature(code, close)
            if body is None:
                continue
            seg = code[max(0, m.start() - 400):m.start()]
            names = list(re.finditer(r"(\w+)\s*\(", seg))
            label = names[-1].group(1) if names else "<lock region>"
            _scan_body(path, text, code, body,
                       match_delim(code, body, "{", "}"), label,
                       exempt[path], "lock-holding function", seen, findings)
    return findings


# --- rule 3: hot-coverage (annotation pinning) ------------------------------


def annotated_hot_names(tree: Tree, token: str = HOT_TOKEN) -> Set[str]:
    """Every name `token` (CSFC_HOT by default) is attached to, as both
    `Cls::Name` (when resolvable) and bare `Name`. Works on declarations
    and definitions alike; out-of-line `CSFC_HOT T Cls::Name(...)` forms
    contribute their qualified name directly."""
    covered: Set[str] = set()
    for path, text in tree.items():
        if not path.startswith("src/") or path == "src/common/annotations.h":
            continue
        code = scrub(text)
        scopes = None
        for m in re.finditer(rf"\b{token}\b", code):
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue
            brace = code.find("{", m.end())
            semi = code.find(";", m.end())
            head_end = min(x for x in (brace, semi, len(code)) if x >= 0)
            head = code[m.end():head_end]
            paren = head.find("(")
            if paren < 0:
                continue
            qual_m = re.search(r"(\w+)\s*::\s*(\w+)\s*$", head[:paren])
            if qual_m:
                covered.add(f"{qual_m.group(1)}::{qual_m.group(2)}")
                covered.add(qual_m.group(2))
                continue
            name_m = re.search(r"(\w+)\s*$", head[:paren])
            if not name_m:
                continue
            name = name_m.group(1)
            covered.add(name)
            if scopes is None:
                scopes = class_scopes(code)
            cls = enclosing_class(scopes, m.start())
            if cls:
                covered.add(f"{cls}::{name}")
    return covered


def check_hot_coverage(tree: Tree, manifest: Manifest) -> List[Finding]:
    if not manifest.hot_entry_points:
        return []
    covered = annotated_hot_names(tree)
    findings: List[Finding] = []
    for entry in manifest.hot_entry_points:
        if entry not in covered:
            findings.append(Finding(
                "hot-coverage", "tools/csfc_analyze/layers.toml", 0,
                f"hot entry point `{entry}` carries no CSFC_HOT annotation "
                f"(or no longer exists) — annotate it, or remove it from "
                f"[hot] entry_points with a rationale"))
    return findings


# --- rule 4: exception safety (textual form) --------------------------------


def check_exc_safety(tree: Tree, contracts: Contracts) -> List[Finding]:
    findings: List[Finding] = []
    for path, tname in contracts.nothrow_move:
        text = tree.get(path)
        if text is None:
            findings.append(Finding(
                "noexcept-move", path, 0,
                f"contract type {tname}: file not found — update the "
                f"manifest in tools/csfc_analyze if the type moved"))
            continue
        code = strip_comments(text)
        t = re.escape(tname)
        if not re.search(rf"\b{t}\s*\(\s*{t}\s*&&[^)]*\)\s*noexcept", code):
            findings.append(Finding(
                "noexcept-move", path, 0,
                f"{tname} must declare an explicit noexcept move "
                f"constructor — a throwing (or suppressed) move degrades "
                f"vector growth and slot recycling to copies"))
        if not re.search(rf"operator=\s*\(\s*{t}\s*&&[^)]*\)\s*noexcept",
                         code):
            findings.append(Finding(
                "noexcept-move", path, 0,
                f"{tname} must declare an explicit noexcept move "
                f"assignment operator"))
    for path, tname in contracts.nodiscard:
        text = tree.get(path)
        if text is None:
            findings.append(Finding(
                "nodiscard", path, 0,
                f"contract type {tname}: file not found"))
            continue
        code = strip_comments(text)
        if not re.search(
                rf"(?:class|struct)\s*\[\[\s*nodiscard\s*\]\]\s*{re.escape(tname)}\b",
                code):
            findings.append(Finding(
                "nodiscard", path, 0,
                f"{tname} must be declared `class [[nodiscard]]` so "
                f"dropped error returns fail to compile"))
    return findings


# --- rules 5-7: concurrency contracts (concurrency.toml) --------------------


class AtomicRow(NamedTuple):
    file: str
    name: str
    role: str
    orders: Dict[str, Tuple[str, ...]]  # op kind -> allowed memory orders


class LockRow(NamedTuple):
    name: str
    file: str
    member: str


class ConcurrencyManifest(NamedTuple):
    atomics: Dict[str, AtomicRow]  # keyed by variable name
    extra_types: List[str]  # declaration spellings that count as atomics
    locks: List[LockRow]
    lock_order: List[str]  # total acquisition order, outermost first


VALID_ORDERS = {"relaxed", "consume", "acquire", "release", "acq_rel",
                "seq_cst"}
ATOMIC_OP_KINDS = ("load", "store", "rmw", "cas")
ATOMIC_ROLES = {"publication flag", "sequence counter", "relaxed statistic"}


def parse_concurrency(text: str) -> ConcurrencyManifest:
    if tomllib is None:
        raise RuntimeError("python >= 3.11 (tomllib) required")
    data = tomllib.loads(text)
    atomics: Dict[str, AtomicRow] = {}
    for row in data.get("atomic", []):
        name = row["name"]
        if name in atomics:
            raise ValueError(
                f"duplicate [[atomic]] row `{name}` — op sites are resolved "
                f"by variable name, so atomic names must be unique in src/")
        role = row.get("role", "")
        if role not in ATOMIC_ROLES:
            raise ValueError(
                f"[[atomic]] `{name}`: role {role!r} must be one of "
                f"{sorted(ATOMIC_ROLES)}")
        orders: Dict[str, Tuple[str, ...]] = {}
        for kind in ATOMIC_OP_KINDS:
            if kind not in row:
                continue
            vals = tuple(row[kind])
            bad = sorted(set(vals) - VALID_ORDERS)
            if bad:
                raise ValueError(
                    f"[[atomic]] `{name}`.{kind}: unknown memory orders "
                    f"{bad}")
            orders[kind] = vals
        if not orders:
            raise ValueError(
                f"[[atomic]] `{name}` allows no operations — declare at "
                f"least one of {ATOMIC_OP_KINDS}")
        atomics[name] = AtomicRow(row["file"], name, role, orders)
    locks = [LockRow(r["name"], r["file"], r["member"])
             for r in data.get("lock", [])]
    lock_names = [r.name for r in locks]
    if len(set(lock_names)) != len(lock_names):
        raise ValueError("duplicate [[lock]] names")
    order = list(data.get("locks", {}).get("order", []))
    unknown = sorted(set(order) - set(lock_names))
    if unknown:
        raise ValueError(f"[locks].order names unknown locks: {unknown}")
    missing = [n for n in lock_names if n not in order]
    if missing:
        raise ValueError(
            f"locks missing from [locks].order: {missing} — every lock "
            f"needs a place in the acquisition order")
    return ConcurrencyManifest(
        atomics=atomics,
        extra_types=list(data.get("atomics", {}).get("extra_types", [])),
        locks=locks,
        lock_order=order)


# Longest-first so `compare_exchange_weak` never half-matches `exchange`.
_ATOMIC_OPS = {
    "load": "load", "store": "store", "exchange": "rmw",
    "fetch_add": "rmw", "fetch_sub": "rmw", "fetch_and": "rmw",
    "fetch_or": "rmw", "fetch_xor": "rmw",
    "compare_exchange_weak": "cas", "compare_exchange_strong": "cas",
}
ATOMIC_OP_RE = re.compile(
    r"(\w+)\s*(?:\.|->)\s*("
    + "|".join(sorted(_ATOMIC_OPS, key=len, reverse=True)) + r")\s*\(")
MEMORY_ORDER_RE = re.compile(r"\bmemory_order(?:_|::\s*)(\w+)")


def _match_angle(code: str, open_idx: int) -> Optional[int]:
    """Index just past the `>` matching code[open_idx] == '<', or None."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "<":
            depth += 1
        elif code[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif code[i] in ";{}":
            return None  # ran off the declaration: a comparison, not a type
    return None


def find_atomic_decls(scrubbed: Dict[str, str],
                      extra_types: List[str]) -> List[Tuple[str, str, int]]:
    """(path, name, line) of every atomic variable declaration in src/.

    Matches `std::atomic<...> name` plus any manifest-declared extra
    spelling (template seams like the ring's AtomicSize parameter, which
    tests instantiate with instrumented atomics). References, template
    default arguments, and using-aliases contribute no declaration.
    """
    decls: List[Tuple[str, str, int]] = []
    extra = [re.compile(rf"\b{re.escape(t)}\s+(\w+)\s*[;{{=]")
             for t in extra_types]
    for path, code in sorted(scrubbed.items()):
        for m in re.finditer(r"\bstd::atomic\s*<", code):
            close = _match_angle(code, m.end() - 1)
            if close is None:
                continue
            name_m = re.match(r"\s*(\w+)\s*[;{=,]", code[close:])
            if name_m:
                decls.append((path, name_m.group(1),
                              line_of(code, m.start())))
        for pat in extra:
            for m in pat.finditer(code):
                decls.append((path, m.group(1), line_of(code, m.start())))
    return decls


def check_atomics(tree: Tree, cman: ConcurrencyManifest) -> List[Finding]:
    findings: List[Finding] = []
    scrubbed = {p: scrub(t) for p, t in tree.items()
                if p.startswith("src/")}
    decls = find_atomic_decls(scrubbed, cman.extra_types)
    rows = cman.atomics

    for path, name, line in decls:
        row = rows.get(name)
        if row is None:
            findings.append(Finding(
                "atomics-discipline", path, line,
                f"unmanifested atomic `{name}` — every std::atomic in src/ "
                f"needs an [[atomic]] row in "
                f"tools/csfc_analyze/concurrency.toml declaring its role "
                f"and allowed memory orders"))
        elif row.file != path:
            findings.append(Finding(
                "atomics-discipline", path, line,
                f"atomic `{name}` is declared here but its manifest row "
                f"names {row.file} — fix the [[atomic]] row"))

    declared = {(p, n) for p, n, _ in decls}
    for name in sorted(rows):
        row = rows[name]
        if (row.file, name) not in declared:
            findings.append(Finding(
                "atomics-discipline", row.file, 0,
                f"stale manifest row: atomic `{name}` is no longer "
                f"declared in {row.file} — delete or update the "
                f"[[atomic]] row"))

    names = {n for _, n, _ in decls} | set(rows)
    emitted: Set[Tuple[str, int, str]] = set()

    def emit(f: Finding) -> None:
        key = (f.path, f.line, f.message)
        if key not in emitted:  # two ops on one line report once
            emitted.add(key)
            findings.append(f)

    for path, code in sorted(scrubbed.items()):
        for m in ATOMIC_OP_RE.finditer(code):
            name, op = m.group(1), m.group(2)
            if name not in names:
                continue
            kind = _ATOMIC_OPS[op]
            line = line_of(code, m.start())
            args_end = match_delim(code, m.end() - 1, "(", ")")
            orders = MEMORY_ORDER_RE.findall(code[m.end():args_end])
            if not orders:
                emit(Finding(
                    "atomics-discipline", path, line,
                    f"`{name}.{op}` with implicit seq_cst — every atomic "
                    f"op must spell an explicit std::memory_order so the "
                    f"manifest can check it"))
            row = rows.get(name)
            if row is None:
                continue  # already flagged at the declaration
            allowed = row.orders.get(kind)
            if allowed is None:
                emit(Finding(
                    "atomics-discipline", path, line,
                    f"`{name}.{op}`: the manifest declares no allowed "
                    f"{kind} orders for `{name}` ({row.role}) — extend the "
                    f"[[atomic]] row or remove the operation"))
                continue
            for o in orders:
                if o not in allowed:
                    emit(Finding(
                        "atomics-discipline", path, line,
                        f"`{name}.{op}(memory_order_{o})` is outside the "
                        f"declared set {sorted(allowed)} for `{name}` "
                        f"({row.role})"))
    return findings


MUTEX_DECL_RE = re.compile(r"\b(?:mutable\s+)?Mutex\s+(\w+)\s*;")
MUTEX_ACQUIRE_RE = re.compile(r"\bMutexLock\s+\w+\s*\(\s*([^()]*?)\s*\)")
MUTEX_IMPL_FILE = "src/common/mutex.h"


def _brace_pairs(code: str) -> List[Tuple[int, int]]:
    pairs: List[Tuple[int, int]] = []
    stack: List[int] = []
    for i, c in enumerate(code):
        if c == "{":
            stack.append(i)
        elif c == "}" and stack:
            pairs.append((stack.pop(), i))
    return pairs


def check_lock_hierarchy(tree: Tree,
                         cman: ConcurrencyManifest) -> List[Finding]:
    findings: List[Finding] = []
    scrubbed = {p: scrub(t) for p, t in tree.items()
                if p.startswith("src/") and p != MUTEX_IMPL_FILE}
    rank = {n: i for i, n in enumerate(cman.lock_order)}

    decls: List[Tuple[str, str, int]] = []
    for path, code in sorted(scrubbed.items()):
        for m in MUTEX_DECL_RE.finditer(code):
            decls.append((path, m.group(1), line_of(code, m.start())))
    by_key = {(r.file, r.member): r for r in cman.locks}
    for path, member, line in decls:
        if (path, member) not in by_key:
            findings.append(Finding(
                "lock-hierarchy", path, line,
                f"Mutex `{member}` has no [[lock]] row in "
                f"tools/csfc_analyze/concurrency.toml — name it and place "
                f"it in [locks].order"))
    declared = {(p, m) for p, m, _ in decls}
    for r in cman.locks:
        if (r.file, r.member) not in declared:
            findings.append(Finding(
                "lock-hierarchy", r.file, 0,
                f"stale manifest row: lock `{r.name}` "
                f"({r.file}::{r.member}) is no longer declared — delete "
                f"or update the [[lock]] row"))

    def resolve(path: str, member: str) -> List[LockRow]:
        # A MutexLock in foo.cc acquires a member declared in foo.h (or
        # foo.cc itself): match manifest rows by member name within the
        # .h/.cc sibling pair, so the four classes that all name their
        # lock `mu_` stay distinct.
        stem = path.rsplit(".", 1)[0]
        return [r for r in cman.locks
                if r.member == member and r.file.rsplit(".", 1)[0] == stem]

    def emit(outer: str, inner: str, path: str, line: int) -> None:
        if outer == inner:
            findings.append(Finding(
                "lock-hierarchy", path, line,
                f"recursive acquisition of `{inner}` — Mutex is not "
                f"reentrant"))
        elif rank.get(inner, -1) <= rank.get(outer, -1):
            findings.append(Finding(
                "lock-hierarchy", path, line,
                f"`{inner}` acquired while holding `{outer}` — "
                f"[locks].order in concurrency.toml requires `{inner}` "
                f"before `{outer}`; acquire in order or restructure"))

    for path, code in sorted(scrubbed.items()):
        pairs = _brace_pairs(code)

        def hold_end(off: int) -> int:
            # The scoped lock lives to the end of its innermost block.
            best = -1
            end = len(code)
            for o, c in pairs:
                if o < off < c and o > best:
                    best, end = o, c
            return end

        acqs: List[Tuple[int, int, Optional[str], int]] = []
        for m in MUTEX_ACQUIRE_RE.finditer(code):
            ids = re.findall(r"\w+", m.group(1))
            if not ids:
                continue
            member = ids[-1]
            line = line_of(code, m.start())
            cands = resolve(path, member)
            if not cands:
                findings.append(Finding(
                    "lock-hierarchy", path, line,
                    f"MutexLock on `{member}` resolves to no [[lock]] row "
                    f"(no manifest entry with that member in this file's "
                    f".h/.cc pair) — add one to concurrency.toml"))
                node: Optional[str] = None
            elif len(cands) > 1:
                findings.append(Finding(
                    "lock-hierarchy", path, line,
                    f"MutexLock on `{member}` is ambiguous between "
                    f"{[r.name for r in cands]} — manifest rows must be "
                    f"unique per (file stem, member)"))
                node = None
            else:
                node = cands[0].name
            acqs.append((m.start(), hold_end(m.start()), node, line))

        # REQUIRES(cap) regions hold `cap` for the whole body.
        regions: List[Tuple[int, int, str]] = []
        for m in re.finditer(r"\bREQUIRES\s*\(([^()]*)\)", code):
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue  # the macro definition
            body = _body_after_signature(code, m.end())
            if body is None:
                continue
            end = match_delim(code, body, "{", "}")
            for cap in m.group(1).split(","):
                ids = re.findall(r"\w+", cap)
                if not ids:
                    continue
                cands = resolve(path, ids[-1])
                if len(cands) == 1:
                    regions.append((body, end, cands[0].name))

        for off_a, end_a, node_a, _line_a in acqs:
            if node_a is None:
                continue
            for off_b, _end_b, node_b, line_b in acqs:
                if node_b is None or not (off_a < off_b < end_a):
                    continue
                emit(node_a, node_b, path, line_b)
        for start, end, node_r in regions:
            for off_b, _end_b, node_b, line_b in acqs:
                if node_b is None or not (start < off_b < end):
                    continue
                emit(node_r, node_b, path, line_b)
    return findings


BLOCKING_PATTERNS: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"\bMutexLock\b"
                r"|\bstd::(?:lock_guard|unique_lock|scoped_lock)\b"),
     "mutex acquisition"),
    (re.compile(r"(?:\.|->)\s*(?:Lock|lock|try_lock)\s*\("),
     "mutex acquisition"),
    (re.compile(r"(?:\.|->)\s*(?:Wait|WaitFor|wait|wait_for|wait_until)"
                r"\s*\("),
     "blocking wait"),
    (re.compile(r"\bsleep_for\b|\bsleep_until\b|\busleep\s*\("
                r"|\bnanosleep\s*\("),
     "sleep"),
    (re.compile(r"\b(?:printf|fprintf|puts|fputs|fwrite|fread|fopen"
                r"|fclose|fflush|getline)\s*\("
                r"|\bstd::c(?:out|err|log)\b|\bstd::[io]?fstream\b"),
     "I/O"),
]

UNBOUNDED_LOOP_RE = re.compile(
    r"\bfor\s*\(\s*;\s*;\s*\)|\bwhile\s*\(\s*(?:true|1)\s*\)")

HOT_BLOCKING_MESSAGE = ("CSFC_HOT code must be wait-free on the happy "
                        "path: no locks, condvar waits, sleeps, or I/O")


def check_hot_blocking(tree: Tree,
                       cman: ConcurrencyManifest) -> List[Finding]:
    findings: List[Finding] = []
    scrubbed = {p: scrub(t) for p, t in tree.items()
                if p.startswith("src/")}
    exempt = {p: ndebug_exempt_lines(c) for p, c in scrubbed.items()}
    atomic_names = set(cman.atomics) | {
        n for _, n, _ in find_atomic_decls(scrubbed, cman.extra_types)}
    seen: Set[Tuple[str, int, str]] = set()

    for path, label, start, end in hot_function_bodies(scrubbed):
        code = scrubbed[path]
        orig_lines = tree[path].splitlines()
        code_lines = code.splitlines()
        first = line_of(code, start) - 1
        last = line_of(code, min(end, len(code) - 1) if code else 0) - 1
        for idx in range(first, min(last + 1, len(code_lines))):
            if idx in exempt[path]:
                continue
            sline = code_lines[idx]
            for pat, what in BLOCKING_PATTERNS:
                if not pat.search(sline):
                    continue
                key = (path, idx + 1, what)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    "hot-blocking", path, idx + 1,
                    f"{what} in hot function `{label}` — "
                    f"{HOT_BLOCKING_MESSAGE}"))

        # Unbounded spin loops over atomics need a progress argument.
        for m in UNBOUNDED_LOOP_RE.finditer(code, start, end):
            idx = line_of(code, m.start()) - 1
            if idx in exempt[path]:
                continue
            lb = code.find("{", m.end())
            if lb < 0 or code[m.end():lb].strip():
                continue  # braceless or unparsable loop body
            le = match_delim(code, lb, "{", "}")
            seg = code[lb:le]
            spins = ("memory_order" in seg
                     or any(mm.group(1) in atomic_names
                            for mm in ATOMIC_OP_RE.finditer(seg)))
            if not spins:
                continue
            marked = any(SPIN_OK_MARKER in orig_lines[i]
                         for i in (idx - 1, idx)
                         if 0 <= i < len(orig_lines))
            key = (path, idx + 1, "spin")
            if not marked and key not in seen:
                seen.add(key)
                findings.append(Finding(
                    "hot-blocking", path, idx + 1,
                    f"unbounded spin loop over atomics in hot function "
                    f"`{label}` — prove progress is bounded and mark the "
                    f"loop header with // csfc:spin-ok(reason)"))
    return findings


def run_concurrency_checks(tree: Tree,
                           cman: ConcurrencyManifest) -> List[Finding]:
    """Rules 5-7. Textual in both engines (see module docstring)."""
    return (check_atomics(tree, cman)
            + check_lock_hierarchy(tree, cman)
            + check_hot_blocking(tree, cman))


# --- rules 8-10: determinism contracts (determinism.toml) -------------------


class RngRow(NamedTuple):
    file: str
    name: str
    role: str
    seed: str  # provenance expression; must appear in file or sibling


class DeterminismManifest(NamedTuple):
    entry_points: List[str]  # "Class::Name" that must be CSFC_DETERMINISTIC
    clock_seam: List[str]  # the only files allowed to read wall clocks
    rng_seam: List[str]  # the only files allowed to own raw engines
    envreads: Dict[Tuple[str, str], str]  # (file, var) -> rationale
    fp_scope: str  # tree prefix whose TUs must pin -ffp-contract=off
    rngs: Dict[Tuple[str, str], RngRow]  # (file, name) -> row


def parse_determinism(text: str) -> DeterminismManifest:
    if tomllib is None:
        raise RuntimeError("python >= 3.11 (tomllib) required")
    data = tomllib.loads(text)
    det = data.get("deterministic", {})
    envreads: Dict[Tuple[str, str], str] = {}
    for row in data.get("envread", []):
        key = (row["file"], row["var"])
        if key in envreads:
            raise ValueError(
                f"duplicate [[envread]] row for {key} — one row per "
                f"(file, variable) read site")
        rationale = row.get("rationale", "").strip()
        if not rationale:
            raise ValueError(
                f"[[envread]] {key}: rationale is required — say why the "
                f"read cannot desynchronize replays")
        envreads[key] = rationale
    rngs: Dict[Tuple[str, str], RngRow] = {}
    for row in data.get("rng", []):
        key = (row["file"], row["name"])
        if key in rngs:
            raise ValueError(
                f"duplicate [[rng]] row for {key} — RNG sites are resolved "
                f"by (file, name), so each needs exactly one row")
        role = row.get("role", "").strip()
        seed = row.get("seed", "").strip()
        if not role or not seed:
            raise ValueError(
                f"[[rng]] {key}: role and seed are both required — the "
                f"row must record what the stream is for and where its "
                f"seed comes from")
        rngs[key] = RngRow(row["file"], row["name"], role, seed)
    return DeterminismManifest(
        entry_points=list(det.get("entry_points", [])),
        clock_seam=list(det.get("clock_seam", [])),
        rng_seam=list(det.get("rng_seam", [])),
        envreads=envreads,
        fp_scope=data.get("fp", {}).get("contract_scope", "src/"),
        rngs=rngs)


WALLCLOCK_RE = re.compile(
    r"\b(?:system|steady|high_resolution)_clock\b"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(")

# Scanned inside CSFC_DETERMINISTIC bodies (and, under libclang,
# everything reachable from one). Entropy sources (random_device, rand)
# are tree-wide rng-seed-flow facts and are not duplicated here.
DET_BODY_PATTERNS: List[Tuple[re.Pattern, str]] = [
    (WALLCLOCK_RE, "wall-clock read"),
    (re.compile(r"\bstd::this_thread::get_id\b|\bpthread_self\s*\("),
     "thread-id dependence"),
    # Integer destination only: the closing `>` must follow the integer
    # type directly, so SIMD load/store and prefetch pointer casts
    # (reinterpret_cast<const int64_t*> etc.) stay out of scope.
    (re.compile(
        r"\breinterpret_cast\s*<\s*(?:const\s+)?(?:std::)?"
        r"(?:u?int(?:8|16|32|64)?(?:_t)?|u?intptr_t|size_t|"
        r"unsigned(?:\s+long(?:\s+long)?)?|long(?:\s+long)?)\s*>"),
     "pointer-to-integer cast"),
]

DET_MESSAGE = ("CSFC_DETERMINISTIC code must be a pure function of its "
               "inputs and recorded seeds (common/annotations.h) — every "
               "bit-identity pin and the golden ledger ride on it")


def _det_scan_body(path: str, orig_lines: List[str], code_lines: List[str],
                   first: int, last: int, label: str,
                   seen: Set[Tuple[str, int, str]],
                   findings: List[Finding]) -> None:
    """Taint-scans lines [first, last] of a deterministic function."""
    for idx in range(max(0, first), min(last + 1, len(code_lines))):
        raw = orig_lines[idx] if idx < len(orig_lines) else ""
        sline = code_lines[idx]
        for pat, what in DET_BODY_PATTERNS:
            if not pat.search(sline):
                continue
            key = (path, idx + 1, what)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "determinism-taint", path, idx + 1,
                f"{what} in deterministic function {label} — "
                f"{DET_MESSAGE}"))
        if "std::unordered_" in sline and UNORDERED_OK_MARKER not in raw:
            key = (path, idx + 1, "unordered")
            if key not in seen:
                seen.add(key)
                findings.append(Finding(
                    "determinism-taint", path, idx + 1,
                    f"std::unordered_ container in deterministic function "
                    f"{label} — iteration order is hash/insertion "
                    f"dependent; prove order cannot reach output and mark "
                    f"the line with // csfc:unordered-ok(reason)"))


GETENV_RE = re.compile(r"\b(?:std::\s*)?getenv\s*\(")


def check_det_taint(tree: Tree, dman: DeterminismManifest) -> List[Finding]:
    findings: List[Finding] = []
    # Annotation coverage: the manifest pins which functions must carry
    # CSFC_DETERMINISTIC, closing the same loop hot-coverage closes for
    # CSFC_HOT.
    if dman.entry_points:
        covered = annotated_hot_names(tree, token=DET_TOKEN)
        for entry in dman.entry_points:
            if entry not in covered:
                findings.append(Finding(
                    "determinism-taint",
                    "tools/csfc_analyze/determinism.toml", 0,
                    f"deterministic entry point `{entry}` carries no "
                    f"CSFC_DETERMINISTIC annotation (or no longer exists) "
                    f"— annotate it, or remove it from [deterministic] "
                    f"entry_points with a rationale"))

    scrubbed = {p: scrub(t) for p, t in tree.items()
                if p.startswith("src/")}
    seen: Set[Tuple[str, int, str]] = set()

    # Annotated bodies: direct taint scan (the libclang engine extends
    # this to everything reachable).
    for path, label, start, end in hot_function_bodies(scrubbed,
                                                       token=DET_TOKEN):
        code = scrubbed[path]
        _det_scan_body(
            path, tree[path].splitlines(), code.splitlines(),
            line_of(code, start) - 1,
            line_of(code, min(end, len(code) - 1) if code else 0) - 1,
            f"`{label}`", seen, findings)

    # Tree-wide: wall clocks live only behind the clock seam, and every
    # environment read needs an [[envread]] row. (Subsumes csfc_lint's
    # former `determinism` rule.)
    for path, code in sorted(scrubbed.items()):
        orig_lines = tree[path].splitlines()
        if path not in dman.clock_seam:
            for m in WALLCLOCK_RE.finditer(code):
                line = line_of(code, m.start())
                key = (path, line, "tree-clock")
                if key in seen:
                    continue
                seen.add(key)
                findings.append(Finding(
                    "determinism-taint", path, line,
                    f"wall-clock read `{m.group(0).strip()}` outside the "
                    f"clock seam ({', '.join(dman.clock_seam) or 'none'}) "
                    f"— real time enters through common/clock so runs "
                    f"replay bit-identically"))
        for m in GETENV_RE.finditer(code):
            line = line_of(code, m.start())
            idx = line - 1
            raw = orig_lines[idx] if idx < len(orig_lines) else ""
            if any(f == path and var in raw
                   for (f, var) in dman.envreads):
                continue
            findings.append(Finding(
                "determinism-taint", path, line,
                f"environment read without an [[envread]] row — declare "
                f"(file, variable) in tools/csfc_analyze/determinism.toml "
                f"with a rationale, or thread the value through "
                f"configuration"))
    for (f, var) in sorted(dman.envreads):
        text = tree.get(f)
        if text is None or var not in text:
            findings.append(Finding(
                "determinism-taint", f, 0,
                f"stale [[envread]] row: `{var}` is no longer read in "
                f"{f} — delete or update the row"))
    return findings


FAST_MATH_FLAGS = ("-ffast-math", "-funsafe-math-optimizations", "-Ofast",
                   "-ffp-contract=fast")
# Transcendentals and other non-correctly-rounded libm entry points.
# sqrt/fabs/floor/ceil/round are IEEE-exact and excluded. Longest
# alternatives first so `log10` never half-matches `log`.
LIBM_RE = re.compile(
    r"\bstd::(?:log1p|log10|log2|log|expm1|exp2|exp|pow|sinh|cosh|tanh|"
    r"asinh|acosh|atanh|asin|acos|atan2|atan|sin|cos|tan|cbrt|hypot|"
    r"tgamma|lgamma|erfc|erf)\s*\(")


def check_fp_contract(tree: Tree, dman: DeterminismManifest,
                      compdb_entries: Optional[List[Tuple[str, str]]]
                      ) -> List[Finding]:
    findings: List[Finding] = []
    if compdb_entries is not None:
        for rel, cmd in compdb_entries:
            if not rel.startswith(dman.fp_scope):
                continue
            if "-ffp-contract=off" not in cmd:
                findings.append(Finding(
                    "fp-contract", rel, 0,
                    "TU compiled without -ffp-contract=off — contracted "
                    "FMA skips the intermediate rounding, so a*b+c yields "
                    "different bits on FMA and non-FMA codegen; the "
                    "bit-identity pins need one rounding story per "
                    "expression (set it globally in CMakeLists.txt)"))
            for flag in FAST_MATH_FLAGS:
                if flag in cmd:
                    findings.append(Finding(
                        "fp-contract", rel, 0,
                        f"TU compiled with {flag} — fast-math licenses "
                        f"value-changing reassociation and breaks every "
                        f"bit-identity pin"))
    for path, text in sorted(tree.items()):
        if not path.startswith(dman.fp_scope):
            continue
        code = scrub(text)
        for m in re.finditer(r"\blong\s+double\b", code):
            findings.append(Finding(
                "fp-contract", path, line_of(code, m.start()),
                "long double — x87 80-bit intermediates vary by ABI and "
                "codegen; the determinism contract pins all FP to IEEE "
                "binary64"))
        orig_lines = text.splitlines()
        for idx, sline in enumerate(code.splitlines()):
            m = LIBM_RE.search(sline)
            if m is None:
                continue
            raw = orig_lines[idx] if idx < len(orig_lines) else ""
            if LIBM_OK_MARKER in raw:
                continue
            findings.append(Finding(
                "fp-contract", path, idx + 1,
                f"libm transcendental `{m.group(0).rstrip('(').strip()}` "
                f"— correctly rounded nowhere, pinned only per libm "
                f"build; justify reproducibility with "
                f"// csfc:libm-ok(reason) (the golden ledger pins the "
                f"actual values)"))
    return findings


RNG_DECL_RES = [
    # `Rng name;` / `Rng name(seed);` / `Rng name{...}` / `Rng name = ...`
    # — `Rng&` / `Rng*` borrows don't declare a stream and stay exempt.
    re.compile(r"\bRng\s+(\w+)\s*[;({=]"),
    re.compile(r"\bstd::optional<\s*Rng\s*>\s+(\w+)\s*[;({=]"),
    # lambda-capture / assignment construction: `rng = Rng(seed)`.
    re.compile(r"\b(\w+)\s*=\s*Rng\s*[({]"),
]
RNG_DEFAULT_RE = re.compile(r"\bRng\s*\(\s*\)")
STD_ENGINE_RE = re.compile(
    r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux(?:24|48)(?:_base)?|knuth_b|mersenne_twister_engine|"
    r"linear_congruential_engine|subtract_with_carry_engine|"
    r"random_device)\b")
C_RAND_RE = re.compile(r"\b(?:std::\s*)?s?rand\s*\(")


def check_rng_seed_flow(tree: Tree,
                        dman: DeterminismManifest) -> List[Finding]:
    findings: List[Finding] = []
    scrubbed = {p: scrub(t) for p, t in tree.items()
                if p.startswith("src/") and p not in dman.rng_seam}
    decls: List[Tuple[str, str, int]] = []
    for path, code in sorted(scrubbed.items()):
        for pat in RNG_DECL_RES:
            for m in pat.finditer(code):
                decls.append((path, m.group(1), line_of(code, m.start())))
        for m in RNG_DEFAULT_RE.finditer(code):
            findings.append(Finding(
                "rng-seed-flow", path, line_of(code, m.start()),
                "default-constructed Rng — the default seed hides the "
                "stream identity from the manifest; pass the recorded "
                "seed explicitly"))
        for m in STD_ENGINE_RE.finditer(code):
            findings.append(Finding(
                "rng-seed-flow", path, line_of(code, m.start()),
                f"`{m.group(0)}` outside the rng seam "
                f"({', '.join(dman.rng_seam) or 'none'}) — all randomness "
                f"flows through common/random's Rng with an explicit "
                f"recorded seed; raw engines and entropy sources cannot "
                f"replay"))
        for m in C_RAND_RE.finditer(code):
            findings.append(Finding(
                "rng-seed-flow", path, line_of(code, m.start()),
                "C rand()/srand() — global hidden state with no "
                "per-stream seed; all randomness flows through "
                "common/random's Rng"))

    matched: Set[Tuple[str, str]] = set()
    for path, name, line in sorted(set(decls)):
        row = dman.rngs.get((path, name))
        if row is None:
            findings.append(Finding(
                "rng-seed-flow", path, line,
                f"unmanifested RNG `{name}` — every Rng constructed in "
                f"src/ needs an [[rng]] row in "
                f"tools/csfc_analyze/determinism.toml declaring its role "
                f"and seed provenance"))
            continue
        matched.add((path, name))
        hay = tree[path]
        sib = sibling_path(path)
        if sib in tree:
            hay += tree[sib]
        if row.seed not in hay:
            findings.append(Finding(
                "rng-seed-flow", path, line,
                f"RNG `{name}`: the manifested seed expression "
                f"`{row.seed}` no longer appears in {path} or its .h/.cc "
                f"sibling — the seed path drifted; update the [[rng]] row "
                f"to the real provenance"))
    for key in sorted(dman.rngs):
        if key not in matched:
            f, name = key
            findings.append(Finding(
                "rng-seed-flow", f, 0,
                f"stale manifest row: RNG `{name}` is no longer declared "
                f"in {f} — delete or update the [[rng]] row"))
    return findings


def run_determinism_checks(tree: Tree, dman: DeterminismManifest,
                           compdb_entries: Optional[List[Tuple[str, str]]]
                           ) -> List[Finding]:
    """Rules 8-10. Textual in both engines (see module docstring); the
    libclang engine adds the transitive reachability walk on top."""
    return (check_det_taint(tree, dman)
            + check_fp_contract(tree, dman, compdb_entries)
            + check_rng_seed_flow(tree, dman))


def run_regex_engine(tree: Tree, manifest: Manifest, contracts: Contracts,
                     cman: ConcurrencyManifest, dman: DeterminismManifest,
                     compdb_entries: Optional[List[Tuple[str, str]]] = None
                     ) -> List[Finding]:
    return (check_layering(tree, manifest)
            + check_hot_alloc(tree)
            + check_hot_coverage(tree, manifest)
            + check_exc_safety(tree, contracts)
            + run_concurrency_checks(tree, cman)
            + run_determinism_checks(tree, dman, compdb_entries))


# --- libclang engine --------------------------------------------------------


def load_libclang():
    """Returns the clang.cindex module with a working library, or None."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    import glob
    candidates = sorted(
        glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
        + glob.glob("/usr/lib/*/libclang-*.so*"), reverse=True)
    for cand in candidates:
        try:
            cindex.Config.set_library_file(cand)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    return None


C_ALLOC_FNS = {"malloc", "calloc", "realloc", "strdup"}
STD_ALLOC_FNS = {"make_unique", "make_shared", "to_string"}
GROWTH_METHODS = {"push_back", "emplace_back", "emplace", "emplace_hint",
                  "resize", "reserve", "insert", "append", "assign",
                  "push_front"}
ALLOC_CTOR_CLASSES = {"basic_string", "function", "map", "multimap", "set",
                      "multiset", "list", "forward_list", "deque",
                      "unordered_map", "unordered_multimap", "unordered_set",
                      "unordered_multiset"}


class LibclangEngine:
    """AST engine: transitive hot-alloc call-graph walk plus AST-level
    exception-spec / attribute verification. Layering stays textual —
    include edges are lexical facts either way."""

    def __init__(self, cindex, repo: Path, compdb: Path):
        self.cx = cindex
        self.repo = repo
        self.compdb_dir = compdb.parent if compdb.is_file() else compdb
        self.index = cindex.Index.create()
        self._files: Dict[str, List[str]] = {}
        # usr -> {qual, file, line, hot, requires, calls: [usr],
        #         allocs: [(file, line, what)]}
        self.funcs: Dict[str, dict] = {}
        # (rel_path, type name) -> {move_ctor, move_assign, nodiscard}
        self.records: Dict[Tuple[str, str], dict] = {}

    # -- source access -------------------------------------------------------

    def _lines(self, fname: str) -> List[str]:
        if fname not in self._files:
            try:
                self._files[fname] = Path(fname).read_text(
                    encoding="utf-8", errors="replace").splitlines()
            except OSError:
                self._files[fname] = []
        return self._files[fname]

    def _source_line(self, fname: str, line: int) -> str:
        lines = self._lines(fname)
        return lines[line - 1] if 0 < line <= len(lines) else ""

    def _rel(self, fname: str) -> str:
        try:
            return Path(fname).resolve().relative_to(self.repo).as_posix()
        except ValueError:
            return fname

    def _in_repo_src(self, cursor) -> bool:
        loc = cursor.location
        if loc.file is None:
            return False
        return self._rel(loc.file.name).startswith("src/")

    # -- collection ----------------------------------------------------------

    def parse_all(self) -> List[str]:
        cx = self.cx
        warnings: List[str] = []
        db = cx.CompilationDatabase.fromDirectory(str(self.compdb_dir))
        seen_files: Set[str] = set()
        for cmd in db.getAllCompileCommands():
            fname = cmd.filename
            if not Path(fname).is_absolute():
                fname = str(Path(cmd.directory) / fname)
            if fname in seen_files:
                continue
            seen_files.add(fname)
            if not self._rel(fname).startswith("src/"):
                continue
            args, skip = [], False
            for a in list(cmd.arguments)[1:]:
                if skip:
                    skip = False
                    continue
                if a == "-o":
                    skip = True
                    continue
                if a in ("-c", fname, cmd.filename):
                    continue
                args.append(a)
            try:
                tu = self.index.parse(fname, args=args)
            except Exception as e:  # noqa: BLE001 - report, keep going
                warnings.append(f"parse failed for {fname}: {e}")
                continue
            errors = [d for d in tu.diagnostics if d.severity >= 3]
            if errors:
                warnings.append(
                    f"{self._rel(fname)}: {len(errors)} parse error(s), "
                    f"first: {errors[0].spelling}")
            self._walk_top(tu.cursor)
        return warnings

    def _walk_top(self, cursor) -> None:
        cx = self.cx
        K = cx.CursorKind
        func_kinds = {K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                      K.DESTRUCTOR, K.FUNCTION_TEMPLATE,
                      K.CONVERSION_FUNCTION}
        record_kinds = {K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE}
        for c in cursor.get_children():
            if not self._in_repo_src(c):
                continue
            if c.kind in func_kinds and c.is_definition():
                self._register_function(c)
            elif c.kind in record_kinds and c.is_definition():
                self._register_record(c)
                self._walk_top(c)  # inline member definitions
            elif c.kind in (K.NAMESPACE, K.UNEXPOSED_DECL,
                            K.LINKAGE_SPEC):
                self._walk_top(c)

    def _qualname(self, cursor) -> str:
        cx = self.cx
        parts = [cursor.spelling]
        p = cursor.semantic_parent
        while p is not None and p.kind != cx.CursorKind.TRANSLATION_UNIT:
            if p.spelling and p.kind != cx.CursorKind.NAMESPACE:
                parts.append(p.spelling)
            elif p.spelling and p.spelling != "csfc":
                parts.append(p.spelling)
            p = p.semantic_parent
        return "::".join(reversed(parts))

    def _has_annotation(self, cursor, text: str) -> bool:
        cx = self.cx
        for decl in {cursor, cursor.canonical}:
            for ch in decl.get_children():
                if (ch.kind == cx.CursorKind.ANNOTATE_ATTR
                        and ch.spelling == text):
                    return True
        return False

    def _pre_body_text(self, cursor) -> str:
        """Source from the declaration start to its body (the signature
        and attributes), for both the definition and its first decl."""
        cx = self.cx
        out = []
        for decl in {cursor, cursor.canonical}:
            ext = decl.extent
            if ext.start.file is None:
                continue
            lines = self._lines(ext.start.file.name)
            body_line = ext.end.line
            for ch in decl.get_children():
                if ch.kind == cx.CursorKind.COMPOUND_STMT:
                    body_line = ch.extent.start.line
                    break
            out.append("\n".join(lines[ext.start.line - 1:body_line]))
        return "\n".join(out)

    def _in_std(self, cursor) -> bool:
        cx = self.cx
        p = cursor.semantic_parent
        while p is not None and p.kind != cx.CursorKind.TRANSLATION_UNIT:
            if (p.kind == cx.CursorKind.NAMESPACE
                    and p.spelling in ("std", "__cxx11", "__1")):
                return True
            p = p.semantic_parent
        return False

    def _register_function(self, cursor) -> None:
        usr = cursor.get_usr()
        if not usr or usr in self.funcs:
            return
        pre = self._pre_body_text(cursor)
        ext = cursor.extent
        info = {
            "qual": self._qualname(cursor),
            "file": cursor.location.file.name,
            "line": cursor.location.line,
            "end_line": (ext.end.line if ext.end.file is not None
                         else cursor.location.line),
            "hot": self._has_annotation(cursor, "csfc_hot"),
            "det": self._has_annotation(cursor, "csfc_deterministic"),
            "requires": ("REQUIRES(" in pre
                         or "requires_capability" in pre),
            "calls": [],
            "allocs": [],
        }
        self.funcs[usr] = info
        self._collect_body(cursor, info)

    def _collect_body(self, cursor, info: dict) -> None:
        cx = self.cx
        K = cx.CursorKind
        for c in cursor.get_children():
            loc = c.location
            if c.kind == K.CXX_NEW_EXPR and loc.file is not None:
                info["allocs"].append(
                    (loc.file.name, loc.line, "operator new"))
            elif c.kind == K.CALL_EXPR and loc.file is not None:
                ref = c.referenced
                if ref is not None:
                    name = ref.spelling
                    in_std = self._in_std(ref)
                    what = None
                    if name in C_ALLOC_FNS and not in_std:
                        what = f"C heap allocation ({name})"
                    elif in_std and name in STD_ALLOC_FNS:
                        what = f"std::{name}"
                    elif in_std and name in GROWTH_METHODS:
                        what = f"std container growth ({name})"
                    elif (ref.kind == K.CONSTRUCTOR and in_std
                          and ref.semantic_parent is not None
                          and ref.semantic_parent.spelling
                          in ALLOC_CTOR_CLASSES):
                        what = (f"allocating std type construction "
                                f"({ref.semantic_parent.spelling})")
                    if what is not None:
                        info["allocs"].append(
                            (loc.file.name, loc.line, what))
                    elif not in_std:
                        try:
                            virtual = ref.is_virtual_method()
                        except Exception:
                            virtual = False
                        if not virtual:
                            u = ref.get_usr()
                            if u:
                                info["calls"].append(u)
            self._collect_body(c, info)

    def _register_record(self, cursor) -> None:
        cx = self.cx
        K = cx.CursorKind
        key = (self._rel(cursor.location.file.name), cursor.spelling)
        rec = self.records.setdefault(
            key, {"move_ctor": None, "move_assign": None, "nodiscard": False})
        esk = getattr(self.cx, "ExceptionSpecificationKind", None)

        def noexcept_of(c) -> Optional[bool]:
            if esk is None:
                return None
            try:
                k = c.exception_specification_kind
            except Exception:
                return None
            return k in (esk.BASIC_NOEXCEPT, esk.COMPUTED_NOEXCEPT)

        warn_attr = getattr(K, "WARN_UNUSED_RESULT_ATTR", None)
        for ch in cursor.get_children():
            if ch.kind == K.CONSTRUCTOR:
                try:
                    is_move = ch.is_move_constructor()
                except Exception:
                    is_move = False
                if is_move:
                    rec["move_ctor"] = noexcept_of(ch)
            elif ch.kind == K.CXX_METHOD and ch.spelling == "operator=":
                args = list(ch.get_arguments())
                if args and args[0].type.kind == \
                        self.cx.TypeKind.RVALUEREFERENCE:
                    rec["move_assign"] = noexcept_of(ch)
            elif warn_attr is not None and ch.kind == warn_attr:
                rec["nodiscard"] = True

    # -- rule evaluation -----------------------------------------------------

    def hot_alloc_findings(self) -> List[Finding]:
        roots = [u for u, f in self.funcs.items()
                 if f["hot"] or f["requires"]]
        findings: List[Finding] = []
        seen_sites: Set[Tuple[str, int, str]] = set()
        visited: Set[str] = set()
        stack = [(u, self.funcs[u]["qual"]) for u in roots]
        while stack:
            usr, root = stack.pop()
            if usr in visited:
                continue
            visited.add(usr)
            f = self.funcs[usr]
            for fname, line, what in f["allocs"]:
                if ALLOC_OK_MARKER in self._source_line(fname, line):
                    continue
                rel = self._rel(fname)
                key = (rel, line, what)
                if key in seen_sites:
                    continue
                seen_sites.add(key)
                via = (f"hot function `{f['qual']}`" if f["qual"] == root
                       else f"`{f['qual']}` (reachable from CSFC_HOT "
                            f"`{root}`)")
                findings.append(Finding(
                    "hot-alloc", rel, line, f"{what} in {via} — "
                    f"{HOT_MESSAGE}"))
            for callee in f["calls"]:
                if callee in self.funcs and callee not in visited:
                    stack.append((callee, root))
        return findings

    def det_taint_findings(self, dman: DeterminismManifest,
                           tree: Tree) -> List[Finding]:
        """Transitive determinism taint: every project-defined function
        reachable from a CSFC_DETERMINISTIC root is body-scanned with the
        shared textual patterns. Annotated bodies themselves are covered
        by the shared textual pass (run_determinism_checks), so only the
        unannotated reachable interior is scanned here; traversal stops
        at virtual and external calls and the seam files are exempt."""
        roots = [u for u, f in self.funcs.items() if f["det"]]
        seam = set(dman.clock_seam) | set(dman.rng_seam)
        findings: List[Finding] = []
        seen: Set[Tuple[str, int, str]] = set()
        scrub_cache: Dict[str, List[str]] = {}
        visited: Set[str] = set()
        stack = [(u, self.funcs[u]["qual"]) for u in roots]
        while stack:
            usr, root = stack.pop()
            if usr in visited:
                continue
            visited.add(usr)
            f = self.funcs[usr]
            rel = self._rel(f["file"])
            if (rel.startswith("src/") and rel not in seam
                    and not f["det"] and rel in tree):
                if rel not in scrub_cache:
                    scrub_cache[rel] = scrub(tree[rel]).splitlines()
                _det_scan_body(
                    rel, tree[rel].splitlines(), scrub_cache[rel],
                    f["line"] - 1, f["end_line"] - 1,
                    f"`{f['qual']}` (reachable from CSFC_DETERMINISTIC "
                    f"`{root}`)", seen, findings)
            for callee in f["calls"]:
                if callee in self.funcs and callee not in visited:
                    stack.append((callee, root))
        return findings

    def hot_coverage_findings(self, manifest: Manifest,
                              tree: Tree) -> List[Finding]:
        if not manifest.hot_entry_points:
            return []
        covered: Set[str] = set()
        for f in self.funcs.values():
            if f["hot"]:
                covered.add(f["qual"])
                covered.add(f["qual"].split("::")[-1])
        # Union with the lexical scan: a header no TU in the compilation
        # database happens to reach would otherwise read as uncovered.
        # The rule asserts the annotation exists — a lexical fact — so the
        # AST can only add evidence, never veto it.
        covered |= annotated_hot_names(tree)
        findings: List[Finding] = []
        for entry in manifest.hot_entry_points:
            if entry not in covered:
                findings.append(Finding(
                    "hot-coverage", "tools/csfc_analyze/layers.toml", 0,
                    f"hot entry point `{entry}` carries no CSFC_HOT "
                    f"annotation (or no longer exists) — annotate it, or "
                    f"remove it from [hot] entry_points with a rationale"))
        return findings

    def exc_safety_findings(self, contracts: Contracts,
                            tree: Tree) -> List[Finding]:
        findings: List[Finding] = []
        textual = check_exc_safety(tree, contracts)
        for path, tname in contracts.nothrow_move:
            rec = self.records.get((path, tname))
            if rec is None or rec["move_ctor"] is None \
                    or rec["move_assign"] is None and rec["move_ctor"]:
                # Record or exception-spec API unavailable: keep the
                # textual verdict for this type.
                findings.extend(f for f in textual
                                if f.path == path and tname in f.message
                                and f.rule == "noexcept-move")
                continue
            if not rec["move_ctor"]:
                findings.append(Finding(
                    "noexcept-move", path, 0,
                    f"{tname}: move constructor is missing or not noexcept "
                    f"(AST exception specification)"))
            if not rec["move_assign"]:
                findings.append(Finding(
                    "noexcept-move", path, 0,
                    f"{tname}: move assignment is missing or not noexcept "
                    f"(AST exception specification)"))
        for path, tname in contracts.nodiscard:
            rec = self.records.get((path, tname))
            if rec is None:
                findings.extend(f for f in textual
                                if f.path == path and tname in f.message
                                and f.rule == "nodiscard")
                continue
            if not rec["nodiscard"]:
                # The attribute cursor is version-sensitive; fall back to
                # the textual check before declaring a violation.
                findings.extend(f for f in textual
                                if f.path == path and tname in f.message
                                and f.rule == "nodiscard")
        return findings

    def analyze(self, manifest: Manifest, contracts: Contracts,
                cman: ConcurrencyManifest, dman: DeterminismManifest,
                tree: Tree,
                compdb_entries: Optional[List[Tuple[str, str]]] = None
                ) -> Tuple[List[Finding], List[str]]:
        warnings = self.parse_all()
        findings = check_layering(tree, manifest)
        findings += self.hot_alloc_findings()
        findings += self.hot_coverage_findings(manifest, tree)
        findings += self.exc_safety_findings(contracts, tree)
        # The concurrency (5-7) and determinism (8-10) families share the
        # textual implementation with the regex engine: memory_order
        # arguments, MutexLock statements, markers, manifest rows and
        # compile commands are lexical facts, so running the same code
        # makes the required engine agreement structural.
        findings += run_concurrency_checks(tree, cman)
        findings += run_determinism_checks(tree, dman, compdb_entries)
        # What the AST adds: the call-graph walk from deterministic roots.
        findings += self.det_taint_findings(dman, tree)
        return findings, warnings


# --- self-test --------------------------------------------------------------

SELFTEST_MANIFEST = """
[layers]
common = []
sfc = ["common"]
obs = ["common"]
core = ["common", "sfc"]
sched = ["common", "sfc"]

[hot]
entry_points = ["Hot::Push", "Hot::Pop", "FooSched::Dispatch"]

[seam]
headers = ["obs/tracer.h"]
layers = ["core", "sched"]

[[exception]]
file = "src/sched/registry.h"
allow = ["core/x.h"]
"""

SELFTEST_CONTRACTS = Contracts(
    nothrow_move=[("src/common/request.h", "Request")],
    nodiscard=[("src/common/status.h", "Status")])

SELFTEST_CONCURRENCY = """
[locks]
order = ["wake", "stats"]

[[lock]]
name = "wake"
file = "src/core/pump.h"
member = "wake_mu_"

[[lock]]
name = "stats"
file = "src/core/pump.h"
member = "stats_mu_"

[[atomic]]
file = "src/core/ring.h"
name = "tail_"
role = "sequence counter"
load = ["relaxed"]
cas = ["relaxed"]

[[atomic]]
file = "src/core/ring.h"
name = "flag_"
role = "publication flag"
load = ["acquire"]
store = ["release"]
"""

SELFTEST_DETERMINISM = """
[deterministic]
entry_points = ["Det::Step"]
clock_seam = ["src/common/clock.h"]
rng_seam = ["src/common/random.h"]

[fp]
contract_scope = "src/"

[[envread]]
file = "src/core/det.h"
var = "CSFC_MODE"
rationale = "selftest: sanctioned implementation-selection read"

[[rng]]
file = "src/core/det.h"
name = "rng_"
role = "selftest stream"
seed = "rng_(seed)"
rationale = "explicit ctor seed"
"""

# Synthetic compile commands for the fp-contract family: every src/ TU of
# the clean tree, compiled with the pinned contract flag.
SELFTEST_COMPDB: List[Tuple[str, str]] = [
    ("src/core/hot.cc", "g++ -O2 -ffp-contract=off -c src/core/hot.cc"),
    ("src/sched/sched.cc",
     "g++ -O2 -ffp-contract=off -c src/sched/sched.cc"),
]


def _clean_tree() -> Tree:
    return {
        "src/common/annotations.h":
            "#define CSFC_HOT\n"
            "#define CSFC_DETERMINISTIC\n",
        "src/common/request.h":
            "class Request {\n"
            " public:\n"
            "  Request(Request&&) noexcept = default;\n"
            "  Request& operator=(Request&&) noexcept = default;\n"
            "};\n",
        "src/common/status.h": "class [[nodiscard]] Status {};\n",
        "src/common/mutex.h":
            "struct Mu {};\n"
            "class Cv {\n"
            " public:\n"
            "  void Wait(Mu& mu) REQUIRES(mu) { counter_ += 1; }\n"
            "};\n",
        "src/sfc/curve.h": "#include \"common/annotations.h\"\n",
        "src/obs/tracer.h": "namespace obs {}\n",
        "src/core/x.h": "namespace core {}\n",
        # The clock seam: the one file allowed to read a wall clock.
        "src/common/clock.h":
            "#include <chrono>\n"
            "class MonotonicClock {\n"
            " public:\n"
            "  long NowUs() {\n"
            "    return std::chrono::steady_clock::now()\n"
            "        .time_since_epoch().count();\n"
            "  }\n"
            "};\n",
        # The rng seam: the one file allowed to own seeding primitives.
        "src/common/random.h":
            "class Rng {\n"
            " public:\n"
            "  explicit Rng(unsigned long long seed);\n"
            "  double Uniform();\n"
            "};\n",
        "src/core/det.h":
            "#include <cmath>\n"
            "#include <cstdlib>\n"
            "#include \"common/annotations.h\"\n"
            "#include \"common/random.h\"\n"
            "class Det {\n"
            " public:\n"
            "  explicit Det(unsigned long long seed) : rng_(seed) {}\n"
            "  CSFC_DETERMINISTIC double Step() {\n"
            "    double v = std::log(2.0);"
            "  // csfc:libm-ok(selftest pinned value)\n"
            "    return v + rng_.Uniform();\n"
            "  }\n"
            "  const char* Mode() { return std::getenv(\"CSFC_MODE\"); }\n"
            " private:\n"
            "  Rng rng_;\n"
            "};\n",
        "src/core/hot.h":
            "#include \"common/annotations.h\"\n"
            "#include \"obs/tracer.h\"\n"
            "class Hot {\n"
            " public:\n"
            "  CSFC_HOT void Push(int v) {\n"
            "    heap_.push_back(v);  // csfc:alloc-ok(amortized growth)\n"
            "    // new std::function push_back in a comment is fine\n"
            "  }\n"
            "  CSFC_HOT int Pop();\n"
            "};\n",
        "src/core/hot.cc":
            "#include \"core/hot.h\"\n"
            "int Hot::Pop() {\n"
            "#ifndef NDEBUG\n"
            "  auto* shadow = new int(0);\n"
            "  delete shadow;\n"
            "#endif\n"
            "  std::map<int, int>::iterator it;\n"
            "  return 0;\n"
            "}\n",
        "src/core/ring.h":
            "#include <atomic>\n"
            "#include \"common/annotations.h\"\n"
            "class Ring {\n"
            " public:\n"
            "  CSFC_HOT bool Claim() {\n"
            "    for (;;) {  // csfc:spin-ok(bounded by one producer lap)\n"
            "      size_t t = tail_.load(std::memory_order_relaxed);\n"
            "      if (tail_.compare_exchange_weak(t, t + 1,\n"
            "                                      "
            "std::memory_order_relaxed)) {\n"
            "        flag_.store(1, std::memory_order_release);\n"
            "        return true;\n"
            "      }\n"
            "    }\n"
            "  }\n"
            "  int Check() { return flag_.load(std::memory_order_acquire);"
            " }\n"
            " private:\n"
            "  std::atomic<size_t> tail_{0};\n"
            "  std::atomic<int> flag_{0};\n"
            "};\n",
        "src/core/pump.h":
            "#include \"common/mutex.h\"\n"
            "class Pump {\n"
            " public:\n"
            "  void Snapshot() {\n"
            "    MutexLock lock(wake_mu_);\n"
            "    {\n"
            "      MutexLock lock2(stats_mu_);\n"
            "    }\n"
            "  }\n"
            " private:\n"
            "  Mutex wake_mu_;\n"
            "  Mutex stats_mu_;\n"
            "};\n",
        "src/sched/registry.h": "#include \"core/x.h\"\n",
        "src/sched/sched.h":
            "#include \"common/annotations.h\"\n"
            "class FooSched {\n"
            " public:\n"
            "  CSFC_HOT int Dispatch(long now);\n"
            "};\n",
        "src/sched/sched.cc":
            "#include \"sched/sched.h\"\n"
            "int FooSched::Dispatch(long now) { return head_; }\n",
    }


def self_test() -> int:
    manifest = parse_manifest(SELFTEST_MANIFEST)
    contracts = SELFTEST_CONTRACTS
    cman = parse_concurrency(SELFTEST_CONCURRENCY)
    dman = parse_determinism(SELFTEST_DETERMINISM)
    failures: List[str] = []

    def run(tree: Tree, c: Contracts = contracts,
            cm: Optional[ConcurrencyManifest] = None,
            dm: Optional[DeterminismManifest] = None,
            compdb: Optional[List[Tuple[str, str]]] = None) -> List[Finding]:
        return run_regex_engine(tree, manifest, c, cm or cman, dm or dman,
                                SELFTEST_COMPDB if compdb is None
                                else compdb)

    def expect(name: str, findings: List[Finding], rule: str,
               fragment: str) -> None:
        if not any(f.rule == rule and fragment in f.message
                   for f in findings):
            failures.append(
                f"{name}: expected a [{rule}] finding mentioning "
                f"{fragment!r}, got {[f.render() for f in findings]}")

    residue = run(_clean_tree())
    if residue:
        failures.append("clean tree not clean: "
                        + "; ".join(f.render() for f in residue))

    # 1. Layering: sfc may only see common.
    t = _clean_tree()
    t["src/sfc/curve.h"] += "#include \"sched/sched.h\"\n"
    expect("layer-dag", run(t), "layering", "may not depend on `sched`")

    # 1b. Seam: core may see obs/tracer.h but nothing else in obs.
    t = _clean_tree()
    t["src/core/hot.h"] += "#include \"obs/recorder.h\"\n"
    expect("seam", run(t), "layering", "obs/recorder.h")

    # 2. Hot-alloc, inline body: unmarked growth call.
    t = _clean_tree()
    t["src/core/hot.h"] = t["src/core/hot.h"].replace(
        "    // new std::function push_back in a comment is fine\n",
        "    names_.push_back(v);\n")
    expect("hot-growth", run(t), "hot-alloc", "container growth call")

    # 2b. Hot-alloc through a declaration: definition lives in the .cc.
    t = _clean_tree()
    t["src/sched/sched.cc"] = (
        "#include \"sched/sched.h\"\n"
        "int FooSched::Dispatch(long now) { return *(new int(7)); }\n")
    expect("hot-decl-def", run(t), "hot-alloc", "operator new")

    # 2c. Lock-holding function allocating under the capability.
    t = _clean_tree()
    t["src/common/mutex.h"] = t["src/common/mutex.h"].replace(
        "counter_ += 1;", "slot_ = std::make_unique<int>(1);")
    expect("lock-alloc", run(t), "hot-alloc", "make_unique")

    # 2d. Hot-coverage: a pinned entry point loses its annotation. The
    # function still exists, so only the coverage rule (not hot-alloc)
    # can notice.
    t = _clean_tree()
    t["src/sched/sched.h"] = t["src/sched/sched.h"].replace(
        "CSFC_HOT int Dispatch(long now);", "int Dispatch(long now);")
    expect("hot-coverage", run(t), "hot-coverage", "FooSched::Dispatch")

    # 2e. Hot-coverage: a pinned entry point disappears entirely.
    t = _clean_tree()
    t["src/sched/sched.h"] = t["src/sched/sched.h"].replace(
        "CSFC_HOT int Dispatch(long now);", "")
    expect("hot-coverage-gone", run(t), "hot-coverage", "FooSched::Dispatch")

    # 3. Exception safety: move ctor loses noexcept.
    t = _clean_tree()
    t["src/common/request.h"] = t["src/common/request.h"].replace(
        "Request(Request&&) noexcept = default;", "Request(Request&&);")
    expect("move-noexcept", run(t), "noexcept-move", "move\nconstructor"
           .replace("\n", " "))

    # 3b. Status without [[nodiscard]].
    t = _clean_tree()
    t["src/common/status.h"] = "class Status {};\n"
    expect("nodiscard", run(t), "nodiscard", "[[nodiscard]]")

    # 5. Atomics: implicit seq_cst (no memory_order argument).
    t = _clean_tree()
    t["src/core/ring.h"] = t["src/core/ring.h"].replace(
        "flag_.load(std::memory_order_acquire)", "flag_.load()")
    expect("atomic-implicit", run(t), "atomics-discipline",
           "implicit seq_cst")

    # 5b. Atomics: order outside the declared set (release -> relaxed).
    t = _clean_tree()
    t["src/core/ring.h"] = t["src/core/ring.h"].replace(
        "flag_.store(1, std::memory_order_release)",
        "flag_.store(1, std::memory_order_relaxed)")
    expect("atomic-order", run(t), "atomics-discipline",
           "outside the declared set")

    # 5c. Atomics: a declaration with no manifest row.
    t = _clean_tree()
    t["src/core/ring.h"] = t["src/core/ring.h"].replace(
        "  std::atomic<int> flag_{0};\n",
        "  std::atomic<int> flag_{0};\n"
        "  std::atomic<int> extra_{0};\n")
    expect("atomic-unmanifested", run(t), "atomics-discipline",
           "unmanifested atomic `extra_`")

    # 5d. Atomics: an op kind the manifest does not allow for the var.
    t = _clean_tree()
    t["src/core/ring.h"] = t["src/core/ring.h"].replace(
        "return flag_.load(std::memory_order_acquire);",
        "flag_.fetch_add(1, std::memory_order_relaxed);\n"
        "    return flag_.load(std::memory_order_acquire);")
    expect("atomic-op-kind", run(t), "atomics-discipline",
           "no allowed rmw orders")

    # 5e. Atomics: stale manifest row after the variable is deleted.
    stale = parse_concurrency(
        SELFTEST_CONCURRENCY + "\n[[atomic]]\n"
        "file = \"src/core/ring.h\"\nname = \"ghost_\"\n"
        "role = \"publication flag\"\nload = [\"acquire\"]\n")
    expect("atomic-stale", run(_clean_tree(), cm=stale),
           "atomics-discipline", "stale manifest row")

    # 6. Lock hierarchy: nested acquisition against [locks].order.
    t = _clean_tree()
    t["src/core/pump.h"] = t["src/core/pump.h"].replace(
        "MutexLock lock(wake_mu_);", "MutexLock lock(stats_mu_);").replace(
        "MutexLock lock2(stats_mu_);", "MutexLock lock2(wake_mu_);")
    expect("lock-order", run(t), "lock-hierarchy", "while holding")

    # 6b. Lock hierarchy: recursive acquisition of the same lock.
    t = _clean_tree()
    t["src/core/pump.h"] = t["src/core/pump.h"].replace(
        "MutexLock lock2(stats_mu_);", "MutexLock lock2(wake_mu_);")
    expect("lock-recursive", run(t), "lock-hierarchy", "recursive")

    # 6c. Lock hierarchy: a Mutex with no manifest row.
    t = _clean_tree()
    t["src/core/pump.h"] = t["src/core/pump.h"].replace(
        "  Mutex wake_mu_;\n", "  Mutex wake_mu_;\n  Mutex extra_mu_;\n")
    expect("lock-unmanifested", run(t), "lock-hierarchy",
           "no [[lock]] row")

    # 6d. Lock hierarchy: REQUIRES(...) counts as holding for the body.
    t = _clean_tree()
    t["src/core/pump.h"] = t["src/core/pump.h"].replace(
        "  void Snapshot() {",
        "  void Flush() REQUIRES(stats_mu_) {\n"
        "    MutexLock lock3(wake_mu_);\n"
        "  }\n"
        "  void Snapshot() {")
    expect("lock-requires", run(t), "lock-hierarchy", "while holding")

    # 7. Hot-blocking: a sleep inside a CSFC_HOT body.
    t = _clean_tree()
    t["src/core/ring.h"] = t["src/core/ring.h"].replace(
        "      size_t t = tail_.load(std::memory_order_relaxed);",
        "      std::this_thread::sleep_for(std::chrono::microseconds(1));"
        "\n"
        "      size_t t = tail_.load(std::memory_order_relaxed);")
    expect("hot-sleep", run(t), "hot-blocking", "sleep")

    # 7b. Hot-blocking: a mutex acquisition inside a CSFC_HOT body.
    t = _clean_tree()
    t["src/core/ring.h"] = t["src/core/ring.h"].replace(
        "      size_t t = tail_.load(std::memory_order_relaxed);",
        "      MutexLock guard(mu_);\n"
        "      size_t t = tail_.load(std::memory_order_relaxed);")
    expect("hot-lock", run(t), "hot-blocking", "mutex acquisition")

    # 7c. Hot-blocking: the spin loop loses its csfc:spin-ok marker.
    t = _clean_tree()
    t["src/core/ring.h"] = t["src/core/ring.h"].replace(
        "  // csfc:spin-ok(bounded by one producer lap)", "")
    expect("hot-spin", run(t), "hot-blocking", "spin loop")

    # 8. Determinism coverage: the pinned entry point loses its
    # annotation (the function itself stays, so only coverage notices).
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "CSFC_DETERMINISTIC double Step()", "double Step()")
    expect("det-coverage", run(t), "determinism-taint", "Det::Step")

    # 8b. Wall-clock read inside a deterministic body.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "    return v + rng_.Uniform();\n",
        "    v += std::chrono::steady_clock::now()"
        ".time_since_epoch().count();\n"
        "    return v + rng_.Uniform();\n")
    expect("det-clock", run(t), "determinism-taint",
           "wall-clock read in deterministic function")

    # 8c. Tree-wide: a wall clock outside the seam, outside any
    # deterministic body.
    t = _clean_tree()
    t["src/core/pump.h"] = t["src/core/pump.h"].replace(
        "  void Snapshot() {",
        "  long Now() { return std::chrono::system_clock::now()"
        ".time_since_epoch().count(); }\n"
        "  void Snapshot() {")
    expect("tree-clock", run(t), "determinism-taint",
           "outside the clock seam")

    # 8d. Environment read with no [[envread]] row.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "std::getenv(\"CSFC_MODE\")", "std::getenv(\"CSFC_OTHER\")")
    expect("env-unsanctioned", run(t), "determinism-taint",
           "without an [[envread]] row")
    # ... and the abandoned row is now stale.
    expect("env-stale", run(t), "determinism-taint",
           "stale [[envread]] row")

    # 8e. Unordered container in a deterministic body, no marker.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "    return v + rng_.Uniform();\n",
        "    std::unordered_map<int, int> m;\n"
        "    return v + rng_.Uniform() + m.size();\n")
    expect("det-unordered", run(t), "determinism-taint",
           "csfc:unordered-ok")

    # 8f. Pointer-to-integer cast (address-dependent ordering).
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "    return v + rng_.Uniform();\n",
        "    v += reinterpret_cast<unsigned long>(&v);\n"
        "    return v + rng_.Uniform();\n")
    expect("det-ptr-cast", run(t), "determinism-taint",
           "pointer-to-integer")

    # 8g. Thread-id-dependent branching.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "    return v + rng_.Uniform();\n",
        "    auto tid = std::this_thread::get_id();\n"
        "    (void)tid;\n"
        "    return v + rng_.Uniform();\n")
    expect("det-thread-id", run(t), "determinism-taint", "thread-id")

    # 9. FP contract: a TU missing -ffp-contract=off.
    bad_db = [("src/core/hot.cc", "g++ -O2 -c src/core/hot.cc"),
              SELFTEST_COMPDB[1]]
    expect("fp-flag", run(_clean_tree(), compdb=bad_db), "fp-contract",
           "without -ffp-contract=off")

    # 9b. FP contract: a fast-math flag sneaks in.
    bad_db = [("src/core/hot.cc",
               "g++ -O2 -ffast-math -ffp-contract=off -c src/core/hot.cc"),
              SELFTEST_COMPDB[1]]
    expect("fp-fast-math", run(_clean_tree(), compdb=bad_db),
           "fp-contract", "-ffast-math")

    # 9c. long double in src/.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "    return v + rng_.Uniform();\n",
        "    long double wide = v;\n"
        "    return static_cast<double>(wide) + rng_.Uniform();\n")
    expect("fp-long-double", run(t), "fp-contract", "long double")

    # 9d. The libm transcendental loses its csfc:libm-ok marker.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "  // csfc:libm-ok(selftest pinned value)", "")
    expect("fp-libm", run(t), "fp-contract", "libm transcendental")

    # 10. RNG with no [[rng]] row.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "  Rng rng_;\n", "  Rng rng_;\n  Rng extra_;\n")
    expect("rng-unmanifested", run(t), "rng-seed-flow",
           "unmanifested RNG `extra_`")

    # 10b. The seed path drifts away from the manifested expression.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        ": rng_(seed)", ": rng_(42)")
    expect("rng-seed-drift", run(t), "rng-seed-flow",
           "no longer appears")

    # 10c. Stale [[rng]] row after the variable is deleted.
    stale_dm = parse_determinism(
        SELFTEST_DETERMINISM + "\n[[rng]]\n"
        "file = \"src/core/det.h\"\nname = \"ghost_\"\n"
        "role = \"none\"\nseed = \"ghost_(1)\"\n"
        "rationale = \"stale\"\n")
    expect("rng-stale", run(_clean_tree(), dm=stale_dm), "rng-seed-flow",
           "stale manifest row")

    # 10d. Default-constructed Rng hides the stream identity.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "    return v + rng_.Uniform();\n",
        "    Rng scratch = Rng();\n"
        "    return v + scratch.Uniform();\n")
    expect("rng-default", run(t), "rng-seed-flow", "default-constructed")

    # 10e. Raw std engine outside the seam.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "  Rng rng_;\n", "  Rng rng_;\n  std::mt19937 gen_;\n")
    expect("rng-std-engine", run(t), "rng-seed-flow", "mt19937")

    # 10f. Entropy source.
    t = _clean_tree()
    t["src/core/det.h"] = t["src/core/det.h"].replace(
        "    return v + rng_.Uniform();\n",
        "    std::random_device rd;\n"
        "    return v + rng_.Uniform() + rd();\n")
    expect("rng-entropy", run(t), "rng-seed-flow", "random_device")

    # Controls: alloc-ok marker, NDEBUG block, comment tokens, iterator
    # typedefs, the seam clock read, the sanctioned getenv, the marked
    # libm call and the manifested seeded Rng must all stay silent
    # (checked by the clean run above — reassert to make the intent
    # explicit).
    residue = [f for f in run(_clean_tree())
               if f.rule in ("hot-alloc", "determinism-taint",
                             "fp-contract", "rng-seed-flow")]
    if residue:
        failures.append("clean-tree controls tripped: "
                        + "; ".join(f.render() for f in residue))

    if failures:
        print("csfc_analyze self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("csfc_analyze self-test OK (10 rule families, "
          "seeded violations all caught)")
    return 0


# --- seeded violations on the real tree -------------------------------------

SEEDS: Dict[str, Dict[str, str]] = {
    "layering": {
        "src/sfc/_seeded_layering.h": "#include \"sched/scheduler.h\"\n",
    },
    "hot-alloc": {
        "src/core/_seeded_hot.h":
            "#include \"common/annotations.h\"\n"
            "CSFC_HOT inline int* SeededLeak() { return new int(7); }\n",
    },
    "exc-safety": {
        "src/workload/_seeded_mover.h":
            "class SeededMover {\n"
            " public:\n"
            "  SeededMover(SeededMover&& o);\n"
            "  SeededMover& operator=(SeededMover&& o);\n"
            "};\n",
    },
    "hot-coverage": {
        # A hot-path-shaped class with no CSFC_HOT anywhere; apply_seed
        # pins its Push as a required entry point.
        "src/core/_seeded_cold.h":
            "class SeededCold {\n"
            " public:\n"
            "  void Push(int v) { last_ = v; }\n"
            " private:\n"
            "  int last_ = 0;\n"
            "};\n",
    },
    "atomics-discipline": {
        # Unmanifested atomic plus an implicit-seq_cst load: two findings
        # from one file.
        "src/svc/_seeded_atomics.h":
            "#include <atomic>\n"
            "class SeededAtomics {\n"
            " public:\n"
            "  int Peek() { return unmanifested_flag_.load(); }\n"
            " private:\n"
            "  std::atomic<int> unmanifested_flag_{0};\n"
            "};\n",
    },
    "lock-hierarchy": {
        # Acquires the two seeded locks in the reverse of the order
        # apply_seed appends to [locks].order.
        "src/svc/_seeded_locks.h":
            "#include \"common/mutex.h\"\n"
            "class SeededLocks {\n"
            " public:\n"
            "  void Reversed() {\n"
            "    MutexLock inner_first(seeded_inner_mu_);\n"
            "    MutexLock outer_second(seeded_outer_mu_);\n"
            "  }\n"
            " private:\n"
            "  Mutex seeded_outer_mu_;\n"
            "  Mutex seeded_inner_mu_;\n"
            "};\n",
    },
    "hot-blocking": {
        # A sleep keeps this seed independent of the lock manifest (a
        # MutexLock here would also fire lock-hierarchy findings).
        "src/core/_seeded_blocking.h":
            "#include <chrono>\n"
            "#include <thread>\n"
            "#include \"common/annotations.h\"\n"
            "CSFC_HOT inline void SeededHotBlock() {\n"
            "  std::this_thread::sleep_for(std::chrono::microseconds(1));\n"
            "}\n",
    },
    "determinism-taint": {
        # A wall-clock read inside a CSFC_DETERMINISTIC body (also fires
        # the tree-wide clock-seam check — both are family-8 findings).
        "src/core/_seeded_det.h":
            "#include <chrono>\n"
            "#include \"common/annotations.h\"\n"
            "CSFC_DETERMINISTIC inline long SeededDetClock() {\n"
            "  return std::chrono::system_clock::now()\n"
            "      .time_since_epoch().count();\n"
            "}\n",
    },
    "fp-contract": {
        # Textual violation so the seed works with or without a
        # compilation database (seed runs force the regex engine).
        "src/core/_seeded_fp.h":
            "inline long double SeededWiden(double v) { return v; }\n",
    },
    "rng-seed-flow": {
        # An Rng member with no [[rng]] manifest row.
        "src/workload/_seeded_rng.h":
            "#include \"common/random.h\"\n"
            "class SeededRngHolder {\n"
            " private:\n"
            "  Rng rng_;\n"
            "};\n",
    },
}


def apply_seed(
        rule: str, tree: Tree, contracts: Contracts, manifest: Manifest,
        cman: ConcurrencyManifest
) -> Tuple[Contracts, Manifest, ConcurrencyManifest]:
    tree.update(SEEDS[rule])
    if rule == "exc-safety":
        contracts = Contracts(
            nothrow_move=contracts.nothrow_move
            + [("src/workload/_seeded_mover.h", "SeededMover")],
            nodiscard=contracts.nodiscard)
    elif rule == "hot-coverage":
        manifest = manifest._replace(
            hot_entry_points=manifest.hot_entry_points
            + ["SeededCold::Push"])
    elif rule == "lock-hierarchy":
        cman = cman._replace(
            locks=cman.locks + [
                LockRow("seeded_outer", "src/svc/_seeded_locks.h",
                        "seeded_outer_mu_"),
                LockRow("seeded_inner", "src/svc/_seeded_locks.h",
                        "seeded_inner_mu_"),
            ],
            lock_order=cman.lock_order + ["seeded_outer", "seeded_inner"])
    return contracts, manifest, cman


# --- CLI --------------------------------------------------------------------


def parse_compdb(path: Path, repo: Path) -> Optional[List[Tuple[str, str]]]:
    """(repo-relative file, full command) per TU, or None without a db.

    Textual on purpose: the fp-contract family reads the flags both
    engines compile under, so it must work in the gcc-only dev container
    where libclang is unavailable.
    """
    import json
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(data, list):
        return None
    entries: List[Tuple[str, str]] = []
    for e in data:
        if not isinstance(e, dict):
            continue
        f = Path(e.get("file", ""))
        if not f.is_absolute():
            f = Path(e.get("directory", ".")) / f
        try:
            rel = f.resolve().relative_to(repo).as_posix()
        except (OSError, ValueError):
            continue
        cmd = e.get("command") or " ".join(e.get("arguments") or [])
        entries.append((rel, cmd))
    return entries


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: two levels up)")
    parser.add_argument("--compdb", type=Path, default=None,
                        help="compile_commands.json or its directory "
                             "(default: <repo>/build/compile_commands.json)")
    parser.add_argument("--layers", type=Path, default=None,
                        help="layer manifest (default: layers.toml next to "
                             "this script)")
    parser.add_argument("--concurrency", type=Path, default=None,
                        help="concurrency manifest (default: "
                             "concurrency.toml next to this script)")
    parser.add_argument("--determinism", type=Path, default=None,
                        help="determinism manifest (default: "
                             "determinism.toml next to this script)")
    parser.add_argument("--engine", choices=("auto", "libclang", "regex"),
                        default="auto",
                        help="auto prefers libclang and falls back to the "
                             "regex engine with a notice")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule catches a seeded violation")
    parser.add_argument("--seed-violation", choices=sorted(SEEDS),
                        default=None,
                        help="inject one in-memory violation of the given "
                             "rule into the real tree (forces the regex "
                             "engine); the run must then exit 1")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    repo = args.repo.resolve()
    if not (repo / "src").is_dir():
        print(f"csfc_analyze: {repo} does not look like the repo root",
              file=sys.stderr)
        return 2
    layers_path = args.layers or Path(__file__).resolve().parent / \
        "layers.toml"
    if not layers_path.is_file():
        print(f"csfc_analyze: layer manifest {layers_path} not found",
              file=sys.stderr)
        return 2
    try:
        manifest = parse_manifest(layers_path.read_text(encoding="utf-8"))
    except Exception as e:  # noqa: BLE001 - toml errors are user errors
        print(f"csfc_analyze: bad manifest {layers_path}: {e}",
              file=sys.stderr)
        return 2
    conc_path = args.concurrency or Path(__file__).resolve().parent / \
        "concurrency.toml"
    if not conc_path.is_file():
        print(f"csfc_analyze: concurrency manifest {conc_path} not found",
              file=sys.stderr)
        return 2
    try:
        cman = parse_concurrency(conc_path.read_text(encoding="utf-8"))
    except Exception as e:  # noqa: BLE001 - toml errors are user errors
        print(f"csfc_analyze: bad manifest {conc_path}: {e}",
              file=sys.stderr)
        return 2
    det_path = args.determinism or Path(__file__).resolve().parent / \
        "determinism.toml"
    if not det_path.is_file():
        print(f"csfc_analyze: determinism manifest {det_path} not found",
              file=sys.stderr)
        return 2
    try:
        dman = parse_determinism(det_path.read_text(encoding="utf-8"))
    except Exception as e:  # noqa: BLE001 - toml errors are user errors
        print(f"csfc_analyze: bad manifest {det_path}: {e}",
              file=sys.stderr)
        return 2

    tree = load_tree(repo)
    contracts = DEFAULT_CONTRACTS
    if args.seed_violation:
        if args.engine == "libclang":
            print("csfc_analyze: --seed-violation injects in-memory files "
                  "the libclang engine cannot see; use --engine=auto or "
                  "regex", file=sys.stderr)
            return 2
        contracts, manifest, cman = apply_seed(args.seed_violation, tree,
                                               contracts, manifest, cman)

    compdb = args.compdb or repo / "build" / "compile_commands.json"
    compdb_file = compdb / "compile_commands.json" if compdb.is_dir() \
        else compdb
    compdb_entries = parse_compdb(compdb_file, repo)
    if compdb_entries is None:
        print(f"csfc_analyze: no compilation database at {compdb_file}; "
              f"fp-contract flag verification skipped (the textual FP "
              f"checks still run)", file=sys.stderr)
    use_libclang = False
    if args.engine in ("auto", "libclang") and not args.seed_violation:
        cx = load_libclang()
        if cx is not None and compdb.exists():
            use_libclang = True
        elif args.engine == "libclang":
            reason = ("python clang bindings / libclang not available"
                      if cx is None else f"{compdb} not found")
            print(f"csfc_analyze: libclang engine forced but {reason}",
                  file=sys.stderr)
            return 2
        else:
            reason = ("libclang unavailable" if cx is None
                      else f"no compilation database at {compdb}")
            print(f"csfc_analyze: {reason}; falling back to regex engine "
                  f"(hot-path scan covers annotated bodies only, no "
                  f"transitive call graph)", file=sys.stderr)

    if use_libclang:
        try:
            engine = LibclangEngine(cx, repo, compdb)
            findings, warnings = engine.analyze(manifest, contracts, cman,
                                                dman, tree, compdb_entries)
            for w in warnings:
                print(f"csfc_analyze: warning: {w}", file=sys.stderr)
            label = "libclang"
        except Exception as e:  # noqa: BLE001
            if args.engine == "libclang":
                print(f"csfc_analyze: libclang engine failed: {e}",
                      file=sys.stderr)
                return 2
            print(f"csfc_analyze: libclang engine failed ({e}); falling "
                  f"back to regex engine", file=sys.stderr)
            findings = run_regex_engine(tree, manifest, contracts, cman,
                                        dman, compdb_entries)
            label = "regex"
    else:
        findings = run_regex_engine(tree, manifest, contracts, cman, dman,
                                    compdb_entries)
        label = "regex"

    for f in findings:
        print(f.render(), file=sys.stderr)
    if findings:
        print(f"csfc_analyze[{label}]: {len(findings)} finding(s) in "
              f"{len(tree)} files", file=sys.stderr)
        return 1
    print(f"csfc_analyze[{label}]: OK ({len(tree)} files, "
          f"10 rule families)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
