#!/usr/bin/env python3
"""csfc_analyze: AST-backed contract analyzer for the csfc codebase.

Four rule families, one checked-in manifest (tools/csfc_analyze/layers.toml):

  layering       src/ include edges must follow the layer DAG declared in
                 layers.toml, plus the tracer seam and per-file exceptions
                 declared there. Subsumes csfc_lint's include-hygiene rule
                 (csfc_lint now reads the same manifest).
  hot-alloc      Functions annotated CSFC_HOT (common/annotations.h) and
                 functions that hold a lock (REQUIRES(...)) must not
                 allocate: no operator new / malloc family /
                 make_unique|make_shared / std::function / node-based
                 containers / std::string construction / container growth
                 calls. A sanctioned amortized allocation is marked on its
                 own line with `// csfc:alloc-ok(<reason>)`. Code compiled
                 out of release builds (#ifndef NDEBUG) is exempt.
  hot-coverage   The manifest's [hot] entry_points list pins which
                 functions MUST carry the CSFC_HOT annotation. hot-alloc
                 only audits what is annotated; this closes the loop so a
                 backend rewrite cannot silently drop the per-request path
                 out of the audit.
  exc-safety     Types on the zero-copy queue path (Request, SmallVector)
                 must declare explicit noexcept move operations, and
                 Status / Result must be [[nodiscard]] at class level —
                 a throwing move silently degrades every vector growth
                 and slot-pool recycle back to copies.

Engines:

  libclang   (preferred) python3-clang + libclang over the build tree's
             compile_commands.json. The hot-alloc rule walks the real call
             graph: every project-defined function *reachable* from a
             CSFC_HOT or REQUIRES root is scanned; traversal stops at
             virtual and external calls. noexcept and [[nodiscard]] are
             verified on the AST (exception specifications and the
             WarnUnusedResult attribute), not by pattern match.
  regex      fallback when libclang is unavailable (the dev container is
             gcc-only). Implements all three rules textually; the
             hot-alloc scan degrades to the direct bodies of annotated
             functions — no transitive call graph. The degradation is
             announced on stderr so a clean exit is never mistaken for
             full AST coverage.

`--self-test` seeds one violation per rule against synthetic trees and
verifies each is caught. `--seed-violation=RULE` injects a violation into
the real tree (in memory — forces the regex engine) so the CLI test can
assert exit codes end to end. Exit 0 = clean, 1 = findings, 2 =
usage/engine error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

try:
    import tomllib
except ImportError:  # pragma: no cover - python < 3.11
    tomllib = None

# The hardened comment stripper lives in csfc_lint; one implementation,
# two tools.
sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "csfc_lint"))
import csfc_lint  # noqa: E402

strip_comments = csfc_lint.strip_comments

CXX_SUFFIXES = (".h", ".cc")
ALLOC_OK_MARKER = "csfc:alloc-ok("
HOT_TOKEN = "CSFC_HOT"


class Finding(NamedTuple):
    rule: str
    path: str
    line: int  # 1-based; 0 = whole-file finding
    message: str

    def render(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


Tree = Dict[str, str]


def load_tree(repo: Path) -> Tree:
    tree: Tree = {}
    base = repo / "src"
    for path in sorted(base.rglob("*")):
        if path.suffix in CXX_SUFFIXES and path.is_file():
            tree[path.relative_to(repo).as_posix()] = path.read_text(
                encoding="utf-8")
    return tree


# --- manifest (layers.toml) -------------------------------------------------


class Manifest(NamedTuple):
    layers: Dict[str, List[str]]
    seam_headers: List[str]
    seam_layers: List[str]
    exceptions: Dict[str, List[str]]  # src-relative file -> allowed includes
    hot_entry_points: List[str]  # "Class::Name" that must be CSFC_HOT


def parse_manifest(text: str) -> Manifest:
    if tomllib is None:
        raise RuntimeError("python >= 3.11 (tomllib) required")
    data = tomllib.loads(text)
    seam = data.get("seam", {})
    exceptions: Dict[str, List[str]] = {}
    for exc in data.get("exception", []):
        exceptions.setdefault(exc["file"], []).extend(exc["allow"])
    return Manifest(
        layers={k: list(v) for k, v in data.get("layers", {}).items()},
        seam_headers=list(seam.get("headers", [])),
        seam_layers=list(seam.get("layers", [])),
        exceptions=exceptions,
        hot_entry_points=list(data.get("hot", {}).get("entry_points", [])))


# --- contract tables --------------------------------------------------------


class Contracts(NamedTuple):
    # (header path, type name): must declare explicit noexcept move ops.
    nothrow_move: List[Tuple[str, str]]
    # (header path, type name): must be `class [[nodiscard]]`.
    nodiscard: List[Tuple[str, str]]


DEFAULT_CONTRACTS = Contracts(
    nothrow_move=[
        # Slot-pool entries and SmallVector spill both live inside Request;
        # CValue is a trivial double alias and needs no declaration.
        ("src/workload/request.h", "Request"),
        ("src/common/small_vector.h", "SmallVector"),
    ],
    nodiscard=[
        ("src/common/status.h", "Status"),
        ("src/common/status.h", "Result"),
    ])


# --- text utilities ---------------------------------------------------------


def blank_strings(code: str) -> str:
    """Blanks the contents of string/char literals, preserving offsets.

    Run on comment-stripped text. Keeps the quotes so tokens stay
    delimited; handles escapes. Raw strings survive strip_comments with
    their delimiters intact and are blanked here by the same scan (the
    d-char-seq is rare enough in this codebase that plain-quote pairing is
    sufficient for structure matching).
    """
    out: List[str] = []
    i, n = 0, len(code)
    while i < n:
        c = code[i]
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n and code[i] != quote:
                if code[i] == "\\" and i + 1 < n:
                    out.append("  " if code[i + 1] != "\n" else " \n")
                    i += 2
                    continue
                out.append("\n" if code[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append(quote)
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def scrub(text: str) -> str:
    """Comments stripped, string contents blanked. Offsets preserved."""
    return blank_strings(strip_comments(text))


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def match_delim(code: str, open_idx: int, open_c: str, close_c: str) -> int:
    """Index just past the delimiter matching code[open_idx], or len."""
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == open_c:
            depth += 1
        elif code[i] == close_c:
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def ndebug_exempt_lines(code: str) -> Set[int]:
    """0-based indices of lines inside `#ifndef NDEBUG` regions.

    Release builds (RelWithDebInfo defines NDEBUG) compile these out, so
    debug-only shadow/audit blocks are exempt from the hot-alloc rule.
    """
    exempt: Set[int] = set()
    stack: List[str] = []
    for idx, raw in enumerate(code.splitlines()):
        line = raw.lstrip()
        m = re.match(r"#\s*(ifndef|ifdef|if|elif|else|endif)\b\s*(\w+)?", line)
        if m:
            kind, macro = m.group(1), m.group(2)
            if kind == "ifndef":
                stack.append("ndebug" if macro == "NDEBUG" else "other")
            elif kind in ("ifdef", "if"):
                stack.append("other")
            elif kind in ("else", "elif"):
                if stack:
                    stack[-1] = "other" if stack[-1] == "ndebug" else stack[-1]
            elif kind == "endif":
                if stack:
                    stack.pop()
        if "ndebug" in stack:
            exempt.add(idx)
    return exempt


def class_scopes(code: str) -> List[Tuple[int, int, str]]:
    """(body_start, body_end, name) for every class/struct body in `code`.

    Expects scrubbed text. Used to qualify out-of-line definition lookups
    for annotated member declarations.
    """
    scopes: List[Tuple[int, int, str]] = []
    for m in re.finditer(
            r"\b(?:class|struct)\s+(?:\[\[[^\]]*\]\]\s*)?(\w+)[^;{}()]*\{",
            code):
        open_idx = m.end() - 1
        scopes.append((open_idx, match_delim(code, open_idx, "{", "}"),
                       m.group(1)))
    return scopes


def enclosing_class(scopes: List[Tuple[int, int, str]],
                    offset: int) -> Optional[str]:
    best = None
    for start, end, name in scopes:
        if start < offset < end:
            if best is None or start > best[0]:
                best = (start, name)
    return best[1] if best else None


def sibling_path(path: str) -> Optional[str]:
    if path.endswith(".h"):
        return path[:-2] + ".cc"
    if path.endswith(".cc"):
        return path[:-3] + ".h"
    return None


# --- rule 1: layering -------------------------------------------------------

INCLUDE_RE = re.compile(r"#\s*include\s+\"([^\"]+)\"")


def check_layering(tree: Tree, manifest: Manifest) -> List[Finding]:
    findings: List[Finding] = []
    for path, text in sorted(tree.items()):
        parts = path.split("/")
        if parts[0] != "src" or len(parts) < 3:
            continue
        layer = parts[1]
        if layer not in manifest.layers:
            findings.append(Finding(
                "layering", path, 0,
                f"layer `{layer}` is not declared in layers.toml — every "
                f"src/ directory must have a row in [layers]"))
            continue
        allowed = set(manifest.layers[layer])
        code = strip_comments(text)
        for m in INCLUDE_RE.finditer(code):
            inc = m.group(1)
            inc_layer = inc.split("/")[0] if "/" in inc else None
            if inc_layer is None or inc_layer not in manifest.layers:
                continue
            if inc_layer == layer or inc_layer in allowed:
                continue
            if (inc in manifest.seam_headers
                    and layer in manifest.seam_layers):
                continue
            if inc in manifest.exceptions.get(path, []):
                continue
            findings.append(Finding(
                "layering", path, line_of(code, m.start()),
                f"#include \"{inc}\": layer `{layer}` may not depend on "
                f"`{inc_layer}` — see tools/csfc_analyze/layers.toml for "
                f"the DAG (add a [[exception]] there only with a comment "
                f"saying why)"))
    return findings


# --- rule 2: hot-path allocation freedom (regex engine) ---------------------

ALLOC_PATTERNS: List[Tuple[re.Pattern, str]] = [
    (re.compile(r"\bnew\b"), "operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc|strdup)\s*\("),
     "C heap allocation"),
    (re.compile(r"\bmake_(?:unique|shared)\b"), "make_unique/make_shared"),
    (re.compile(r"\bstd::function\b"),
     "std::function (type-erasing, may allocate)"),
    (re.compile(r"\bstd::(?:multi)?(?:map|set)\b"
                r"|\bstd::(?:unordered_\w+|list|forward_list|deque)\b"),
     "node-based container"),
    (re.compile(r"(?:\.|->)\s*(?:push_back|emplace_back|emplace|resize|"
                r"reserve|insert|append|assign)\s*\("),
     "container growth call"),
    (re.compile(r"\bstd::string\b(?!\s*[&*])|\bstd::to_string\b"),
     "std::string construction"),
]

HOT_MESSAGE = ("CSFC_HOT code must stay allocation-free; if this allocation "
               "is amortized by design, mark the line with "
               "// csfc:alloc-ok(reason)")


def _scan_body(path: str, text: str, code: str, start: int, end: int,
               label: str, exempt: Set[int], why: str,
               seen: Set[Tuple[str, int, str]],
               findings: List[Finding]) -> None:
    orig_lines = text.splitlines()
    code_lines = code.splitlines()
    first = line_of(code, start) - 1
    last = line_of(code, min(end, len(code) - 1) if code else 0) - 1
    for idx in range(first, min(last + 1, len(code_lines))):
        if idx in exempt:
            continue
        if idx < len(orig_lines) and ALLOC_OK_MARKER in orig_lines[idx]:
            continue
        sline = code_lines[idx]
        for pat, what in ALLOC_PATTERNS:
            if not pat.search(sline):
                continue
            if what == "node-based container" and "iterator" in sline:
                continue  # naming an iterator type allocates nothing
            key = (path, idx + 1, what)
            if key in seen:
                continue
            seen.add(key)
            findings.append(Finding(
                "hot-alloc", path, idx + 1,
                f"{what} in {why} `{label}` — {HOT_MESSAGE}"))


def _body_after_signature(code: str, j: int) -> Optional[int]:
    """Scans past trailing signature tokens (const, noexcept(...),
    override, ->ret) to the defining `{`; None for declarations, calls
    and anything else."""
    n = len(code)
    while j < n:
        c = code[j]
        if c == "{":
            return j
        if c in ";=)}":
            return None
        if c == "(":
            j = match_delim(code, j, "(", ")")
            continue
        j += 1
    return None


def _definition_bodies(code: str, cls: Optional[str],
                       name: str) -> List[Tuple[int, int]]:
    """(body_start, body_end) of out-of-line definitions of cls::name."""
    qual = rf"\b{re.escape(cls)}\s*::\s*{re.escape(name)}\s*\(" if cls \
        else rf"\b{re.escape(name)}\s*\("
    bodies: List[Tuple[int, int]] = []
    for m in re.finditer(qual, code):
        close = match_delim(code, m.end() - 1, "(", ")")
        body = _body_after_signature(code, close)
        if body is not None:
            bodies.append((body, match_delim(code, body, "{", "}")))
    return bodies


def check_hot_alloc(tree: Tree) -> List[Finding]:
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, str]] = set()
    scrubbed = {p: scrub(t) for p, t in tree.items()
                if p.startswith("src/")}
    exempt = {p: ndebug_exempt_lines(c) for p, c in scrubbed.items()}

    for path, code in sorted(scrubbed.items()):
        if path == "src/common/annotations.h":
            continue
        text = tree[path]
        scopes = None
        for m in re.finditer(rf"\b{HOT_TOKEN}\b", code):
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue  # the macro definition itself
            brace = code.find("{", m.end())
            semi = code.find(";", m.end())
            head_end = min(x for x in (brace, semi, len(code)) if x >= 0)
            head = code[m.end():head_end]
            paren = head.find("(")
            if paren < 0:
                continue
            name_m = re.search(r"(\w+)\s*$", head[:paren])
            if not name_m:
                continue
            name = name_m.group(1)
            if brace != -1 and (semi == -1 or brace < semi):
                _scan_body(path, text, code, brace,
                           match_delim(code, brace, "{", "}"), name,
                           exempt[path], "hot function", seen, findings)
                continue
            # Declaration only: find the out-of-line definition in this
            # file (inline/template) or its .h/.cc sibling, qualified by
            # the enclosing class so same-named methods of other classes
            # (e.g. the reference implementations) are not swept in.
            if scopes is None:
                scopes = class_scopes(code)
            cls = enclosing_class(scopes, m.start())
            label = f"{cls}::{name}" if cls else name
            candidates = [path]
            sib = sibling_path(path)
            if sib in scrubbed:
                candidates.append(sib)
            for cand in candidates:
                for start, end in _definition_bodies(scrubbed[cand], cls,
                                                     name):
                    _scan_body(cand, tree[cand], scrubbed[cand], start, end,
                               label, exempt[cand], "hot function", seen,
                               findings)

        # Lock-holding functions: REQUIRES(...) marks a region that runs
        # under a capability; allocating there stretches the critical
        # section by a potential syscall.
        for m in re.finditer(r"\bREQUIRES\s*\(", code):
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue  # the macro definition
            close = match_delim(code, m.end() - 1, "(", ")")
            body = _body_after_signature(code, close)
            if body is None:
                continue
            seg = code[max(0, m.start() - 400):m.start()]
            names = list(re.finditer(r"(\w+)\s*\(", seg))
            label = names[-1].group(1) if names else "<lock region>"
            _scan_body(path, text, code, body,
                       match_delim(code, body, "{", "}"), label,
                       exempt[path], "lock-holding function", seen, findings)
    return findings


# --- rule 3: hot-coverage (annotation pinning) ------------------------------


def annotated_hot_names(tree: Tree) -> Set[str]:
    """Every name the CSFC_HOT token is attached to, as both `Cls::Name`
    (when resolvable) and bare `Name`. Works on declarations and
    definitions alike; out-of-line `CSFC_HOT T Cls::Name(...)` forms
    contribute their qualified name directly."""
    covered: Set[str] = set()
    for path, text in tree.items():
        if not path.startswith("src/") or path == "src/common/annotations.h":
            continue
        code = scrub(text)
        scopes = None
        for m in re.finditer(rf"\b{HOT_TOKEN}\b", code):
            line_start = code.rfind("\n", 0, m.start()) + 1
            if code[line_start:m.start()].lstrip().startswith("#"):
                continue
            brace = code.find("{", m.end())
            semi = code.find(";", m.end())
            head_end = min(x for x in (brace, semi, len(code)) if x >= 0)
            head = code[m.end():head_end]
            paren = head.find("(")
            if paren < 0:
                continue
            qual_m = re.search(r"(\w+)\s*::\s*(\w+)\s*$", head[:paren])
            if qual_m:
                covered.add(f"{qual_m.group(1)}::{qual_m.group(2)}")
                covered.add(qual_m.group(2))
                continue
            name_m = re.search(r"(\w+)\s*$", head[:paren])
            if not name_m:
                continue
            name = name_m.group(1)
            covered.add(name)
            if scopes is None:
                scopes = class_scopes(code)
            cls = enclosing_class(scopes, m.start())
            if cls:
                covered.add(f"{cls}::{name}")
    return covered


def check_hot_coverage(tree: Tree, manifest: Manifest) -> List[Finding]:
    if not manifest.hot_entry_points:
        return []
    covered = annotated_hot_names(tree)
    findings: List[Finding] = []
    for entry in manifest.hot_entry_points:
        if entry not in covered:
            findings.append(Finding(
                "hot-coverage", "tools/csfc_analyze/layers.toml", 0,
                f"hot entry point `{entry}` carries no CSFC_HOT annotation "
                f"(or no longer exists) — annotate it, or remove it from "
                f"[hot] entry_points with a rationale"))
    return findings


# --- rule 4: exception safety (textual form) --------------------------------


def check_exc_safety(tree: Tree, contracts: Contracts) -> List[Finding]:
    findings: List[Finding] = []
    for path, tname in contracts.nothrow_move:
        text = tree.get(path)
        if text is None:
            findings.append(Finding(
                "noexcept-move", path, 0,
                f"contract type {tname}: file not found — update the "
                f"manifest in tools/csfc_analyze if the type moved"))
            continue
        code = strip_comments(text)
        t = re.escape(tname)
        if not re.search(rf"\b{t}\s*\(\s*{t}\s*&&[^)]*\)\s*noexcept", code):
            findings.append(Finding(
                "noexcept-move", path, 0,
                f"{tname} must declare an explicit noexcept move "
                f"constructor — a throwing (or suppressed) move degrades "
                f"vector growth and slot recycling to copies"))
        if not re.search(rf"operator=\s*\(\s*{t}\s*&&[^)]*\)\s*noexcept",
                         code):
            findings.append(Finding(
                "noexcept-move", path, 0,
                f"{tname} must declare an explicit noexcept move "
                f"assignment operator"))
    for path, tname in contracts.nodiscard:
        text = tree.get(path)
        if text is None:
            findings.append(Finding(
                "nodiscard", path, 0,
                f"contract type {tname}: file not found"))
            continue
        code = strip_comments(text)
        if not re.search(
                rf"(?:class|struct)\s*\[\[\s*nodiscard\s*\]\]\s*{re.escape(tname)}\b",
                code):
            findings.append(Finding(
                "nodiscard", path, 0,
                f"{tname} must be declared `class [[nodiscard]]` so "
                f"dropped error returns fail to compile"))
    return findings


def run_regex_engine(tree: Tree, manifest: Manifest,
                     contracts: Contracts) -> List[Finding]:
    return (check_layering(tree, manifest)
            + check_hot_alloc(tree)
            + check_hot_coverage(tree, manifest)
            + check_exc_safety(tree, contracts))


# --- libclang engine --------------------------------------------------------


def load_libclang():
    """Returns the clang.cindex module with a working library, or None."""
    try:
        from clang import cindex  # type: ignore
    except Exception:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    import glob
    candidates = sorted(
        glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
        + glob.glob("/usr/lib/*/libclang-*.so*"), reverse=True)
    for cand in candidates:
        try:
            cindex.Config.set_library_file(cand)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    return None


C_ALLOC_FNS = {"malloc", "calloc", "realloc", "strdup"}
STD_ALLOC_FNS = {"make_unique", "make_shared", "to_string"}
GROWTH_METHODS = {"push_back", "emplace_back", "emplace", "emplace_hint",
                  "resize", "reserve", "insert", "append", "assign",
                  "push_front"}
ALLOC_CTOR_CLASSES = {"basic_string", "function", "map", "multimap", "set",
                      "multiset", "list", "forward_list", "deque",
                      "unordered_map", "unordered_multimap", "unordered_set",
                      "unordered_multiset"}


class LibclangEngine:
    """AST engine: transitive hot-alloc call-graph walk plus AST-level
    exception-spec / attribute verification. Layering stays textual —
    include edges are lexical facts either way."""

    def __init__(self, cindex, repo: Path, compdb: Path):
        self.cx = cindex
        self.repo = repo
        self.compdb_dir = compdb.parent if compdb.is_file() else compdb
        self.index = cindex.Index.create()
        self._files: Dict[str, List[str]] = {}
        # usr -> {qual, file, line, hot, requires, calls: [usr],
        #         allocs: [(file, line, what)]}
        self.funcs: Dict[str, dict] = {}
        # (rel_path, type name) -> {move_ctor, move_assign, nodiscard}
        self.records: Dict[Tuple[str, str], dict] = {}

    # -- source access -------------------------------------------------------

    def _lines(self, fname: str) -> List[str]:
        if fname not in self._files:
            try:
                self._files[fname] = Path(fname).read_text(
                    encoding="utf-8", errors="replace").splitlines()
            except OSError:
                self._files[fname] = []
        return self._files[fname]

    def _source_line(self, fname: str, line: int) -> str:
        lines = self._lines(fname)
        return lines[line - 1] if 0 < line <= len(lines) else ""

    def _rel(self, fname: str) -> str:
        try:
            return Path(fname).resolve().relative_to(self.repo).as_posix()
        except ValueError:
            return fname

    def _in_repo_src(self, cursor) -> bool:
        loc = cursor.location
        if loc.file is None:
            return False
        return self._rel(loc.file.name).startswith("src/")

    # -- collection ----------------------------------------------------------

    def parse_all(self) -> List[str]:
        cx = self.cx
        warnings: List[str] = []
        db = cx.CompilationDatabase.fromDirectory(str(self.compdb_dir))
        seen_files: Set[str] = set()
        for cmd in db.getAllCompileCommands():
            fname = cmd.filename
            if not Path(fname).is_absolute():
                fname = str(Path(cmd.directory) / fname)
            if fname in seen_files:
                continue
            seen_files.add(fname)
            if not self._rel(fname).startswith("src/"):
                continue
            args, skip = [], False
            for a in list(cmd.arguments)[1:]:
                if skip:
                    skip = False
                    continue
                if a == "-o":
                    skip = True
                    continue
                if a in ("-c", fname, cmd.filename):
                    continue
                args.append(a)
            try:
                tu = self.index.parse(fname, args=args)
            except Exception as e:  # noqa: BLE001 - report, keep going
                warnings.append(f"parse failed for {fname}: {e}")
                continue
            errors = [d for d in tu.diagnostics if d.severity >= 3]
            if errors:
                warnings.append(
                    f"{self._rel(fname)}: {len(errors)} parse error(s), "
                    f"first: {errors[0].spelling}")
            self._walk_top(tu.cursor)
        return warnings

    def _walk_top(self, cursor) -> None:
        cx = self.cx
        K = cx.CursorKind
        func_kinds = {K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                      K.DESTRUCTOR, K.FUNCTION_TEMPLATE,
                      K.CONVERSION_FUNCTION}
        record_kinds = {K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE}
        for c in cursor.get_children():
            if not self._in_repo_src(c):
                continue
            if c.kind in func_kinds and c.is_definition():
                self._register_function(c)
            elif c.kind in record_kinds and c.is_definition():
                self._register_record(c)
                self._walk_top(c)  # inline member definitions
            elif c.kind in (K.NAMESPACE, K.UNEXPOSED_DECL,
                            K.LINKAGE_SPEC):
                self._walk_top(c)

    def _qualname(self, cursor) -> str:
        cx = self.cx
        parts = [cursor.spelling]
        p = cursor.semantic_parent
        while p is not None and p.kind != cx.CursorKind.TRANSLATION_UNIT:
            if p.spelling and p.kind != cx.CursorKind.NAMESPACE:
                parts.append(p.spelling)
            elif p.spelling and p.spelling != "csfc":
                parts.append(p.spelling)
            p = p.semantic_parent
        return "::".join(reversed(parts))

    def _has_annotation(self, cursor, text: str) -> bool:
        cx = self.cx
        for decl in {cursor, cursor.canonical}:
            for ch in decl.get_children():
                if (ch.kind == cx.CursorKind.ANNOTATE_ATTR
                        and ch.spelling == text):
                    return True
        return False

    def _pre_body_text(self, cursor) -> str:
        """Source from the declaration start to its body (the signature
        and attributes), for both the definition and its first decl."""
        cx = self.cx
        out = []
        for decl in {cursor, cursor.canonical}:
            ext = decl.extent
            if ext.start.file is None:
                continue
            lines = self._lines(ext.start.file.name)
            body_line = ext.end.line
            for ch in decl.get_children():
                if ch.kind == cx.CursorKind.COMPOUND_STMT:
                    body_line = ch.extent.start.line
                    break
            out.append("\n".join(lines[ext.start.line - 1:body_line]))
        return "\n".join(out)

    def _in_std(self, cursor) -> bool:
        cx = self.cx
        p = cursor.semantic_parent
        while p is not None and p.kind != cx.CursorKind.TRANSLATION_UNIT:
            if (p.kind == cx.CursorKind.NAMESPACE
                    and p.spelling in ("std", "__cxx11", "__1")):
                return True
            p = p.semantic_parent
        return False

    def _register_function(self, cursor) -> None:
        usr = cursor.get_usr()
        if not usr or usr in self.funcs:
            return
        pre = self._pre_body_text(cursor)
        info = {
            "qual": self._qualname(cursor),
            "file": cursor.location.file.name,
            "line": cursor.location.line,
            "hot": self._has_annotation(cursor, "csfc_hot"),
            "requires": ("REQUIRES(" in pre
                         or "requires_capability" in pre),
            "calls": [],
            "allocs": [],
        }
        self.funcs[usr] = info
        self._collect_body(cursor, info)

    def _collect_body(self, cursor, info: dict) -> None:
        cx = self.cx
        K = cx.CursorKind
        for c in cursor.get_children():
            loc = c.location
            if c.kind == K.CXX_NEW_EXPR and loc.file is not None:
                info["allocs"].append(
                    (loc.file.name, loc.line, "operator new"))
            elif c.kind == K.CALL_EXPR and loc.file is not None:
                ref = c.referenced
                if ref is not None:
                    name = ref.spelling
                    in_std = self._in_std(ref)
                    what = None
                    if name in C_ALLOC_FNS and not in_std:
                        what = f"C heap allocation ({name})"
                    elif in_std and name in STD_ALLOC_FNS:
                        what = f"std::{name}"
                    elif in_std and name in GROWTH_METHODS:
                        what = f"std container growth ({name})"
                    elif (ref.kind == K.CONSTRUCTOR and in_std
                          and ref.semantic_parent is not None
                          and ref.semantic_parent.spelling
                          in ALLOC_CTOR_CLASSES):
                        what = (f"allocating std type construction "
                                f"({ref.semantic_parent.spelling})")
                    if what is not None:
                        info["allocs"].append(
                            (loc.file.name, loc.line, what))
                    elif not in_std:
                        try:
                            virtual = ref.is_virtual_method()
                        except Exception:
                            virtual = False
                        if not virtual:
                            u = ref.get_usr()
                            if u:
                                info["calls"].append(u)
            self._collect_body(c, info)

    def _register_record(self, cursor) -> None:
        cx = self.cx
        K = cx.CursorKind
        key = (self._rel(cursor.location.file.name), cursor.spelling)
        rec = self.records.setdefault(
            key, {"move_ctor": None, "move_assign": None, "nodiscard": False})
        esk = getattr(self.cx, "ExceptionSpecificationKind", None)

        def noexcept_of(c) -> Optional[bool]:
            if esk is None:
                return None
            try:
                k = c.exception_specification_kind
            except Exception:
                return None
            return k in (esk.BASIC_NOEXCEPT, esk.COMPUTED_NOEXCEPT)

        warn_attr = getattr(K, "WARN_UNUSED_RESULT_ATTR", None)
        for ch in cursor.get_children():
            if ch.kind == K.CONSTRUCTOR:
                try:
                    is_move = ch.is_move_constructor()
                except Exception:
                    is_move = False
                if is_move:
                    rec["move_ctor"] = noexcept_of(ch)
            elif ch.kind == K.CXX_METHOD and ch.spelling == "operator=":
                args = list(ch.get_arguments())
                if args and args[0].type.kind == \
                        self.cx.TypeKind.RVALUEREFERENCE:
                    rec["move_assign"] = noexcept_of(ch)
            elif warn_attr is not None and ch.kind == warn_attr:
                rec["nodiscard"] = True

    # -- rule evaluation -----------------------------------------------------

    def hot_alloc_findings(self) -> List[Finding]:
        roots = [u for u, f in self.funcs.items()
                 if f["hot"] or f["requires"]]
        findings: List[Finding] = []
        seen_sites: Set[Tuple[str, int, str]] = set()
        visited: Set[str] = set()
        stack = [(u, self.funcs[u]["qual"]) for u in roots]
        while stack:
            usr, root = stack.pop()
            if usr in visited:
                continue
            visited.add(usr)
            f = self.funcs[usr]
            for fname, line, what in f["allocs"]:
                if ALLOC_OK_MARKER in self._source_line(fname, line):
                    continue
                rel = self._rel(fname)
                key = (rel, line, what)
                if key in seen_sites:
                    continue
                seen_sites.add(key)
                via = (f"hot function `{f['qual']}`" if f["qual"] == root
                       else f"`{f['qual']}` (reachable from CSFC_HOT "
                            f"`{root}`)")
                findings.append(Finding(
                    "hot-alloc", rel, line, f"{what} in {via} — "
                    f"{HOT_MESSAGE}"))
            for callee in f["calls"]:
                if callee in self.funcs and callee not in visited:
                    stack.append((callee, root))
        return findings

    def hot_coverage_findings(self, manifest: Manifest,
                              tree: Tree) -> List[Finding]:
        if not manifest.hot_entry_points:
            return []
        covered: Set[str] = set()
        for f in self.funcs.values():
            if f["hot"]:
                covered.add(f["qual"])
                covered.add(f["qual"].split("::")[-1])
        # Union with the lexical scan: a header no TU in the compilation
        # database happens to reach would otherwise read as uncovered.
        # The rule asserts the annotation exists — a lexical fact — so the
        # AST can only add evidence, never veto it.
        covered |= annotated_hot_names(tree)
        findings: List[Finding] = []
        for entry in manifest.hot_entry_points:
            if entry not in covered:
                findings.append(Finding(
                    "hot-coverage", "tools/csfc_analyze/layers.toml", 0,
                    f"hot entry point `{entry}` carries no CSFC_HOT "
                    f"annotation (or no longer exists) — annotate it, or "
                    f"remove it from [hot] entry_points with a rationale"))
        return findings

    def exc_safety_findings(self, contracts: Contracts,
                            tree: Tree) -> List[Finding]:
        findings: List[Finding] = []
        textual = check_exc_safety(tree, contracts)
        for path, tname in contracts.nothrow_move:
            rec = self.records.get((path, tname))
            if rec is None or rec["move_ctor"] is None \
                    or rec["move_assign"] is None and rec["move_ctor"]:
                # Record or exception-spec API unavailable: keep the
                # textual verdict for this type.
                findings.extend(f for f in textual
                                if f.path == path and tname in f.message
                                and f.rule == "noexcept-move")
                continue
            if not rec["move_ctor"]:
                findings.append(Finding(
                    "noexcept-move", path, 0,
                    f"{tname}: move constructor is missing or not noexcept "
                    f"(AST exception specification)"))
            if not rec["move_assign"]:
                findings.append(Finding(
                    "noexcept-move", path, 0,
                    f"{tname}: move assignment is missing or not noexcept "
                    f"(AST exception specification)"))
        for path, tname in contracts.nodiscard:
            rec = self.records.get((path, tname))
            if rec is None:
                findings.extend(f for f in textual
                                if f.path == path and tname in f.message
                                and f.rule == "nodiscard")
                continue
            if not rec["nodiscard"]:
                # The attribute cursor is version-sensitive; fall back to
                # the textual check before declaring a violation.
                findings.extend(f for f in textual
                                if f.path == path and tname in f.message
                                and f.rule == "nodiscard")
        return findings

    def analyze(self, manifest: Manifest, contracts: Contracts,
                tree: Tree) -> Tuple[List[Finding], List[str]]:
        warnings = self.parse_all()
        findings = check_layering(tree, manifest)
        findings += self.hot_alloc_findings()
        findings += self.hot_coverage_findings(manifest, tree)
        findings += self.exc_safety_findings(contracts, tree)
        return findings, warnings


# --- self-test --------------------------------------------------------------

SELFTEST_MANIFEST = """
[layers]
common = []
sfc = ["common"]
obs = ["common"]
core = ["common", "sfc"]
sched = ["common", "sfc"]

[hot]
entry_points = ["Hot::Push", "Hot::Pop", "FooSched::Dispatch"]

[seam]
headers = ["obs/tracer.h"]
layers = ["core", "sched"]

[[exception]]
file = "src/sched/registry.h"
allow = ["core/x.h"]
"""

SELFTEST_CONTRACTS = Contracts(
    nothrow_move=[("src/common/request.h", "Request")],
    nodiscard=[("src/common/status.h", "Status")])


def _clean_tree() -> Tree:
    return {
        "src/common/annotations.h": "#define CSFC_HOT\n",
        "src/common/request.h":
            "class Request {\n"
            " public:\n"
            "  Request(Request&&) noexcept = default;\n"
            "  Request& operator=(Request&&) noexcept = default;\n"
            "};\n",
        "src/common/status.h": "class [[nodiscard]] Status {};\n",
        "src/common/mutex.h":
            "struct Mu {};\n"
            "class Cv {\n"
            " public:\n"
            "  void Wait(Mu& mu) REQUIRES(mu) { counter_ += 1; }\n"
            "};\n",
        "src/sfc/curve.h": "#include \"common/annotations.h\"\n",
        "src/obs/tracer.h": "namespace obs {}\n",
        "src/core/x.h": "namespace core {}\n",
        "src/core/hot.h":
            "#include \"common/annotations.h\"\n"
            "#include \"obs/tracer.h\"\n"
            "class Hot {\n"
            " public:\n"
            "  CSFC_HOT void Push(int v) {\n"
            "    heap_.push_back(v);  // csfc:alloc-ok(amortized growth)\n"
            "    // new std::function push_back in a comment is fine\n"
            "  }\n"
            "  CSFC_HOT int Pop();\n"
            "};\n",
        "src/core/hot.cc":
            "#include \"core/hot.h\"\n"
            "int Hot::Pop() {\n"
            "#ifndef NDEBUG\n"
            "  auto* shadow = new int(0);\n"
            "  delete shadow;\n"
            "#endif\n"
            "  std::map<int, int>::iterator it;\n"
            "  return 0;\n"
            "}\n",
        "src/sched/registry.h": "#include \"core/x.h\"\n",
        "src/sched/sched.h":
            "#include \"common/annotations.h\"\n"
            "class FooSched {\n"
            " public:\n"
            "  CSFC_HOT int Dispatch(long now);\n"
            "};\n",
        "src/sched/sched.cc":
            "#include \"sched/sched.h\"\n"
            "int FooSched::Dispatch(long now) { return head_; }\n",
    }


def self_test() -> int:
    manifest = parse_manifest(SELFTEST_MANIFEST)
    contracts = SELFTEST_CONTRACTS
    failures: List[str] = []

    def run(tree: Tree, c: Contracts = contracts) -> List[Finding]:
        return run_regex_engine(tree, manifest, c)

    def expect(name: str, findings: List[Finding], rule: str,
               fragment: str) -> None:
        if not any(f.rule == rule and fragment in f.message
                   for f in findings):
            failures.append(
                f"{name}: expected a [{rule}] finding mentioning "
                f"{fragment!r}, got {[f.render() for f in findings]}")

    residue = run(_clean_tree())
    if residue:
        failures.append("clean tree not clean: "
                        + "; ".join(f.render() for f in residue))

    # 1. Layering: sfc may only see common.
    t = _clean_tree()
    t["src/sfc/curve.h"] += "#include \"sched/sched.h\"\n"
    expect("layer-dag", run(t), "layering", "may not depend on `sched`")

    # 1b. Seam: core may see obs/tracer.h but nothing else in obs.
    t = _clean_tree()
    t["src/core/hot.h"] += "#include \"obs/recorder.h\"\n"
    expect("seam", run(t), "layering", "obs/recorder.h")

    # 2. Hot-alloc, inline body: unmarked growth call.
    t = _clean_tree()
    t["src/core/hot.h"] = t["src/core/hot.h"].replace(
        "    // new std::function push_back in a comment is fine\n",
        "    names_.push_back(v);\n")
    expect("hot-growth", run(t), "hot-alloc", "container growth call")

    # 2b. Hot-alloc through a declaration: definition lives in the .cc.
    t = _clean_tree()
    t["src/sched/sched.cc"] = (
        "#include \"sched/sched.h\"\n"
        "int FooSched::Dispatch(long now) { return *(new int(7)); }\n")
    expect("hot-decl-def", run(t), "hot-alloc", "operator new")

    # 2c. Lock-holding function allocating under the capability.
    t = _clean_tree()
    t["src/common/mutex.h"] = t["src/common/mutex.h"].replace(
        "counter_ += 1;", "slot_ = std::make_unique<int>(1);")
    expect("lock-alloc", run(t), "hot-alloc", "make_unique")

    # 2d. Hot-coverage: a pinned entry point loses its annotation. The
    # function still exists, so only the coverage rule (not hot-alloc)
    # can notice.
    t = _clean_tree()
    t["src/sched/sched.h"] = t["src/sched/sched.h"].replace(
        "CSFC_HOT int Dispatch(long now);", "int Dispatch(long now);")
    expect("hot-coverage", run(t), "hot-coverage", "FooSched::Dispatch")

    # 2e. Hot-coverage: a pinned entry point disappears entirely.
    t = _clean_tree()
    t["src/sched/sched.h"] = t["src/sched/sched.h"].replace(
        "CSFC_HOT int Dispatch(long now);", "")
    expect("hot-coverage-gone", run(t), "hot-coverage", "FooSched::Dispatch")

    # 3. Exception safety: move ctor loses noexcept.
    t = _clean_tree()
    t["src/common/request.h"] = t["src/common/request.h"].replace(
        "Request(Request&&) noexcept = default;", "Request(Request&&);")
    expect("move-noexcept", run(t), "noexcept-move", "move\nconstructor"
           .replace("\n", " "))

    # 3b. Status without [[nodiscard]].
    t = _clean_tree()
    t["src/common/status.h"] = "class Status {};\n"
    expect("nodiscard", run(t), "nodiscard", "[[nodiscard]]")

    # Controls: alloc-ok marker, NDEBUG block, comment tokens and
    # iterator typedefs must all stay silent (checked by the clean run
    # above — reassert to make the intent explicit).
    residue = [f for f in run(_clean_tree()) if f.rule == "hot-alloc"]
    if residue:
        failures.append("hot-alloc controls tripped: "
                        + "; ".join(f.render() for f in residue))

    if failures:
        print("csfc_analyze self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("csfc_analyze self-test OK (4 rule families, "
          "seeded violations all caught)")
    return 0


# --- seeded violations on the real tree -------------------------------------

SEEDS: Dict[str, Dict[str, str]] = {
    "layering": {
        "src/sfc/_seeded_layering.h": "#include \"sched/scheduler.h\"\n",
    },
    "hot-alloc": {
        "src/core/_seeded_hot.h":
            "#include \"common/annotations.h\"\n"
            "CSFC_HOT inline int* SeededLeak() { return new int(7); }\n",
    },
    "exc-safety": {
        "src/workload/_seeded_mover.h":
            "class SeededMover {\n"
            " public:\n"
            "  SeededMover(SeededMover&& o);\n"
            "  SeededMover& operator=(SeededMover&& o);\n"
            "};\n",
    },
    "hot-coverage": {
        # A hot-path-shaped class with no CSFC_HOT anywhere; apply_seed
        # pins its Push as a required entry point.
        "src/core/_seeded_cold.h":
            "class SeededCold {\n"
            " public:\n"
            "  void Push(int v) { last_ = v; }\n"
            " private:\n"
            "  int last_ = 0;\n"
            "};\n",
    },
}


def apply_seed(rule: str, tree: Tree, contracts: Contracts,
               manifest: Manifest) -> Tuple[Contracts, Manifest]:
    tree.update(SEEDS[rule])
    if rule == "exc-safety":
        contracts = Contracts(
            nothrow_move=contracts.nothrow_move
            + [("src/workload/_seeded_mover.h", "SeededMover")],
            nodiscard=contracts.nodiscard)
    elif rule == "hot-coverage":
        manifest = manifest._replace(
            hot_entry_points=manifest.hot_entry_points
            + ["SeededCold::Push"])
    return contracts, manifest


# --- CLI --------------------------------------------------------------------


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo", type=Path,
                        default=Path(__file__).resolve().parents[2],
                        help="repository root (default: two levels up)")
    parser.add_argument("--compdb", type=Path, default=None,
                        help="compile_commands.json or its directory "
                             "(default: <repo>/build/compile_commands.json)")
    parser.add_argument("--layers", type=Path, default=None,
                        help="layer manifest (default: layers.toml next to "
                             "this script)")
    parser.add_argument("--engine", choices=("auto", "libclang", "regex"),
                        default="auto",
                        help="auto prefers libclang and falls back to the "
                             "regex engine with a notice")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule catches a seeded violation")
    parser.add_argument("--seed-violation", choices=sorted(SEEDS),
                        default=None,
                        help="inject one in-memory violation of the given "
                             "rule into the real tree (forces the regex "
                             "engine); the run must then exit 1")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    repo = args.repo.resolve()
    if not (repo / "src").is_dir():
        print(f"csfc_analyze: {repo} does not look like the repo root",
              file=sys.stderr)
        return 2
    layers_path = args.layers or Path(__file__).resolve().parent / \
        "layers.toml"
    if not layers_path.is_file():
        print(f"csfc_analyze: layer manifest {layers_path} not found",
              file=sys.stderr)
        return 2
    try:
        manifest = parse_manifest(layers_path.read_text(encoding="utf-8"))
    except Exception as e:  # noqa: BLE001 - toml errors are user errors
        print(f"csfc_analyze: bad manifest {layers_path}: {e}",
              file=sys.stderr)
        return 2

    tree = load_tree(repo)
    contracts = DEFAULT_CONTRACTS
    if args.seed_violation:
        if args.engine == "libclang":
            print("csfc_analyze: --seed-violation injects in-memory files "
                  "the libclang engine cannot see; use --engine=auto or "
                  "regex", file=sys.stderr)
            return 2
        contracts, manifest = apply_seed(args.seed_violation, tree,
                                         contracts, manifest)

    compdb = args.compdb or repo / "build" / "compile_commands.json"
    use_libclang = False
    if args.engine in ("auto", "libclang") and not args.seed_violation:
        cx = load_libclang()
        if cx is not None and compdb.exists():
            use_libclang = True
        elif args.engine == "libclang":
            reason = ("python clang bindings / libclang not available"
                      if cx is None else f"{compdb} not found")
            print(f"csfc_analyze: libclang engine forced but {reason}",
                  file=sys.stderr)
            return 2
        else:
            reason = ("libclang unavailable" if cx is None
                      else f"no compilation database at {compdb}")
            print(f"csfc_analyze: {reason}; falling back to regex engine "
                  f"(hot-path scan covers annotated bodies only, no "
                  f"transitive call graph)", file=sys.stderr)

    if use_libclang:
        try:
            engine = LibclangEngine(cx, repo, compdb)
            findings, warnings = engine.analyze(manifest, contracts, tree)
            for w in warnings:
                print(f"csfc_analyze: warning: {w}", file=sys.stderr)
            label = "libclang"
        except Exception as e:  # noqa: BLE001
            if args.engine == "libclang":
                print(f"csfc_analyze: libclang engine failed: {e}",
                      file=sys.stderr)
                return 2
            print(f"csfc_analyze: libclang engine failed ({e}); falling "
                  f"back to regex engine", file=sys.stderr)
            findings = run_regex_engine(tree, manifest, contracts)
            label = "regex"
    else:
        findings = run_regex_engine(tree, manifest, contracts)
        label = "regex"

    for f in findings:
        print(f.render(), file=sys.stderr)
    if findings:
        print(f"csfc_analyze[{label}]: {len(findings)} finding(s) in "
              f"{len(tree)} files", file=sys.stderr)
        return 1
    print(f"csfc_analyze[{label}]: OK ({len(tree)} files, 4 rule families)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
