// csfc_curves: inspect the space-filling-curve library from the command
// line — draw a curve's traversal on a small 2-D grid, or print the
// locality / per-dimension-bias analysis for any grid.
//
// Usage:
//   csfc_curves draw <curve> [bits]          # ASCII traversal, 2-D
//   csfc_curves analyze <curve> <dims> <bits>
//   csfc_curves list

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sfc/locality.h"
#include "sfc/registry.h"

using namespace csfc;

namespace {

int Draw(const std::string& name, uint32_t bits) {
  GridSpec spec{.dims = 2, .bits = bits};
  auto curve = MakeCurve(name, spec);
  if (!curve.ok()) {
    std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
    return 1;
  }
  const uint64_t side = spec.side();
  std::vector<uint64_t> order(side * side);
  std::vector<uint32_t> p(2);
  for (uint64_t i = 0; i < spec.num_cells(); ++i) {
    (*curve)->Point(i, std::span<uint32_t>(p.data(), 2));
    order[p[0] * side + p[1]] = i;
  }
  std::printf("%s over a %llu x %llu grid (cell label = curve position):\n\n",
              name.c_str(), static_cast<unsigned long long>(side),
              static_cast<unsigned long long>(side));
  for (uint64_t x0 = 0; x0 < side; ++x0) {
    for (uint64_t x1 = 0; x1 < side; ++x1) {
      std::printf("%4llu",
                  static_cast<unsigned long long>(order[x0 * side + x1]));
    }
    std::printf("\n");
  }
  return 0;
}

int Analyze(const std::string& name, uint32_t dims, uint32_t bits) {
  auto curve = MakeCurve(name, GridSpec{.dims = dims, .bits = bits});
  if (!curve.ok()) {
    std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
    return 1;
  }
  auto stats = AnalyzeCurve(**curve);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("%s, %u dims x %u bits (%llu cells)\n", name.c_str(), dims,
              bits, static_cast<unsigned long long>((*curve)->num_cells()));
  std::printf("  contiguous steps: %llu\n",
              static_cast<unsigned long long>(stats->contiguous_steps));
  std::printf("  jumps:            %llu\n",
              static_cast<unsigned long long>(stats->jumps));
  std::printf("  mean step L1:     %.3f (max %llu)\n", stats->mean_step_l1,
              static_cast<unsigned long long>(stats->max_step_l1));
  std::printf("  per-dimension inversion rate (0.5 = no order carried):\n");
  for (size_t k = 0; k < stats->dim_inversion_rate.size(); ++k) {
    std::printf("    d%zu: %.3f\n", k, stats->dim_inversion_rate[k]);
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: csfc_curves draw <curve> [bits]\n"
               "       csfc_curves analyze <curve> <dims> <bits>\n"
               "       csfc_curves list\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "list") == 0) {
    std::printf("curves:");
    for (auto n : AllCurveNames()) std::printf(" %s", std::string(n).c_str());
    std::printf("\n");
    return 0;
  }
  if (std::strcmp(argv[1], "draw") == 0 && argc >= 3) {
    const uint32_t bits = argc >= 4 ? static_cast<uint32_t>(std::atoi(argv[3])) : 3;
    return Draw(argv[2], bits);
  }
  if (std::strcmp(argv[1], "analyze") == 0 && argc == 5) {
    return Analyze(argv[2], static_cast<uint32_t>(std::atoi(argv[3])),
                   static_cast<uint32_t>(std::atoi(argv[4])));
  }
  return Usage();
}
