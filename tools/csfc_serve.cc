// csfc_serve: the real-time service front-end CLI (DESIGN.md section 12).
//
// Generates a workload with the same shared flags as csfc_sim, then
// offers it to a svc::ServiceServer — admission gates, bounded MPSC
// ingest ring, dispatcher pump over any registered scheduler — and
// reports the enqueue-to-dispatch latency tail (p50/p99/p999) plus the
// admission accounting.
//
// Modes:
//   --virtual         deterministic virtual-time run on the main thread;
//                     dispatch order is bit-identical to csfc_sim fed the
//                     same admitted set, and traces are stable run-to-run.
//   (default)         wall-clock mode: --producers threads offer the
//                     workload open-loop (--pace scales the generated
//                     arrival times; 0 = offer as fast as possible, the
//                     soak configuration), the pump serves with
//                     --time-scale pacing.
//
// Observability:
//   --trace-jsonl=F   stream every lifecycle event (ingest/admit/reject/
//                     enqueue/dispatch/drain/completion) as JSONL. Events
//                     in wall-clock mode are stamped on their producing
//                     thread, so timestamps may interleave within a
//                     millisecond; --virtual traces are strictly ordered
//                     (what trace_inspect expects).
//   --windows=MS      windowed SLO metrics (obs::SloMetrics): per-window
//                     offered/admitted/shed and wait-latency percentiles,
//                     exported as CSV to --windows-out (default stdout).
//   --json            machine-readable run summary on stdout.
//
// Examples:
//   csfc_serve --virtual --count=20000 --interarrival=2 --slo=50
//   csfc_serve --producers=8 --count=100000 --stream-rate=200 --windows=100
//   csfc_serve --virtual --trace-jsonl=run.jsonl && trace_inspect run.jsonl

#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli_flags.h"
#include "obs/export.h"
#include "obs/slo.h"

using namespace csfc;

namespace {

/// Forwards each event to every registered sink. The server serializes
/// emissions through its internal lock, so the fan-out itself needs none.
struct FanoutSink final : obs::EventSink {
  std::vector<obs::EventSink*> sinks;
  void OnEvent(const obs::TraceEvent& event) override {
    for (obs::EventSink* s : sinks) s->OnEvent(event);
  }
};

struct ServeArgs {
  size_t producers = 4;
  bool run_virtual = false;
  double pace = 0.0;  ///< wall-clock seconds per generated arrival second
  double time_scale = 0.0;
  double slo_ms = 0.0;
  double stream_rate = 0.0;
  double stream_burst = 0.0;
  uint32_t max_streams = 64;
  size_t ring = 1024;
  size_t drain_batch = 64;
  double windows_ms = 0.0;
  std::string windows_out;
  std::string trace_jsonl;
  bool json = false;
  bool list = false;
};

void AddServeFlags(tools::FlagSet& flags, ServeArgs* a) {
  flags.AddBool("virtual", "deterministic virtual-time run", &a->run_virtual);
  flags.AddSize("producers", "producer threads (wall-clock mode)",
                &a->producers);
  flags.AddDouble("pace",
                  "arrival pacing: wall seconds per workload second (0 = "
                  "offer as fast as possible)",
                  &a->pace);
  flags.AddDouble("time-scale",
                  "service pacing: wall fraction of modeled service time "
                  "(0 = no pacing)",
                  &a->time_scale);
  flags.AddDouble("slo", "admission wait SLO in ms (0 = no load gate)",
                  &a->slo_ms);
  flags.AddDouble("stream-rate",
                  "per-stream token rate in req/s (0 = no rate gate)",
                  &a->stream_rate);
  flags.AddDouble("stream-burst", "token bucket depth (0 = derive from rate)",
                  &a->stream_burst);
  flags.AddUint32("max-streams", "token bucket count", &a->max_streams);
  flags.AddSize("ring", "ingest ring capacity (rounded to power of two)",
                &a->ring);
  flags.AddSize("drain-batch", "max requests drained per pump iteration",
                &a->drain_batch);
  flags.AddDouble("windows", "SLO window width in ms (0 = off)",
                  &a->windows_ms);
  flags.AddString("windows-out", "FILE", "write the SLO window CSV here",
                  &a->windows_out);
  flags.AddString("trace-jsonl", "FILE",
                  "stream lifecycle events as JSONL (DESIGN.md section 10)",
                  &a->trace_jsonl);
  flags.AddBool("json", "print the run summary as JSON", &a->json);
  flags.AddBool("list", "list registered schedulers and exit", &a->list);
}

/// Offers this producer's round-robin share in arrival order, pacing
/// against the wall clock when `pace` > 0 (due = start + arrival * pace,
/// start = this thread's first observation of its own clock).
void ProducerLoop(svc::ServiceServer* server, const std::vector<Request>* all,
                  size_t producer, size_t stride, double pace) {
  MonotonicClock clock;
  const int64_t start_us = clock.NowUs();
  for (size_t i = producer; i < all->size(); i += stride) {
    Request r = (*all)[i];
    if (pace > 0.0) {
      const int64_t due_us =
          start_us + static_cast<int64_t>(SimToMs(r.arrival) * 1000.0 * pace);
      const int64_t wait_us = due_us - clock.NowUs();
      if (wait_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(wait_us));
      }
    }
    server->Offer(std::move(r));
  }
}

void PrintSummary(const svc::ServiceStats& stats, const std::string& sched,
                  bool run_virtual, bool json) {
  const auto& a = stats.admission;
  if (json) {
    std::printf(
        "{\"scheduler\":\"%s\",\"mode\":\"%s\",\"offered\":%llu,"
        "\"admitted\":%llu,\"rejected_rate\":%llu,\"rejected_load\":%llu,"
        "\"rejected_ring_full\":%llu,\"enqueued\":%llu,\"dispatched\":%llu,"
        "\"completions\":%llu,\"wait_ms\":{\"p50\":%.6f,\"p99\":%.6f,"
        "\"p999\":%.6f,\"max\":%.6f,\"mean\":%.6f}}\n",
        sched.c_str(), run_virtual ? "virtual" : "realtime",
        static_cast<unsigned long long>(a.offered),
        static_cast<unsigned long long>(a.admitted),
        static_cast<unsigned long long>(a.rejected_rate),
        static_cast<unsigned long long>(a.rejected_load),
        static_cast<unsigned long long>(a.rejected_ring_full),
        static_cast<unsigned long long>(stats.enqueued),
        static_cast<unsigned long long>(stats.dispatched),
        static_cast<unsigned long long>(stats.completions),
        stats.p50_wait_ms, stats.p99_wait_ms, stats.p999_wait_ms,
        stats.max_wait_ms, stats.mean_wait_ms);
    return;
  }
  std::printf("scheduler:        %s (%s mode)\n", sched.c_str(),
              run_virtual ? "virtual" : "realtime");
  std::printf("offered:          %llu\n",
              static_cast<unsigned long long>(a.offered));
  std::printf("admitted:         %llu\n",
              static_cast<unsigned long long>(a.admitted));
  std::printf("rejected:         %llu (rate %llu, load %llu, ring_full %llu)\n",
              static_cast<unsigned long long>(a.rejected()),
              static_cast<unsigned long long>(a.rejected_rate),
              static_cast<unsigned long long>(a.rejected_load),
              static_cast<unsigned long long>(a.rejected_ring_full));
  std::printf("served:           %llu enqueued, %llu dispatched, %llu done\n",
              static_cast<unsigned long long>(stats.enqueued),
              static_cast<unsigned long long>(stats.dispatched),
              static_cast<unsigned long long>(stats.completions));
  std::printf("wait latency:     p50 %.3f ms  p99 %.3f ms  p999 %.3f ms"
              "  max %.3f ms  mean %.3f ms\n",
              stats.p50_wait_ms, stats.p99_wait_ms, stats.p999_wait_ms,
              stats.max_wait_ms, stats.mean_wait_ms);
}

}  // namespace

int main(int argc, char** argv) {
  tools::WorkloadFlags wf;
  wf.cfg.count = 20000;
  tools::SchedulerFlags sf;
  ServeArgs args;

  tools::FlagSet flags("csfc_serve");
  AddServeFlags(flags, &args);
  tools::AddSchedulerFlags(flags, &sf);
  tools::AddWorkloadFlags(flags, &wf);
  if (int rc = flags.Parse(argc, argv); rc != 0) return rc;

  if (args.list) {
    std::printf("schedulers:");
    for (auto n : AllSchedulerNames()) std::printf(" %s", std::string(n).c_str());
    std::printf("\n");
    return 0;
  }

  auto offered = tools::BuildWorkload(wf);
  if (!offered.ok()) {
    std::fprintf(stderr, "%s\n", offered.status().ToString().c_str());
    return 1;
  }

  ServerConfig config;
  if (Status s = tools::ApplySchedulerFlags(sf, wf, &config); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  config.WithSlo(args.slo_ms)
      .WithStreamRate(args.stream_rate, args.stream_burst)
      .WithIngest(args.ring, args.drain_batch)
      .WithTimeScale(args.time_scale);
  config.admission.max_streams = args.max_streams;

  // Observability: optional JSONL stream and/or windowed SLO metrics,
  // fanned out behind the server's serializing lock.
  std::optional<obs::FileWriter> trace_file;
  std::optional<obs::JsonlSink> trace_sink;
  std::optional<obs::SloMetrics> slo;
  FanoutSink fanout;
  if (!args.trace_jsonl.empty()) {
    auto opened = obs::FileWriter::Open(args.trace_jsonl);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    trace_file.emplace(std::move(*opened));
    trace_sink.emplace(*trace_file);
    fanout.sinks.push_back(&*trace_sink);
  }
  if (args.windows_ms > 0.0) {
    slo.emplace(args.windows_ms);
    fanout.sinks.push_back(&*slo);
  }
  if (!fanout.sinks.empty()) config.WithTraceSink(&fanout);

  auto handle = MakeServer(config);
  if (!handle.ok()) {
    std::fprintf(stderr, "%s\n", handle.status().ToString().c_str());
    return 1;
  }
  svc::ServiceServer& server = *handle->server;

  svc::ServiceStats stats;
  if (args.run_virtual) {
    stats = server.RunVirtual(std::move(*offered));
  } else {
    if (args.producers == 0) args.producers = 1;
    if (Status s = server.Start(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::vector<std::thread> producers;
    producers.reserve(args.producers);
    for (size_t p = 0; p < args.producers; ++p) {
      producers.emplace_back(ProducerLoop, &server, &*offered, p,
                             args.producers, args.pace);
    }
    for (std::thread& t : producers) t.join();
    server.Stop();
    stats = server.Stats();
  }

  if (trace_sink) {
    if (!trace_sink->status().ok()) {
      std::fprintf(stderr, "trace write failed: %s\n",
                   trace_sink->status().ToString().c_str());
      return 1;
    }
    if (Status s = trace_file->Close(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "trace written: %s (%llu events)\n",
                 args.trace_jsonl.c_str(),
                 static_cast<unsigned long long>(trace_sink->events_written()));
  }

  if (slo) {
    Status written = Status::OK();
    if (!args.windows_out.empty()) {
      auto opened = obs::FileWriter::Open(args.windows_out);
      if (!opened.ok()) {
        std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
        return 1;
      }
      written = obs::Export(*slo, *opened, obs::ExportFormat::kCsv);
      if (written.ok()) written = opened->Close();
    } else if (!args.json) {
      // Keep stdout parseable in --json mode; the windows go to a file
      // there or not at all.
      obs::StringWriter w;
      written = obs::Export(*slo, w, obs::ExportFormat::kCsv);
      if (written.ok()) std::printf("%s", w.str().c_str());
    }
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }

  PrintSummary(stats, config.scheduler, args.run_virtual, args.json);
  return 0;
}
