// One flag table per tool, driving BOTH the parser and the help text.
//
// csfc_sim's hand-rolled Usage() string had drifted from its if/else
// parser chain (flags that parsed but were missing from the help, and
// vice versa). Here a flag exists iff it was Add()ed: Parse() dispatches
// over the table and PrintUsage()/PrintHelp() render the same table, so
// the two cannot disagree. csfc_sim and csfc_serve both build their sets
// from these helpers, sharing the workload/trace/scheduler flags through
// AddWorkloadFlags/AddSchedulerFlags below.
//
// Syntax accepted: --name=VALUE for valued flags, bare --name for
// booleans, --help/-h for the generated help. Unknown flags and
// malformed values print usage and fail.

#ifndef CSFC_TOOLS_CLI_FLAGS_H_
#define CSFC_TOOLS_CLI_FLAGS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/simd.h"
#include "exp/server_config.h"
#include "workload/edl.h"
#include "workload/generator.h"
#include "workload/mpeg.h"
#include "workload/trace.h"

namespace csfc {
namespace tools {

class FlagSet {
 public:
  explicit FlagSet(std::string prog) : prog_(std::move(prog)) {}

  /// Valued flag: --name=METAVAR. `parse` returns false on a bad value.
  void Add(std::string name, std::string metavar, std::string help,
           std::function<bool(const std::string&)> parse) {
    flags_.push_back({std::move(name), std::move(metavar), std::move(help),
                      std::move(parse)});
  }

  /// Boolean flag: bare --name sets *out = true.
  void AddBool(std::string name, std::string help, bool* out) {
    flags_.push_back({std::move(name), "", std::move(help),
                      [out](const std::string&) {
                        *out = true;
                        return true;
                      }});
  }

  void AddString(std::string name, std::string metavar, std::string help,
                 std::string* out) {
    Add(std::move(name), std::move(metavar), std::move(help),
        [out](const std::string& v) {
          *out = v;
          return true;
        });
  }

  void AddDouble(std::string name, std::string help, double* out) {
    Add(std::move(name), "X", std::move(help), [out](const std::string& v) {
      char* end = nullptr;
      *out = std::strtod(v.c_str(), &end);
      return end != nullptr && *end == '\0' && end != v.c_str();
    });
  }

  void AddUint32(std::string name, std::string help, uint32_t* out) {
    Add(std::move(name), "N", std::move(help), [out](const std::string& v) {
      char* end = nullptr;
      const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0') return false;
      *out = static_cast<uint32_t>(x);
      return true;
    });
  }

  void AddUint64(std::string name, std::string help, uint64_t* out) {
    Add(std::move(name), "N", std::move(help), [out](const std::string& v) {
      char* end = nullptr;
      *out = std::strtoull(v.c_str(), &end, 10);
      return end != v.c_str() && *end == '\0';
    });
  }

  void AddSize(std::string name, std::string help, size_t* out) {
    Add(std::move(name), "N", std::move(help), [out](const std::string& v) {
      char* end = nullptr;
      const unsigned long long x = std::strtoull(v.c_str(), &end, 10);
      if (end == v.c_str() || *end != '\0') return false;
      *out = static_cast<size_t>(x);
      return true;
    });
  }

  /// "LO:HI" pair.
  void AddRange(std::string name, std::string help, double* lo, double* hi) {
    Add(std::move(name), "LO:HI", std::move(help),
        [lo, hi](const std::string& v) {
          const size_t colon = v.find(':');
          if (colon == std::string::npos) return false;
          *lo = std::atof(v.substr(0, colon).c_str());
          *hi = std::atof(v.substr(colon + 1).c_str());
          return true;
        });
  }

  /// Parses argv. Returns 0 on success; 2 on a usage error (usage already
  /// printed to stderr). --help/-h prints the full help to stdout and
  /// exits the process with 0.
  int Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
        PrintHelp(stdout);
        std::exit(0);
      }
      if (std::strncmp(arg, "--", 2) != 0) {
        std::fprintf(stderr, "%s: unexpected argument '%s'\n", prog_.c_str(),
                     arg);
        PrintUsage(stderr);
        return 2;
      }
      const char* body = arg + 2;
      const char* eq = std::strchr(body, '=');
      const std::string name =
          eq != nullptr ? std::string(body, static_cast<size_t>(eq - body))
                        : std::string(body);
      const Flag* flag = FindFlag(name);
      if (flag == nullptr) {
        std::fprintf(stderr, "%s: unknown flag --%s\n", prog_.c_str(),
                     name.c_str());
        PrintUsage(stderr);
        return 2;
      }
      const bool boolean = flag->metavar.empty();
      if (boolean != (eq == nullptr)) {
        std::fprintf(stderr, "%s: flag --%s %s a value\n", prog_.c_str(),
                     name.c_str(), boolean ? "does not take" : "requires");
        PrintUsage(stderr);
        return 2;
      }
      if (!flag->parse(eq != nullptr ? std::string(eq + 1) : std::string())) {
        std::fprintf(stderr, "%s: bad value for --%s\n", prog_.c_str(),
                     name.c_str());
        PrintUsage(stderr);
        return 2;
      }
    }
    return 0;
  }

  /// Single-line usage synopsis, generated from the table.
  void PrintUsage(std::FILE* out) const {
    std::fprintf(out, "usage: %s", prog_.c_str());
    size_t col = prog_.size() + 7;
    for (const Flag& f : flags_) {
      std::string item = " [--" + f.name;
      if (!f.metavar.empty()) item += "=" + f.metavar;
      item += "]";
      if (col + item.size() > 78) {
        std::fprintf(out, "\n       ");
        col = 7;
      }
      std::fprintf(out, "%s", item.c_str());
      col += item.size();
    }
    std::fprintf(out, "\n");
  }

  /// Full help: usage plus one aligned line per flag.
  void PrintHelp(std::FILE* out) const {
    PrintUsage(out);
    size_t width = 0;
    for (const Flag& f : flags_) {
      size_t w = f.name.size();
      if (!f.metavar.empty()) w += 1 + f.metavar.size();
      width = width > w ? width : w;
    }
    for (const Flag& f : flags_) {
      std::string head = "--" + f.name;
      if (!f.metavar.empty()) head += "=" + f.metavar;
      std::fprintf(out, "  %-*s  %s\n", static_cast<int>(width + 2),
                   head.c_str(), f.help.c_str());
    }
  }

 private:
  struct Flag {
    std::string name;
    std::string metavar;  ///< empty = boolean
    std::string help;
    std::function<bool(const std::string&)> parse;
  };

  const Flag* FindFlag(const std::string& name) const {
    for (const Flag& f : flags_) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }

  std::string prog_;
  std::vector<Flag> flags_;
};

// ---------------------------------------------------------------------
// Shared flag blocks. csfc_sim and csfc_serve register the workload and
// scheduler flags through these helpers, so a new knob lands in both
// tools (parser and help alike) from one edit here.

/// Workload selection and synthesis knobs.
struct WorkloadFlags {
  std::string kind = "synthetic";  ///< synthetic | mpeg | edl
  uint32_t users = 40;             ///< mpeg streams / edl editors
  double duration_ms = 20000.0;    ///< mpeg horizon
  WorkloadConfig cfg;              ///< synthetic knobs + shared seed/shape
};

inline void AddWorkloadFlags(FlagSet& flags, WorkloadFlags* w) {
  flags.AddString("workload", "KIND", "workload family: synthetic|mpeg|edl",
                  &w->kind);
  flags.AddUint32("users", "mpeg streams / edl editors", &w->users);
  flags.AddDouble("duration", "mpeg workload horizon in ms",
                  &w->duration_ms);
  flags.AddUint64("count", "synthetic request count", &w->cfg.count);
  flags.AddDouble("interarrival", "mean interarrival in ms",
                  &w->cfg.mean_interarrival_ms);
  flags.AddUint32("burst", "requests per arrival burst", &w->cfg.burst_size);
  flags.AddUint32("dims", "priority dimensions", &w->cfg.priority_dims);
  flags.AddUint32("levels", "priority levels per dimension",
                  &w->cfg.priority_levels);
  flags.AddRange("deadline", "relative deadline range in ms",
                 &w->cfg.deadline_lo_ms, &w->cfg.deadline_hi_ms);
  flags.Add("bytes", "LO:HI", "request size range in bytes",
            [w](const std::string& v) {
              const size_t colon = v.find(':');
              if (colon == std::string::npos) return false;
              w->cfg.bytes_lo = std::strtoull(v.c_str(), nullptr, 10);
              w->cfg.bytes_hi =
                  std::strtoull(v.c_str() + colon + 1, nullptr, 10);
              return true;
            });
  flags.AddUint64("seed", "workload RNG seed", &w->cfg.seed);
  flags.AddBool("relaxed", "relaxed (far-future) deadlines",
                &w->cfg.relaxed_deadlines);
}

/// Generates the arrival stream the flags describe.
inline Result<std::vector<Request>> BuildWorkload(const WorkloadFlags& w) {
  if (w.kind == "mpeg") {
    MpegWorkloadConfig mc;
    mc.seed = w.cfg.seed;
    mc.num_users = w.users;
    mc.duration_ms = w.duration_ms;
    mc.user_phase_spread_ms = mc.PeriodMs() - mc.batch_jitter_ms;
    auto gen = MpegStreamGenerator::Create(mc);
    if (!gen.ok()) return gen.status();
    return DrainGenerator(**gen);
  }
  if (w.kind == "edl") {
    EdlWorkloadConfig ec;
    ec.seed = w.cfg.seed;
    ec.num_editors = w.users;
    auto gen = EdlWorkloadGenerator::Create(ec);
    if (!gen.ok()) return gen.status();
    return DrainGenerator(**gen);
  }
  if (w.kind == "synthetic") {
    auto gen = SyntheticGenerator::Create(w.cfg);
    if (!gen.ok()) return gen.status();
    return DrainGenerator(**gen);
  }
  return Status::InvalidArgument("unknown --workload=" + w.kind +
                                 " (synthetic|mpeg|edl)");
}

/// Scheduler selection and cascaded-preset knobs.
struct SchedulerFlags {
  std::string sched = "csfc";
  std::string sfc1 = "hilbert";
  double f = 1.0;
  uint32_t r = 3;
  double window = 0.05;
  std::string queue = "calendar";  ///< flat | calendar (the default backend)
  std::string simd;                ///< empty = leave the CSFC_SIMD env alone
  bool transfer_only = false;
};

inline void AddSchedulerFlags(FlagSet& flags, SchedulerFlags* s) {
  flags.AddString("sched", "NAME", "scheduler registry name (see --list)",
                  &s->sched);
  flags.AddString("sfc1", "CURVE", "stage-1 curve (hilbert|diagonal|...)",
                  &s->sfc1);
  flags.AddDouble("f", "stage-2 balance factor", &s->f);
  flags.AddUint32("r", "stage-3 partition count", &s->r);
  flags.AddDouble("window", "conditional-preemption window fraction",
                  &s->window);
  flags.AddString("queue", "flat|calendar", "dispatcher queue backend",
                  &s->queue);
  flags.AddString("simd", "auto|scalar|sse2|avx2",
                  "characterization kernel lane width (default: CSFC_SIMD "
                  "env, else auto)",
                  &s->simd);
  flags.AddBool("transfer-only", "service time = transfer only (no seek)",
                &s->transfer_only);
}

/// Folds the scheduler and workload flags into a ServerConfig: policy
/// name, service model, metrics shape, and the cascaded preset (shape
/// knobs reuse the workload's dims/levels/deadline horizon).
inline Status ApplySchedulerFlags(const SchedulerFlags& s,
                                  const WorkloadFlags& w, ServerConfig* out) {
  if (s.queue != "flat" && s.queue != "calendar") {
    return Status::InvalidArgument("unknown --queue=" + s.queue +
                                   " (flat|calendar)");
  }
  if (!s.simd.empty()) {
    // --simd sets the process-wide override (the same knob CSFC_SIMD
    // binds), so it governs every encapsulator the tool creates; when
    // the flag is absent, whatever the environment latched stands.
    simd::Mode mode;
    if (!simd::ParseMode(s.simd, &mode)) {
      return Status::InvalidArgument("unknown --simd=" + s.simd +
                                     " (auto|scalar|sse2|avx2)");
    }
    simd::SetOverride(mode);
  }
  out->WithScheduler(s.sched)
      .WithServiceModel(s.transfer_only ? ServiceModel::kTransferOnly
                                        : ServiceModel::kFullDisk)
      .WithMetricsShape(w.cfg.priority_dims, w.cfg.priority_levels)
      .WithCascaded(PresetFull(s.sfc1, w.cfg.priority_dims, /*bits=*/4, s.f,
                               s.r, out->sim.disk.cylinders, s.window,
                               w.cfg.deadline_hi_ms))
      .WithQueueBackend(s.queue == "calendar" ? QueueBackend::kCalendar
                                              : QueueBackend::kFlat);
  return Status::OK();
}

}  // namespace tools
}  // namespace csfc

#endif  // CSFC_TOOLS_CLI_FLAGS_H_
