// bench_check: schema validator for BENCH_hotpath.json.
//
// CI's perf-smoke step runs bench_micro_hotpath and then this tool, so a
// refactor that silently drops a section, renames a field, or starts
// emitting NaN/zero throughput fails the build rather than producing a
// BENCH file that looks plausible until someone reads it. Row objects are
// flat, so each one is handed to obs::ParseFlatJsonObject — the same
// parser the observability export path trusts; only the section slicing
// is local.
//
// Usage: bench_check [path]   (default: BENCH_hotpath.json)
// Exit:  0 schema ok, 1 violation, 2 usage/IO error.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace {

using csfc::obs::JsonObject;
using csfc::obs::JsonScalar;

struct SectionSpec {
  const char* name;
  std::vector<const char*> number_fields;
  std::vector<const char*> string_fields;
};

// One spec per section bench_micro_hotpath emits. Adding a section to the
// bench without adding it here is intentional friction: the spec is the
// contract downstream dashboards parse against.
const std::vector<SectionSpec>& Specs() {
  static const std::vector<SectionSpec> specs = {
      {"characterize", {"direct_rps", "lut_rps", "speedup"}, {"config"}},
      {"characterize_simd",
       {"batch", "scalar_rps", "sse2_rps", "avx2_rps", "auto_rps",
        "speedup_sse2", "speedup_avx2"},
       {"auto_backend"}},
      {"dispatcher_insert_pop",
       {"depth", "map_ops_per_sec", "flat_ops_per_sec", "speedup"},
       {}},
      {"dispatcher_calendar",
       {"depth", "map_ops_per_sec", "flat_ops_per_sec",
        "calendar_ops_per_sec", "speedup_vs_map", "speedup_vs_flat"},
       {}},
      {"rekey_batch", {"depth", "scalar_rps", "batch_rps", "speedup"}, {}},
      {"service_frontend",
       {"producers", "offered", "admitted", "offers_per_sec",
        "dispatch_per_sec", "p50_wait_ms", "p99_wait_ms", "p999_wait_ms",
        "max_wait_ms"},
       {}},
  };
  return specs;
}

// Extracts the flat row objects of `"name": [ {...}, {...} ]`. Returns
// false if the section key is missing or its array is malformed.
bool SliceSection(std::string_view text, std::string_view name,
                  std::vector<std::string>* rows) {
  // Built piecewise: GCC 12's -Wrestrict false-positives on
  // `"literal" + std::string(view)` once this call gets inlined.
  std::string key;
  key.reserve(name.size() + 2);
  key.push_back('"');
  key.append(name);
  key.push_back('"');
  size_t pos = text.find(key);
  if (pos == std::string_view::npos) return false;
  pos = text.find('[', pos + key.size());
  if (pos == std::string_view::npos) return false;
  size_t i = pos + 1;
  while (i < text.size()) {
    if (text[i] == ']') return true;
    if (text[i] == '{') {
      int depth = 0;
      const size_t start = i;
      for (; i < text.size(); ++i) {
        // Row objects are flat by construction; braces inside strings do
        // not occur in the bench's field names or config labels.
        if (text[i] == '{') ++depth;
        if (text[i] == '}' && --depth == 0) {
          ++i;
          break;
        }
      }
      if (depth != 0) return false;
      rows->emplace_back(text.substr(start, i - start));
      continue;
    }
    ++i;
  }
  return false;  // ran off the end before the closing ']'
}

int Fail(const char* section, const std::string& detail) {
  std::fprintf(stderr, "bench_check: [%s] %s\n", section, detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  if (argc > 2) {
    std::fprintf(stderr, "usage: bench_check [path]\n");
    return 2;
  }
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  int violations = 0;
  size_t total_rows = 0;
  for (const SectionSpec& spec : Specs()) {
    std::vector<std::string> rows;
    if (!SliceSection(text, spec.name, &rows)) {
      violations += Fail(spec.name, "section missing or malformed");
      continue;
    }
    if (rows.empty()) {
      violations += Fail(spec.name, "section is empty");
      continue;
    }
    for (const std::string& row : rows) {
      auto parsed = csfc::obs::ParseFlatJsonObject(row);
      if (!parsed.ok()) {
        violations += Fail(spec.name,
                           "row is not a flat JSON object: " +
                               parsed.status().ToString());
        continue;
      }
      const JsonObject& obj = *parsed;
      for (const char* field : spec.number_fields) {
        auto it = obj.find(field);
        if (it == obj.end() || !it->second.is_number()) {
          violations += Fail(spec.name, std::string("missing numeric field `") +
                                            field + "` in " + row);
          continue;
        }
        const double v = it->second.num;
        if (!std::isfinite(v) || v <= 0.0) {
          violations += Fail(
              spec.name, std::string("field `") + field +
                             "` must be finite and positive, got " + row);
        }
      }
      for (const char* field : spec.string_fields) {
        auto it = obj.find(field);
        if (it == obj.end() || !it->second.is_string() ||
            it->second.str.empty()) {
          violations +=
              Fail(spec.name, std::string("missing non-empty string field `") +
                                  field + "` in " + row);
        }
      }
      ++total_rows;
    }
  }

  if (violations > 0) {
    std::fprintf(stderr, "bench_check: %d violation(s) in %s\n", violations,
                 path.c_str());
    return 1;
  }
  std::printf("bench_check: OK (%zu rows, %zu sections, %s)\n", total_rows,
              Specs().size(), path.c_str());
  return 0;
}
