// trace_inspect: summarizes and validates a recorded JSONL trace (the
// obs::Export / JsonlSink schema, DESIGN.md section 10).
//
// Reads one JSON object per line from a file (or stdin with "-"),
// validates the schema — known event kinds, required fields per kind,
// per-request lifecycle ordering (arrival <= enqueue <= dispatch <=
// completion) — and prints:
//
//   * event totals per kind,
//   * per-level response-time percentiles (p50/p90/p99/max),
//   * an inversion/miss timeline: the trace replayed into time windows,
//     counting dimension-0 priority inversions at each dispatch against
//     the then-waiting set, plus per-window deadline misses.
//
// Exit code 0 when the trace is schema-clean, 1 on any violation — the CI
// smoke job pipes a traced bench run through this binary.
//
// Usage: trace_inspect [--windows=N] [--errors=N] FILE|-

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exp/table.h"
#include "obs/json.h"
#include "obs/trace_event.h"

using namespace csfc;

namespace {

struct ParsedEvent {
  obs::TraceEventKind kind;
  double t_ms = 0.0;
  std::optional<uint64_t> id;
  std::optional<double> level;
  std::optional<double> vc;
  std::optional<double> response_ms;
  std::optional<double> wait_ms;
  bool missed = false;
};

struct Lifecycle {
  std::optional<double> ingest_ms;
  std::optional<double> arrival_ms;
  std::optional<double> enqueue_ms;
  std::optional<double> dispatch_ms;
  std::optional<double> completion_ms;
  uint32_t level = 0;
  bool have_level = false;
  bool waiting = false;  // enqueued but not yet dispatched (for replay)
};

class SchemaErrors {
 public:
  explicit SchemaErrors(size_t max_shown) : max_shown_(max_shown) {}

  void Add(size_t line_no, const std::string& what) {
    ++count_;
    if (shown_.size() < max_shown_) {
      shown_.push_back("line " + std::to_string(line_no) + ": " + what);
    }
  }

  uint64_t count() const { return count_; }
  const std::vector<std::string>& shown() const { return shown_; }

 private:
  size_t max_shown_;
  uint64_t count_ = 0;
  std::vector<std::string> shown_;
};

const obs::JsonScalar* Find(const obs::JsonObject& obj, const char* key) {
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

bool RequireNumber(const obs::JsonObject& obj, const char* key,
                   size_t line_no, SchemaErrors* errors, double* out) {
  const obs::JsonScalar* v = Find(obj, key);
  if (v == nullptr || !v->is_number()) {
    errors->Add(line_no, std::string("missing/non-numeric field \"") + key +
                             "\" for this event kind");
    return false;
  }
  *out = v->num;
  return true;
}

/// Parses and schema-checks one line. Returns nullopt when the line is
/// unusable (already reported to `errors`).
std::optional<ParsedEvent> ParseLine(const std::string& line, size_t line_no,
                                     SchemaErrors* errors) {
  Result<obs::JsonObject> parsed = obs::ParseFlatJsonObject(line);
  if (!parsed.ok()) {
    errors->Add(line_no, parsed.status().message());
    return std::nullopt;
  }
  const obs::JsonObject& obj = *parsed;

  const obs::JsonScalar* ev = Find(obj, "ev");
  if (ev == nullptr || !ev->is_string()) {
    errors->Add(line_no, "missing \"ev\" field");
    return std::nullopt;
  }
  ParsedEvent out;
  if (!obs::ParseTraceEventKind(ev->str, &out.kind)) {
    errors->Add(line_no, "unknown event kind \"" + ev->str + "\"");
    return std::nullopt;
  }
  if (!RequireNumber(obj, "t_ms", line_no, errors, &out.t_ms)) {
    return std::nullopt;
  }

  using K = obs::TraceEventKind;
  const bool needs_id = out.kind != K::kQueueSwap && out.kind != K::kWindowReset;
  if (needs_id) {
    double id = 0;
    if (!RequireNumber(obj, "id", line_no, errors, &id)) return std::nullopt;
    out.id = static_cast<uint64_t>(id);
  }

  double tmp = 0;
  switch (out.kind) {
    case K::kArrival:
      if (!RequireNumber(obj, "cyl", line_no, errors, &tmp)) return std::nullopt;
      if (!RequireNumber(obj, "level", line_no, errors, &tmp)) {
        return std::nullopt;
      }
      out.level = tmp;
      break;
    case K::kCharacterize: {
      double v1, v2, vc;
      if (!RequireNumber(obj, "v1", line_no, errors, &v1) ||
          !RequireNumber(obj, "v2", line_no, errors, &v2) ||
          !RequireNumber(obj, "vc", line_no, errors, &vc)) {
        return std::nullopt;
      }
      out.vc = vc;
      for (double v : {v1, v2, vc}) {
        if (v < 0.0 || v >= 1.0) {
          errors->Add(line_no, "characterization value outside [0, 1)");
          return std::nullopt;
        }
      }
      break;
    }
    case K::kEnqueue:
    case K::kQueueSwap:
      if (!RequireNumber(obj, "qd", line_no, errors, &tmp)) return std::nullopt;
      break;
    case K::kPreempt:
    case K::kPromote:
      if (!RequireNumber(obj, "vc", line_no, errors, &tmp) ||
          !RequireNumber(obj, "window", line_no, errors, &tmp)) {
        return std::nullopt;
      }
      break;
    case K::kWindowReset:
      if (!RequireNumber(obj, "window", line_no, errors, &tmp)) {
        return std::nullopt;
      }
      break;
    case K::kDispatch:
      if (!RequireNumber(obj, "cyl", line_no, errors, &tmp) ||
          !RequireNumber(obj, "qd", line_no, errors, &tmp)) {
        return std::nullopt;
      }
      break;
    case K::kCompletion: {
      if (!RequireNumber(obj, "seek_ms", line_no, errors, &tmp) ||
          !RequireNumber(obj, "service_ms", line_no, errors, &tmp)) {
        return std::nullopt;
      }
      double response;
      if (!RequireNumber(obj, "response_ms", line_no, errors, &response)) {
        return std::nullopt;
      }
      out.response_ms = response;
      const obs::JsonScalar* missed = Find(obj, "missed");
      if (missed == nullptr || !missed->is_bool()) {
        errors->Add(line_no, "completion missing boolean \"missed\"");
        return std::nullopt;
      }
      out.missed = missed->boolean;
      break;
    }
    case K::kDeadlineMiss:
      break;
    case K::kIngest:
      if (!RequireNumber(obj, "stream", line_no, errors, &tmp)) {
        return std::nullopt;
      }
      break;
    case K::kAdmit:
      if (!RequireNumber(obj, "qd", line_no, errors, &tmp)) return std::nullopt;
      break;
    case K::kReject: {
      const obs::JsonScalar* reason = Find(obj, "reason");
      if (reason == nullptr || !reason->is_string()) {
        errors->Add(line_no, "reject missing string \"reason\"");
        return std::nullopt;
      }
      obs::RejectReason parsed_reason;
      if (!obs::ParseRejectReason(reason->str, &parsed_reason)) {
        errors->Add(line_no, "unknown reject reason \"" + reason->str + "\"");
        return std::nullopt;
      }
      break;
    }
    case K::kDrain: {
      double wait;
      if (!RequireNumber(obj, "wait_ms", line_no, errors, &wait) ||
          !RequireNumber(obj, "qd", line_no, errors, &tmp)) {
        return std::nullopt;
      }
      if (wait < 0.0) {
        errors->Add(line_no, "negative drain wait_ms");
        return std::nullopt;
      }
      out.wait_ms = wait;
      break;
    }
  }
  return out;
}

double Percentile(std::vector<double>& sorted_values, double q) {
  if (sorted_values.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac;
}

int Usage() {
  std::fprintf(stderr,
               "usage: trace_inspect [--windows=N] [--errors=N] FILE|-\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  size_t timeline_windows = 10;
  size_t max_errors_shown = 10;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--windows=", 10) == 0) {
      timeline_windows = static_cast<size_t>(std::atoi(argv[i] + 10));
      if (timeline_windows == 0) return Usage();
    } else if (std::strncmp(argv[i], "--errors=", 9) == 0) {
      max_errors_shown = static_cast<size_t>(std::atoi(argv[i] + 9));
    } else if (argv[i][0] == '-' && std::strcmp(argv[i], "-") != 0) {
      return Usage();
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    in = &file;
  }

  SchemaErrors errors(max_errors_shown);
  std::vector<ParsedEvent> events;
  std::map<obs::TraceEventKind, uint64_t> kind_counts;
  std::string line;
  size_t line_no = 0;
  double prev_t = -1.0;
  while (std::getline(*in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::optional<ParsedEvent> e = ParseLine(line, line_no, &errors);
    if (!e) continue;
    if (e->t_ms < prev_t) {
      errors.Add(line_no, "events not in time order");
    }
    prev_t = e->t_ms;
    ++kind_counts[e->kind];
    events.push_back(*e);
  }
  if (line_no == 0) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }

  // Per-request lifecycle validation + join of level onto completions.
  using K = obs::TraceEventKind;
  std::map<uint64_t, Lifecycle> lifecycles;
  const auto check_order = [&](const char* before, std::optional<double> a,
                               const char* after, double b) {
    if (a && *a > b) {
      errors.Add(0, std::string(before) + " after " + after + " (t=" +
                        std::to_string(*a) + " > " + std::to_string(b) + ")");
    }
  };
  double makespan_ms = 0.0;
  for (const ParsedEvent& e : events) {
    makespan_ms = std::max(makespan_ms, e.t_ms);
    if (!e.id) continue;
    Lifecycle& lc = lifecycles[*e.id];
    switch (e.kind) {
      case K::kArrival:
        if (lc.arrival_ms) errors.Add(0, "duplicate arrival for request " +
                                             std::to_string(*e.id));
        lc.arrival_ms = e.t_ms;
        lc.level = static_cast<uint32_t>(e.level.value_or(0));
        lc.have_level = true;
        break;
      case K::kIngest:
        if (lc.ingest_ms) errors.Add(0, "duplicate ingest for request " +
                                            std::to_string(*e.id));
        lc.ingest_ms = e.t_ms;
        break;
      case K::kAdmit:
      case K::kReject:
        check_order("ingest", lc.ingest_ms,
                    e.kind == K::kAdmit ? "admit" : "reject", e.t_ms);
        break;
      case K::kDrain:
        check_order("ingest", lc.ingest_ms, "drain", e.t_ms);
        check_order("enqueue", lc.enqueue_ms, "drain", e.t_ms);
        break;
      case K::kEnqueue:
        check_order("arrival", lc.arrival_ms, "enqueue", e.t_ms);
        check_order("ingest", lc.ingest_ms, "enqueue", e.t_ms);
        lc.enqueue_ms = e.t_ms;
        break;
      case K::kDispatch:
        if (lc.dispatch_ms) errors.Add(0, "duplicate dispatch for request " +
                                              std::to_string(*e.id));
        check_order("arrival", lc.arrival_ms, "dispatch", e.t_ms);
        check_order("enqueue", lc.enqueue_ms, "dispatch", e.t_ms);
        lc.dispatch_ms = e.t_ms;
        break;
      case K::kCompletion:
        if (lc.completion_ms) {
          errors.Add(0,
                     "duplicate completion for request " + std::to_string(*e.id));
        }
        check_order("arrival", lc.arrival_ms, "completion", e.t_ms);
        check_order("enqueue", lc.enqueue_ms, "completion", e.t_ms);
        check_order("dispatch", lc.dispatch_ms, "completion", e.t_ms);
        lc.completion_ms = e.t_ms;
        break;
      default:
        break;
    }
  }

  // Aggregates: per-level response percentiles.
  std::map<uint32_t, std::vector<double>> responses_per_level;
  uint64_t completions = 0;
  uint64_t misses = 0;
  double response_sum = 0.0;
  for (const ParsedEvent& e : events) {
    if (e.kind != K::kCompletion || !e.id) continue;
    ++completions;
    if (e.missed) ++misses;
    const double response = e.response_ms.value_or(0.0);
    response_sum += response;
    const auto it = lifecycles.find(*e.id);
    const uint32_t level =
        it != lifecycles.end() && it->second.have_level ? it->second.level : 0;
    responses_per_level[level].push_back(response);
  }

  // Inversion/miss timeline: replay enqueue/dispatch to reconstruct the
  // waiting set, count dim-0 inversions at each dispatch, and bucket by
  // time window.
  const double window_ms =
      makespan_ms > 0.0 ? makespan_ms / static_cast<double>(timeline_windows)
                        : 1.0;
  std::vector<uint64_t> inversions(timeline_windows, 0);
  std::vector<uint64_t> window_misses(timeline_windows, 0);
  std::vector<uint64_t> window_promotions(timeline_windows, 0);
  const auto window_of = [&](double t_ms) {
    const auto w = static_cast<size_t>(t_ms / window_ms);
    return std::min(w, timeline_windows - 1);
  };
  std::map<uint64_t, uint32_t> waiting;  // id -> level
  for (const ParsedEvent& e : events) {
    if (e.kind == K::kEnqueue && e.id) {
      const auto it = lifecycles.find(*e.id);
      if (it != lifecycles.end() && it->second.have_level) {
        waiting[*e.id] = it->second.level;
      }
    } else if (e.kind == K::kDispatch && e.id) {
      const auto self = waiting.find(*e.id);
      uint32_t level = 0;
      const auto it = lifecycles.find(*e.id);
      if (it != lifecycles.end()) level = it->second.level;
      if (self != waiting.end()) waiting.erase(self);
      uint64_t inv = 0;
      for (const auto& [wid, wlevel] : waiting) {
        if (wlevel < level) ++inv;
      }
      inversions[window_of(e.t_ms)] += inv;
    } else if (e.kind == K::kDeadlineMiss) {
      window_misses[window_of(e.t_ms)] += 1;
    } else if (e.kind == K::kPromote) {
      window_promotions[window_of(e.t_ms)] += 1;
    }
  }

  // ---- Report ----
  std::printf("trace: %s\n", path == "-" ? "<stdin>" : path.c_str());
  std::printf("events: %zu  requests: %zu  makespan: %.1f ms\n\n",
              events.size(), lifecycles.size(), makespan_ms);

  TablePrinter kinds({"event", "count"});
  for (const auto& [kind, count] : kind_counts) {
    kinds.AddRow({std::string(obs::TraceEventKindName(kind)),
                  std::to_string(count)});
  }
  kinds.Print();
  std::printf("\n");

  if (completions > 0) {
    std::printf("completions: %llu  misses: %llu (%.2f%%)  mean response: "
                "%.2f ms\n\n",
                static_cast<unsigned long long>(completions),
                static_cast<unsigned long long>(misses),
                100.0 * static_cast<double>(misses) /
                    static_cast<double>(completions),
                response_sum / static_cast<double>(completions));
    TablePrinter levels({"level", "count", "p50 ms", "p90 ms", "p99 ms",
                         "max ms"});
    for (auto& [level, values] : responses_per_level) {
      std::sort(values.begin(), values.end());
      levels.AddRow({std::to_string(level), std::to_string(values.size()),
                     FormatDouble(Percentile(values, 0.50)),
                     FormatDouble(Percentile(values, 0.90)),
                     FormatDouble(Percentile(values, 0.99)),
                     FormatDouble(values.back())});
    }
    levels.Print();
    std::printf("\n");
  }

  // Service-mode summary: offer-to-dispatch wait percentiles from the
  // drain events, when the trace came from the front-end.
  std::vector<double> waits;
  for (const ParsedEvent& e : events) {
    if (e.kind == K::kDrain && e.wait_ms) waits.push_back(*e.wait_ms);
  }
  if (!waits.empty()) {
    std::sort(waits.begin(), waits.end());
    std::printf("drain waits: %zu  p50: %.3f ms  p99: %.3f ms  p999: %.3f ms"
                "  max: %.3f ms\n\n",
                waits.size(), Percentile(waits, 0.50),
                Percentile(waits, 0.99), Percentile(waits, 0.999),
                waits.back());
  }

  TablePrinter timeline({"window start ms", "inversions", "misses",
                         "promotions"});
  for (size_t wnd = 0; wnd < timeline_windows; ++wnd) {
    timeline.AddRow({FormatDouble(static_cast<double>(wnd) * window_ms, 1),
                     std::to_string(inversions[wnd]),
                     std::to_string(window_misses[wnd]),
                     std::to_string(window_promotions[wnd])});
  }
  timeline.Print();
  std::printf("\n");

  if (errors.count() > 0) {
    std::printf("schema errors: %llu\n",
                static_cast<unsigned long long>(errors.count()));
    for (const std::string& e : errors.shown()) {
      std::printf("  %s\n", e.c_str());
    }
    if (errors.count() > errors.shown().size()) {
      std::printf("  ... and %llu more\n",
                  static_cast<unsigned long long>(errors.count() -
                                                  errors.shown().size()));
    }
    return 1;
  }
  std::printf("schema: OK\n");
  return 0;
}
