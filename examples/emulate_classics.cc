// Section 4.2 (Generalization) demo: degenerate Cascaded-SFC
// configurations reproduce classical schedulers. The example runs one
// batch of requests through each preset and through the genuine baseline,
// printing the two dispatch orders side by side.
//
//   $ ./emulate_classics

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "core/presets.h"
#include "sched/edf.h"
#include "sched/multi_queue.h"
#include "sched/scan_family.h"

using namespace csfc;

namespace {

std::vector<Request> MakeBatch() {
  Rng rng(3);
  std::vector<Request> batch(10);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].id = i;
    batch[i].deadline = MsToSim(100 + static_cast<double>(rng.Uniform(800)));
    batch[i].cylinder = static_cast<Cylinder>(rng.Uniform(3832));
    batch[i].priorities.push_back(static_cast<PriorityLevel>(rng.Uniform(8)));
  }
  return batch;
}

std::vector<RequestId> Drain(Scheduler& s) {
  std::vector<RequestId> order;
  DispatchContext ctx{.now = 0, .head = 0};
  while (auto r = s.Dispatch(ctx)) {
    order.push_back(r->id);
    ctx.head = r->cylinder;
  }
  return order;
}

void PrintOrder(const char* label, const std::vector<RequestId>& order) {
  std::printf("  %-28s", label);
  for (RequestId id : order) std::printf(" %llu", (unsigned long long)id);
  std::printf("\n");
}

void Compare(const char* title, const CascadedConfig& preset,
             Scheduler& baseline, const std::vector<Request>& batch) {
  auto emulated = CascadedSfcScheduler::Create(preset);
  if (!emulated.ok()) {
    std::fprintf(stderr, "%s\n", emulated.status().ToString().c_str());
    return;
  }
  DispatchContext ctx{.now = 0, .head = 0};
  for (const Request& r : batch) {
    (*emulated)->Enqueue(r, ctx);
    baseline.Enqueue(r, ctx);
  }
  std::printf("%s\n", title);
  PrintOrder("cascaded preset:", Drain(**emulated));
  PrintOrder("genuine baseline:", Drain(baseline));
  std::printf("\n");
}

}  // namespace

int main() {
  const auto batch = MakeBatch();
  std::printf("batch (id: priority/deadline-ms/cylinder):\n ");
  for (const Request& r : batch) {
    std::printf(" %llu:%u/%.0f/%u", (unsigned long long)r.id,
                r.priorities[0], SimToMs(r.deadline), r.cylinder);
  }
  std::printf("\n\n");

  {
    EdfScheduler edf;
    Compare("EDF via a deadline-only stage-2 formula (f >> 1):",
            PresetEdf(1000.0), edf, batch);
  }
  {
    MultiQueueScheduler mq(8);
    Compare(
        "Multi-queue via a priority-major C-Scan stage-2 curve\n"
        "(identical level order; within-level order differs by design):",
        PresetMultiQueue(3, 1000.0), mq, batch);
  }
  {
    ScanScheduler cscan(ScanVariant::kCScan, 3832);
    Compare("C-SCAN via a stage-3-only configuration with R = 1:",
            PresetCScan(3832), cscan, batch);
  }
  return 0;
}
