// Video-on-demand server example: a PanaViss-style RAID-5 array (Table 1:
// five disks, 4 data + 1 parity) streaming MPEG-1 to prioritized viewers.
// Streams are placed through the RAID-5 layout so consecutive blocks of a
// stream rotate across member disks; each disk runs its own Cascaded-SFC
// scheduler; the example reports per-priority deadline losses per disk and
// for the whole array.
//
//   $ ./video_server [num_users]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/presets.h"
#include "disk/raid.h"
#include "exp/runner.h"
#include "workload/mpeg.h"
#include "workload/trace.h"

using namespace csfc;

int main(int argc, char** argv) {
  const uint32_t users =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 40;

  // The array: 5 disks, 64 KB blocks, 10 blocks per cylinder per disk.
  const DiskParams disk = DiskParams::PanaVissDisk();
  auto layout = Raid5Layout::Create(5, uint64_t{10} * disk.cylinders, disk);
  if (!layout.ok()) {
    std::fprintf(stderr, "%s\n", layout.status().ToString().c_str());
    return 1;
  }
  std::printf("RAID-5 array: %u disks, %llu data blocks (%.1f GB)\n\n",
              layout->num_disks(),
              static_cast<unsigned long long>(layout->data_blocks()),
              static_cast<double>(layout->data_blocks()) * 64 / (1024.0 * 1024.0));

  // Generate the user streams once, then split requests across member
  // disks through the RAID layout: stream `s` block `k` lives at logical
  // block (s * stride + k).
  MpegWorkloadConfig mc;
  mc.seed = 7;
  mc.num_users = users;
  mc.user_phase_spread_ms = mc.PeriodMs() - mc.batch_jitter_ms;
  mc.duration_ms = 20000.0;
  auto gen = MpegStreamGenerator::Create(mc);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    return 1;
  }
  const auto all = DrainGenerator(**gen);

  std::vector<std::vector<Request>> per_disk(layout->num_disks());
  std::vector<uint64_t> stream_block(users, 0);
  const uint64_t stride = layout->data_blocks() / users;
  for (Request r : all) {
    const uint64_t lbn =
        (r.stream * stride + stream_block[r.stream]++) % layout->data_blocks();
    const RaidLocation loc = layout->Map(lbn);
    r.cylinder = loc.cylinder;
    per_disk[loc.disk].push_back(r);
    if (r.is_write) {
      // RAID-5 small write: the parity block is written too.
      const RaidLocation par = layout->ParityOf(lbn);
      Request parity = r;
      parity.cylinder = par.cylinder;
      per_disk[par.disk].push_back(parity);
    }
  }

  SimulatorConfig sc;
  sc.metrics.dims = 1;
  sc.metrics.levels = 8;
  const CascadedConfig sched_config = PresetStage2Curve(
      "hilbert", /*deadline_major=*/false, 3, 0.05, 150.0);

  std::printf("%-6s %-10s %-10s %-10s %-12s\n", "disk", "requests", "misses",
              "miss %", "wcost(11:1)");
  uint64_t total_reqs = 0;
  uint64_t total_misses = 0;
  double total_cost = 0.0;
  for (uint32_t d = 0; d < layout->num_disks(); ++d) {
    auto m = RunSchedulerOnTrace(sc, per_disk[d], [&] {
      auto s = CascadedSfcScheduler::Create(sched_config);
      return std::move(*s);
    });
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    total_reqs += m->completions;
    total_misses += m->deadline_misses;
    total_cost += m->WeightedLossCost();
    std::printf("%-6u %-10llu %-10llu %-10.2f %-12.3f\n", d,
                static_cast<unsigned long long>(m->completions),
                static_cast<unsigned long long>(m->deadline_misses),
                100.0 * static_cast<double>(m->deadline_misses) /
                    static_cast<double>(m->deadline_total ? m->deadline_total
                                                          : 1),
                m->WeightedLossCost());
  }
  std::printf("\narray total: %llu requests, %llu misses (%.2f%%), "
              "aggregate weighted cost %.3f\n",
              static_cast<unsigned long long>(total_reqs),
              static_cast<unsigned long long>(total_misses),
              100.0 * static_cast<double>(total_misses) /
                  static_cast<double>(total_reqs ? total_reqs : 1),
              total_cost);
  std::printf("\n(writes hit two member disks - data + rotating parity - "
              "which is why per-disk request counts exceed users/disks.)\n");
  return 0;
}
