// Non-linear editing server (the Section-6 scenario): one disk, 85
// concurrent editors mixing real-time playback reads, real-time ingest
// writes and background ftp traffic, 8 user-priority levels. The example
// compares FCFS, EDF-like, multi-queue-like and two SFC schedulers on the
// weighted loss cost, and prints the per-level loss breakdown that shows
// *which* users pay when the disk saturates.
//
//   $ ./nonlinear_editing [num_users]

#include <cstdio>
#include <cstdlib>

#include "core/presets.h"
#include "exp/runner.h"
#include "exp/table.h"
#include "sched/fcfs.h"
#include "workload/mpeg.h"
#include "workload/trace.h"

using namespace csfc;

int main(int argc, char** argv) {
  const uint32_t users =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 85;

  MpegWorkloadConfig mc;
  mc.seed = 11;
  mc.num_users = users;
  // This models one member disk of the 5-disk RAID (each carries a fifth
  // of every stream); editors run phase-staggered in steady state.
  mc.stream_mbps = 1.5 / 5.0;
  mc.user_phase_spread_ms = mc.PeriodMs() - mc.batch_jitter_ms;
  mc.duration_ms = 30000.0;
  auto gen = MpegStreamGenerator::Create(mc);
  if (!gen.ok()) {
    std::fprintf(stderr, "%s\n", gen.status().ToString().c_str());
    return 1;
  }
  const auto trace = DrainGenerator(**gen);
  std::printf("editing workload: %u users, %zu requests over %.0f s\n\n",
              users, trace.size(), mc.duration_ms / 1000.0);

  SimulatorConfig sc;
  sc.metrics.dims = 1;
  sc.metrics.levels = 8;

  struct Entry {
    const char* label;
    SchedulerFactory factory;
  };
  auto cascaded = [](const CascadedConfig& cfg) -> SchedulerFactory {
    return [cfg] {
      auto s = CascadedSfcScheduler::Create(cfg);
      return std::move(*s);
    };
  };
  const Entry entries[] = {
      {"FCFS", [] { return std::make_unique<FcfsScheduler>(); }},
      {"Sweep-X (EDF-like)",
       cascaded(PresetStage2Curve("cscan", true, 3, 0.05, 150.0))},
      {"Sweep-Y (multi-queue-like)",
       cascaded(PresetStage2Curve("cscan", false, 3, 0.05, 150.0))},
      {"Hilbert", cascaded(PresetStage2Curve("hilbert", false, 3, 0.05, 150.0))},
      {"Peano", cascaded(PresetStage2Curve("peano", false, 3, 0.05, 150.0))},
  };

  TablePrinter t({"scheduler", "misses", "miss %", "wcost(11:1)",
                  "losses by level 0..7"});
  for (const Entry& e : entries) {
    auto m = RunSchedulerOnTrace(sc, trace, e.factory);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    std::string by_level;
    for (uint32_t l = 0; l < 8; ++l) {
      if (l) by_level += ' ';
      by_level += std::to_string(m->misses_per_dim_level[0][l]);
    }
    t.AddRow({e.label, std::to_string(m->deadline_misses),
              FormatDouble(100.0 * static_cast<double>(m->deadline_misses) /
                               static_cast<double>(m->deadline_total),
                           2),
              FormatDouble(m->WeightedLossCost(), 3), by_level});
  }
  t.Print();
  std::printf(
      "\nReading the last column: an EDF-like order spreads losses across\n"
      "all levels; the SFC schedulers concentrate them in the cheap\n"
      "low-priority levels (the paper's selectivity property).\n");
  return 0;
}
