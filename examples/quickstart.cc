// Quickstart: build a Cascaded-SFC scheduler, hand it a few multi-QoS disk
// requests, and watch the dispatch order respect priorities, deadlines and
// the disk arm at once.
//
//   $ ./quickstart

#include <cstdio>

#include "core/cascaded_scheduler.h"
#include "core/presets.h"

using namespace csfc;

int main() {
  // A scheduler with all three stages: Hilbert over 3 priority dimensions
  // (16 levels each), the f = 1 priority/deadline blend, and an R = 3
  // partitioned cylinder sweep over a 3832-cylinder disk. The dispatcher
  // is conditionally preemptive with a 5% blocking window.
  const CascadedConfig config = PresetFull(
      /*sfc1=*/"hilbert", /*dims=*/3, /*bits=*/4, /*f=*/1.0, /*r=*/3,
      /*cylinders=*/3832, /*window=*/0.05, /*deadline_horizon_ms=*/700.0);
  auto scheduler = CascadedSfcScheduler::Create(config);
  if (!scheduler.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 scheduler.status().ToString().c_str());
    return 1;
  }
  std::printf("scheduler: %s\n\n", std::string((*scheduler)->name()).c_str());

  // Five requests with clashing demands. Level 0 is the most important.
  struct Spec {
    const char* what;
    PriorityLevel user, value, size_class;
    double deadline_ms;
    Cylinder cylinder;
  };
  const Spec specs[] = {
      {"bulk ftp transfer", 15, 14, 15, 5000.0, 3700},
      {"video frame, premium user", 1, 2, 3, 120.0, 900},
      {"audio chunk, standard user", 6, 5, 2, 150.0, 950},
      {"thumbnail fetch", 10, 12, 6, 600.0, 100},
      {"video frame, premium user (2)", 1, 2, 3, 110.0, 2600},
  };

  DispatchContext ctx{.now = 0, .head = 800};
  RequestId id = 0;
  for (const Spec& s : specs) {
    Request r;
    r.id = id++;
    r.priorities = PriorityVec{s.user, s.value, s.size_class};
    r.deadline = MsToSim(s.deadline_ms);
    r.cylinder = s.cylinder;
    (*scheduler)->Enqueue(r, ctx);
    std::printf("enqueued [%llu] %-30s  v_c = %.6f\n",
                static_cast<unsigned long long>(r.id), s.what,
                (*scheduler)->last_cvalue());
  }

  std::printf("\ndispatch order (lower v_c first, cylinder sweep within a "
              "partition):\n");
  while (auto r = (*scheduler)->Dispatch(ctx)) {
    std::printf("  -> [%llu] %s\n", static_cast<unsigned long long>(r->id),
                specs[r->id].what);
  }
  return 0;
}
