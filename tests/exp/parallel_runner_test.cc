// The parallel experiment runner must be a pure wall-clock optimization:
// RunParallel and ComparePolicies produce results identical to a serial
// run regardless of thread count, with deterministic (lowest-index) error
// selection. Plus basic ThreadPool / ParallelFor machinery coverage.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/presets.h"
#include "exp/runner.h"
#include "sched/edf.h"
#include "sched/fcfs.h"
#include "sched/registry.h"
#include "workload/generator.h"

namespace csfc {
namespace {

// --- ThreadPool / ParallelFor ----------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), 50 * (batch + 1));
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, 4, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInOrderOnCaller) {
  std::vector<size_t> order;
  ParallelFor(10, 1, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

// --- RunParallel determinism -----------------------------------------------

std::vector<Request> SmallTrace(uint64_t seed) {
  WorkloadConfig wc;
  wc.count = 400;
  wc.seed = seed;
  wc.priority_dims = 2;
  wc.priority_levels = 8;
  auto gen = SyntheticGenerator::Create(wc);
  EXPECT_TRUE(gen.ok());
  return DrainGenerator(**gen);
}

void ExpectSameMetrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.inversions_per_dim, b.inversions_per_dim);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.deadline_total, b.deadline_total);
  // Exact equality on the float aggregates: the parallel runner only
  // reassigns which core executes which point, so every arithmetic path
  // is bit-identical to the serial run.
  EXPECT_EQ(a.total_seek_ms, b.total_seek_ms);
  EXPECT_EQ(a.total_service_ms, b.total_service_ms);
  EXPECT_EQ(a.response_ms.mean(), b.response_ms.mean());
  EXPECT_EQ(a.makespan, b.makespan);
}

std::vector<RunPoint> MakePoints(const TracePtr& trace) {
  SimulatorConfig sc;
  sc.metrics.dims = 2;
  sc.metrics.levels = 8;
  std::vector<RunPoint> points;
  points.push_back(
      {sc, trace, [] { return std::make_unique<FcfsScheduler>(); }});
  points.push_back(
      {sc, trace, [] { return std::make_unique<EdfScheduler>(); }});
  for (const char* curve : {"hilbert", "diagonal", "peano", "gray"}) {
    const CascadedConfig cfg =
        PresetFull(curve, 2, 3, 1.0, 3, 3832, 0.05, 700.0);
    SchedulerRegistryContext ctx;
    ctx.cascaded = cfg;
    auto factory = MakeSchedulerFactory("csfc", ctx);
    EXPECT_TRUE(factory.ok()) << factory.status().ToString();
    points.push_back({sc, trace, std::move(*factory)});
  }
  return points;
}

TEST(RunParallelTest, ParallelMatchesSerial) {
  const TracePtr trace = ShareTrace(SmallTrace(17));
  const std::vector<RunPoint> points = MakePoints(trace);

  auto serial = RunParallel(points, 1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_EQ(serial->size(), points.size());

  for (const unsigned threads : {2u, 4u, 8u}) {
    auto parallel = RunParallel(points, threads);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_EQ(parallel->size(), serial->size());
    for (size_t i = 0; i < serial->size(); ++i) {
      ExpectSameMetrics((*serial)[i], (*parallel)[i]);
    }
  }
}

TEST(RunParallelTest, EmptyPointListIsOk) {
  auto r = RunParallel({}, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(RunParallelTest, LowestIndexErrorWins) {
  const TracePtr trace = ShareTrace(SmallTrace(18));
  SimulatorConfig good;
  SimulatorConfig bad;
  bad.disk.rpm = 0;  // invalid-argument at simulator creation

  std::vector<RunPoint> points;
  points.push_back(
      {good, trace, [] { return std::make_unique<FcfsScheduler>(); }});
  points.push_back(
      {bad, trace, [] { return std::make_unique<FcfsScheduler>(); }});
  points.push_back(
      {good, trace, []() -> SchedulerPtr { return nullptr; }});  // internal

  auto r = RunParallel(points, 4);
  ASSERT_FALSE(r.ok());
  // Point 1 (invalid config) outranks point 2 (null factory) every run.
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ComparePoliciesTest, ParallelMatchesSerial) {
  const auto trace = SmallTrace(19);
  SimulatorConfig sc;
  sc.metrics.dims = 2;
  sc.metrics.levels = 8;
  std::vector<SchedulerEntry> entries;
  entries.push_back(
      {"fcfs", [] { return std::make_unique<FcfsScheduler>(); }});
  entries.push_back({"edf", [] { return std::make_unique<EdfScheduler>(); }});

  auto serial = ComparePolicies(sc, trace, entries, 1);
  ASSERT_TRUE(serial.ok());
  auto parallel = ComparePolicies(sc, trace, entries, 4);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].label, (*parallel)[i].label);
    ExpectSameMetrics((*serial)[i].metrics, (*parallel)[i].metrics);
  }
}

}  // namespace
}  // namespace csfc
