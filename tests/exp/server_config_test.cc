// ServerConfig: the unified construction surface (ISSUE 7 satellite).
// Covers Validate's per-layer delegation, the builder chain, factory
// construction through the registry, MakeServer's admission-cost
// derivation from the disk model, and the one-PR deprecated alias.

#include <gtest/gtest.h>

#include <memory>

#include "core/presets.h"
#include "exp/server_config.h"
#include "obs/recorder.h"

namespace csfc {
namespace {

CascadedConfig Preset(uint32_t cylinders) {
  return PresetFull("hilbert", 3, 4, 1.0, 3, cylinders, 0.05, 700.0);
}

TEST(ServerConfigTest, DefaultConfigValidates) {
  ServerConfig config;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(ServerConfigTest, ValidateRejectsUnknownScheduler) {
  ServerConfig config;
  config.WithScheduler("frisbee");
  const Status s = config.Validate();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("unknown scheduler"), std::string::npos);
}

TEST(ServerConfigTest, ValidateDelegatesToEveryLayer) {
  {
    ServerConfig config;
    config.time_scale = -1.0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ServerConfig config;
    config.ingest.drain_batch = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ServerConfig config;
    config.admission.max_streams = 0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    ServerConfig config;
    config.sim.metrics.dims = 13;  // paper maximum is 12
    EXPECT_FALSE(config.Validate().ok());
  }
}

TEST(ServerConfigTest, BuilderChainSetsEveryLayer) {
  obs::TraceRecorder rec;
  ServerConfig config;
  config.WithScheduler("csfc")
      .WithMetricsShape(3, 16)
      .WithCascaded(Preset(config.sim.disk.cylinders))
      .WithQueueBackend(QueueBackend::kCalendar)
      .WithServiceModel(ServiceModel::kTransferOnly)
      .WithTraceSink(&rec)
      .WithSlo(25.0)
      .WithStreamRate(100.0, 10.0)
      .WithIngest(512, 32)
      .WithTimeScale(0.5);
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.scheduler, "csfc");
  EXPECT_EQ(config.sim.metrics.levels, 16u);
  EXPECT_EQ(config.registry.priority_levels, 16u);
  EXPECT_EQ(config.registry.cascaded.dispatcher.queue_backend,
            QueueBackend::kCalendar);
  EXPECT_EQ(config.sim.service_model, ServiceModel::kTransferOnly);
  EXPECT_EQ(config.sim.trace_sink, &rec);
  EXPECT_DOUBLE_EQ(config.admission.slo_wait_ms, 25.0);
  EXPECT_DOUBLE_EQ(config.admission.stream_rate_rps, 100.0);
  EXPECT_DOUBLE_EQ(config.admission.stream_burst, 10.0);
  EXPECT_EQ(config.ingest.ring_capacity, 512u);
  EXPECT_EQ(config.ingest.drain_batch, 32u);
  EXPECT_DOUBLE_EQ(config.time_scale, 0.5);
}

TEST(ServerConfigTest, MakeFactoryBuildsEveryRegisteredPolicy) {
  ServerConfig config;
  config.WithMetricsShape(3, 16)
      .WithCascaded(Preset(config.sim.disk.cylinders));
  auto disk = DiskModel::Create(config.sim.disk);
  ASSERT_TRUE(disk.ok());
  for (std::string_view name : AllSchedulerNames()) {
    config.WithScheduler(name);
    auto factory = config.MakeFactory(*disk);
    ASSERT_TRUE(factory.ok()) << name << ": " << factory.status().ToString();
    SchedulerPtr sched = (*factory)();
    ASSERT_NE(sched, nullptr) << name;
  }
}

TEST(ServerConfigTest, MakeServerDerivesAdmissionCostsFromDisk) {
  ServerConfig config;
  config.WithMetricsShape(3, 16)
      .WithCascaded(Preset(config.sim.disk.cylinders))
      .WithSlo(50.0);
  ASSERT_TRUE(config.derive_admission_costs);  // the default
  auto handle = MakeServer(config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  // The oracle's costs came from the disk model, not the zero defaults:
  // a full-stroke sweep on the default disk costs real milliseconds.
  const svc::AdmissionConfig& derived =
      handle->server->admission().config();
  EXPECT_GT(derived.fixed_cost_ms, 0.0);
  EXPECT_GT(derived.sweep_cost_ms, 0.0);
}

TEST(ServerConfigTest, MakeServerHonorsExplicitCostsWhenDerivationIsOff) {
  ServerConfig config;
  config.WithMetricsShape(3, 16)
      .WithCascaded(Preset(config.sim.disk.cylinders))
      .WithSlo(50.0);
  config.derive_admission_costs = false;
  config.admission.fixed_cost_ms = 1.25;
  config.admission.sweep_cost_ms = 7.5;
  auto handle = MakeServer(config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const svc::AdmissionConfig& kept = handle->server->admission().config();
  EXPECT_DOUBLE_EQ(kept.fixed_cost_ms, 1.25);
  EXPECT_DOUBLE_EQ(kept.sweep_cost_ms, 7.5);
}

TEST(ServerConfigTest, MakeServerRejectsInvalidConfig) {
  ServerConfig config;
  config.ingest.ring_capacity = 0;
  EXPECT_FALSE(MakeServer(config).ok());
}

TEST(ServerConfigTest, DefaultConfigValidatesAsCsfc) {
  // The deprecated ServiceServerConfig alias completed its one-PR
  // migration window (DESIGN.md section 12) and is gone; the defaults
  // it forwarded to are pinned here instead.
  ServerConfig config;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.scheduler, "csfc");
}

}  // namespace
}  // namespace csfc
