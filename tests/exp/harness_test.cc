#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "exp/runner.h"
#include "exp/table.h"
#include "sched/edf.h"
#include "sched/fcfs.h"
#include "workload/generator.h"

namespace csfc {
namespace {

TEST(PercentTest, BasicAndZeroBase) {
  EXPECT_DOUBLE_EQ(Percent(50, 200), 25.0);
  EXPECT_DOUBLE_EQ(Percent(5, 0), 0.0);
}

TEST(RunnerTest, RunSchedulerOnTraceProducesMetrics) {
  WorkloadConfig wc;
  wc.count = 200;
  wc.seed = 3;
  auto gen = SyntheticGenerator::Create(wc);
  ASSERT_TRUE(gen.ok());
  const auto trace = DrainGenerator(**gen);
  SimulatorConfig sc;
  auto m = RunSchedulerOnTrace(sc, trace,
                               [] { return std::make_unique<FcfsScheduler>(); });
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->completions, 200u);
  EXPECT_EQ(m->arrivals, 200u);
}

TEST(RunnerTest, InvalidSimConfigPropagates) {
  SimulatorConfig sc;
  sc.disk.rpm = 0;
  auto m = RunSchedulerOnTrace(sc, {}, [] {
    return std::make_unique<FcfsScheduler>();
  });
  EXPECT_FALSE(m.ok());
}

TEST(RunnerTest, NullFactoryIsInternalError) {
  auto m = RunSchedulerOnTrace(SimulatorConfig(), {},
                               []() -> SchedulerPtr { return nullptr; });
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInternal);
}

TEST(RunnerTest, ComparePoliciesRunsSameTraceThroughAll) {
  WorkloadConfig wc;
  wc.count = 300;
  wc.seed = 9;
  auto gen = SyntheticGenerator::Create(wc);
  ASSERT_TRUE(gen.ok());
  const auto trace = DrainGenerator(**gen);
  std::vector<SchedulerEntry> entries;
  entries.push_back(
      {"fcfs", [] { return std::make_unique<FcfsScheduler>(); }});
  entries.push_back({"edf", [] { return std::make_unique<EdfScheduler>(); }});
  auto rows = ComparePolicies(SimulatorConfig(), trace, entries);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].label, "fcfs");
  EXPECT_EQ((*rows)[0].metrics.completions, 300u);
  EXPECT_EQ((*rows)[1].metrics.completions, 300u);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "2.50"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  // Header line and rule line plus two rows.
  int lines = 0;
  for (char c : s) lines += c == '\n';
  EXPECT_EQ(lines, 4);
}

TEST(TablePrinterTest, CsvEscapesSpecials) {
  TablePrinter t({"a", "b"});
  t.AddRow({"plain", "has,comma"});
  t.AddRow({"has\"quote", "x"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "csfc_table.csv").string();
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(all.find("\"has\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter t({"only", "headers"});
  EXPECT_EQ(t.num_rows(), 0u);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("only"), std::string::npos);
  EXPECT_NE(s.find("headers"), std::string::npos);
}

TEST(TablePrinterTest, CsvWithoutSpecialsIsUnquoted) {
  TablePrinter t({"a"});
  t.AddRow({"plain"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "csfc_plain.csv").string();
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_EQ(all, "a\nplain\n");
  std::remove(path.c_str());
}

TEST(TablePrinterTest, CsvToUnwritablePathFails) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.WriteCsv("/nonexistent-dir/x.csv").code(),
            StatusCode::kIoError);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 4), "3.1416");
  EXPECT_EQ(FormatDouble(100.0, 0), "100");
}

}  // namespace
}  // namespace csfc
