// Direct unit tests for the table-driven flag parser behind csfc_sim /
// csfc_serve / csfc_golden (tools/cli_flags.h). The table is the whole
// point — a flag exists iff it was Add()ed, and the parser, the usage
// synopsis, and the help text all render from it — so the tests pin the
// parse semantics AND that the generated help can never disagree with
// what Parse() accepts.

#include "cli_flags.h"

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace csfc {
namespace tools {
namespace {

/// Runs Parse() over a brace-list of arguments (argv[0] supplied).
int ParseArgs(FlagSet& flags, std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "prog";
  argv.push_back(prog.data());
  for (std::string& a : args) argv.push_back(a.data());
  return flags.Parse(static_cast<int>(argv.size()), argv.data());
}

/// Captures what `fn` prints to its FILE* argument.
template <typename Fn>
std::string CaptureOutput(Fn fn) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fn(f);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<size_t>(size), '\0');
  const size_t got = std::fread(out.data(), 1, out.size(), f);
  out.resize(got);
  std::fclose(f);
  return out;
}

TEST(FlagSetTest, ParsesEveryValueKind) {
  std::string s;
  bool b = false;
  double d = 0.0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  size_t sz = 0;
  double lo = 0.0, hi = 0.0;

  FlagSet flags("t");
  flags.AddString("name", "S", "a string", &s);
  flags.AddBool("on", "a boolean", &b);
  flags.AddDouble("ratio", "a double", &d);
  flags.AddUint32("small", "a u32", &u32);
  flags.AddUint64("big", "a u64", &u64);
  flags.AddSize("bytes", "a size", &sz);
  flags.AddRange("window", "a range", &lo, &hi);

  EXPECT_EQ(ParseArgs(flags, {"--name=hello", "--on", "--ratio=2.5",
                              "--small=7", "--big=12345678901234",
                              "--bytes=4096", "--window=1.5:9.25"}),
            0);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_EQ(u32, 7u);
  EXPECT_EQ(u64, 12345678901234ull);
  EXPECT_EQ(sz, 4096u);
  EXPECT_DOUBLE_EQ(lo, 1.5);
  EXPECT_DOUBLE_EQ(hi, 9.25);
}

TEST(FlagSetTest, EmptyCommandLineIsFine) {
  FlagSet flags("t");
  EXPECT_EQ(ParseArgs(flags, {}), 0);
}

TEST(FlagSetTest, UnknownFlagFails) {
  bool b = false;
  FlagSet flags("t");
  flags.AddBool("on", "a boolean", &b);
  EXPECT_EQ(ParseArgs(flags, {"--off"}), 2);
}

TEST(FlagSetTest, NonFlagArgumentFails) {
  FlagSet flags("t");
  EXPECT_EQ(ParseArgs(flags, {"positional"}), 2);
}

TEST(FlagSetTest, BooleanRejectsValue) {
  bool b = false;
  FlagSet flags("t");
  flags.AddBool("on", "a boolean", &b);
  EXPECT_EQ(ParseArgs(flags, {"--on=yes"}), 2);
  EXPECT_FALSE(b);
}

TEST(FlagSetTest, ValuedFlagRequiresValue) {
  double d = 0.0;
  FlagSet flags("t");
  flags.AddDouble("ratio", "a double", &d);
  EXPECT_EQ(ParseArgs(flags, {"--ratio"}), 2);
}

TEST(FlagSetTest, BadValuesFail) {
  double d = 0.0;
  uint32_t u = 0;
  double lo = 0.0, hi = 0.0;
  FlagSet flags("t");
  flags.AddDouble("ratio", "a double", &d);
  flags.AddUint32("n", "a u32", &u);
  flags.AddRange("window", "a range", &lo, &hi);
  EXPECT_EQ(ParseArgs(flags, {"--ratio=fast"}), 2);
  EXPECT_EQ(ParseArgs(flags, {"--n=7seven"}), 2);
  EXPECT_EQ(ParseArgs(flags, {"--window=5"}), 2);  // missing LO:HI colon
}

TEST(FlagSetTest, LastOccurrenceWins) {
  std::string s;
  FlagSet flags("t");
  flags.AddString("name", "S", "a string", &s);
  EXPECT_EQ(ParseArgs(flags, {"--name=first", "--name=second"}), 0);
  EXPECT_EQ(s, "second");
}

TEST(FlagSetTest, EmptyStringValueIsAccepted) {
  std::string s = "sentinel";
  FlagSet flags("t");
  flags.AddString("name", "S", "a string", &s);
  EXPECT_EQ(ParseArgs(flags, {"--name="}), 0);
  EXPECT_EQ(s, "");
}

TEST(FlagSetTest, UsageListsEveryFlagWithMetavars) {
  std::string s;
  bool b = false;
  FlagSet flags("mytool");
  flags.AddString("input", "FILE", "input path", &s);
  flags.AddBool("fast", "go fast", &b);
  const std::string usage =
      CaptureOutput([&](std::FILE* f) { flags.PrintUsage(f); });
  EXPECT_NE(usage.find("usage: mytool"), std::string::npos);
  EXPECT_NE(usage.find("[--input=FILE]"), std::string::npos);
  EXPECT_NE(usage.find("[--fast]"), std::string::npos);  // no metavar
}

TEST(FlagSetTest, HelpRendersFromTheSameTableAsTheParser) {
  // The drift the table design exists to prevent: every flag the parser
  // accepts appears in the help, and the help names no other flags.
  std::string s;
  double d = 0.0;
  bool b = false;
  FlagSet flags("t");
  flags.AddString("alpha", "S", "help for alpha", &s);
  flags.AddDouble("beta", "help for beta", &d);
  flags.AddBool("gamma", "help for gamma", &b);

  const std::string help =
      CaptureOutput([&](std::FILE* f) { flags.PrintHelp(f); });
  for (const char* name : {"--alpha=S", "--beta=X", "--gamma"}) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
  for (const char* text :
       {"help for alpha", "help for beta", "help for gamma"}) {
    EXPECT_NE(help.find(text), std::string::npos) << text;
  }
  // And every flag named in the table round-trips through Parse().
  EXPECT_EQ(ParseArgs(flags, {"--alpha=x", "--beta=1", "--gamma"}), 0);
}

TEST(FlagSetTest, SharedWorkloadAndSchedulerTablesParse) {
  // The blocks csfc_sim/csfc_serve/csfc_golden all register; one edit in
  // cli_flags.h must keep both the parse and the help path working.
  WorkloadFlags wf;
  SchedulerFlags sf;
  FlagSet flags("t");
  AddWorkloadFlags(flags, &wf);
  AddSchedulerFlags(flags, &sf);
  EXPECT_EQ(ParseArgs(flags, {"--workload=mpeg", "--users=12", "--seed=99",
                              "--sched=edf", "--queue=flat",
                              "--deadline=40:90"}),
            0);
  EXPECT_EQ(wf.kind, "mpeg");
  EXPECT_EQ(wf.users, 12u);
  EXPECT_EQ(wf.cfg.seed, 99u);
  EXPECT_EQ(sf.sched, "edf");
  EXPECT_EQ(sf.queue, "flat");
  EXPECT_DOUBLE_EQ(wf.cfg.deadline_lo_ms, 40.0);
  EXPECT_DOUBLE_EQ(wf.cfg.deadline_hi_ms, 90.0);

  ServerConfig config;
  EXPECT_TRUE(ApplySchedulerFlags(sf, wf, &config).ok());
  EXPECT_EQ(config.scheduler, "edf");

  sf.queue = "ring";  // not a backend
  EXPECT_FALSE(ApplySchedulerFlags(sf, wf, &config).ok());
}

}  // namespace
}  // namespace tools
}  // namespace csfc
