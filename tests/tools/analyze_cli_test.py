#!/usr/bin/env python3
"""End-to-end exit-code contract for tools/csfc_analyze/csfc_analyze.py.

Runs the real CLI as a subprocess against the real tree and asserts:

  * a clean tree exits 0 (whichever engine is selected),
  * every --seed-violation=RULE exits 1 and names the seeded file,
  * without libclang, auto mode prints a visible fallback notice and
    still completes (a clean exit must never be mistaken for full AST
    coverage), and --engine=libclang forced exits 2,
  * --self-test exits 0.

Stdlib only; registered as the `csfc_analyze_cli` ctest entry.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
ANALYZER = REPO / "tools" / "csfc_analyze" / "csfc_analyze.py"

sys.path.insert(0, str(ANALYZER.parent))
import csfc_analyze  # noqa: E402


def run_cli(*extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(ANALYZER), *extra],
        capture_output=True, text=True, timeout=300)


def main(argv: list) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repo", type=Path, default=REPO)
    parser.add_argument("--compdb", type=Path,
                        default=REPO / "build" / "compile_commands.json")
    args = parser.parse_args(argv)
    base = ["--repo", str(args.repo), "--compdb", str(args.compdb)]
    failures: list = []

    def check(name: str, proc: subprocess.CompletedProcess,
              want_exit: int, *fragments: str) -> None:
        text = proc.stdout + proc.stderr
        if proc.returncode != want_exit:
            failures.append(
                f"{name}: exit {proc.returncode}, wanted {want_exit}\n"
                f"--- output ---\n{text}")
            return
        for frag in fragments:
            if frag not in text:
                failures.append(
                    f"{name}: output missing {frag!r}\n"
                    f"--- output ---\n{text}")

    check("self-test", run_cli("--self-test"), 0, "self-test OK")

    # The committed tree must be clean under every available engine.
    check("clean-tree", run_cli(*base), 0, "OK")
    check("clean-tree-regex", run_cli(*base, "--engine=regex"), 0,
          "csfc_analyze[regex]: OK")

    for rule, fragment in (
            ("layering", "_seeded_layering.h"),
            ("hot-alloc", "_seeded_hot.h"),
            ("exc-safety", "_seeded_mover.h"),
            # hot-coverage findings point at the manifest entry, not the
            # seeded file: the function exists but lost its annotation.
            ("hot-coverage", "SeededCold::Push"),
            # Concurrency families (rules 5-7): each seed drops a file
            # with exactly one contract breach into the scanned tree.
            ("atomics-discipline", "_seeded_atomics.h"),
            ("lock-hierarchy", "_seeded_locks.h"),
            ("hot-blocking", "_seeded_blocking.h"),
            # Determinism families (rules 8-10, determinism.toml).
            ("determinism-taint", "_seeded_det.h"),
            ("fp-contract", "_seeded_fp.h"),
            ("rng-seed-flow", "_seeded_rng.h")):
        check(f"seed-{rule}",
              run_cli(*base, f"--seed-violation={rule}"), 1, fragment)

    if csfc_analyze.load_libclang() is None:
        # gcc-only container: the fallback must be loud, and forcing the
        # AST engine must be a hard error rather than a silent downgrade.
        check("fallback-notice", run_cli(*base, "--engine=auto"), 0,
              "falling back to regex engine")
        check("libclang-forced",
              run_cli(*base, "--engine=libclang"), 2, "libclang")
    elif args.compdb.exists():
        check("libclang-engine", run_cli(*base, "--engine=libclang"), 0,
              "csfc_analyze[libclang]: OK")

    if failures:
        print("analyze_cli_test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("analyze_cli_test OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
