#include "disk/disk_model.h"

#include <gtest/gtest.h>

namespace csfc {
namespace {

DiskModel MakeDefault() {
  auto m = DiskModel::Create(DiskParams::PanaVissDisk());
  EXPECT_TRUE(m.ok());
  return *m;
}

TEST(SeekModelTest, ZeroDistanceIsFree) {
  SeekModel s;
  EXPECT_DOUBLE_EQ(s.SeekMs(0), 0.0);
}

TEST(SeekModelTest, SingleCylinderSeek) {
  SeekModel s;
  EXPECT_NEAR(s.SeekMs(1), 2.5, 0.01);
}

TEST(SeekModelTest, ContinuousAtRegimeBoundary) {
  SeekModel s;
  const double below = s.SeekMs(s.cutoff - 1);
  const double at = s.SeekMs(s.cutoff);
  EXPECT_NEAR(below, at, 0.05);
}

TEST(SeekModelTest, MonotoneNondecreasing) {
  SeekModel s;
  double prev = 0.0;
  for (uint32_t d = 1; d < 3832; d += 7) {
    const double v = s.SeekMs(d);
    EXPECT_GE(v, prev) << "at distance " << d;
    prev = v;
  }
}

TEST(DiskModelTest, CalibrationMatchesTable1) {
  // Table 1: average seek 8.5 ms, max seek 18 ms.
  DiskModel m = MakeDefault();
  EXPECT_NEAR(m.MeanRandomSeekMs(), 8.5, 0.1);
  EXPECT_NEAR(m.MaxSeekMs(), 18.0, 0.1);
}

TEST(DiskModelTest, RotationAt7200Rpm) {
  DiskModel m = MakeDefault();
  EXPECT_NEAR(m.RotationMs(), 8.333, 0.01);
  EXPECT_NEAR(m.AvgRotationalLatencyMs(), 4.167, 0.01);
}

TEST(DiskModelTest, SampledLatencyWithinRotation) {
  DiskModel m = MakeDefault();
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double l = m.SampleRotationalLatencyMs(rng);
    EXPECT_GE(l, 0.0);
    EXPECT_LT(l, m.RotationMs());
  }
}

TEST(DiskModelTest, SeekTimeIsSymmetric) {
  DiskModel m = MakeDefault();
  EXPECT_DOUBLE_EQ(m.SeekTimeMs(100, 900), m.SeekTimeMs(900, 100));
}

TEST(DiskModelTest, SixteenZonesCoverAllCylinders) {
  DiskModel m = MakeDefault();
  EXPECT_EQ(m.ZoneOf(0), 0u);
  EXPECT_EQ(m.ZoneOf(3831), 15u);
  uint32_t prev = 0;
  for (Cylinder c = 0; c < 3832; ++c) {
    const uint32_t z = m.ZoneOf(c);
    EXPECT_LT(z, 16u);
    EXPECT_GE(z, prev);  // zones are contiguous outward-in
    prev = z;
  }
}

TEST(DiskModelTest, OuterZoneIsFaster) {
  DiskModel m = MakeDefault();
  EXPECT_DOUBLE_EQ(m.ZoneRateMBps(0), 7.5);
  EXPECT_DOUBLE_EQ(m.ZoneRateMBps(15), 4.5);
  EXPECT_GT(m.TransferTimeMs(3831, 64 * 1024),
            m.TransferTimeMs(0, 64 * 1024));
}

TEST(DiskModelTest, TransferTimeOf64KBlock) {
  DiskModel m = MakeDefault();
  // 64 KB at 7.5 MB/s = 8.74 ms.
  EXPECT_NEAR(m.TransferTimeMs(0, 64 * 1024), 65536.0 / 7500.0, 0.01);
}

TEST(DiskModelTest, ServiceTimeComposes) {
  DiskModel m = MakeDefault();
  const double expected = m.SeekTimeMs(0, 1000) + m.AvgRotationalLatencyMs() +
                          m.TransferTimeMs(1000, 64 * 1024);
  EXPECT_DOUBLE_EQ(m.ServiceTimeMs(0, 1000, 64 * 1024), expected);
}

TEST(DiskModelTest, ServiceTimeWithRngStaysInBounds) {
  DiskModel m = MakeDefault();
  Rng rng(1);
  const double base =
      m.SeekTimeMs(0, 1000) + m.TransferTimeMs(1000, 64 * 1024);
  for (int i = 0; i < 100; ++i) {
    const double t = m.ServiceTimeMs(0, 1000, 64 * 1024, &rng);
    EXPECT_GE(t, base);
    EXPECT_LT(t, base + m.RotationMs());
  }
}

TEST(DiskParamsTest, ValidationCatchesBadConfigs) {
  DiskParams p;
  p.cylinders = 1;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParams();
  p.zones = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParams();
  p.zones = 10000;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParams();
  p.rpm = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParams();
  p.inner_rate_mbps = 9.0;  // faster than outer
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParams();
  p.block_bytes = 0;
  EXPECT_FALSE(p.Validate().ok());
  EXPECT_TRUE(DiskParams().Validate().ok());
}

TEST(DiskModelTest, CreateRejectsInvalidParams) {
  DiskParams p;
  p.rpm = 0;
  auto m = DiskModel::Create(p);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST(DiskModelTest, SingleZoneDiskUsesOuterRate) {
  DiskParams p;
  p.zones = 1;
  auto m = DiskModel::Create(p);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->ZoneRateMBps(0), p.outer_rate_mbps);
}

}  // namespace
}  // namespace csfc
