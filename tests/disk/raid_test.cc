#include "disk/raid.h"

#include <gtest/gtest.h>

#include <set>

namespace csfc {
namespace {

Raid5Layout MakeArray(uint32_t disks = 5, uint64_t blocks = 38320) {
  auto r = Raid5Layout::Create(disks, blocks, DiskParams::PanaVissDisk());
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(Raid5Test, CreateValidation) {
  DiskParams disk = DiskParams::PanaVissDisk();
  EXPECT_FALSE(Raid5Layout::Create(2, 100, disk).ok());
  EXPECT_FALSE(Raid5Layout::Create(5, 0, disk).ok());
  DiskParams bad = disk;
  bad.rpm = 0;
  EXPECT_FALSE(Raid5Layout::Create(5, 100, bad).ok());
  EXPECT_TRUE(Raid5Layout::Create(5, 100, disk).ok());
}

TEST(Raid5Test, CapacityIsDataDisksWorth) {
  Raid5Layout r = MakeArray();
  EXPECT_EQ(r.num_disks(), 5u);
  EXPECT_EQ(r.data_disks(), 4u);
  EXPECT_EQ(r.data_blocks(), 4u * 38320u);
}

TEST(Raid5Test, StripeMembersAreDistinctAndAvoidParity) {
  Raid5Layout r = MakeArray();
  for (uint64_t stripe = 0; stripe < 20; ++stripe) {
    std::set<uint32_t> disks;
    const uint32_t parity = r.ParityOf(stripe * 4).disk;
    for (uint64_t k = 0; k < 4; ++k) {
      const RaidLocation loc = r.Map(stripe * 4 + k);
      EXPECT_NE(loc.disk, parity) << "stripe " << stripe;
      disks.insert(loc.disk);
      EXPECT_EQ(loc.block, stripe);
    }
    EXPECT_EQ(disks.size(), 4u) << "stripe " << stripe;
  }
}

TEST(Raid5Test, ParityRotatesAcrossAllDisks) {
  Raid5Layout r = MakeArray();
  std::set<uint32_t> parity_disks;
  for (uint64_t stripe = 0; stripe < 5; ++stripe) {
    parity_disks.insert(r.ParityOf(stripe * 4).disk);
  }
  EXPECT_EQ(parity_disks.size(), 5u);
}

TEST(Raid5Test, MappingIsDeterministic) {
  Raid5Layout r = MakeArray();
  for (uint64_t lbn = 0; lbn < 100; ++lbn) {
    const RaidLocation a = r.Map(lbn);
    const RaidLocation b = r.Map(lbn);
    EXPECT_EQ(a.disk, b.disk);
    EXPECT_EQ(a.block, b.block);
    EXPECT_EQ(a.cylinder, b.cylinder);
  }
}

TEST(Raid5Test, CylindersStayInRange) {
  Raid5Layout r = MakeArray();
  for (uint64_t lbn = 0; lbn < r.data_blocks(); lbn += 997) {
    EXPECT_LT(r.Map(lbn).cylinder, 3832u);
  }
  // The very last block too.
  EXPECT_LT(r.Map(r.data_blocks() - 1).cylinder, 3832u);
}

TEST(Raid5Test, SequentialBlocksAdvanceCylinders) {
  Raid5Layout r = MakeArray();
  // blocks_per_cylinder = 38320/3832 = 10; stripe k sits on cylinder k/10.
  EXPECT_EQ(r.Map(0).cylinder, 0u);
  EXPECT_EQ(r.Map(4 * 10).cylinder, 1u);   // stripe 10
  EXPECT_EQ(r.Map(4 * 25).cylinder, 2u);   // stripe 25
}

TEST(Raid5Test, TinyDiskClampsBlocksPerCylinder) {
  // Fewer blocks than cylinders: one block per cylinder, clamped at end.
  auto r = Raid5Layout::Create(3, 10, DiskParams::PanaVissDisk());
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->Map(r->data_blocks() - 1).cylinder, 3832u);
}

}  // namespace
}  // namespace csfc
