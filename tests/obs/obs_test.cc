// Observability-layer tests: ring-buffer recorder semantics, the JSON
// writer/parser pair, JSONL export round trips, windowed counters, and —
// against a real simulator run — the per-request lifecycle ordering
// invariant (arrival <= characterize <= enqueue <= dispatch <= completion)
// plus agreement between trace aggregates and RunMetrics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "core/presets.h"
#include "exp/runner.h"
#include "exp/table.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "obs/windowed.h"
#include "sched/fcfs.h"
#include "sched/registry.h"
#include "workload/generator.h"

namespace csfc {
namespace obs {
namespace {

TraceEvent MakeEvent(TraceEventKind kind, double t_ms, RequestId id) {
  TraceEvent e;
  e.kind = kind;
  e.t = MsToSim(t_ms);
  e.id = id;
  return e;
}

// ---------------------------------------------------------------- recorder

TEST(TraceRecorderTest, HoldsEverythingBelowCapacity) {
  TraceRecorder rec(8);
  for (RequestId i = 0; i < 5; ++i) {
    rec.OnEvent(MakeEvent(TraceEventKind::kArrival, static_cast<double>(i), i));
  }
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.total(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto events = rec.Events();
  ASSERT_EQ(events.size(), 5u);
  for (RequestId i = 0; i < 5; ++i) EXPECT_EQ(events[i].id, i);
}

TEST(TraceRecorderTest, WrapsAroundOverwritingOldest) {
  TraceRecorder rec(4);
  for (RequestId i = 0; i < 11; ++i) {
    rec.OnEvent(MakeEvent(TraceEventKind::kArrival, static_cast<double>(i), i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.total(), 11u);
  EXPECT_EQ(rec.dropped(), 7u);
  // Survivors are the newest four, oldest first.
  const auto events = rec.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].id, 7u + i);
}

TEST(TraceRecorderTest, ClearKeepsCapacity) {
  TraceRecorder rec(4);
  for (RequestId i = 0; i < 6; ++i) {
    rec.OnEvent(MakeEvent(TraceEventKind::kArrival, static_cast<double>(i), i));
  }
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total(), 0u);
  EXPECT_EQ(rec.capacity(), 4u);
  rec.OnEvent(MakeEvent(TraceEventKind::kArrival, 0.0, 42));
  ASSERT_EQ(rec.Events().size(), 1u);
  EXPECT_EQ(rec.Events()[0].id, 42u);
}

// -------------------------------------------------------------- JSON layer

TEST(JsonWriterTest, WritesNestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Field("name", "a\"b\\c\n");
  w.Key("values");
  w.BeginArray();
  w.Value(1).Value(2.5).Value(true);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a\\\"b\\\\c\\n\",\"values\":[1,2.5,true]}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray();
  w.Value(std::nan("")).Value(HUGE_VAL).Value(1.0);
  w.EndArray();
  EXPECT_EQ(w.str(), "[null,null,1]");
}

TEST(JsonParseTest, RoundTripsWriterOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Field("s", "x y\tz");
  w.Field("n", 3.14159);
  w.Field("i", uint64_t{1234567890123ULL});
  w.Field("b", false);
  w.EndObject();

  auto parsed = ParseFlatJsonObject(w.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonObject& obj = *parsed;
  ASSERT_EQ(obj.size(), 4u);
  EXPECT_EQ(obj.at("s").str, "x y\tz");
  EXPECT_DOUBLE_EQ(obj.at("n").num, 3.14159);
  EXPECT_DOUBLE_EQ(obj.at("i").num, 1234567890123.0);
  EXPECT_FALSE(obj.at("b").boolean);
}

TEST(JsonParseTest, DecodesUnicodeEscapes) {
  auto parsed = ParseFlatJsonObject("{\"k\": \"\\u00e9\\u0041\"}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at("k").str, "\xC3\xA9"  "A");
}

TEST(JsonParseTest, RejectsNestedContainersAndGarbage) {
  EXPECT_FALSE(ParseFlatJsonObject("{\"k\": {\"x\": 1}}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"k\": [1, 2]}").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"k\": 1} trailing").ok());
  EXPECT_FALSE(ParseFlatJsonObject("not json").ok());
  EXPECT_FALSE(ParseFlatJsonObject("{\"k\": }").ok());
}

// ----------------------------------------------------------- JSONL export

TEST(ExportTest, TraceEventJsonRoundTripsEveryKind) {
  std::vector<TraceEvent> events;
  {
    TraceEvent e = MakeEvent(TraceEventKind::kArrival, 1.5, 7);
    e.cylinder = 123;
    e.level = 3;
    e.deadline = MsToSim(99.25);
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kCharacterize, 1.5, 7);
    e.v1 = 0.25;
    e.v2 = 0.5;
    e.vc = 0.75;
    e.rekey = true;
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kEnqueue, 1.5, 7);
    e.queue_depth = 4;
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kPromote, 2.0, 7);
    e.vc = 0.125;
    e.window = 0.05;
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kQueueSwap, 2.5, kNoRequestId);
    e.queue_depth = 9;
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kWindowReset, 2.5, kNoRequestId);
    e.window = 0.05;
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kDispatch, 3.0, 7);
    e.cylinder = 123;
    e.queue_depth = 3;
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kCompletion, 4.0, 7);
    e.seek_ms = 1.25;
    e.service_ms = 2.5;
    e.response_ms = 2.75;
    e.missed = true;
    events.push_back(e);
  }
  events.push_back(MakeEvent(TraceEventKind::kDeadlineMiss, 4.0, 7));
  {
    TraceEvent e = MakeEvent(TraceEventKind::kIngest, 5.0, 8);
    e.stream = 3;
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kAdmit, 5.0, 8);
    e.queue_depth = 12;
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kReject, 5.5, 9);
    e.reject = RejectReason::kLoad;
    events.push_back(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kDrain, 6.0, 8);
    e.wait_ms = 1.75;
    e.queue_depth = 11;
    events.push_back(e);
  }

  StringWriter out;
  ASSERT_TRUE(Export(std::span<const TraceEvent>(events), out,
                     ExportFormat::kJsonl)
                  .ok());

  std::istringstream lines(out.str());
  std::string line;
  size_t i = 0;
  while (std::getline(lines, line)) {
    ASSERT_LT(i, events.size());
    auto parsed = ParseFlatJsonObject(line);
    ASSERT_TRUE(parsed.ok()) << line << ": " << parsed.status().ToString();
    const JsonObject& obj = *parsed;
    TraceEventKind kind;
    ASSERT_TRUE(ParseTraceEventKind(obj.at("ev").str, &kind));
    EXPECT_EQ(kind, events[i].kind);
    EXPECT_NEAR(obj.at("t_ms").num, SimToMs(events[i].t), 1e-9);
    if (events[i].has_request()) {
      EXPECT_DOUBLE_EQ(obj.at("id").num, static_cast<double>(events[i].id));
    } else {
      EXPECT_EQ(obj.count("id"), 0u);
    }
    ++i;
  }
  EXPECT_EQ(i, events.size());

  // Spot-check kind-specific payloads survived.
  auto arrival = ParseFlatJsonObject(out.str().substr(0, out.str().find('\n')));
  ASSERT_TRUE(arrival.ok());
  EXPECT_DOUBLE_EQ(arrival->at("cyl").num, 123.0);
  EXPECT_DOUBLE_EQ(arrival->at("level").num, 3.0);
  EXPECT_NEAR(arrival->at("deadline_ms").num, 99.25, 1e-9);

  // Service front-end payloads: reject carries the wire reason name,
  // drain carries the wait latency the SLO windows aggregate.
  std::vector<std::string> all_lines;
  std::istringstream relines(out.str());
  while (std::getline(relines, line)) all_lines.push_back(line);
  auto reject = ParseFlatJsonObject(all_lines[all_lines.size() - 2]);
  ASSERT_TRUE(reject.ok());
  EXPECT_EQ(reject->at("reason").str, "load");
  auto drain = ParseFlatJsonObject(all_lines.back());
  ASSERT_TRUE(drain.ok());
  EXPECT_DOUBLE_EQ(drain->at("wait_ms").num, 1.75);
  EXPECT_DOUBLE_EQ(drain->at("qd").num, 11.0);
}

TEST(ExportTest, RejectReasonNamesRoundTrip) {
  for (RejectReason r : {RejectReason::kRate, RejectReason::kLoad,
                         RejectReason::kRingFull}) {
    RejectReason parsed;
    ASSERT_TRUE(ParseRejectReason(RejectReasonName(r), &parsed));
    EXPECT_EQ(parsed, r);
  }
  RejectReason parsed;
  EXPECT_FALSE(ParseRejectReason("because", &parsed));
}

TEST(ExportTest, JsonlSinkStreamsAndCounts) {
  StringWriter out;
  JsonlSink sink(out);
  for (RequestId i = 0; i < 3; ++i) {
    sink.OnEvent(MakeEvent(TraceEventKind::kArrival, static_cast<double>(i), i));
  }
  EXPECT_TRUE(sink.status().ok());
  EXPECT_EQ(sink.events_written(), 3u);
  EXPECT_EQ(std::count(out.str().begin(), out.str().end(), '\n'), 3);
}

TEST(ExportTest, TableCsvQuotesSpecialCells) {
  TablePrinter t({"name", "note"});
  t.AddRow({"plain", "has,comma"});
  t.AddRow({"quote\"d", "two\nlines"});
  StringWriter out;
  ASSERT_TRUE(Export(t, out, ExportFormat::kCsv).ok());
  EXPECT_EQ(out.str(),
            "name,note\n"
            "plain,\"has,comma\"\n"
            "\"quote\"\"d\",\"two\nlines\"\n");
}

TEST(ExportTest, RunMetricsCsvIsRejected) {
  RunMetrics m;
  StringWriter out;
  EXPECT_FALSE(Export(m, out, ExportFormat::kCsv).ok());
}

// ------------------------------------------------------- windowed counters

TEST(WindowedMetricsTest, BucketsCountsAndMaterializesGaps) {
  WindowedMetrics wm(/*window_ms=*/10.0);
  auto feed = [&wm](TraceEvent e) { wm.OnEvent(e); };

  feed(MakeEvent(TraceEventKind::kArrival, 1.0, 0));
  {
    TraceEvent e = MakeEvent(TraceEventKind::kEnqueue, 1.0, 0);
    e.queue_depth = 1;
    feed(e);
  }
  feed(MakeEvent(TraceEventKind::kArrival, 2.0, 1));
  {
    TraceEvent e = MakeEvent(TraceEventKind::kEnqueue, 2.0, 1);
    e.queue_depth = 2;
    feed(e);
  }
  feed(MakeEvent(TraceEventKind::kDispatch, 12.0, 0));
  {
    TraceEvent e = MakeEvent(TraceEventKind::kCompletion, 15.0, 0);
    e.seek_ms = 2.0;
    feed(e);
  }
  feed(MakeEvent(TraceEventKind::kDispatch, 31.0, 1));
  {
    TraceEvent e = MakeEvent(TraceEventKind::kCompletion, 35.0, 1);
    e.seek_ms = 4.0;
    e.missed = true;
    feed(e);
    feed(MakeEvent(TraceEventKind::kDeadlineMiss, 35.0, 1));
  }

  const auto rows = wm.Rows();
  ASSERT_EQ(rows.size(), 4u);  // [0,10) [10,20) [20,30) gap [30,40)
  EXPECT_DOUBLE_EQ(rows[0].start_ms, 0.0);
  EXPECT_EQ(rows[0].arrivals, 2u);
  EXPECT_EQ(rows[0].end_queue_depth, 2u);

  EXPECT_EQ(rows[1].completions, 1u);
  EXPECT_EQ(rows[1].misses, 0u);
  EXPECT_EQ(rows[1].end_queue_depth, 1u);
  EXPECT_DOUBLE_EQ(rows[1].total_seek_ms, 2.0);

  // The empty window carries the depth through with zero counts.
  EXPECT_DOUBLE_EQ(rows[2].start_ms, 20.0);
  EXPECT_EQ(rows[2].arrivals, 0u);
  EXPECT_EQ(rows[2].completions, 0u);
  EXPECT_EQ(rows[2].end_queue_depth, 1u);

  EXPECT_EQ(rows[3].completions, 1u);
  EXPECT_EQ(rows[3].misses, 1u);
  EXPECT_DOUBLE_EQ(rows[3].miss_rate(), 1.0);
  EXPECT_EQ(rows[3].end_queue_depth, 0u);

  StringWriter out;
  ASSERT_TRUE(Export(wm, out, ExportFormat::kCsv).ok());
  // Header + one line per window.
  EXPECT_EQ(std::count(out.str().begin(), out.str().end(), '\n'), 5);
}

// ------------------------------------------------------------ SLO windows

TEST(SloMetricsTest, WindowsAccumulateAndMaterializeGaps) {
  SloMetrics slo(/*window_ms=*/10.0);
  auto feed = [&slo](TraceEvent e) { slo.OnEvent(e); };

  // Window [0,10): two offers, one admitted + drained, one load-shed.
  {
    TraceEvent e = MakeEvent(TraceEventKind::kIngest, 1.0, 0);
    e.stream = 0;
    feed(e);
  }
  feed(MakeEvent(TraceEventKind::kAdmit, 1.0, 0));
  {
    TraceEvent e = MakeEvent(TraceEventKind::kIngest, 2.0, 1);
    e.stream = 1;
    feed(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kReject, 2.0, 1);
    e.reject = RejectReason::kLoad;
    feed(e);
  }
  {
    TraceEvent e = MakeEvent(TraceEventKind::kDrain, 4.0, 0);
    e.wait_ms = 3.0;
    feed(e);
  }
  // Windows [10,20) and [20,30) stay empty; [30,40) gets one rate shed.
  feed(MakeEvent(TraceEventKind::kIngest, 31.0, 2));
  {
    TraceEvent e = MakeEvent(TraceEventKind::kReject, 31.0, 2);
    e.reject = RejectReason::kRate;
    feed(e);
  }

  const std::vector<SloWindowRow> rows = slo.Rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_DOUBLE_EQ(rows[0].start_ms, 0.0);
  EXPECT_EQ(rows[0].offered, 2u);
  EXPECT_EQ(rows[0].admitted, 1u);
  EXPECT_EQ(rows[0].rejected, 1u);
  EXPECT_EQ(rows[0].rejected_load, 1u);
  EXPECT_EQ(rows[0].drains, 1u);
  EXPECT_DOUBLE_EQ(rows[0].shed_rate(), 0.5);
  EXPECT_GT(rows[0].p50_ms, 0.0);
  EXPECT_GE(rows[0].max_ms, rows[0].p50_ms);

  // Gap windows materialize with zero counts so the series plots as-is.
  EXPECT_DOUBLE_EQ(rows[1].start_ms, 10.0);
  EXPECT_EQ(rows[1].offered, 0u);
  EXPECT_DOUBLE_EQ(rows[1].shed_rate(), 0.0);
  EXPECT_DOUBLE_EQ(rows[2].start_ms, 20.0);

  EXPECT_DOUBLE_EQ(rows[3].start_ms, 30.0);
  EXPECT_EQ(rows[3].rejected_rate, 1u);
  EXPECT_EQ(rows[3].drains, 0u);

  // The whole-run histogram saw exactly the one drain sample.
  EXPECT_EQ(slo.overall().total(), 1u);
}

TEST(SloMetricsTest, ExportsCsvJsonAndJsonl) {
  SloMetrics slo(/*window_ms=*/5.0);
  for (int i = 0; i < 3; ++i) {
    slo.OnEvent(MakeEvent(TraceEventKind::kIngest,
                          static_cast<double>(i) * 4.0,
                          static_cast<RequestId>(i)));
    slo.OnEvent(MakeEvent(TraceEventKind::kAdmit,
                          static_cast<double>(i) * 4.0,
                          static_cast<RequestId>(i)));
    TraceEvent d = MakeEvent(TraceEventKind::kDrain,
                             static_cast<double>(i) * 4.0 + 1.0,
                             static_cast<RequestId>(i));
    d.wait_ms = 1.0 + i;
    slo.OnEvent(d);
  }
  const size_t windows = slo.Rows().size();
  ASSERT_GT(windows, 1u);

  StringWriter csv;
  ASSERT_TRUE(Export(slo, csv, ExportFormat::kCsv).ok());
  EXPECT_EQ(static_cast<size_t>(
                std::count(csv.str().begin(), csv.str().end(), '\n')),
            windows + 1);  // header + one line per window
  EXPECT_EQ(csv.str().rfind("start_ms,offered,admitted,rejected", 0), 0u);

  StringWriter jsonl;
  ASSERT_TRUE(Export(slo, jsonl, ExportFormat::kJsonl).ok());
  std::istringstream lines(jsonl.str());
  std::string line;
  size_t parsed_rows = 0;
  uint64_t offered = 0;
  while (std::getline(lines, line)) {
    auto obj = ParseFlatJsonObject(line);
    ASSERT_TRUE(obj.ok()) << line;
    offered += static_cast<uint64_t>(obj->at("offered").num);
    ++parsed_rows;
  }
  EXPECT_EQ(parsed_rows, windows);
  EXPECT_EQ(offered, 3u);  // per-window counts sum to the run total

  StringWriter json;
  ASSERT_TRUE(Export(slo, json, ExportFormat::kJson).ok());
  std::string doc = json.str();
  while (!doc.empty() && doc.back() == '\n') doc.pop_back();
  EXPECT_EQ(doc.front(), '[');
  EXPECT_EQ(doc.back(), ']');
}

// ------------------------------------------------- simulator integration

std::vector<Request> TestTrace(uint64_t seed, uint64_t count) {
  WorkloadConfig c;
  c.seed = seed;
  c.count = count;
  c.mean_interarrival_ms = 10.0;
  c.priority_dims = 3;
  c.priority_levels = 16;
  c.deadline_lo_ms = 300;
  c.deadline_hi_ms = 700;
  auto gen = SyntheticGenerator::Create(c);
  EXPECT_TRUE(gen.ok());
  return DrainGenerator(**gen);
}

SchedulerFactory CascadedFactory() {
  SchedulerRegistryContext ctx;
  ctx.cascaded = PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
  auto factory = MakeSchedulerFactory("csfc", ctx);
  EXPECT_TRUE(factory.ok()) << factory.status().ToString();
  return std::move(*factory);
}

struct Timeline {
  SimTime arrival = 0, characterize = 0, enqueue = 0, dispatch = 0,
          completion = 0;
  bool has_arrival = false, has_characterize = false, has_enqueue = false,
       has_dispatch = false, has_completion = false;
  bool missed = false;
  double response_ms = 0.0;
};

TEST(ObservabilitySimTest, LifecycleOrderingAndAggregateAgreement) {
  const auto trace = TestTrace(7, 1500);
  TraceRecorder recorder;  // default 64k capacity: no wraparound here
  SimulatorConfig sc;
  sc.trace_sink = &recorder;

  auto metrics = RunSchedulerOnTrace(sc, trace, CascadedFactory());
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const RunMetrics& m = *metrics;
  ASSERT_EQ(m.completions, 1500u);
  EXPECT_EQ(recorder.dropped(), 0u);

  std::map<RequestId, Timeline> timelines;
  uint64_t completions = 0, misses = 0;
  double response_sum_ms = 0.0;
  for (const TraceEvent& e : recorder.Events()) {
    if (!e.has_request()) continue;
    Timeline& tl = timelines[e.id];
    switch (e.kind) {
      case TraceEventKind::kArrival:
        EXPECT_FALSE(tl.has_arrival) << "duplicate arrival for " << e.id;
        tl.arrival = e.t;
        tl.has_arrival = true;
        break;
      case TraceEventKind::kCharacterize:
        if (!tl.has_characterize) {
          tl.characterize = e.t;
          tl.has_characterize = true;
        }
        EXPECT_GE(e.vc, 0.0);
        EXPECT_LT(e.vc, 1.0);
        break;
      case TraceEventKind::kEnqueue:
        tl.enqueue = e.t;
        tl.has_enqueue = true;
        break;
      case TraceEventKind::kDispatch:
        EXPECT_FALSE(tl.has_dispatch) << "duplicate dispatch for " << e.id;
        tl.dispatch = e.t;
        tl.has_dispatch = true;
        break;
      case TraceEventKind::kCompletion:
        EXPECT_FALSE(tl.has_completion);
        tl.completion = e.t;
        tl.has_completion = true;
        tl.missed = e.missed;
        tl.response_ms = e.response_ms;
        ++completions;
        if (e.missed) ++misses;
        response_sum_ms += e.response_ms;
        break;
      default:
        break;
    }
  }

  // Every request has the full lifecycle, in order.
  EXPECT_EQ(timelines.size(), 1500u);
  for (const auto& [id, tl] : timelines) {
    ASSERT_TRUE(tl.has_arrival && tl.has_characterize && tl.has_enqueue &&
                tl.has_dispatch && tl.has_completion)
        << "incomplete lifecycle for request " << id;
    EXPECT_LE(tl.arrival, tl.characterize) << id;
    EXPECT_LE(tl.characterize, tl.enqueue) << id;
    EXPECT_LE(tl.enqueue, tl.dispatch) << id;
    EXPECT_LE(tl.dispatch, tl.completion) << id;
  }

  // Trace aggregates match the run's RunMetrics.
  EXPECT_EQ(completions, m.completions);
  EXPECT_EQ(misses, m.deadline_misses);
  EXPECT_NEAR(response_sum_ms / static_cast<double>(completions),
              m.response_ms.mean(), 1e-6);
}

TEST(ObservabilitySimTest, NullSinkLeavesMetricsIdentical) {
  const auto trace = TestTrace(11, 800);
  SimulatorConfig plain;
  auto without = RunSchedulerOnTrace(plain, trace, CascadedFactory());
  ASSERT_TRUE(without.ok());

  TraceRecorder recorder;
  SimulatorConfig traced;
  traced.trace_sink = &recorder;
  auto with = RunSchedulerOnTrace(traced, trace, CascadedFactory());
  ASSERT_TRUE(with.ok());

  // Tracing is observation only: the schedule itself must not change.
  EXPECT_EQ(without->completions, with->completions);
  EXPECT_EQ(without->deadline_misses, with->deadline_misses);
  EXPECT_EQ(without->makespan, with->makespan);
  EXPECT_DOUBLE_EQ(without->total_seek_ms, with->total_seek_ms);
  EXPECT_DOUBLE_EQ(without->response_ms.mean(), with->response_ms.mean());
  EXPECT_GT(recorder.total(), 0u);
}

TEST(ObservabilitySimTest, BaselineSchedulersTraceCoreLifecycle) {
  // Baselines don't override Observe, so no scheduler-internal events —
  // but the simulator/metrics instrumentation still yields the full
  // arrival/enqueue/dispatch/completion skeleton.
  const auto trace = TestTrace(13, 400);
  TraceRecorder recorder;
  SimulatorConfig sc;
  sc.trace_sink = &recorder;
  auto m = RunSchedulerOnTrace(
      sc, trace, [] { return std::make_unique<FcfsScheduler>(); });
  ASSERT_TRUE(m.ok());

  std::map<TraceEventKind, uint64_t> counts;
  for (const TraceEvent& e : recorder.Events()) ++counts[e.kind];
  EXPECT_EQ(counts[TraceEventKind::kArrival], 400u);
  EXPECT_EQ(counts[TraceEventKind::kEnqueue], 400u);
  EXPECT_EQ(counts[TraceEventKind::kDispatch], 400u);
  EXPECT_EQ(counts[TraceEventKind::kCompletion], 400u);
  EXPECT_EQ(counts[TraceEventKind::kCharacterize], 0u);
  EXPECT_EQ(counts[TraceEventKind::kPromote], 0u);
}

// ------------------------------------------------------------ MetricsConfig

TEST(MetricsConfigTest, ValidateRejectsOversizedDims) {
  MetricsConfig ok;
  EXPECT_TRUE(ok.Validate().ok());
  MetricsConfig bad;
  bad.dims = 13;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(RunMetricsTest, ToJsonContainsCoreAggregates) {
  MetricsCollector c(MetricsConfig{});
  const std::string json = c.metrics().ToJson();
  for (const char* key :
       {"\"arrivals\"", "\"completions\"", "\"response_ms\"", "\"deadline\"",
        "\"seek\"", "\"inversions_per_dim\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace obs
}  // namespace csfc
