#include "workload/mpeg.h"

#include <gtest/gtest.h>

#include "workload/trace.h"

namespace csfc {
namespace {

MpegWorkloadConfig BaseConfig() {
  MpegWorkloadConfig c;
  c.seed = 7;
  c.num_users = 80;
  c.duration_ms = 5000.0;
  return c;
}

std::vector<Request> Generate(const MpegWorkloadConfig& c) {
  auto gen = MpegStreamGenerator::Create(c);
  EXPECT_TRUE(gen.ok()) << gen.status().ToString();
  return DrainGenerator(**gen);
}

TEST(MpegConfigTest, PeriodMatchesBitrate) {
  MpegWorkloadConfig c;
  // 64 KB at 1.5 Mbps: 65536*8/1.5e6 s = 349.5 ms.
  EXPECT_NEAR(c.PeriodMs(), 349.5, 0.1);
}

TEST(MpegConfigTest, ValidationCatchesBadValues) {
  MpegWorkloadConfig c = BaseConfig();
  c.num_users = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.stream_mbps = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.block_bytes = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.deadline_lo_ms = 200;
  c.deadline_hi_ms = 100;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.read_fraction = -0.1;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.duration_ms = 0;
  EXPECT_FALSE(c.Validate().ok());
  EXPECT_TRUE(BaseConfig().Validate().ok());
}

TEST(MpegGeneratorTest, OneRequestPerUserPerPeriod) {
  const auto reqs = Generate(BaseConfig());
  // 5000 ms / 349.5 ms = 14.3 -> 15 batches (batch at t=0 included).
  const size_t batches = reqs.size() / 80;
  EXPECT_EQ(reqs.size() % 80, 0u);
  EXPECT_GE(batches, 14u);
  EXPECT_LE(batches, 15u);
}

TEST(MpegGeneratorTest, ArrivalsAreNondecreasing) {
  const auto reqs = Generate(BaseConfig());
  for (size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
  }
}

TEST(MpegGeneratorTest, BatchJitterBoundsArrivals) {
  MpegWorkloadConfig c = BaseConfig();
  c.batch_jitter_ms = 2.0;
  const auto reqs = Generate(c);
  const SimTime period = MsToSim(c.PeriodMs());
  for (const Request& r : reqs) {
    const SimTime offset = r.arrival % period;
    EXPECT_LE(SimToMs(offset), 2.0 + 1e-9);
  }
}

TEST(MpegGeneratorTest, DeadlinesInRange) {
  const auto reqs = Generate(BaseConfig());
  for (const Request& r : reqs) {
    const double rel = SimToMs(r.deadline - r.arrival);
    EXPECT_GE(rel, 75.0);
    EXPECT_LE(rel, 150.0);
  }
}

TEST(MpegGeneratorTest, UsersKeepTheirPriorityLevel) {
  MpegWorkloadConfig c = BaseConfig();
  auto gen = MpegStreamGenerator::Create(c);
  ASSERT_TRUE(gen.ok());
  const auto levels = (*gen)->user_levels();
  ASSERT_EQ(levels.size(), 80u);
  const auto reqs = DrainGenerator(**gen);
  for (const Request& r : reqs) {
    ASSERT_EQ(r.priorities.size(), 1u);
    EXPECT_EQ(r.priorities[0], levels[r.stream]);
    EXPECT_LT(r.priorities[0], 8u);
  }
}

TEST(MpegGeneratorTest, PriorityLevelsAreNormallySpread) {
  MpegWorkloadConfig c = BaseConfig();
  c.num_users = 2000;
  c.duration_ms = 400.0;  // one or two batches is enough
  auto gen = MpegStreamGenerator::Create(c);
  ASSERT_TRUE(gen.ok());
  std::vector<int> hist(8, 0);
  for (PriorityLevel l : (*gen)->user_levels()) ++hist[l];
  // Middle levels dominate the extremes under a normal distribution.
  EXPECT_GT(hist[3] + hist[4], hist[0] + hist[7]);
}

TEST(MpegGeneratorTest, StreamsAdvanceSequentially) {
  const auto reqs = Generate(BaseConfig());
  // Successive requests of the same stream move forward one cylinder
  // (mod the disk size).
  std::vector<std::optional<Cylinder>> last(80);
  for (const Request& r : reqs) {
    if (last[r.stream]) {
      EXPECT_EQ(r.cylinder, (*last[r.stream] + 1) % 3832);
    }
    last[r.stream] = r.cylinder;
  }
}

TEST(MpegGeneratorTest, ReadWriteMixMatchesFraction) {
  MpegWorkloadConfig c = BaseConfig();
  c.read_fraction = 0.5;
  c.duration_ms = 40000.0;
  const auto reqs = Generate(c);
  uint64_t writes = 0;
  for (const Request& r : reqs) writes += r.is_write;
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(reqs.size()),
              0.5, 0.05);
}

TEST(MpegGeneratorTest, DeterministicForSeed) {
  const auto a = Generate(BaseConfig());
  const auto b = Generate(BaseConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].cylinder, b[i].cylinder);
    EXPECT_EQ(a[i].stream, b[i].stream);
  }
}

TEST(MpegGeneratorTest, PhaseSpreadStaggersUsers) {
  MpegWorkloadConfig c = BaseConfig();
  c.batch_jitter_ms = 0.0;
  c.user_phase_spread_ms = c.PeriodMs();
  const auto reqs = Generate(c);
  const SimTime period = MsToSim(c.PeriodMs());
  // Arrival offsets within the period must spread beyond a single burst.
  SimTime max_offset = 0;
  for (const Request& r : reqs) {
    max_offset = std::max(max_offset, r.arrival % period);
  }
  EXPECT_GT(SimToMs(max_offset), c.PeriodMs() / 2);
}

TEST(MpegGeneratorTest, PhaseIsStablePerUser) {
  MpegWorkloadConfig c = BaseConfig();
  c.batch_jitter_ms = 0.0;
  c.user_phase_spread_ms = c.PeriodMs();
  const auto reqs = Generate(c);
  const SimTime period = MsToSim(c.PeriodMs());
  std::vector<std::optional<SimTime>> phase(c.num_users);
  for (const Request& r : reqs) {
    const SimTime offset = r.arrival % period;
    if (phase[r.stream]) {
      EXPECT_EQ(offset, *phase[r.stream]) << "user " << r.stream;
    }
    phase[r.stream] = offset;
  }
}

TEST(MpegConfigTest, RejectsPhaseSpreadBeyondPeriod) {
  MpegWorkloadConfig c = BaseConfig();
  c.user_phase_spread_ms = c.PeriodMs() + 1.0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.user_phase_spread_ms = -1.0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(MpegGeneratorTest, StaggeredArrivalsStillSorted) {
  MpegWorkloadConfig c = BaseConfig();
  c.user_phase_spread_ms = c.PeriodMs() - c.batch_jitter_ms;
  const auto reqs = Generate(c);
  for (size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
  }
}

TEST(MpegGeneratorTest, BlockBytesFlowThrough) {
  const auto reqs = Generate(BaseConfig());
  for (const Request& r : reqs) EXPECT_EQ(r.bytes, 64u * 1024);
}

}  // namespace
}  // namespace csfc
