#include "workload/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "workload/generator.h"

namespace csfc {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

Request SampleRequest() {
  Request r;
  r.id = 12;
  r.arrival = 345678;
  r.deadline = 456789;
  r.cylinder = 1234;
  r.bytes = 65536;
  r.is_write = true;
  r.stream = 9;
  r.priorities = PriorityVec{3, 0, 7};
  return r;
}

TEST(TraceFormatTest, LineRoundTrips) {
  const Request r = SampleRequest();
  auto parsed = ParseTraceLine(FormatTraceLine(r));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, r.id);
  EXPECT_EQ(parsed->arrival, r.arrival);
  EXPECT_EQ(parsed->deadline, r.deadline);
  EXPECT_EQ(parsed->cylinder, r.cylinder);
  EXPECT_EQ(parsed->bytes, r.bytes);
  EXPECT_EQ(parsed->is_write, r.is_write);
  EXPECT_EQ(parsed->stream, r.stream);
  EXPECT_TRUE(parsed->priorities == r.priorities);
}

TEST(TraceFormatTest, RelaxedDeadlineUsesMinusOne) {
  Request r = SampleRequest();
  r.deadline = kNoDeadline;
  const std::string line = FormatTraceLine(r);
  EXPECT_NE(line.find(" -1 "), std::string::npos);
  auto parsed = ParseTraceLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->has_deadline());
}

TEST(TraceFormatTest, NoPrioritiesIsValid) {
  Request r = SampleRequest();
  r.priorities.clear();
  auto parsed = ParseTraceLine(FormatTraceLine(r));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->priorities.empty());
}

TEST(TraceFormatTest, MalformedLineRejected) {
  EXPECT_FALSE(ParseTraceLine("").ok());
  EXPECT_FALSE(ParseTraceLine("1 2 3").ok());
  EXPECT_FALSE(ParseTraceLine("x y z w v u t").ok());
}

TEST(TraceFileTest, SaveLoadRoundTrips) {
  WorkloadConfig c;
  c.seed = 5;
  c.count = 500;
  auto gen = SyntheticGenerator::Create(c);
  ASSERT_TRUE(gen.ok());
  const auto reqs = DrainGenerator(**gen);

  const std::string path = TempPath("csfc_trace_test.txt");
  ASSERT_TRUE(SaveTrace(path, reqs).ok());
  auto loaded = LoadTrace(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ((*loaded)[i].arrival, reqs[i].arrival);
    EXPECT_EQ((*loaded)[i].cylinder, reqs[i].cylinder);
    EXPECT_TRUE((*loaded)[i].priorities == reqs[i].priorities);
  }
  std::remove(path.c_str());
}

TEST(TraceFileTest, LoadRejectsMissingFile) {
  auto r = LoadTrace(TempPath("definitely_not_there.txt"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(TraceFileTest, LoadRejectsUnorderedTrace) {
  const std::string path = TempPath("csfc_unordered_trace.txt");
  {
    std::vector<Request> reqs(2);
    reqs[0].id = 0;
    reqs[0].arrival = 100;
    reqs[1].id = 1;
    reqs[1].arrival = 50;  // goes backwards
    ASSERT_TRUE(SaveTrace(path, reqs).ok());
  }
  auto r = LoadTrace(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TraceFileTest, CommentsAndBlankLinesIgnored) {
  const std::string path = TempPath("csfc_comment_trace.txt");
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("# a comment\n\n0 10 -1 5 100 0 0 1 2\n", f);
    fclose(f);
  }
  auto r = LoadTrace(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].cylinder, 5u);
  EXPECT_EQ((*r)[0].priorities.size(), 2u);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, ReplaysInOrder) {
  std::vector<Request> reqs(3);
  for (size_t i = 0; i < 3; ++i) {
    reqs[i].id = i;
    reqs[i].arrival = static_cast<SimTime>(i * 10);
  }
  TraceReplayGenerator gen(reqs);
  for (size_t i = 0; i < 3; ++i) {
    auto r = gen.Next();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->id, i);
  }
  EXPECT_FALSE(gen.Next().has_value());
}

TEST(DrainGeneratorTest, RespectsMaxRequests) {
  WorkloadConfig c;
  c.count = 100;
  auto gen = SyntheticGenerator::Create(c);
  ASSERT_TRUE(gen.ok());
  const auto reqs = DrainGenerator(**gen, 10);
  EXPECT_EQ(reqs.size(), 10u);
}

}  // namespace
}  // namespace csfc
