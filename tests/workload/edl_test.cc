#include "workload/edl.h"

#include <gtest/gtest.h>

#include <map>

#include "workload/trace.h"

namespace csfc {
namespace {

EdlWorkloadConfig BaseConfig() {
  EdlWorkloadConfig c;
  c.seed = 9;
  c.num_editors = 12;
  c.ops_per_script = 6;
  return c;
}

std::vector<Request> Generate(const EdlWorkloadConfig& c) {
  auto gen = EdlWorkloadGenerator::Create(c);
  EXPECT_TRUE(gen.ok()) << gen.status().ToString();
  return DrainGenerator(**gen);
}

TEST(EdlConfigTest, ValidationCatchesBadValues) {
  EdlWorkloadConfig c = BaseConfig();
  c.num_editors = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.ops_per_script = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.clip_blocks_lo = 10;
  c.clip_blocks_hi = 5;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.period_ms = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.play_weight = c.ingest_weight = c.archive_weight = 0;
  EXPECT_FALSE(c.Validate().ok());
  EXPECT_TRUE(BaseConfig().Validate().ok());
}

TEST(EdlGeneratorTest, ArrivalsAreNondecreasing) {
  const auto reqs = Generate(BaseConfig());
  ASSERT_FALSE(reqs.empty());
  for (size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
  }
}

TEST(EdlGeneratorTest, EveryScriptBlockIsEmitted) {
  EdlWorkloadConfig c = BaseConfig();
  auto gen = EdlWorkloadGenerator::Create(c);
  ASSERT_TRUE(gen.ok());
  uint64_t expected = 0;
  for (uint32_t e = 0; e < c.num_editors; ++e) {
    for (const EdlOp& op : (*gen)->script(e)) expected += op.blocks;
  }
  EXPECT_EQ(DrainGenerator(**gen).size(), expected);
}

TEST(EdlGeneratorTest, RealTimeOpsCarryDeadlinesArchivesDoNot) {
  const auto reqs = Generate(BaseConfig());
  bool saw_deadline = false;
  bool saw_relaxed = false;
  for (const Request& r : reqs) {
    if (r.has_deadline()) {
      saw_deadline = true;
      const double rel = SimToMs(r.deadline - r.arrival);
      EXPECT_GE(rel, 75.0);
      EXPECT_LE(rel, 150.0);
      EXPECT_EQ(r.bytes, 64u * 1024);
    } else {
      saw_relaxed = true;
      EXPECT_EQ(r.bytes, 256u * 1024);  // archive blocks
      EXPECT_FALSE(r.is_write);
    }
  }
  EXPECT_TRUE(saw_deadline);
  EXPECT_TRUE(saw_relaxed);
}

TEST(EdlGeneratorTest, ClipReadsAreSequential) {
  EdlWorkloadConfig c = BaseConfig();
  c.num_editors = 1;
  auto gen = EdlWorkloadGenerator::Create(c);
  ASSERT_TRUE(gen.ok());
  const auto& script = (*gen)->script(0);
  const auto reqs = DrainGenerator(**gen);
  // Requests of one editor arrive strictly in script order: walk the
  // script and check each block's cylinder.
  size_t i = 0;
  for (const EdlOp& op : script) {
    for (uint32_t b = 0; b < op.blocks; ++b, ++i) {
      ASSERT_LT(i, reqs.size());
      EXPECT_EQ(reqs[i].cylinder, (op.start_cylinder + b) % 3832);
    }
  }
}

TEST(EdlGeneratorTest, EditorsKeepTheirPriority) {
  EdlWorkloadConfig c = BaseConfig();
  auto gen = EdlWorkloadGenerator::Create(c);
  ASSERT_TRUE(gen.ok());
  std::vector<PriorityLevel> levels(c.num_editors);
  for (uint32_t e = 0; e < c.num_editors; ++e) {
    levels[e] = (*gen)->editor_level(e);
  }
  for (const Request& r : DrainGenerator(**gen)) {
    ASSERT_EQ(r.priorities.size(), 1u);
    EXPECT_EQ(r.priorities[0], levels[r.stream]);
  }
}

TEST(EdlGeneratorTest, IngestOpsAreWrites) {
  EdlWorkloadConfig c = BaseConfig();
  c.ingest_weight = 1.0;
  c.play_weight = 0.0;
  c.archive_weight = 0.0;
  const auto reqs = Generate(c);
  for (const Request& r : reqs) EXPECT_TRUE(r.is_write);
}

TEST(EdlGeneratorTest, DeterministicForSeed) {
  const auto a = Generate(BaseConfig());
  const auto b = Generate(BaseConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].cylinder, b[i].cylinder);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
}

TEST(EdlGeneratorTest, PacingFollowsPeriod) {
  EdlWorkloadConfig c = BaseConfig();
  c.num_editors = 1;
  const auto reqs = Generate(c);
  for (size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].arrival - reqs[i - 1].arrival, MsToSim(c.period_ms));
  }
}

}  // namespace
}  // namespace csfc
