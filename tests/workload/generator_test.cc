#include "workload/generator.h"

#include <gtest/gtest.h>

#include "workload/trace.h"

namespace csfc {
namespace {

WorkloadConfig BaseConfig() {
  WorkloadConfig c;
  c.seed = 42;
  c.count = 2000;
  c.mean_interarrival_ms = 25.0;
  c.priority_dims = 3;
  c.priority_levels = 16;
  return c;
}

std::vector<Request> Generate(const WorkloadConfig& c) {
  auto gen = SyntheticGenerator::Create(c);
  EXPECT_TRUE(gen.ok()) << gen.status().ToString();
  return DrainGenerator(**gen);
}

TEST(WorkloadConfigTest, ValidationCatchesBadValues) {
  WorkloadConfig c = BaseConfig();
  c.count = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.mean_interarrival_ms = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.burst_size = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.priority_dims = 13;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.priority_levels = 1;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.deadline_lo_ms = 700;
  c.deadline_hi_ms = 500;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.bytes_lo = 100;
  c.bytes_hi = 50;
  EXPECT_FALSE(c.Validate().ok());
  c = BaseConfig();
  c.write_fraction = 1.5;
  EXPECT_FALSE(c.Validate().ok());
  EXPECT_TRUE(BaseConfig().Validate().ok());
}

TEST(SyntheticGeneratorTest, ProducesExactlyCountRequests) {
  const auto reqs = Generate(BaseConfig());
  EXPECT_EQ(reqs.size(), 2000u);
}

TEST(SyntheticGeneratorTest, IdsAreSequential) {
  const auto reqs = Generate(BaseConfig());
  for (size_t i = 0; i < reqs.size(); ++i) EXPECT_EQ(reqs[i].id, i);
}

TEST(SyntheticGeneratorTest, ArrivalsAreNondecreasing) {
  const auto reqs = Generate(BaseConfig());
  for (size_t i = 1; i < reqs.size(); ++i) {
    EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
  }
}

TEST(SyntheticGeneratorTest, MeanInterarrivalMatches) {
  WorkloadConfig c = BaseConfig();
  c.count = 50000;
  const auto reqs = Generate(c);
  const double total_ms = SimToMs(reqs.back().arrival);
  EXPECT_NEAR(total_ms / static_cast<double>(reqs.size()), 25.0, 1.0);
}

TEST(SyntheticGeneratorTest, DeterministicForSeed) {
  const auto a = Generate(BaseConfig());
  const auto b = Generate(BaseConfig());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].cylinder, b[i].cylinder);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
    EXPECT_TRUE(a[i].priorities == b[i].priorities);
  }
}

TEST(SyntheticGeneratorTest, SeedsChangeTheStream) {
  WorkloadConfig c = BaseConfig();
  c.seed = 43;
  const auto a = Generate(BaseConfig());
  const auto b = Generate(c);
  int diffs = 0;
  for (size_t i = 0; i < 100; ++i) diffs += a[i].cylinder != b[i].cylinder;
  EXPECT_GT(diffs, 50);
}

TEST(SyntheticGeneratorTest, PrioritiesWithinLevels) {
  const auto reqs = Generate(BaseConfig());
  for (const Request& r : reqs) {
    ASSERT_EQ(r.priorities.size(), 3u);
    for (PriorityLevel p : r.priorities) EXPECT_LT(p, 16u);
  }
}

TEST(SyntheticGeneratorTest, UniformPrioritiesCoverAllLevels) {
  const auto reqs = Generate(BaseConfig());
  std::vector<int> seen(16, 0);
  for (const Request& r : reqs) ++seen[r.priorities[0]];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(SyntheticGeneratorTest, NormalPrioritiesConcentrateMidScale) {
  WorkloadConfig c = BaseConfig();
  c.priority_distribution = PriorityDistribution::kNormal;
  c.priority_levels = 8;
  c.count = 10000;
  const auto reqs = Generate(c);
  uint64_t mid = 0;
  for (const Request& r : reqs) {
    EXPECT_LT(r.priorities[0], 8u);
    mid += r.priorities[0] >= 2 && r.priorities[0] <= 5;
  }
  EXPECT_GT(static_cast<double>(mid) / static_cast<double>(reqs.size()), 0.6);
}

TEST(SyntheticGeneratorTest, DeadlinesInRange) {
  const auto reqs = Generate(BaseConfig());
  for (const Request& r : reqs) {
    ASSERT_TRUE(r.has_deadline());
    const double rel = SimToMs(r.deadline - r.arrival);
    EXPECT_GE(rel, 500.0);
    EXPECT_LE(rel, 700.0);
  }
}

TEST(SyntheticGeneratorTest, RelaxedDeadlines) {
  WorkloadConfig c = BaseConfig();
  c.relaxed_deadlines = true;
  const auto reqs = Generate(c);
  for (const Request& r : reqs) EXPECT_FALSE(r.has_deadline());
}

TEST(SyntheticGeneratorTest, CylindersWithinDisk) {
  const auto reqs = Generate(BaseConfig());
  for (const Request& r : reqs) EXPECT_LT(r.cylinder, 3832u);
}

TEST(SyntheticGeneratorTest, SizeCoupledToPriority) {
  WorkloadConfig c = BaseConfig();
  c.couple_size_to_priority = true;
  c.bytes_lo = 8 * 1024;
  c.bytes_hi = 256 * 1024;
  const auto reqs = Generate(c);
  for (const Request& r : reqs) {
    if (r.priorities[0] == 0) {
      EXPECT_EQ(r.bytes, 8u * 1024);
    }
    if (r.priorities[0] == 15) {
      EXPECT_EQ(r.bytes, 256u * 1024);
    }
    EXPECT_GE(r.bytes, 8u * 1024);
    EXPECT_LE(r.bytes, 256u * 1024);
  }
}

TEST(SyntheticGeneratorTest, UniformSizesWithinRange) {
  WorkloadConfig c = BaseConfig();
  c.bytes_lo = 1000;
  c.bytes_hi = 2000;
  const auto reqs = Generate(c);
  bool varied = false;
  for (const Request& r : reqs) {
    EXPECT_GE(r.bytes, 1000u);
    EXPECT_LE(r.bytes, 2000u);
    varied |= r.bytes != reqs[0].bytes;
  }
  EXPECT_TRUE(varied);
}

TEST(SyntheticGeneratorTest, BurstsShareArrivalInstant) {
  WorkloadConfig c = BaseConfig();
  c.burst_size = 10;
  c.count = 200;
  const auto reqs = Generate(c);
  for (size_t i = 0; i < reqs.size(); i += 10) {
    for (size_t k = 1; k < 10; ++k) {
      EXPECT_EQ(reqs[i + k].arrival, reqs[i].arrival);
    }
  }
}

TEST(SyntheticGeneratorTest, BurstsPreserveOfferedLoad) {
  WorkloadConfig c = BaseConfig();
  c.burst_size = 10;
  c.count = 50000;
  const auto reqs = Generate(c);
  const double total_ms = SimToMs(reqs.back().arrival);
  EXPECT_NEAR(total_ms / static_cast<double>(reqs.size()), 25.0, 1.5);
}

TEST(SyntheticGeneratorTest, WriteFraction) {
  WorkloadConfig c = BaseConfig();
  c.write_fraction = 0.25;
  c.count = 20000;
  const auto reqs = Generate(c);
  uint64_t writes = 0;
  for (const Request& r : reqs) writes += r.is_write;
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(reqs.size()),
              0.25, 0.02);
}

TEST(SyntheticGeneratorTest, ZeroPriorityDims) {
  WorkloadConfig c = BaseConfig();
  c.priority_dims = 0;
  const auto reqs = Generate(c);
  for (const Request& r : reqs) EXPECT_TRUE(r.priorities.empty());
}

TEST(SyntheticGeneratorTest, ZipfCylindersSkewLow) {
  WorkloadConfig c = BaseConfig();
  c.cylinder_distribution = CylinderDistribution::kZipf;
  c.zipf_theta = 0.9;
  c.count = 20000;
  const auto reqs = Generate(c);
  uint64_t low = 0;
  for (const Request& r : reqs) {
    EXPECT_LT(r.cylinder, 3832u);
    low += r.cylinder < 383;  // first 10% of the disk
  }
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(reqs.size()), 0.4);
}

TEST(SyntheticGeneratorTest, ZipfThetaValidated) {
  WorkloadConfig c = BaseConfig();
  c.cylinder_distribution = CylinderDistribution::kZipf;
  c.zipf_theta = 1.5;
  EXPECT_FALSE(c.Validate().ok());
  c.zipf_theta = 0.0;
  EXPECT_FALSE(c.Validate().ok());
  c.zipf_theta = 0.5;
  EXPECT_TRUE(c.Validate().ok());
}

TEST(RequestTest, DebugStringContainsFields) {
  Request r;
  r.id = 3;
  r.cylinder = 77;
  r.priorities = PriorityVec{1, 0, 4};
  const std::string s = r.DebugString();
  EXPECT_NE(s.find("id=3"), std::string::npos);
  EXPECT_NE(s.find("cyl=77"), std::string::npos);
  EXPECT_NE(s.find("[1,0,4]"), std::string::npos);
}

TEST(RequestTest, PriorityAccessorPadsWithZero) {
  Request r;
  r.priorities = PriorityVec{5};
  EXPECT_EQ(r.priority(0), 5u);
  EXPECT_EQ(r.priority(1), 0u);
  EXPECT_EQ(r.priority(11), 0u);
}

}  // namespace
}  // namespace csfc
