// Section 4.3 extension schedulers: DDS with an SFC1 front end and BUCKET
// with an SFC3 sweep stage.

#include "sched/extended.h"

#include <gtest/gtest.h>

#include "sched/bucket.h"

namespace csfc {
namespace {

DiskModel* SharedDisk() {
  static DiskModel model = *DiskModel::Create(DiskParams::PanaVissDisk());
  return &model;
}

Request Req(RequestId id, Cylinder cyl, SimTime deadline,
            std::initializer_list<PriorityLevel> pris) {
  Request r;
  r.id = id;
  r.cylinder = cyl;
  r.deadline = deadline;
  for (PriorityLevel p : pris) r.priorities.push_back(p);
  r.bytes = 64 * 1024;
  return r;
}

std::vector<RequestId> DrainIds(Scheduler& s) {
  std::vector<RequestId> ids;
  DispatchContext ctx{.now = 0, .head = 0};
  while (auto r = s.Dispatch(ctx)) {
    ids.push_back(r->id);
    ctx.head = r->cylinder;
  }
  return ids;
}

// --- SfcDdsScheduler -----------------------------------------------------

TEST(SfcDdsTest, CreateValidation) {
  EXPECT_FALSE(SfcDdsScheduler::Create(nullptr, "hilbert", 3, 4).ok());
  EXPECT_FALSE(SfcDdsScheduler::Create(SharedDisk(), "bogus", 3, 4).ok());
  EXPECT_TRUE(SfcDdsScheduler::Create(SharedDisk(), "hilbert", 3, 4).ok());
}

TEST(SfcDdsTest, AbsolutePriorityRespectsCurveOrder) {
  auto s = SfcDdsScheduler::Create(SharedDisk(), "cscan", 2, 4);
  ASSERT_TRUE(s.ok());
  // cscan is dimension-0-major: (0,15) must rank more important than
  // (1,0), and (0,0) is the most important of all.
  const PriorityLevel best =
      (*s)->AbsolutePriority(Req(0, 0, kNoDeadline, {0, 0}));
  const PriorityLevel mid =
      (*s)->AbsolutePriority(Req(1, 0, kNoDeadline, {0, 15}));
  const PriorityLevel low =
      (*s)->AbsolutePriority(Req(2, 0, kNoDeadline, {1, 0}));
  EXPECT_LT(best, mid);
  EXPECT_LT(mid, low);
}

TEST(SfcDdsTest, DemotesByCurvePositionOnConflict) {
  auto s = SfcDdsScheduler::Create(SharedDisk(), "cscan", 2, 3);
  ASSERT_TRUE(s.ok());
  DispatchContext ctx{.now = 0, .head = 0};
  // Low multi-priority (7,7) request sits early in the sweep; a tight
  // high multi-priority (0,0) request behind it forces its demotion —
  // DDS alone could not have compared the two-dimensional priorities.
  (*s)->Enqueue(Req(1, 1000, MsToSim(10000), {7, 7}), ctx);
  (*s)->Enqueue(Req(2, 2000, MsToSim(30), {0, 0}), ctx);
  EXPECT_EQ(DrainIds(**s), (std::vector<RequestId>{2, 1}));
}

TEST(SfcDdsTest, RestoresOriginalPriorities) {
  auto s = SfcDdsScheduler::Create(SharedDisk(), "hilbert", 3, 4);
  ASSERT_TRUE(s.ok());
  DispatchContext ctx{.now = 0, .head = 0};
  (*s)->Enqueue(Req(1, 500, MsToSim(1000), {3, 7, 11}), ctx);
  auto r = (*s)->Dispatch(ctx);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->priorities.size(), 3u);
  EXPECT_EQ(r->priorities[0], 3u);
  EXPECT_EQ(r->priorities[1], 7u);
  EXPECT_EQ(r->priorities[2], 11u);
}

TEST(SfcDdsTest, ForEachWaitingSeesOriginalPriorities) {
  auto s = SfcDdsScheduler::Create(SharedDisk(), "hilbert", 2, 4);
  ASSERT_TRUE(s.ok());
  DispatchContext ctx{.now = 0, .head = 0};
  (*s)->Enqueue(Req(1, 500, MsToSim(1000), {5, 9}), ctx);
  size_t seen = 0;
  (*s)->ForEachWaiting([&](const Request& r) {
    ++seen;
    ASSERT_EQ(r.priorities.size(), 2u);
    EXPECT_EQ(r.priorities[0], 5u);
    EXPECT_EQ(r.priorities[1], 9u);
  });
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ((*s)->queue_size(), 1u);
}

// --- SfcBucketScheduler ----------------------------------------------------

TEST(SfcBucketTest, BucketOrderStillDominates) {
  SfcBucketScheduler s(8, 4, /*urgency_band=*/MsToSim(100));
  DispatchContext ctx;
  s.Enqueue(Req(1, 10, MsToSim(50), {7}), ctx);   // low value
  s.Enqueue(Req(2, 3800, MsToSim(950), {0}), ctx);  // top value
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{2, 1}));
}

TEST(SfcBucketTest, SweepWithinUrgencyBand) {
  SfcBucketScheduler s(8, 1, /*urgency_band=*/MsToSim(100));
  DispatchContext ctx{.now = 0, .head = 100};
  // Same band (deadlines within 100 ms of each other): cylinder sweep.
  s.Enqueue(Req(1, 3000, MsToSim(510), {0}), ctx);
  s.Enqueue(Req(2, 200, MsToSim(560), {0}), ctx);
  s.Enqueue(Req(3, 1500, MsToSim(530), {0}), ctx);
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{2, 3, 1}));
}

TEST(SfcBucketTest, EarlierBandBeatsSweepOrder) {
  SfcBucketScheduler s(8, 1, /*urgency_band=*/MsToSim(100));
  DispatchContext ctx{.now = 0, .head = 100};
  s.Enqueue(Req(1, 150, MsToSim(950), {0}), ctx);  // near, but relaxed
  s.Enqueue(Req(2, 3500, MsToSim(50), {0}), ctx);  // far, urgent band
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{2, 1}));
}

TEST(SfcBucketTest, ZeroBandDegeneratesToPlainBucket) {
  SfcBucketScheduler s(8, 4, /*urgency_band=*/0);
  DispatchContext ctx;
  s.Enqueue(Req(1, 10, MsToSim(300), {0}), ctx);
  s.Enqueue(Req(2, 3800, MsToSim(100), {1}), ctx);  // same bucket, earlier
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{2, 1}));
}

TEST(SfcBucketTest, QueueSizeAndForEach) {
  SfcBucketScheduler s(8, 4, MsToSim(100));
  DispatchContext ctx;
  s.Enqueue(Req(1, 10, MsToSim(100), {0}), ctx);
  s.Enqueue(Req(2, 20, MsToSim(200), {7}), ctx);
  EXPECT_EQ(s.queue_size(), 2u);
  size_t seen = 0;
  s.ForEachWaiting([&](const Request&) { ++seen; });
  EXPECT_EQ(seen, 2u);
}

TEST(SfcBucketTest, SeekBeatsPlainBucketOnBandedWorkload) {
  // Quantitative version of Section 4.3: on a batch of equal-value
  // requests with similar deadlines, sweeping inside the band visits
  // cylinders in order while plain BUCKET jumps deadline-to-deadline.
  SfcBucketScheduler swept(8, 4, MsToSim(1000));
  BucketScheduler plain(8, 4);
  DispatchContext ctx{.now = 0, .head = 0};
  uint64_t x = 77;
  std::vector<Request> batch;
  for (RequestId i = 0; i < 100; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    batch.push_back(Req(i, static_cast<Cylinder>((x >> 33) % 3832),
                        MsToSim(500 + static_cast<double>(i)), {2}));
  }
  for (const Request& r : batch) {
    swept.Enqueue(r, ctx);
    plain.Enqueue(r, ctx);
  }
  auto total_travel = [](Scheduler& s) {
    DispatchContext c{.now = 0, .head = 0};
    uint64_t travel = 0;
    Cylinder head = 0;
    while (auto r = s.Dispatch(c)) {
      travel += head > r->cylinder ? head - r->cylinder : r->cylinder - head;
      head = r->cylinder;
      c.head = head;
    }
    return travel;
  };
  EXPECT_LT(total_travel(swept), total_travel(plain) / 4);
}

}  // namespace
}  // namespace csfc
