#include "sched/registry.h"

#include <gtest/gtest.h>

namespace csfc {
namespace {

DiskModel* SharedDisk() {
  static DiskModel model = *DiskModel::Create(DiskParams::PanaVissDisk());
  return &model;
}

TEST(SchedulerRegistryTest, EveryListedNameBuilds) {
  SchedulerRegistryContext ctx;
  ctx.disk = SharedDisk();
  for (auto name : AllSchedulerNames()) {
    auto factory = MakeSchedulerFactory(name, ctx);
    ASSERT_TRUE(factory.ok()) << name << ": "
                              << factory.status().ToString();
    SchedulerPtr sched = (*factory)();
    ASSERT_NE(sched, nullptr) << name;
    EXPECT_FALSE(sched->name().empty()) << name;
  }
}

TEST(SchedulerRegistryTest, UnknownNameIsNotFound) {
  auto factory = MakeSchedulerFactory("elevator-9000", {});
  ASSERT_FALSE(factory.ok());
  EXPECT_EQ(factory.status().code(), StatusCode::kNotFound);
}

TEST(SchedulerRegistryTest, DiskDependentPoliciesNeedDisk) {
  SchedulerRegistryContext no_disk;
  for (const char* name : {"fd-scan", "scan-rt", "dds"}) {
    auto factory = MakeSchedulerFactory(name, no_disk);
    ASSERT_FALSE(factory.ok()) << name;
    EXPECT_EQ(factory.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(SchedulerRegistryTest, DiskFreePoliciesWorkWithoutDisk) {
  SchedulerRegistryContext no_disk;
  for (const char* name : {"fcfs", "sstf", "edf", "scan", "multi-queue",
                           "bucket", "ssedo", "csfc"}) {
    auto factory = MakeSchedulerFactory(name, no_disk);
    EXPECT_TRUE(factory.ok()) << name;
  }
}

TEST(SchedulerRegistryTest, BadCascadedConfigFailsEagerly) {
  SchedulerRegistryContext ctx;
  ctx.cascaded.encapsulator.sfc1 = "bogus";
  auto factory = MakeSchedulerFactory("csfc", ctx);
  EXPECT_FALSE(factory.ok());
}

TEST(SchedulerRegistryTest, FactoriesProduceFreshInstances) {
  SchedulerRegistryContext ctx;
  auto factory = MakeSchedulerFactory("fcfs", ctx);
  ASSERT_TRUE(factory.ok());
  SchedulerPtr a = (*factory)();
  SchedulerPtr b = (*factory)();
  DispatchContext dctx;
  Request r;
  a->Enqueue(r, dctx);
  EXPECT_EQ(a->queue_size(), 1u);
  EXPECT_EQ(b->queue_size(), 0u);  // independent state
}

TEST(SchedulerRegistryTest, ScanVariantsMapCorrectly) {
  SchedulerRegistryContext ctx;
  ctx.disk = SharedDisk();
  for (const char* name : {"scan", "look", "cscan", "clook"}) {
    auto factory = MakeSchedulerFactory(name, ctx);
    ASSERT_TRUE(factory.ok());
    EXPECT_EQ((*factory)()->name(), name);
  }
}

}  // namespace
}  // namespace csfc
