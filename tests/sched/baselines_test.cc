// Semantics of every baseline scheduling policy on crafted scenarios.

#include <gtest/gtest.h>

#include <vector>

#include "disk/disk_model.h"
#include "sched/bucket.h"
#include "sched/dds.h"
#include "sched/edf.h"
#include "sched/fcfs.h"
#include "sched/fd_scan.h"
#include "sched/multi_queue.h"
#include "sched/scan_edf.h"
#include "sched/scan_family.h"
#include "sched/scan_rt.h"
#include "sched/ssed.h"
#include "sched/sstf.h"

namespace csfc {
namespace {

Request Req(RequestId id, Cylinder cyl, SimTime deadline = kNoDeadline,
            PriorityLevel pri = 0) {
  Request r;
  r.id = id;
  r.cylinder = cyl;
  r.deadline = deadline;
  r.priorities.push_back(pri);
  r.bytes = 64 * 1024;
  return r;
}

std::vector<RequestId> DrainIds(Scheduler& s, Cylinder head = 0,
                                SimTime now = 0) {
  std::vector<RequestId> ids;
  DispatchContext ctx{.now = now, .head = head};
  while (auto r = s.Dispatch(ctx)) {
    ids.push_back(r->id);
    ctx.head = r->cylinder;  // head follows the serviced request
  }
  return ids;
}

DiskModel* SharedDisk() {
  static DiskModel model = *DiskModel::Create(DiskParams::PanaVissDisk());
  return &model;
}

// --- FCFS --------------------------------------------------------------------

TEST(FcfsTest, ServesInArrivalOrder) {
  FcfsScheduler s;
  DispatchContext ctx;
  s.Enqueue(Req(1, 3000), ctx);
  s.Enqueue(Req(2, 10), ctx);
  s.Enqueue(Req(3, 2000), ctx);
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{1, 2, 3}));
}

TEST(FcfsTest, QueueSizeAndForEach) {
  FcfsScheduler s;
  DispatchContext ctx;
  s.Enqueue(Req(1, 1), ctx);
  s.Enqueue(Req(2, 2), ctx);
  EXPECT_EQ(s.queue_size(), 2u);
  size_t seen = 0;
  s.ForEachWaiting([&](const Request&) { ++seen; });
  EXPECT_EQ(seen, 2u);
  s.Dispatch(ctx);
  EXPECT_EQ(s.queue_size(), 1u);
}

TEST(FcfsTest, EmptyDispatchReturnsNullopt) {
  FcfsScheduler s;
  DispatchContext ctx;
  EXPECT_FALSE(s.Dispatch(ctx).has_value());
}

// --- SSTF --------------------------------------------------------------------

TEST(SstfTest, ServesNearestFirst) {
  SstfScheduler s;
  DispatchContext ctx;
  s.Enqueue(Req(1, 1000), ctx);
  s.Enqueue(Req(2, 90), ctx);
  s.Enqueue(Req(3, 2500), ctx);
  // head 0: 90 first, then from 90: 1000, then 2500.
  EXPECT_EQ(DrainIds(s, 0), (std::vector<RequestId>{2, 1, 3}));
}

TEST(SstfTest, GreedyCanReverseDirection) {
  SstfScheduler s;
  DispatchContext ctx{.now = 0, .head = 100};
  s.Enqueue(Req(1, 110), ctx);
  s.Enqueue(Req(2, 80), ctx);
  s.Enqueue(Req(3, 140), ctx);
  // 110 (d=10), then 80 (d=30 from 110... but 140 is d=30 too; below wins
  // only if strictly closer). From 110: |80-110|=30, |140-110|=30 ->
  // above (140) is chosen because below must be strictly closer.
  EXPECT_EQ(DrainIds(s, 100), (std::vector<RequestId>{1, 3, 2}));
}

TEST(SstfTest, SameCylinderFifo) {
  SstfScheduler s;
  DispatchContext ctx;
  s.Enqueue(Req(1, 50), ctx);
  s.Enqueue(Req(2, 50), ctx);
  EXPECT_EQ(DrainIds(s, 50), (std::vector<RequestId>{1, 2}));
}

// --- SCAN family ---------------------------------------------------------------

TEST(ScanTest, SweepsUpThenDown) {
  ScanScheduler s(ScanVariant::kScan, 3832);
  DispatchContext ctx{.now = 0, .head = 100};
  s.Enqueue(Req(1, 50), ctx);
  s.Enqueue(Req(2, 150), ctx);
  s.Enqueue(Req(3, 300), ctx);
  s.Enqueue(Req(4, 20), ctx);
  EXPECT_EQ(DrainIds(s, 100), (std::vector<RequestId>{2, 3, 1, 4}));
}

TEST(ScanTest, ReversesWhenNothingAhead) {
  ScanScheduler s(ScanVariant::kScan, 3832);
  DispatchContext ctx{.now = 0, .head = 500};
  s.Enqueue(Req(1, 100), ctx);
  EXPECT_EQ(DrainIds(s, 500), (std::vector<RequestId>{1}));
  EXPECT_EQ(s.direction(), -1);
}

TEST(CScanTest, WrapsToLowestAfterTop) {
  ScanScheduler s(ScanVariant::kCScan, 3832);
  DispatchContext ctx{.now = 0, .head = 100};
  s.Enqueue(Req(1, 50), ctx);
  s.Enqueue(Req(2, 150), ctx);
  s.Enqueue(Req(3, 300), ctx);
  s.Enqueue(Req(4, 20), ctx);
  // Upward from 100: 150, 300; wrap: 20, 50.
  EXPECT_EQ(DrainIds(s, 100), (std::vector<RequestId>{2, 3, 4, 1}));
}

TEST(ScanFamilyTest, Names) {
  EXPECT_EQ(ScanScheduler(ScanVariant::kScan, 100).name(), "scan");
  EXPECT_EQ(ScanScheduler(ScanVariant::kLook, 100).name(), "look");
  EXPECT_EQ(ScanScheduler(ScanVariant::kCScan, 100).name(), "cscan");
  EXPECT_EQ(ScanScheduler(ScanVariant::kCLook, 100).name(), "clook");
}

// --- EDF ----------------------------------------------------------------------

TEST(EdfTest, ServesByDeadline) {
  EdfScheduler s;
  DispatchContext ctx;
  s.Enqueue(Req(1, 10, 300 * kMillisecond), ctx);
  s.Enqueue(Req(2, 20, 100 * kMillisecond), ctx);
  s.Enqueue(Req(3, 30, 200 * kMillisecond), ctx);
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{2, 3, 1}));
}

TEST(EdfTest, RelaxedDeadlinesSortLast) {
  EdfScheduler s;
  DispatchContext ctx;
  s.Enqueue(Req(1, 10), ctx);  // no deadline
  s.Enqueue(Req(2, 20, 500 * kMillisecond), ctx);
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{2, 1}));
}

TEST(EdfTest, TiesBreakByArrival) {
  EdfScheduler s;
  DispatchContext ctx;
  Request a = Req(1, 10, 100 * kMillisecond);
  Request b = Req(2, 20, 100 * kMillisecond);
  a.arrival = 5;
  b.arrival = 3;
  s.Enqueue(a, ctx);
  s.Enqueue(b, ctx);
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{2, 1}));
}

// --- SCAN-EDF -------------------------------------------------------------------

TEST(ScanEdfTest, DeadlineFirstThenSweep) {
  ScanEdfScheduler s;
  DispatchContext ctx{.now = 0, .head = 100};
  const SimTime dl = 500 * kMillisecond;
  s.Enqueue(Req(1, 3000, dl), ctx);
  s.Enqueue(Req(2, 200, dl), ctx);
  s.Enqueue(Req(3, 10, 100 * kMillisecond), ctx);
  // id 3 has the earliest deadline; ids 1,2 share one and go in sweep
  // order from the head.
  EXPECT_EQ(DrainIds(s, 100), (std::vector<RequestId>{3, 2, 1}));
}

TEST(ScanEdfTest, GranularityGroupsNearbyDeadlines) {
  ScanEdfScheduler s(/*deadline_granularity=*/100 * kMillisecond);
  DispatchContext ctx{.now = 0, .head = 0};
  s.Enqueue(Req(1, 3000, 50 * kMillisecond), ctx);
  s.Enqueue(Req(2, 200, 80 * kMillisecond), ctx);
  // Same 100 ms bucket: sweep order wins (200 before 3000) even though
  // id 1 has the earlier deadline.
  EXPECT_EQ(DrainIds(s, 0), (std::vector<RequestId>{2, 1}));
}

// --- FD-SCAN --------------------------------------------------------------------

TEST(FdScanTest, MovesTowardEarliestFeasibleDeadline) {
  FdScanScheduler s(SharedDisk());
  DispatchContext ctx{.now = 0, .head = 2000};
  s.Enqueue(Req(1, 3500, 1000 * kMillisecond), ctx);  // feasible, earliest
  s.Enqueue(Req(2, 2500, 2000 * kMillisecond), ctx);  // en route
  s.Enqueue(Req(3, 100, 3000 * kMillisecond), ctx);   // opposite direction
  auto r = s.Dispatch(ctx);
  ASSERT_TRUE(r.has_value());
  // Target is id 1 (cyl 3500, up); nearest pending at/above head is id 2.
  EXPECT_EQ(r->id, 2u);
}

TEST(FdScanTest, InfeasibleDeadlinesFallBackToNearest) {
  FdScanScheduler s(SharedDisk());
  DispatchContext ctx{.now = 0, .head = 2000};
  s.Enqueue(Req(1, 3500, 1), ctx);   // deadline already hopeless
  s.Enqueue(Req(2, 1900, 2), ctx);   // also hopeless, but nearest
  auto r = s.Dispatch(ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->id, 2u);
}

TEST(FdScanTest, DrainsCompletely) {
  FdScanScheduler s(SharedDisk());
  DispatchContext ctx{.now = 0, .head = 0};
  for (RequestId i = 0; i < 20; ++i) {
    s.Enqueue(Req(i, static_cast<Cylinder>(191 * (i + 1)),
                  (100 + 40 * static_cast<SimTime>(i)) * kMillisecond),
              ctx);
  }
  EXPECT_EQ(DrainIds(s, 0).size(), 20u);
  EXPECT_EQ(s.queue_size(), 0u);
}

// --- SSEDO / SSEDV ----------------------------------------------------------------

TEST(SsedTest, AlphaOneActsLikeEdf) {
  SsedScheduler s(SsedVariant::kValue, 3832, /*alpha=*/1.0);
  DispatchContext ctx;
  s.Enqueue(Req(1, 10, 300 * kMillisecond), ctx);
  s.Enqueue(Req(2, 3800, 100 * kMillisecond), ctx);
  s.Enqueue(Req(3, 30, 200 * kMillisecond), ctx);
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{2, 3, 1}));
}

TEST(SsedTest, AlphaZeroActsLikeSstf) {
  SsedScheduler s(SsedVariant::kOrdering, 3832, /*alpha=*/0.0);
  DispatchContext ctx{.now = 0, .head = 0};
  s.Enqueue(Req(1, 1000, 1 * kMillisecond), ctx);
  s.Enqueue(Req(2, 90, 900 * kMillisecond), ctx);
  auto r = s.Dispatch(ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->id, 2u);  // nearest wins despite the later deadline
}

TEST(SsedTest, CloseRequestCanJumpAhead) {
  // The defining SSEDV behavior: a later deadline right under the arm
  // beats an earlier deadline far away.
  SsedScheduler s(SsedVariant::kValue, 3832, /*alpha=*/0.3);
  DispatchContext ctx{.now = 0, .head = 500};
  s.Enqueue(Req(1, 3700, 100 * kMillisecond), ctx);  // urgent but far
  s.Enqueue(Req(2, 505, 150 * kMillisecond), ctx);   // less urgent, adjacent
  auto r = s.Dispatch(ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->id, 2u);
}

TEST(SsedTest, Names) {
  EXPECT_EQ(SsedScheduler(SsedVariant::kOrdering, 100).name(), "ssedo");
  EXPECT_EQ(SsedScheduler(SsedVariant::kValue, 100).name(), "ssedv");
}

// --- Multi-queue -------------------------------------------------------------------

TEST(MultiQueueTest, HigherPriorityLevelAlwaysFirst) {
  MultiQueueScheduler s(8);
  DispatchContext ctx{.now = 0, .head = 0};
  s.Enqueue(Req(1, 100, kNoDeadline, 3), ctx);
  s.Enqueue(Req(2, 200, kNoDeadline, 0), ctx);
  s.Enqueue(Req(3, 300, kNoDeadline, 1), ctx);
  EXPECT_EQ(DrainIds(s, 0), (std::vector<RequestId>{2, 3, 1}));
}

TEST(MultiQueueTest, SweepOrderWithinLevel) {
  MultiQueueScheduler s(4);
  DispatchContext ctx{.now = 0, .head = 150};
  s.Enqueue(Req(1, 100, kNoDeadline, 2), ctx);
  s.Enqueue(Req(2, 200, kNoDeadline, 2), ctx);
  s.Enqueue(Req(3, 3000, kNoDeadline, 2), ctx);
  // Upward from 150: 200, 3000, wrap to 100.
  EXPECT_EQ(DrainIds(s, 150), (std::vector<RequestId>{2, 3, 1}));
}

TEST(MultiQueueTest, OutOfRangeLevelClampsToLowest) {
  MultiQueueScheduler s(4);
  DispatchContext ctx;
  s.Enqueue(Req(1, 100, kNoDeadline, 99), ctx);
  s.Enqueue(Req(2, 200, kNoDeadline, 3), ctx);
  const auto ids = DrainIds(s);
  EXPECT_EQ(ids.size(), 2u);  // both land in the lowest queue and drain
}

// --- BUCKET ----------------------------------------------------------------------

TEST(BucketTest, HigherValueBucketFirstThenEdf) {
  BucketScheduler s(/*levels=*/8, /*buckets=*/4);
  DispatchContext ctx;
  s.Enqueue(Req(1, 10, 100 * kMillisecond, 7), ctx);  // lowest value
  s.Enqueue(Req(2, 20, 300 * kMillisecond, 0), ctx);  // top value, late dl
  s.Enqueue(Req(3, 30, 100 * kMillisecond, 1), ctx);  // top bucket, early dl
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{3, 2, 1}));
}

TEST(BucketTest, SingleBucketDegeneratesToEdf) {
  BucketScheduler s(/*levels=*/8, /*buckets=*/1);
  DispatchContext ctx;
  s.Enqueue(Req(1, 10, 300 * kMillisecond, 0), ctx);
  s.Enqueue(Req(2, 20, 100 * kMillisecond, 7), ctx);
  EXPECT_EQ(DrainIds(s), (std::vector<RequestId>{2, 1}));
}

// --- SCAN-RT --------------------------------------------------------------------

TEST(ScanRtTest, InsertsInScanOrderWhenFeasible) {
  ScanRtScheduler s(SharedDisk());
  DispatchContext ctx{.now = 0, .head = 0};
  s.Enqueue(Req(1, 2000, 10000 * kMillisecond), ctx);
  s.Enqueue(Req(2, 1000, 10000 * kMillisecond), ctx);  // slots in before 1
  EXPECT_EQ(DrainIds(s, 0), (std::vector<RequestId>{2, 1}));
}

TEST(ScanRtTest, AppendsWhenInsertionWouldViolateDeadline) {
  ScanRtScheduler s(SharedDisk());
  DispatchContext ctx{.now = 0, .head = 0};
  // id 1 has a deadline with almost no slack: anything inserted before it
  // would push it past the deadline.
  s.Enqueue(Req(1, 2000, 25 * kMillisecond), ctx);
  s.Enqueue(Req(2, 1000, 10000 * kMillisecond), ctx);
  EXPECT_EQ(DrainIds(s, 0), (std::vector<RequestId>{1, 2}));
}

// --- DDS ------------------------------------------------------------------------

TEST(DdsTest, ScanOrderWhenDeadlinesAreLoose) {
  DdsScheduler s(SharedDisk());
  DispatchContext ctx{.now = 0, .head = 0};
  s.Enqueue(Req(1, 2000, 10000 * kMillisecond, 0), ctx);
  s.Enqueue(Req(2, 1000, 10000 * kMillisecond, 0), ctx);
  EXPECT_EQ(DrainIds(s, 0), (std::vector<RequestId>{2, 1}));
}

TEST(DdsTest, DemotesLowestPriorityOnConflict) {
  DdsScheduler s(SharedDisk());
  DispatchContext ctx{.now = 0, .head = 0};
  // Low-priority (level 7) request with a loose deadline sits early in the
  // sweep; a tight-deadline high-priority request arrives behind it.
  s.Enqueue(Req(1, 1000, 10000 * kMillisecond, 7), ctx);
  // With id 1 in front, id 2 (at cyl 2000, deadline ~26 ms, priority 0)
  // cannot make it: serving 1000 first costs ~seek+latency+transfer
  // ~20 ms, then 2000 adds ~17 ms more. DDS must demote id 1.
  s.Enqueue(Req(2, 2000, 30 * kMillisecond, 0), ctx);
  EXPECT_EQ(DrainIds(s, 0), (std::vector<RequestId>{2, 1}));
}

TEST(DdsTest, KeepsHighPriorityInPlace) {
  DdsScheduler s(SharedDisk());
  DispatchContext ctx{.now = 0, .head = 0};
  s.Enqueue(Req(1, 1000, 10000 * kMillisecond, 0), ctx);   // high priority
  s.Enqueue(Req(2, 500, 10000 * kMillisecond, 5), ctx);    // ahead in sweep
  // Loose deadlines: pure sweep order, no demotion.
  EXPECT_EQ(DrainIds(s, 0), (std::vector<RequestId>{2, 1}));
}

}  // namespace
}  // namespace csfc
