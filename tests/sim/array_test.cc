#include "sim/array.h"

#include <gtest/gtest.h>

#include "sched/fcfs.h"
#include "workload/mpeg.h"
#include "workload/trace.h"

namespace csfc {
namespace {

ArrayConfig BaseConfig() {
  ArrayConfig c;
  c.disk_sim.metrics.dims = 1;
  c.disk_sim.metrics.levels = 8;
  return c;
}

std::vector<Request> StreamTrace(uint32_t users, double duration_ms,
                                 double read_fraction = 1.0) {
  MpegWorkloadConfig mc;
  mc.seed = 3;
  mc.num_users = users;
  mc.duration_ms = duration_ms;
  mc.read_fraction = read_fraction;
  mc.user_phase_spread_ms = mc.PeriodMs() / 2;
  auto gen = MpegStreamGenerator::Create(mc);
  EXPECT_TRUE(gen.ok());
  return DrainGenerator(**gen);
}

TEST(ArraySimulatorTest, CreateValidation) {
  ArrayConfig c = BaseConfig();
  c.num_disks = 2;
  EXPECT_FALSE(ArraySimulator::Create(c).ok());
  c = BaseConfig();
  c.disk_sim.disk.rpm = 0;
  EXPECT_FALSE(ArraySimulator::Create(c).ok());
  EXPECT_TRUE(ArraySimulator::Create(BaseConfig()).ok());
}

TEST(ArraySimulatorTest, ReadsServeEveryRequestExactlyOnce) {
  auto sim = ArraySimulator::Create(BaseConfig());
  ASSERT_TRUE(sim.ok());
  const auto trace = StreamTrace(10, 3000, /*read_fraction=*/1.0);
  TraceReplayGenerator gen(trace);
  auto result =
      sim->Run(gen, [] { return std::make_unique<FcfsScheduler>(); });
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->per_disk.size(), 5u);
  const RunMetrics agg = result->Aggregate();
  EXPECT_EQ(agg.completions, trace.size());
}

TEST(ArraySimulatorTest, WritesAddParityRequests) {
  auto sim = ArraySimulator::Create(BaseConfig());
  ASSERT_TRUE(sim.ok());
  const auto trace = StreamTrace(10, 3000, /*read_fraction=*/0.0);
  TraceReplayGenerator gen(trace);
  auto result =
      sim->Run(gen, [] { return std::make_unique<FcfsScheduler>(); });
  ASSERT_TRUE(result.ok());
  // Every write touches the data disk plus the parity disk.
  EXPECT_EQ(result->Aggregate().completions, 2 * trace.size());
}

TEST(ArraySimulatorTest, LoadSpreadsAcrossMembers) {
  auto sim = ArraySimulator::Create(BaseConfig());
  ASSERT_TRUE(sim.ok());
  const auto trace = StreamTrace(20, 10000);
  TraceReplayGenerator gen(trace);
  auto result =
      sim->Run(gen, [] { return std::make_unique<FcfsScheduler>(); });
  ASSERT_TRUE(result.ok());
  const double expected =
      static_cast<double>(trace.size()) / 5.0;
  for (const RunMetrics& m : result->per_disk) {
    EXPECT_GT(static_cast<double>(m.completions), expected * 0.5);
    EXPECT_LT(static_cast<double>(m.completions), expected * 1.5);
  }
}

TEST(ArraySimulatorTest, NullFactoryFails) {
  auto sim = ArraySimulator::Create(BaseConfig());
  ASSERT_TRUE(sim.ok());
  TraceReplayGenerator gen(StreamTrace(5, 1000));
  auto result = sim->Run(gen, []() -> SchedulerPtr { return nullptr; });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(ArrayRunResultTest, AggregateSumsAndMerges) {
  ArrayRunResult r;
  RunMetrics a;
  a.completions = 10;
  a.deadline_misses = 2;
  a.deadline_total = 10;
  a.inversions_per_dim = {5, 7};
  a.total_seek_ms = 100;
  a.response_ms.Add(10.0);
  a.makespan = 500;
  RunMetrics b;
  b.completions = 20;
  b.deadline_misses = 1;
  b.deadline_total = 20;
  b.inversions_per_dim = {1, 2};
  b.total_seek_ms = 50;
  b.response_ms.Add(30.0);
  b.makespan = 700;
  r.per_disk = {a, b};
  const RunMetrics agg = r.Aggregate();
  EXPECT_EQ(agg.completions, 30u);
  EXPECT_EQ(agg.deadline_misses, 3u);
  EXPECT_EQ(agg.inversions_per_dim, (std::vector<uint64_t>{6, 9}));
  EXPECT_DOUBLE_EQ(agg.total_seek_ms, 150.0);
  EXPECT_EQ(agg.response_ms.count(), 2u);
  EXPECT_DOUBLE_EQ(agg.response_ms.mean(), 20.0);
  EXPECT_EQ(agg.makespan, 700);
}

}  // namespace
}  // namespace csfc
