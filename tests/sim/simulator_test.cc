#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "sched/edf.h"
#include "sched/fcfs.h"
#include "sched/sstf.h"
#include "workload/trace.h"

namespace csfc {
namespace {

Request Req(RequestId id, SimTime arrival, Cylinder cyl,
            SimTime deadline = kNoDeadline, uint64_t bytes = 64 * 1024) {
  Request r;
  r.id = id;
  r.arrival = arrival;
  r.cylinder = cyl;
  r.deadline = deadline;
  r.bytes = bytes;
  return r;
}

DiskServerSimulator MakeSim(SimulatorConfig c = SimulatorConfig()) {
  auto s = DiskServerSimulator::Create(c);
  EXPECT_TRUE(s.ok()) << s.status().ToString();
  return *s;
}

TEST(SimulatorConfigTest, Validation) {
  SimulatorConfig c;
  c.disk.rpm = 0;
  EXPECT_FALSE(DiskServerSimulator::Create(c).ok());
  c = SimulatorConfig();
  c.metrics.dims = 13;
  EXPECT_FALSE(DiskServerSimulator::Create(c).ok());
  EXPECT_TRUE(DiskServerSimulator::Create(SimulatorConfig()).ok());
}

TEST(SimulatorTest, EmptyWorkloadFinishesCleanly) {
  DiskServerSimulator sim = MakeSim();
  TraceReplayGenerator gen({});
  FcfsScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  EXPECT_EQ(m.arrivals, 0u);
  EXPECT_EQ(m.completions, 0u);
}

TEST(SimulatorTest, SingleRequestTimingMatchesDiskModel) {
  DiskServerSimulator sim = MakeSim();
  TraceReplayGenerator gen({Req(0, MsToSim(5), 1000)});
  FcfsScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  EXPECT_EQ(m.completions, 1u);
  const double expected_service = sim.disk().SeekTimeMs(0, 1000) +
                                  sim.disk().AvgRotationalLatencyMs() +
                                  sim.disk().TransferTimeMs(1000, 64 * 1024);
  EXPECT_NEAR(SimToMs(m.makespan), 5.0 + expected_service, 0.01);
  EXPECT_NEAR(m.response_ms.mean(), expected_service, 0.01);
  EXPECT_NEAR(m.total_seek_ms, sim.disk().SeekTimeMs(0, 1000), 1e-9);
}

TEST(SimulatorTest, TransferOnlyModeIgnoresSeekAndLatency) {
  SimulatorConfig c;
  c.service_model = ServiceModel::kTransferOnly;
  DiskServerSimulator sim = MakeSim(c);
  TraceReplayGenerator gen({Req(0, 0, 1000)});
  FcfsScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  EXPECT_NEAR(SimToMs(m.makespan),
              sim.disk().TransferTimeMs(1000, 64 * 1024), 0.01);
  EXPECT_DOUBLE_EQ(m.total_seek_ms, 0.0);
}

TEST(SimulatorTest, BackToBackRequestsQueue) {
  SimulatorConfig c;
  c.service_model = ServiceModel::kTransferOnly;
  DiskServerSimulator sim = MakeSim(c);
  // Both arrive immediately; service is ~8.7 ms each at the outer zone.
  TraceReplayGenerator gen({Req(0, 0, 0), Req(1, 0, 0)});
  FcfsScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  EXPECT_EQ(m.completions, 2u);
  const double service = sim.disk().TransferTimeMs(0, 64 * 1024);
  EXPECT_NEAR(SimToMs(m.makespan), 2 * service, 0.01);
  // Second request waited for the first.
  EXPECT_NEAR(m.response_ms.max(), 2 * service, 0.01);
}

TEST(SimulatorTest, IdleGapsAdvanceTime) {
  SimulatorConfig c;
  c.service_model = ServiceModel::kTransferOnly;
  DiskServerSimulator sim = MakeSim(c);
  TraceReplayGenerator gen({Req(0, 0, 0), Req(1, MsToSim(500), 0)});
  FcfsScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  const double service = sim.disk().TransferTimeMs(0, 64 * 1024);
  EXPECT_NEAR(SimToMs(m.makespan), 500.0 + service, 0.01);
}

TEST(SimulatorTest, DeadlineMissesCounted) {
  SimulatorConfig c;
  c.metrics.dims = 0;
  DiskServerSimulator sim = MakeSim(c);
  // Request 0: deadline far in the future (met). Request 1: deadline
  // before it can possibly finish (missed).
  TraceReplayGenerator gen({Req(0, 0, 100, MsToSim(1000)),
                            Req(1, 0, 3800, MsToSim(1))});
  EdfScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  EXPECT_EQ(m.deadline_total, 2u);
  EXPECT_EQ(m.deadline_misses, 1u);
}

TEST(SimulatorTest, PerLevelMissAccounting) {
  SimulatorConfig c;
  c.metrics.dims = 1;
  c.metrics.levels = 8;
  DiskServerSimulator sim = MakeSim(c);
  Request met = Req(0, 0, 100, MsToSim(1000));
  met.priorities.push_back(2);
  Request missed = Req(1, 0, 3800, MsToSim(1));
  missed.priorities.push_back(5);
  TraceReplayGenerator gen({met, missed});
  EdfScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  EXPECT_EQ(m.totals_per_dim_level[0][2], 1u);
  EXPECT_EQ(m.misses_per_dim_level[0][2], 0u);
  EXPECT_EQ(m.totals_per_dim_level[0][5], 1u);
  EXPECT_EQ(m.misses_per_dim_level[0][5], 1u);
}

TEST(SimulatorTest, PriorityInversionCountedAtDispatch) {
  SimulatorConfig c;
  c.metrics.dims = 1;
  c.metrics.levels = 4;
  c.service_model = ServiceModel::kTransferOnly;
  DiskServerSimulator sim = MakeSim(c);
  // FCFS serves id 0 (level 3) while id 1 (level 0) and id 2 (level 1)
  // wait: 2 inversions at the first dispatch... but all three arrive at
  // t=0 and the first dispatch happens when only id 0 is enqueued. Use
  // arrival order: id 0 arrives first, the others while it is served.
  TraceReplayGenerator gen([&] {
    Request a = Req(0, 0, 0);
    a.priorities.push_back(3);
    Request b = Req(1, MsToSim(1), 0);
    b.priorities.push_back(0);
    Request d = Req(2, MsToSim(2), 0);
    d.priorities.push_back(1);
    return std::vector<Request>{a, b, d};
  }());
  FcfsScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  // Dispatch of id 1 (level 0): id 2 waits but is lower priority -> 0.
  // Dispatch of id 0 happened with an empty queue -> 0.
  // Wait: FCFS serves 0 first (alone), then 1 with {2} waiting (level 1 >
  // level 0, no inversion), then 2 alone. Total inversions = 0? No:
  // dispatch order is 0,1,2 but at the dispatch of... the first dispatch
  // happens at t=0 with nothing else queued. At id 1's dispatch, id 2
  // (level 1) waits; level 1 is NOT higher priority than level 0. So 0
  // inversions for this arrival pattern.
  EXPECT_EQ(m.total_inversions(), 0u);
}

TEST(SimulatorTest, PriorityInversionPositiveCase) {
  SimulatorConfig c;
  c.metrics.dims = 1;
  c.metrics.levels = 4;
  c.service_model = ServiceModel::kTransferOnly;
  DiskServerSimulator sim = MakeSim(c);
  // id 0 (level 0) served first; id 1 (level 3) dispatched while id 2
  // (level 0, higher priority) waits -> 1 inversion.
  Request a = Req(0, 0, 0);
  a.priorities.push_back(0);
  Request b = Req(1, MsToSim(1), 0);
  b.priorities.push_back(3);
  Request d = Req(2, MsToSim(2), 0);
  d.priorities.push_back(0);
  TraceReplayGenerator gen({a, b, d});
  FcfsScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  EXPECT_EQ(m.total_inversions(), 1u);
  EXPECT_EQ(m.inversions_per_dim[0], 1u);
}

TEST(SimulatorTest, MaxCompletionsStopsEarly) {
  SimulatorConfig c;
  c.service_model = ServiceModel::kTransferOnly;
  c.max_completions = 3;
  DiskServerSimulator sim = MakeSim(c);
  std::vector<Request> reqs;
  for (RequestId i = 0; i < 10; ++i) reqs.push_back(Req(i, 0, 0));
  TraceReplayGenerator gen(reqs);
  FcfsScheduler sched;
  const RunMetrics m = sim.Run(gen, sched);
  EXPECT_EQ(m.completions, 3u);
}

TEST(SimulatorTest, DeterministicWithoutLatencySeed) {
  SimulatorConfig c;
  DiskServerSimulator sim1 = MakeSim(c);
  DiskServerSimulator sim2 = MakeSim(c);
  std::vector<Request> reqs;
  for (RequestId i = 0; i < 50; ++i) {
    reqs.push_back(Req(i, static_cast<SimTime>(i) * MsToSim(10),
                       static_cast<Cylinder>((i * 677) % 3832)));
  }
  TraceReplayGenerator g1(reqs), g2(reqs);
  SstfScheduler s1, s2;
  const RunMetrics m1 = sim1.Run(g1, s1);
  const RunMetrics m2 = sim2.Run(g2, s2);
  EXPECT_EQ(m1.makespan, m2.makespan);
  EXPECT_DOUBLE_EQ(m1.total_seek_ms, m2.total_seek_ms);
}

TEST(SimulatorTest, LatencySeedChangesTimingButNotCounts) {
  SimulatorConfig c1, c2;
  c1.latency_seed = 1;
  c2.latency_seed = 2;
  DiskServerSimulator sim1 = MakeSim(c1);
  DiskServerSimulator sim2 = MakeSim(c2);
  std::vector<Request> reqs;
  for (RequestId i = 0; i < 20; ++i) {
    reqs.push_back(Req(i, 0, static_cast<Cylinder>(i * 100)));
  }
  TraceReplayGenerator g1(reqs), g2(reqs);
  FcfsScheduler s1, s2;
  const RunMetrics m1 = sim1.Run(g1, s1);
  const RunMetrics m2 = sim2.Run(g2, s2);
  EXPECT_EQ(m1.completions, m2.completions);
  EXPECT_NE(m1.makespan, m2.makespan);
}

TEST(SimulatorTest, SstfBeatsFcfsOnSeekTime) {
  std::vector<Request> reqs;
  uint64_t x = 99;
  for (RequestId i = 0; i < 300; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    reqs.push_back(Req(i, 0, static_cast<Cylinder>((x >> 33) % 3832)));
  }
  DiskServerSimulator sim1 = MakeSim();
  DiskServerSimulator sim2 = MakeSim();
  TraceReplayGenerator g1(reqs), g2(reqs);
  FcfsScheduler fcfs;
  SstfScheduler sstf;
  const RunMetrics mf = sim1.Run(g1, fcfs);
  const RunMetrics ms = sim2.Run(g2, sstf);
  EXPECT_LT(ms.total_seek_ms, mf.total_seek_ms * 0.5);
}

}  // namespace
}  // namespace csfc
