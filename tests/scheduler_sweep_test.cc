// Cross-policy integration sweep: every scheduler in the registry runs the
// same mixed real-time workload through the full simulator and must
// satisfy the universal contracts — serve everything exactly once, keep
// the queue accounting consistent, and produce sane metrics. This is the
// test that catches a policy that loses requests under some interleaving.

#include <gtest/gtest.h>

#include <string>

#include "exp/runner.h"
#include "sched/registry.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace csfc {
namespace {

DiskModel* SharedDisk() {
  static DiskModel model = *DiskModel::Create(DiskParams::PanaVissDisk());
  return &model;
}

std::vector<Request> SweepTrace() {
  WorkloadConfig wc;
  wc.seed = 31337;
  wc.count = 1500;
  wc.mean_interarrival_ms = 18.0;
  wc.burst_size = 5;
  wc.priority_dims = 2;
  wc.priority_levels = 8;
  wc.deadline_lo_ms = 100.0;
  wc.deadline_hi_ms = 900.0;
  wc.bytes_lo = 8 * 1024;
  wc.bytes_hi = 128 * 1024;
  wc.write_fraction = 0.3;
  auto gen = SyntheticGenerator::Create(wc);
  EXPECT_TRUE(gen.ok());
  return DrainGenerator(**gen);
}

class SchedulerSweepTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerSweepTest, ServesEveryRequestExactlyOnce) {
  SchedulerRegistryContext ctx;
  ctx.disk = SharedDisk();
  ctx.priority_levels = 8;
  auto factory = MakeSchedulerFactory(GetParam(), ctx);
  ASSERT_TRUE(factory.ok()) << factory.status().ToString();

  const auto trace = SweepTrace();
  SimulatorConfig sc;
  sc.metrics.dims = 2;
  sc.metrics.levels = 8;
  auto metrics = RunSchedulerOnTrace(sc, trace, *factory);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->arrivals, trace.size());
  EXPECT_EQ(metrics->completions, trace.size());
  EXPECT_EQ(metrics->response_ms.count(), trace.size());
  EXPECT_GT(metrics->response_ms.mean(), 0.0);
  EXPECT_GE(metrics->makespan, trace.back().arrival);
  EXPECT_LE(metrics->deadline_misses, metrics->deadline_total);
  EXPECT_EQ(metrics->deadline_total, trace.size());
}

TEST_P(SchedulerSweepTest, DeterministicAcrossRuns) {
  SchedulerRegistryContext ctx;
  ctx.disk = SharedDisk();
  ctx.priority_levels = 8;
  auto factory = MakeSchedulerFactory(GetParam(), ctx);
  ASSERT_TRUE(factory.ok());
  const auto trace = SweepTrace();
  SimulatorConfig sc;
  sc.metrics.dims = 2;
  sc.metrics.levels = 8;
  auto a = RunSchedulerOnTrace(sc, trace, *factory);
  auto b = RunSchedulerOnTrace(sc, trace, *factory);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->makespan, b->makespan);
  EXPECT_EQ(a->deadline_misses, b->deadline_misses);
  EXPECT_EQ(a->total_inversions(), b->total_inversions());
  EXPECT_DOUBLE_EQ(a->total_seek_ms, b->total_seek_ms);
}

std::string SweepName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerSweepTest,
    ::testing::Values("fcfs", "sstf", "scan", "look", "cscan", "clook", "edf",
                      "scan-edf", "fd-scan", "scan-rt", "ssedo", "ssedv",
                      "multi-queue", "bucket", "dds", "sfc-dds", "sfc-bucket",
                      "csfc"),
    SweepName);

}  // namespace
}  // namespace csfc
