#include "stats/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sched/fcfs.h"

namespace csfc {
namespace {

Request Req(std::initializer_list<PriorityLevel> pris,
            SimTime deadline = kNoDeadline) {
  Request r;
  for (PriorityLevel p : pris) r.priorities.push_back(p);
  r.deadline = deadline;
  return r;
}

TEST(RunMetricsTest, TotalInversionsSumsDims) {
  RunMetrics m;
  m.inversions_per_dim = {3, 5, 2};
  EXPECT_EQ(m.total_inversions(), 10u);
}

TEST(RunMetricsTest, InversionStddev) {
  RunMetrics m;
  m.inversions_per_dim = {2, 4, 6};  // mean 4, var 8/3
  EXPECT_NEAR(m.inversion_stddev(), std::sqrt(8.0 / 3.0), 1e-9);
  m.inversions_per_dim = {5, 5, 5};
  EXPECT_DOUBLE_EQ(m.inversion_stddev(), 0.0);
  m.inversions_per_dim.clear();
  EXPECT_DOUBLE_EQ(m.inversion_stddev(), 0.0);
}

TEST(RunMetricsTest, MinDimInversions) {
  RunMetrics m;
  m.inversions_per_dim = {9, 3, 7};
  EXPECT_EQ(m.min_dim_inversions(), 3u);
}

TEST(RunMetricsTest, WeightedLossCostLinearWeights) {
  RunMetrics m;
  // 4 levels; weights 11, 11+(10/3)*-1... linear from 11 to 1:
  // w = {11, 11-10/3, 11-20/3, 1}.
  m.misses_per_dim_level = {{1, 0, 2, 4}};
  m.totals_per_dim_level = {{2, 5, 4, 4}};
  const double expected = 11.0 * 0.5 + (11.0 - 10.0 / 3.0) * 0.0 +
                          (11.0 - 20.0 / 3.0) * 0.5 + 1.0 * 1.0;
  EXPECT_NEAR(m.WeightedLossCost(0, 11.0, 1.0), expected, 1e-9);
}

TEST(RunMetricsTest, WeightedLossCostSkipsEmptyLevels) {
  RunMetrics m;
  m.misses_per_dim_level = {{0, 0}};
  m.totals_per_dim_level = {{0, 0}};
  EXPECT_DOUBLE_EQ(m.WeightedLossCost(), 0.0);
}

TEST(RunMetricsTest, WeightedLossCostOutOfRangeDim) {
  RunMetrics m;
  EXPECT_DOUBLE_EQ(m.WeightedLossCost(3), 0.0);
}

TEST(MetricsCollectorTest, ArrivalAndCompletionCounts) {
  MetricsCollector c(MetricsConfig{.dims = 1, .levels = 8});
  const Request r = Req({2}, MsToSim(100));
  c.OnArrival(r);
  c.OnCompletion(r, MsToSim(50), 1.5, 10.0);
  const RunMetrics& m = c.metrics();
  EXPECT_EQ(m.arrivals, 1u);
  EXPECT_EQ(m.completions, 1u);
  EXPECT_DOUBLE_EQ(m.total_seek_ms, 1.5);
  EXPECT_DOUBLE_EQ(m.total_service_ms, 10.0);
  EXPECT_EQ(m.deadline_total, 1u);
  EXPECT_EQ(m.deadline_misses, 0u);
}

TEST(MetricsCollectorTest, LateCompletionIsMiss) {
  MetricsCollector c(MetricsConfig{.dims = 1, .levels = 8});
  const Request r = Req({6}, MsToSim(100));
  c.OnCompletion(r, MsToSim(150), 0, 0);
  EXPECT_EQ(c.metrics().deadline_misses, 1u);
  EXPECT_EQ(c.metrics().misses_per_dim_level[0][6], 1u);
}

TEST(MetricsCollectorTest, ExactlyOnTimeIsNotAMiss) {
  MetricsCollector c(MetricsConfig{.dims = 0, .levels = 1});
  Request r;
  r.deadline = MsToSim(100);
  c.OnCompletion(r, MsToSim(100), 0, 0);
  EXPECT_EQ(c.metrics().deadline_misses, 0u);
}

TEST(MetricsCollectorTest, RelaxedDeadlinesNotTracked) {
  MetricsCollector c(MetricsConfig{.dims = 0, .levels = 1});
  Request r;  // kNoDeadline
  c.OnCompletion(r, MsToSim(5000), 0, 0);
  EXPECT_EQ(c.metrics().deadline_total, 0u);
}

TEST(MetricsCollectorTest, InversionsAgainstWaitingQueue) {
  MetricsCollector c(MetricsConfig{.dims = 2, .levels = 8});
  FcfsScheduler sched;
  DispatchContext ctx;
  sched.Enqueue(Req({0, 5}), ctx);  // higher on dim 0
  sched.Enqueue(Req({7, 1}), ctx);  // higher on dim 1
  const Request dispatched = Req({3, 3});
  c.OnDispatch(dispatched, sched);
  EXPECT_EQ(c.metrics().inversions_per_dim[0], 1u);
  EXPECT_EQ(c.metrics().inversions_per_dim[1], 1u);
}

TEST(MetricsCollectorTest, EqualLevelsAreNotInversions) {
  MetricsCollector c(MetricsConfig{.dims = 1, .levels = 8});
  FcfsScheduler sched;
  DispatchContext ctx;
  sched.Enqueue(Req({3}), ctx);
  c.OnDispatch(Req({3}), sched);
  EXPECT_EQ(c.metrics().total_inversions(), 0u);
}

TEST(MetricsCollectorTest, ResponseTimeTracked) {
  MetricsCollector c(MetricsConfig{.dims = 0, .levels = 1});
  Request r;
  r.arrival = MsToSim(10);
  c.OnCompletion(r, MsToSim(35), 0, 0);
  EXPECT_DOUBLE_EQ(c.metrics().response_ms.mean(), 25.0);
  EXPECT_EQ(c.metrics().makespan, MsToSim(35));
}

TEST(MetricsCollectorTest, LevelsAboveRangeClamp) {
  MetricsCollector c(MetricsConfig{.dims = 1, .levels = 4});
  const Request r = Req({9}, MsToSim(10));
  c.OnCompletion(r, MsToSim(50), 0, 0);
  EXPECT_EQ(c.metrics().misses_per_dim_level[0][3], 1u);
}

TEST(MetricsCollectorTest, PerLevelResponseTracked) {
  MetricsCollector c(MetricsConfig{.dims = 1, .levels = 4});
  Request hi = Req({0});
  hi.arrival = 0;
  Request lo = Req({3});
  lo.arrival = 0;
  c.OnCompletion(hi, MsToSim(10), 0, 0);
  c.OnCompletion(lo, MsToSim(400), 0, 0);
  c.OnCompletion(lo, MsToSim(100), 0, 0);
  ASSERT_EQ(c.metrics().response_per_level.size(), 4u);
  EXPECT_EQ(c.metrics().response_per_level[0].count(), 1u);
  EXPECT_DOUBLE_EQ(c.metrics().response_per_level[0].mean(), 10.0);
  EXPECT_EQ(c.metrics().response_per_level[3].count(), 2u);
  EXPECT_DOUBLE_EQ(c.metrics().response_per_level[3].max(), 400.0);
  EXPECT_EQ(c.metrics().response_per_level[1].count(), 0u);
}

TEST(MetricsCollectorTest, NoLevelsNoPerLevelStats) {
  MetricsCollector c(MetricsConfig{.dims = 0, .levels = 8});
  Request r;
  c.OnCompletion(r, MsToSim(5), 0, 0);
  EXPECT_TRUE(c.metrics().response_per_level.empty());
}

TEST(MetricsCollectorTest, MeanSeek) {
  MetricsCollector c(MetricsConfig{.dims = 0, .levels = 1});
  Request r;
  c.OnCompletion(r, 1, 4.0, 5.0);
  c.OnCompletion(r, 2, 6.0, 7.0);
  EXPECT_DOUBLE_EQ(c.metrics().mean_seek_ms(), 5.0);
}

}  // namespace
}  // namespace csfc
