#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace csfc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng r(0);
  // xoshiro with all-zero state would emit zeros forever; splitmix
  // expansion must prevent that.
  bool any_nonzero = false;
  for (int i = 0; i < 10; ++i) any_nonzero |= r.Next() != 0;
  EXPECT_TRUE(any_nonzero);
}

TEST(RngTest, UniformRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.Uniform(17), 17u);
}

TEST(RngTest, UniformCoversAllValues) {
  Rng r(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng r(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = r.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeDegenerate) {
  Rng r(9);
  EXPECT_EQ(r.UniformRange(5, 5), 5);
  EXPECT_EQ(r.UniformRange(5, 4), 5);  // inverted collapses to lo
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRange) {
  Rng r(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.UniformDouble(10.0, 20.0);
    EXPECT_GE(v, 10.0);
    EXPECT_LT(v, 20.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 15.0, 0.2);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng r(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(25.0);
  EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng r(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.Exponential(1.0), 0.0);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng r(19);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = r.Normal(8.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 8.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliEdges) {
  Rng r(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng r(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfDistribution zipf(100, 0.8);
  Rng rng(33);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(rng), 100u);
}

TEST(ZipfTest, LowValuesAreHot) {
  ZipfDistribution zipf(1000, 0.8);
  Rng rng(35);
  uint64_t low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) low += zipf.Sample(rng) < 100;
  // Under theta=0.8, the first 10% of values draw far more than 10% of
  // the mass (analytically ~ (100/1000)^(1-0.8) = 63%).
  EXPECT_GT(static_cast<double>(low) / n, 0.5);
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  ZipfDistribution mild(1000, 0.5);
  ZipfDistribution hot(1000, 0.95);
  Rng r1(37), r2(37);
  uint64_t mild_zero = 0, hot_zero = 0;
  for (int i = 0; i < 50000; ++i) {
    mild_zero += mild.Sample(r1) == 0;
    hot_zero += hot.Sample(r2) == 0;
  }
  EXPECT_GT(hot_zero, mild_zero * 2);
}

TEST(ZipfTest, DegenerateSingleValue) {
  ZipfDistribution zipf(1, 0.8);
  Rng rng(39);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == UINT64_MAX);
  Rng r(1);
  EXPECT_NE(r(), r());
}

}  // namespace
}  // namespace csfc
