// Concurrency stress for the parallel experiment runner, written to give
// ThreadSanitizer real interleavings to chew on (CI's tsan job runs the
// whole suite; this file is its main course). Everything here must also
// hold under the thread-safety annotations of common/mutex.h:
//
//   * RunParallel with one tracing sink per point — the supported
//     no-sharing setup — stays race-free and bit-identical to serial.
//   * A single obs::LockedSink / JsonlSink shared by every point — the
//     locked fan-in — loses no events.
//   * ThreadPool construction/drain/teardown churn under load.
//   * The parallel-determinism pin: ComparePolicies(num_threads>1) twice
//     produces bit-identical RunMetrics.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/presets.h"
#include "exp/runner.h"
#include "obs/export.h"
#include "obs/locked_sink.h"
#include "obs/recorder.h"
#include "sched/edf.h"
#include "sched/fcfs.h"
#include "sched/registry.h"
#include "workload/generator.h"

namespace csfc {
namespace {

/// Cascaded construction through the registry — the one sanctioned
/// construction path (tests of the class itself stay direct).
SchedulerFactory CascadedViaRegistry(const CascadedConfig& config) {
  SchedulerRegistryContext ctx;
  ctx.cascaded = config;
  auto factory = MakeSchedulerFactory("csfc", ctx);
  EXPECT_TRUE(factory.ok()) << factory.status().ToString();
  return std::move(*factory);
}

std::vector<Request> StressTrace(uint64_t seed, uint32_t count = 600) {
  WorkloadConfig wc;
  wc.count = count;
  wc.seed = seed;
  wc.priority_dims = 2;
  wc.priority_levels = 8;
  auto gen = SyntheticGenerator::Create(wc);
  EXPECT_TRUE(gen.ok());
  return DrainGenerator(**gen);
}

SimulatorConfig StressSimConfig() {
  SimulatorConfig sc;
  sc.metrics.dims = 2;
  sc.metrics.levels = 8;
  return sc;
}

// A trio of policies with different code paths: trivial queue (fcfs),
// deadline heap (edf), and the full cascaded pipeline (characterize +
// dispatcher, the code the shadow oracle guards).
std::vector<RunPoint> StressPoints(const TracePtr& trace, size_t copies) {
  const SimulatorConfig sc = StressSimConfig();
  const CascadedConfig cfg =
      PresetFull("hilbert", 2, 3, 1.0, 3, 3832, 0.05, 700.0);
  std::vector<RunPoint> points;
  for (size_t c = 0; c < copies; ++c) {
    points.push_back(
        {sc, trace, [] { return std::make_unique<FcfsScheduler>(); }});
    points.push_back(
        {sc, trace, [] { return std::make_unique<EdfScheduler>(); }});
    points.push_back({sc, trace, CascadedViaRegistry(cfg)});
  }
  return points;
}

void ExpectBitIdentical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.inversions_per_dim, b.inversions_per_dim);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.deadline_total, b.deadline_total);
  // Exact float equality on purpose: parallelism must only reassign which
  // core runs a point, never perturb its arithmetic.
  EXPECT_EQ(a.total_seek_ms, b.total_seek_ms);
  EXPECT_EQ(a.total_service_ms, b.total_service_ms);
  EXPECT_EQ(a.response_ms.mean(), b.response_ms.mean());
  EXPECT_EQ(a.makespan, b.makespan);
}

// --- per-point sinks under maximum thread pressure --------------------------

TEST(ParallelStressTest, PerPointTracingSinksSeeEveryEventRaceFree) {
  const TracePtr trace = ShareTrace(StressTrace(101));
  std::vector<RunPoint> points = StressPoints(trace, 8);  // 24 points

  // Serial reference with its own recorders.
  std::vector<RunPoint> serial_points = points;
  std::vector<obs::TraceRecorder> serial_recs(serial_points.size());
  for (size_t i = 0; i < serial_points.size(); ++i) {
    serial_points[i].sim_config.trace_sink = &serial_recs[i];
  }
  auto serial = RunParallel(serial_points, 1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  // Oversubscribed parallel run: more workers than cores is the point.
  std::vector<obs::TraceRecorder> recs(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    points[i].sim_config.trace_sink = &recs[i];
  }
  auto parallel = RunParallel(points, 8);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(parallel->size(), serial->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    ExpectBitIdentical((*serial)[i], (*parallel)[i]);
    EXPECT_EQ(recs[i].total(), serial_recs[i].total()) << "point " << i;
    EXPECT_GT(recs[i].total(), 0u) << "point " << i;
  }
}

// --- one sink shared by every point (the locked fan-in) ---------------------

TEST(ParallelStressTest, SharedLockedSinkLosesNoEvents) {
  const TracePtr trace = ShareTrace(StressTrace(102));
  std::vector<RunPoint> points = StressPoints(trace, 6);  // 18 points

  // Per-point totals from a serial reference run.
  std::vector<RunPoint> serial_points = points;
  std::vector<obs::TraceRecorder> serial_recs(serial_points.size());
  for (size_t i = 0; i < serial_points.size(); ++i) {
    serial_points[i].sim_config.trace_sink = &serial_recs[i];
  }
  ASSERT_TRUE(RunParallel(serial_points, 1).ok());
  uint64_t expected = 0;
  for (const auto& r : serial_recs) expected += r.total();

  // One ring buffer, every point writing through the locked adapter.
  obs::TraceRecorder merged(size_t{1} << 20);
  obs::LockedSink shared(merged);
  for (RunPoint& p : points) p.sim_config.trace_sink = &shared;
  auto parallel = RunParallel(points, 8);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  EXPECT_EQ(shared.forwarded(), expected);
  EXPECT_EQ(merged.total(), expected);
}

TEST(ParallelStressTest, SharedJsonlSinkKeepsLinesWhole) {
  const TracePtr trace = ShareTrace(StressTrace(103, 300));
  std::vector<RunPoint> points = StressPoints(trace, 4);  // 12 points

  obs::StringWriter out;
  obs::JsonlSink sink(out);  // internally locked; shared across points
  for (RunPoint& p : points) p.sim_config.trace_sink = &sink;
  auto parallel = RunParallel(points, 8);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ASSERT_TRUE(sink.status().ok()) << sink.status().ToString();

  // Interleaving across points is arbitrary, but every line must be one
  // complete JSON object: count lines and brace pairs, not ordering.
  const std::string& text = out.str();
  uint64_t lines = 0;
  size_t pos = 0;
  while ((pos = text.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, sink.events_written());
  EXPECT_GT(lines, 0u);
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    ASSERT_GT(end, start);
    EXPECT_EQ(text[start], '{');
    EXPECT_EQ(text[end - 1], '}');
    start = end + 1;
  }
}

// --- ThreadPool churn -------------------------------------------------------

TEST(ParallelStressTest, ThreadPoolSurvivesConstructionChurnUnderLoad) {
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    }
    if (round % 2 == 0) pool.Wait();  // odd rounds drain in the destructor
  }
  EXPECT_EQ(sum.load(), 20u * 64u);
}

TEST(ParallelStressTest, NestedParallelForFromPoolTasks) {
  // RunParallel points never nest pools, but nothing forbids a caller
  // doing it; the queue discipline must hold when a task spins up its own
  // pool (sibling pools, not re-entrancy into the same pool).
  std::atomic<uint64_t> leaves{0};
  ParallelFor(8, 4, [&leaves](size_t) {
    ParallelFor(16, 2,
                [&leaves](size_t) { leaves.fetch_add(1); });
  });
  EXPECT_EQ(leaves.load(), 8u * 16u);
}

// --- progress / early-abort (RunProgress atomics) ---------------------------

TEST(ParallelStressTest, ProgressCountersReachTotalAndStayMonotonic) {
  const TracePtr trace = ShareTrace(StressTrace(105, 200));
  std::vector<RunPoint> points = StressPoints(trace, 8);  // 24 points

  RunProgress progress;
  // Concurrent readers poll the counters the whole time the sweep runs —
  // the shared-mutable-aggregate path ROADMAP wanted hammered. Each
  // asserts monotonicity and the started >= completed invariant.
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  std::atomic<bool> violated{false};
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      size_t last_started = 0;
      size_t last_completed = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t c = progress.completed.load(std::memory_order_relaxed);
        const size_t s = progress.started.load(std::memory_order_relaxed);
        // `completed` read first: started is incremented before completed,
        // so a consistent snapshot can never show completed > started.
        if (s < last_started || c < last_completed || c > s) {
          violated.store(true, std::memory_order_relaxed);
        }
        last_started = s;
        last_completed = c;
      }
    });
  }

  auto result = RunParallel(points, 8, &progress);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(progress.started.load(), points.size());
  EXPECT_EQ(progress.completed.load(), points.size());

  // The progress plumbing must not perturb results: identical to a run
  // without it.
  auto plain = RunParallel(points, 1);
  ASSERT_TRUE(plain.ok());
  ASSERT_EQ(result->size(), plain->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    ExpectBitIdentical((*result)[i], (*plain)[i]);
  }
}

TEST(ParallelStressTest, AbortBeforeStartSkipsEveryPoint) {
  const TracePtr trace = ShareTrace(StressTrace(106, 100));
  std::vector<RunPoint> points = StressPoints(trace, 4);

  RunProgress progress;
  progress.RequestAbort();
  auto result = RunParallel(points, 4, &progress);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(progress.started.load(), 0u);
  EXPECT_EQ(progress.completed.load(), 0u);
}

TEST(ParallelStressTest, MidSweepAbortStopsCleanlyOrFinishes) {
  const TracePtr trace = ShareTrace(StressTrace(107, 200));
  std::vector<RunPoint> points = StressPoints(trace, 16);  // 48 points

  RunProgress progress;
  // A watcher aborts once a few points have completed. The race between
  // the abort and the last point is inherent; the contract is only that
  // the outcome is one of two clean states, with coherent counters.
  std::thread watcher([&] {
    while (progress.completed.load(std::memory_order_relaxed) < 3) {
      std::this_thread::yield();
    }
    progress.RequestAbort();
  });
  auto result = RunParallel(points, 8, &progress);
  watcher.join();

  const size_t started = progress.started.load();
  const size_t completed = progress.completed.load();
  EXPECT_EQ(started, completed);  // no point left mid-flight after return
  EXPECT_LE(completed, points.size());
  EXPECT_GE(completed, 3u);
  if (result.ok()) {
    // The watcher lost the race: every point finished before the abort
    // landed. Legal, but then the result must be complete.
    EXPECT_EQ(completed, points.size());
    EXPECT_EQ(result->size(), points.size());
  } else {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
}

TEST(ParallelStressTest, AbortNeverMasksAPointError) {
  const TracePtr trace = ShareTrace(StressTrace(108, 100));
  std::vector<RunPoint> points = StressPoints(trace, 2);
  points[1].trace = nullptr;  // guaranteed InvalidArgument from point 1

  RunProgress progress;
  auto clean = RunParallel(points, 2, &progress);
  ASSERT_FALSE(clean.ok());
  EXPECT_EQ(clean.status().code(), StatusCode::kInvalidArgument);

  // Same failing sweep with an abort racing in: the point error still
  // wins over Cancelled (lowest-index deterministic reporting).
  RunProgress aborted;
  std::thread watcher([&] {
    while (aborted.completed.load(std::memory_order_relaxed) < 1) {
      std::this_thread::yield();
    }
    aborted.RequestAbort();
  });
  auto result = RunParallel(points, 2, &aborted);
  watcher.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// --- calendar-backend rekey under thread pressure ---------------------------

TEST(ParallelStressTest, CalendarBackendRekeyBatchesAreRaceFreeAndDeterministic) {
  // Every point runs the full cascaded pipeline on the calendar queue
  // backend with swap-time re-characterization on, so RekeyWaitingBatch —
  // the calendar's bucket-sweep + migration path — executes continuously
  // on every worker thread. The dispatchers are per-point (no sharing by
  // design); TSan must see no races in the slab/storage handling, and an
  // 8-thread sweep must stay bit-identical to the serial reference.
  const TracePtr trace = ShareTrace(StressTrace(109));
  const SimulatorConfig sc = StressSimConfig();
  const CascadedConfig cal = WithQueueBackend(
      PresetFull("hilbert", 2, 3, 1.0, 3, 3832, 0.05, 700.0),
      QueueBackend::kCalendar);
  std::vector<RunPoint> points;
  for (size_t c = 0; c < 12; ++c) {
    points.push_back({sc, trace, CascadedViaRegistry(cal)});
  }

  auto serial = RunParallel(points, 1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = RunParallel(points, 8);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(parallel->size(), serial->size());
  for (size_t i = 0; i < serial->size(); ++i) {
    ExpectBitIdentical((*serial)[i], (*parallel)[i]);
  }
}

// --- the parallel-determinism pin -------------------------------------------

TEST(ParallelStressTest, ComparePoliciesTwiceIsBitIdentical) {
  const auto trace = StressTrace(104);
  const SimulatorConfig sc = StressSimConfig();
  const CascadedConfig cfg =
      PresetFull("hilbert", 2, 3, 1.0, 3, 3832, 0.05, 700.0);
  std::vector<SchedulerEntry> entries;
  entries.push_back(
      {"fcfs", [] { return std::make_unique<FcfsScheduler>(); }});
  entries.push_back({"edf", [] { return std::make_unique<EdfScheduler>(); }});
  entries.push_back({"csfc", CascadedViaRegistry(cfg)});

  auto first = ComparePolicies(sc, trace, entries, 4);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = ComparePolicies(sc, trace, entries, 4);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  ASSERT_EQ(first->size(), entries.size());
  ASSERT_EQ(second->size(), entries.size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].label, (*second)[i].label);
    ExpectBitIdentical((*first)[i].metrics, (*second)[i].metrics);
  }
}

}  // namespace
}  // namespace csfc
