#include "common/small_vector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

namespace csfc {
namespace {

using Vec4 = SmallVector<uint32_t, 4>;

TEST(SmallVectorTest, StartsEmpty) {
  Vec4 v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(SmallVectorTest, PushWithinInlineCapacity) {
  Vec4 v;
  for (uint32_t i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_EQ(v.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], i * 10);
}

TEST(SmallVectorTest, SpillsToHeap) {
  Vec4 v;
  for (uint32_t i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 20u);
  for (uint32_t i = 0; i < 20; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVectorTest, InitializerList) {
  Vec4 v{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[5], 6u);
}

TEST(SmallVectorTest, CountValueConstructor) {
  Vec4 v(7, 9u);
  EXPECT_EQ(v.size(), 7u);
  for (size_t i = 0; i < 7; ++i) EXPECT_EQ(v[i], 9u);
}

TEST(SmallVectorTest, PopBackAcrossBoundary) {
  Vec4 v{1, 2, 3, 4, 5, 6};
  v.pop_back();
  v.pop_back();  // crosses back into inline storage
  v.pop_back();
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.back(), 3u);
}

TEST(SmallVectorTest, ResizeGrowsWithFill) {
  Vec4 v{1};
  v.resize(6, 42u);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 1u);
  for (size_t i = 1; i < 6; ++i) EXPECT_EQ(v[i], 42u);
}

TEST(SmallVectorTest, ResizeShrinks) {
  Vec4 v{1, 2, 3, 4, 5, 6};
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.back(), 2u);
}

TEST(SmallVectorTest, CopyPreservesContents) {
  Vec4 a{1, 2, 3, 4, 5, 6};
  Vec4 b(a);
  EXPECT_EQ(a, b);
  b.push_back(7);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.size(), 6u);  // copy is deep
}

TEST(SmallVectorTest, AssignmentReplacesContents) {
  Vec4 a{1, 2};
  Vec4 b{9, 9, 9, 9, 9, 9};
  a = b;
  EXPECT_EQ(a, b);
}

TEST(SmallVectorTest, SelfAssignmentIsNoop) {
  Vec4 a{1, 2, 3};
  a = *&a;
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], 3u);
}

TEST(SmallVectorTest, IterationCoversInlineAndHeap) {
  Vec4 v;
  for (uint32_t i = 0; i < 10; ++i) v.push_back(i);
  uint32_t sum = 0;
  for (uint32_t x : v) sum += x;
  EXPECT_EQ(sum, 45u);
}

TEST(SmallVectorTest, MutableIteration) {
  Vec4 v{1, 2, 3, 4, 5};
  for (auto it = v.begin(); it != v.end(); ++it) *it += 1;
  EXPECT_EQ(v[0], 2u);
  EXPECT_EQ(v[4], 6u);
}

TEST(SmallVectorTest, ClearResets) {
  Vec4 v{1, 2, 3, 4, 5, 6};
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(1);
  EXPECT_EQ(v[0], 1u);
}

TEST(SmallVectorTest, EqualityChecksSizeFirst) {
  Vec4 a{1, 2, 3};
  Vec4 b{1, 2};
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace csfc
