#include "common/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace csfc {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesCombinedStream) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    a.Add(v);
    all.Add(v);
  }
  for (int i = 50; i < 120; ++i) {
    const double v = std::cos(i) * 3 + 1;
    b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat a_copy = a;
  a.Merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // merging into empty adopts
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(HistogramTest, BucketsValues) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(5.5);
  h.Add(5.6);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(5), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(100.0);
  h.Add(10.0);  // hi edge clamps into last bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 2u);
}

TEST(HistogramTest, BucketLoEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 18.0);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, QuantileOnEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
}

TEST(LogHistogramTest, EmptyQuantilesAndMoments) {
  LogHistogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
}

TEST(LogHistogramTest, SingleSampleEveryQuantileIsTheSample) {
  LogHistogram h;
  h.Add(100);
  // The landing bucket is [100, 102), but no quantile may exceed the
  // observed maximum, so every q collapses to the sample itself.
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 100.0) << "q=" << q;
  }
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 100.0);
}

TEST(LogHistogramTest, LinearHeadIsExact) {
  // Values below kSubBuckets map 1:1 to unit-wide buckets, so small
  // latencies suffer no quantization at all.
  LogHistogram h;
  for (int64_t v = 0; v < 32; ++v) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 31.0);  // clamped to max, not 32
  // The median of 0..31 lands inside bucket 15 or 16 (width 1).
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 15.0);
  EXPECT_LE(p50, 17.0);
}

TEST(LogHistogramTest, NegativeAndOversizedSamplesClamp) {
  LogHistogram h;
  h.Add(-17);  // clamps to 0
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);

  LogHistogram big;
  const int64_t huge = int64_t{1} << 62;  // far beyond the covered ranges
  big.Add(huge);
  EXPECT_EQ(big.max(), huge);  // max() still reports the raw sample
  // Quantiles saturate at the top bucket's upper edge (2^36 with the
  // fixed kRanges x kSubBuckets geometry), not at the raw sample.
  EXPECT_DOUBLE_EQ(big.Quantile(1.0), std::ldexp(1.0, 36));
}

TEST(LogHistogramTest, CrossBucketInterpolation) {
  // Two spikes decades apart: quantiles below/above the split must land
  // in the correct spike, and interpolation stays within each landing
  // bucket (bounded relative error of 1/kSubBuckets).
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.Add(10);
  for (int i = 0; i < 100; ++i) h.Add(1000);
  EXPECT_NEAR(h.Quantile(0.25), 10.0, 1.0);    // bucket [10, 11)
  EXPECT_NEAR(h.Quantile(0.75), 1000.0, 16.0); // bucket width 16 there
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 505.0);
}

TEST(LogHistogramTest, QuantileRelativeErrorIsBounded) {
  // The HDR layout promises <= 1/kSubBuckets relative error at every
  // magnitude; verify across five decades with a deterministic stream.
  LogHistogram h;
  std::vector<int64_t> vals;
  int64_t v = 1;
  while (v < 2'000'000) {
    vals.push_back(v);
    h.Add(v);
    v += 1 + v / 7;  // roughly geometric spacing
  }
  std::sort(vals.begin(), vals.end());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    const size_t rank = std::min(
        vals.size() - 1,
        static_cast<size_t>(q * static_cast<double>(vals.size())));
    const double truth = static_cast<double>(vals[rank]);
    const double est = h.Quantile(q);
    EXPECT_NEAR(est, truth, truth / 16.0 + 2.0)
        << "q=" << q << " truth=" << truth << " est=" << est;
  }
}

TEST(LogHistogramTest, MergeDisjointMatchesCombinedStream) {
  LogHistogram a, b, all;
  for (int i = 0; i < 50; ++i) {
    a.Add(3 + i % 5);
    all.Add(3 + i % 5);
  }
  for (int i = 0; i < 70; ++i) {
    b.Add(4096 + 37 * i);
    all.Add(4096 + 37 * i);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), all.total());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  // Fixed geometry: merged buckets are exactly the combined stream's.
  for (double q : {0.1, 0.4, 0.5, 0.9, 0.999}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), all.Quantile(q)) << "q=" << q;
  }
}

TEST(LogHistogramTest, MergeOverlappingAndWithEmpty) {
  LogHistogram a, b, all;
  for (int i = 0; i < 40; ++i) {
    a.Add(100 + i);
    all.Add(100 + i);
  }
  for (int i = 0; i < 40; ++i) {
    b.Add(110 + i);  // overlaps a's range
    all.Add(110 + i);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), all.total());
  EXPECT_DOUBLE_EQ(a.sum(), all.sum());
  for (double q : {0.25, 0.5, 0.75}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), all.Quantile(q)) << "q=" << q;
  }
  // Merging an empty histogram is a no-op in both directions.
  LogHistogram empty;
  const double p50_before = a.Quantile(0.5);
  a.Merge(empty);
  EXPECT_DOUBLE_EQ(a.Quantile(0.5), p50_before);
  empty.Merge(a);
  EXPECT_EQ(empty.total(), a.total());
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), a.Quantile(0.5));
}

TEST(LogHistogramTest, ResetReturnsToEmptyBehavior) {
  LogHistogram h;
  for (int i = 0; i < 10; ++i) h.Add(1 << i);
  ASSERT_GT(h.total(), 0u);
  h.Reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 0.0);
}

TEST(HistogramTest, AsciiRenderingHasOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0);
  h.Add(1.2);
  h.Add(3.0);
  const std::string art = h.ToAscii(10);
  int lines = 0;
  for (char c : art) lines += c == '\n';
  EXPECT_EQ(lines, 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace csfc
