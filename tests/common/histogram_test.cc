#include "common/histogram.h"

#include <gtest/gtest.h>

#include <cmath>

namespace csfc {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, MergeMatchesCombinedStream) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    a.Add(v);
    all.Add(v);
  }
  for (int i = 50; i < 120; ++i) {
    const double v = std::cos(i) * 3 + 1;
    b.Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatTest, MergeWithEmptySides) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat a_copy = a;
  a.Merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a_copy);  // merging into empty adopts
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(HistogramTest, BucketsValues) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(5.5);
  h.Add(5.6);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(5), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-5.0);
  h.Add(100.0);
  h.Add(10.0);  // hi edge clamps into last bucket
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(9), 2u);
}

TEST(HistogramTest, BucketLoEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 18.0);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, QuantileOnEmptyReturnsLo) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
}

TEST(HistogramTest, AsciiRenderingHasOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0);
  h.Add(1.2);
  h.Add(3.0);
  const std::string art = h.ToAscii(10);
  int lines = 0;
  for (char c : art) lines += c == '\n';
  EXPECT_EQ(lines, 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace csfc
