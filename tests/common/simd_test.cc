// Tests for the portable SIMD wrapper: dispatch plumbing (parse /
// detect / override / resolve) and op-level bit-identity of the
// Sse2Backend against ScalarBackend, which is the reference semantics.
// The ops with non-obvious implementations get targeted edge cases:
//
//   * U64ToF64 — the split-halves exponent trick must be correctly
//     rounded on EVERY u64, matching static_cast<double>(uint64_t).
//   * CmpGtI64 — SSE2 has no PCMPGTQ; the emulation decides on high
//     dwords and borrows from the low half on ties.
//   * MulHiU32 / CmpLtU32 — PMULUDQ even/odd recombination and the
//     sign-bias trick.
//   * MinF64 — MINPD returns the SECOND operand on equal; the fused
//     kernel relies on this matching std::min's argument order.
//
// Avx2Backend is exercised end-to-end by tests/core/simd_characterize_
// test.cc (this TU compiles at baseline flags, so the AVX2 type is not
// visible here); its U64ToF64/CmpLtU32/MulHiU32 share the detail::
// helpers and constants validated below.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/simd.h"

namespace csfc::simd {
namespace {

// Save/restore the process-wide override so these tests cannot poison a
// CI leg that pins CSFC_SIMD (the env value is latched into the override
// on first use; tests must put back whatever they found).
class OverrideGuard {
 public:
  OverrideGuard() : saved_(OverrideMode()) {}
  ~OverrideGuard() { SetOverride(saved_); }

 private:
  Mode saved_;
};

TEST(SimdDispatchTest, ParseModeAcceptsTheFourSpellings) {
  Mode m = Mode::kAvx2;
  EXPECT_TRUE(ParseMode("auto", &m));
  EXPECT_EQ(m, Mode::kAuto);
  EXPECT_TRUE(ParseMode("scalar", &m));
  EXPECT_EQ(m, Mode::kScalar);
  EXPECT_TRUE(ParseMode("sse2", &m));
  EXPECT_EQ(m, Mode::kSse2);
  EXPECT_TRUE(ParseMode("avx2", &m));
  EXPECT_EQ(m, Mode::kAvx2);
}

TEST(SimdDispatchTest, ParseModeRejectsAndLeavesOutputAlone) {
  Mode m = Mode::kSse2;
  EXPECT_FALSE(ParseMode("", &m));
  EXPECT_FALSE(ParseMode("AVX2", &m));  // case-sensitive, like other flags
  EXPECT_FALSE(ParseMode("avx512", &m));
  EXPECT_FALSE(ParseMode("auto ", &m));
  EXPECT_EQ(m, Mode::kSse2);
}

TEST(SimdDispatchTest, NamesRoundTrip) {
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kSse2), "sse2");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
  EXPECT_STREQ(ModeName(Mode::kAuto), "auto");
  for (const Mode m : {Mode::kScalar, Mode::kSse2, Mode::kAvx2}) {
    Mode parsed = Mode::kAuto;
    EXPECT_TRUE(ParseMode(ModeName(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
}

TEST(SimdDispatchTest, DetectLevelIsStableAndAtLeastBaseline) {
  const Level first = DetectLevel();
  EXPECT_EQ(first, DetectLevel());  // cached probe
#if CSFC_SIMD_X86
  // SSE2 is part of the x86-64 baseline ABI.
  EXPECT_GE(static_cast<int>(first), static_cast<int>(Level::kSse2));
#else
  EXPECT_EQ(first, Level::kScalar);
#endif
}

TEST(SimdDispatchTest, ResolveClampsToDetectedLevel) {
  OverrideGuard guard;
  SetOverride(Mode::kAuto);
  const Level detected = DetectLevel();
  EXPECT_EQ(Resolve(Mode::kAuto), detected);
  EXPECT_EQ(Resolve(Mode::kScalar), Level::kScalar);
  EXPECT_LE(static_cast<int>(Resolve(Mode::kAvx2)),
            static_cast<int>(detected));
  EXPECT_LE(static_cast<int>(Resolve(Mode::kSse2)),
            static_cast<int>(Level::kSse2));
}

TEST(SimdDispatchTest, OverrideWinsOverPerCallRequest) {
  OverrideGuard guard;
  SetOverride(Mode::kScalar);
  EXPECT_EQ(OverrideMode(), Mode::kScalar);
  // A forced-scalar override beats any request, including auto.
  EXPECT_EQ(Resolve(Mode::kAuto), Level::kScalar);
  EXPECT_EQ(Resolve(Mode::kAvx2), Level::kScalar);
  EXPECT_EQ(Resolve(Mode::kSse2), Level::kScalar);
  // Back to auto: per-call requests are honored again.
  SetOverride(Mode::kAuto);
  EXPECT_EQ(Resolve(Mode::kScalar), Level::kScalar);
  EXPECT_EQ(Resolve(Mode::kAuto), DetectLevel());
}

// ---------------------------------------------------------------------------
// Op-level identity. Each Check* helper runs one op over a vector of
// inputs through backend B, lane-block by lane-block, and compares each
// lane against the scalar reference expression with EXPECT_EQ (exact
// bits for integers; for doubles EXPECT_EQ is exact equality, which is
// the contract).
// ---------------------------------------------------------------------------

std::vector<uint64_t> InterestingU64s() {
  std::vector<uint64_t> xs = {
      0,
      1,
      2,
      3,
      0x7FFFFFFFull,
      0x80000000ull,
      0xFFFFFFFFull,
      0x100000000ull,
      (1ull << 52) - 1,
      1ull << 52,
      (1ull << 52) + 1,
      (1ull << 53) - 1,
      1ull << 53,
      (1ull << 53) + 1,  // not representable: rounds to even
      (1ull << 53) + 3,
      (1ull << 62) + 12345,
      1ull << 63,
      (1ull << 63) + 1,
      std::numeric_limits<uint64_t>::max() - 1,
      std::numeric_limits<uint64_t>::max(),
  };
  Rng rng(2026);
  for (int i = 0; i < 400; ++i) {
    // Mix full-range values with small-magnitude and near-power-of-two
    // ones, where rounding boundaries live.
    const uint64_t raw = rng.Next();
    xs.push_back(raw);
    xs.push_back(raw >> rng.Uniform(64));
    xs.push_back((1ull << rng.Uniform(64)) + rng.Uniform(5) - 2);
  }
  return xs;
}

template <typename B>
void CheckU64ToF64() {
  const std::vector<uint64_t> xs = InterestingU64s();
  constexpr int kW = B::kWidth;
  for (size_t i = 0; i + kW <= xs.size(); i += kW) {
    int64_t in[kW];
    for (int l = 0; l < kW; ++l) in[l] = static_cast<int64_t>(xs[i + l]);
    double out[kW];
    B::StoreF64(out, B::U64ToF64(B::LoadI64(in)));
    for (int l = 0; l < kW; ++l) {
      EXPECT_EQ(out[l], static_cast<double>(xs[i + l]))
          << B::Name() << " lane " << l << " input " << xs[i + l];
    }
  }
}

template <typename B>
void CheckCmpGtI64() {
  std::vector<std::pair<int64_t, int64_t>> pairs = {
      {0, 0},
      {1, 0},
      {0, 1},
      {-1, 0},
      {0, -1},
      {-1, -2},
      {std::numeric_limits<int64_t>::max(), std::numeric_limits<int64_t>::min()},
      {std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::max()},
      {std::numeric_limits<int64_t>::min(), std::numeric_limits<int64_t>::min()},
      // Equal high dwords — the emulation must decide on the low-half
      // borrow, treating the low dwords as UNSIGNED.
      {0x1234567800000001ll, 0x1234567800000000ll},
      {0x1234567800000000ll, 0x1234567800000001ll},
      {0x12345678FFFFFFFFll, 0x1234567800000000ll},
      {0x1234567800000000ll, 0x12345678FFFFFFFFll},
      {static_cast<int64_t>(0xFFFFFFFF00000001ull),
       static_cast<int64_t>(0xFFFFFFFF00000000ull)},
      {static_cast<int64_t>(0x80000000FFFFFFFFull),
       static_cast<int64_t>(0x8000000000000000ull)},
  };
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const int64_t a = static_cast<int64_t>(rng.Next());
    // Bias toward nearby values and shared high halves.
    switch (rng.Uniform(3)) {
      case 0:
        pairs.emplace_back(a, static_cast<int64_t>(rng.Next()));
        break;
      case 1:
        pairs.emplace_back(a, a + rng.UniformRange(-2, 2));
        break;
      default:
        pairs.emplace_back(
            a, static_cast<int64_t>(
                   (static_cast<uint64_t>(a) & 0xFFFFFFFF00000000ull) |
                   (rng.Next() & 0xFFFFFFFFull)));
        break;
    }
  }
  constexpr int kW = B::kWidth;
  for (size_t i = 0; i + kW <= pairs.size(); i += kW) {
    int64_t a[kW], b[kW], out[kW];
    for (int l = 0; l < kW; ++l) {
      a[l] = pairs[i + l].first;
      b[l] = pairs[i + l].second;
    }
    B::StoreI64(out, B::CmpGtI64(B::LoadI64(a), B::LoadI64(b)));
    for (int l = 0; l < kW; ++l) {
      EXPECT_EQ(out[l], a[l] > b[l] ? -1 : 0)
          << B::Name() << " a=" << a[l] << " b=" << b[l];
    }
  }
}

// The wrapper has no StoreI32 (the kernels never store i32 lanes), so
// the tests read them back themselves: ScalarBackend exposes .v
// directly; the x86 backends keep i32 lanes in a __m128i whose low
// kWidth dwords are the payload.
template <typename B>
void StoreI32Lanes(typename B::I32 x, int32_t* out) {
  if constexpr (requires { x.v[0]; }) {
    for (int l = 0; l < B::kWidth; ++l) out[l] = x.v[l];
  }
#if CSFC_SIMD_X86
  else {
    alignas(16) int32_t buf[4];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(buf), x);
    for (int l = 0; l < B::kWidth; ++l) out[l] = buf[l];
  }
#endif
}

template <typename B>
void CheckU32Ops() {
  std::vector<std::pair<uint32_t, uint32_t>> pairs = {
      {0, 0},
      {1, 0},
      {0, 1},
      {0x7FFFFFFFu, 0x80000000u},
      {0x80000000u, 0x7FFFFFFFu},
      {0x80000000u, 0x80000000u},
      {0xFFFFFFFFu, 0xFFFFFFFFu},
      {0xFFFFFFFFu, 1},
      {0x10000u, 0x10000u},
      {0xDEADBEEFu, 0xCAFEBABEu},
  };
  Rng rng(99);
  for (int i = 0; i < 600; ++i) {
    pairs.emplace_back(static_cast<uint32_t>(rng.Next()),
                       static_cast<uint32_t>(rng.Next()));
  }
  constexpr int kW = B::kWidth;
  for (size_t i = 0; i + kW <= pairs.size(); i += kW) {
    int32_t a[kW], b[kW], hi[kW], lt[kW], mn[kW], ad[kW], sb[kW];
    for (int l = 0; l < kW; ++l) {
      a[l] = static_cast<int32_t>(pairs[i + l].first);
      b[l] = static_cast<int32_t>(pairs[i + l].second);
    }
    const typename B::I32 va = B::LoadI32(a);
    const typename B::I32 vb = B::LoadI32(b);
    StoreI32Lanes<B>(B::MulHiU32(va, vb), hi);
    StoreI32Lanes<B>(B::CmpLtU32(va, vb), lt);
    StoreI32Lanes<B>(B::MinI32(va, vb), mn);
    StoreI32Lanes<B>(B::AddI32(va, vb), ad);
    StoreI32Lanes<B>(B::SubI32(va, vb), sb);
    for (int l = 0; l < kW; ++l) {
      const uint32_t ua = pairs[i + l].first;
      const uint32_t ub = pairs[i + l].second;
      EXPECT_EQ(static_cast<uint32_t>(hi[l]),
                static_cast<uint32_t>(
                    (static_cast<uint64_t>(ua) * static_cast<uint64_t>(ub)) >>
                    32))
          << B::Name() << " MulHiU32 " << ua << "*" << ub;
      EXPECT_EQ(lt[l], ua < ub ? -1 : 0)
          << B::Name() << " CmpLtU32 " << ua << "<" << ub;
      EXPECT_EQ(mn[l], std::min(a[l], b[l]))
          << B::Name() << " MinI32 " << a[l] << "," << b[l];
      EXPECT_EQ(static_cast<uint32_t>(ad[l]), ua + ub);
      EXPECT_EQ(static_cast<uint32_t>(sb[l]), ua - ub);
    }
  }
}

template <typename B>
void CheckF64Ops() {
  Rng rng(4242);
  constexpr int kW = B::kWidth;
  for (int iter = 0; iter < 200; ++iter) {
    double a[kW], b[kW];
    for (int l = 0; l < kW; ++l) {
      a[l] = rng.UniformDouble(-1e6, 1e6);
      b[l] = rng.UniformDouble(-1e6, 1e6);
      if (rng.Uniform(4) == 0) b[l] = a[l];  // force the equal case
    }
    double add[kW], sub[kW], mul[kW], div[kW], mn[kW];
    const typename B::F64 va = B::LoadF64(a);
    const typename B::F64 vb = B::LoadF64(b);
    B::StoreF64(add, B::AddF64(va, vb));
    B::StoreF64(sub, B::SubF64(va, vb));
    B::StoreF64(mul, B::MulF64(va, vb));
    B::StoreF64(div, B::DivF64(va, vb));
    B::StoreF64(mn, B::MinF64(va, vb));
    for (int l = 0; l < kW; ++l) {
      EXPECT_EQ(add[l], a[l] + b[l]);
      EXPECT_EQ(sub[l], a[l] - b[l]);
      EXPECT_EQ(mul[l], a[l] * b[l]);
      EXPECT_EQ(div[l], a[l] / b[l]);
      EXPECT_EQ(mn[l], a[l] < b[l] ? a[l] : b[l]) << B::Name() << " MinF64";
    }
  }
}

// MINPD's tie rule (second operand on equal) is observable with signed
// zeros: MinF64(+0, -0) must be -0 and MinF64(-0, +0) must be +0.
template <typename B>
void CheckMinF64SignedZeroTie() {
  constexpr int kW = B::kWidth;
  double a[kW], b[kW], out[kW];
  for (int l = 0; l < kW; ++l) {
    a[l] = (l % 2 == 0) ? +0.0 : -0.0;
    b[l] = (l % 2 == 0) ? -0.0 : +0.0;
  }
  B::StoreF64(out, B::MinF64(B::LoadF64(a), B::LoadF64(b)));
  for (int l = 0; l < kW; ++l) {
    EXPECT_EQ(std::bit_cast<int64_t>(out[l]), std::bit_cast<int64_t>(b[l]))
        << B::Name() << " must return the second operand on equal";
  }
}

template <typename B>
void CheckConversionsAndGather() {
  Rng rng(321);
  constexpr int kW = B::kWidth;
  std::vector<double> table(257);
  for (double& d : table) d = rng.NextDouble();
  for (int iter = 0; iter < 200; ++iter) {
    int32_t idx[kW];
    double x[kW];
    for (int l = 0; l < kW; ++l) {
      idx[l] = static_cast<int32_t>(rng.Uniform(table.size()));
      x[l] = rng.UniformDouble(-65536.0, 65536.0);
    }
    double gathered[kW], widened[kW];
    int32_t trunced[kW];
    B::StoreF64(gathered, B::GatherF64(table.data(), B::LoadI32(idx)));
    B::StoreF64(widened, B::I32ToF64(B::LoadI32(idx)));
    StoreI32Lanes<B>(B::F64ToI32Trunc(B::LoadF64(x)), trunced);
    for (int l = 0; l < kW; ++l) {
      EXPECT_EQ(gathered[l], table[static_cast<size_t>(idx[l])]);
      EXPECT_EQ(widened[l], static_cast<double>(idx[l]));
      EXPECT_EQ(trunced[l], static_cast<int32_t>(x[l]));
    }
  }
}

template <typename B>
void CheckI64BitOps() {
  Rng rng(555);
  constexpr int kW = B::kWidth;
  for (int iter = 0; iter < 200; ++iter) {
    int64_t a[kW], b[kW];
    for (int l = 0; l < kW; ++l) {
      a[l] = static_cast<int64_t>(rng.Next());
      b[l] = static_cast<int64_t>(rng.Next());
    }
    const uint32_t sh = static_cast<uint32_t>(rng.Uniform(64));
    int64_t andv[kW], orv[kW], xorv[kW], shl[kW], shr[kW], sub[kW];
    const typename B::I64 va = B::LoadI64(a);
    const typename B::I64 vb = B::LoadI64(b);
    B::StoreI64(andv, B::AndI64(va, vb));
    B::StoreI64(orv, B::OrI64(va, vb));
    B::StoreI64(xorv, B::XorI64(va, vb));
    B::StoreI64(shl, B::ShlI64(va, sh));
    B::StoreI64(shr, B::ShrI64(va, sh));
    B::StoreI64(sub, B::SubI64(va, vb));
    for (int l = 0; l < kW; ++l) {
      const uint64_t ua = static_cast<uint64_t>(a[l]);
      EXPECT_EQ(andv[l], a[l] & b[l]);
      EXPECT_EQ(orv[l], a[l] | b[l]);
      EXPECT_EQ(xorv[l], a[l] ^ b[l]);
      EXPECT_EQ(static_cast<uint64_t>(shl[l]), ua << sh);
      EXPECT_EQ(static_cast<uint64_t>(shr[l]), ua >> sh);
      EXPECT_EQ(static_cast<uint64_t>(sub[l]),
                ua - static_cast<uint64_t>(b[l]));
    }
  }
}

template <typename B>
void CheckAndMaskF64() {
  Rng rng(777);
  constexpr int kW = B::kWidth;
  for (int iter = 0; iter < 100; ++iter) {
    double x[kW];
    int64_t mask[kW];
    for (int l = 0; l < kW; ++l) {
      x[l] = rng.UniformDouble(-10.0, 10.0);
      mask[l] = rng.Uniform(2) == 0 ? -1 : 0;
    }
    double out[kW];
    B::StoreF64(out, B::AndMaskF64(B::LoadF64(x), B::LoadI64(mask)));
    for (int l = 0; l < kW; ++l) {
      const double want = mask[l] == -1 ? x[l] : +0.0;
      EXPECT_EQ(std::bit_cast<int64_t>(out[l]), std::bit_cast<int64_t>(want))
          << B::Name() << " lane " << l;
    }
  }
}

template <typename B>
void CheckBackend() {
  CheckU64ToF64<B>();
  CheckCmpGtI64<B>();
  CheckU32Ops<B>();
  CheckF64Ops<B>();
  CheckMinF64SignedZeroTie<B>();
  CheckConversionsAndGather<B>();
  CheckI64BitOps<B>();
}

TEST(SimdOpsTest, ScalarBackendMatchesReferenceExpressions) {
  CheckBackend<ScalarBackend>();
  CheckAndMaskF64<ScalarBackend>();
}

#if CSFC_SIMD_X86
TEST(SimdOpsTest, Sse2BackendMatchesReferenceExpressions) {
  CheckBackend<Sse2Backend>();
  CheckAndMaskF64<Sse2Backend>();
}
#endif

}  // namespace
}  // namespace csfc::simd
