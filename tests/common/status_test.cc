#include "common/status.h"

#include <gtest/gtest.h>

namespace csfc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotSupported("no").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("ae").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("io").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("in").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  const Status s = Status::NotFound("missing curve");
  EXPECT_EQ(s.ToString(), "NotFound: missing curve");
}

TEST(StatusTest, ToStringWithEmptyMessageIsJustCodeName) {
  const Status s(StatusCode::kIoError, "");
  EXPECT_EQ(s.ToString(), "IoError");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusCodeNameTest, CoversEveryCode) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("abc"));
  r.value() += "d";
  EXPECT_EQ(*r, "abcd");
  EXPECT_EQ(r->size(), 4u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  std::unique_ptr<int> p = std::move(r).value();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace csfc
