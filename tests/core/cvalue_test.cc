#include "core/cvalue.h"

#include <gtest/gtest.h>

#include "workload/request.h"

namespace csfc {
namespace {

TEST(NormalizeIndexTest, MapsIntoUnitInterval) {
  EXPECT_DOUBLE_EQ(NormalizeIndex(0, 16), 0.0);
  EXPECT_DOUBLE_EQ(NormalizeIndex(8, 16), 0.5);
  EXPECT_DOUBLE_EQ(NormalizeIndex(15, 16), 15.0 / 16.0);
}

TEST(NormalizeIndexTest, PreservesOrder) {
  const uint64_t cells = uint64_t{1} << 48;
  EXPECT_LT(NormalizeIndex(1234567, cells), NormalizeIndex(1234568, cells));
}

TEST(QuantizeUnitTest, EdgesAndClamping) {
  EXPECT_EQ(QuantizeUnit(-0.5, 16), 0u);
  EXPECT_EQ(QuantizeUnit(0.0, 16), 0u);
  EXPECT_EQ(QuantizeUnit(0.999, 16), 15u);
  EXPECT_EQ(QuantizeUnit(1.0, 16), 15u);
  EXPECT_EQ(QuantizeUnit(2.0, 16), 15u);
}

TEST(QuantizeUnitTest, UniformBuckets) {
  EXPECT_EQ(QuantizeUnit(0.24, 4), 0u);
  EXPECT_EQ(QuantizeUnit(0.26, 4), 1u);
  EXPECT_EQ(QuantizeUnit(0.51, 4), 2u);
  EXPECT_EQ(QuantizeUnit(0.76, 4), 3u);
}

TEST(QuantizeDeadlineTest, UrgentMapsToZero) {
  const SimTime horizon = MsToSim(1000);
  EXPECT_EQ(QuantizeDeadline(/*deadline=*/50, /*now=*/100, horizon, 16), 0u);
  EXPECT_EQ(QuantizeDeadline(100, 100, horizon, 16), 0u);
}

TEST(QuantizeDeadlineTest, RelaxedMapsToLastCell) {
  const SimTime horizon = MsToSim(1000);
  EXPECT_EQ(QuantizeDeadline(kNoDeadline, 0, horizon, 16), 15u);
}

TEST(QuantizeDeadlineTest, BeyondHorizonClampsToLastCell) {
  const SimTime horizon = MsToSim(1000);
  EXPECT_EQ(QuantizeDeadline(MsToSim(5000), 0, horizon, 16), 15u);
}

TEST(QuantizeDeadlineTest, ScalesLinearlyWithinHorizon) {
  const SimTime horizon = MsToSim(1600);
  // 400 ms remaining of a 1600 ms horizon = cell 4 of 16.
  EXPECT_EQ(QuantizeDeadline(MsToSim(500), MsToSim(100), horizon, 16), 4u);
  EXPECT_EQ(QuantizeDeadline(MsToSim(900), MsToSim(100), horizon, 16), 8u);
}

TEST(QuantizeDeadlineTest, MonotoneInDeadline) {
  const SimTime horizon = MsToSim(700);
  uint32_t prev = 0;
  for (SimTime dl = 0; dl < MsToSim(900); dl += MsToSim(10)) {
    const uint32_t cell = QuantizeDeadline(dl, 0, horizon, 32);
    EXPECT_GE(cell, prev);
    prev = cell;
  }
}

TEST(CScanDistanceTest, ForwardAndWrap) {
  EXPECT_EQ(CScanDistance(100, 100, 3832), 0u);
  EXPECT_EQ(CScanDistance(150, 100, 3832), 50u);
  EXPECT_EQ(CScanDistance(50, 100, 3832), 3832u - 50u);
  EXPECT_EQ(CScanDistance(0, 3831, 3832), 1u);
}

TEST(CScanDistanceTest, CoversFullRange) {
  for (Cylinder c = 0; c < 100; ++c) {
    const uint32_t d = CScanDistance(c, 50, 100);
    EXPECT_LT(d, 100u);
  }
}

TEST(TimeConversionTest, RoundTripsMilliseconds) {
  EXPECT_EQ(MsToSim(25.0), 25000);
  EXPECT_DOUBLE_EQ(SimToMs(25000), 25.0);
  EXPECT_EQ(MsToSim(0.5), 500);
}

}  // namespace
}  // namespace csfc
