// Calendar-queue backend correctness: the BucketedSlotHeap directly (run
// ordering, FIFO ties, bulk promotion, bucket growth) and the calendar
// Dispatcher against both the std::map ReferenceDispatcher and the flat
// Dispatcher on the same random traces. The adversarial cases target the
// calendar's structural edges — rekeys that land exactly on bucket
// boundaries, cursor resets when migration moves work behind the sweep,
// long empty-bucket stretches that exercise the two-level occupancy
// bitmap, and single-range pileups that force GrowBucket past the slab
// reserve and push DrainBelowInto onto its storage-swap path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/dispatcher.h"
#include "core/flat_queue.h"

namespace csfc {
namespace {

using Entry = BucketedSlotHeap::Entry;

bool Less(const Entry& a, const Entry& b) {
  return BucketedSlotHeap::Less(a, b);
}

// ---------------------------------------------------------------------------
// Direct BucketedSlotHeap unit tests.
// ---------------------------------------------------------------------------

TEST(BucketedSlotHeapTest, PopsInGlobalKeyOrder) {
  BucketedSlotHeap q;
  q.Configure(64);
  Rng rng(1);
  std::vector<Entry> expect;
  for (uint32_t i = 0; i < 5000; ++i) {
    const CValue v = static_cast<double>(rng() % 4096) / 4096.0;
    q.Push(QueueKey{v, i}, i);
    expect.push_back(Entry{v, i, i});
  }
  std::sort(expect.begin(), expect.end(),
            [](const Entry& a, const Entry& b) { return Less(a, b); });
  for (const Entry& e : expect) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(q.MinValue(), e.v);
    const Entry got = q.PopMin();
    EXPECT_EQ(got.v, e.v);
    EXPECT_EQ(got.slot, e.slot);
  }
  EXPECT_TRUE(q.empty());
}

TEST(BucketedSlotHeapTest, EqualKeysPopFifo) {
  BucketedSlotHeap q;
  q.Configure(8);
  // Two distinct values, many ties each; ties must come out in push order.
  for (uint32_t i = 0; i < 100; ++i) {
    q.Push(QueueKey{i % 2 == 0 ? 0.25 : 0.75, i}, i);
  }
  uint32_t last_even = 0, last_odd = 0;
  for (int i = 0; i < 50; ++i) {
    const Entry e = q.PopMin();
    EXPECT_EQ(e.v, 0.25);
    if (i > 0) {
      EXPECT_GT(e.slot, last_even);
    }
    last_even = e.slot;
  }
  for (int i = 0; i < 50; ++i) {
    const Entry e = q.PopMin();
    EXPECT_EQ(e.v, 0.75);
    if (i > 0) {
      EXPECT_GT(e.slot, last_odd);
    }
    last_odd = e.slot;
  }
}

TEST(BucketedSlotHeapTest, SingleBucketPileupGrowsPastReserve) {
  // Every key lands in one bucket: the run must grow well past the
  // 16-entry slab reserve (heap-allocated storage path) and still pop in
  // (v, seq) order.
  BucketedSlotHeap q;
  q.Configure(1024);
  Rng rng(2);
  const double lo = 0.5;
  const double width = 1.0 / 1024.0;
  std::vector<Entry> expect;
  for (uint32_t i = 0; i < 2000; ++i) {
    const CValue v = lo + width * 0.9 * (static_cast<double>(rng() % 997) / 997.0);
    q.Push(QueueKey{v, i}, i);
    expect.push_back(Entry{v, i, i});
  }
  std::sort(expect.begin(), expect.end(),
            [](const Entry& a, const Entry& b) { return Less(a, b); });
  for (const Entry& e : expect) {
    const Entry got = q.PopMin();
    EXPECT_EQ(got.v, e.v);
    EXPECT_EQ(got.slot, e.slot);
  }
  EXPECT_TRUE(q.empty());
}

TEST(BucketedSlotHeapTest, EmptyBucketSkipsAcrossSummaryWords) {
  // Occupied buckets > 4096 apart force FindNonEmptyFrom through the
  // summary level of the occupancy bitmap, not just the word level.
  BucketedSlotHeap q;
  q.Configure(BucketedSlotHeap::kMaxBuckets);
  const std::vector<double> values = {0.0001, 0.37, 0.62, 0.9999};
  uint32_t seq = 0;
  for (double v : values) q.Push(QueueKey{v, seq++}, seq);
  for (double v : values) {
    EXPECT_EQ(q.MinValue(), v);
    EXPECT_EQ(q.PopMin().v, v);
  }
  EXPECT_TRUE(q.empty());
}

void ExpectDrainMatchesBruteForce(uint32_t buckets, uint64_t seed, size_t n,
                                  double threshold, bool pileup) {
  BucketedSlotHeap src, dst;
  src.Configure(buckets);
  dst.Configure(buckets);
  Rng rng(seed);
  std::vector<Entry> all;
  for (uint32_t i = 0; i < n; ++i) {
    // Pileup mode funnels everything into two buckets on either side of
    // the threshold so the drain's whole-bucket move sees an oversized
    // run and takes the storage-swap branch.
    const CValue v =
        pileup ? (i % 2 == 0 ? threshold / 2 : (1.0 + threshold) / 2)
               : static_cast<double>(rng() % 8192) / 8192.0;
    src.Push(QueueKey{v, i}, i);
    all.push_back(Entry{v, i, i});
  }
  // Drain a prefix first so the source cursor is mid-sweep, as it is at
  // the serve-promote call site.
  const size_t pre = n / 10;
  std::sort(all.begin(), all.end(),
            [](const Entry& a, const Entry& b) { return Less(a, b); });
  for (size_t i = 0; i < pre; ++i) {
    ASSERT_EQ(src.PopMin().slot, all[i].slot);
  }
  all.erase(all.begin(), all.begin() + static_cast<ptrdiff_t>(pre));

  const size_t moved = src.DrainBelowInto(threshold, dst);
  std::vector<Entry> below, above;
  for (const Entry& e : all) (e.v < threshold ? below : above).push_back(e);
  ASSERT_EQ(moved, below.size());
  ASSERT_EQ(dst.size(), below.size());
  ASSERT_EQ(src.size(), above.size());
  for (const Entry& e : below) {
    const Entry got = dst.PopMin();
    EXPECT_EQ(got.v, e.v);
    EXPECT_EQ(got.slot, e.slot);
  }
  for (const Entry& e : above) {
    const Entry got = src.PopMin();
    EXPECT_EQ(got.v, e.v);
    EXPECT_EQ(got.slot, e.slot);
  }
  EXPECT_TRUE(src.empty());
  EXPECT_TRUE(dst.empty());
}

TEST(BucketedSlotHeapTest, DrainBelowMatchesBruteForce) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    ExpectDrainMatchesBruteForce(256, seed, 3000, 0.3 + 0.1 * (double)seed,
                                 false);
  }
}

TEST(BucketedSlotHeapTest, DrainBelowBucketBoundaryThreshold) {
  // Threshold exactly on a bucket boundary: the boundary bucket's
  // partition must keep entries with v == threshold (promotion is strict
  // less-than).
  BucketedSlotHeap src, dst;
  src.Configure(16);
  dst.Configure(16);
  const double boundary = 4.0 / 16.0;
  uint32_t seq = 0;
  for (double v : {boundary - 0.01, boundary, boundary + 0.01}) {
    src.Push(QueueKey{v, seq++}, seq);
  }
  EXPECT_EQ(src.DrainBelowInto(boundary, dst), 1u);
  EXPECT_EQ(dst.size(), 1u);
  EXPECT_EQ(dst.PopMin().v, boundary - 0.01);
  EXPECT_EQ(src.PopMin().v, boundary);
  EXPECT_EQ(src.PopMin().v, boundary + 0.01);
}

TEST(BucketedSlotHeapTest, DrainBelowOversizedRunSwapsStorage) {
  ExpectDrainMatchesBruteForce(1024, 7, 4000, 0.75, /*pileup=*/true);
}

TEST(BucketedSlotHeapTest, RekeyMigratesAcrossBucketsAndResetsCursor) {
  BucketedSlotHeap q;
  q.Configure(128);
  for (uint32_t i = 0; i < 600; ++i) {
    q.Push(QueueKey{0.5 + static_cast<double>(i % 50) / 128.0, i}, i);
  }
  // Advance the sweep cursor past the low buckets.
  for (int i = 0; i < 100; ++i) q.PopMin();
  // Rekey every slot to a value below everything popped so far: the
  // cursor must reset behind itself or the new minimum would be skipped.
  std::vector<CValue> vals(q.size());
  size_t idx = 0;
  q.ForEachEntrySlot([&](uint32_t slot) {
    vals[idx++] = static_cast<double>(slot % 37) / 512.0;
  });
  q.AssignKeys(vals);
  CValue prev = -1.0;
  size_t count = 0;
  while (!q.empty()) {
    const Entry e = q.PopMin();
    EXPECT_GE(e.v, prev);
    EXPECT_LT(e.v, 37.0 / 512.0);
    prev = e.v;
    ++count;
  }
  EXPECT_EQ(count, 500u);
}

// ---------------------------------------------------------------------------
// Three-way dispatcher equivalence: calendar vs reference vs flat.
// ---------------------------------------------------------------------------

DispatcherConfig CalCfg(QueueDiscipline disc, double w, bool sp, bool er,
                        uint32_t buckets) {
  DispatcherConfig c;
  c.discipline = disc;
  c.window = w;
  c.serve_promote = sp;
  c.expand_reset = er;
  c.queue_backend = QueueBackend::kCalendar;
  c.calendar_buckets = buckets;
  return c;
}

void ExpectAgree(const Dispatcher& cal, const Dispatcher& flat,
                 const ReferenceDispatcher& ref) {
  ASSERT_EQ(cal.size(), ref.size());
  ASSERT_EQ(cal.NeedsSwapForPop(), ref.NeedsSwapForPop());
  ASSERT_EQ(cal.current_window(), ref.current_window());
  ASSERT_EQ(cal.preemptions(), ref.preemptions());
  ASSERT_EQ(cal.promotions(), ref.promotions());
  ASSERT_EQ(cal.swaps(), ref.swaps());
  ASSERT_EQ(flat.size(), ref.size());
  ASSERT_EQ(flat.promotions(), ref.promotions());
}

// Replays a random trace over all three implementations. value_of controls
// the arrival-key distribution so callers can aim at calendar edge cases;
// rekey_of must be pure (a function of its Rng only) because it is invoked
// once per dispatcher over the same requests.
template <typename ValueFn, typename RekeyFn>
void ReplayThreeWay(const DispatcherConfig& cal_cfg, uint64_t seed,
                    int num_ops, ValueFn&& value_of, RekeyFn&& rekey_of) {
  auto created_cal = Dispatcher::Create(cal_cfg);
  ASSERT_TRUE(created_cal.ok());
  Dispatcher cal = *std::move(created_cal);
  DispatcherConfig flat_cfg = cal_cfg;
  flat_cfg.queue_backend = QueueBackend::kFlat;
  auto created_flat = Dispatcher::Create(flat_cfg);
  ASSERT_TRUE(created_flat.ok());
  Dispatcher flat = *std::move(created_flat);
  ReferenceDispatcher ref(cal_cfg);

  Rng rng(seed);
  RequestId next_id = 0;
  for (int i = 0; i < num_ops; ++i) {
    const uint64_t action = rng() % 100;
    if (action < 55) {
      Request r;
      r.id = next_id++;
      const CValue v = value_of(rng);
      cal.Insert(v, r);
      flat.Insert(v, r);
      ref.Insert(v, r);
    } else if (action < 85) {
      const std::optional<Request> a = cal.Pop();
      const std::optional<Request> b = flat.Pop();
      const std::optional<Request> c = ref.Pop();
      ASSERT_EQ(a.has_value(), c.has_value());
      ASSERT_EQ(b.has_value(), c.has_value());
      if (a.has_value()) {
        ASSERT_EQ(a->id, c->id);
        ASSERT_EQ(b->id, c->id);
      }
    } else if (action < 93) {
      const uint64_t salt = rng();
      auto key = [salt, &rekey_of](const Request& r) {
        Rng h((r.id + 1) * 2654435761ULL ^ salt);
        return rekey_of(h);
      };
      cal.RekeyWaiting(key);
      flat.RekeyWaiting(key);
      ref.RekeyWaiting(key);
    } else {
      std::vector<RequestId> ca, fa, ra;
      cal.ForEach([&](const Request& r) { ca.push_back(r.id); });
      flat.ForEach([&](const Request& r) { fa.push_back(r.id); });
      ref.ForEach([&](const Request& r) { ra.push_back(r.id); });
      ASSERT_EQ(ca, ra);
      ASSERT_EQ(fa, ra);
    }
    ExpectAgree(cal, flat, ref);
  }
  while (true) {
    const std::optional<Request> a = cal.Pop();
    const std::optional<Request> b = flat.Pop();
    const std::optional<Request> c = ref.Pop();
    ASSERT_EQ(a.has_value(), c.has_value());
    ASSERT_EQ(b.has_value(), c.has_value());
    if (!a.has_value()) break;
    ASSERT_EQ(a->id, c->id);
    ASSERT_EQ(b->id, c->id);
  }
}

CValue UniformGrid(Rng& rng) {
  return static_cast<double>(rng() % 65536) / 65536.0;
}

// Pure value functions double as their own rekey distribution.
template <typename ValueFn>
void ReplayThreeWay(const DispatcherConfig& cal_cfg, uint64_t seed,
                    int num_ops, ValueFn&& value_of) {
  ReplayThreeWay(cal_cfg, seed, num_ops, value_of, value_of);
}

TEST(CalendarEquivalenceTest, AllDisciplines) {
  uint64_t seed = 100;
  for (QueueDiscipline disc :
       {QueueDiscipline::kNonPreemptive, QueueDiscipline::kFullyPreemptive,
        QueueDiscipline::kConditionallyPreemptive}) {
    for (bool sp : {false, true}) {
      ReplayThreeWay(CalCfg(disc, 0.05, sp, false, 256), seed++, 2500,
                     UniformGrid);
    }
  }
}

TEST(CalendarEquivalenceTest, ConditionalWithExpandReset) {
  ReplayThreeWay(
      CalCfg(QueueDiscipline::kConditionallyPreemptive, 0.02, true, true, 1024),
      7, 4000, UniformGrid);
}

TEST(CalendarEquivalenceTest, BucketBoundaryKeys) {
  // Keys pinned to exact bucket boundaries k / num_buckets (and one ulp to
  // either side): rekeys and promotions constantly cross bucket edges.
  const uint32_t buckets = 64;
  auto value_of = [buckets](Rng& rng) {
    const double edge =
        static_cast<double>(rng() % buckets) / static_cast<double>(buckets);
    switch (rng() % 3) {
      case 0:
        return edge;
      case 1:
        return std::nextafter(edge, 0.0);
      default:
        return std::nextafter(edge, 1.0);
    }
  };
  for (uint64_t seed = 30; seed < 34; ++seed) {
    ReplayThreeWay(
        CalCfg(QueueDiscipline::kConditionallyPreemptive, 0.05, true, false,
               buckets),
        seed, 3000, value_of);
  }
}

TEST(CalendarEquivalenceTest, SweepDirectionFlips) {
  // Alternating phases of ascending and descending arrival keys: the
  // cursor repeatedly sweeps forward, then a burst of low arrivals (or a
  // downward rekey) yanks it back.
  int phase = 0;
  auto value_of = [&phase](Rng& rng) {
    const double u = static_cast<double>(rng() % 4096) / 4096.0;
    ++phase;
    const bool ascending = (phase / 64) % 2 == 0;
    return ascending ? 0.5 + u / 2 : u / 2;
  };
  for (uint64_t seed = 40; seed < 44; ++seed) {
    // value_of is stateful, so rekeys use the pure uniform distribution.
    ReplayThreeWay(
        CalCfg(QueueDiscipline::kConditionallyPreemptive, 0.1, true, false,
               512),
        seed, 3000, value_of, UniformGrid);
  }
}

TEST(CalendarEquivalenceTest, SparseValuesSkipEmptyBuckets) {
  // Only a handful of populated buckets across the full 2^16-bucket
  // calendar: pops spend their time in FindNonEmptyFrom.
  auto value_of = [](Rng& rng) {
    static const double kSpots[] = {0.001, 0.25, 0.49, 0.73, 0.999};
    return kSpots[rng() % 5] + static_cast<double>(rng() % 16) / 1e6;
  };
  ReplayThreeWay(CalCfg(QueueDiscipline::kConditionallyPreemptive, 0.05, true,
                        false, BucketedSlotHeap::kMaxBuckets),
                 50, 3000, value_of);
}

TEST(CalendarEquivalenceTest, AdversarialSingleRangeGrowth) {
  // The entire workload inside one bucket's value range: every structure
  // the calendar has collapses to a single run that must grow far past the
  // slab reserve, and serve-promote's bulk drain hits the oversized-run
  // swap path.
  const uint32_t buckets = 128;
  auto value_of = [buckets](Rng& rng) {
    const double width = 1.0 / static_cast<double>(buckets);
    return 0.5 + width * 0.95 * (static_cast<double>(rng() % 8191) / 8191.0);
  };
  for (uint64_t seed = 60; seed < 63; ++seed) {
    ReplayThreeWay(
        CalCfg(QueueDiscipline::kConditionallyPreemptive, 0.001, true, false,
               buckets),
        seed, 4000, value_of);
  }
}

TEST(CalendarEquivalenceTest, BatchRekeyAgrees) {
  // Batch rekey through the span-based entry point (the path csfc uses at
  // swap time) on the calendar backend.
  auto cal_created = Dispatcher::Create(
      CalCfg(QueueDiscipline::kConditionallyPreemptive, 0.05, true, false,
             1024));
  ASSERT_TRUE(cal_created.ok());
  Dispatcher cal = *std::move(cal_created);
  ReferenceDispatcher ref(cal.config());

  Rng rng(77);
  RequestId next_id = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 50; ++i) {
      Request r;
      r.id = next_id++;
      const CValue v = UniformGrid(rng);
      cal.Insert(v, r);
      ref.Insert(v, r);
    }
    const uint64_t salt = rng();
    auto batch = [salt](std::span<const Request* const> reqs,
                        std::span<CValue> out) {
      for (size_t k = 0; k < reqs.size(); ++k) {
        const uint64_t h = (reqs[k]->id + salt) * 2654435761ULL;
        out[k] = static_cast<double>(h % 65536) / 65536.0;
      }
    };
    cal.RekeyWaitingBatch(batch);
    ref.RekeyWaitingBatch(batch);
    for (int i = 0; i < 30; ++i) {
      const std::optional<Request> a = cal.Pop();
      const std::optional<Request> b = ref.Pop();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a.has_value()) {
        ASSERT_EQ(a->id, b->id);
      }
    }
  }
}

}  // namespace
}  // namespace csfc
