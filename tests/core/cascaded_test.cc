#include "core/cascaded_scheduler.h"

#include <gtest/gtest.h>

#include "core/presets.h"

namespace csfc {
namespace {

Request Req(RequestId id, std::initializer_list<PriorityLevel> pris,
            SimTime deadline = kNoDeadline, Cylinder cyl = 0) {
  Request r;
  r.id = id;
  for (PriorityLevel p : pris) r.priorities.push_back(p);
  r.deadline = deadline;
  r.cylinder = cyl;
  return r;
}

TEST(CascadedSchedulerTest, CreateRejectsBadConfig) {
  CascadedConfig c;
  c.encapsulator.sfc1 = "bogus";
  EXPECT_FALSE(CascadedSfcScheduler::Create(c).ok());
  c = CascadedConfig();
  c.dispatcher.window = -1;
  EXPECT_FALSE(CascadedSfcScheduler::Create(c).ok());
}

TEST(CascadedSchedulerTest, NameEncodesConfiguration) {
  auto s = CascadedSfcScheduler::Create(
      PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0));
  ASSERT_TRUE(s.ok());
  const std::string name{(*s)->name()};
  EXPECT_NE(name.find("csfc["), std::string::npos);
  EXPECT_NE(name.find("hilbert"), std::string::npos);
  EXPECT_NE(name.find("R=3"), std::string::npos);
}

TEST(CascadedSchedulerTest, ServesByCharacterizationValue) {
  auto s = CascadedSfcScheduler::Create(
      PresetStage1Only("cscan", 2, 4, /*window=*/0.0));
  ASSERT_TRUE(s.ok());
  DispatchContext ctx;
  // cscan over (p0, p1): index = p0*16 + p1, so p0 dominates.
  (*s)->Enqueue(Req(1, {5, 0}), ctx);
  (*s)->Enqueue(Req(2, {1, 15}), ctx);
  (*s)->Enqueue(Req(3, {1, 2}), ctx);
  EXPECT_EQ((*s)->Dispatch(ctx)->id, 3u);
  EXPECT_EQ((*s)->Dispatch(ctx)->id, 2u);
  EXPECT_EQ((*s)->Dispatch(ctx)->id, 1u);
}

TEST(CascadedSchedulerTest, LastCvalueExposed) {
  auto s = CascadedSfcScheduler::Create(
      PresetStage1Only("cscan", 1, 4, /*window=*/0.0));
  ASSERT_TRUE(s.ok());
  DispatchContext ctx;
  (*s)->Enqueue(Req(1, {8}), ctx);
  EXPECT_DOUBLE_EQ((*s)->last_cvalue(), 0.5);
}

TEST(CascadedSchedulerTest, QueueSizeAndForEachTrackBothQueues) {
  auto s = CascadedSfcScheduler::Create(
      PresetStage1Only("hilbert", 2, 4, /*window=*/0.1));
  ASSERT_TRUE(s.ok());
  DispatchContext ctx;
  (*s)->Enqueue(Req(1, {8, 8}), ctx);
  (*s)->Dispatch(ctx);
  (*s)->Enqueue(Req(2, {0, 0}), ctx);   // preempts into q
  (*s)->Enqueue(Req(3, {15, 15}), ctx); // waits in q'
  EXPECT_EQ((*s)->queue_size(), 2u);
  size_t seen = 0;
  (*s)->ForEachWaiting([&](const Request&) { ++seen; });
  EXPECT_EQ(seen, 2u);
}

TEST(CascadedSchedulerTest, DeterministicAcrossInstances) {
  const CascadedConfig config =
      PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
  auto a = CascadedSfcScheduler::Create(config);
  auto b = CascadedSfcScheduler::Create(config);
  ASSERT_TRUE(a.ok() && b.ok());
  DispatchContext ctx{.now = MsToSim(5), .head = 1000};
  for (RequestId i = 0; i < 50; ++i) {
    const Request r = Req(i, {static_cast<PriorityLevel>(i % 16),
                              static_cast<PriorityLevel>((i * 7) % 16),
                              static_cast<PriorityLevel>((i * 3) % 16)},
                          MsToSim(100.0 + static_cast<double>(i % 50) * 10.0),
                          static_cast<Cylinder>((i * 311) % 3832));
    (*a)->Enqueue(r, ctx);
    (*b)->Enqueue(r, ctx);
  }
  while ((*a)->queue_size() > 0) {
    auto ra = (*a)->Dispatch(ctx);
    auto rb = (*b)->Dispatch(ctx);
    ASSERT_TRUE(ra.has_value() && rb.has_value());
    EXPECT_EQ(ra->id, rb->id);
  }
}

TEST(CascadedSchedulerTest, DispatcherStatsAccessible) {
  auto s = CascadedSfcScheduler::Create(
      PresetStage1Only("hilbert", 2, 4, /*window=*/0.1));
  ASSERT_TRUE(s.ok());
  DispatchContext ctx;
  (*s)->Enqueue(Req(1, {8, 8}), ctx);
  (*s)->Dispatch(ctx);
  (*s)->Enqueue(Req(2, {0, 0}), ctx);
  EXPECT_EQ((*s)->dispatcher().preemptions(), 1u);
}

}  // namespace
}  // namespace csfc
