// The LUT fast path must be a pure optimization: for every registered
// curve the precomputed cell -> index table equals direct IndexOf on every
// grid cell, and an Encapsulator with enable_lut on produces bit-identical
// characterization values to one with it off, across every stage mode.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/encapsulator.h"
#include "core/presets.h"
#include "sfc/curve.h"
#include "sfc/registry.h"
#include "workload/request.h"

namespace csfc {
namespace {

std::vector<Request> GridRequests(const EncapsulatorConfig& cfg, size_t n) {
  const uint32_t levels = uint32_t{1} << cfg.priority_bits;
  std::vector<Request> reqs(n);
  uint64_t x = 0x243F6A8885A308D3ULL;
  for (size_t i = 0; i < n; ++i) {
    Request& r = reqs[i];
    r.id = i;
    for (uint32_t k = 0; k < cfg.priority_dims; ++k) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      r.priorities.push_back(static_cast<PriorityLevel>((x >> 33) % levels));
    }
    r.deadline = MsToSim(static_cast<double>((x >> 17) % 1500));
    r.cylinder = static_cast<Cylinder>((x >> 7) % cfg.cylinders);
  }
  return reqs;
}

void ExpectLutMatchesDirect(EncapsulatorConfig cfg) {
  cfg.enable_lut = false;
  auto direct = Encapsulator::Create(cfg);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  cfg.enable_lut = true;
  auto lut = Encapsulator::Create(cfg);
  ASSERT_TRUE(lut.ok()) << lut.status().ToString();

  const auto reqs = GridRequests(cfg, 4096);
  for (const DispatchContext ctx :
       {DispatchContext{.now = 0, .head = 0},
        DispatchContext{.now = MsToSim(250), .head = 1900},
        DispatchContext{.now = MsToSim(990), .head = 3831}}) {
    for (const Request& r : reqs) {
      ASSERT_EQ((*direct)->Characterize(r, ctx), (*lut)->Characterize(r, ctx))
          << cfg.Signature() << " request " << r.id;
    }
  }
}

// --- Curve index tables -----------------------------------------------------

TEST(BuildIndexTableTest, MatchesIndexOfForEveryCurveAndCell) {
  for (const GridSpec spec : {GridSpec{.dims = 2, .bits = 3},
                              GridSpec{.dims = 3, .bits = 2}}) {
    for (const auto& name : AllCurveNames()) {
      auto curve = MakeCurve(name, spec);
      ASSERT_TRUE(curve.ok()) << name;
      const std::vector<uint64_t> table = (*curve)->BuildIndexTable();
      ASSERT_EQ(table.size(), (*curve)->num_cells()) << name;
      for (uint64_t i = 0; i < (*curve)->num_cells(); ++i) {
        const std::vector<uint32_t> p = (*curve)->PointOf(i);
        EXPECT_EQ((*curve)->IndexOf(p), i) << name;
        EXPECT_EQ(table[(*curve)->CellOf(p)], i)
            << name << " cell for index " << i;
      }
    }
  }
}

// --- Encapsulator equivalence -----------------------------------------------

TEST(EncapsulatorLutTest, Stage1MatchesDirectForEveryCurve) {
  for (const auto& name : AllCurveNames()) {
    CascadedConfig cfg =
        PresetFull(std::string(name), 3, 4, 1.0, 3, 3832, 0.05, 700.0);
    ExpectLutMatchesDirect(cfg.encapsulator);
  }
}

TEST(EncapsulatorLutTest, Stage2CurveModeMatchesDirect) {
  for (const char* name : {"diagonal", "hilbert"}) {
    for (const bool deadline_major : {false, true}) {
      CascadedConfig cfg =
          PresetFull("hilbert", 2, 3, 1.0, 3, 3832, 0.05, 700.0);
      cfg.encapsulator.stage2_mode = Stage2Mode::kCurve;
      cfg.encapsulator.sfc2 = name;
      cfg.encapsulator.stage2_bits = 7;
      cfg.encapsulator.stage2_deadline_major = deadline_major;
      ExpectLutMatchesDirect(cfg.encapsulator);
    }
  }
}

TEST(EncapsulatorLutTest, Stage3CurveModeMatchesDirect) {
  for (const char* name : {"cscan", "spiral", "hilbert"}) {
    CascadedConfig cfg =
        PresetFull("hilbert", 2, 3, 1.0, 3, 3832, 0.05, 700.0);
    cfg.encapsulator.stage3_mode = Stage3Mode::kCurve;
    cfg.encapsulator.sfc3 = name;
    cfg.encapsulator.stage3_bits = 7;
    ExpectLutMatchesDirect(cfg.encapsulator);
  }
}

TEST(EncapsulatorLutTest, AllCurveCascadeMatchesDirect) {
  CascadedConfig cfg = PresetFull("peano", 3, 3, 1.0, 3, 3832, 0.05, 700.0);
  cfg.encapsulator.stage2_mode = Stage2Mode::kCurve;
  cfg.encapsulator.sfc2 = "gray";
  cfg.encapsulator.stage2_bits = 6;
  cfg.encapsulator.stage3_mode = Stage3Mode::kCurve;
  cfg.encapsulator.sfc3 = "scan";
  cfg.encapsulator.stage3_bits = 6;
  ExpectLutMatchesDirect(cfg.encapsulator);
}

TEST(EncapsulatorLutTest, StageFlagsReflectModes) {
  CascadedConfig cfg = PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
  auto e = Encapsulator::Create(cfg.encapsulator);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE((*e)->stage1_uses_lut());
  // Formula stage 2 and partitioned-C-SCAN stage 3 have no curve to
  // tabulate.
  EXPECT_FALSE((*e)->stage2_uses_lut());
  EXPECT_FALSE((*e)->stage3_uses_lut());

  cfg.encapsulator.stage2_mode = Stage2Mode::kCurve;
  cfg.encapsulator.sfc2 = "diagonal";
  cfg.encapsulator.stage3_mode = Stage3Mode::kCurve;
  cfg.encapsulator.sfc3 = "cscan";
  auto e2 = Encapsulator::Create(cfg.encapsulator);
  ASSERT_TRUE(e2.ok());
  EXPECT_TRUE((*e2)->stage2_uses_lut());
  EXPECT_TRUE((*e2)->stage3_uses_lut());
}

TEST(EncapsulatorLutTest, OversizedGridsFallBackToDirectEval) {
  CascadedConfig cfg = PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
  cfg.encapsulator.lut_max_cells = 16;  // below the 2^12 stage-1 grid
  auto e = Encapsulator::Create(cfg.encapsulator);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE((*e)->stage1_uses_lut());
  // Still correct, just slower.
  ExpectLutMatchesDirect(cfg.encapsulator);
}

TEST(EncapsulatorLutTest, DisabledLutBuildsNoTables) {
  CascadedConfig cfg = PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700.0);
  cfg.encapsulator.enable_lut = false;
  auto e = Encapsulator::Create(cfg.encapsulator);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE((*e)->stage1_uses_lut());
  EXPECT_FALSE((*e)->stage2_uses_lut());
  EXPECT_FALSE((*e)->stage3_uses_lut());
}

}  // namespace
}  // namespace csfc
