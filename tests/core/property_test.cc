// Randomized property tests on the dispatcher and encapsulator invariants
// that every experiment relies on:
//  * conservation — every inserted request is popped exactly once, under
//    every discipline and any interleaving of inserts and pops;
//  * batch order — requests popped between two queue swaps come out in
//    nondecreasing v_c order (within a batch the dispatcher is a priority
//    queue);
//  * encapsulator monotonicity — with the other coordinates fixed, v_c is
//    nondecreasing in each input the active stages consume.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "core/dispatcher.h"
#include "core/encapsulator.h"

namespace csfc {
namespace {

using DisciplineParam = std::tuple<QueueDiscipline, double, bool, bool>;

class DispatcherPropertyTest
    : public ::testing::TestWithParam<DisciplineParam> {
 protected:
  Dispatcher Make() {
    const auto& [discipline, window, sp, er] = GetParam();
    DispatcherConfig c;
    c.discipline = discipline;
    c.window = window;
    c.serve_promote = sp;
    c.expand_reset = er;
    c.expansion_factor = 2.0;
    auto d = Dispatcher::Create(c);
    EXPECT_TRUE(d.ok());
    return *d;
  }
};

TEST_P(DispatcherPropertyTest, ConservationUnderRandomInterleaving) {
  Dispatcher d = Make();
  Rng rng(2024);
  std::map<RequestId, int> popped;
  RequestId next_id = 0;
  uint64_t outstanding = 0;
  for (int step = 0; step < 5000; ++step) {
    const bool insert = outstanding == 0 || rng.Bernoulli(0.55);
    if (insert) {
      Request r;
      r.id = next_id++;
      d.Insert(rng.NextDouble(), r);
      ++outstanding;
    } else {
      auto r = d.Pop();
      ASSERT_TRUE(r.has_value());
      ++popped[r->id];
      --outstanding;
    }
  }
  while (auto r = d.Pop()) ++popped[r->id];
  EXPECT_EQ(popped.size(), static_cast<size_t>(next_id));
  for (const auto& [id, count] : popped) {
    EXPECT_EQ(count, 1) << "request " << id;
  }
}

TEST_P(DispatcherPropertyTest, SizeIsConsistent) {
  Dispatcher d = Make();
  Rng rng(7);
  size_t expected = 0;
  for (int step = 0; step < 2000; ++step) {
    if (expected == 0 || rng.Bernoulli(0.6)) {
      Request r;
      r.id = static_cast<RequestId>(step);
      d.Insert(rng.NextDouble(), r);
      ++expected;
    } else {
      ASSERT_TRUE(d.Pop().has_value());
      --expected;
    }
    EXPECT_EQ(d.size(), expected);
    EXPECT_EQ(d.empty(), expected == 0);
  }
}

TEST_P(DispatcherPropertyTest, ForEachVisitsExactlyThePending) {
  Dispatcher d = Make();
  Rng rng(11);
  std::map<RequestId, bool> pending;
  for (int step = 0; step < 500; ++step) {
    if (pending.empty() || rng.Bernoulli(0.6)) {
      Request r;
      r.id = static_cast<RequestId>(step);
      d.Insert(rng.NextDouble(), r);
      pending[r.id] = true;
    } else {
      auto r = d.Pop();
      ASSERT_TRUE(r.has_value());
      pending.erase(r->id);
    }
  }
  std::map<RequestId, int> seen;
  d.ForEach([&](const Request& r) { ++seen[r.id]; });
  EXPECT_EQ(seen.size(), pending.size());
  for (const auto& [id, count] : seen) {
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(pending.count(id)) << id;
  }
}

std::string DisciplineName(
    const ::testing::TestParamInfo<DisciplineParam>& info) {
  const auto& [discipline, window, sp, er] = info.param;
  std::string name;
  switch (discipline) {
    case QueueDiscipline::kNonPreemptive:
      name = "nonpre";
      break;
    case QueueDiscipline::kFullyPreemptive:
      name = "full";
      break;
    case QueueDiscipline::kConditionallyPreemptive:
      name = "cond";
      break;
  }
  name += "_w" + std::to_string(static_cast<int>(window * 100));
  if (sp) name += "_sp";
  if (er) name += "_er";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, DispatcherPropertyTest,
    ::testing::Values(
        DisciplineParam{QueueDiscipline::kFullyPreemptive, 0.0, false, false},
        DisciplineParam{QueueDiscipline::kNonPreemptive, 0.0, false, false},
        DisciplineParam{QueueDiscipline::kConditionallyPreemptive, 0.0, true,
                        false},
        DisciplineParam{QueueDiscipline::kConditionallyPreemptive, 0.05, true,
                        false},
        DisciplineParam{QueueDiscipline::kConditionallyPreemptive, 0.05,
                        false, false},
        DisciplineParam{QueueDiscipline::kConditionallyPreemptive, 0.05, true,
                        true},
        DisciplineParam{QueueDiscipline::kConditionallyPreemptive, 0.5, true,
                        true}),
    DisciplineName);

TEST(DispatcherBatchOrderTest, NonPreemptiveBatchesAreSorted) {
  DispatcherConfig c;
  c.discipline = QueueDiscipline::kNonPreemptive;
  auto d = Dispatcher::Create(c);
  ASSERT_TRUE(d.ok());
  Rng rng(5);
  std::vector<CValue> values;
  for (RequestId i = 0; i < 200; ++i) {
    Request r;
    r.id = i;
    const CValue v = rng.NextDouble();
    values.push_back(v);
    d->Insert(v, r);
  }
  // One batch: popped order must be ascending v_c.
  CValue prev = -1.0;
  for (int i = 0; i < 200; ++i) {
    auto r = d->Pop();
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(values[r->id], prev);
    prev = values[r->id];
  }
}

// ---------------------------------------------------------------------------

class EncapsulatorMonotonicityTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(EncapsulatorMonotonicityTest, Stage2FormulaMonotoneInDeadline) {
  EncapsulatorConfig c;
  c.sfc1 = GetParam();
  c.priority_dims = 2;
  c.priority_bits = 3;
  c.stage2_mode = Stage2Mode::kFormula;
  c.f = 1.0;
  c.stage2_tie = Stage2TieBreak::kNone;
  c.deadline_horizon_ms = 1000.0;
  c.stage3_mode = Stage3Mode::kDisabled;
  auto e = Encapsulator::Create(c);
  ASSERT_TRUE(e.ok());
  DispatchContext ctx;
  Request r;
  r.priorities = PriorityVec{3, 5};
  CValue prev = -1.0;
  for (double dl = 0; dl <= 1200; dl += 50) {
    r.deadline = MsToSim(dl);
    const CValue v = (*e)->Characterize(r, ctx);
    EXPECT_GE(v, prev) << "deadline " << dl;
    prev = v;
  }
}

TEST_P(EncapsulatorMonotonicityTest, Stage3MonotoneInSweepDistance) {
  EncapsulatorConfig c;
  c.stage1_enabled = false;
  c.priority_dims = 1;
  c.priority_bits = 3;
  c.stage2_mode = Stage2Mode::kDisabled;
  c.stage3_mode = Stage3Mode::kPartitionedCScan;
  c.partitions_r = 1;
  c.stage3_bits = 4;
  c.cylinders = 1000;
  auto e = Encapsulator::Create(c);
  ASSERT_TRUE(e.ok());
  (void)GetParam();  // stage 1 is off; run once per curve anyway
  DispatchContext ctx{.now = 0, .head = 700};
  Request r;
  r.priorities = PriorityVec{4};
  CValue prev = -1.0;
  for (uint32_t dist = 0; dist < 1000; dist += 37) {
    r.cylinder = static_cast<Cylinder>((700 + dist) % 1000);
    const CValue v = (*e)->Characterize(r, ctx);
    EXPECT_GT(v, prev) << "distance " << dist;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Curves, EncapsulatorMonotonicityTest,
                         ::testing::Values("scan", "cscan", "peano", "gray",
                                           "hilbert", "spiral", "diagonal"));

}  // namespace
}  // namespace csfc
