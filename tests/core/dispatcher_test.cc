// Dispatcher discipline tests, including an exact replay of the paper's
// Figure 4 worked example of the conditionally-preemptive scheduler with
// the SP policy.

#include "core/dispatcher.h"

#include <gtest/gtest.h>

#include <vector>

namespace csfc {
namespace {

Request Req(RequestId id) {
  Request r;
  r.id = id;
  return r;
}

Dispatcher Make(QueueDiscipline d, double w = 0.0, bool sp = true,
                bool er = false, double e = 2.0) {
  DispatcherConfig c;
  c.discipline = d;
  c.window = w;
  c.serve_promote = sp;
  c.expand_reset = er;
  c.expansion_factor = e;
  auto r = Dispatcher::Create(c);
  EXPECT_TRUE(r.ok());
  return *r;
}

TEST(DispatcherConfigTest, Validation) {
  DispatcherConfig c;
  c.window = -0.1;
  EXPECT_FALSE(Dispatcher::Create(c).ok());
  c = DispatcherConfig();
  c.expand_reset = true;
  c.expansion_factor = 1.0;
  EXPECT_FALSE(Dispatcher::Create(c).ok());
  EXPECT_TRUE(Dispatcher::Create(DispatcherConfig()).ok());
}

TEST(DispatcherTest, EmptyPopsNothing) {
  Dispatcher d = Make(QueueDiscipline::kFullyPreemptive);
  EXPECT_FALSE(d.Pop().has_value());
  EXPECT_TRUE(d.empty());
}

TEST(FullyPreemptiveTest, AlwaysServesGlobalMinimum) {
  Dispatcher d = Make(QueueDiscipline::kFullyPreemptive);
  d.Insert(0.5, Req(1));
  d.Insert(0.2, Req(2));
  EXPECT_EQ(d.Pop()->id, 2u);
  d.Insert(0.1, Req(3));  // newcomer beats the older 0.5
  EXPECT_EQ(d.Pop()->id, 3u);
  EXPECT_EQ(d.Pop()->id, 1u);
}

TEST(FullyPreemptiveTest, ExactTiesAreFifo) {
  Dispatcher d = Make(QueueDiscipline::kFullyPreemptive);
  d.Insert(0.5, Req(1));
  d.Insert(0.5, Req(2));
  EXPECT_EQ(d.Pop()->id, 1u);
  EXPECT_EQ(d.Pop()->id, 2u);
}

TEST(NonPreemptiveTest, BatchesByArrivalEpoch) {
  Dispatcher d = Make(QueueDiscipline::kNonPreemptive);
  d.Insert(0.9, Req(1));
  d.Insert(0.5, Req(2));
  // Batch 1 starts: {1, 2} swapped into the active queue.
  EXPECT_EQ(d.Pop()->id, 2u);
  d.Insert(0.1, Req(3));  // very urgent, but must wait for the next batch
  EXPECT_EQ(d.Pop()->id, 1u);
  EXPECT_EQ(d.Pop()->id, 3u);
}

TEST(NonPreemptiveTest, SwapCountTracksBatches) {
  Dispatcher d = Make(QueueDiscipline::kNonPreemptive);
  d.Insert(0.5, Req(1));
  d.Pop();
  d.Insert(0.5, Req(2));
  d.Pop();
  EXPECT_EQ(d.swaps(), 2u);
}

TEST(ConditionalTest, WindowZeroPreemptsLikeFullyPreemptive) {
  Dispatcher d = Make(QueueDiscipline::kConditionallyPreemptive, 0.0);
  d.Insert(0.5, Req(1));
  EXPECT_EQ(d.Pop()->id, 1u);  // serving T1 (v=0.5)
  d.Insert(0.4, Req(2));       // any improvement preempts when w=0
  d.Insert(0.6, Req(3));
  EXPECT_EQ(d.Pop()->id, 2u);
  EXPECT_EQ(d.preemptions(), 1u);
}

TEST(ConditionalTest, HugeWindowActsNonPreemptive) {
  Dispatcher d = Make(QueueDiscipline::kConditionallyPreemptive, 1.0);
  d.Insert(0.9, Req(1));
  EXPECT_EQ(d.Pop()->id, 1u);
  d.Insert(0.05, Req(2));  // far better, still inside the full-space window
  EXPECT_EQ(d.preemptions(), 0u);
  EXPECT_EQ(d.Pop()->id, 2u);  // served after the (empty) batch swap
  EXPECT_GE(d.swaps(), 1u);
}

TEST(ConditionalTest, InsideWindowWaitsOutsideWindowPreempts) {
  Dispatcher d = Make(QueueDiscipline::kConditionallyPreemptive, 0.2,
                      /*sp=*/false);
  d.Insert(0.60, Req(1));
  EXPECT_EQ(d.Pop()->id, 1u);  // T_cur = 0.60
  d.Insert(0.45, Req(2));      // higher but inside [0.40, 0.60): waits
  d.Insert(0.35, Req(3));      // significantly higher: preempts
  EXPECT_EQ(d.preemptions(), 1u);
  EXPECT_EQ(d.Pop()->id, 3u);
  EXPECT_EQ(d.Pop()->id, 2u);
}

TEST(ConditionalTest, Figure4WorkedExample) {
  // Figure 4 of the paper, with w = 0.2 and the SP policy. Priority line
  // (lower v_c = higher priority): T5 < T6 < T7 < T2 < T3 < T1 < T4.
  Dispatcher d = Make(QueueDiscipline::kConditionallyPreemptive, 0.2,
                      /*sp=*/true);
  std::vector<RequestId> served;
  auto serve = [&] { served.push_back(d.Pop()->id); };

  d.Insert(0.60, Req(1));  // T1 arrives while the disk is idle
  serve();                 // T1 served immediately
  // While T1 is served: T2, T3 higher than T1 but inside the window; T4
  // lower than T1. All go to q'.
  d.Insert(0.45, Req(2));
  d.Insert(0.50, Req(3));
  d.Insert(0.90, Req(4));
  EXPECT_EQ(d.preemptions(), 0u);
  serve();  // q empty -> swap; T2 is the highest-priority in q
  // While T2 is served: only T5 is significantly more important than T2.
  d.Insert(0.05, Req(5));
  d.Insert(0.27, Req(6));
  d.Insert(0.40, Req(7));
  EXPECT_EQ(d.preemptions(), 1u);
  serve();  // T5 (preempted into q)
  serve();  // SP promotes T6 over T3 (T6 < T3 - w)
  serve();  // T3
  serve();  // SP promotes T7 over T4 (T7 < T4 - w)
  serve();  // T4

  EXPECT_EQ(served, (std::vector<RequestId>{1, 2, 5, 6, 3, 7, 4}));
  EXPECT_EQ(d.promotions(), 2u);
  EXPECT_TRUE(d.empty());
}

TEST(ConditionalTest, WithoutSpTheWindowCausesInversion) {
  // Same scenario as Figure 4 but SP disabled: T6 and T7 stay blocked in
  // q' until the batch drains, so T3 and T4 are served first.
  Dispatcher d = Make(QueueDiscipline::kConditionallyPreemptive, 0.2,
                      /*sp=*/false);
  std::vector<RequestId> served;
  auto serve = [&] { served.push_back(d.Pop()->id); };
  d.Insert(0.60, Req(1));
  serve();
  d.Insert(0.45, Req(2));
  d.Insert(0.50, Req(3));
  d.Insert(0.90, Req(4));
  serve();
  d.Insert(0.05, Req(5));
  d.Insert(0.27, Req(6));
  d.Insert(0.40, Req(7));
  while (!d.empty()) serve();
  EXPECT_EQ(served, (std::vector<RequestId>{1, 2, 5, 3, 4, 6, 7}));
}

TEST(ErPolicyTest, WindowExpandsOnPreemptionAndResetsOnSwap) {
  Dispatcher d = Make(QueueDiscipline::kConditionallyPreemptive, 0.1,
                      /*sp=*/true, /*er=*/true, /*e=*/2.0);
  d.Insert(0.90, Req(1));
  EXPECT_EQ(d.Pop()->id, 1u);  // T_cur = 0.90
  EXPECT_DOUBLE_EQ(d.current_window(), 0.1);
  d.Insert(0.70, Req(2));  // preempts (0.70 < 0.80); w -> 0.2
  EXPECT_EQ(d.preemptions(), 1u);
  EXPECT_DOUBLE_EQ(d.current_window(), 0.2);
  d.Insert(0.75, Req(3));  // would preempt at w=0.1, blocked at w=0.2
  EXPECT_EQ(d.preemptions(), 1u);
  d.Insert(0.50, Req(4));  // still beats 0.90 - 0.2; w -> 0.4
  EXPECT_EQ(d.preemptions(), 2u);
  EXPECT_DOUBLE_EQ(d.current_window(), 0.4);
  // Drain the active queue {2, 4}; then a swap brings 3 in and resets w.
  EXPECT_EQ(d.Pop()->id, 4u);
  EXPECT_EQ(d.Pop()->id, 2u);
  EXPECT_EQ(d.Pop()->id, 3u);  // swap happened here
  EXPECT_DOUBLE_EQ(d.current_window(), 0.1);
}

TEST(ErPolicyTest, SustainedUrgentStreamCannotStarveForever) {
  // An adversary keeps injecting ever-more-urgent requests; with ER the
  // window grows until preemption stops and the old batch drains.
  Dispatcher d = Make(QueueDiscipline::kConditionallyPreemptive, 0.01,
                      /*sp=*/false, /*er=*/true, /*e=*/2.0);
  d.Insert(0.99, Req(1000));  // the victim
  EXPECT_EQ(d.Pop()->id, 1000u);
  d.Insert(0.98, Req(1001));  // next batch victim
  double v = 0.90;
  int preempts_before_block = 0;
  for (RequestId i = 0; i < 64; ++i) {
    const uint64_t before = d.preemptions();
    d.Insert(v, Req(i));
    if (d.preemptions() > before) ++preempts_before_block;
    v *= 0.95;  // strictly more urgent each time
  }
  // The window must have saturated: far fewer than 64 preemptions.
  EXPECT_LT(preempts_before_block, 12);
  // And the batch victim is reachable in bounded pops.
  int pops_until_victim = 0;
  while (true) {
    auto r = d.Pop();
    ASSERT_TRUE(r.has_value());
    ++pops_until_victim;
    if (r->id == 1001u) break;
  }
  EXPECT_LE(pops_until_victim, 65);
}

TEST(DispatcherTest, ForEachVisitsBothQueues) {
  Dispatcher d = Make(QueueDiscipline::kConditionallyPreemptive, 0.2);
  d.Insert(0.5, Req(1));
  EXPECT_EQ(d.Pop()->id, 1u);
  d.Insert(0.1, Req(2));  // preempts -> active
  d.Insert(0.9, Req(3));  // waits
  size_t seen = 0;
  d.ForEach([&](const Request&) { ++seen; });
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(d.size(), 2u);
}

}  // namespace
}  // namespace csfc
