// Equivalence of the flat-queue Dispatcher and the std::map
// ReferenceDispatcher: random operation traces (insert / pop / rekey /
// ForEach) replayed against both implementations must agree on every
// observable — popped request identity, sizes, swap prediction, window,
// counters and visitation order. This is the release-build counterpart of
// the debug-only shadow cross-check inside Dispatcher itself.

#include <gtest/gtest.h>

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/dispatcher.h"

namespace csfc {
namespace {

CValue UnitValue(Rng& rng) {
  // 16-bit grid keeps exact-tie FIFO ordering exercised.
  return static_cast<double>(rng() % 65536) / 65536.0;
}

void ExpectObservablesMatch(const Dispatcher& d, const ReferenceDispatcher& ref) {
  ASSERT_EQ(d.size(), ref.size());
  ASSERT_EQ(d.empty(), ref.empty());
  ASSERT_EQ(d.NeedsSwapForPop(), ref.NeedsSwapForPop());
  ASSERT_EQ(d.current_window(), ref.current_window());
  ASSERT_EQ(d.preemptions(), ref.preemptions());
  ASSERT_EQ(d.promotions(), ref.promotions());
  ASSERT_EQ(d.swaps(), ref.swaps());
}

void ExpectSameOrder(const Dispatcher& d, const ReferenceDispatcher& ref) {
  std::vector<RequestId> flat_ids, ref_ids;
  d.ForEach([&](const Request& r) { flat_ids.push_back(r.id); });
  ref.ForEach([&](const Request& r) { ref_ids.push_back(r.id); });
  ASSERT_EQ(flat_ids, ref_ids);
}

void ReplayRandomTrace(const DispatcherConfig& cfg, uint64_t seed,
                       int num_ops) {
  auto created = Dispatcher::Create(cfg);
  ASSERT_TRUE(created.ok());
  Dispatcher d = *std::move(created);
  ReferenceDispatcher ref(cfg);

  Rng rng(seed);
  RequestId next_id = 0;
  for (int i = 0; i < num_ops; ++i) {
    const uint64_t action = rng() % 100;
    if (action < 55) {
      Request r;
      r.id = next_id++;
      const CValue v = UnitValue(rng);
      d.Insert(v, r);
      ref.Insert(v, r);
    } else if (action < 85) {
      const std::optional<Request> a = d.Pop();
      const std::optional<Request> b = ref.Pop();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a.has_value()) {
        ASSERT_EQ(a->id, b->id);
      }
    } else if (action < 93) {
      // Deterministic new key per request, decorrelated from the old one.
      const uint64_t salt = rng();
      auto key = [salt](const Request& r) {
        const uint64_t h = (r.id + salt) * 2654435761ULL;
        return static_cast<double>(h % 65536) / 65536.0;
      };
      // Alternate between the per-request and the batch rekey entry
      // points; both must leave the queues in the same state.
      if (rng() % 2 == 0) {
        d.RekeyWaiting(key);
        ref.RekeyWaiting(key);
      } else {
        auto batch = [&key](std::span<const Request* const> reqs,
                            std::span<CValue> out) {
          for (size_t k = 0; k < reqs.size(); ++k) out[k] = key(*reqs[k]);
        };
        d.RekeyWaitingBatch(batch);
        ref.RekeyWaitingBatch(batch);
      }
    } else {
      ExpectSameOrder(d, ref);
    }
    ExpectObservablesMatch(d, ref);
  }

  // Drain both to the end: the complete service order must agree.
  while (true) {
    const std::optional<Request> a = d.Pop();
    const std::optional<Request> b = ref.Pop();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    ASSERT_EQ(a->id, b->id);
    ExpectObservablesMatch(d, ref);
  }
}

DispatcherConfig Config(QueueDiscipline disc, double w, bool sp, bool er) {
  DispatcherConfig c;
  c.discipline = disc;
  c.window = w;
  c.serve_promote = sp;
  c.expand_reset = er;
  return c;
}

TEST(DispatcherEquivalenceTest, NonPreemptive) {
  ReplayRandomTrace(
      Config(QueueDiscipline::kNonPreemptive, 0.0, false, false), 1, 4000);
}

TEST(DispatcherEquivalenceTest, FullyPreemptive) {
  ReplayRandomTrace(
      Config(QueueDiscipline::kFullyPreemptive, 0.0, false, false), 2, 4000);
}

TEST(DispatcherEquivalenceTest, ConditionalZeroWindow) {
  ReplayRandomTrace(
      Config(QueueDiscipline::kConditionallyPreemptive, 0.0, true, false), 3,
      4000);
}

TEST(DispatcherEquivalenceTest, ConditionalWithSp) {
  ReplayRandomTrace(
      Config(QueueDiscipline::kConditionallyPreemptive, 0.05, true, false), 4,
      4000);
}

TEST(DispatcherEquivalenceTest, ConditionalWithoutSp) {
  ReplayRandomTrace(
      Config(QueueDiscipline::kConditionallyPreemptive, 0.05, false, false),
      5, 4000);
}

TEST(DispatcherEquivalenceTest, ConditionalWithEr) {
  ReplayRandomTrace(
      Config(QueueDiscipline::kConditionallyPreemptive, 0.02, true, true), 6,
      4000);
}

TEST(DispatcherEquivalenceTest, WideWindowDegeneratesTogether) {
  ReplayRandomTrace(
      Config(QueueDiscipline::kConditionallyPreemptive, 1.0, true, false), 7,
      4000);
}

TEST(DispatcherEquivalenceTest, ManySeeds) {
  for (uint64_t seed = 10; seed < 22; ++seed) {
    ReplayRandomTrace(
        Config(QueueDiscipline::kConditionallyPreemptive, 0.05, true,
               seed % 2 == 0),
        seed, 1200);
  }
}

// The same replay harness with the calendar backend: every observable the
// flat backend is held to, the calendar is held to as well. Bucket counts
// span one-bucket-degenerate through finer-than-the-key-grid.
TEST(DispatcherEquivalenceTest, CalendarBackendAllDisciplines) {
  uint64_t seed = 200;
  for (QueueDiscipline disc :
       {QueueDiscipline::kNonPreemptive, QueueDiscipline::kFullyPreemptive,
        QueueDiscipline::kConditionallyPreemptive}) {
    DispatcherConfig c = Config(disc, 0.05, true, false);
    c.queue_backend = QueueBackend::kCalendar;
    c.calendar_buckets = 1024;
    ReplayRandomTrace(c, seed++, 3000);
  }
}

TEST(DispatcherEquivalenceTest, CalendarBackendBucketCounts) {
  for (uint32_t buckets : {1u, 2u, 64u, 4096u, BucketedSlotHeap::kMaxBuckets}) {
    DispatcherConfig c =
        Config(QueueDiscipline::kConditionallyPreemptive, 0.05, true, true);
    c.queue_backend = QueueBackend::kCalendar;
    c.calendar_buckets = buckets;
    ReplayRandomTrace(c, 300 + buckets, 1500);
  }
}

// Zero-copy flow: requests inserted as rvalues (moved into the slot pool)
// and popped (moved out) must round-trip every payload field intact and
// still agree with the copying ReferenceDispatcher on service order. The
// heap-allocating fields (priorities beyond the inline capacity) are the
// ones a broken move would corrupt.
TEST(DispatcherEquivalenceTest, MoveBasedInsertPopRoundTripsPayloads) {
  const DispatcherConfig cfg =
      Config(QueueDiscipline::kConditionallyPreemptive, 0.05, true, true);
  auto created = Dispatcher::Create(cfg);
  ASSERT_TRUE(created.ok());
  Dispatcher d = *std::move(created);
  ReferenceDispatcher ref(cfg);

  Rng rng(99);
  RequestId next_id = 0;
  for (int i = 0; i < 3000; ++i) {
    if (rng() % 100 < 55) {
      Request r;
      r.id = next_id++;
      r.arrival = static_cast<SimTime>(i);
      r.deadline = static_cast<SimTime>(1000 + i);
      r.cylinder = static_cast<Cylinder>(rng() % 4000);
      r.bytes = 1024 + r.id;
      r.stream = static_cast<uint32_t>(r.id % 7);
      // 16 levels spills SmallVector's inline capacity of 12.
      for (uint32_t k = 0; k < 16; ++k) {
        r.priorities.push_back(static_cast<PriorityLevel>((r.id + k) % 8));
      }
      const CValue v = UnitValue(rng);
      ref.Insert(v, r);
      d.Insert(v, std::move(r));
    } else {
      std::optional<Request> a = d.Pop();
      const std::optional<Request> b = ref.Pop();
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a.has_value()) continue;
      ASSERT_EQ(a->id, b->id);
      EXPECT_EQ(a->arrival, b->arrival);
      EXPECT_EQ(a->deadline, b->deadline);
      EXPECT_EQ(a->cylinder, b->cylinder);
      EXPECT_EQ(a->bytes, b->bytes);
      EXPECT_EQ(a->stream, b->stream);
      ASSERT_EQ(a->priorities.size(), b->priorities.size());
      for (size_t k = 0; k < a->priorities.size(); ++k) {
        EXPECT_EQ(a->priorities[k], b->priorities[k]);
      }
    }
  }
  while (auto a = d.Pop()) {
    const std::optional<Request> b = ref.Pop();
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(a->id, b->id);
    ASSERT_EQ(a->priorities.size(), b->priorities.size());
  }
  EXPECT_FALSE(ref.Pop().has_value());
}

}  // namespace
}  // namespace csfc
