// Bit-identity of Encapsulator::CharacterizeBatch with the per-request
// scalar path. The batch path hoists every per-call invariant (stage-mode
// branches, LUT base pointers, quantization scales, the head-position and
// partition terms of SFC3) out of a tight loop — but it must perform the
// exact same floating-point operation sequence per request, so the rekeyed
// heap keys match the debug shadow dispatcher (which rekeys through the
// scalar path) to the last bit. EXPECT_EQ on doubles below is deliberate:
// approximate agreement would hide a reordered FP operation.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "core/encapsulator.h"

namespace csfc {
namespace {

Request RandomRequest(Rng& rng, const EncapsulatorConfig& cfg,
                      RequestId id, SimTime now) {
  Request r;
  r.id = id;
  r.arrival = now;
  // Mix relaxed, past-due, near and far deadlines around `now`.
  switch (rng.Uniform(4)) {
    case 0:
      r.deadline = kNoDeadline;
      break;
    case 1:
      r.deadline = now - static_cast<SimTime>(rng.Uniform(50 * kMillisecond));
      break;
    default:
      r.deadline = now + static_cast<SimTime>(rng.Uniform(2 * kSecond));
      break;
  }
  r.cylinder = static_cast<Cylinder>(rng.Uniform(cfg.cylinders));
  // Vary the dimension count so requests with fewer priorities than the
  // configured D (priority(k) fallback) are exercised too.
  const uint32_t dims = static_cast<uint32_t>(rng.Uniform(cfg.priority_dims + 1));
  const uint32_t levels = 1u << cfg.priority_bits;
  for (uint32_t k = 0; k < dims; ++k) {
    r.priorities.push_back(static_cast<PriorityLevel>(rng.Uniform(levels)));
  }
  return r;
}

void ExpectBatchMatchesScalar(const EncapsulatorConfig& cfg, uint64_t seed) {
  auto created = Encapsulator::Create(cfg);
  ASSERT_TRUE(created.ok()) << created.status().message();
  const Encapsulator& enc = **created;

  Rng rng(seed);
  const SimTime now = MsToSim(500.0);
  const DispatchContext ctx{
      .now = now, .head = static_cast<Cylinder>(rng.Uniform(cfg.cylinders))};

  std::vector<Request> reqs;
  for (RequestId id = 0; id < 257; ++id) {
    reqs.push_back(RandomRequest(rng, cfg, id, now));
  }
  std::vector<const Request*> ptrs;
  for (const Request& r : reqs) ptrs.push_back(&r);

  std::vector<CValue> batch(reqs.size());
  enc.CharacterizeBatch(ptrs, ctx, batch);
  std::vector<StageValues> stages(reqs.size());
  enc.CharacterizeStagesBatch(ptrs, ctx, stages);

  for (size_t i = 0; i < reqs.size(); ++i) {
    const CValue scalar = enc.Characterize(reqs[i], ctx);
    const StageValues sv = enc.CharacterizeStages(reqs[i], ctx);
    EXPECT_EQ(batch[i], scalar) << "request " << i;
    EXPECT_EQ(stages[i].v1, sv.v1) << "request " << i;
    EXPECT_EQ(stages[i].v2, sv.v2) << "request " << i;
    EXPECT_EQ(stages[i].vc, sv.vc) << "request " << i;
    EXPECT_EQ(stages[i].vc, batch[i]) << "request " << i;
  }
}

// One randomized configuration per seed, sweeping every stage-mode
// combination; each is checked with the LUT enabled and disabled.
EncapsulatorConfig RandomConfig(uint64_t seed) {
  Rng rng(seed);
  EncapsulatorConfig cfg;
  cfg.stage1_enabled = rng.Uniform(4) != 0;  // passthrough path too
  cfg.sfc1 = rng.Uniform(2) == 0 ? "hilbert" : "zorder";
  cfg.priority_dims = static_cast<uint32_t>(1 + rng.Uniform(3));
  cfg.priority_bits = static_cast<uint32_t>(2 + rng.Uniform(3));
  switch (rng.Uniform(3)) {
    case 0: cfg.stage2_mode = Stage2Mode::kDisabled; break;
    case 1: cfg.stage2_mode = Stage2Mode::kFormula; break;
    default: cfg.stage2_mode = Stage2Mode::kCurve; break;
  }
  cfg.f = 0.25 * static_cast<double>(1 + rng.Uniform(8));
  switch (rng.Uniform(3)) {
    case 0: cfg.stage2_tie = Stage2TieBreak::kNone; break;
    case 1: cfg.stage2_tie = Stage2TieBreak::kEarliestDeadline; break;
    default: cfg.stage2_tie = Stage2TieBreak::kHighestPriority; break;
  }
  cfg.sfc2 = rng.Uniform(2) == 0 ? "hilbert" : "diagonal";
  cfg.stage2_bits = static_cast<uint32_t>(4 + rng.Uniform(5));
  cfg.stage2_deadline_major = rng.Uniform(2) == 0;
  cfg.deadline_horizon_ms = 200.0 * static_cast<double>(1 + rng.Uniform(10));
  switch (rng.Uniform(3)) {
    case 0: cfg.stage3_mode = Stage3Mode::kDisabled; break;
    case 1: cfg.stage3_mode = Stage3Mode::kPartitionedCScan; break;
    default: cfg.stage3_mode = Stage3Mode::kCurve; break;
  }
  cfg.partitions_r = static_cast<uint32_t>(1 + rng.Uniform(8));
  cfg.sfc3 = rng.Uniform(2) == 0 ? "cscan" : "hilbert";
  cfg.stage3_bits = static_cast<uint32_t>(4 + rng.Uniform(5));
  cfg.cylinders = static_cast<uint32_t>(100 + rng.Uniform(4000));
  return cfg;
}

TEST(BatchCharacterizeTest, MatchesScalarAcrossRandomConfigs) {
  for (uint64_t seed = 0; seed < 24; ++seed) {
    EncapsulatorConfig cfg = RandomConfig(seed);
    cfg.enable_lut = true;
    ExpectBatchMatchesScalar(cfg, seed * 977 + 13);
    cfg.enable_lut = false;
    ExpectBatchMatchesScalar(cfg, seed * 977 + 13);
  }
}

// Pin each stage-mode combination explicitly (the random sweep could in
// principle miss one), with both LUT settings.
TEST(BatchCharacterizeTest, MatchesScalarOnEveryStageModeCombination) {
  const Stage2Mode s2[] = {Stage2Mode::kDisabled, Stage2Mode::kFormula,
                           Stage2Mode::kCurve};
  const Stage3Mode s3[] = {Stage3Mode::kDisabled,
                           Stage3Mode::kPartitionedCScan, Stage3Mode::kCurve};
  uint64_t seed = 1000;
  for (const bool stage1 : {true, false}) {
    for (const Stage2Mode m2 : s2) {
      for (const Stage3Mode m3 : s3) {
        EncapsulatorConfig cfg;
        cfg.stage1_enabled = stage1;
        cfg.stage2_mode = m2;
        cfg.stage3_mode = m3;
        for (const bool lut : {true, false}) {
          cfg.enable_lut = lut;
          ExpectBatchMatchesScalar(cfg, ++seed);
        }
      }
    }
  }
}

// Degenerate batch shapes the loop bounds must handle.
TEST(BatchCharacterizeTest, EmptyAndSingletonBatches) {
  EncapsulatorConfig cfg;
  auto created = Encapsulator::Create(cfg);
  ASSERT_TRUE(created.ok());
  const Encapsulator& enc = **created;
  const DispatchContext ctx{.now = MsToSim(1.0), .head = 7};

  enc.CharacterizeBatch({}, ctx, {});
  enc.CharacterizeStagesBatch({}, ctx, {});

  Request r;
  r.id = 42;
  r.deadline = MsToSim(30.0);
  r.cylinder = 1234;
  r.priorities.push_back(3);
  const Request* p = &r;
  CValue one = -1.0;
  enc.CharacterizeBatch({&p, 1}, ctx, {&one, 1});
  EXPECT_EQ(one, enc.Characterize(r, ctx));
}

}  // namespace
}  // namespace csfc
