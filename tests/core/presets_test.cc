// Section 4.2 Generalization: each degenerate Cascaded-SFC configuration
// must reproduce the dispatch order of the genuine baseline scheduler on
// identical inputs.

#include "core/presets.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "sched/edf.h"
#include "sched/multi_queue.h"
#include "sched/scan_family.h"

namespace csfc {
namespace {

std::vector<Request> RandomBatch(size_t n, uint64_t seed, uint32_t levels = 16,
                                 bool with_priorities = true) {
  Rng rng(seed);
  std::vector<Request> reqs(n);
  for (size_t i = 0; i < n; ++i) {
    reqs[i].id = i;
    reqs[i].arrival = static_cast<SimTime>(i);  // unique, increasing
    // The +i microseconds keep deadlines unique so deadline-keyed orders
    // are total and comparable across scheduler implementations.
    reqs[i].deadline = MsToSim(100.0 + static_cast<double>(rng.Uniform(800))) +
                       static_cast<SimTime>(i);
    reqs[i].cylinder = static_cast<Cylinder>(rng.Uniform(3832));
    if (with_priorities) {
      reqs[i].priorities.push_back(
          static_cast<PriorityLevel>(rng.Uniform(levels)));
    }
  }
  return reqs;
}

std::vector<RequestId> DrainAll(Scheduler& s, Cylinder head = 0) {
  std::vector<RequestId> order;
  DispatchContext ctx{.now = 0, .head = head};
  while (auto r = s.Dispatch(ctx)) order.push_back(r->id);
  return order;
}

TEST(PresetEdfTest, MatchesRealEdfOrder) {
  const auto batch =
      RandomBatch(200, 11, /*levels=*/16, /*with_priorities=*/false);
  auto preset = CascadedSfcScheduler::Create(PresetEdf(1000.0));
  ASSERT_TRUE(preset.ok());
  EdfScheduler real;
  DispatchContext ctx;
  for (const Request& r : batch) {
    (*preset)->Enqueue(r, ctx);
    real.Enqueue(r, ctx);
  }
  EXPECT_EQ(DrainAll(**preset), DrainAll(real));
}

TEST(PresetEdfTest, RelaxedDeadlinesLast) {
  auto preset = CascadedSfcScheduler::Create(PresetEdf(1000.0));
  ASSERT_TRUE(preset.ok());
  DispatchContext ctx;
  Request a;
  a.id = 1;
  a.deadline = kNoDeadline;
  Request b;
  b.id = 2;
  b.deadline = MsToSim(900);
  (*preset)->Enqueue(a, ctx);
  (*preset)->Enqueue(b, ctx);
  EXPECT_EQ(DrainAll(**preset), (std::vector<RequestId>{2, 1}));
}

TEST(PresetMultiQueueTest, MatchesRealMultiQueueLevelOrder) {
  // The preset orders by (level, deadline); the real multi-queue orders by
  // (level, sweep). Compare level sequences, which both define identically.
  const auto batch = RandomBatch(200, 13, /*levels=*/8);
  auto preset = CascadedSfcScheduler::Create(PresetMultiQueue(3, 1000.0));
  ASSERT_TRUE(preset.ok());
  MultiQueueScheduler real(8);
  DispatchContext ctx;
  for (const Request& r : batch) {
    (*preset)->Enqueue(r, ctx);
    real.Enqueue(r, ctx);
  }
  auto levels_of = [&](const std::vector<RequestId>& ids) {
    std::vector<PriorityLevel> levels;
    for (RequestId id : ids) levels.push_back(batch[id].priorities[0]);
    return levels;
  };
  EXPECT_EQ(levels_of(DrainAll(**preset)), levels_of(DrainAll(real)));
}

TEST(PresetCScanTest, MatchesRealCScanWithinABatch) {
  // Both serve one batch in ascending-cylinder order from head 0.
  const auto batch = RandomBatch(150, 17);
  auto preset = CascadedSfcScheduler::Create(PresetCScan(3832));
  ASSERT_TRUE(preset.ok());
  DispatchContext ctx{.now = 0, .head = 0};
  for (const Request& r : batch) (*preset)->Enqueue(r, ctx);
  auto cylinders_of = [&](const std::vector<RequestId>& ids) {
    std::vector<Cylinder> cyls;
    for (RequestId id : ids) cyls.push_back(batch[id].cylinder);
    return cyls;
  };
  // Real C-SCAN tracks the moving head; the preset characterized all
  // requests at head 0, so compare the cylinder sequences.
  const auto preset_cyls = cylinders_of(DrainAll(**preset, 0));
  ScanScheduler real(ScanVariant::kCScan, 3832);
  for (const Request& r : batch) real.Enqueue(r, ctx);
  std::vector<Cylinder> real_cyls;
  DispatchContext rctx{.now = 0, .head = 0};
  while (auto r = real.Dispatch(rctx)) {
    real_cyls.push_back(r->cylinder);
    rctx.head = r->cylinder;
  }
  EXPECT_EQ(preset_cyls, real_cyls);
}

TEST(PresetScanEdfTest, DeadlineDominatesCylinder) {
  auto preset = CascadedSfcScheduler::Create(PresetScanEdf(3832, 1000.0));
  ASSERT_TRUE(preset.ok());
  DispatchContext ctx{.now = 0, .head = 0};
  Request urgent_far;
  urgent_far.id = 1;
  urgent_far.deadline = MsToSim(50);
  urgent_far.cylinder = 3800;
  Request relaxed_near;
  relaxed_near.id = 2;
  relaxed_near.deadline = MsToSim(950);
  relaxed_near.cylinder = 5;
  (*preset)->Enqueue(urgent_far, ctx);
  (*preset)->Enqueue(relaxed_near, ctx);
  EXPECT_EQ(DrainAll(**preset), (std::vector<RequestId>{1, 2}));
}

TEST(PresetScanEdfTest, SweepOrderAmongSimilarDeadlines) {
  auto preset = CascadedSfcScheduler::Create(PresetScanEdf(3832, 1000.0));
  ASSERT_TRUE(preset.ok());
  DispatchContext ctx{.now = 0, .head = 100};
  // Nearly identical deadlines, different cylinders: sweep order. (The
  // 490 ms base keeps all four inside one deadline partition; 500 ms
  // would straddle the partition boundary at exactly half the horizon.)
  for (RequestId i = 0; i < 4; ++i) {
    Request r;
    r.id = i;
    r.deadline = MsToSim(490.0) + static_cast<SimTime>(i);  // ~equal
    r.cylinder = static_cast<Cylinder>(3000 - i * 700);     // 3000,2300,1600,900
    (*preset)->Enqueue(r, ctx);
  }
  EXPECT_EQ(DrainAll(**preset, 100), (std::vector<RequestId>{3, 2, 1, 0}));
}

TEST(PresetStage1OnlyTest, WindowZeroIsFullyPreemptiveOnPriorities) {
  auto s = CascadedSfcScheduler::Create(PresetStage1Only("hilbert", 2, 4, 0.0));
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->dispatcher().config().discipline,
            QueueDiscipline::kConditionallyPreemptive);
  EXPECT_DOUBLE_EQ((*s)->dispatcher().config().window, 0.0);
}

TEST(PresetStage2CurveTest, XVariantIsEdfLike) {
  auto s = CascadedSfcScheduler::Create(
      PresetStage2Curve("cscan", /*deadline_major=*/true, 3, 0.0, 1000.0));
  ASSERT_TRUE(s.ok());
  DispatchContext ctx;
  Request urgent_lo;
  urgent_lo.id = 1;
  urgent_lo.deadline = MsToSim(100);
  urgent_lo.priorities.push_back(7);
  Request relaxed_hi;
  relaxed_hi.id = 2;
  relaxed_hi.deadline = MsToSim(900);
  relaxed_hi.priorities.push_back(0);
  (*s)->Enqueue(urgent_lo, ctx);
  (*s)->Enqueue(relaxed_hi, ctx);
  EXPECT_EQ(DrainAll(**s), (std::vector<RequestId>{1, 2}));
}

TEST(PresetStage2CurveTest, YVariantIsMultiQueueLike) {
  auto s = CascadedSfcScheduler::Create(
      PresetStage2Curve("cscan", /*deadline_major=*/false, 3, 0.0, 1000.0));
  ASSERT_TRUE(s.ok());
  DispatchContext ctx;
  Request urgent_lo;
  urgent_lo.id = 1;
  urgent_lo.deadline = MsToSim(100);
  urgent_lo.priorities.push_back(7);
  Request relaxed_hi;
  relaxed_hi.id = 2;
  relaxed_hi.deadline = MsToSim(900);
  relaxed_hi.priorities.push_back(0);
  (*s)->Enqueue(urgent_lo, ctx);
  (*s)->Enqueue(relaxed_hi, ctx);
  EXPECT_EQ(DrainAll(**s), (std::vector<RequestId>{2, 1}));
}

}  // namespace
}  // namespace csfc
