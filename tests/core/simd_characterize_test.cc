// Property tests pinning the SIMD characterization kernel to the scalar
// batch path, bit for bit. EncapsulatorConfig::simd selects the lane
// width (scalar / sse2 / avx2 / auto); the contract of PR 8 is that
// EVERY level produces byte-identical CValues to both the scalar-mode
// batch path and the per-request Characterize() oracle, on every config
// the fused gate accepts — including batch sizes that are not multiples
// of the lane width, empty and singleton batches, and the guard
// fallbacks (huge disks, out-of-range heads, rogue cylinders) where the
// kernel must quietly take the scalar route.
//
// EXPECT_EQ on doubles is deliberate throughout: approximate agreement
// would hide a reordered floating-point operation.
//
// These tests run under any CSFC_SIMD environment override: levels the
// override (or the CPU) rules out simply resolve lower, and identity
// must hold there too. Tests that set the process override themselves
// save and restore it so a pinned CI leg stays pinned.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "core/encapsulator.h"

namespace csfc {
namespace {

class OverrideGuard {
 public:
  OverrideGuard() : saved_(simd::OverrideMode()) {}
  ~OverrideGuard() { simd::SetOverride(saved_); }

 private:
  simd::Mode saved_;
};

constexpr simd::Mode kAllModes[] = {simd::Mode::kScalar, simd::Mode::kSse2,
                                    simd::Mode::kAvx2, simd::Mode::kAuto};

Request RandomRequest(Rng& rng, const EncapsulatorConfig& cfg, RequestId id,
                      SimTime now) {
  Request r;
  r.id = id;
  r.arrival = now;
  switch (rng.Uniform(5)) {
    case 0:
      r.deadline = kNoDeadline;
      break;
    case 1:
      // Past due (the kernel zeroes dl with a mask, scalar with a branch).
      r.deadline = now - static_cast<SimTime>(rng.Uniform(50 * kMillisecond));
      break;
    case 2:
      // Exactly `now`: deadline <= now is the overdue edge.
      r.deadline = now;
      break;
    default:
      r.deadline = now + static_cast<SimTime>(rng.Uniform(2 * kSecond));
      break;
  }
  r.cylinder = static_cast<Cylinder>(rng.Uniform(cfg.cylinders));
  const uint32_t dims =
      static_cast<uint32_t>(rng.Uniform(cfg.priority_dims + 1));
  const uint32_t levels = 1u << cfg.priority_bits;
  for (uint32_t k = 0; k < dims; ++k) {
    r.priorities.push_back(static_cast<PriorityLevel>(rng.Uniform(levels)));
  }
  return r;
}

std::vector<Request> MakeBatch(Rng& rng, const EncapsulatorConfig& cfg,
                               SimTime now, size_t n) {
  std::vector<Request> reqs;
  reqs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    reqs.push_back(RandomRequest(rng, cfg, static_cast<RequestId>(i), now));
  }
  return reqs;
}

// Characterizes `reqs` under every simd mode and checks each result
// vector, element by element, against the forced-scalar batch and the
// per-request oracle of the scalar encapsulator.
void ExpectAllModesMatchScalar(const EncapsulatorConfig& base,
                               const std::vector<Request>& reqs,
                               const DispatchContext& ctx) {
  std::vector<const Request*> ptrs;
  for (const Request& r : reqs) ptrs.push_back(&r);

  EncapsulatorConfig cfg = base;
  cfg.simd = simd::Mode::kScalar;
  // Build the reference under a temporarily-forced scalar override so it
  // is genuinely scalar even when an ambient CSFC_SIMD override pins a
  // SIMD level (the ubsan CI leg runs this suite under CSFC_SIMD=avx2;
  // the comparison arms below still honor that ambient override).
  const simd::Mode ambient = simd::OverrideMode();
  simd::SetOverride(simd::Mode::kScalar);
  auto scalar_created = Encapsulator::Create(cfg);
  simd::SetOverride(ambient);
  ASSERT_TRUE(scalar_created.ok()) << scalar_created.status().message();
  const Encapsulator& scalar_enc = **scalar_created;
  ASSERT_EQ(scalar_enc.simd_level(), simd::Level::kScalar);

  std::vector<CValue> want(reqs.size());
  scalar_enc.CharacterizeBatch(ptrs, ctx, want);
  for (size_t i = 0; i < reqs.size(); ++i) {
    ASSERT_EQ(want[i], scalar_enc.Characterize(reqs[i], ctx))
        << "scalar batch vs oracle, request " << i;
  }

  for (const simd::Mode mode : kAllModes) {
    cfg.simd = mode;
    auto created = Encapsulator::Create(cfg);
    ASSERT_TRUE(created.ok()) << created.status().message();
    const Encapsulator& enc = **created;
    // The resolved level is the clamped request — under a CSFC_SIMD
    // override or on an older CPU this may be lower than `mode`.
    EXPECT_EQ(enc.simd_level(), simd::Resolve(mode));

    std::vector<CValue> got(reqs.size(), -1.0);
    enc.CharacterizeBatch(ptrs, ctx, got);
    for (size_t i = 0; i < reqs.size(); ++i) {
      EXPECT_EQ(got[i], want[i])
          << simd::ModeName(mode) << " (resolved "
          << simd::LevelName(enc.simd_level()) << "), request " << i << " of "
          << reqs.size() << ", cylinder " << reqs[i].cylinder << ", deadline "
          << reqs[i].deadline;
    }
  }
}

// A random config inside the fused-kernel gate (stage2 formula, stage3
// partitioned C-SCAN): the shapes where the SIMD path actually runs.
EncapsulatorConfig RandomFusedConfig(uint64_t seed) {
  Rng rng(seed);
  EncapsulatorConfig cfg;
  cfg.stage1_enabled = rng.Uniform(4) != 0;
  cfg.sfc1 = rng.Uniform(2) == 0 ? "hilbert" : "zorder";
  cfg.priority_dims = static_cast<uint32_t>(1 + rng.Uniform(3));
  cfg.priority_bits = static_cast<uint32_t>(2 + rng.Uniform(3));
  cfg.stage2_mode = Stage2Mode::kFormula;
  cfg.f = 0.25 * static_cast<double>(1 + rng.Uniform(8));
  switch (rng.Uniform(3)) {
    case 0: cfg.stage2_tie = Stage2TieBreak::kNone; break;
    case 1: cfg.stage2_tie = Stage2TieBreak::kEarliestDeadline; break;
    default: cfg.stage2_tie = Stage2TieBreak::kHighestPriority; break;
  }
  cfg.deadline_horizon_ms = 200.0 * static_cast<double>(1 + rng.Uniform(10));
  cfg.stage3_mode = Stage3Mode::kPartitionedCScan;
  // partitions_r = 1 exercises the magic = 2^32 special case (p_s == 1
  // when stage3_bits is small relative to R is impossible, but R itself
  // drives p_s = ceil(max_x / R); keep a spread).
  cfg.partitions_r = static_cast<uint32_t>(1 + rng.Uniform(8));
  cfg.stage3_bits = static_cast<uint32_t>(4 + rng.Uniform(5));
  cfg.cylinders = static_cast<uint32_t>(100 + rng.Uniform(4000));
  cfg.enable_lut = rng.Uniform(2) == 0;
  return cfg;
}

TEST(SimdCharacterizeTest, AllLevelsMatchScalarAcrossRandomConfigs) {
  for (uint64_t seed = 0; seed < 16; ++seed) {
    const EncapsulatorConfig cfg = RandomFusedConfig(seed);
    Rng rng(seed * 7919 + 3);
    const SimTime now = MsToSim(500.0);
    const DispatchContext ctx{
        .now = now,
        .head = static_cast<Cylinder>(rng.Uniform(cfg.cylinders))};
    const std::vector<Request> reqs = MakeBatch(rng, cfg, now, 257);
    ExpectAllModesMatchScalar(cfg, reqs, ctx);
  }
}

// Lane-remainder sweep: every residue class mod 4 (the widest lane
// count) plus empty, singleton, and one-past-a-block sizes. The kernel's
// main loop must hand exactly the right tail to the scalar remainder.
TEST(SimdCharacterizeTest, LaneRemaindersAndDegenerateBatches) {
  const size_t sizes[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 15, 31, 33, 64, 65, 100};
  for (uint64_t seed = 0; seed < 4; ++seed) {
    const EncapsulatorConfig cfg = RandomFusedConfig(seed + 100);
    Rng rng(seed * 131 + 17);
    const SimTime now = MsToSim(250.0);
    const DispatchContext ctx{
        .now = now,
        .head = static_cast<Cylinder>(rng.Uniform(cfg.cylinders))};
    for (const size_t n : sizes) {
      const std::vector<Request> reqs = MakeBatch(rng, cfg, now, n);
      ExpectAllModesMatchScalar(cfg, reqs, ctx);
    }
  }
}

// The non-fused stage modes fall back to the generic three-pass batch
// path; the simd field must be inert there (identity trivially holds,
// but the sweep guards against someone wiring the SIMD kernel into a
// shape it was not built for).
TEST(SimdCharacterizeTest, NonFusedModesUnaffectedBySimdField) {
  for (const Stage2Mode m2 : {Stage2Mode::kDisabled, Stage2Mode::kCurve}) {
    EncapsulatorConfig cfg;
    cfg.stage2_mode = m2;
    cfg.stage3_mode = Stage3Mode::kCurve;
    Rng rng(static_cast<uint64_t>(m2) + 55);
    const SimTime now = MsToSim(100.0);
    const DispatchContext ctx{
        .now = now,
        .head = static_cast<Cylinder>(rng.Uniform(cfg.cylinders))};
    const std::vector<Request> reqs = MakeBatch(rng, cfg, now, 65);
    ExpectAllModesMatchScalar(cfg, reqs, ctx);
  }
}

// CSFC_SIMD=scalar semantics via SetOverride: the override beats the
// config request, so every encapsulator resolves to the scalar level
// and still matches the oracle.
TEST(SimdCharacterizeTest, ForcedScalarOverrideWinsOverConfig) {
  OverrideGuard guard;
  simd::SetOverride(simd::Mode::kScalar);

  EncapsulatorConfig cfg = RandomFusedConfig(7);
  cfg.simd = simd::Mode::kAuto;
  auto created = Encapsulator::Create(cfg);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ((*created)->simd_level(), simd::Level::kScalar);
  EXPECT_STREQ((*created)->simd_backend(), "scalar");

  cfg.simd = simd::Mode::kAvx2;  // explicit request loses to the override
  auto forced = Encapsulator::Create(cfg);
  ASSERT_TRUE(forced.ok());
  EXPECT_EQ((*forced)->simd_level(), simd::Level::kScalar);

  Rng rng(1234);
  const SimTime now = MsToSim(500.0);
  const DispatchContext ctx{
      .now = now, .head = static_cast<Cylinder>(rng.Uniform(cfg.cylinders))};
  const std::vector<Request> reqs = MakeBatch(rng, cfg, now, 97);
  std::vector<const Request*> ptrs;
  for (const Request& r : reqs) ptrs.push_back(&r);
  std::vector<CValue> got(reqs.size());
  (*forced)->CharacterizeBatch(ptrs, ctx, got);
  for (size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(got[i], (*forced)->Characterize(reqs[i], ctx)) << i;
  }
}

// The resolved level is latched at Create(): flipping the override
// afterwards must not change an existing encapsulator's path.
TEST(SimdCharacterizeTest, ResolvedLevelIsLatchedAtCreate) {
  OverrideGuard guard;
  simd::SetOverride(simd::Mode::kAuto);
  EncapsulatorConfig cfg;
  auto created = Encapsulator::Create(cfg);
  ASSERT_TRUE(created.ok());
  const simd::Level at_create = (*created)->simd_level();
  simd::SetOverride(simd::Mode::kScalar);
  EXPECT_EQ((*created)->simd_level(), at_create);
}

// Guard fallbacks: configs and contexts outside the SIMD eligibility
// envelope must silently take the scalar route and agree with the
// oracle exactly.

TEST(SimdCharacterizeTest, HugeDiskFallsBackToScalarPath) {
  // cylinders > 2^30 breaks the f64-exactness bound the lane math
  // relies on, so the batch must run scalar regardless of simd level.
  EncapsulatorConfig cfg = RandomFusedConfig(11);
  cfg.cylinders = (uint32_t{1} << 30) + 12345;
  Rng rng(42);
  const SimTime now = MsToSim(500.0);
  const DispatchContext ctx{
      .now = now, .head = static_cast<Cylinder>(rng.Uniform(cfg.cylinders))};
  const std::vector<Request> reqs = MakeBatch(rng, cfg, now, 70);
  ExpectAllModesMatchScalar(cfg, reqs, ctx);
}

TEST(SimdCharacterizeTest, OutOfRangeHeadFallsBackToScalarPath) {
  // DispatchContext.head >= cylinders would underflow the i32 C-SCAN
  // wrap; the batch guard must catch it.
  const EncapsulatorConfig cfg = RandomFusedConfig(12);
  Rng rng(43);
  const SimTime now = MsToSim(500.0);
  const DispatchContext ctx{.now = now,
                            .head = static_cast<Cylinder>(cfg.cylinders + 7)};
  const std::vector<Request> reqs = MakeBatch(rng, cfg, now, 70);
  ExpectAllModesMatchScalar(cfg, reqs, ctx);
}

TEST(SimdCharacterizeTest, RogueCylinderBlocksFallBackPerChunk) {
  // Requests whose cylinder has bit 30+ set (out of range for any
  // plausible config, but nothing in the scalar path forbids them)
  // poison only their own staging chunk: the kernel detects them while
  // marshalling and reroutes that chunk through the scalar fused loop.
  const EncapsulatorConfig cfg = RandomFusedConfig(13);
  Rng rng(44);
  const SimTime now = MsToSim(500.0);
  const DispatchContext ctx{
      .now = now, .head = static_cast<Cylinder>(rng.Uniform(cfg.cylinders))};
  std::vector<Request> reqs = MakeBatch(rng, cfg, now, 130);
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (i % 17 == 0) {
      reqs[i].cylinder =
          static_cast<Cylinder>((uint32_t{1} << 30) + rng.Uniform(1u << 20));
    }
  }
  ExpectAllModesMatchScalar(cfg, reqs, ctx);
}

}  // namespace
}  // namespace csfc
