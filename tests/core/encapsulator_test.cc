#include "core/encapsulator.h"

#include <gtest/gtest.h>

#include "sfc/registry.h"

namespace csfc {
namespace {

Request Req(std::initializer_list<PriorityLevel> pris,
            SimTime deadline = kNoDeadline, Cylinder cyl = 0) {
  Request r;
  for (PriorityLevel p : pris) r.priorities.push_back(p);
  r.deadline = deadline;
  r.cylinder = cyl;
  return r;
}

std::unique_ptr<Encapsulator> Make(const EncapsulatorConfig& c) {
  auto e = Encapsulator::Create(c);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(*e);
}

TEST(EncapsulatorConfigTest, ValidationCatchesBadConfigs) {
  EncapsulatorConfig c;
  c.sfc1 = "nope";
  EXPECT_FALSE(c.Validate().ok());
  c = EncapsulatorConfig();
  c.priority_dims = 16;
  c.priority_bits = 16;  // 256 bits > 62
  EXPECT_FALSE(c.Validate().ok());
  c = EncapsulatorConfig();
  c.f = -1.0;
  EXPECT_FALSE(c.Validate().ok());
  c = EncapsulatorConfig();
  c.stage2_mode = Stage2Mode::kCurve;
  c.sfc2 = "nope";
  EXPECT_FALSE(c.Validate().ok());
  c = EncapsulatorConfig();
  c.deadline_horizon_ms = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = EncapsulatorConfig();
  c.stage3_mode = Stage3Mode::kPartitionedCScan;
  c.partitions_r = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = EncapsulatorConfig();
  c.stage3_mode = Stage3Mode::kCurve;
  c.sfc3 = "nope";
  EXPECT_FALSE(c.Validate().ok());
  EXPECT_TRUE(EncapsulatorConfig().Validate().ok());
}

TEST(EncapsulatorConfigTest, SignatureCoversCurveModes) {
  EncapsulatorConfig c;
  c.stage1_enabled = false;
  c.priority_dims = 0;
  c.stage2_mode = Stage2Mode::kCurve;
  c.sfc2 = "hilbert";
  c.stage2_deadline_major = true;
  c.stage3_mode = Stage3Mode::kCurve;
  c.sfc3 = "peano";
  const std::string sig = c.Signature();
  EXPECT_NE(sig.find("hilbert(dl-major)"), std::string::npos);
  EXPECT_NE(sig.find("peano"), std::string::npos);
  EXPECT_EQ(sig.find("R="), std::string::npos);
}

TEST(EncapsulatorConfigTest, SignatureDescribesStages) {
  EncapsulatorConfig c;
  c.sfc1 = "hilbert";
  c.stage2_mode = Stage2Mode::kDisabled;
  c.stage3_mode = Stage3Mode::kPartitionedCScan;
  c.partitions_r = 3;
  const std::string sig = c.Signature();
  EXPECT_NE(sig.find("hilbert"), std::string::npos);
  EXPECT_NE(sig.find("off"), std::string::npos);
  EXPECT_NE(sig.find("R=3"), std::string::npos);
}

// --- Stage 1 ------------------------------------------------------------------

TEST(Stage1Test, MatchesCurveIndexNormalization) {
  EncapsulatorConfig c;
  c.sfc1 = "hilbert";
  c.priority_dims = 3;
  c.priority_bits = 4;
  c.stage2_mode = Stage2Mode::kDisabled;
  c.stage3_mode = Stage3Mode::kDisabled;
  auto e = Make(c);
  auto curve = MakeCurve("hilbert", GridSpec{.dims = 3, .bits = 4});
  ASSERT_TRUE(curve.ok());
  DispatchContext ctx;
  const Request r = Req({3, 7, 12});
  const std::vector<uint32_t> p{3, 7, 12};
  EXPECT_DOUBLE_EQ(e->Characterize(r, ctx),
                   static_cast<double>((*curve)->IndexOf(p)) /
                       static_cast<double>((*curve)->num_cells()));
}

TEST(Stage1Test, AllZeroPointIsMostImportant) {
  for (auto name : AllCurveNames()) {
    EncapsulatorConfig c;
    c.sfc1 = std::string(name);
    c.priority_dims = 2;
    c.priority_bits = 3;
    c.stage2_mode = Stage2Mode::kDisabled;
    c.stage3_mode = Stage3Mode::kDisabled;
    auto e = Make(c);
    DispatchContext ctx;
    // Not all curves start at the origin (spiral starts at the center),
    // but the value must always be a valid position in [0, 1).
    const CValue v = e->Characterize(Req({0, 0}), ctx);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Stage1Test, DisabledPassesThroughSinglePriority) {
  EncapsulatorConfig c;
  c.stage1_enabled = false;
  c.priority_dims = 1;
  c.priority_bits = 3;  // 8 levels
  c.stage2_mode = Stage2Mode::kDisabled;
  c.stage3_mode = Stage3Mode::kDisabled;
  auto e = Make(c);
  DispatchContext ctx;
  EXPECT_DOUBLE_EQ(e->Characterize(Req({0}), ctx), 0.0);
  EXPECT_DOUBLE_EQ(e->Characterize(Req({4}), ctx), 0.5);
  EXPECT_DOUBLE_EQ(e->Characterize(Req({7}), ctx), 7.0 / 8.0);
}

TEST(Stage1Test, OutOfRangeLevelsClamp) {
  EncapsulatorConfig c;
  c.priority_dims = 2;
  c.priority_bits = 2;  // levels 0..3
  c.stage2_mode = Stage2Mode::kDisabled;
  c.stage3_mode = Stage3Mode::kDisabled;
  auto e = Make(c);
  DispatchContext ctx;
  EXPECT_DOUBLE_EQ(e->Characterize(Req({9, 9}), ctx),
                   e->Characterize(Req({3, 3}), ctx));
}

TEST(Stage1Test, NoPrioritiesYieldsZero) {
  EncapsulatorConfig c;
  c.stage1_enabled = false;
  c.priority_dims = 0;
  c.stage2_mode = Stage2Mode::kDisabled;
  c.stage3_mode = Stage3Mode::kDisabled;
  auto e = Make(c);
  DispatchContext ctx;
  EXPECT_DOUBLE_EQ(e->Characterize(Req({}), ctx), 0.0);
}

// --- Stage 2 (formula) ----------------------------------------------------------

EncapsulatorConfig Stage2FormulaConfig(double f) {
  EncapsulatorConfig c;
  c.sfc1 = "cscan";  // 1-D identity over levels
  c.priority_dims = 1;
  c.priority_bits = 4;
  c.stage2_mode = Stage2Mode::kFormula;
  c.f = f;
  c.stage2_tie = Stage2TieBreak::kNone;
  c.deadline_horizon_ms = 1000.0;
  c.stage3_mode = Stage3Mode::kDisabled;
  return c;
}

TEST(Stage2FormulaTest, FZeroIgnoresDeadline) {
  auto e = Make(Stage2FormulaConfig(0.0));
  DispatchContext ctx;
  const CValue urgent = e->Characterize(Req({8}, MsToSim(10)), ctx);
  const CValue relaxed = e->Characterize(Req({8}, MsToSim(900)), ctx);
  EXPECT_DOUBLE_EQ(urgent, relaxed);
}

TEST(Stage2FormulaTest, LargeFIgnoresPriority) {
  auto e = Make(Stage2FormulaConfig(1e9));
  DispatchContext ctx;
  const CValue hi_pri = e->Characterize(Req({0}, MsToSim(500)), ctx);
  const CValue lo_pri = e->Characterize(Req({15}, MsToSim(500)), ctx);
  EXPECT_NEAR(hi_pri, lo_pri, 1e-6);
  // ...but the deadline still separates requests.
  const CValue urgent = e->Characterize(Req({15}, MsToSim(10)), ctx);
  EXPECT_LT(urgent, hi_pri);
}

TEST(Stage2FormulaTest, BalancedFTradesOff) {
  auto e = Make(Stage2FormulaConfig(1.0));
  DispatchContext ctx;
  // Equal blend: (priority + deadline) / 2. A top-priority late request
  // and a low-priority urgent request meet in the middle.
  const CValue a = e->Characterize(Req({0}, MsToSim(900)), ctx);
  const CValue b = e->Characterize(Req({15}, MsToSim(50)), ctx);
  EXPECT_NEAR(a, b, 0.1);
}

TEST(Stage2FormulaTest, UrgencyGrowsAsTimePasses) {
  auto e = Make(Stage2FormulaConfig(1.0));
  const Request r = Req({8}, MsToSim(800));
  DispatchContext early{.now = 0, .head = 0};
  DispatchContext late{.now = MsToSim(700), .head = 0};
  EXPECT_LT(e->Characterize(r, late), e->Characterize(r, early));
}

TEST(Stage2FormulaTest, TieBreakByDeadline) {
  EncapsulatorConfig c = Stage2FormulaConfig(0.0);
  c.stage2_tie = Stage2TieBreak::kEarliestDeadline;
  auto e = Make(c);
  DispatchContext ctx;
  const CValue urgent = e->Characterize(Req({8}, MsToSim(10)), ctx);
  const CValue relaxed = e->Characterize(Req({8}, MsToSim(900)), ctx);
  EXPECT_LT(urgent, relaxed);  // same primary key, tie goes to urgency
  // The tie-break must never flip a real priority difference.
  const CValue better = e->Characterize(Req({7}, MsToSim(990)), ctx);
  EXPECT_LT(better, urgent);
}

TEST(Stage2FormulaTest, RelaxedDeadlineSortsLast) {
  auto e = Make(Stage2FormulaConfig(1e9));
  DispatchContext ctx;
  const CValue with_dl = e->Characterize(Req({8}, MsToSim(999)), ctx);
  const CValue relaxed = e->Characterize(Req({8}), ctx);
  EXPECT_LE(with_dl, relaxed);
}

// --- Stage 2 (curve) -------------------------------------------------------------

TEST(Stage2CurveTest, DeadlineMajorActsLikeEdf) {
  EncapsulatorConfig c;
  c.stage1_enabled = false;
  c.priority_dims = 1;
  c.priority_bits = 3;
  c.stage2_mode = Stage2Mode::kCurve;
  c.sfc2 = "cscan";
  c.stage2_deadline_major = true;
  c.stage2_bits = 8;
  c.deadline_horizon_ms = 1000.0;
  c.stage3_mode = Stage3Mode::kDisabled;
  auto e = Make(c);
  DispatchContext ctx;
  // Earlier deadline wins regardless of priority.
  const CValue urgent_lo = e->Characterize(Req({7}, MsToSim(100)), ctx);
  const CValue relaxed_hi = e->Characterize(Req({0}, MsToSim(900)), ctx);
  EXPECT_LT(urgent_lo, relaxed_hi);
}

TEST(Stage2CurveTest, PriorityMajorActsLikeMultiQueue) {
  EncapsulatorConfig c;
  c.stage1_enabled = false;
  c.priority_dims = 1;
  c.priority_bits = 3;
  c.stage2_mode = Stage2Mode::kCurve;
  c.sfc2 = "cscan";
  c.stage2_deadline_major = false;
  c.stage2_bits = 8;
  c.deadline_horizon_ms = 1000.0;
  c.stage3_mode = Stage3Mode::kDisabled;
  auto e = Make(c);
  DispatchContext ctx;
  // Higher priority wins regardless of deadline.
  const CValue hi_late = e->Characterize(Req({0}, MsToSim(900)), ctx);
  const CValue lo_urgent = e->Characterize(Req({7}, MsToSim(10)), ctx);
  EXPECT_LT(hi_late, lo_urgent);
  // Within a priority level, earlier deadline wins.
  const CValue hi_urgent = e->Characterize(Req({0}, MsToSim(10)), ctx);
  EXPECT_LT(hi_urgent, hi_late);
}

// --- Stage 3 --------------------------------------------------------------------

EncapsulatorConfig Stage3Config(uint32_t r_parts) {
  EncapsulatorConfig c;
  c.stage1_enabled = false;
  c.priority_dims = 1;
  c.priority_bits = 4;
  c.stage2_mode = Stage2Mode::kDisabled;
  c.stage3_mode = Stage3Mode::kPartitionedCScan;
  c.partitions_r = r_parts;
  c.stage3_bits = 4;
  c.cylinders = 1000;
  return c;
}

TEST(Stage3Test, R1IsAPureCylinderSweep) {
  auto e = Make(Stage3Config(1));
  DispatchContext ctx{.now = 0, .head = 100};
  // With one partition the order is forward C-SCAN distance, priorities
  // only break cylinder ties.
  const CValue near_lo = e->Characterize(Req({15}, kNoDeadline, 150), ctx);
  const CValue far_hi = e->Characterize(Req({0}, kNoDeadline, 800), ctx);
  EXPECT_LT(near_lo, far_hi);
  const CValue same_cyl_hi = e->Characterize(Req({0}, kNoDeadline, 150), ctx);
  EXPECT_LT(same_cyl_hi, near_lo);  // tie on cylinder -> priority decides
}

TEST(Stage3Test, WrapDistanceOrdersBehindHeadLast) {
  auto e = Make(Stage3Config(1));
  DispatchContext ctx{.now = 0, .head = 500};
  const CValue ahead = e->Characterize(Req({8}, kNoDeadline, 600), ctx);
  const CValue behind = e->Characterize(Req({8}, kNoDeadline, 400), ctx);
  EXPECT_LT(ahead, behind);
}

TEST(Stage3Test, LargeRSeparatesPriorityPartitions) {
  // R = 16 with a 16-cell x-axis: every priority level is its own
  // partition; priority dominates cylinder distance entirely.
  auto e = Make(Stage3Config(16));
  DispatchContext ctx{.now = 0, .head = 100};
  const CValue hi_far = e->Characterize(Req({0}, kNoDeadline, 900), ctx);
  const CValue lo_near = e->Characterize(Req({15}, kNoDeadline, 101), ctx);
  EXPECT_LT(hi_far, lo_near);
}

TEST(Stage3Test, WithinPartitionSweepOrderHolds) {
  auto e = Make(Stage3Config(2));
  DispatchContext ctx{.now = 0, .head = 0};
  // Levels 0..7 share partition 0; among them distance decides.
  const CValue lvl3_near = e->Characterize(Req({3}, kNoDeadline, 10), ctx);
  const CValue lvl1_far = e->Characterize(Req({1}, kNoDeadline, 990), ctx);
  EXPECT_LT(lvl3_near, lvl1_far);
  // Levels 8..15 form partition 1, always after partition 0.
  const CValue lvl8_near = e->Characterize(Req({8}, kNoDeadline, 10), ctx);
  EXPECT_LT(lvl1_far, lvl8_near);
}

TEST(Stage3Test, CurveModeProducesValidValues) {
  EncapsulatorConfig c = Stage3Config(1);
  c.stage3_mode = Stage3Mode::kCurve;
  c.sfc3 = "hilbert";
  c.stage3_bits = 6;
  auto e = Make(c);
  DispatchContext ctx{.now = 0, .head = 123};
  for (Cylinder cyl : {0u, 250u, 500u, 999u}) {
    const CValue v = e->Characterize(Req({5}, kNoDeadline, cyl), ctx);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(EncapsulatorTest, ValuesAlwaysInUnitInterval) {
  EncapsulatorConfig c;
  c.sfc1 = "hilbert";
  c.priority_dims = 3;
  c.priority_bits = 4;
  c.stage2_mode = Stage2Mode::kFormula;
  c.f = 1.0;
  c.stage3_mode = Stage3Mode::kPartitionedCScan;
  c.partitions_r = 3;
  c.cylinders = 3832;
  auto e = Make(c);
  for (uint32_t p = 0; p < 16; p += 5) {
    for (Cylinder cyl = 0; cyl < 3832; cyl += 501) {
      DispatchContext ctx{.now = MsToSim(100), .head = 2000};
      const CValue v =
          e->Characterize(Req({p, 15 - p, p / 2}, MsToSim(150 + p), cyl), ctx);
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

}  // namespace
}  // namespace csfc
