// Batch re-characterization: the dispatcher's RekeyWaiting hook and the
// Cascaded-SFC scheduler's recharacterize-on-swap behavior, which keeps
// each batch's SFC3 cylinder sweep coherent with the actual head position.

#include <gtest/gtest.h>

#include "core/cascaded_scheduler.h"
#include "core/dispatcher.h"
#include "core/presets.h"

namespace csfc {
namespace {

Request Req(RequestId id, Cylinder cyl = 0) {
  Request r;
  r.id = id;
  r.cylinder = cyl;
  return r;
}

TEST(RekeyWaitingTest, ReordersWaitingQueue) {
  DispatcherConfig c;
  c.discipline = QueueDiscipline::kNonPreemptive;
  auto d = Dispatcher::Create(c);
  ASSERT_TRUE(d.ok());
  d->Insert(0.1, Req(1));
  d->Insert(0.2, Req(2));
  EXPECT_TRUE(d->NeedsSwapForPop());
  // Invert the keys: id 2 now beats id 1.
  d->RekeyWaiting([](const Request& r) { return r.id == 2 ? 0.05 : 0.5; });
  EXPECT_EQ(d->Pop()->id, 2u);
  EXPECT_EQ(d->Pop()->id, 1u);
}

TEST(RekeyWaitingTest, PreservesFifoAmongTies) {
  DispatcherConfig c;
  c.discipline = QueueDiscipline::kNonPreemptive;
  auto d = Dispatcher::Create(c);
  ASSERT_TRUE(d.ok());
  d->Insert(0.9, Req(1));
  d->Insert(0.1, Req(2));
  d->RekeyWaiting([](const Request&) { return 0.5; });  // all tie
  EXPECT_EQ(d->Pop()->id, 1u);  // insertion order breaks the tie
  EXPECT_EQ(d->Pop()->id, 2u);
}

TEST(RekeyWaitingTest, NeedsSwapOnlyWhenActiveEmptyAndWaitingNot) {
  DispatcherConfig c;
  c.discipline = QueueDiscipline::kFullyPreemptive;
  auto d = Dispatcher::Create(c);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->NeedsSwapForPop());  // both empty
  d->Insert(0.5, Req(1));              // fully-preemptive -> active
  EXPECT_FALSE(d->NeedsSwapForPop());  // active nonempty
}

TEST(RecharacterizeTest, SweepFollowsTheHeadAcrossBatches) {
  // Stage-3-only scheduler with one sweep per batch. The first batch is
  // characterized around head 0; after it drains the head sits at 3000,
  // and the second batch must sweep forward from there: cylinder 3100
  // (ahead of the head) before cylinder 100 (behind, reached after wrap).
  CascadedConfig cfg = PresetCScan(3832);
  cfg.recharacterize_on_swap = true;
  auto s = CascadedSfcScheduler::Create(cfg);
  ASSERT_TRUE(s.ok());
  DispatchContext ctx{.now = 0, .head = 0};
  (*s)->Enqueue(Req(1, 3000), ctx);
  EXPECT_EQ((*s)->Dispatch(ctx)->id, 1u);
  ctx.head = 3000;  // the simulator moved the head
  (*s)->Enqueue(Req(2, 100), ctx);
  (*s)->Enqueue(Req(3, 3100), ctx);
  EXPECT_EQ((*s)->Dispatch(ctx)->id, 3u);
  EXPECT_EQ((*s)->Dispatch(ctx)->id, 2u);
}

TEST(RecharacterizeTest, DisabledKeepsEnqueueTimeOrder) {
  // Same scenario with re-characterization off: both requests were keyed
  // relative to head 0 at enqueue... but ctx.head was already 3000 at
  // enqueue here, so key them against an explicitly stale head instead.
  CascadedConfig cfg = PresetCScan(3832);
  cfg.recharacterize_on_swap = false;
  auto s = CascadedSfcScheduler::Create(cfg);
  ASSERT_TRUE(s.ok());
  DispatchContext at_zero{.now = 0, .head = 0};
  (*s)->Enqueue(Req(1, 3000), at_zero);
  EXPECT_EQ((*s)->Dispatch(at_zero)->id, 1u);
  // Enqueue while the scheduler still believes the head is at 0.
  (*s)->Enqueue(Req(2, 100), at_zero);
  (*s)->Enqueue(Req(3, 3100), at_zero);
  DispatchContext at_3000{.now = 0, .head = 3000};
  // Without rekeying, distances from head 0 rule: 100 before 3100.
  EXPECT_EQ((*s)->Dispatch(at_3000)->id, 2u);
  EXPECT_EQ((*s)->Dispatch(at_3000)->id, 3u);
}

TEST(RecharacterizeTest, SkippedForPriorityOnlyConfigurations) {
  // Stage-1-only schedulers have context-free values; the flag is moot
  // and must not change behavior.
  CascadedConfig cfg = PresetStage1Only("hilbert", 2, 4, 0.05);
  cfg.recharacterize_on_swap = true;
  auto a = CascadedSfcScheduler::Create(cfg);
  cfg.recharacterize_on_swap = false;
  auto b = CascadedSfcScheduler::Create(cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  DispatchContext ctx;
  for (RequestId i = 0; i < 20; ++i) {
    Request r;
    r.id = i;
    r.priorities = PriorityVec{static_cast<PriorityLevel>((i * 7) % 16),
                               static_cast<PriorityLevel>((i * 3) % 16)};
    (*a)->Enqueue(r, ctx);
    (*b)->Enqueue(r, ctx);
  }
  while ((*a)->queue_size() > 0) {
    EXPECT_EQ((*a)->Dispatch(ctx)->id, (*b)->Dispatch(ctx)->id);
  }
}

TEST(RecharacterizeTest, UrgencyRefreshesWithTime) {
  // Stage-2 formula: a request's deadline urgency is recomputed when the
  // batch forms, so a request that aged in q' ranks as urgent.
  CascadedConfig cfg;
  cfg.encapsulator.stage1_enabled = false;
  cfg.encapsulator.priority_dims = 0;
  cfg.encapsulator.stage2_mode = Stage2Mode::kFormula;
  cfg.encapsulator.f = 1e6;
  cfg.encapsulator.stage2_tie = Stage2TieBreak::kNone;
  cfg.encapsulator.deadline_horizon_ms = 1000.0;
  cfg.encapsulator.stage3_mode = Stage3Mode::kDisabled;
  cfg.dispatcher.discipline = QueueDiscipline::kNonPreemptive;
  cfg.recharacterize_on_swap = true;
  auto s = CascadedSfcScheduler::Create(cfg);
  ASSERT_TRUE(s.ok());
  Request a;
  a.id = 1;
  a.deadline = MsToSim(1200);  // beyond the horizon at t=0: clamped
  Request b;
  b.id = 2;
  b.deadline = MsToSim(1100);  // also clamped at t=0 -> tie at enqueue
  DispatchContext t0{.now = 0, .head = 0};
  (*s)->Enqueue(a, t0);
  (*s)->Enqueue(b, t0);
  // By t=500ms both are inside the horizon and b is strictly earlier.
  DispatchContext t500{.now = MsToSim(500), .head = 0};
  EXPECT_EQ((*s)->Dispatch(t500)->id, 2u);
  EXPECT_EQ((*s)->Dispatch(t500)->id, 1u);
}

}  // namespace
}  // namespace csfc
