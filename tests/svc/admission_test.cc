// AdmissionController unit coverage: config validation, the token-bucket
// rate gate (burst, refill, per-stream isolation), the SCAN-tour wait
// oracle, and the accounting reconciliation identity
// offered == admitted + rejected_rate + rejected_load + rejected_ring_full.

#include <gtest/gtest.h>

#include <limits>

#include "common/types.h"
#include "svc/admission.h"

namespace csfc {
namespace svc {
namespace {

TEST(AdmissionConfigTest, ValidatesRanges) {
  AdmissionConfig ok;
  EXPECT_TRUE(ok.Validate().ok());

  AdmissionConfig zero_streams;
  zero_streams.max_streams = 0;
  EXPECT_FALSE(zero_streams.Validate().ok());

  AdmissionConfig negative_rate;
  negative_rate.stream_rate_rps = -1.0;
  EXPECT_FALSE(negative_rate.Validate().ok());

  AdmissionConfig nan_slo;
  nan_slo.slo_wait_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(nan_slo.Validate().ok());

  AdmissionConfig negative_cost;
  negative_cost.fixed_cost_ms = -0.5;
  EXPECT_FALSE(negative_cost.Validate().ok());
}

TEST(AdmissionTest, DisabledGatesAdmitEverything) {
  AdmissionConfig cfg;  // rate 0, slo 0: both gates off
  AdmissionController c(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c.Admit(static_cast<uint32_t>(i), 0, 1u << 20),
              AdmitDecision::kAdmit);
    c.RecordAdmit();
  }
  EXPECT_EQ(c.counters().offered, 100u);
  EXPECT_EQ(c.counters().admitted, 100u);
  EXPECT_EQ(c.counters().rejected(), 0u);
}

TEST(AdmissionTest, TokenBucketShedsBeyondBurst) {
  AdmissionConfig cfg;
  cfg.stream_rate_rps = 10.0;
  cfg.stream_burst = 5.0;
  AdmissionController c(cfg);

  // Buckets start full: exactly `burst` offers pass at t=0, the rest shed.
  int admitted = 0, shed = 0;
  for (int i = 0; i < 8; ++i) {
    if (c.Admit(/*stream=*/0, /*now=*/0, /*queue_depth=*/0) ==
        AdmitDecision::kAdmit) {
      c.RecordAdmit();
      ++admitted;
    } else {
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(shed, 3);
  EXPECT_EQ(c.counters().rejected_rate, 3u);
}

TEST(AdmissionTest, TokenBucketRefillsAtConfiguredRate) {
  AdmissionConfig cfg;
  cfg.stream_rate_rps = 10.0;  // one token every 100 ms
  cfg.stream_burst = 1.0;
  AdmissionController c(cfg);

  EXPECT_EQ(c.Admit(0, MsToSim(0.0), 0), AdmitDecision::kAdmit);
  EXPECT_EQ(c.Admit(0, MsToSim(1.0), 0), AdmitDecision::kRejectRate);
  // 100 ms later one token has refilled; 50 ms after that only half a
  // token has, which is not enough.
  EXPECT_EQ(c.Admit(0, MsToSim(101.0), 0), AdmitDecision::kAdmit);
  EXPECT_EQ(c.Admit(0, MsToSim(151.0), 0), AdmitDecision::kRejectRate);
}

TEST(AdmissionTest, StreamsHaveIndependentBuckets) {
  AdmissionConfig cfg;
  cfg.stream_rate_rps = 1.0;
  cfg.stream_burst = 1.0;
  cfg.max_streams = 8;
  AdmissionController c(cfg);

  // Draining stream 0's bucket must not shed stream 1.
  EXPECT_EQ(c.Admit(0, 0, 0), AdmitDecision::kAdmit);
  EXPECT_EQ(c.Admit(0, 0, 0), AdmitDecision::kRejectRate);
  EXPECT_EQ(c.Admit(1, 0, 0), AdmitDecision::kAdmit);
  // Stream ids fold modulo max_streams: stream 8 shares bucket 0.
  EXPECT_EQ(c.Admit(8, 0, 0), AdmitDecision::kRejectRate);
}

TEST(AdmissionTest, WaitOracleIsLinearInDepth) {
  AdmissionConfig cfg;
  cfg.fixed_cost_ms = 2.0;
  cfg.sweep_cost_ms = 10.0;
  AdmissionController c(cfg);
  EXPECT_DOUBLE_EQ(c.PredictedWaitMs(0), 10.0);
  EXPECT_DOUBLE_EQ(c.PredictedWaitMs(1), 12.0);
  EXPECT_DOUBLE_EQ(c.PredictedWaitMs(100), 210.0);
}

TEST(AdmissionTest, LoadGateShedsWhenPredictedWaitExceedsSlo) {
  AdmissionConfig cfg;
  cfg.slo_wait_ms = 50.0;
  cfg.fixed_cost_ms = 1.0;
  cfg.sweep_cost_ms = 10.0;  // W(d) = d + 10
  AdmissionController c(cfg);

  EXPECT_EQ(c.Admit(0, 0, /*queue_depth=*/40), AdmitDecision::kAdmit);
  c.RecordAdmit();
  EXPECT_EQ(c.Admit(0, 0, /*queue_depth=*/41), AdmitDecision::kRejectLoad);
  EXPECT_EQ(c.counters().rejected_load, 1u);
}

TEST(AdmissionTest, AccountingReconcilesAcrossAllOutcomes) {
  AdmissionConfig cfg;
  cfg.stream_rate_rps = 5.0;
  cfg.stream_burst = 5.0;
  cfg.slo_wait_ms = 20.0;
  cfg.fixed_cost_ms = 1.0;
  cfg.sweep_cost_ms = 10.0;
  AdmissionController c(cfg);

  // A mixed workload: deep queues for some offers (load sheds), drained
  // buckets for others (rate sheds), and every fifth admitted offer
  // bouncing off a full ring.
  int ring_bounces = 0;
  for (int i = 0; i < 200; ++i) {
    const uint32_t stream = static_cast<uint32_t>(i % 3);
    const size_t depth = (i % 7 == 0) ? 50 : 2;
    const AdmitDecision d = c.Admit(stream, MsToSim(10.0 * i), depth);
    if (d == AdmitDecision::kAdmit) {
      if (++ring_bounces % 5 == 0) {
        c.RecordRingReject();
      } else {
        c.RecordAdmit();
      }
    }
  }

  const AdmissionController::Counters k = c.counters();
  EXPECT_EQ(k.offered, 200u);
  EXPECT_GT(k.admitted, 0u);
  EXPECT_GT(k.rejected_load, 0u);
  EXPECT_GT(k.rejected_ring_full, 0u);
  EXPECT_EQ(k.offered,
            k.admitted + k.rejected_rate + k.rejected_load +
                k.rejected_ring_full);
}

}  // namespace
}  // namespace svc
}  // namespace csfc
