// ServiceServer end-to-end coverage in deterministic virtual-time mode,
// plus a quick wall-clock sanity run (the concurrency stress lives in
// service_stress_test.cc for the TSan job).
//
// The load-bearing assertions here are the ISSUE acceptance criteria:
//  * dispatch order through the service front-end is bit-identical to the
//    offline simulator fed the same admitted set;
//  * RunVirtual twice -> bit-identical traces and stats;
//  * under seeded open-loop overload the admission gates hold the SLO and
//    the accounting identity reconciles.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/presets.h"
#include "exp/runner.h"
#include "exp/server_config.h"
#include "obs/recorder.h"
#include "obs/trace_event.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace csfc {
namespace svc {
namespace {

using obs::TraceEvent;
using obs::TraceEventKind;
using obs::TraceRecorder;

std::vector<Request> SyntheticTrace(uint64_t seed, uint64_t count,
                                    double interarrival_ms) {
  WorkloadConfig c;
  c.seed = seed;
  c.count = count;
  c.mean_interarrival_ms = interarrival_ms;
  c.priority_dims = 3;
  c.priority_levels = 16;
  c.deadline_lo_ms = 500;
  c.deadline_hi_ms = 700;
  auto gen = SyntheticGenerator::Create(c);
  EXPECT_TRUE(gen.ok());
  return DrainGenerator(**gen);
}

/// The shared base configuration: cascaded scheduler on the calendar
/// backend, no admission gates unless a test turns them on.
ServerConfig BaseConfig() {
  ServerConfig config;
  config.WithMetricsShape(3, 16)
      .WithCascaded(PresetFull("hilbert", 3, 4, 1.0, 3,
                               config.sim.disk.cylinders, 0.05, 700.0));
  return config;
}

/// Projects the (id, t) sequence of one event kind out of a recorder.
std::vector<std::pair<RequestId, SimTime>> EventsOfKind(
    const TraceRecorder& rec, TraceEventKind kind) {
  std::vector<std::pair<RequestId, SimTime>> out;
  for (const TraceEvent& e : rec.Events()) {
    if (e.kind == kind) out.emplace_back(e.id, e.t);
  }
  return out;
}

void ExpectSameEventStream(const TraceRecorder& a, const TraceRecorder& b) {
  const std::vector<TraceEvent> ea = a.Events();
  const std::vector<TraceEvent> eb = b.Events();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].kind, eb[i].kind) << "event " << i;
    EXPECT_EQ(ea[i].t, eb[i].t) << "event " << i;
    EXPECT_EQ(ea[i].id, eb[i].id) << "event " << i;
    EXPECT_EQ(ea[i].queue_depth, eb[i].queue_depth) << "event " << i;
    EXPECT_DOUBLE_EQ(ea[i].wait_ms, eb[i].wait_ms) << "event " << i;
    EXPECT_EQ(ea[i].reject, eb[i].reject) << "event " << i;
  }
}

void ExpectDispatchOrderMatchesOffline(std::optional<uint64_t> latency_seed) {
  const std::vector<Request> trace = SyntheticTrace(1207, 2000, 0.5);

  ServerConfig config = BaseConfig();
  config.sim.latency_seed = latency_seed;
  TraceRecorder service_rec(size_t{1} << 17);
  config.WithTraceSink(&service_rec);
  auto handle = MakeServer(config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const ServiceStats stats = handle->server->RunVirtual(trace);
  EXPECT_EQ(stats.admission.offered, trace.size());
  EXPECT_EQ(stats.admission.admitted, trace.size());  // gates off
  EXPECT_EQ(stats.dispatched, trace.size());
  EXPECT_EQ(stats.completions, trace.size());

  // Offline replay of the same (here: complete) admitted set, same
  // simulator config, scheduler built through the same registry path.
  SimulatorConfig sim = config.sim;
  TraceRecorder offline_rec(size_t{1} << 17);
  sim.trace_sink = &offline_rec;
  auto disk = DiskModel::Create(sim.disk);
  ASSERT_TRUE(disk.ok());
  auto factory = config.MakeFactory(*disk);
  ASSERT_TRUE(factory.ok()) << factory.status().ToString();
  auto metrics = RunSchedulerOnTrace(sim, trace, *factory);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  const auto service_dispatch =
      EventsOfKind(service_rec, TraceEventKind::kDispatch);
  const auto offline_dispatch =
      EventsOfKind(offline_rec, TraceEventKind::kDispatch);
  ASSERT_EQ(service_dispatch.size(), trace.size());
  ASSERT_EQ(service_dispatch.size(), offline_dispatch.size());
  for (size_t i = 0; i < service_dispatch.size(); ++i) {
    EXPECT_EQ(service_dispatch[i].first, offline_dispatch[i].first)
        << "dispatch " << i;
    EXPECT_EQ(service_dispatch[i].second, offline_dispatch[i].second)
        << "dispatch " << i;
  }
  // Completions (and therefore modeled service times) line up too.
  EXPECT_EQ(EventsOfKind(service_rec, TraceEventKind::kCompletion),
            EventsOfKind(offline_rec, TraceEventKind::kCompletion));
}

TEST(ServiceServerTest, VirtualDispatchOrderMatchesOfflineSimulator) {
  ExpectDispatchOrderMatchesOffline(std::nullopt);
}

TEST(ServiceServerTest, VirtualMatchesOfflineWithSeededLatency) {
  ExpectDispatchOrderMatchesOffline(uint64_t{42});
}

TEST(ServiceServerTest, RunVirtualTwiceIsBitIdentical) {
  const std::vector<Request> trace = SyntheticTrace(31, 1500, 0.4);

  auto run = [&trace](TraceRecorder* rec) {
    ServerConfig config = BaseConfig();
    config.WithSlo(80.0).WithStreamRate(400.0, 32.0).WithTraceSink(rec);
    auto handle = MakeServer(config);
    EXPECT_TRUE(handle.ok()) << handle.status().ToString();
    return handle->server->RunVirtual(trace);
  };

  TraceRecorder rec_a(size_t{1} << 17), rec_b(size_t{1} << 17);
  const ServiceStats a = run(&rec_a);
  const ServiceStats b = run(&rec_b);

  ExpectSameEventStream(rec_a, rec_b);
  EXPECT_EQ(a.admission.offered, b.admission.offered);
  EXPECT_EQ(a.admission.admitted, b.admission.admitted);
  EXPECT_EQ(a.admission.rejected_rate, b.admission.rejected_rate);
  EXPECT_EQ(a.admission.rejected_load, b.admission.rejected_load);
  EXPECT_EQ(a.dispatched, b.dispatched);
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_DOUBLE_EQ(a.p50_wait_ms, b.p50_wait_ms);
  EXPECT_DOUBLE_EQ(a.p99_wait_ms, b.p99_wait_ms);
  EXPECT_DOUBLE_EQ(a.p999_wait_ms, b.p999_wait_ms);
  EXPECT_DOUBLE_EQ(a.max_wait_ms, b.max_wait_ms);
}

TEST(ServiceServerTest, AdmissionHoldsSloUnderSeededOverload) {
  // Open-loop overload: arrivals far faster than the disk can serve, so
  // without the load gate waits would grow without bound. With the gate
  // on, admitted requests must see waits near the configured SLO.
  const std::vector<Request> trace = SyntheticTrace(77, 4000, 0.1);

  ServerConfig config = BaseConfig();
  const double kSloMs = 60.0;
  config.WithSlo(kSloMs);  // derive_admission_costs fills the oracle
  auto handle = MakeServer(config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const ServiceStats stats = handle->server->RunVirtual(trace);

  // The accounting identity over every outcome class.
  const AdmissionController::Counters& k = stats.admission;
  EXPECT_EQ(k.offered, trace.size());
  EXPECT_EQ(k.offered, k.admitted + k.rejected_rate + k.rejected_load +
                           k.rejected_ring_full);
  EXPECT_GT(k.admitted, 0u);
  EXPECT_GT(k.rejected_load, 0u);  // overload really shed

  // Everything admitted was served, and the wait distribution is sane.
  EXPECT_EQ(stats.completions, k.admitted);
  EXPECT_LE(stats.p50_wait_ms, stats.p99_wait_ms);
  EXPECT_LE(stats.p99_wait_ms, stats.p999_wait_ms);
  EXPECT_LE(stats.p999_wait_ms, stats.max_wait_ms);
  // The oracle is an estimate, not a guarantee: bound the realized tail
  // at a small multiple of the SLO rather than the SLO itself (measured
  // ~3.6x here; ungated the same workload's tail is ~79,000 ms).
  EXPECT_LE(stats.max_wait_ms, 5.0 * kSloMs);
}

TEST(ServiceServerTest, UngatedOverloadConfirmsTheGateWasLoadBearing) {
  // Control for the SLO test above: the same overload with the gates off
  // must blow far past the SLO, or the previous test proves nothing.
  const std::vector<Request> trace = SyntheticTrace(77, 4000, 0.1);
  ServerConfig config = BaseConfig();
  auto handle = MakeServer(config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const ServiceStats stats = handle->server->RunVirtual(trace);
  EXPECT_EQ(stats.admission.admitted, trace.size());
  EXPECT_GT(stats.max_wait_ms, 1000.0);
}

TEST(ServiceServerTest, WallClockStopDrainsEverythingAdmitted) {
  ServerConfig config = BaseConfig();
  config.WithIngest(256, 32).WithTimeScale(0.0);
  auto handle = MakeServer(config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ServiceServer& server = *handle->server;

  ASSERT_TRUE(server.Start().ok());
  EXPECT_FALSE(server.Start().ok());  // double-start refused
  const std::vector<Request> reqs = SyntheticTrace(5, 500, 1.0);
  for (const Request& r : reqs) {
    Request copy = r;
    while (!server.Offer(std::move(copy))) {
      copy = r;  // ring-full backpressure: retry the same request
    }
  }
  server.Stop();
  EXPECT_FALSE(server.running());

  const ServiceStats stats = server.Stats();
  EXPECT_EQ(stats.admission.admitted, reqs.size());
  EXPECT_GE(stats.admission.offered, reqs.size());  // retries re-offer
  EXPECT_EQ(stats.enqueued, stats.admission.admitted);
  EXPECT_EQ(stats.dispatched, stats.admission.admitted);
  EXPECT_EQ(stats.completions, stats.admission.admitted);
  EXPECT_GE(stats.max_wait_ms, 0.0);
}

}  // namespace
}  // namespace svc
}  // namespace csfc
