// Service front-end concurrency stress — the target of CI's TSan
// service-stress job (mirroring parallel_stress_test for the sweep
// layer). Every scenario here is about interleavings, not outcomes:
//
//  * >= 4 producers hammering Offer against one pump thread;
//  * a deliberately tiny ring so ring-full backpressure is constantly
//    exercised (the producer/consumer seq handshake at the full/empty
//    boundaries is where an MPSC ring breaks first);
//  * Cancel() racing producers mid-drain;
//  * Stop() racing Cancel() (joiner election);
//  * a shared single-threaded sink behind the server's internal lock.
//
// Run under -fsanitize=thread these pin the ring's memory ordering and
// the server's threading contract (DESIGN.md section 12).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/presets.h"
#include "exp/server_config.h"
#include "obs/slo.h"
#include "workload/request.h"

namespace csfc {
namespace svc {
namespace {

Request MakeRequest(uint64_t id, uint32_t stream) {
  Request r;
  r.id = id;
  r.stream = stream;
  r.cylinder = static_cast<Cylinder>((id * 2654435761u) % 3832);
  r.priorities = PriorityVec{static_cast<PriorityLevel>(id % 16),
                             static_cast<PriorityLevel>((id / 16) % 16),
                             static_cast<PriorityLevel>((id / 256) % 16)};
  r.deadline = kNoDeadline;
  return r;
}

ServerConfig StressConfig(size_t ring, size_t batch) {
  ServerConfig config;
  config.WithMetricsShape(3, 16)
      .WithCascaded(PresetFull("hilbert", 3, 4, 1.0, 3,
                               config.sim.disk.cylinders, 0.05, 700.0))
      .WithIngest(ring, batch)
      .WithTimeScale(0.0);
  return config;
}

/// Spawns `producers` threads, each offering `per_producer` requests with
/// yield-retry on shed, until `quit` is set. Returns total successful
/// offers.
uint64_t ProduceAll(ServiceServer& server, size_t producers,
                    uint64_t per_producer, const std::atomic<bool>* quit) {
  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&server, &accepted, quit, p, per_producer] {
      for (uint64_t i = 0; i < per_producer; ++i) {
        if (quit && quit->load(std::memory_order_relaxed)) return;
        Request r = MakeRequest(p * per_producer + i,
                                static_cast<uint32_t>(p));
        while (!server.Offer(std::move(r))) {
          if (quit && quit->load(std::memory_order_relaxed)) return;
          r = MakeRequest(p * per_producer + i, static_cast<uint32_t>(p));
          std::this_thread::yield();
        }
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return accepted.load();
}

TEST(ServiceStressTest, FourProducersTinyRingNothingLost) {
  // Ring of 8 against 4 producers: every push contends and the ring is
  // full for most of the run; backpressure closes the loop.
  ServerConfig config = StressConfig(/*ring=*/8, /*batch=*/4);
  obs::SloMetrics slo(/*window_ms=*/50.0);
  config.WithTraceSink(&slo);  // single-threaded sink behind the lock
  auto handle = MakeServer(config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ServiceServer& server = *handle->server;

  ASSERT_TRUE(server.Start().ok());
  const uint64_t accepted =
      ProduceAll(server, /*producers=*/4, /*per_producer=*/2000, nullptr);
  server.Stop();

  const ServiceStats stats = server.Stats();
  EXPECT_EQ(accepted, 4u * 2000u);
  EXPECT_EQ(stats.admission.admitted, accepted);
  EXPECT_EQ(stats.enqueued, accepted);
  EXPECT_EQ(stats.dispatched, accepted);
  EXPECT_EQ(stats.completions, accepted);
  // Identity holds even though ring-full sheds happened along the way.
  const AdmissionController::Counters& k = stats.admission;
  EXPECT_EQ(k.offered, k.admitted + k.rejected_rate + k.rejected_load +
                           k.rejected_ring_full);
}

TEST(ServiceStressTest, CancelMidDrainWhileProducersRun) {
  ServerConfig config = StressConfig(/*ring=*/16, /*batch=*/8);
  auto handle = MakeServer(config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ServiceServer& server = *handle->server;

  ASSERT_TRUE(server.Start().ok());
  std::atomic<bool> quit{false};
  std::thread canceller([&server, &quit] {
    // Let the pipeline fill, then yank it mid-drain.
    for (int i = 0; i < 2000; ++i) std::this_thread::yield();
    server.Cancel();
    quit.store(true, std::memory_order_relaxed);
  });
  ProduceAll(server, /*producers=*/4, /*per_producer=*/1u << 20, &quit);
  canceller.join();
  EXPECT_FALSE(server.running());

  // Cancel abandons work: served <= admitted, but what was served was
  // counted consistently.
  const ServiceStats stats = server.Stats();
  EXPECT_LE(stats.completions, stats.admission.admitted);
  EXPECT_LE(stats.dispatched, stats.admission.admitted);
  EXPECT_GE(stats.dispatched, stats.completions);
  const AdmissionController::Counters& k = stats.admission;
  EXPECT_EQ(k.offered, k.admitted + k.rejected_rate + k.rejected_load +
                           k.rejected_ring_full);
}

TEST(ServiceStressTest, StopAndCancelRaceElectsOneJoiner) {
  for (int round = 0; round < 8; ++round) {
    ServerConfig config = StressConfig(/*ring=*/32, /*batch=*/8);
    auto handle = MakeServer(config);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    ServiceServer& server = *handle->server;
    ASSERT_TRUE(server.Start().ok());

    std::atomic<bool> quit{false};
    std::thread producer([&server, &quit] {
      ProduceAll(server, /*producers=*/1, /*per_producer=*/1u << 20, &quit);
    });
    std::thread stopper([&server] { server.Stop(); });
    std::thread sledgehammer([&server] { server.Cancel(); });
    stopper.join();
    sledgehammer.join();
    quit.store(true, std::memory_order_relaxed);
    producer.join();
    EXPECT_FALSE(server.running());
    // Offer after shutdown is a clean shed, not a crash.
    EXPECT_FALSE(server.Offer(MakeRequest(0, 0)));
  }
}

TEST(ServiceStressTest, AdmissionGatesUnderConcurrentOffers) {
  // Rate + load gates on, many streams: counters are bumped from every
  // producer thread concurrently and must still reconcile exactly.
  ServerConfig config = StressConfig(/*ring=*/64, /*batch=*/16);
  config.WithSlo(5.0).WithStreamRate(2000.0, 64.0);
  config.admission.max_streams = 8;
  auto handle = MakeServer(config);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  ServiceServer& server = *handle->server;

  ASSERT_TRUE(server.Start().ok());
  std::atomic<uint64_t> offered{0}, admitted{0};
  std::vector<std::thread> threads;
  for (size_t p = 0; p < 6; ++p) {
    threads.emplace_back([&server, &offered, &admitted, p] {
      for (uint64_t i = 0; i < 5000; ++i) {
        offered.fetch_add(1, std::memory_order_relaxed);
        if (server.Offer(MakeRequest(p * 5000 + i,
                                     static_cast<uint32_t>(p)))) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.Stop();

  const AdmissionController::Counters& k = server.Stats().admission;
  EXPECT_EQ(k.offered, offered.load());
  EXPECT_EQ(k.admitted, admitted.load());
  EXPECT_EQ(k.offered, k.admitted + k.rejected_rate + k.rejected_load +
                           k.rejected_ring_full);
  EXPECT_EQ(server.Stats().completions, admitted.load());
}

}  // namespace
}  // namespace svc
}  // namespace csfc
