// Model checking MpscIngestRing under the deterministic interleaving
// explorer (tests/svc/model_check.h).
//
// The exhaustive tests enumerate *every* schedule of producers + the
// consumer reachable within a preemption bound (sleep-set pruning OFF so
// the bound is exact — see the caveat in model_check.h) and assert the
// protocol invariants: per-producer FIFO, no lost or duplicated
// elements, and no claim of an unpublished cell. Negative controls run
// two deliberately broken rings through the same harness and require
// the explorer to catch each bug, so a passing clean run is evidence of
// coverage, not of a toothless checker.

#include "model_check.h"

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "svc/ingest_ring.h"

namespace csfc {
namespace {

using mc::Explorer;
using mc::McAtomicSize;
using mc::Token;

// ---------------------------------------------------------------------------
// Deliberately broken rings (negative controls). Both copy the real
// ring's shape but break one line of the protocol.
// ---------------------------------------------------------------------------

// Publishes `seq` BEFORE the payload move — the reorder that dropping
// release/acquire on the publication pair would permit the hardware to
// make. A consumer scheduled between the two lines drains a cell whose
// payload was never written.
class BuggyPublishRing {
 public:
  explicit BuggyPublishRing(size_t capacity)
      : mask_(RoundUp(capacity) - 1), cells_(mask_ + 1) {
    for (size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  bool TryPush(Token&& value) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.seq.store(pos + 1, std::memory_order_release);  // BUG
          cell.value = std::move(value);
          return true;
        }
      } else if (dif < 0) {
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  size_t DrainInto(std::vector<Token>& out, size_t max) {
    size_t pos = head_.load(std::memory_order_relaxed);
    size_t drained = 0;
    while (drained < max) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
        break;
      }
      out.push_back(std::move(cell.value));
      cell.seq.store(pos + mask_ + 1, std::memory_order_release);
      ++pos;
      ++drained;
    }
    if (drained != 0) head_.store(pos, std::memory_order_relaxed);
    return drained;
  }

 private:
  struct Cell {
    McAtomicSize seq;
    Token value;
  };
  static size_t RoundUp(size_t c) {
    size_t p = 2;
    while (p < c) p <<= 1;
    return p;
  }
  const size_t mask_;
  std::vector<Cell> cells_;
  McAtomicSize tail_{0};
  McAtomicSize head_{0};
};

// Claims the producer ticket with a plain store instead of a CAS — the
// lost-update two racing producers suffer without read-modify-write
// claiming. Both write the same cell; one element vanishes.
class BuggyClaimRing {
 public:
  explicit BuggyClaimRing(size_t capacity)
      : mask_(RoundUp(capacity) - 1), cells_(mask_ + 1) {
    for (size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  bool TryPush(Token&& value) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        tail_.store(pos + 1, std::memory_order_relaxed);  // BUG: no CAS
        cell.value = std::move(value);
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      } else if (dif < 0) {
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  size_t DrainInto(std::vector<Token>& out, size_t max) {
    size_t pos = head_.load(std::memory_order_relaxed);
    size_t drained = 0;
    while (drained < max) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
        break;
      }
      out.push_back(std::move(cell.value));
      cell.seq.store(pos + mask_ + 1, std::memory_order_release);
      ++pos;
      ++drained;
    }
    if (drained != 0) head_.store(pos, std::memory_order_relaxed);
    return drained;
  }

 private:
  struct Cell {
    McAtomicSize seq;
    Token value;
  };
  static size_t RoundUp(size_t c) {
    size_t p = 2;
    while (p < c) p <<= 1;
    return p;
  }
  const size_t mask_;
  std::vector<Cell> cells_;
  McAtomicSize tail_{0};
  McAtomicSize head_{0};
};

// ---------------------------------------------------------------------------
// Shared harness: `producers` threads each push `per_producer` tokens
// (blocking on a full ring), one consumer drains until it has every
// element (blocking on an empty ring), and on_finish asserts the
// protocol invariants on the drained sequence.
// ---------------------------------------------------------------------------

template <typename Ring>
Explorer::Execution MakeRingExecution(int producers, int per_producer,
                                      size_t capacity) {
  struct Ctx {
    Ctx(size_t cap, size_t total) : ring(cap) { out.reserve(total + 4); }
    Ring ring;
    std::vector<Token> out;
  };
  const int total = producers * per_producer;
  auto ctx = std::make_shared<Ctx>(capacity, static_cast<size_t>(total));

  Explorer::Execution e;
  for (int p = 0; p < producers; ++p) {
    e.threads.push_back([ctx, p, per_producer] {
      for (int s = 0; s < per_producer; ++s) {
        Token tok(p, s);
        while (!ctx->ring.TryPush(std::move(tok))) {
          mc::BlockUntilWrite();  // ring full: wait for the consumer
        }
      }
    });
  }
  e.threads.push_back([ctx, total] {
    int got = 0;
    while (got < total) {
      const size_t d = ctx->ring.DrainInto(ctx->out, 2);
      if (d == 0) {
        mc::BlockUntilWrite();  // ring empty: wait for a producer
      }
      got += static_cast<int>(d);
    }
  });
  e.on_finish = [ctx, producers, per_producer, total] {
    if (static_cast<int>(ctx->out.size()) != total) {
      mc::Check(false,
                "lost or duplicated elements: drained count != pushed count");
      return;
    }
    std::vector<int> next(static_cast<size_t>(producers), 0);
    for (const Token& t : ctx->out) {
      if (!t.live) {
        mc::Check(false,
                  "consumer claimed an unpublished or doubly-consumed cell");
        return;
      }
      if (t.producer < 0 || t.producer >= producers) {
        mc::Check(false, "corrupt producer id in drained element");
        return;
      }
      if (t.serial != next[static_cast<size_t>(t.producer)]) {
        mc::Check(false, "per-producer FIFO order violated");
        return;
      }
      ++next[static_cast<size_t>(t.producer)];
    }
    for (int p = 0; p < producers; ++p) {
      if (next[static_cast<size_t>(p)] != per_producer) {
        mc::Check(false, "missing elements from a producer");
        return;
      }
    }
  };
  return e;
}

using McRing = svc::MpscIngestRing<Token, McAtomicSize>;

// ---------------------------------------------------------------------------
// Exhaustive gates (pruning OFF: the preemption bound is exact).
// ---------------------------------------------------------------------------

// The acceptance configuration: 2 producers x ring capacity 4, every
// schedule with at most 2 preemptions, zero violations.
TEST(RingModelCheck, ExhaustiveTwoProducersCapacityFour) {
  Explorer ex;
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.sleep_sets = false;
  Explorer::Stats st = ex.Explore(
      [] { return MakeRingExecution<McRing>(2, 2, 4); }, opt);
  EXPECT_TRUE(st.violation.empty()) << st.violation;
  // An empty tree would also report "no violation"; require real coverage.
  EXPECT_GT(st.executions, 1000u)
      << "suspiciously few schedules enumerated";
  RecordProperty("executions", static_cast<int>(st.executions));
  RecordProperty("steps", static_cast<int>(st.steps));
}

// Backpressure path: 4 elements through a capacity-2 ring forces
// producers through the ring-full branch and BlockUntilWrite, covering
// the recycle protocol across laps.
TEST(RingModelCheck, ExhaustiveBackpressureCapacityTwo) {
  Explorer ex;
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.sleep_sets = false;
  Explorer::Stats st = ex.Explore(
      [] { return MakeRingExecution<McRing>(2, 2, 2); }, opt);
  EXPECT_TRUE(st.violation.empty()) << st.violation;
  EXPECT_GT(st.executions, 1000u);
  RecordProperty("executions", static_cast<int>(st.executions));
}

// Three producers contending for the CAS at the smallest capacity.
TEST(RingModelCheck, ExhaustiveThreeProducersSingleElementEach) {
  Explorer ex;
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.sleep_sets = false;
  Explorer::Stats st = ex.Explore(
      [] { return MakeRingExecution<McRing>(3, 1, 2); }, opt);
  EXPECT_TRUE(st.violation.empty()) << st.violation;
  EXPECT_GT(st.executions, 1000u);
}

// ---------------------------------------------------------------------------
// Sleep-set pruning: must agree with the unpruned search on a clean ring
// and still catch a seeded bug, while actually skipping work.
// ---------------------------------------------------------------------------

TEST(RingModelCheck, SleepSetPruningAgreesAndPrunes) {
  Explorer::Options opt;
  opt.preemption_bound = 2;

  opt.sleep_sets = false;
  Explorer ex_full;
  Explorer::Stats full = ex_full.Explore(
      [] { return MakeRingExecution<McRing>(2, 1, 2); }, opt);

  opt.sleep_sets = true;
  Explorer ex_pruned;
  Explorer::Stats pruned = ex_pruned.Explore(
      [] { return MakeRingExecution<McRing>(2, 1, 2); }, opt);

  EXPECT_TRUE(full.violation.empty()) << full.violation;
  EXPECT_TRUE(pruned.violation.empty()) << pruned.violation;
  EXPECT_GT(pruned.pruned_choices, 0u) << "sleep sets pruned nothing";
  EXPECT_LT(pruned.executions, full.executions)
      << "pruning should explore strictly fewer executions";
}

// ---------------------------------------------------------------------------
// Negative controls: the harness must catch both seeded protocol bugs.
// ---------------------------------------------------------------------------

TEST(RingModelCheck, CatchesPublishBeforePayloadBug) {
  Explorer ex;
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.sleep_sets = false;
  Explorer::Stats st = ex.Explore(
      [] { return MakeRingExecution<BuggyPublishRing>(1, 1, 2); }, opt);
  ASSERT_FALSE(st.violation.empty())
      << "explorer missed the publish-before-payload bug";
  EXPECT_NE(st.violation.find("unpublished"), std::string::npos)
      << st.violation;
  EXPECT_FALSE(st.schedule.empty()) << "violation should carry its schedule";
}

TEST(RingModelCheck, CatchesPlainStoreClaimBug) {
  Explorer ex;
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.sleep_sets = false;
  Explorer::Stats st = ex.Explore(
      [] { return MakeRingExecution<BuggyClaimRing>(2, 1, 4); }, opt);
  ASSERT_FALSE(st.violation.empty())
      << "explorer missed the lost-claim bug";
  // Depending on which schedule hits first this surfaces as a payload
  // overwrite or as a count mismatch; both are the same lost update.
  const bool overwrite =
      st.violation.find("overwrite") != std::string::npos;
  const bool lost = st.violation.find("lost") != std::string::npos;
  EXPECT_TRUE(overwrite || lost) << st.violation;
}

TEST(RingModelCheck, SleepSetsStillCatchPublishBug) {
  Explorer ex;
  Explorer::Options opt;
  opt.preemption_bound = 2;
  opt.sleep_sets = true;
  Explorer::Stats st = ex.Explore(
      [] { return MakeRingExecution<BuggyPublishRing>(1, 1, 2); }, opt);
  EXPECT_FALSE(st.violation.empty())
      << "pruned search missed the publish-before-payload bug";
}

// ---------------------------------------------------------------------------
// Randomized large-bound sweep + harness self-checks.
// ---------------------------------------------------------------------------

TEST(RingModelCheck, RandomizedLargeBoundSweep) {
  Explorer::Options opt;
  opt.preemption_bound = 1 << 20;  // effectively unbounded switching
  opt.random_schedules = 3000;
  opt.seed = 20260809;
  Explorer ex;
  Explorer::Stats st = ex.Explore(
      [] { return MakeRingExecution<McRing>(3, 8, 4); }, opt);
  EXPECT_TRUE(st.violation.empty()) << st.violation;
  EXPECT_EQ(st.executions, 3000u);

  // Same seed, same walk: the explorer must be deterministic.
  Explorer ex2;
  Explorer::Stats st2 = ex2.Explore(
      [] { return MakeRingExecution<McRing>(3, 8, 4); }, opt);
  EXPECT_EQ(st.steps, st2.steps);
}

TEST(RingModelCheck, RandomizedCatchesClaimBug) {
  Explorer::Options opt;
  opt.preemption_bound = 1 << 20;
  opt.random_schedules = 500;
  opt.seed = 7;
  Explorer ex;
  Explorer::Stats st = ex.Explore(
      [] { return MakeRingExecution<BuggyClaimRing>(3, 2, 4); }, opt);
  EXPECT_FALSE(st.violation.empty())
      << "500 random schedules should hit the lost-claim bug";
}

// A program where every thread blocks immediately must be reported as a
// deadlock, not hang the harness.
TEST(RingModelCheck, DetectsDeadlock) {
  Explorer ex;
  Explorer::Options opt;
  opt.preemption_bound = 2;
  Explorer::Stats st = ex.Explore(
      [] {
        Explorer::Execution e;
        e.threads.push_back([] { mc::BlockUntilWrite(); });
        e.threads.push_back([] { mc::BlockUntilWrite(); });
        return e;
      },
      opt);
  ASSERT_FALSE(st.violation.empty());
  EXPECT_NE(st.violation.find("deadlock"), std::string::npos) << st.violation;
}

}  // namespace
}  // namespace csfc
