// Deterministic interleaving explorer for small concurrent protocols.
//
// The explorer runs N "virtual threads" (real std::threads under a strict
// one-at-a-time handoff) and owns every scheduling decision: a thread
// only advances between two *schedule points*, and every instrumented
// atomic operation is a schedule point. Because exactly one thread runs
// at any instant and every handoff goes through a mutex, executions are
// sequentially consistent and data-race-free by construction (TSan-clean
// even for protocols that would race with real atomics) — what the
// explorer varies is the *interleaving*, chosen by depth-first search
// over the schedule tree.
//
// Search modes:
//   * Exhaustive DFS with a configurable preemption bound (CHESS-style):
//     all schedules reachable with at most `preemption_bound` involuntary
//     context switches are enumerated. Voluntary switches (a thread
//     blocking on BlockUntilWrite or finishing) are free.
//   * Optional DPOR-style sleep-set pruning: after a branch explores
//     thread t at a node, sibling branches put t to sleep until a
//     dependent operation wakes it, skipping schedules that only commute
//     independent operations. Sleep sets are sound for full exploration;
//     combined with a preemption bound they can in principle skip a
//     schedule whose representative needs more preemptions, so the
//     exhaustive gates in ring_model_check_test.cc run with pruning OFF
//     and a separate test cross-checks the pruned search.
//   * Randomized mode: `random_schedules` seeded random walks for
//     configurations too big to enumerate.
//
// Instrumentation seams:
//   * McAtomicSize substitutes for std::atomic<size_t> via template
//     parameters (e.g. MpscIngestRing's AtomicSize seam). Operations are
//     schedule points; plain size_t storage is safe under the handoff.
//   * Token is a payload type whose moves are schedule points carrying
//     ghost state (producer id, serial, liveness) so tests can assert
//     per-producer FIFO, no lost/duplicated elements, and that no
//     unpublished or doubly-consumed cell is ever claimed.
//   * BlockUntilWrite() parks the calling virtual thread until another
//     thread performs a write — the test-program idiom for "ring full /
//     ring empty, wait for progress". This keeps the schedule tree
//     finite: a failed push/drain performs only reads, so retry cycles
//     consume writes made by *other* threads.
//
// The explorer reports the first invariant violation (mc::Check) with the
// decision trace that produced it, detects deadlocks (all live threads
// blocked), and enforces a per-execution step bound as a livelock guard.

#ifndef CSFC_TESTS_SVC_MODEL_CHECK_H_
#define CSFC_TESTS_SVC_MODEL_CHECK_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace csfc {
namespace mc {

enum class OpKind { kStart, kRead, kWrite, kPayload, kBlock };

struct AbortExecution {};

class Explorer;

// Thread-local context: workers see (explorer, tid >= 0); the scheduler
// thread sees (explorer, -1) so Check() works from on_finish; everything
// else (e.g. ring construction in make()) sees nullptr and every hook is
// a no-op.
inline thread_local Explorer* tls_explorer = nullptr;
inline thread_local int tls_tid = -1;

class Explorer {
 public:
  struct Options {
    // Max involuntary context switches per execution (-1-ish large value
    // = unbounded). Voluntary switches are always free.
    int preemption_bound = 2;
    // DPOR-style sleep-set pruning (see file comment for the caveat).
    bool sleep_sets = false;
    // > 0: run this many seeded random schedules instead of DFS.
    uint64_t random_schedules = 0;
    uint64_t seed = 1;
    // Livelock guard: max schedule points in one execution.
    uint64_t max_steps = 100000;
    // Safety valve for runaway DFS; hitting it is reported as a
    // violation so a test never silently under-explores.
    uint64_t max_executions = 5000000;
  };

  struct Execution {
    std::vector<std::function<void()>> threads;
    // Runs on the scheduler thread after all virtual threads finished
    // (skipped when the execution already failed or was pruned).
    std::function<void()> on_finish;
  };

  struct Stats {
    uint64_t executions = 0;        // completed executions
    uint64_t pruned_executions = 0; // cut by sleep sets (fully covered)
    uint64_t steps = 0;             // schedule points taken
    uint64_t pruned_choices = 0;    // branches skipped by sleep sets
    std::string violation;          // first failure; empty = all clean
    std::vector<int> schedule;      // decision trace of the failing run
  };

  Stats Explore(const std::function<Execution()>& make,
                const Options& opt) {
    opt_ = opt;
    stats_ = Stats();
    rng_.seed(opt.seed);
    stack_.clear();
    Execution first = make();
    const size_t n = first.threads.size();
    StartWorkers(n);
    tls_explorer = this;  // scheduler-side Check()/Fail()
    tls_tid = -1;
    bool have_first = true;
    const bool random = opt_.random_schedules > 0;
    for (;;) {
      Execution exec = have_first ? std::move(first) : make();
      have_first = false;
      if (exec.threads.size() != n) {
        Fail("make() changed the thread count between executions");
        break;
      }
      RunOne(exec);
      if (!stats_.violation.empty()) break;
      if (random) {
        if (stats_.executions >= opt_.random_schedules) break;
      } else {
        if (stats_.executions + stats_.pruned_executions
            >= opt_.max_executions) {
          Fail("max_executions exceeded before the schedule tree was "
               "exhausted — raise Options::max_executions");
          break;
        }
        if (!Advance()) break;  // DFS exhausted: full coverage
      }
    }
    StopWorkers();
    tls_explorer = nullptr;
    return stats_;
  }

  // --- hooks (called via the free functions below) -----------------------

  void Point(const void* obj, OpKind kind) {
    const int tid = tls_tid;
    std::unique_lock<std::mutex> l(mu_);
    Thr& me = thr_[static_cast<size_t>(tid)];
    me.state = kind == OpKind::kBlock ? TState::kBlocked : TState::kParked;
    me.pending = Pending{obj, kind};
    running_ = -1;
    sched_cv_.notify_one();
    me.cv.wait(l, [&] { return me.abort || running_ == tid; });
    if (me.abort) {
      // Payload moves must not throw through vector internals; the
      // thread keeps running (alone — nothing else holds the grant)
      // until its next atomic op or program end unwinds it.
      if (kind == OpKind::kPayload) return;
      throw AbortExecution{};
    }
    me.state = TState::kRunning;
  }

  void Fail(std::string msg) {
    std::lock_guard<std::mutex> l(fail_mu_);
    if (!stats_.violation.empty()) return;
    stats_.violation = std::move(msg);
    stats_.schedule = trace_;
  }

 private:
  struct Pending {
    const void* obj = nullptr;
    OpKind kind = OpKind::kStart;
  };
  enum class TState { kIdle, kRunning, kParked, kBlocked, kDone };
  struct Thr {
    std::thread th;
    std::condition_variable cv;  // signaled only when THIS thread may move
    TState state = TState::kIdle;
    Pending pending;
    bool abort = false;
  };
  struct Node {
    int chosen = -1;
    Pending chosen_op;  // refreshed on every (re)visit, used by Advance
    std::vector<int> untried;
    std::vector<std::pair<int, Pending>> sleep_entry;
    std::vector<std::pair<int, Pending>> explored;
  };

  static bool Dependent(const Pending& a, const Pending& b) {
    if (a.kind == OpKind::kPayload || b.kind == OpKind::kPayload) {
      return true;  // payload identity is coarse; stay conservative
    }
    if (a.kind == OpKind::kStart || a.kind == OpKind::kBlock ||
        b.kind == OpKind::kStart || b.kind == OpKind::kBlock) {
      return false;
    }
    return a.obj == b.obj &&
           (a.kind == OpKind::kWrite || b.kind == OpKind::kWrite);
  }

  // --- worker lifecycle ---------------------------------------------------

  void StartWorkers(size_t n) {
    thr_ = std::vector<Thr>(n);
    shutdown_ = false;
    gen_ = 0;
    for (size_t t = 0; t < n; ++t) {
      thr_[t].th = std::thread([this, t] {
        WorkerMain(static_cast<int>(t));
      });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> l(mu_);
      shutdown_ = true;
      for (Thr& t : thr_) t.cv.notify_one();
    }
    for (Thr& t : thr_) {
      if (t.th.joinable()) t.th.join();
    }
    thr_.clear();
  }

  void WorkerMain(int tid) {
    tls_explorer = this;
    tls_tid = tid;
    Thr& me = thr_[static_cast<size_t>(tid)];
    std::unique_lock<std::mutex> l(mu_);
    uint64_t seen_gen = 0;
    for (;;) {
      me.cv.wait(l, [&] { return shutdown_ || gen_ > seen_gen; });
      if (shutdown_) return;
      seen_gen = gen_;
      std::function<void()> program = programs_[static_cast<size_t>(tid)];
      me.state = TState::kParked;  // initial park: all threads line up
      me.pending = Pending{};
      sched_cv_.notify_one();
      me.cv.wait(l, [&] { return me.abort || running_ == tid; });
      if (!me.abort) {
        me.state = TState::kRunning;
        l.unlock();
        try {
          program();
        } catch (const AbortExecution&) {
        }
        l.lock();
      }
      me.state = TState::kDone;
      if (running_ == tid) running_ = -1;
      sched_cv_.notify_one();
    }
  }

  // Releases threads one at a time so even the unwind path never runs
  // two virtual threads concurrently (keeps buggy-protocol executions
  // race-free under TSan).
  void AbortAll(std::unique_lock<std::mutex>& l) {
    for (Thr& t : thr_) {
      if (t.state == TState::kDone) continue;
      t.abort = true;
      t.cv.notify_one();
      sched_cv_.wait(l, [&] { return t.state == TState::kDone; });
    }
  }

  // --- one execution ------------------------------------------------------

  enum class RunResult { kCompleted, kPruned, kFailed };

  void RunOne(const Execution& exec) {
    {
      std::unique_lock<std::mutex> l(mu_);
      programs_ = exec.threads;
      for (Thr& t : thr_) {
        t.state = TState::kIdle;
        t.pending = Pending{};
        t.abort = false;
      }
      ++gen_;
      for (Thr& t : thr_) t.cv.notify_one();
      sched_cv_.wait(l, [&] {
        for (const Thr& t : thr_) {
          if (t.state != TState::kParked) return false;
        }
        return true;
      });
    }
    depth_ = 0;
    budget_ = opt_.preemption_bound;
    cur_ = -1;
    sleep_.clear();
    trace_.clear();
    RunResult res = Schedule();
    if (res == RunResult::kCompleted) {
      ++stats_.executions;
      if (exec.on_finish) exec.on_finish();
    } else if (res == RunResult::kPruned) {
      ++stats_.pruned_executions;
    }
  }

  RunResult Schedule() {
    uint64_t steps = 0;
    std::unique_lock<std::mutex> l(mu_);
    for (;;) {
      bool all_done = true;
      std::vector<int> runnable;
      bool any_blocked = false;
      for (size_t t = 0; t < thr_.size(); ++t) {
        switch (thr_[t].state) {
          case TState::kDone:
            break;
          case TState::kParked:
            all_done = false;
            runnable.push_back(static_cast<int>(t));
            break;
          case TState::kBlocked:
            all_done = false;
            any_blocked = true;
            break;
          default:
            all_done = false;
            break;
        }
      }
      if (all_done) return RunResult::kCompleted;
      if (runnable.empty()) {
        Fail(any_blocked
                 ? "deadlock: every live virtual thread is blocked in "
                   "BlockUntilWrite with no writer left"
                 : "scheduler stuck: no runnable virtual thread");
        AbortAll(l);
        return RunResult::kFailed;
      }
      const int pick = Decide(runnable);
      if (pick < 0) {  // every option is asleep: state covered elsewhere
        AbortAll(l);
        return RunResult::kPruned;
      }
      const bool paid =
          cur_ >= 0 && pick != cur_ &&
          thr_[static_cast<size_t>(cur_)].state == TState::kParked;
      if (paid) --budget_;
      const Pending op = thr_[static_cast<size_t>(pick)].pending;
      cur_ = pick;
      trace_.push_back(pick);
      ++stats_.steps;
      if (++steps > opt_.max_steps) {
        Fail("per-execution step bound exceeded — livelock or a "
             "configuration too large for Options::max_steps");
        AbortAll(l);
        return RunResult::kFailed;
      }
      running_ = pick;
      thr_[static_cast<size_t>(pick)].cv.notify_one();
      sched_cv_.wait(l, [&] { return running_ == -1; });
      if (!stats_.violation.empty()) {  // a worker's Check failed
        AbortAll(l);
        return RunResult::kFailed;
      }
      if (op.kind == OpKind::kWrite || op.kind == OpKind::kPayload) {
        for (Thr& t : thr_) {
          if (t.state == TState::kBlocked) t.state = TState::kParked;
        }
      }
      if (opt_.sleep_sets) {
        std::vector<std::pair<int, Pending>> kept;
        for (const auto& s : sleep_) {
          if (!Dependent(s.second, op)) kept.push_back(s);
        }
        sleep_.swap(kept);
      }
    }
  }

  // Picks the next thread to grant, or -1 when sleep sets prove every
  // option is covered by an already-explored sibling branch.
  int Decide(const std::vector<int>& runnable) {
    const bool cur_runnable =
        cur_ >= 0 &&
        thr_[static_cast<size_t>(cur_)].state == TState::kParked;
    std::vector<int> options;
    if (cur_runnable) {
      options.push_back(cur_);  // continuing costs nothing
      if (budget_ > 0) {
        for (int t : runnable) {
          if (t != cur_) options.push_back(t);
        }
      }
    } else {
      options = runnable;  // voluntary switch: every choice is free
    }
    if (opt_.random_schedules > 0) {
      std::uniform_int_distribution<size_t> d(0, options.size() - 1);
      return options[d(rng_)];
    }
    if (opt_.sleep_sets) {
      if (depth_ < stack_.size()) {
        sleep_ = stack_[depth_].sleep_entry;
        for (const auto& e : stack_[depth_].explored) sleep_.push_back(e);
      }
      std::vector<int> awake;
      for (int t : options) {
        bool asleep = false;
        for (const auto& s : sleep_) {
          if (s.first == t) asleep = true;
        }
        if (!asleep) awake.push_back(t);
      }
      stats_.pruned_choices += options.size() - awake.size();
      options.swap(awake);
      if (options.empty()) return -1;
    }
    if (depth_ < stack_.size()) {
      Node& node = stack_[depth_];
      ++depth_;
      node.chosen_op =
          thr_[static_cast<size_t>(node.chosen)].pending;
      return node.chosen;
    }
    Node node;
    node.chosen = options[0];
    node.chosen_op = thr_[static_cast<size_t>(options[0])].pending;
    node.untried.assign(options.begin() + 1, options.end());
    if (opt_.sleep_sets) node.sleep_entry = sleep_;
    stack_.push_back(std::move(node));
    ++depth_;
    return stack_.back().chosen;
  }

  // Moves the DFS to the next unexplored branch; false when exhausted.
  bool Advance() {
    while (!stack_.empty()) {
      Node& node = stack_.back();
      if (!node.untried.empty()) {
        if (opt_.sleep_sets) {
          node.explored.emplace_back(node.chosen, node.chosen_op);
        }
        node.chosen = node.untried.front();
        node.untried.erase(node.untried.begin());
        return true;
      }
      stack_.pop_back();
    }
    return false;
  }

  Options opt_;
  Stats stats_;
  std::mt19937_64 rng_;

  std::mutex mu_;
  std::condition_variable sched_cv_;  // workers -> scheduler
  std::vector<Thr> thr_;
  std::vector<std::function<void()>> programs_;
  uint64_t gen_ = 0;
  int running_ = -1;
  bool shutdown_ = false;

  std::mutex fail_mu_;
  std::vector<Node> stack_;
  size_t depth_ = 0;
  int budget_ = 0;
  int cur_ = -1;
  std::vector<std::pair<int, Pending>> sleep_;
  std::vector<int> trace_;
};

// --- free-function hooks ----------------------------------------------------

inline void SchedulePoint(const void* obj, OpKind kind) {
  if (tls_explorer != nullptr && tls_tid >= 0) {
    tls_explorer->Point(obj, kind);
  }
}

/// Parks the calling virtual thread until another thread performs a
/// write. No-op outside a controlled execution.
inline void BlockUntilWrite() {
  if (tls_explorer != nullptr && tls_tid >= 0) {
    tls_explorer->Point(nullptr, OpKind::kBlock);
  }
}

/// Records the first failed invariant (with the decision trace) and
/// aborts the current execution when called from a virtual thread.
inline void Check(bool cond, const char* msg) {
  if (cond) return;
  if (tls_explorer != nullptr) {
    tls_explorer->Fail(msg);
    if (tls_tid >= 0) throw AbortExecution{};
  }
}

// --- instrumented building blocks -------------------------------------------

/// Drop-in for std::atomic<size_t> under the explorer (the ring's
/// AtomicSize seam). Every operation is a schedule point; plain storage
/// is safe because exactly one virtual thread runs at a time and every
/// handoff synchronizes through the explorer's mutex.
class McAtomicSize {
 public:
  McAtomicSize() = default;
  McAtomicSize(size_t v) : v_(v) {}  // NOLINT: mirrors std::atomic
  McAtomicSize(const McAtomicSize&) = delete;
  McAtomicSize& operator=(const McAtomicSize&) = delete;

  size_t load(std::memory_order) const {
    SchedulePoint(this, OpKind::kRead);
    return v_;
  }
  void store(size_t v, std::memory_order) {
    SchedulePoint(this, OpKind::kWrite);
    v_ = v;
  }
  bool compare_exchange_weak(size_t& expected, size_t desired,
                             std::memory_order) {
    SchedulePoint(this, OpKind::kWrite);  // conservative: failure reads
    if (v_ == expected) {
      v_ = desired;
      return true;
    }
    expected = v_;
    return false;
  }

 private:
  size_t v_ = 0;
};

/// Ring payload with ghost state. Moves are schedule points, and the
/// ghost bits catch the protocol failures directly:
///   * moving FROM a non-live token  -> the consumer claimed a cell whose
///     payload was never published (or was already consumed);
///   * moving ONTO a live token      -> a producer overwrote an element
///     the consumer never saw (lost update).
struct Token {
  int producer = -1;
  int serial = -1;
  bool live = false;

  Token() = default;
  Token(int p, int s) : producer(p), serial(s), live(true) {}
  Token(const Token&) = delete;
  Token& operator=(const Token&) = delete;
  Token(Token&& o) { MoveFrom(o); }
  Token& operator=(Token&& o) {
    Check(!live, "payload overwrite: a producer stored into a cell whose "
                 "element was never consumed (lost update)");
    MoveFrom(o);
    return *this;
  }

 private:
  void MoveFrom(Token& o) {
    SchedulePoint(&o, OpKind::kPayload);
    producer = o.producer;
    serial = o.serial;
    live = o.live;
    o.live = false;
  }
};

}  // namespace mc
}  // namespace csfc

#endif  // CSFC_TESTS_SVC_MODEL_CHECK_H_
