// MpscIngestRing unit coverage: capacity rounding, empty/full boundary
// behavior, wraparound over many laps, drain batching, and a
// multi-producer hand-off check (the real interleaving stress lives in
// service_stress_test.cc for the TSan job).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "svc/ingest_ring.h"

namespace csfc {
namespace svc {
namespace {

TEST(IngestRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscIngestRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpscIngestRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscIngestRing<int>(2).capacity(), 2u);
  EXPECT_EQ(MpscIngestRing<int>(3).capacity(), 4u);
  EXPECT_EQ(MpscIngestRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(MpscIngestRing<int>(1024).capacity(), 1024u);
}

TEST(IngestRingTest, DrainOfEmptyRingIsZero) {
  MpscIngestRing<int> ring(8);
  std::vector<int> out;
  EXPECT_EQ(ring.DrainInto(out, 16), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ring.size(), 0u);
}

TEST(IngestRingTest, PushFailsExactlyAtCapacity) {
  MpscIngestRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(int{i}));
  EXPECT_FALSE(ring.TryPush(99));  // full: backpressure, element untouched
  EXPECT_EQ(ring.size(), 4u);

  // One drain frees one slot; the next push succeeds again.
  std::vector<int> out;
  EXPECT_EQ(ring.DrainInto(out, 1), 1u);
  EXPECT_EQ(out.front(), 0);
  EXPECT_TRUE(ring.TryPush(4));
  EXPECT_FALSE(ring.TryPush(5));
}

TEST(IngestRingTest, DrainRespectsBatchLimitAndOrder) {
  MpscIngestRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(ring.TryPush(int{i}));
  std::vector<int> out;
  EXPECT_EQ(ring.DrainInto(out, 4), 4u);
  EXPECT_EQ(ring.DrainInto(out, 4), 4u);
  EXPECT_EQ(ring.DrainInto(out, 4), 2u);
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(IngestRingTest, WrapsCleanlyOverManyLaps) {
  // Push/drain through > 100 laps of a tiny ring: every element must come
  // out exactly once, in order, with no stall at the wrap points.
  MpscIngestRing<int> ring(4);
  std::vector<int> out;
  int next_in = 0, next_out = 0;
  for (int round = 0; round < 500; ++round) {
    const int burst = 1 + (round % 4);
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.TryPush(int{next_in})) << "round " << round;
      ++next_in;
    }
    out.clear();
    ASSERT_EQ(ring.DrainInto(out, 8), static_cast<size_t>(burst));
    for (int v : out) {
      ASSERT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
}

TEST(IngestRingTest, ConcurrentProducersLoseNothing) {
  constexpr size_t kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscIngestRing<int> ring(64);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = static_cast<int>(p) * kPerProducer + i;
        while (!ring.TryPush(std::move(value))) std::this_thread::yield();
      }
    });
  }

  std::set<int> seen;
  std::vector<int> out;
  out.reserve(64);
  while (seen.size() < kProducers * kPerProducer) {
    out.clear();
    ring.DrainInto(out, 64);
    for (int v : out) EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
    if (out.empty()) std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(seen.size(), kProducers * kPerProducer);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), static_cast<int>(kProducers) * kPerProducer - 1);
}

}  // namespace
}  // namespace svc
}  // namespace csfc
