// Structural properties of each curve family: exact orders on tiny grids,
// continuity (unit steps) where the curve guarantees it, shell/plane
// monotonicity for spiral/diagonal, and the bit-level formulas of the
// interleaving curves.

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <vector>

#include "sfc/bits.h"
#include "sfc/curve.h"
#include "sfc/registry.h"

namespace csfc {
namespace {

std::vector<std::vector<uint32_t>> WalkCurve(const SpaceFillingCurve& c) {
  std::vector<std::vector<uint32_t>> cells;
  for (uint64_t i = 0; i < c.num_cells(); ++i) cells.push_back(c.PointOf(i));
  return cells;
}

uint64_t L1(const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) {
  uint64_t d = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d += static_cast<uint64_t>(
        std::abs(static_cast<int64_t>(a[i]) - static_cast<int64_t>(b[i])));
  }
  return d;
}

// --- C-Scan -----------------------------------------------------------------

TEST(CScanPropertiesTest, MatchesRowMajorFormula) {
  auto c = MakeCScanCurve(GridSpec{.dims = 3, .bits = 2});
  ASSERT_TRUE(c.ok());
  for (uint32_t x0 = 0; x0 < 4; ++x0) {
    for (uint32_t x1 = 0; x1 < 4; ++x1) {
      for (uint32_t x2 = 0; x2 < 4; ++x2) {
        std::vector<uint32_t> p{x0, x1, x2};
        EXPECT_EQ((*c)->IndexOf(p), x0 * 16 + x1 * 4 + x2);
      }
    }
  }
}

TEST(CScanPropertiesTest, TwoByTwoOrder) {
  auto c = MakeCScanCurve(GridSpec{.dims = 2, .bits = 1});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  EXPECT_EQ(cells[0], (std::vector<uint32_t>{0, 0}));
  EXPECT_EQ(cells[1], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(cells[2], (std::vector<uint32_t>{1, 0}));
  EXPECT_EQ(cells[3], (std::vector<uint32_t>{1, 1}));
}

// --- Scan (boustrophedon) ----------------------------------------------------

TEST(ScanPropertiesTest, TwoByTwoSnake) {
  auto c = MakeScanCurve(GridSpec{.dims = 2, .bits = 1});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  EXPECT_EQ(cells[0], (std::vector<uint32_t>{0, 0}));
  EXPECT_EQ(cells[1], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(cells[2], (std::vector<uint32_t>{1, 1}));
  EXPECT_EQ(cells[3], (std::vector<uint32_t>{1, 0}));
}

TEST(ScanPropertiesTest, UnitStepsEverywhere2D) {
  auto c = MakeScanCurve(GridSpec{.dims = 2, .bits = 3});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_EQ(L1(cells[i - 1], cells[i]), 1u) << "at step " << i;
  }
}

TEST(ScanPropertiesTest, UnitStepsEverywhere4D) {
  auto c = MakeScanCurve(GridSpec{.dims = 4, .bits = 2});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_EQ(L1(cells[i - 1], cells[i]), 1u) << "at step " << i;
  }
}

// --- Peano (Z-order) ---------------------------------------------------------

TEST(ZOrderPropertiesTest, MatchesBitInterleaving) {
  auto c = MakeZOrderCurve(GridSpec{.dims = 2, .bits = 3});
  ASSERT_TRUE(c.ok());
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      std::vector<uint32_t> p{x, y};
      uint64_t expected = 0;
      for (uint32_t b = 0; b < 3; ++b) {
        expected |= ((x >> b) & 1u) << (2 * b + 1);
        expected |= ((y >> b) & 1u) << (2 * b);
      }
      EXPECT_EQ((*c)->IndexOf(p), expected);
    }
  }
}

TEST(ZOrderPropertiesTest, InterleaveHelpersRoundTrip) {
  std::vector<uint32_t> p{5, 2, 7};
  const uint64_t idx =
      InterleaveBits(std::span<const uint32_t>(p.data(), 3), 3, 3);
  std::vector<uint32_t> q(3);
  DeinterleaveBits(idx, 3, 3, std::span<uint32_t>(q.data(), 3));
  EXPECT_EQ(p, q);
}

TEST(ZOrderPropertiesTest, QuadrantRecursion) {
  // The first quarter of the curve covers exactly the (0,0) quadrant.
  auto c = MakeZOrderCurve(GridSpec{.dims = 2, .bits = 4});
  ASSERT_TRUE(c.ok());
  for (uint64_t i = 0; i < 64; ++i) {
    const auto p = (*c)->PointOf(i);
    EXPECT_LT(p[0], 8u);
    EXPECT_LT(p[1], 8u);
  }
}

// --- Gray --------------------------------------------------------------------

TEST(GrayPropertiesTest, GrayCodeHelpers) {
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(GrayDecode(GrayCode(i)), i);
  }
  EXPECT_EQ(GrayCode(0), 0u);
  EXPECT_EQ(GrayCode(1), 1u);
  EXPECT_EQ(GrayCode(2), 3u);
  EXPECT_EQ(GrayCode(3), 2u);
}

TEST(GrayPropertiesTest, ConsecutiveCellsDifferInOneCoordinateByPowerOfTwo) {
  auto c = MakeGrayCurve(GridSpec{.dims = 3, .bits = 2});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  for (size_t i = 1; i < cells.size(); ++i) {
    int changed = 0;
    for (size_t k = 0; k < 3; ++k) {
      const uint32_t diff = cells[i - 1][k] ^ cells[i][k];
      if (diff != 0) {
        ++changed;
        EXPECT_EQ(diff & (diff - 1), 0u) << "non-power-of-two step at " << i;
      }
    }
    EXPECT_EQ(changed, 1) << "at step " << i;
  }
}

// --- Hilbert -----------------------------------------------------------------

TEST(HilbertPropertiesTest, StartsAtOrigin) {
  for (uint32_t dims : {2u, 3u, 4u}) {
    auto c = MakeHilbertCurve(GridSpec{.dims = dims, .bits = 3});
    ASSERT_TRUE(c.ok());
    const auto p = (*c)->PointOf(0);
    for (uint32_t coord : p) EXPECT_EQ(coord, 0u);
  }
}

TEST(HilbertPropertiesTest, UnitSteps2D) {
  auto c = MakeHilbertCurve(GridSpec{.dims = 2, .bits = 4});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_EQ(L1(cells[i - 1], cells[i]), 1u) << "at step " << i;
  }
}

TEST(HilbertPropertiesTest, UnitSteps3D) {
  auto c = MakeHilbertCurve(GridSpec{.dims = 3, .bits = 3});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_EQ(L1(cells[i - 1], cells[i]), 1u) << "at step " << i;
  }
}

TEST(HilbertPropertiesTest, UnitSteps5D) {
  auto c = MakeHilbertCurve(GridSpec{.dims = 5, .bits = 2});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_EQ(L1(cells[i - 1], cells[i]), 1u) << "at step " << i;
  }
}

TEST(HilbertPropertiesTest, QuadrantLocality2D) {
  // Each quarter of the index range stays inside one quadrant.
  auto c = MakeHilbertCurve(GridSpec{.dims = 2, .bits = 4});
  ASSERT_TRUE(c.ok());
  const uint64_t quarter = (*c)->num_cells() / 4;
  for (uint64_t q = 0; q < 4; ++q) {
    const auto first = (*c)->PointOf(q * quarter);
    const uint32_t qx = first[0] / 8;
    const uint32_t qy = first[1] / 8;
    for (uint64_t i = q * quarter; i < (q + 1) * quarter; ++i) {
      const auto p = (*c)->PointOf(i);
      EXPECT_EQ(p[0] / 8, qx) << "index " << i;
      EXPECT_EQ(p[1] / 8, qy) << "index " << i;
    }
  }
}

// --- Spiral ------------------------------------------------------------------

TEST(SpiralPropertiesTest, CenterRingFirst4x4) {
  auto c = MakeSpiralCurve(GridSpec{.dims = 2, .bits = 2});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  // Ring 0: clockwise around the central 2x2 block from its top-left.
  EXPECT_EQ(cells[0], (std::vector<uint32_t>{1, 1}));
  EXPECT_EQ(cells[1], (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(cells[2], (std::vector<uint32_t>{2, 2}));
  EXPECT_EQ(cells[3], (std::vector<uint32_t>{2, 1}));
  // Ring 1 starts at the grid corner (0,0) and walks the border.
  EXPECT_EQ(cells[4], (std::vector<uint32_t>{0, 0}));
  EXPECT_EQ(cells[5], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(cells[7], (std::vector<uint32_t>{0, 3}));
  EXPECT_EQ(cells[8], (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(cells[10], (std::vector<uint32_t>{3, 3}));
  EXPECT_EQ(cells[13], (std::vector<uint32_t>{3, 0}));
  EXPECT_EQ(cells[15], (std::vector<uint32_t>{1, 0}));
}

uint32_t CenterShell(const std::vector<uint32_t>& p, uint32_t side) {
  const uint32_t lo = side / 2 - 1;
  const uint32_t hi = side / 2;
  uint32_t s = 0;
  for (uint32_t c : p) {
    uint32_t d = 0;
    if (c < lo) d = lo - c;
    if (c > hi) d = c - hi;
    s = std::max(s, d);
  }
  return s;
}

TEST(SpiralPropertiesTest, ShellsAreMonotone2D) {
  auto c = MakeSpiralCurve(GridSpec{.dims = 2, .bits = 3});
  ASSERT_TRUE(c.ok());
  uint32_t prev = 0;
  for (uint64_t i = 0; i < (*c)->num_cells(); ++i) {
    const uint32_t s = CenterShell((*c)->PointOf(i), 8);
    EXPECT_GE(s, prev) << "index " << i;
    prev = s;
  }
}

TEST(SpiralPropertiesTest, ShellsAreMonotone3D) {
  auto c = MakeSpiralCurve(GridSpec{.dims = 3, .bits = 3});
  ASSERT_TRUE(c.ok());
  uint32_t prev = 0;
  for (uint64_t i = 0; i < (*c)->num_cells(); ++i) {
    const uint32_t s = CenterShell((*c)->PointOf(i), 8);
    EXPECT_GE(s, prev) << "index " << i;
    prev = s;
  }
}

TEST(SpiralPropertiesTest, RingWalkIsContiguous2D) {
  // Within a ring the 2-D walk moves one cell at a time.
  auto c = MakeSpiralCurve(GridSpec{.dims = 2, .bits = 3});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  for (size_t i = 1; i < cells.size(); ++i) {
    if (CenterShell(cells[i], 8) == CenterShell(cells[i - 1], 8)) {
      EXPECT_EQ(L1(cells[i - 1], cells[i]), 1u) << "at step " << i;
    }
  }
}

// --- Diagonal ----------------------------------------------------------------

TEST(DiagonalPropertiesTest, TwoByTwoZigzag) {
  auto c = MakeDiagonalCurve(GridSpec{.dims = 2, .bits = 1});
  ASSERT_TRUE(c.ok());
  const auto cells = WalkCurve(**c);
  EXPECT_EQ(cells[0], (std::vector<uint32_t>{0, 0}));
  EXPECT_EQ(cells[1], (std::vector<uint32_t>{1, 0}));  // odd plane reversed
  EXPECT_EQ(cells[2], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(cells[3], (std::vector<uint32_t>{1, 1}));
}

TEST(DiagonalPropertiesTest, PlaneSumsAreMonotone) {
  for (uint32_t dims : {2u, 3u, 4u}) {
    auto c = MakeDiagonalCurve(GridSpec{.dims = dims, .bits = 2});
    ASSERT_TRUE(c.ok());
    uint64_t prev = 0;
    for (uint64_t i = 0; i < (*c)->num_cells(); ++i) {
      const auto p = (*c)->PointOf(i);
      const uint64_t sum = std::accumulate(p.begin(), p.end(), uint64_t{0});
      EXPECT_GE(sum, prev) << "dims " << dims << " index " << i;
      prev = sum;
    }
  }
}

TEST(DiagonalPropertiesTest, AlternatePlanesReverseDirection) {
  auto c = MakeDiagonalCurve(GridSpec{.dims = 2, .bits = 2});
  ASSERT_TRUE(c.ok());
  // Plane t=1 (odd) is reverse-lex: (1,0) before (0,1).
  std::vector<uint32_t> a{1, 0}, b{0, 1};
  EXPECT_LT((*c)->IndexOf(a), (*c)->IndexOf(b));
  // Plane t=2 (even) is forward-lex: (0,2) before (1,1) before (2,0).
  std::vector<uint32_t> p02{0, 2}, p11{1, 1}, p20{2, 0};
  EXPECT_LT((*c)->IndexOf(p02), (*c)->IndexOf(p11));
  EXPECT_LT((*c)->IndexOf(p11), (*c)->IndexOf(p20));
}

// --- Cross-curve invariants ---------------------------------------------------

class CurveOriginTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CurveOriginTest, IndexZeroIsUnique) {
  GridSpec spec{.dims = 3, .bits = 2};
  auto c = MakeCurve(GetParam(), spec);
  ASSERT_TRUE(c.ok());
  uint64_t zero_hits = 0;
  std::vector<uint32_t> p(3);
  for (uint32_t x = 0; x < 4; ++x) {
    for (uint32_t y = 0; y < 4; ++y) {
      for (uint32_t z = 0; z < 4; ++z) {
        p = {x, y, z};
        if ((*c)->Index(std::span<const uint32_t>(p.data(), 3)) == 0) {
          ++zero_hits;
        }
      }
    }
  }
  EXPECT_EQ(zero_hits, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllCurves, CurveOriginTest,
                         ::testing::Values("scan", "cscan", "peano", "gray",
                                           "hilbert", "spiral", "diagonal"));

}  // namespace
}  // namespace csfc
