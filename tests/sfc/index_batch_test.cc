// IndexBatch / BuildIndexTable identity for every curve family.
//
// PR 8 vectorizes the Z-order and Gray encode loops (IndexBatch
// overrides riding common/simd.h) and reroutes their BuildIndexTable
// through the batch encoder. The contract is the same as the
// characterization kernel's: bit-identical results to the per-point
// Index() path at every CSFC_SIMD level, for every batch size including
// lane remainders. The base-class IndexBatch (a plain loop) is covered
// by the same sweep, so curves without an override stay honest too.

#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/simd.h"
#include "sfc/curve.h"
#include "sfc/registry.h"

namespace csfc {
namespace {

class OverrideGuard {
 public:
  OverrideGuard() : saved_(simd::OverrideMode()) {}
  ~OverrideGuard() { simd::SetOverride(saved_); }

 private:
  simd::Mode saved_;
};

std::vector<uint32_t> RandomPoints(Rng& rng, const GridSpec& spec, size_t n) {
  std::vector<uint32_t> flat(n * spec.dims);
  for (uint32_t& c : flat) {
    c = static_cast<uint32_t>(rng.Uniform(spec.side()));
  }
  return flat;
}

void ExpectIndexBatchMatchesIndex(const SpaceFillingCurve& curve,
                                  uint64_t seed) {
  Rng rng(seed);
  const uint32_t d = curve.dims();
  // Sizes straddling the 2-lane and 4-lane widths and the 64-point
  // blocks of BuildIndexTableByEncode.
  for (const size_t n : {0u, 1u, 2u, 3u, 5u, 8u, 63u, 64u, 65u, 200u}) {
    const std::vector<uint32_t> flat = RandomPoints(rng, curve.spec(), n);
    std::vector<uint64_t> got(n, ~uint64_t{0});
    curve.IndexBatch(std::span<const uint32_t>(flat.data(), flat.size()),
                     std::span<uint64_t>(got.data(), got.size()));
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(got[j],
                curve.Index(std::span<const uint32_t>(&flat[j * d], d)))
          << curve.name() << " point " << j << " of " << n;
    }
  }
}

TEST(IndexBatchTest, MatchesPerPointIndexForEveryCurve) {
  uint64_t seed = 500;
  for (const std::string_view name : AllCurveNames()) {
    for (const GridSpec spec :
         {GridSpec{.dims = 1, .bits = 9}, GridSpec{.dims = 2, .bits = 5},
          GridSpec{.dims = 3, .bits = 4}, GridSpec{.dims = 5, .bits = 2}}) {
      auto curve = MakeCurve(name, spec);
      ASSERT_TRUE(curve.ok()) << name;
      ExpectIndexBatchMatchesIndex(**curve, ++seed);
    }
  }
}

// The SIMD-overridden curves must agree with Index() at EVERY resolved
// level, not just the default: force each level in turn.
TEST(IndexBatchTest, ZOrderAndGrayAgreeAtEveryForcedLevel) {
  OverrideGuard guard;
  uint64_t seed = 900;
  for (const simd::Mode mode :
       {simd::Mode::kScalar, simd::Mode::kSse2, simd::Mode::kAvx2,
        simd::Mode::kAuto}) {
    simd::SetOverride(mode);
    for (const std::string_view name : {"peano", "gray"}) {
      const GridSpec spec{.dims = 3, .bits = 5};
      auto curve = MakeCurve(name, spec);
      ASSERT_TRUE(curve.ok()) << name;
      ExpectIndexBatchMatchesIndex(**curve, ++seed);
    }
  }
}

// BuildIndexTableByEncode must produce the identical table the generic
// curve walk produces — same bijection, opposite traversal.
TEST(IndexBatchTest, EncodeBuiltTablesMatchCurveWalk) {
  OverrideGuard guard;
  for (const simd::Mode mode : {simd::Mode::kScalar, simd::Mode::kAuto}) {
    simd::SetOverride(mode);
    for (const std::string_view name : {"peano", "gray"}) {
      const GridSpec spec{.dims = 2, .bits = 5};
      auto curve = MakeCurve(name, spec);
      ASSERT_TRUE(curve.ok()) << name;
      const std::vector<uint64_t> table = (*curve)->BuildIndexTable();
      ASSERT_EQ(table.size(), spec.num_cells());
      // Check against Index() on every cell, and that it is a bijection.
      std::vector<bool> seen(table.size(), false);
      std::vector<uint32_t> p(spec.dims);
      for (uint64_t cell = 0; cell < table.size(); ++cell) {
        for (uint32_t k = 0; k < spec.dims; ++k) {
          p[k] = static_cast<uint32_t>(cell >> ((spec.dims - 1 - k) *
                                                spec.bits)) &
                 static_cast<uint32_t>(spec.side() - 1);
        }
        const uint64_t idx =
            (*curve)->Index(std::span<const uint32_t>(p.data(), p.size()));
        EXPECT_EQ(table[cell], idx) << name << " cell " << cell;
        ASSERT_LT(idx, table.size());
        EXPECT_FALSE(seen[idx]) << name << " duplicate index " << idx;
        seen[idx] = true;
      }
    }
  }
}

}  // namespace
}  // namespace csfc
