// Bijectivity and validation tests for every curve family: each curve over
// each tested grid must be an exact bijection between points and indices.

#include "sfc/curve.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "sfc/registry.h"

namespace csfc {
namespace {

TEST(GridSpecTest, ValidatesDims) {
  EXPECT_FALSE((GridSpec{.dims = 0, .bits = 4}.Validate().ok()));
  EXPECT_FALSE((GridSpec{.dims = 17, .bits = 1}.Validate().ok()));
  EXPECT_TRUE((GridSpec{.dims = 16, .bits = 1}.Validate().ok()));
}

TEST(GridSpecTest, ValidatesBits) {
  EXPECT_FALSE((GridSpec{.dims = 2, .bits = 0}.Validate().ok()));
  EXPECT_FALSE((GridSpec{.dims = 2, .bits = 17}.Validate().ok()));
  EXPECT_TRUE((GridSpec{.dims = 2, .bits = 16}.Validate().ok()));
}

TEST(GridSpecTest, ValidatesTotalBits) {
  // 8 * 8 = 64 > 62.
  EXPECT_FALSE((GridSpec{.dims = 8, .bits = 8}.Validate().ok()));
  // 6 * 10 = 60 <= 62.
  EXPECT_TRUE((GridSpec{.dims = 6, .bits = 10}.Validate().ok()));
}

TEST(GridSpecTest, DerivedQuantities) {
  GridSpec s{.dims = 3, .bits = 4};
  EXPECT_EQ(s.side(), 16u);
  EXPECT_EQ(s.num_cells(), uint64_t{1} << 12);
}

TEST(RegistryTest, KnowsAllCanonicalNames) {
  for (auto name : AllCurveNames()) {
    EXPECT_TRUE(IsKnownCurve(name)) << name;
  }
  EXPECT_EQ(AllCurveNames().size(), 7u);
}

TEST(RegistryTest, Aliases) {
  EXPECT_TRUE(IsKnownCurve("sweep"));   // = cscan
  EXPECT_TRUE(IsKnownCurve("zorder"));  // = peano
  GridSpec spec{.dims = 2, .bits = 3};
  auto a = MakeCurve("sweep", spec);
  auto b = MakeCurve("cscan", spec);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<uint32_t> p{3, 5};
  EXPECT_EQ((*a)->IndexOf(p), (*b)->IndexOf(p));
}

TEST(RegistryTest, RejectsUnknownName) {
  auto r = MakeCurve("koch", GridSpec{.dims = 2, .bits = 2});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, PropagatesSpecValidation) {
  auto r = MakeCurve("hilbert", GridSpec{.dims = 0, .bits = 2});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Property sweep: bijectivity of every curve over a family of grids.

using CurveGridParam = std::tuple<std::string, uint32_t, uint32_t>;

class CurveBijectionTest : public ::testing::TestWithParam<CurveGridParam> {};

TEST_P(CurveBijectionTest, PointOfIndexRoundTrips) {
  const auto& [name, dims, bits] = GetParam();
  GridSpec spec{.dims = dims, .bits = bits};
  auto curve = MakeCurve(name, spec);
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  std::vector<uint32_t> p(dims);
  for (uint64_t i = 0; i < spec.num_cells(); ++i) {
    (*curve)->Point(i, std::span<uint32_t>(p.data(), dims));
    for (uint32_t c : p) ASSERT_LT(c, spec.side()) << name << " index " << i;
    const uint64_t back =
        (*curve)->Index(std::span<const uint32_t>(p.data(), dims));
    ASSERT_EQ(back, i) << name << " dims=" << dims << " bits=" << bits;
  }
}

TEST_P(CurveBijectionTest, NameMatchesCanonical) {
  const auto& [name, dims, bits] = GetParam();
  auto curve = MakeCurve(name, GridSpec{.dims = dims, .bits = bits});
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ((*curve)->name(), name);
  EXPECT_EQ((*curve)->dims(), dims);
  EXPECT_EQ((*curve)->bits(), bits);
}

std::vector<CurveGridParam> AllCurveGrids() {
  std::vector<CurveGridParam> params;
  for (auto name : AllCurveNames()) {
    for (uint32_t dims : {1u, 2u, 3u, 4u, 5u}) {
      for (uint32_t bits : {1u, 2u, 3u}) {
        params.emplace_back(std::string(name), dims, bits);
      }
    }
    // Larger 2-D grids and a high-dimensional shallow grid.
    params.emplace_back(std::string(name), 2u, 6u);
    params.emplace_back(std::string(name), 12u, 1u);
    params.emplace_back(std::string(name), 6u, 2u);
  }
  return params;
}

std::string ParamName(
    const ::testing::TestParamInfo<CurveGridParam>& info) {
  const auto& [name, dims, bits] = info.param;
  return name + "_d" + std::to_string(dims) + "_b" + std::to_string(bits);
}

INSTANTIATE_TEST_SUITE_P(AllCurves, CurveBijectionTest,
                         ::testing::ValuesIn(AllCurveGrids()), ParamName);

// ---------------------------------------------------------------------------
// Sparse bijectivity for big grids (full enumeration would be 2^32 cells):
// sample points, round-trip through Index then Point.

class CurveBigGridTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CurveBigGridTest, SampledRoundTripOn16BitGrid) {
  GridSpec spec{.dims = 2, .bits = 16};
  auto curve = MakeCurve(GetParam(), spec);
  ASSERT_TRUE(curve.ok());
  uint64_t x = 0x243F6A8885A308D3ULL;  // deterministic pseudo-random walk
  std::vector<uint32_t> p(2), q(2);
  for (int i = 0; i < 2000; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    p[0] = static_cast<uint32_t>(x >> 32) & 0xFFFF;
    p[1] = static_cast<uint32_t>(x >> 16) & 0xFFFF;
    const uint64_t idx =
        (*curve)->Index(std::span<const uint32_t>(p.data(), 2));
    ASSERT_LT(idx, spec.num_cells());
    (*curve)->Point(idx, std::span<uint32_t>(q.data(), 2));
    ASSERT_EQ(p, q) << GetParam() << " at sample " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCurves, CurveBigGridTest,
                         ::testing::Values("scan", "cscan", "peano", "gray",
                                           "hilbert", "spiral", "diagonal"));

// Sampled index->point->index round trips near the 62-bit budget, where
// arithmetic overflow bugs in the combinatorial curves would surface.

class CurveDeepGridTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CurveDeepGridTest, SampledIndexRoundTripOnDeepGrids) {
  for (GridSpec spec : {GridSpec{.dims = 3, .bits = 10},
                        GridSpec{.dims = 4, .bits = 15},
                        GridSpec{.dims = 12, .bits = 5}}) {
    auto curve = MakeCurve(GetParam(), spec);
    ASSERT_TRUE(curve.ok()) << curve.status().ToString();
    std::vector<uint32_t> p(spec.dims);
    uint64_t x = 0x9E3779B97F4A7C15ULL;
    for (int i = 0; i < 300; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      const uint64_t index = x % spec.num_cells();
      (*curve)->Point(index, std::span<uint32_t>(p.data(), spec.dims));
      for (uint32_t c : p) ASSERT_LT(c, spec.side());
      ASSERT_EQ((*curve)->Index(std::span<const uint32_t>(p.data(), spec.dims)),
                index)
          << GetParam() << " dims=" << spec.dims << " bits=" << spec.bits;
    }
  }
}

TEST_P(CurveDeepGridTest, FirstAndLastIndicesAreValid) {
  GridSpec spec{.dims = 4, .bits = 15};  // 60 bits
  auto curve = MakeCurve(GetParam(), spec);
  ASSERT_TRUE(curve.ok());
  std::vector<uint32_t> p(4);
  for (uint64_t index : {uint64_t{0}, spec.num_cells() - 1}) {
    (*curve)->Point(index, std::span<uint32_t>(p.data(), 4));
    for (uint32_t c : p) ASSERT_LT(c, spec.side());
    EXPECT_EQ((*curve)->Index(std::span<const uint32_t>(p.data(), 4)), index);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCurves, CurveDeepGridTest,
                         ::testing::Values("scan", "cscan", "peano", "gray",
                                           "hilbert", "spiral", "diagonal"));

}  // namespace
}  // namespace csfc
