#include "sfc/locality.h"

#include <gtest/gtest.h>

#include "sfc/registry.h"

namespace csfc {
namespace {

LocalityStats Analyze(const std::string& name, GridSpec spec) {
  auto c = MakeCurve(name, spec);
  EXPECT_TRUE(c.ok());
  auto stats = AnalyzeCurve(**c);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return *stats;
}

TEST(LocalityTest, HilbertIsFullyContiguous) {
  const auto s = Analyze("hilbert", GridSpec{.dims = 2, .bits = 5});
  EXPECT_EQ(s.jumps, 0u);
  EXPECT_EQ(s.contiguous_steps, (uint64_t{1} << 10) - 1);
  EXPECT_DOUBLE_EQ(s.mean_step_l1, 1.0);
  EXPECT_EQ(s.max_step_l1, 1u);
}

TEST(LocalityTest, ScanIsFullyContiguous) {
  const auto s = Analyze("scan", GridSpec{.dims = 3, .bits = 3});
  EXPECT_EQ(s.jumps, 0u);
}

TEST(LocalityTest, CScanJumpsAtRowBoundaries) {
  const auto s = Analyze("cscan", GridSpec{.dims = 2, .bits = 3});
  // 8 rows of 8: 7 within-row steps per row are contiguous, 7 row changes
  // jump from column 7 back to column 0.
  EXPECT_EQ(s.jumps, 7u);
  EXPECT_EQ(s.contiguous_steps, 56u);
  EXPECT_EQ(s.max_step_l1, 8u);
}

TEST(LocalityTest, GrayStepsAreSingleCoordinate) {
  const auto s = Analyze("gray", GridSpec{.dims = 2, .bits = 4});
  // Every step changes one coordinate by a power of two >= 1.
  EXPECT_GT(s.contiguous_steps, 0u);
  EXPECT_GE(s.mean_step_l1, 1.0);
}

TEST(LocalityTest, CScanFavorsItsMajorDimension) {
  const auto s = Analyze("cscan", GridSpec{.dims = 3, .bits = 3});
  ASSERT_EQ(s.dim_inversion_rate.size(), 3u);
  // Dimension 0 is the sweep-major axis: a pair earlier on the curve can
  // never have a larger dim-0 coordinate.
  EXPECT_LT(s.dim_inversion_rate[0], 0.01);
  // Minor dimensions carry real inversion mass.
  EXPECT_GT(s.dim_inversion_rate[2], 0.2);
}

TEST(LocalityTest, HilbertTreatsDimensionsEvenly) {
  const auto s = Analyze("hilbert", GridSpec{.dims = 3, .bits = 3});
  ASSERT_EQ(s.dim_inversion_rate.size(), 3u);
  for (double rate : s.dim_inversion_rate) {
    EXPECT_GT(rate, 0.1);
    EXPECT_LT(rate, 0.5);
  }
}

TEST(IrregularityTest, CScanMajorAxisIsMonotone) {
  const auto s = Analyze("cscan", GridSpec{.dims = 3, .bits = 3});
  ASSERT_EQ(s.dim_irregularity.size(), 3u);
  EXPECT_EQ(s.dim_irregularity[0], 0u);  // sweep-major never decreases
  EXPECT_GT(s.dim_irregularity[1], 0u);
  EXPECT_GT(s.dim_irregularity[2], 0u);
}

TEST(IrregularityTest, ScanMajorAxisIsMonotoneToo) {
  const auto s = Analyze("scan", GridSpec{.dims = 3, .bits = 3});
  EXPECT_EQ(s.dim_irregularity[0], 0u);
}

TEST(IrregularityTest, HilbertBalancesIrregularityAcrossDims) {
  const auto s = Analyze("hilbert", GridSpec{.dims = 2, .bits = 4});
  ASSERT_EQ(s.dim_irregularity.size(), 2u);
  EXPECT_GT(s.dim_irregularity[0], 0u);
  EXPECT_GT(s.dim_irregularity[1], 0u);
  // Within a factor of two of each other: the curve has no favored axis.
  const uint64_t hi =
      std::max(s.dim_irregularity[0], s.dim_irregularity[1]);
  const uint64_t lo =
      std::min(s.dim_irregularity[0], s.dim_irregularity[1]);
  EXPECT_LT(hi, 2 * lo);
}

TEST(IrregularityTest, DiagonalIrregularityIsSymmetric2D) {
  const auto s = Analyze("diagonal", GridSpec{.dims = 2, .bits = 3});
  // The zigzag treats both axes identically up to plane parity.
  const uint64_t a = s.dim_irregularity[0];
  const uint64_t b = s.dim_irregularity[1];
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b),
              static_cast<double>(std::max(a, b)) * 0.35 + 2.0);
}

TEST(IrregularityTest, SumOfDecreasesBoundedBySteps) {
  for (auto name : AllCurveNames()) {
    const auto s = Analyze(std::string(name), GridSpec{.dims = 2, .bits = 3});
    const uint64_t steps = (uint64_t{1} << 6) - 1;
    for (uint64_t irr : s.dim_irregularity) EXPECT_LE(irr, steps) << name;
  }
}

TEST(LocalityTest, RejectsOversizedGrids) {
  auto c = MakeCurve("cscan", GridSpec{.dims = 2, .bits = 16});
  ASSERT_TRUE(c.ok());
  auto stats = AnalyzeCurve(**c, /*max_cells=*/1 << 20);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kInvalidArgument);
}

TEST(LocalityTest, DeterministicForFixedSeed) {
  auto c = MakeCurve("spiral", GridSpec{.dims = 2, .bits = 4});
  ASSERT_TRUE(c.ok());
  auto a = AnalyzeCurve(**c, 1 << 22, 1 << 12, 99);
  auto b = AnalyzeCurve(**c, 1 << 22, 1 << 12, 99);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->dim_inversion_rate, b->dim_inversion_rate);
}

}  // namespace
}  // namespace csfc
