// End-to-end pipeline tests: full workloads through the simulator with
// baselines and the Cascaded-SFC scheduler, asserting the qualitative
// relationships the paper's evaluation is built on.

#include <gtest/gtest.h>

#include <memory>

#include "core/presets.h"
#include "exp/runner.h"
#include "sched/registry.h"
#include "sched/edf.h"
#include "sched/fcfs.h"
#include "sched/scan_family.h"
#include "sched/sstf.h"
#include "workload/mpeg.h"
#include "workload/trace.h"

namespace csfc {
namespace {

std::vector<Request> SyntheticTrace(uint64_t seed, uint64_t count,
                                    double interarrival_ms,
                                    uint32_t dims = 3) {
  WorkloadConfig c;
  c.seed = seed;
  c.count = count;
  c.mean_interarrival_ms = interarrival_ms;
  c.priority_dims = dims;
  c.priority_levels = 16;
  c.deadline_lo_ms = 500;
  c.deadline_hi_ms = 700;
  auto gen = SyntheticGenerator::Create(c);
  EXPECT_TRUE(gen.ok());
  return DrainGenerator(**gen);
}

RunMetrics RunSim(const std::vector<Request>& trace, SchedulerFactory factory,
               SimulatorConfig sc = SimulatorConfig()) {
  auto m = RunSchedulerOnTrace(sc, trace, factory);
  EXPECT_TRUE(m.ok()) << m.status().ToString();
  return *m;
}

SchedulerFactory Cascaded(const CascadedConfig& config) {
  SchedulerRegistryContext ctx;
  ctx.cascaded = config;
  auto factory = MakeSchedulerFactory("csfc", ctx);
  EXPECT_TRUE(factory.ok()) << factory.status().ToString();
  return std::move(*factory);
}

TEST(IntegrationTest, EveryRequestIsEventuallyServed) {
  const auto trace = SyntheticTrace(1, 2000, 15.0);
  for (const auto& factory : std::vector<SchedulerFactory>{
           [] { return std::make_unique<FcfsScheduler>(); },
           [] { return std::make_unique<EdfScheduler>(); },
           [] { return std::make_unique<SstfScheduler>(); },
           Cascaded(PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05, 700)),
       }) {
    const RunMetrics m = RunSim(trace, factory);
    EXPECT_EQ(m.completions, 2000u);
  }
}

TEST(IntegrationTest, EdfMissesFewerDeadlinesThanFcfsUnderLoad) {
  // Near-saturation load with a wide deadline spread: FCFS lets urgent
  // requests rot behind relaxed ones; EDF reorders and saves them.
  WorkloadConfig wc;
  wc.seed = 2;
  wc.count = 3000;
  wc.mean_interarrival_ms = 26.0;
  wc.deadline_lo_ms = 100;
  wc.deadline_hi_ms = 1500;
  auto gen = SyntheticGenerator::Create(wc);
  ASSERT_TRUE(gen.ok());
  const auto trace = DrainGenerator(**gen);
  const RunMetrics fcfs =
      RunSim(trace, [] { return std::make_unique<FcfsScheduler>(); });
  const RunMetrics edf =
      RunSim(trace, [] { return std::make_unique<EdfScheduler>(); });
  EXPECT_LT(edf.deadline_misses, fcfs.deadline_misses);
}

TEST(IntegrationTest, SeekOptimizersBeatFcfsOnSeekTime) {
  const auto trace = SyntheticTrace(3, 3000, 10.0);
  const RunMetrics fcfs =
      RunSim(trace, [] { return std::make_unique<FcfsScheduler>(); });
  const RunMetrics cscan = RunSim(trace, [] {
    return std::make_unique<ScanScheduler>(ScanVariant::kCScan, 3832);
  });
  EXPECT_LT(cscan.total_seek_ms, fcfs.total_seek_ms);
}

TEST(IntegrationTest, CascadedStage3ReducesSeekVersusPureEdf) {
  const auto trace = SyntheticTrace(4, 3000, 12.0);
  const RunMetrics edf =
      RunSim(trace, [] { return std::make_unique<EdfScheduler>(); });
  const RunMetrics cascaded =
      RunSim(trace, Cascaded(PresetFull("hilbert", 3, 4, 1.0, 3, 3832, 0.05,
                                     700)));
  EXPECT_LT(cascaded.total_seek_ms, edf.total_seek_ms);
}

TEST(IntegrationTest, Stage1ReducesPriorityInversionVersusFcfs) {
  SimulatorConfig sc;
  sc.service_model = ServiceModel::kTransferOnly;
  WorkloadConfig wc;
  wc.seed = 5;
  wc.count = 4000;
  wc.mean_interarrival_ms = 8.0;  // keep a deep queue
  wc.priority_dims = 3;
  wc.relaxed_deadlines = true;
  auto gen = SyntheticGenerator::Create(wc);
  ASSERT_TRUE(gen.ok());
  const auto trace = DrainGenerator(**gen);
  const RunMetrics fcfs =
      RunSim(trace, [] { return std::make_unique<FcfsScheduler>(); }, sc);
  // Diagonal is the strongest SFC1 curve at small windows (Section 5.1).
  const RunMetrics diagonal =
      RunSim(trace, Cascaded(PresetStage1Only("diagonal", 3, 4, 0.05)), sc);
  EXPECT_LT(diagonal.total_inversions(), fcfs.total_inversions() * 3 / 4);
  // ...whereas Gray and Hilbert carry very high priority inversion, on par
  // with FIFO (the paper's Figure 5 finding).
  const RunMetrics hilbert =
      RunSim(trace, Cascaded(PresetStage1Only("hilbert", 3, 4, 0.05)), sc);
  EXPECT_GT(hilbert.total_inversions(), diagonal.total_inversions());
}

TEST(IntegrationTest, MpegWorkloadWeightedCostOrdering) {
  MpegWorkloadConfig mc;
  mc.seed = 6;
  mc.num_users = 85;
  mc.duration_ms = 20000;
  auto gen = MpegStreamGenerator::Create(mc);
  ASSERT_TRUE(gen.ok());
  const auto trace = DrainGenerator(**gen);

  SimulatorConfig sc;
  sc.metrics.dims = 1;
  sc.metrics.levels = 8;

  const RunMetrics fcfs =
      RunSim(trace, [] { return std::make_unique<FcfsScheduler>(); }, sc);
  const RunMetrics hilbert = RunSim(
      trace, Cascaded(PresetStage2Curve("hilbert", true, 3, 0.05, 150.0)),
      sc);
  // The SFC scheduler must beat FCFS on the Section-6 weighted loss cost.
  EXPECT_LT(hilbert.WeightedLossCost(), fcfs.WeightedLossCost());
}

TEST(IntegrationTest, TraceReplayIsSchedulerIndependentInput) {
  // The same trace object run twice through the same factory gives
  // identical metrics (no hidden state in the harness).
  const auto trace = SyntheticTrace(7, 1000, 20.0);
  const auto factory =
      Cascaded(PresetFull("peano", 3, 4, 1.0, 4, 3832, 0.1, 700));
  const RunMetrics a = RunSim(trace, factory);
  const RunMetrics b = RunSim(trace, factory);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_inversions(), b.total_inversions());
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
}

TEST(IntegrationTest, AllSevenCurvesRunAsStage1) {
  SimulatorConfig sc;
  sc.service_model = ServiceModel::kTransferOnly;
  WorkloadConfig wc;
  wc.seed = 8;
  wc.count = 1000;
  wc.mean_interarrival_ms = 10.0;
  wc.priority_dims = 4;
  wc.relaxed_deadlines = true;
  auto gen = SyntheticGenerator::Create(wc);
  ASSERT_TRUE(gen.ok());
  const auto trace = DrainGenerator(**gen);
  for (const char* curve : {"scan", "cscan", "peano", "gray", "hilbert",
                            "spiral", "diagonal"}) {
    const RunMetrics m =
        RunSim(trace, Cascaded(PresetStage1Only(curve, 4, 4, 0.05)), sc);
    EXPECT_EQ(m.completions, 1000u) << curve;
  }
}

}  // namespace
}  // namespace csfc
