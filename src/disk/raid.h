// RAID-5 layout of the PanaViss array (Table 1: 5 disks, 4 data + 1
// parity, left-symmetric rotating parity). Maps a logical block number to
// the member disk and physical block that hold it, and computes the parity
// location of each stripe — enough to place multimedia streams across the
// array and to model the extra parity write of a small-write.

#ifndef CSFC_DISK_RAID_H_
#define CSFC_DISK_RAID_H_

#include <cstdint>

#include "common/status.h"
#include "disk/disk_model.h"

namespace csfc {

/// Physical location of a block inside the array.
struct RaidLocation {
  uint32_t disk = 0;      ///< member disk index, 0-based
  uint64_t block = 0;     ///< physical block number on that disk
  Cylinder cylinder = 0;  ///< cylinder holding the block
};

/// Left-symmetric RAID-5 address mapping.
class Raid5Layout {
 public:
  /// `num_disks` >= 3 (data + parity); `blocks_per_disk` > 0.
  /// `disk` supplies geometry so blocks can be placed on cylinders.
  static Result<Raid5Layout> Create(uint32_t num_disks,
                                    uint64_t blocks_per_disk,
                                    const DiskParams& disk);

  uint32_t num_disks() const { return num_disks_; }
  uint32_t data_disks() const { return num_disks_ - 1; }
  uint64_t blocks_per_disk() const { return blocks_per_disk_; }
  /// Usable (data) capacity in blocks.
  uint64_t data_blocks() const {
    return blocks_per_disk_ * (num_disks_ - 1);
  }

  /// Maps a logical (data) block to its physical location.
  /// `lbn` must be < data_blocks().
  RaidLocation Map(uint64_t lbn) const;

  /// Location of the parity block of the stripe containing `lbn`.
  RaidLocation ParityOf(uint64_t lbn) const;

  /// Cylinder holding physical block `pbn` (uniform blocks/cylinder).
  Cylinder CylinderOfBlock(uint64_t pbn) const;

 private:
  Raid5Layout(uint32_t num_disks, uint64_t blocks_per_disk,
              const DiskParams& disk);

  uint32_t num_disks_;
  uint64_t blocks_per_disk_;
  uint32_t cylinders_;
  uint64_t blocks_per_cylinder_;
};

}  // namespace csfc

#endif  // CSFC_DISK_RAID_H_
