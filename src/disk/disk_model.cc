#include "disk/disk_model.h"

#include <cmath>
#include <cstdlib>

namespace csfc {

double SeekModel::SeekMs(uint32_t distance) const {
  if (distance == 0) return 0.0;
  if (distance < cutoff) {
    return sqrt_coeff_a + sqrt_coeff_b * std::sqrt(static_cast<double>(distance));
  }
  return lin_coeff_c + lin_coeff_e * static_cast<double>(distance);
}

DiskParams DiskParams::PanaVissDisk() { return DiskParams{}; }

Status DiskParams::Validate() const {
  if (cylinders < 2) return Status::InvalidArgument("cylinders must be >= 2");
  if (zones == 0 || zones > cylinders) {
    return Status::InvalidArgument("zones must be in [1, cylinders]");
  }
  if (rpm == 0) return Status::InvalidArgument("rpm must be > 0");
  if (outer_rate_mbps <= 0 || inner_rate_mbps <= 0) {
    return Status::InvalidArgument("zone rates must be > 0");
  }
  if (inner_rate_mbps > outer_rate_mbps) {
    return Status::InvalidArgument(
        "inner zone cannot be faster than outer zone");
  }
  if (block_bytes == 0) return Status::InvalidArgument("block_bytes must be > 0");
  return Status::OK();
}

Result<DiskModel> DiskModel::Create(const DiskParams& params) {
  if (Status s = params.Validate(); !s.ok()) return s;
  return DiskModel(params);
}

double DiskModel::SeekTimeMs(Cylinder from, Cylinder to) const {
  const uint32_t d = from > to ? from - to : to - from;
  return params_.seek.SeekMs(d);
}

double DiskModel::RotationMs() const {
  return 60.0 * 1000.0 / static_cast<double>(params_.rpm);
}

double DiskModel::AvgRotationalLatencyMs() const { return RotationMs() / 2.0; }

double DiskModel::SampleRotationalLatencyMs(Rng& rng) const {
  return rng.UniformDouble(0.0, RotationMs());
}

uint32_t DiskModel::ZoneOf(Cylinder cyl) const {
  const uint64_t z = static_cast<uint64_t>(cyl) * params_.zones / params_.cylinders;
  return static_cast<uint32_t>(z >= params_.zones ? params_.zones - 1 : z);
}

double DiskModel::ZoneRateMBps(uint32_t zone) const {
  if (params_.zones == 1) return params_.outer_rate_mbps;
  const double frac =
      static_cast<double>(zone) / static_cast<double>(params_.zones - 1);
  return params_.outer_rate_mbps +
         frac * (params_.inner_rate_mbps - params_.outer_rate_mbps);
}

double DiskModel::TransferTimeMs(Cylinder cyl, uint64_t bytes) const {
  const double rate_bytes_per_ms = ZoneRateMBps(ZoneOf(cyl)) * 1e6 / 1000.0;
  return static_cast<double>(bytes) / rate_bytes_per_ms;
}

double DiskModel::ServiceTimeMs(Cylinder from, Cylinder to, uint64_t bytes,
                                Rng* rng) const {
  const double latency =
      rng ? SampleRotationalLatencyMs(*rng) : AvgRotationalLatencyMs();
  return SeekTimeMs(from, to) + latency + TransferTimeMs(to, bytes);
}

double DiskModel::MeanRandomSeekMs() const {
  // For X, Y uniform on {0..C-1}, P(|X-Y| = d) = (2(C-d)) / C^2 for d >= 1
  // and 1/C for d = 0. Sum seek(d) over that distribution.
  const uint64_t c = params_.cylinders;
  double mean = 0.0;
  const double c2 = static_cast<double>(c) * static_cast<double>(c);
  for (uint64_t d = 1; d < c; ++d) {
    const double p = 2.0 * static_cast<double>(c - d) / c2;
    mean += p * params_.seek.SeekMs(static_cast<uint32_t>(d));
  }
  return mean;
}

double DiskModel::MaxSeekMs() const {
  return params_.seek.SeekMs(params_.cylinders - 1);
}

}  // namespace csfc
