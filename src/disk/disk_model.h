// Disk service-time model, parameterized after Table 1 of the paper
// (Quantum XP32150-class drive in the PanaViss video server):
//
//   cylinders 3832, 10 tracks/cylinder, 16 zones, 512-byte sectors,
//   7200 RPM, average seek 8.5 ms, max seek 18 ms, 2.1 GB capacity,
//   64 KB file blocks, RAID-5 over 5 disks (4 data + 1 parity).
//
// The paper's seek-cost-function cell is unreadable in the available text;
// we use the standard two-regime analytic model (Ruemmler & Wilkes):
//   seek(d) = a + b*sqrt(d)           for 0 < d < cutoff  (arm acceleration)
//   seek(d) = c + e*d                 for d >= cutoff     (coast at speed)
// with default constants calibrated so that the mean seek over uniformly
// random request pairs is 8.5 ms and seek(max distance) = 18 ms, matching
// the published figures (see disk_model_test.cc).

#ifndef CSFC_DISK_DISK_MODEL_H_
#define CSFC_DISK_DISK_MODEL_H_

#include <cstdint>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace csfc {

/// Two-regime seek-time curve (milliseconds as a function of cylinder
/// distance).
struct SeekModel {
  // Defaults calibrated (see bench_table1_disk) so that over the 3832
  // cylinders of Table 1: seek(1) = 2.5 ms, the curve is continuous at the
  // regime boundary, the mean seek over uniform random pairs is 8.50 ms and
  // the full-stroke seek is 18.0 ms.
  double sqrt_coeff_a = 2.35;     ///< a in a + b*sqrt(d)
  double sqrt_coeff_b = 0.15;     ///< b in a + b*sqrt(d)
  uint32_t cutoff = 600;          ///< regime boundary (cylinders)
  double lin_coeff_c = 3.8003;    ///< c in c + e*d
  double lin_coeff_e = 0.003707;  ///< e in c + e*d

  /// Seek time in ms for a move of `distance` cylinders (0 -> 0 ms).
  double SeekMs(uint32_t distance) const;
};

/// Static drive geometry and performance parameters.
struct DiskParams {
  uint32_t cylinders = 3832;
  uint32_t tracks_per_cylinder = 10;
  uint32_t zones = 16;
  uint32_t sector_bytes = 512;
  uint32_t rpm = 7200;
  /// Sustained media rate of the outermost zone, MB/s. Inner zones scale
  /// down linearly to `inner_rate_mbps`.
  double outer_rate_mbps = 7.5;
  double inner_rate_mbps = 4.5;
  uint64_t block_bytes = 64 * 1024;  ///< file system block (Table 1)
  SeekModel seek;

  /// Parameters of the Table-1 drive (the defaults above).
  static DiskParams PanaVissDisk();

  Status Validate() const;
};

/// Computes per-request service-time components from DiskParams.
///
/// All times are in milliseconds; SimTime conversion happens at the
/// simulator boundary. The model is deliberately head-position-only (no
/// track skew / head switch): the scheduling algorithms under study act on
/// cylinder distance, which this captures.
class DiskModel {
 public:
  /// `params` must validate; construction with invalid params is rejected.
  static Result<DiskModel> Create(const DiskParams& params);

  const DiskParams& params() const { return params_; }

  /// Seek time between two cylinders.
  double SeekTimeMs(Cylinder from, Cylinder to) const;

  /// One full platter rotation.
  double RotationMs() const;

  /// Expected rotational latency (half a rotation).
  double AvgRotationalLatencyMs() const;

  /// Rotational latency sampled uniformly in [0, rotation).
  double SampleRotationalLatencyMs(Rng& rng) const;

  /// Zone index of a cylinder (0 = outermost = fastest).
  uint32_t ZoneOf(Cylinder cyl) const;

  /// Sustained media rate of a zone in MB/s.
  double ZoneRateMBps(uint32_t zone) const;

  /// Media transfer time for `bytes` read at `cyl`'s zone rate.
  double TransferTimeMs(Cylinder cyl, uint64_t bytes) const;

  /// Full service time: seek + rotational latency + transfer.
  /// If `rng` is null the expected (half-rotation) latency is used,
  /// keeping the simulation deterministic without an RNG stream.
  double ServiceTimeMs(Cylinder from, Cylinder to, uint64_t bytes,
                       Rng* rng = nullptr) const;

  /// Mean seek time over uniformly random (from, to) pairs, computed
  /// analytically from the distance distribution. Used for calibration
  /// tests against the published 8.5 ms average.
  double MeanRandomSeekMs() const;

  /// Seek time at the maximum distance (cylinders-1).
  double MaxSeekMs() const;

 private:
  explicit DiskModel(const DiskParams& params) : params_(params) {}

  DiskParams params_;
};

}  // namespace csfc

#endif  // CSFC_DISK_DISK_MODEL_H_
