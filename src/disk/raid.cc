#include "disk/raid.h"

namespace csfc {

Result<Raid5Layout> Raid5Layout::Create(uint32_t num_disks,
                                        uint64_t blocks_per_disk,
                                        const DiskParams& disk) {
  if (num_disks < 3) {
    return Status::InvalidArgument("RAID-5 needs at least 3 disks");
  }
  if (blocks_per_disk == 0) {
    return Status::InvalidArgument("blocks_per_disk must be > 0");
  }
  if (Status s = disk.Validate(); !s.ok()) return s;
  return Raid5Layout(num_disks, blocks_per_disk, disk);
}

Raid5Layout::Raid5Layout(uint32_t num_disks, uint64_t blocks_per_disk,
                         const DiskParams& disk)
    : num_disks_(num_disks),
      blocks_per_disk_(blocks_per_disk),
      cylinders_(disk.cylinders) {
  blocks_per_cylinder_ = blocks_per_disk_ / cylinders_;
  if (blocks_per_cylinder_ == 0) blocks_per_cylinder_ = 1;
}

RaidLocation Raid5Layout::Map(uint64_t lbn) const {
  const uint32_t data = data_disks();
  const uint64_t stripe = lbn / data;
  const uint32_t within = static_cast<uint32_t>(lbn % data);
  // Left-symmetric: parity rotates right-to-left; data blocks fill the
  // remaining disks starting after the parity disk.
  const uint32_t parity_disk =
      static_cast<uint32_t>((num_disks_ - 1) - (stripe % num_disks_));
  const uint32_t disk = (parity_disk + 1 + within) % num_disks_;
  RaidLocation loc;
  loc.disk = disk;
  loc.block = stripe;
  loc.cylinder = CylinderOfBlock(stripe);
  return loc;
}

RaidLocation Raid5Layout::ParityOf(uint64_t lbn) const {
  const uint64_t stripe = lbn / data_disks();
  RaidLocation loc;
  loc.disk = static_cast<uint32_t>((num_disks_ - 1) - (stripe % num_disks_));
  loc.block = stripe;
  loc.cylinder = CylinderOfBlock(stripe);
  return loc;
}

Cylinder Raid5Layout::CylinderOfBlock(uint64_t pbn) const {
  const uint64_t cyl = pbn / blocks_per_cylinder_;
  return static_cast<Cylinder>(cyl >= cylinders_ ? cylinders_ - 1 : cyl);
}

}  // namespace csfc
