#include "sim/array.h"

#include <algorithm>
#include <map>
#include <utility>

#include "workload/trace.h"

namespace csfc {

RunMetrics ArrayRunResult::Aggregate() const {
  RunMetrics total;
  for (const RunMetrics& m : per_disk) {
    total.arrivals += m.arrivals;
    total.completions += m.completions;
    if (total.inversions_per_dim.size() < m.inversions_per_dim.size()) {
      total.inversions_per_dim.resize(m.inversions_per_dim.size(), 0);
    }
    for (size_t k = 0; k < m.inversions_per_dim.size(); ++k) {
      total.inversions_per_dim[k] += m.inversions_per_dim[k];
    }
    total.deadline_misses += m.deadline_misses;
    total.deadline_total += m.deadline_total;
    if (total.misses_per_dim_level.size() < m.misses_per_dim_level.size()) {
      total.misses_per_dim_level.resize(m.misses_per_dim_level.size());
      total.totals_per_dim_level.resize(m.totals_per_dim_level.size());
    }
    for (size_t k = 0; k < m.misses_per_dim_level.size(); ++k) {
      auto& misses = total.misses_per_dim_level[k];
      auto& totals = total.totals_per_dim_level[k];
      if (misses.size() < m.misses_per_dim_level[k].size()) {
        misses.resize(m.misses_per_dim_level[k].size(), 0);
        totals.resize(m.totals_per_dim_level[k].size(), 0);
      }
      for (size_t l = 0; l < m.misses_per_dim_level[k].size(); ++l) {
        misses[l] += m.misses_per_dim_level[k][l];
        totals[l] += m.totals_per_dim_level[k][l];
      }
    }
    total.total_seek_ms += m.total_seek_ms;
    total.total_service_ms += m.total_service_ms;
    total.response_ms.Merge(m.response_ms);
    total.makespan = std::max(total.makespan, m.makespan);
  }
  return total;
}

Result<ArraySimulator> ArraySimulator::Create(const ArrayConfig& config) {
  Result<Raid5Layout> layout = Raid5Layout::Create(
      config.num_disks, config.blocks_per_disk, config.disk_sim.disk);
  if (!layout.ok()) return layout.status();
  if (Status s = config.disk_sim.Validate(); !s.ok()) return s;
  return ArraySimulator(config, std::move(*layout));
}

ArraySimulator::ArraySimulator(const ArrayConfig& config, Raid5Layout layout)
    : config_(config), layout_(std::move(layout)) {}

Result<ArrayRunResult> ArraySimulator::Run(RequestGenerator& gen,
                                           const SchedulerFactory& factory) {
  // Split the logical stream workload across members. Streams are placed
  // at fixed strides so different streams do not collide on one region.
  std::vector<std::vector<Request>> per_disk(layout_.num_disks());
  std::map<uint32_t, uint64_t> stream_block;
  std::map<uint32_t, uint64_t> stream_base;
  uint64_t next_base = 0;
  const uint64_t data_blocks = layout_.data_blocks();
  while (std::optional<Request> r = gen.Next()) {
    auto [it, inserted] = stream_base.try_emplace(r->stream, next_base);
    if (inserted) next_base += 1024;  // coarse stream spacing
    const uint64_t lbn =
        (it->second + stream_block[r->stream]++) % data_blocks;
    const RaidLocation loc = layout_.Map(lbn);
    Request placed = std::move(*r);
    placed.cylinder = loc.cylinder;
    // A write needs a parity sibling; take the copy before the data
    // request moves into its member queue (data first, parity second, so
    // replay order within a member is stable).
    if (placed.is_write) {
      const RaidLocation par = layout_.ParityOf(lbn);
      Request parity = placed;
      parity.cylinder = par.cylinder;
      per_disk[loc.disk].push_back(std::move(placed));
      per_disk[par.disk].push_back(std::move(parity));
    } else {
      per_disk[loc.disk].push_back(std::move(placed));
    }
  }

  ArrayRunResult result;
  result.per_disk.reserve(layout_.num_disks());
  for (uint32_t d = 0; d < layout_.num_disks(); ++d) {
    Result<DiskServerSimulator> sim =
        DiskServerSimulator::Create(config_.disk_sim);
    if (!sim.ok()) return sim.status();
    SchedulerPtr sched = factory();
    if (sched == nullptr) {
      return Status::Internal("scheduler factory returned null");
    }
    TraceReplayGenerator replay(std::move(per_disk[d]));
    result.per_disk.push_back(sim->Run(replay, *sched));
  }
  return result;
}

}  // namespace csfc
