// Array-level simulation: a RAID-5 group of Table-1 disks served by
// independent per-disk schedulers — the full PanaViss storage stack.
//
// Logical stream requests are placed through the Raid5Layout (reads hit
// one member; writes also touch the stripe's rotating parity disk) and
// each member disk runs its own scheduler instance and its own
// DiskServerSimulator. Per-disk metrics are returned alongside an
// aggregate.

#ifndef CSFC_SIM_ARRAY_H_
#define CSFC_SIM_ARRAY_H_

#include <vector>

#include "common/status.h"
#include "disk/raid.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace csfc {

/// Configuration of the simulated array.
struct ArrayConfig {
  /// Member-disk count (>= 3; Table 1 uses 5).
  uint32_t num_disks = 5;
  /// Physical blocks per member disk.
  uint64_t blocks_per_disk = 38320;  // 10 per cylinder on the Table-1 disk
  /// Per-disk simulator settings (disk geometry, service model, metrics).
  SimulatorConfig disk_sim;
};

/// Results of an array run.
struct ArrayRunResult {
  std::vector<RunMetrics> per_disk;
  /// Sums counts and merges distributions across members.
  RunMetrics Aggregate() const;
};

/// The array simulator.
class ArraySimulator {
 public:
  static Result<ArraySimulator> Create(const ArrayConfig& config);

  /// Places every request from `gen` onto the array (stream-striped: block
  /// k of stream s maps to logical block s*stride + k) and runs
  /// `factory`'s scheduler independently on each member disk. Writes add a
  /// same-deadline parity request on the stripe's parity disk.
  Result<ArrayRunResult> Run(RequestGenerator& gen,
                             const SchedulerFactory& factory);

  const Raid5Layout& layout() const { return layout_; }
  const ArrayConfig& config() const { return config_; }

 private:
  ArraySimulator(const ArrayConfig& config, Raid5Layout layout);

  ArrayConfig config_;
  Raid5Layout layout_;
};

}  // namespace csfc

#endif  // CSFC_SIM_ARRAY_H_
