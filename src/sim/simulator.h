// The event-driven disk-server simulator — the reproduction's stand-in for
// the PanaViss video-server simulator the paper evaluates on.
//
// One disk serves one request at a time. Two event kinds interleave:
// request arrivals (pulled lazily from a RequestGenerator) and service
// completions. Whenever the disk is idle the scheduler's Dispatch() picks
// the next request; its service time comes from the DiskModel (or, in
// transfer-dominated mode, from the transfer term alone, matching the
// Section 5.1/5.2 assumption that block transfers dwarf seeks).
//
// The simulation is fully deterministic for a given workload and
// configuration: rotational latency uses its expectation unless a latency
// seed is supplied.

#ifndef CSFC_SIM_SIMULATOR_H_
#define CSFC_SIM_SIMULATOR_H_

#include <memory>
#include <optional>

#include "common/annotations.h"
#include "common/random.h"
#include "common/status.h"
#include "disk/disk_model.h"
#include "obs/tracer.h"
#include "sched/scheduler.h"
#include "stats/metrics.h"
#include "workload/generator.h"

namespace csfc {

/// How per-request service time is computed.
enum class ServiceModel {
  /// seek + rotational latency + zoned transfer (the full disk model).
  kFullDisk,
  /// transfer only — Sections 5.1/5.2 assume block sizes large enough
  /// that transfer dominates, making service time independent of the
  /// schedule and isolating the queueing behavior of SFC1/SFC2.
  kTransferOnly,
};

/// Simulator configuration.
struct SimulatorConfig {
  DiskParams disk = DiskParams::PanaVissDisk();
  ServiceModel service_model = ServiceModel::kFullDisk;
  /// When set, rotational latency is sampled uniformly per request from
  /// an RNG seeded with this value; otherwise the expected latency is
  /// charged (deterministic).
  std::optional<uint64_t> latency_seed;
  /// Shape of the QoS metric space (dimensions / levels) tracked by the
  /// metrics layer. Replaces the former metric_dims / metric_levels pair.
  MetricsConfig metrics;
  /// Stop after this many completions (0 = run the generator dry).
  uint64_t max_completions = 0;
  /// When non-null, every Run() emits request-lifecycle trace events into
  /// this sink (not owned; must outlive the simulator). Null — the
  /// default — disables tracing at the cost of one branch per would-be
  /// event (the null-sink fast path, measured by bench_micro_hotpath).
  obs::EventSink* trace_sink = nullptr;

  Status Validate() const;
};

/// Single-disk event-driven simulation.
class DiskServerSimulator {
 public:
  static Result<DiskServerSimulator> Create(const SimulatorConfig& config);

  /// Runs `gen` through `sched` to completion and returns the metrics.
  /// Deterministic contract: the metrics (and any emitted trace) are a
  /// pure function of the config, the generator stream, and the
  /// scheduler — enforced by csfc_analyze's determinism-taint family.
  CSFC_DETERMINISTIC RunMetrics Run(RequestGenerator& gen, Scheduler& sched);

  const DiskModel& disk() const { return disk_; }

 private:
  DiskServerSimulator(const SimulatorConfig& config, DiskModel disk);

  SimulatorConfig config_;
  DiskModel disk_;
  /// Lifecycle-event tracer built from config_.trace_sink; handed to the
  /// scheduler via Scheduler::Observe at the start of each Run.
  obs::Tracer tracer_;
};

}  // namespace csfc

#endif  // CSFC_SIM_SIMULATOR_H_
