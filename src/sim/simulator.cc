#include "sim/simulator.h"

#include <utility>

namespace csfc {

Status SimulatorConfig::Validate() const {
  if (Status s = disk.Validate(); !s.ok()) return s;
  if (Status s = metrics.Validate(); !s.ok()) return s;
  return Status::OK();
}

Result<DiskServerSimulator> DiskServerSimulator::Create(
    const SimulatorConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  Result<DiskModel> disk = DiskModel::Create(config.disk);
  if (!disk.ok()) return disk.status();
  return DiskServerSimulator(config, std::move(*disk));
}

DiskServerSimulator::DiskServerSimulator(const SimulatorConfig& config,
                                         DiskModel disk)
    : config_(config), disk_(std::move(disk)), tracer_(config.trace_sink) {}

RunMetrics DiskServerSimulator::Run(RequestGenerator& gen, Scheduler& sched) {
  MetricsCollector metrics(config_.metrics);
  metrics.set_tracer(&tracer_);
  // Hand the tracer to the scheduler so observing policies (the cascaded
  // scheduler) can emit characterize / SP / ER events; baselines inherit
  // the no-op default.
  sched.Observe(tracer_);
  std::optional<Rng> latency_rng;
  if (config_.latency_seed) latency_rng.emplace(*config_.latency_seed);

  std::optional<Request> next_arrival = gen.Next();
  SimTime now = 0;
  Cylinder head = 0;
  bool busy = false;
  SimTime completion_time = 0;
  Request in_service;
  double in_service_seek_ms = 0.0;
  double in_service_total_ms = 0.0;
  uint64_t completions = 0;

  while (true) {
    if (!busy) {
      const DispatchContext ctx{.now = now, .head = head};
      tracer_.set_now(now);
      std::optional<Request> r = sched.Dispatch(ctx);
      if (r) {
        metrics.OnDispatch(*r, sched);
        double seek_ms = 0.0;
        double service_ms = 0.0;
        switch (config_.service_model) {
          case ServiceModel::kFullDisk: {
            seek_ms = disk_.SeekTimeMs(head, r->cylinder);
            const double latency =
                latency_rng ? disk_.SampleRotationalLatencyMs(*latency_rng)
                            : disk_.AvgRotationalLatencyMs();
            service_ms =
                seek_ms + latency + disk_.TransferTimeMs(r->cylinder, r->bytes);
            break;
          }
          case ServiceModel::kTransferOnly:
            service_ms = disk_.TransferTimeMs(r->cylinder, r->bytes);
            break;
        }
        in_service = std::move(*r);
        in_service_seek_ms = seek_ms;
        in_service_total_ms = service_ms;
        completion_time = now + MsToSim(service_ms);
        busy = true;
      }
    }

    const bool take_completion =
        busy && (!next_arrival || completion_time <= next_arrival->arrival);
    if (take_completion) {
      now = completion_time;
      head = in_service.cylinder;
      busy = false;
      metrics.OnCompletion(in_service, now, in_service_seek_ms,
                           in_service_total_ms);
      if (config_.max_completions != 0 &&
          ++completions >= config_.max_completions) {
        break;
      }
    } else if (next_arrival) {
      now = next_arrival->arrival;
      const DispatchContext ctx{.now = now, .head = head};
      tracer_.set_now(now);
      metrics.OnArrival(*next_arrival);
      const RequestId arrival_id = next_arrival->id;
      // Zero-copy handoff: the payload moves generator -> scheduler queue
      // -> (slot pool) -> in_service without an intermediate copy.
      sched.Enqueue(std::move(*next_arrival), ctx);
      if (tracer_.enabled()) {
        obs::TraceEvent e;
        e.kind = obs::TraceEventKind::kEnqueue;
        e.t = now;
        e.id = arrival_id;
        e.queue_depth = sched.queue_size();
        tracer_.Emit(e);
      }
      next_arrival = gen.Next();
    } else if (!busy) {
      // No arrivals left and the scheduler has nothing to dispatch.
      break;
    }
  }
  return metrics.TakeMetrics();
}

}  // namespace csfc
