#include "svc/admission.h"

#include <algorithm>
#include <cmath>

namespace csfc {
namespace svc {

Status AdmissionConfig::Validate() const {
  if (max_streams == 0) {
    return Status::InvalidArgument("admission: max_streams must be >= 1");
  }
  if (!std::isfinite(stream_rate_rps) || stream_rate_rps < 0.0) {
    return Status::InvalidArgument(
        "admission: stream_rate_rps must be finite and >= 0");
  }
  if (!std::isfinite(stream_burst) || stream_burst < 0.0) {
    return Status::InvalidArgument(
        "admission: stream_burst must be finite and >= 0");
  }
  if (!std::isfinite(slo_wait_ms) || slo_wait_ms < 0.0) {
    return Status::InvalidArgument(
        "admission: slo_wait_ms must be finite and >= 0");
  }
  if (!std::isfinite(fixed_cost_ms) || fixed_cost_ms < 0.0) {
    return Status::InvalidArgument(
        "admission: fixed_cost_ms must be finite and >= 0");
  }
  if (!std::isfinite(sweep_cost_ms) || sweep_cost_ms < 0.0) {
    return Status::InvalidArgument(
        "admission: sweep_cost_ms must be finite and >= 0");
  }
  return Status::OK();
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config),
      burst_(config.stream_burst > 0.0
                 ? config.stream_burst
                 : std::max(1.0, config.stream_rate_rps)),
      buckets_(config.max_streams) {
  MutexLock lock(mu_);
  for (Bucket& b : buckets_) b.tokens = burst_;  // start full: bursts admit
}

double AdmissionController::PredictedWaitMs(size_t queue_depth) const {
  return static_cast<double>(queue_depth) * config_.fixed_cost_ms +
         config_.sweep_cost_ms;
}

AdmitDecision AdmissionController::Admit(uint32_t stream, SimTime now,
                                         size_t queue_depth) {
  MutexLock lock(mu_);
  ++counters_.offered;
  if (config_.stream_rate_rps > 0.0) {
    Bucket& b = buckets_[stream % config_.max_streams];
    if (now > b.last_refill) {
      const double dt_s =
          static_cast<double>(now - b.last_refill) / static_cast<double>(kSecond);
      b.tokens = std::min(burst_, b.tokens + dt_s * config_.stream_rate_rps);
      b.last_refill = now;
    }
    if (b.tokens < 1.0) {
      ++counters_.rejected_rate;
      return AdmitDecision::kRejectRate;
    }
    b.tokens -= 1.0;
  }
  if (config_.slo_wait_ms > 0.0 &&
      PredictedWaitMs(queue_depth) > config_.slo_wait_ms) {
    ++counters_.rejected_load;
    return AdmitDecision::kRejectLoad;
  }
  return AdmitDecision::kAdmit;
}

void AdmissionController::RecordAdmit() {
  MutexLock lock(mu_);
  ++counters_.admitted;
}

void AdmissionController::RecordRingReject() {
  MutexLock lock(mu_);
  ++counters_.rejected_ring_full;
}

AdmissionController::Counters AdmissionController::counters() const {
  MutexLock lock(mu_);
  return counters_;
}

}  // namespace svc
}  // namespace csfc
