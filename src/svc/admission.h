// AdmissionController: the service front-end's load shedder. Two gates in
// sequence, both cheap enough to sit on the producer path:
//
//  1. Per-stream token bucket — each stream refills at `stream_rate_rps`
//     tokens per second up to `stream_burst`; an offer with no token is
//     shed with reason `rate`. This bounds any one stream's share of the
//     disk regardless of how fast it offers.
//
//  2. SCAN-tour wait oracle — an analytic bound on how long a newly
//     admitted request would wait behind the current queue. With d
//     requests pending and the scheduler serving in (cascaded) SCAN
//     order over requests spread across the stroke, one full tour costs
//     about
//
//         W(d) = d * fixed_cost_ms + sweep_cost_ms
//
//     where fixed_cost_ms is the seek-free per-request cost (rotational
//     latency + transfer + overhead) and sweep_cost_ms is the full-stroke
//     seek the tour amortizes across the batch (the space-time view of a
//     SCAN pass: total head travel is one stroke no matter how many
//     requests the sweep collects). A new admit waits at most one tour,
//     so the controller sheds with reason `load` when W(d) exceeds
//     `slo_wait_ms`. Derivation and calibration in DESIGN.md section 12.
//
// A third reason, `ring_full`, is recorded by the server when an admitted
// offer still fails to enter the bounded ingest ring (backpressure); the
// controller owns the counter so the accounting reconciles in one place:
//
//     offered == admitted + rejected_rate + rejected_load
//                + rejected_ring_full
//
// Thread safety: every gate and counter sits behind one internal mutex.
// Producers call Admit()/RecordAdmit()/RecordRingReject() concurrently;
// the critical sections are a few dozen instructions.

#ifndef CSFC_SVC_ADMISSION_H_
#define CSFC_SVC_ADMISSION_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace csfc {
namespace svc {

struct AdmissionConfig {
  /// Token buckets are pre-sized to this many streams (stream ids hash in
  /// with a modulo, so the controller never allocates after construction).
  uint32_t max_streams = 64;
  /// Per-stream sustained rate, requests/second. 0 disables the rate gate.
  double stream_rate_rps = 0.0;
  /// Per-stream burst depth in requests. 0 picks max(1, stream_rate_rps).
  double stream_burst = 0.0;
  /// Target worst-case enqueue-to-dispatch wait. 0 disables load shedding.
  double slo_wait_ms = 0.0;
  /// Seek-free per-request service cost (latency + transfer + overhead).
  double fixed_cost_ms = 1.0;
  /// Full-stroke seek cost amortized over one SCAN tour.
  double sweep_cost_ms = 10.0;

  Status Validate() const;
};

enum class AdmitDecision : uint8_t {
  kAdmit,
  kRejectRate,
  kRejectLoad,
};

class AdmissionController {
 public:
  /// Monotonic counters; snapshot via counters().
  struct Counters {
    uint64_t offered = 0;
    uint64_t admitted = 0;
    uint64_t rejected_rate = 0;
    uint64_t rejected_load = 0;
    uint64_t rejected_ring_full = 0;
    uint64_t rejected() const {
      return rejected_rate + rejected_load + rejected_ring_full;
    }
  };

  /// `config` must already Validate().
  explicit AdmissionController(const AdmissionConfig& config);

  /// Gates one offer from `stream` at time `now` against a queue of
  /// `queue_depth` pending requests. Counts the offer and any rate/load
  /// rejection; an admit is only counted once the caller lands the
  /// request in the ring and calls RecordAdmit().
  AdmitDecision Admit(uint32_t stream, SimTime now, size_t queue_depth)
      EXCLUDES(mu_);

  /// The admitted offer made it into the ingest ring.
  void RecordAdmit() EXCLUDES(mu_);
  /// The admitted offer bounced off a full ring (backpressure). The
  /// stream's token stays spent — a full ring should also slow the
  /// offending streams down.
  void RecordRingReject() EXCLUDES(mu_);

  /// The oracle, exposed for tests and the serve CLI's report.
  double PredictedWaitMs(size_t queue_depth) const;

  Counters counters() const EXCLUDES(mu_);

  const AdmissionConfig& config() const { return config_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    SimTime last_refill = 0;
  };

  AdmissionConfig config_;
  double burst_;  ///< resolved burst (config_.stream_burst or its default)
  mutable Mutex mu_;
  std::vector<Bucket> buckets_ GUARDED_BY(mu_);
  Counters counters_ GUARDED_BY(mu_);
};

}  // namespace svc
}  // namespace csfc

#endif  // CSFC_SVC_ADMISSION_H_
