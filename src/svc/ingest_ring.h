// MpscIngestRing: the bounded lock-free multi-producer / single-consumer
// ring the service front-end ingests through. Producer threads TryPush
// admitted requests; the dispatcher thread batch-drains them into the
// scheduler. Bounded on purpose: a full ring is backpressure, surfaced to
// the caller as a ring_full rejection rather than an unbounded queue
// silently absorbing overload.
//
// The algorithm is the classic bounded-queue design with one atomic
// sequence number per cell (Vyukov). Each cell's `seq` encodes its state
// relative to the head/tail tickets:
//
//   seq == ticket       cell is free for the producer holding `ticket`
//   seq == ticket + 1   cell holds the element for that ticket (consumer
//                       side reads at seq == pos + 1)
//   otherwise           another lap owns the cell (full / not yet filled)
//
// Memory ordering (the contract DESIGN.md section 12 documents):
//   * producers CAS the tail ticket relaxed — the ticket only partitions
//     cells between producers, it publishes nothing;
//   * the payload is published by the producer's seq.store(release) and
//     acquired by the consumer's seq.load(acquire) — this pair is the
//     only producer->consumer edge and is what makes the element's
//     non-atomic payload visible;
//   * the consumer recycles a cell for the next lap with
//     seq.store(pos + capacity, release), which a producer acquires
//     before overwriting the slot.
//
// Single consumer: head_ is only ever advanced by the draining thread, so
// it needs no CAS; it stays atomic (relaxed) only so size() is readable
// from other threads as an approximation.
//
// Cells are padded to the destructive-interference range so the head and
// tail tickets and neighboring cells do not false-share.

#ifndef CSFC_SVC_INGEST_RING_H_
#define CSFC_SVC_INGEST_RING_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/annotations.h"

namespace csfc {
namespace svc {

/// Cache-line size for padding; hardware_destructive_interference_size is
/// not universally available, and 64 is correct on every target this repo
/// builds for.
inline constexpr size_t kCacheLine = 64;

/// `AtomicSize` is a seam for the deterministic interleaving explorer
/// (tests/svc/model_check.h): production code always uses the default
/// `std::atomic<size_t>`; the model checker substitutes an instrumented
/// atomic that yields to a controlled scheduler at every operation. The
/// substitute must mirror the std::atomic member signatures used below.
/// csfc_analyze treats `AtomicSize` members as atomics via the
/// [atomics].extra_types list in tools/csfc_analyze/concurrency.toml.
template <typename T, typename AtomicSize = std::atomic<size_t>>
class MpscIngestRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit MpscIngestRing(size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity) - 1),
        cells_(mask_ + 1) {
    for (size_t i = 0; i <= mask_; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscIngestRing(const MpscIngestRing&) = delete;
  MpscIngestRing& operator=(const MpscIngestRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (exact only when producers and the consumer
  /// are quiescent).
  size_t size() const {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

  /// Attempts to push from any producer thread. Returns false when the
  /// ring is full (backpressure); the element is untouched in that case.
  CSFC_HOT bool TryPush(T&& value) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    // Every retry means another producer won the CAS or the consumer
    // recycled a lap boundary, so each pass follows system-wide progress;
    // a full ring exits through the dif<0 branch below.
    // csfc:spin-ok(lock-free: retries only follow other threads' progress)
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        // Cell is free for this ticket; claim it. Relaxed: the ticket
        // partitions producers, the release below publishes the payload.
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the new ticket.
      } else if (dif < 0) {
        // The consumer has not recycled this cell from the previous lap:
        // the ring is full.
        return false;
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Drains up to `max` elements into `out` (caller-owned buffer, not
  /// cleared). Single consumer only. Returns the number drained; no
  /// allocation as long as `out` has capacity for `max` more elements
  /// (callers reserve once and reuse the buffer across drains).
  CSFC_HOT size_t DrainInto(std::vector<T>& out, size_t max) {
    size_t pos = head_.load(std::memory_order_relaxed);
    size_t drained = 0;
    while (drained < max) {
      Cell& cell = cells_[pos & mask_];
      const size_t seq = cell.seq.load(std::memory_order_acquire);
      if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
        break;  // next cell not yet published: ring drained
      }
      out.push_back(std::move(cell.value));  // csfc:alloc-ok(caller pre-reserves the drain buffer; growth settles after the first drain)
      // Recycle the cell for the producers' next lap.
      cell.seq.store(pos + capacity(), std::memory_order_release);
      ++pos;
      ++drained;
    }
    if (drained != 0) head_.store(pos, std::memory_order_relaxed);
    return drained;
  }

 private:
  struct alignas(kCacheLine) Cell {
    AtomicSize seq;
    T value;
  };

  const size_t mask_;
  std::vector<Cell> cells_;
  alignas(kCacheLine) AtomicSize tail_{0};  ///< producers' ticket
  alignas(kCacheLine) AtomicSize head_{0};  ///< consumer cursor
};

}  // namespace svc
}  // namespace csfc

#endif  // CSFC_SVC_INGEST_RING_H_
