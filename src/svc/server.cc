#include "svc/server.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <utility>

namespace csfc {
namespace svc {

namespace {

obs::RejectReason ToReason(AdmitDecision d) {
  switch (d) {
    case AdmitDecision::kRejectRate:
      return obs::RejectReason::kRate;
    case AdmitDecision::kRejectLoad:
      return obs::RejectReason::kLoad;
    case AdmitDecision::kAdmit:
      break;
  }
  return obs::RejectReason::kNone;
}

}  // namespace

Status IngestConfig::Validate() const {
  if (ring_capacity < 2) {
    return Status::InvalidArgument("ingest: ring_capacity must be >= 2");
  }
  if (drain_batch == 0) {
    return Status::InvalidArgument("ingest: drain_batch must be >= 1");
  }
  return Status::OK();
}

Result<std::unique_ptr<ServiceServer>> ServiceServer::Create(
    SchedulerPtr scheduler, ServiceTimeFn service_time,
    const Options& options) {
  if (scheduler == nullptr) {
    return Status::InvalidArgument("service: scheduler is required");
  }
  if (!service_time) {
    return Status::InvalidArgument("service: service_time is required");
  }
  if (Status s = options.ingest.Validate(); !s.ok()) return s;
  if (Status s = options.admission.Validate(); !s.ok()) return s;
  if (!std::isfinite(options.time_scale) || options.time_scale < 0.0) {
    return Status::InvalidArgument(
        "service: time_scale must be finite and >= 0");
  }
  return std::unique_ptr<ServiceServer>(new ServiceServer(
      std::move(scheduler), std::move(service_time), options));
}

ServiceServer::ServiceServer(SchedulerPtr scheduler,
                             ServiceTimeFn service_time,
                             const Options& options)
    : sched_(std::move(scheduler)),
      service_time_(std::move(service_time)),
      options_(options),
      admission_(options.admission),
      ring_(options.ingest.ring_capacity) {
  if (options_.trace_sink != nullptr) {
    locked_sink_.emplace(*options_.trace_sink);
    tracer_ = obs::Tracer(&*locked_sink_);
  }
  drain_buf_.reserve(options_.ingest.drain_batch);
  drain_ids_.reserve(options_.ingest.drain_batch);
}

ServiceServer::~ServiceServer() { Cancel(); }

bool ServiceServer::Ingest(Request&& r, SimTime now) {
  const RequestId id = r.id;
  const uint32_t stream = r.stream;
  if (tracer_.enabled()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kIngest;
    e.t = now;
    e.id = id;
    e.stream = stream;
    tracer_.Emit(e);
  }
  const AdmitDecision d = admission_.Admit(stream, now, ApproxDepth());
  if (d != AdmitDecision::kAdmit) {
    if (tracer_.enabled()) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kReject;
      e.t = now;
      e.id = id;
      e.reject = ToReason(d);
      tracer_.Emit(e);
    }
    return false;
  }
  if (!ring_.TryPush(std::move(r))) {
    admission_.RecordRingReject();
    if (tracer_.enabled()) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kReject;
      e.t = now;
      e.id = id;
      e.reject = obs::RejectReason::kRingFull;
      tracer_.Emit(e);
    }
    return false;
  }
  admission_.RecordAdmit();
  if (tracer_.enabled()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kAdmit;
    e.t = now;
    e.id = id;
    e.queue_depth = ApproxDepth();
    tracer_.Emit(e);
  }
  return true;
}

size_t ServiceServer::DrainRing(const DispatchContext& ctx) {
  size_t total = 0;
  tracer_.set_now(ctx.now);
  for (;;) {
    drain_buf_.clear();
    const size_t n = ring_.DrainInto(drain_buf_, options_.ingest.drain_batch);
    if (n == 0) break;
    drain_ids_.clear();
    for (const Request& r : drain_buf_) drain_ids_.push_back(r.id);
    sched_->EnqueueBatch(std::span<Request>(drain_buf_), ctx);
    queue_depth_.store(sched_->queue_size(), std::memory_order_relaxed);
    if (tracer_.enabled()) {
      for (RequestId id : drain_ids_) {
        obs::TraceEvent e;
        e.kind = obs::TraceEventKind::kEnqueue;
        e.t = ctx.now;
        e.id = id;
        e.queue_depth = sched_->queue_size();
        tracer_.Emit(e);
      }
    }
    total += n;
  }
  if (total != 0) {
    MutexLock lock(stats_mu_);
    enqueued_ += total;
  }
  return total;
}

bool ServiceServer::TryDispatch(DiskState& disk, double scale) {
  const DispatchContext ctx{.now = disk.now, .head = disk.head};
  tracer_.set_now(disk.now);
  std::optional<Request> r = sched_->Dispatch(ctx);
  if (!r) return false;
  queue_depth_.store(sched_->queue_size(), std::memory_order_relaxed);
  const SimTime wait = std::max<SimTime>(disk.now - r->arrival, 0);
  {
    MutexLock lock(stats_mu_);
    wait_hist_.Add(wait);
    ++dispatched_;
  }
  if (tracer_.enabled()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kDispatch;
    e.t = disk.now;
    e.id = r->id;
    e.cylinder = r->cylinder;
    e.queue_depth = sched_->queue_size();
    tracer_.Emit(e);
    obs::TraceEvent d;
    d.kind = obs::TraceEventKind::kDrain;
    d.t = disk.now;
    d.id = r->id;
    d.wait_ms = SimToMs(wait);
    d.queue_depth = sched_->queue_size();
    tracer_.Emit(d);
  }
  const double service_ms = service_time_(disk.head, *r);
  disk.in_service = std::move(*r);
  disk.in_service_ms = service_ms;
  disk.completion_time = disk.now + MsToSim(service_ms * scale);
  disk.busy = true;
  return true;
}

void ServiceServer::Complete(DiskState& disk) {
  disk.head = disk.in_service.cylinder;
  disk.busy = false;
  {
    MutexLock lock(stats_mu_);
    ++completions_;
  }
  if (tracer_.enabled()) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kCompletion;
    e.t = disk.now;
    e.id = disk.in_service.id;
    e.service_ms = disk.in_service_ms;
    e.response_ms = SimToMs(disk.now - disk.in_service.arrival);
    e.missed = disk.in_service.has_deadline() &&
               disk.now > disk.in_service.deadline;
    tracer_.Emit(e);
  }
}

ServiceStats ServiceServer::RunVirtual(std::vector<Request> offered) {
  if (running_.load(std::memory_order_acquire)) return Stats();
  sched_->Observe(tracer_);
  DiskState disk;
  size_t next = 0;
  // The DiskServerSimulator::Run event loop, with the arrival branch
  // replaced by ingest -> ring -> immediate drain (the ring is a
  // pass-through at each arrival instant, so enqueue order and times —
  // and therefore dispatch order — match the offline simulator run on
  // the same admitted set).
  while (true) {
    if (!disk.busy) TryDispatch(disk, /*scale=*/1.0);
    const bool has_arrival = next < offered.size();
    const bool take_completion =
        disk.busy &&
        (!has_arrival || disk.completion_time <= offered[next].arrival);
    if (take_completion) {
      disk.now = disk.completion_time;
      Complete(disk);
    } else if (has_arrival) {
      Request r = std::move(offered[next]);
      ++next;
      disk.now = r.arrival;
      if (Ingest(std::move(r), disk.now)) {
        DrainRing(DispatchContext{.now = disk.now, .head = disk.head});
      }
    } else if (!disk.busy) {
      break;
    }
  }
  return Stats();
}

Status ServiceServer::Start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("service: already running");
  }
  stop_.store(false, std::memory_order_release);
  cancel_.store(false, std::memory_order_release);
  pump_ = std::thread(&ServiceServer::PumpLoop, this);
  return Status::OK();
}

bool ServiceServer::Offer(Request r) {
  if (!running_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    return false;
  }
  const SimTime now = clock_.NowUs();
  r.arrival = now;
  const bool admitted = Ingest(std::move(r), now);
  // Plain notify (no lock): the pump's timed wait bounds any lost-wakeup
  // window to one idle tick.
  if (admitted) wake_cv_.NotifyOne();
  return admitted;
}

void ServiceServer::PumpLoop() {
  sched_->Observe(tracer_);
  DiskState disk;
  for (;;) {
    if (cancel_.load(std::memory_order_acquire)) break;
    disk.now = clock_.NowUs();
    bool progress = DrainRing(DispatchContext{disk.now, disk.head}) > 0;
    if (disk.busy && disk.now >= disk.completion_time) {
      Complete(disk);
      progress = true;
    }
    if (!disk.busy && TryDispatch(disk, options_.time_scale)) {
      progress = true;
      // Unpaced (time_scale 0) service completes within the iteration.
      if (disk.completion_time <= disk.now) Complete(disk);
    }
    if (progress) continue;
    if (stop_.load(std::memory_order_acquire) && ring_.size() == 0 &&
        sched_->queue_size() == 0 && !disk.busy) {
      break;  // graceful: everything admitted before Stop has been served
    }
    // Idle: sleep until the in-service request completes, an Offer
    // notifies, or the 1ms tick re-checks stop/cancel.
    SimTime timeout_us = kMillisecond;
    if (disk.busy) {
      timeout_us = std::clamp<SimTime>(disk.completion_time - disk.now, 1,
                                       kMillisecond);
    }
    MutexLock lock(wake_mu_);
    wake_cv_.WaitFor(wake_mu_, timeout_us);
  }
}

void ServiceServer::Stop() {
  stop_.store(true, std::memory_order_release);
  wake_cv_.NotifyAll();
  // The exchange elects exactly one joiner when Stop and Cancel race.
  if (running_.exchange(false, std::memory_order_acq_rel) &&
      pump_.joinable()) {
    pump_.join();
  }
}

void ServiceServer::Cancel() {
  cancel_.store(true, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  wake_cv_.NotifyAll();
  if (running_.exchange(false, std::memory_order_acq_rel) &&
      pump_.joinable()) {
    pump_.join();
  }
}

ServiceStats ServiceServer::Stats() const {
  ServiceStats s;
  s.admission = admission_.counters();
  MutexLock lock(stats_mu_);
  s.enqueued = enqueued_;
  s.dispatched = dispatched_;
  s.completions = completions_;
  s.p50_wait_ms = SimToMs(static_cast<SimTime>(wait_hist_.Quantile(0.5)));
  s.p99_wait_ms = SimToMs(static_cast<SimTime>(wait_hist_.Quantile(0.99)));
  s.p999_wait_ms = SimToMs(static_cast<SimTime>(wait_hist_.Quantile(0.999)));
  s.max_wait_ms = SimToMs(wait_hist_.max());
  s.mean_wait_ms = wait_hist_.mean() / static_cast<double>(kMillisecond);
  return s;
}

}  // namespace svc
}  // namespace csfc
