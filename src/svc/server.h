// ServiceServer: the real-time service front-end over any Scheduler.
//
// Producer threads Offer() requests; each offer runs the admission gates
// (svc/admission.h), then enters the bounded MPSC ingest ring
// (svc/ingest_ring.h). A single dispatcher ("pump") thread batch-drains
// the ring into the scheduler through Scheduler::EnqueueBatch — for the
// cascaded scheduler that is the Encapsulator::CharacterizeBatch kernel —
// dispatches whenever the modeled disk is idle, and charges each dispatch
// a service time from the caller-supplied ServiceTimeFn (the disk model
// stays out of this layer; tools and tests wrap a DiskModel into the
// callback).
//
// Two ways to run, one pump:
//
//  * RunVirtual(offered): deterministic virtual time on the calling
//    thread. The loop mirrors DiskServerSimulator::Run event for event —
//    dispatch when idle; take the completion iff it precedes the next
//    arrival; head moves to the served cylinder — and the ring is a
//    pass-through (each arrival is drained at its own arrival instant),
//    so the dispatch order over the admitted set is bit-identical to the
//    offline simulator fed that same set. Runs twice -> identical traces.
//
//  * Start()/Offer()/Stop(): wall-clock mode. The pump thread runs the
//    same logic against a MonotonicClock (the common/clock seam);
//    `time_scale` maps modeled service milliseconds to wall-clock pacing
//    (0 = no pacing, the closed-loop soak configuration that measures
//    pure front-end overhead). Stop() drains everything already admitted;
//    Cancel() abandons pending work immediately (the mid-drain
//    cancellation path the TSan stress exercises).
//
// Event stream (obs/trace_event.h lifecycle): Offer emits ingest then
// admit or reject from the producer thread; the pump emits enqueue on
// ring drain, dispatch + drain (wait_ms = offer-to-dispatch latency) at
// hand-off, completion when the modeled service ends. All emissions are
// serialized through an internal LockedSink, so any single-threaded sink
// (TraceRecorder, SloMetrics) can sit behind the server unchanged.
//
// Threading contract (DESIGN.md section 12): Offer is safe from any
// thread, including concurrently with Stop/Cancel; everything the pump
// owns (scheduler, histogram via stats_mu_, in-service state) is touched
// only by the pump thread or after join; cross-thread state is the ring,
// the admission controller, the clock, the atomics below, and the locked
// sink.

#ifndef CSFC_SVC_SERVER_H_
#define CSFC_SVC_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "obs/locked_sink.h"
#include "obs/tracer.h"
#include "sched/scheduler.h"
#include "svc/admission.h"
#include "svc/ingest_ring.h"

namespace csfc {
namespace svc {

/// Modeled service time in milliseconds for serving `r` with the head at
/// `head`. Wraps the disk model outside this layer.
using ServiceTimeFn = std::function<double(Cylinder head, const Request& r)>;

struct IngestConfig {
  /// Ring capacity in requests (rounded up to a power of two).
  size_t ring_capacity = 1024;
  /// Max requests drained from the ring per pump iteration; also the
  /// batch span handed to Scheduler::EnqueueBatch.
  size_t drain_batch = 64;

  Status Validate() const;
};

/// Whole-run service statistics (settled once the server is stopped).
struct ServiceStats {
  AdmissionController::Counters admission;
  uint64_t enqueued = 0;    ///< drained from the ring into the scheduler
  uint64_t dispatched = 0;  ///< handed to service
  uint64_t completions = 0;
  /// Offer-to-dispatch wait latency distribution.
  double p50_wait_ms = 0.0;
  double p99_wait_ms = 0.0;
  double p999_wait_ms = 0.0;
  double max_wait_ms = 0.0;
  double mean_wait_ms = 0.0;
};

class ServiceServer {
 public:
  struct Options {
    IngestConfig ingest;
    AdmissionConfig admission;
    /// Receives the full event stream; may be a single-threaded sink (the
    /// server serializes emissions internally). Not owned; may be null.
    obs::EventSink* trace_sink = nullptr;
    /// Wall-clock mode only: fraction of the modeled service time the
    /// pump holds the disk busy. 1.0 = real-time pacing, 0 = serve as
    /// fast as the front-end allows (soak/bench configuration).
    double time_scale = 0.0;
  };

  /// Validates the options and takes ownership of the scheduler.
  static Result<std::unique_ptr<ServiceServer>> Create(
      SchedulerPtr scheduler, ServiceTimeFn service_time,
      const Options& options);

  ~ServiceServer();
  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  // --- deterministic virtual-time mode ---------------------------------

  /// Runs the offered arrival stream (sorted by Request::arrival) to
  /// completion in virtual time on the calling thread and returns the
  /// run's stats. Must not be mixed with Start(). Bit-identical to the
  /// offline simulator over the admitted set (and to itself, run twice);
  /// csfc_analyze's determinism-taint family audits the path.
  CSFC_DETERMINISTIC ServiceStats RunVirtual(std::vector<Request> offered);

  // --- wall-clock mode --------------------------------------------------

  /// Spawns the pump thread. Fails if already running.
  Status Start();

  /// Offers one request from any producer thread; stamps the request's
  /// arrival from the server clock. Returns true iff admitted into the
  /// ring. False = shed (rate / load / ring_full — see the trace or the
  /// admission counters for which).
  bool Offer(Request r);

  /// Graceful shutdown: serves everything already admitted, then joins.
  void Stop();

  /// Immediate shutdown: the pump abandons the ring and queue contents
  /// mid-drain and joins. Admitted-but-unserved requests stay counted as
  /// admitted (the accounting identity is over admission, not service).
  void Cancel();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Snapshot of the run's statistics; stable once stopped.
  ServiceStats Stats() const EXCLUDES(stats_mu_);

  const AdmissionController& admission() const { return admission_; }
  const Scheduler& scheduler() const { return *sched_; }

 private:
  ServiceServer(SchedulerPtr scheduler, ServiceTimeFn service_time,
                const Options& options);

  /// In-flight request state shared by both pump flavors.
  struct DiskState {
    SimTime now = 0;
    Cylinder head = 0;
    bool busy = false;
    SimTime completion_time = 0;
    Request in_service;
    double in_service_ms = 0.0;
  };

  /// Producer-side ingest: admission + ring push + ingest/admit/reject
  /// events. Returns true iff the request entered the ring.
  bool Ingest(Request&& r, SimTime now);

  /// Drains the ring into the scheduler in batches of drain_batch,
  /// emitting enqueue events. Pump thread only.
  size_t DrainRing(const DispatchContext& ctx) EXCLUDES(stats_mu_);

  /// Pops the next request if one is pending: emits dispatch + drain,
  /// records the wait sample, and marks the disk busy until now +
  /// service_ms (scaled by `scale`). Pump thread only. Returns whether a
  /// request was dispatched.
  bool TryDispatch(DiskState& disk, double scale) EXCLUDES(stats_mu_);

  /// Completes the in-service request: advances the head, emits the
  /// completion event. Pump thread only.
  void Complete(DiskState& disk) EXCLUDES(stats_mu_);

  void PumpLoop();

  /// Approximate pending depth (ring + scheduler queue) for the admission
  /// oracle; exact in virtual mode.
  size_t ApproxDepth() const {
    return ring_.size() + queue_depth_.load(std::memory_order_relaxed);
  }

  SchedulerPtr sched_;
  ServiceTimeFn service_time_;
  Options options_;
  AdmissionController admission_;
  MpscIngestRing<Request> ring_;
  MonotonicClock clock_;

  /// All trace emissions funnel through this lock so single-threaded
  /// sinks work behind the server; tracer_ wraps it (or is disabled).
  std::optional<obs::LockedSink> locked_sink_;
  obs::Tracer tracer_;

  /// Pump-thread scratch for ring drains; reserved once in the ctor.
  std::vector<Request> drain_buf_;
  std::vector<RequestId> drain_ids_;

  std::thread pump_;
  /// Lifecycle flags. Memory-order contracts (allowed orders per op,
  /// with rationale) live in tools/csfc_analyze/concurrency.toml;
  /// csfc_analyze enforces call sites against them.
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> cancel_{false};
  /// Scheduler queue size mirror, maintained by the pump for producers'
  /// admission checks (the scheduler itself is pump-owned).
  std::atomic<size_t> queue_depth_{0};

  /// Wakes the pump when work arrives or shutdown is requested.
  Mutex wake_mu_;
  CondVar wake_cv_;

  mutable Mutex stats_mu_;
  LogHistogram wait_hist_ GUARDED_BY(stats_mu_);
  uint64_t enqueued_ GUARDED_BY(stats_mu_) = 0;
  uint64_t dispatched_ GUARDED_BY(stats_mu_) = 0;
  uint64_t completions_ GUARDED_BY(stats_mu_) = 0;
};

}  // namespace svc
}  // namespace csfc

#endif  // CSFC_SVC_SERVER_H_
