// Name-based curve factory. All seven Figure-1 curve families are
// registered under their paper names plus common aliases.

#ifndef CSFC_SFC_REGISTRY_H_
#define CSFC_SFC_REGISTRY_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "sfc/curve.h"

namespace csfc {

/// Creates a curve by name over the given grid. Recognized names (case
/// sensitive): "scan", "cscan" (alias "sweep"), "peano" (alias "zorder"),
/// "gray", "hilbert", "spiral", "diagonal".
Result<CurvePtr> MakeCurve(std::string_view name, GridSpec spec);

/// The seven canonical curve names, in the paper's Figure 1 order.
const std::vector<std::string_view>& AllCurveNames();

/// True iff `name` (canonical or alias) is registered.
bool IsKnownCurve(std::string_view name);

}  // namespace csfc

#endif  // CSFC_SFC_REGISTRY_H_
