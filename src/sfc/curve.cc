#include "sfc/curve.h"

#include <string>

namespace csfc {

Status GridSpec::Validate() const {
  if (dims < 1 || dims > 16) {
    return Status::InvalidArgument("GridSpec.dims must be in [1,16], got " +
                                   std::to_string(dims));
  }
  if (bits < 1 || bits > 16) {
    return Status::InvalidArgument("GridSpec.bits must be in [1,16], got " +
                                   std::to_string(bits));
  }
  if (dims * bits > 62) {
    return Status::InvalidArgument(
        "GridSpec dims*bits must be <= 62 to fit a 64-bit index, got " +
        std::to_string(dims * bits));
  }
  return Status::OK();
}

std::vector<uint64_t> SpaceFillingCurve::BuildIndexTable() const {
  const uint64_t n = num_cells();
  std::vector<uint64_t> table(n);
  std::vector<uint32_t> p(dims());
  const std::span<uint32_t> point(p.data(), p.size());
  // Walking the curve (one Point() per index) visits every cell exactly
  // once because the curve is a bijection, so no cell is left unset.
  for (uint64_t i = 0; i < n; ++i) {
    Point(i, point);
    table[CellOf(point)] = i;
  }
  return table;
}

}  // namespace csfc
