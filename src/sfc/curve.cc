#include "sfc/curve.h"

#include <string>

namespace csfc {

Status GridSpec::Validate() const {
  if (dims < 1 || dims > 16) {
    return Status::InvalidArgument("GridSpec.dims must be in [1,16], got " +
                                   std::to_string(dims));
  }
  if (bits < 1 || bits > 16) {
    return Status::InvalidArgument("GridSpec.bits must be in [1,16], got " +
                                   std::to_string(bits));
  }
  if (dims * bits > 62) {
    return Status::InvalidArgument(
        "GridSpec dims*bits must be <= 62 to fit a 64-bit index, got " +
        std::to_string(dims * bits));
  }
  return Status::OK();
}

}  // namespace csfc
