#include "sfc/curve.h"

#include <algorithm>
#include <string>

namespace csfc {

Status GridSpec::Validate() const {
  if (dims < 1 || dims > 16) {
    return Status::InvalidArgument("GridSpec.dims must be in [1,16], got " +
                                   std::to_string(dims));
  }
  if (bits < 1 || bits > 16) {
    return Status::InvalidArgument("GridSpec.bits must be in [1,16], got " +
                                   std::to_string(bits));
  }
  if (dims * bits > 62) {
    return Status::InvalidArgument(
        "GridSpec dims*bits must be <= 62 to fit a 64-bit index, got " +
        std::to_string(dims * bits));
  }
  return Status::OK();
}

void SpaceFillingCurve::IndexBatch(std::span<const uint32_t> flat,
                                   std::span<uint64_t> out) const {
  const uint32_t d = spec_.dims;
  for (size_t j = 0; j < out.size(); ++j) {
    out[j] = Index(flat.subspan(j * d, d));
  }
}

std::vector<uint64_t> SpaceFillingCurve::BuildIndexTableByEncode() const {
  const uint64_t n = num_cells();
  std::vector<uint64_t> table(n);
  const uint32_t d = spec_.dims;
  const uint32_t b = spec_.bits;
  const uint32_t mask = static_cast<uint32_t>(side() - 1);
  // Fixed-size blocks keep the point buffer on the stack (dims <= 16).
  constexpr uint64_t kBlock = 64;
  uint32_t flat[kBlock * 16];
  for (uint64_t base = 0; base < n; base += kBlock) {
    const uint64_t m = std::min(kBlock, n - base);
    for (uint64_t j = 0; j < m; ++j) {
      // Row-major cell base + j: coordinates are its base-2^bits digits,
      // dimension 0 most significant (CellOf inverted).
      const uint64_t cell = base + j;
      for (uint32_t k = 0; k < d; ++k) {
        flat[j * d + k] =
            static_cast<uint32_t>(cell >> ((d - 1 - k) * b)) & mask;
      }
    }
    IndexBatch(std::span<const uint32_t>(flat, m * d),
               std::span<uint64_t>(table.data() + base, m));
  }
  return table;
}

std::vector<uint64_t> SpaceFillingCurve::BuildIndexTable() const {
  const uint64_t n = num_cells();
  std::vector<uint64_t> table(n);
  std::vector<uint32_t> p(dims());
  const std::span<uint32_t> point(p.data(), p.size());
  // Walking the curve (one Point() per index) visits every cell exactly
  // once because the curve is a bijection, so no cell is left unset.
  for (uint64_t i = 0; i < n; ++i) {
    Point(i, point);
    table[CellOf(point)] = i;
  }
  return table;
}

}  // namespace csfc
