// Space-filling-curve (SFC) interface.
//
// An SFC defines a total order over the cells of a D-dimensional grid with
// 2^bits cells per side: a bijection between grid points and the index range
// [0, 2^(D*bits)). The Cascaded-SFC scheduler (Mokbel et al., ICDE 2004)
// uses these orders to linearize multi-QoS disk requests; see
// core/encapsulator.h.
//
// Seven curve families are provided, matching Figure 1 of the paper:
//   scan      - boustrophedon sweep (snake order)
//   cscan     - row-major sweep, reset each row (alias: sweep)
//   peano     - bit-interleaving Z-order / Morton (alias: zorder); this
//               research line's papers call the Z-order curve "Peano"
//   gray      - Gray-coded bit interleaving
//   hilbert   - Hilbert curve (Butz algorithm, Skilling's transpose form)
//   spiral    - center-out spiral (true ring walk in 2-D; concentric
//               L-infinity shells with lexicographic shell order in D != 2)
//   diagonal  - anti-diagonal plane order (zigzag between planes)
//
// All curves support any dimensionality D >= 1 and any bits >= 1 with
// D*bits <= 62, and provide both the forward map (Index) and the inverse
// (Point); the pair is exercised by bijectivity property tests.

#ifndef CSFC_SFC_CURVE_H_
#define CSFC_SFC_CURVE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"

namespace csfc {

/// Shape of the grid an SFC is defined over: `dims` dimensions, each with
/// 2^`bits` cells.
struct GridSpec {
  uint32_t dims = 2;
  uint32_t bits = 4;

  /// Cells per side (2^bits).
  uint64_t side() const { return uint64_t{1} << bits; }
  /// Total number of cells (2^(dims*bits)).
  uint64_t num_cells() const { return uint64_t{1} << (dims * bits); }

  /// OK iff dims in [1,16], bits in [1,16] and dims*bits <= 62.
  Status Validate() const;

  bool operator==(const GridSpec&) const = default;
};

/// Abstract space-filling curve over a GridSpec.
///
/// Implementations must be bijections: Point(Index(p)) == p for every grid
/// point p, and Index(Point(i)) == i for every index i in [0, num_cells()).
class SpaceFillingCurve {
 public:
  explicit SpaceFillingCurve(GridSpec spec) : spec_(spec) {}
  virtual ~SpaceFillingCurve() = default;

  SpaceFillingCurve(const SpaceFillingCurve&) = delete;
  SpaceFillingCurve& operator=(const SpaceFillingCurve&) = delete;

  /// Canonical curve name ("hilbert", "scan", ...).
  virtual std::string_view name() const = 0;

  /// Maps a grid point (size() == dims(), each coordinate < side()) to its
  /// position along the curve.
  virtual uint64_t Index(std::span<const uint32_t> point) const = 0;

  /// Maps a curve position back to the grid point (inverse of Index).
  /// `out.size()` must equal dims().
  virtual void Point(uint64_t index, std::span<uint32_t> out) const = 0;

  /// Batch encode: out[j] = Index of the j-th point of `flat`, which holds
  /// out.size() row-major points back to back (flat.size() == out.size()
  /// * dims()). The base implementation loops over Index(); curves whose
  /// encode is pure bit arithmetic (Z-order, Gray) override it with a
  /// lane-parallel sweep behind common/simd.h, honoring the CSFC_SIMD
  /// override. Bit-identical to per-point Index() on every backend — the
  /// ops are integer — and property-tested as such.
  CSFC_DETERMINISTIC
  virtual void IndexBatch(std::span<const uint32_t> flat,
                          std::span<uint64_t> out) const;

  const GridSpec& spec() const { return spec_; }
  uint32_t dims() const { return spec_.dims; }
  uint32_t bits() const { return spec_.bits; }
  uint64_t side() const { return spec_.side(); }
  uint64_t num_cells() const { return spec_.num_cells(); }

  /// Convenience wrapper taking a vector.
  uint64_t IndexOf(const std::vector<uint32_t>& point) const {
    return Index(std::span<const uint32_t>(point.data(), point.size()));
  }
  /// Convenience wrapper returning a vector.
  std::vector<uint32_t> PointOf(uint64_t index) const {
    std::vector<uint32_t> p(dims());
    Point(index, std::span<uint32_t>(p.data(), p.size()));
    return p;
  }

  /// Packs a grid point into its row-major cell number: dimension 0 is the
  /// most significant axis, so cell = p[0]·side^(D-1) + ... + p[D-1]. This
  /// is the addressing scheme of BuildIndexTable.
  uint64_t CellOf(std::span<const uint32_t> point) const {
    uint64_t cell = 0;
    for (uint32_t k = 0; k < spec_.dims; ++k) {
      cell = (cell << spec_.bits) | point[k];
    }
    return cell;
  }

  /// Builds the flat forward lookup table: `table[CellOf(p)] == Index(p)`
  /// for every grid point p. One O(num_cells) pass replaces all per-request
  /// curve math with an array load (see core/encapsulator.h). The generic
  /// implementation walks the curve once via Point(); subclasses may
  /// override when a direct sweep is cheaper.
  virtual std::vector<uint64_t> BuildIndexTable() const;

 protected:
  /// BuildIndexTable by sweeping cells in row-major order through
  /// IndexBatch (table[cell] = Index(point-of-cell)) instead of walking
  /// the curve through Point(). Produces the identical table (the curve
  /// is a bijection); curves with a vectorized IndexBatch override
  /// BuildIndexTable to this so LUT construction rides the SIMD encode.
  std::vector<uint64_t> BuildIndexTableByEncode() const;

  GridSpec spec_;
};

using CurvePtr = std::unique_ptr<SpaceFillingCurve>;

// Concrete curve factories (each validates `spec`).
Result<CurvePtr> MakeScanCurve(GridSpec spec);
Result<CurvePtr> MakeCScanCurve(GridSpec spec);
Result<CurvePtr> MakeZOrderCurve(GridSpec spec);
Result<CurvePtr> MakeGrayCurve(GridSpec spec);
Result<CurvePtr> MakeHilbertCurve(GridSpec spec);
Result<CurvePtr> MakeSpiralCurve(GridSpec spec);
Result<CurvePtr> MakeDiagonalCurve(GridSpec spec);

}  // namespace csfc

#endif  // CSFC_SFC_CURVE_H_
