// The Peano curve of the Mokbel/Aref research line: bit-interleaving
// Z-order (Morton order). Named "peano" in the registry for fidelity with
// the paper's terminology; "zorder" is an alias.
//
// Bit layout: bit b of dimension i maps to index bit b*dims + (dims-1-i),
// so dimension 0 holds the most significant bit of each interleaved group.

#include "sfc/curve.h"

#include <cassert>

namespace csfc {

uint64_t InterleaveBits(std::span<const uint32_t> point, uint32_t dims,
                        uint32_t bits) {
  uint64_t index = 0;
  for (uint32_t b = 0; b < bits; ++b) {
    for (uint32_t i = 0; i < dims; ++i) {
      const uint64_t bit = (point[i] >> b) & 1u;
      index |= bit << (static_cast<uint64_t>(b) * dims + (dims - 1 - i));
    }
  }
  return index;
}

void DeinterleaveBits(uint64_t index, uint32_t dims, uint32_t bits,
                      std::span<uint32_t> out) {
  for (uint32_t i = 0; i < dims; ++i) out[i] = 0;
  for (uint32_t b = 0; b < bits; ++b) {
    for (uint32_t i = 0; i < dims; ++i) {
      const uint32_t bit = static_cast<uint32_t>(
          (index >> (static_cast<uint64_t>(b) * dims + (dims - 1 - i))) & 1u);
      out[i] |= bit << b;
    }
  }
}

namespace {

class ZOrderCurve final : public SpaceFillingCurve {
 public:
  explicit ZOrderCurve(GridSpec spec) : SpaceFillingCurve(spec) {}

  std::string_view name() const override { return "peano"; }

  uint64_t Index(std::span<const uint32_t> point) const override {
    assert(point.size() == dims());
    return InterleaveBits(point, dims(), bits());
  }

  void Point(uint64_t index, std::span<uint32_t> out) const override {
    assert(out.size() == dims());
    DeinterleaveBits(index, dims(), bits(), out);
  }
};

}  // namespace

Result<CurvePtr> MakeZOrderCurve(GridSpec spec) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  return CurvePtr(new ZOrderCurve(spec));
}

}  // namespace csfc
