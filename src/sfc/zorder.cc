// The Peano curve of the Mokbel/Aref research line: bit-interleaving
// Z-order (Morton order). Named "peano" in the registry for fidelity with
// the paper's terminology; "zorder" is an alias.
//
// Bit layout: bit b of dimension i maps to index bit b*dims + (dims-1-i),
// so dimension 0 holds the most significant bit of each interleaved group.

#include "sfc/curve.h"

#include "common/annotations.h"

#include <cassert>

#include "common/simd.h"
#include "sfc/bits.h"

namespace csfc {

uint64_t InterleaveBits(std::span<const uint32_t> point, uint32_t dims,
                        uint32_t bits) {
  uint64_t index = 0;
  for (uint32_t b = 0; b < bits; ++b) {
    for (uint32_t i = 0; i < dims; ++i) {
      const uint64_t bit = (point[i] >> b) & 1u;
      index |= bit << (static_cast<uint64_t>(b) * dims + (dims - 1 - i));
    }
  }
  return index;
}

void DeinterleaveBits(uint64_t index, uint32_t dims, uint32_t bits,
                      std::span<uint32_t> out) {
  for (uint32_t i = 0; i < dims; ++i) out[i] = 0;
  for (uint32_t b = 0; b < bits; ++b) {
    for (uint32_t i = 0; i < dims; ++i) {
      const uint32_t bit = static_cast<uint32_t>(
          (index >> (static_cast<uint64_t>(b) * dims + (dims - 1 - i))) & 1u);
      out[i] |= bit << b;
    }
  }
}

void InterleaveBitsBatch(std::span<const uint32_t> flat, uint32_t dims,
                         uint32_t bits, std::span<uint64_t> out) {
  const size_t n = out.size();
  assert(flat.size() == n * dims);
  size_t j = 0;
#if CSFC_SIMD_X86
  // The interleave is shift/and/or with per-(b,i) constant shift counts,
  // so lanes share the whole instruction stream: one coordinate load per
  // dimension, then bits*dims four-op rounds produce kWidth indices at
  // once. SSE2 lanes only — this TU compiles at baseline flags; the
  // encode is bandwidth-light enough that 2 lanes already about halve
  // the per-point work. Integer ops are exact, so any level (including
  // the CSFC_SIMD=scalar fallback below) produces identical indices.
  if (simd::Resolve(simd::Mode::kAuto) != simd::Level::kScalar) {
    using B = simd::Sse2Backend;
    constexpr size_t kW = static_cast<size_t>(B::kWidth);
    const B::I64 one = B::Set1I64(1);
    for (; j + kW <= n; j += kW) {
      B::I64 acc = B::Set1I64(0);
      for (uint32_t i = 0; i < dims; ++i) {
        int64_t coords[kW];
        for (size_t l = 0; l < kW; ++l) {
          coords[l] = static_cast<int64_t>(flat[(j + l) * dims + i]);
        }
        const B::I64 x = B::LoadI64(coords);
        for (uint32_t b = 0; b < bits; ++b) {
          const uint32_t pos = b * dims + (dims - 1 - i);
          acc = B::OrI64(acc, B::ShlI64(B::AndI64(B::ShrI64(x, b), one), pos));
        }
      }
      int64_t res[kW];
      B::StoreI64(res, acc);
      for (size_t l = 0; l < kW; ++l) {
        out[j + l] = static_cast<uint64_t>(res[l]);
      }
    }
  }
#endif
  for (; j < n; ++j) {
    out[j] = InterleaveBits(flat.subspan(j * dims, dims), dims, bits);
  }
}

namespace {

class ZOrderCurve final : public SpaceFillingCurve {
 public:
  explicit ZOrderCurve(GridSpec spec) : SpaceFillingCurve(spec) {}

  std::string_view name() const override { return "peano"; }

  CSFC_DETERMINISTIC
  uint64_t Index(std::span<const uint32_t> point) const override {
    assert(point.size() == dims());
    return InterleaveBits(point, dims(), bits());
  }

  CSFC_DETERMINISTIC
  void Point(uint64_t index, std::span<uint32_t> out) const override {
    assert(out.size() == dims());
    DeinterleaveBits(index, dims(), bits(), out);
  }

  CSFC_DETERMINISTIC
  void IndexBatch(std::span<const uint32_t> flat,
                  std::span<uint64_t> out) const override {
    assert(flat.size() == out.size() * dims());
    InterleaveBitsBatch(flat, dims(), bits(), out);
  }

  std::vector<uint64_t> BuildIndexTable() const override {
    return BuildIndexTableByEncode();
  }
};

}  // namespace

Result<CurvePtr> MakeZOrderCurve(GridSpec spec) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  return CurvePtr(new ZOrderCurve(spec));
}

}  // namespace csfc
