// The Hilbert curve for arbitrary dimensionality, using the Butz algorithm
// in John Skilling's "transpose" formulation (AIP Conf. Proc. 707, 2004).
//
// The transpose representation stores the Hilbert index as `dims` words of
// `bits` bits each, where word i holds index bits i, i+dims, i+2*dims, ...
// (most significant interleaved group first). AxesToTranspose converts grid
// coordinates into this representation in place; interleaving the words then
// yields the scalar index. TransposeToAxes is the exact inverse.

#include "sfc/curve.h"

#include "common/annotations.h"

#include <cassert>

namespace csfc {

namespace {

// In-place coordinate -> transposed-Hilbert-index conversion (Skilling).
void AxesToTranspose(uint32_t* x, uint32_t bits, uint32_t dims) {
  const uint32_t m = uint32_t{1} << (bits - 1);
  // Inverse undo of the Hilbert transform.
  for (uint32_t q = m; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (uint32_t i = 0; i < dims; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        const uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (uint32_t i = 1; i < dims; ++i) x[i] ^= x[i - 1];
  uint32_t t = 0;
  for (uint32_t q = m; q > 1; q >>= 1) {
    if (x[dims - 1] & q) t ^= q - 1;
  }
  for (uint32_t i = 0; i < dims; ++i) x[i] ^= t;
}

// In-place transposed-Hilbert-index -> coordinate conversion (Skilling).
void TransposeToAxes(uint32_t* x, uint32_t bits, uint32_t dims) {
  const uint32_t n = uint32_t{2} << (bits - 1);
  // Gray decode by H ^ (H/2).
  uint32_t t = x[dims - 1] >> 1;
  for (uint32_t i = dims - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (uint32_t q = 2; q != n; q <<= 1) {
    const uint32_t p = q - 1;
    for (uint32_t i = dims; i-- > 0;) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
}

class HilbertCurve final : public SpaceFillingCurve {
 public:
  explicit HilbertCurve(GridSpec spec) : SpaceFillingCurve(spec) {}

  std::string_view name() const override { return "hilbert"; }

  CSFC_DETERMINISTIC
  uint64_t Index(std::span<const uint32_t> point) const override {
    assert(point.size() == dims());
    uint32_t x[16];
    for (uint32_t i = 0; i < dims(); ++i) {
      assert(point[i] < side());
      x[i] = point[i];
    }
    if (dims() > 1) AxesToTranspose(x, bits(), dims());
    // Interleave the transpose words: bit b of word i becomes index bit
    // b*dims + (dims-1-i).
    uint64_t index = 0;
    for (uint32_t b = 0; b < bits(); ++b) {
      for (uint32_t i = 0; i < dims(); ++i) {
        const uint64_t bit = (x[i] >> b) & 1u;
        index |= bit << (static_cast<uint64_t>(b) * dims() + (dims() - 1 - i));
      }
    }
    return index;
  }

  CSFC_DETERMINISTIC
  void Point(uint64_t index, std::span<uint32_t> out) const override {
    assert(out.size() == dims());
    uint32_t x[16] = {};
    for (uint32_t b = 0; b < bits(); ++b) {
      for (uint32_t i = 0; i < dims(); ++i) {
        const uint32_t bit = static_cast<uint32_t>(
            (index >> (static_cast<uint64_t>(b) * dims() + (dims() - 1 - i))) &
            1u);
        x[i] |= bit << b;
      }
    }
    if (dims() > 1) TransposeToAxes(x, bits(), dims());
    for (uint32_t i = 0; i < dims(); ++i) out[i] = x[i];
  }
};

}  // namespace

Result<CurvePtr> MakeHilbertCurve(GridSpec spec) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  return CurvePtr(new HilbertCurve(spec));
}

}  // namespace csfc
