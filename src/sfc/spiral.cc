// The Spiral curve: starts at the center of the space and works outwards in
// concentric L-infinity shells, so central cells come first along the curve.
//
// In 2-D the curve is the classical spiral: each ring is walked rotationally
// (clockwise from the ring's top-left corner). For D != 2 the ring walk has
// no canonical analogue, so cells within a shell are ordered
// lexicographically; this preserves the property the scheduler cares about
// (center-out shell ordering) and remains a bijection. Shell s of a grid
// with side N (even) is the set of cells whose max per-coordinate distance
// from the central 2^D block equals s; it occupies index range
// [(2s)^D, (2s+2)^D).

#include "sfc/curve.h"

#include "common/annotations.h"

#include <cassert>

namespace csfc {

namespace {

// base^exp without overflow checks; callers guarantee the result fits
// because it never exceeds num_cells() <= 2^62.
uint64_t Pow64(uint64_t base, uint32_t exp) {
  uint64_t r = 1;
  while (exp--) r *= base;
  return r;
}

class SpiralCurve final : public SpaceFillingCurve {
 public:
  explicit SpiralCurve(GridSpec spec)
      : SpaceFillingCurve(spec),
        c_lo_(static_cast<uint32_t>(spec.side() / 2 - 1)),
        c_hi_(static_cast<uint32_t>(spec.side() / 2)) {}

  std::string_view name() const override { return "spiral"; }

  CSFC_DETERMINISTIC
  uint64_t Index(std::span<const uint32_t> point) const override {
    assert(point.size() == dims());
    const uint32_t s = Shell(point);
    const uint64_t offset = Pow64(2 * s, dims());
    if (dims() == 2) return offset + RingPos2D(point, s);
    return offset + LexRankInShell(point, s);
  }

  CSFC_DETERMINISTIC
  void Point(uint64_t index, std::span<uint32_t> out) const override {
    assert(out.size() == dims());
    const uint32_t s = ShellOfIndex(index);
    const uint64_t rank = index - Pow64(2 * s, dims());
    if (dims() == 2) {
      RingPoint2D(rank, s, out);
    } else {
      LexUnrankInShell(rank, s, out);
    }
  }

 private:
  // Distance of coordinate x from the central block [c_lo_, c_hi_].
  uint32_t Dist(uint32_t x) const {
    if (x < c_lo_) return c_lo_ - x;
    if (x > c_hi_) return x - c_hi_;
    return 0;
  }

  uint32_t Shell(std::span<const uint32_t> point) const {
    uint32_t s = 0;
    for (uint32_t c : point) s = std::max(s, Dist(c));
    return s;
  }

  // Smallest s with (2s+2)^D > index.
  uint32_t ShellOfIndex(uint64_t index) const {
    uint32_t lo = 0;
    uint32_t hi = static_cast<uint32_t>(side() / 2 - 1);
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (Pow64(2 * static_cast<uint64_t>(mid) + 2, dims()) > index) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  // --- 2-D rotational ring walk -------------------------------------------
  // Ring s is the border of the square [a, b]^2 with a = c_lo_-s,
  // b = c_hi_+s, side L = 2s+2. Clockwise from (a, a):
  //   top    pos [0, L-1]        : (a, a+pos)
  //   right  pos [L, 2L-2]       : (a+1+(pos-L), b)
  //   bottom pos [2L-1, 3L-3]    : (b, b-1-(pos-(2L-1)))
  //   left   pos [3L-2, 4L-5]    : (b-1-(pos-(3L-2)), a)

  uint64_t RingPos2D(std::span<const uint32_t> p, uint32_t s) const {
    const uint64_t a = c_lo_ - s;
    const uint64_t b = c_hi_ + s;
    const uint64_t l = 2 * static_cast<uint64_t>(s) + 2;
    const uint64_t x0 = p[0];
    const uint64_t x1 = p[1];
    if (x0 == a) return x1 - a;                    // top (owns both corners)
    if (x1 == b) return l + (x0 - a - 1);          // right
    if (x0 == b) return 2 * l - 1 + (b - 1 - x1);  // bottom
    assert(x1 == a);
    return 3 * l - 2 + (b - 1 - x0);  // left
  }

  void RingPoint2D(uint64_t pos, uint32_t s, std::span<uint32_t> out) const {
    const uint64_t a = c_lo_ - s;
    const uint64_t b = c_hi_ + s;
    const uint64_t l = 2 * static_cast<uint64_t>(s) + 2;
    uint64_t x0, x1;
    if (pos < l) {
      x0 = a;
      x1 = a + pos;
    } else if (pos <= 2 * l - 2) {
      x0 = a + 1 + (pos - l);
      x1 = b;
    } else if (pos <= 3 * l - 3) {
      x0 = b;
      x1 = b - 1 - (pos - (2 * l - 1));
    } else {
      assert(pos <= 4 * l - 5);
      x0 = b - 1 - (pos - (3 * l - 2));
      x1 = a;
    }
    out[0] = static_cast<uint32_t>(x0);
    out[1] = static_cast<uint32_t>(x1);
  }

  // --- D != 2: lexicographic rank within the shell ------------------------
  // A cell is in shell s iff every coordinate lies in A_s = [c_lo_-s,
  // c_hi_+s] (|A_s| = 2s+2) and at least one coordinate is at distance
  // exactly s (i.e. equals either end of A_s, when s > 0).

  uint64_t LexRankInShell(std::span<const uint32_t> p, uint32_t s) const {
    const uint32_t d = dims();
    const int64_t lo = static_cast<int64_t>(c_lo_) - s;
    const int64_t hi = static_cast<int64_t>(c_hi_) + s;
    uint64_t rank = 0;
    bool prefix_has_s = false;
    for (uint32_t j = 0; j < d; ++j) {
      const uint32_t rem = d - 1 - j;
      const uint64_t full = Pow64(2 * s + 2, rem);
      const uint64_t inner = Pow64(2 * s, rem);
      const int64_t pj = p[j];
      // Values v < pj with v in A_s, split into dist(v)==s ("outer", the two
      // interval ends when s>0, the whole interval when s==0) and
      // dist(v)<s ("inner").
      const int64_t n_all = std::max<int64_t>(0, std::min(pj, hi + 1) - lo);
      int64_t n_inner = 0;
      if (s > 0) {
        n_inner = std::max<int64_t>(0, std::min(pj, hi) - (lo + 1));
      }
      const int64_t n_outer = n_all - n_inner;
      rank += static_cast<uint64_t>(n_outer) * full;
      if (n_inner > 0) {
        rank += static_cast<uint64_t>(n_inner) *
                (prefix_has_s ? full : full - inner);
      }
      prefix_has_s = prefix_has_s || Dist(p[j]) == s;
    }
    return rank;
  }

  void LexUnrankInShell(uint64_t rank, uint32_t s,
                        std::span<uint32_t> out) const {
    const uint32_t d = dims();
    const int64_t lo = static_cast<int64_t>(c_lo_) - s;
    const int64_t hi = static_cast<int64_t>(c_hi_) + s;
    bool prefix_has_s = false;
    for (uint32_t j = 0; j < d; ++j) {
      const uint32_t rem = d - 1 - j;
      const uint64_t full = Pow64(2 * s + 2, rem);
      const uint64_t inner = Pow64(2 * s, rem);
      const uint64_t mid =
          s == 0 ? full : (prefix_has_s ? full : full - inner);
      int64_t v;
      if (s == 0) {
        // Every value in [lo, hi] is at distance 0 == s.
        v = lo + static_cast<int64_t>(rank / full);
        rank %= full;
      } else if (rank < full) {
        v = lo;  // left end, dist == s; rank stays relative to this subtree
      } else if (mid > 0 &&
                 rank < full + 2 * static_cast<uint64_t>(s) * mid) {
        const uint64_t m = (rank - full) / mid;
        v = lo + 1 + static_cast<int64_t>(m);
        rank -= full + m * mid;
      } else {
        rank -= full + 2 * static_cast<uint64_t>(s) * mid;
        v = hi;  // right end, dist == s
      }
      out[j] = static_cast<uint32_t>(v);
      prefix_has_s = prefix_has_s || Dist(out[j]) == s;
    }
  }

  const uint32_t c_lo_;
  const uint32_t c_hi_;
};

}  // namespace

Result<CurvePtr> MakeSpiralCurve(GridSpec spec) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  return CurvePtr(new SpiralCurve(spec));
}

}  // namespace csfc
