// Offline analysis of curve quality: continuity (how often consecutive
// curve cells are grid neighbors), locality (average coordinate movement per
// curve step), and per-dimension order bias (a static proxy for the
// priority-inversion behavior each curve induces when used as SFC1).
//
// These tools support the "ability to analyze the quality of the schedules
// generated" claim of Section 1 and drive the bench_ablation_curves binary.

#ifndef CSFC_SFC_LOCALITY_H_
#define CSFC_SFC_LOCALITY_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "sfc/curve.h"

namespace csfc {

/// Aggregate curve-quality statistics from a full walk of the curve.
struct LocalityStats {
  /// Steps where the next cell is an L1 grid neighbor (distance 1).
  uint64_t contiguous_steps = 0;
  /// Steps with L1 distance > 1 ("jumps").
  uint64_t jumps = 0;
  /// Mean L1 distance between consecutive cells.
  double mean_step_l1 = 0.0;
  /// Largest single-step L1 distance.
  uint64_t max_step_l1 = 0;
  /// Per-dimension fraction of *ordered* sampled pairs (i < j along the
  /// curve) whose coordinates are inverted (coordinate of i greater than
  /// coordinate of j). 0.5 means the curve carries no information about the
  /// dimension; lower is better when the dimension encodes priority.
  std::vector<double> dim_inversion_rate;
  /// Per-dimension irregularity: the number of curve steps on which the
  /// dimension's coordinate *decreases* — the metric of the authors'
  /// companion analysis (Mokbel & Aref, CIKM'01; Mokbel, Aref & Kamel,
  /// GeoInformatica'03, refs [18,19] of the paper). A dimension with zero
  /// irregularity is carried monotonically by the curve (e.g. the sweep
  /// major axis of C-Scan).
  std::vector<uint64_t> dim_irregularity;
};

/// Walks the whole curve (requires num_cells() <= max_cells) and samples
/// `pair_samples` random ordered pairs for the inversion rates.
/// Deterministic for a fixed `seed`.
Result<LocalityStats> AnalyzeCurve(const SpaceFillingCurve& curve,
                                   uint64_t max_cells = uint64_t{1} << 22,
                                   uint64_t pair_samples = 1 << 16,
                                   uint64_t seed = 42);

}  // namespace csfc

#endif  // CSFC_SFC_LOCALITY_H_
