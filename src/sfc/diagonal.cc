// The Diagonal curve: cells are ordered by ascending coordinate sum
// (anti-diagonal planes); within a plane cells are ordered
// lexicographically, with the direction alternating between consecutive
// planes so the curve zigzags across the space (in 2-D this is the classic
// diagonal zigzag of Figure 1g).
//
// Ranking within a plane uses the counting function
//   C_d(t) = #{ x in [0, N-1]^d : sum(x) = t },
// precomputed with a prefix-sum DP; both rank and unrank are then
// O(D log N) per mapping.

#include "sfc/curve.h"

#include "common/annotations.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace csfc {

namespace {

class DiagonalCurve final : public SpaceFillingCurve {
 public:
  explicit DiagonalCurve(GridSpec spec) : SpaceFillingCurve(spec) {
    const uint32_t d = dims();
    const uint64_t n = side();
    max_sum_ = static_cast<uint32_t>(static_cast<uint64_t>(d) * (n - 1));
    // cum_[k][t] = #{ x in [0,N-1]^k : sum(x) <= t }, for k = 0..D.
    cum_.assign(d + 1, std::vector<uint64_t>(max_sum_ + 2, 0));
    // k = 0: the empty tuple has sum 0.
    for (uint32_t t = 0; t <= max_sum_; ++t) cum_[0][t + 1] = 1;
    for (uint32_t k = 1; k <= d; ++k) {
      // counts_k(t) = cum_{k-1}(t) - cum_{k-1}(t - N); accumulate into cum_k.
      uint64_t running = 0;
      for (uint32_t t = 0; t <= max_sum_; ++t) {
        const uint64_t upper = cum_[k - 1][t + 1];
        const uint64_t lower =
            t + 1 >= n ? cum_[k - 1][t + 1 - n] : 0;
        running += upper - lower;
        cum_[k][t + 1] = running;
      }
    }
  }

  std::string_view name() const override { return "diagonal"; }

  CSFC_DETERMINISTIC
  uint64_t Index(std::span<const uint32_t> point) const override {
    assert(point.size() == dims());
    uint64_t t = 0;
    for (uint32_t c : point) t += c;
    const uint64_t plane_size = PlaneCount(dims(), t);
    uint64_t rank = 0;
    uint64_t r = t;
    for (uint32_t j = 0; j < dims(); ++j) {
      const uint32_t rem = dims() - 1 - j;
      // Completions for v in [0, point[j]): sum over v of
      // counts_rem(r - v) = cum_rem(r) - cum_rem(r - point[j]).
      rank += SumRange(rem, r, point[j]);
      r -= point[j];
    }
    if (t & 1) rank = plane_size - 1 - rank;  // zigzag
    return PlaneOffset(t) + rank;
  }

  CSFC_DETERMINISTIC
  void Point(uint64_t index, std::span<uint32_t> out) const override {
    assert(out.size() == dims());
    // Locate the plane: largest t with PlaneOffset(t) <= index.
    uint32_t lo = 0;
    uint32_t hi = max_sum_;
    while (lo < hi) {
      const uint32_t mid = (lo + hi + 1) / 2;
      if (PlaneOffset(mid) <= index) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    const uint32_t t = lo;
    uint64_t rank = index - PlaneOffset(t);
    if (t & 1) rank = PlaneCount(dims(), t) - 1 - rank;
    uint64_t r = t;
    for (uint32_t j = 0; j < dims(); ++j) {
      const uint32_t rem = dims() - 1 - j;
      // Largest v with SumRange(rem, r, v) <= rank.
      const uint64_t vmax = std::min<uint64_t>(side() - 1, r);
      uint64_t a = 0;
      uint64_t b = vmax;
      while (a < b) {
        const uint64_t mid = (a + b + 1) / 2;
        if (SumRange(rem, r, mid) <= rank) {
          a = mid;
        } else {
          b = mid - 1;
        }
      }
      rank -= SumRange(rem, r, a);
      out[j] = static_cast<uint32_t>(a);
      r -= a;
    }
    assert(r == 0);
  }

 private:
  // #{ x in [0,N-1]^k : sum(x) = t }; 0 outside the valid range.
  uint64_t PlaneCount(uint32_t k, uint64_t t) const {
    if (t > max_sum_) return 0;
    const uint64_t ut = t;
    return cum_[k][ut + 1] - cum_[k][ut];
  }

  // Number of cells in planes 0..t-1 of the full D-dim grid.
  uint64_t PlaneOffset(uint64_t t) const { return cum_[dims()][t]; }

  // Sum over v in [0, m) of PlaneCount(k, r - v)
  //   = cum_k(r) - cum_k(r - m), clamped to valid sums.
  uint64_t SumRange(uint32_t k, uint64_t r, uint64_t m) const {
    if (m == 0) return 0;
    const uint64_t hi_t = std::min<uint64_t>(r, max_sum_);
    const uint64_t upper = cum_[k][hi_t + 1];
    uint64_t lower = 0;
    if (r >= m) {
      const uint64_t lo_t = std::min<uint64_t>(r - m, max_sum_);
      lower = cum_[k][lo_t + 1];
    }
    return upper - lower;
  }

  uint32_t max_sum_;
  std::vector<std::vector<uint64_t>> cum_;
};

}  // namespace

Result<CurvePtr> MakeDiagonalCurve(GridSpec spec) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  return CurvePtr(new DiagonalCurve(spec));
}

}  // namespace csfc
