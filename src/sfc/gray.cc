// The Gray curve: position i along the curve visits the cell whose
// interleaved (Morton) coordinate equals the binary-reflected Gray code of
// i. Consecutive curve positions therefore differ in exactly one interleaved
// bit, i.e. in exactly one coordinate, by a power of two.

#include "sfc/curve.h"

#include <cassert>

#include "sfc/bits.h"

namespace csfc {

namespace {

class GrayCurve final : public SpaceFillingCurve {
 public:
  explicit GrayCurve(GridSpec spec) : SpaceFillingCurve(spec) {}

  std::string_view name() const override { return "gray"; }

  uint64_t Index(std::span<const uint32_t> point) const override {
    assert(point.size() == dims());
    return GrayDecode(InterleaveBits(point, dims(), bits()));
  }

  void Point(uint64_t index, std::span<uint32_t> out) const override {
    assert(out.size() == dims());
    DeinterleaveBits(GrayCode(index), dims(), bits(), out);
  }
};

}  // namespace

Result<CurvePtr> MakeGrayCurve(GridSpec spec) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  return CurvePtr(new GrayCurve(spec));
}

}  // namespace csfc
