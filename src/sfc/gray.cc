// The Gray curve: position i along the curve visits the cell whose
// interleaved (Morton) coordinate equals the binary-reflected Gray code of
// i. Consecutive curve positions therefore differ in exactly one interleaved
// bit, i.e. in exactly one coordinate, by a power of two.

#include "sfc/curve.h"

#include "common/annotations.h"

#include <cassert>

#include "common/simd.h"
#include "sfc/bits.h"

namespace csfc {

namespace {

// In-place batch GrayDecode: the xor-shift-cascade prefix scan, run in
// SIMD u64 lanes when the resolved CSFC_SIMD level allows. Pure integer
// ops — identical results on every backend.
void GrayDecodeBatch(std::span<uint64_t> inout) {
  const size_t n = inout.size();
  size_t j = 0;
#if CSFC_SIMD_X86
  if (simd::Resolve(simd::Mode::kAuto) != simd::Level::kScalar) {
    using B = simd::Sse2Backend;
    constexpr size_t kW = static_cast<size_t>(B::kWidth);
    for (; j + kW <= n; j += kW) {
      B::I64 g = B::LoadI64(reinterpret_cast<const int64_t*>(&inout[j]));
      for (uint32_t shift = 1; shift < 64; shift <<= 1) {
        g = B::XorI64(g, B::ShrI64(g, shift));
      }
      B::StoreI64(reinterpret_cast<int64_t*>(&inout[j]), g);
    }
  }
#endif
  for (; j < n; ++j) inout[j] = GrayDecode(inout[j]);
}

class GrayCurve final : public SpaceFillingCurve {
 public:
  explicit GrayCurve(GridSpec spec) : SpaceFillingCurve(spec) {}

  std::string_view name() const override { return "gray"; }

  CSFC_DETERMINISTIC
  uint64_t Index(std::span<const uint32_t> point) const override {
    assert(point.size() == dims());
    return GrayDecode(InterleaveBits(point, dims(), bits()));
  }

  CSFC_DETERMINISTIC
  void Point(uint64_t index, std::span<uint32_t> out) const override {
    assert(out.size() == dims());
    DeinterleaveBits(GrayCode(index), dims(), bits(), out);
  }

  CSFC_DETERMINISTIC
  void IndexBatch(std::span<const uint32_t> flat,
                  std::span<uint64_t> out) const override {
    assert(flat.size() == out.size() * dims());
    InterleaveBitsBatch(flat, dims(), bits(), out);
    GrayDecodeBatch(out);
  }

  std::vector<uint64_t> BuildIndexTable() const override {
    return BuildIndexTableByEncode();
  }
};

}  // namespace

Result<CurvePtr> MakeGrayCurve(GridSpec spec) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  return CurvePtr(new GrayCurve(spec));
}

}  // namespace csfc
