// The Scan curve: boustrophedon (snake) sweep. Identical to C-Scan except
// that each lower-dimensional block is traversed in alternating direction,
// so consecutive cells along the whole curve are always grid neighbors.
//
// The mapping is reflected mixed-radix (base 2^bits) coding: process digits
// most-significant first; a digit is reflected whenever the running parity
// of the more significant *index* digits is odd.

#include "sfc/curve.h"

#include "common/annotations.h"

#include <cassert>

namespace csfc {

namespace {

class ScanCurve final : public SpaceFillingCurve {
 public:
  explicit ScanCurve(GridSpec spec) : SpaceFillingCurve(spec) {}

  std::string_view name() const override { return "scan"; }

  // Reflected mixed-radix (base 2^bits) Gray coding: when a coordinate is
  // odd, the traversal of every less significant dimension is reflected.
  // The running reflection flag therefore toggles on the parity of the
  // *coordinate*, on both directions of the mapping.

  CSFC_DETERMINISTIC
  uint64_t Index(std::span<const uint32_t> point) const override {
    assert(point.size() == dims());
    const uint64_t n = side();
    uint64_t index = 0;
    bool flip = false;
    for (uint32_t i = 0; i < dims(); ++i) {
      const uint64_t c = point[i];
      assert(c < n);
      const uint64_t digit = flip ? n - 1 - c : c;
      index = index * n + digit;
      if (c & 1) flip = !flip;
    }
    return index;
  }

  CSFC_DETERMINISTIC
  void Point(uint64_t index, std::span<uint32_t> out) const override {
    assert(out.size() == dims());
    const uint64_t n = side();
    bool flip = false;
    // Extract digits most-significant first.
    for (uint32_t i = 0; i < dims(); ++i) {
      const uint32_t shift = (dims() - 1 - i) * bits();
      const uint64_t digit = (index >> shift) & (n - 1);
      out[i] = static_cast<uint32_t>(flip ? n - 1 - digit : digit);
      if (out[i] & 1) flip = !flip;
    }
  }
};

}  // namespace

Result<CurvePtr> MakeScanCurve(GridSpec spec) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  return CurvePtr(new ScanCurve(spec));
}

}  // namespace csfc
