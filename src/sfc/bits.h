// Bit-interleaving helpers shared by the Z-order and Gray curves.

#ifndef CSFC_SFC_BITS_H_
#define CSFC_SFC_BITS_H_

#include <cstdint>
#include <span>

namespace csfc {

/// Interleaves `bits` bits of each of `dims` coordinates into a Morton
/// index. Bit b of dimension i maps to index bit b*dims + (dims-1-i).
uint64_t InterleaveBits(std::span<const uint32_t> point, uint32_t dims,
                        uint32_t bits);

/// Inverse of InterleaveBits.
void DeinterleaveBits(uint64_t index, uint32_t dims, uint32_t bits,
                      std::span<uint32_t> out);

/// Batch InterleaveBits: out[j] = InterleaveBits of the j-th of
/// out.size() row-major points held back to back in `flat`
/// (flat.size() == out.size() * dims). Runs the interleave in SIMD
/// u64 lanes when the resolved CSFC_SIMD level allows; bit-identical to
/// the per-point form either way (pure integer ops).
void InterleaveBitsBatch(std::span<const uint32_t> flat, uint32_t dims,
                         uint32_t bits, std::span<uint64_t> out);

/// Binary-reflected Gray code of x.
constexpr uint64_t GrayCode(uint64_t x) { return x ^ (x >> 1); }

/// Inverse of GrayCode.
constexpr uint64_t GrayDecode(uint64_t g) {
  uint64_t x = g;
  for (uint64_t shift = 1; shift < 64; shift <<= 1) x ^= x >> shift;
  return x;
}

}  // namespace csfc

#endif  // CSFC_SFC_BITS_H_
