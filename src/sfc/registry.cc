#include "sfc/registry.h"

#include <string>

namespace csfc {

Result<CurvePtr> MakeCurve(std::string_view name, GridSpec spec) {
  if (name == "scan") return MakeScanCurve(spec);
  if (name == "cscan" || name == "sweep") return MakeCScanCurve(spec);
  if (name == "peano" || name == "zorder") return MakeZOrderCurve(spec);
  if (name == "gray") return MakeGrayCurve(spec);
  if (name == "hilbert") return MakeHilbertCurve(spec);
  if (name == "spiral") return MakeSpiralCurve(spec);
  if (name == "diagonal") return MakeDiagonalCurve(spec);
  return Status::NotFound("unknown space-filling curve: " + std::string(name));
}

const std::vector<std::string_view>& AllCurveNames() {
  static const std::vector<std::string_view> kNames = {
      "scan", "cscan", "peano", "gray", "hilbert", "spiral", "diagonal"};
  return kNames;
}

bool IsKnownCurve(std::string_view name) {
  GridSpec tiny{.dims = 2, .bits = 1};
  return MakeCurve(name, tiny).ok();
}

}  // namespace csfc
