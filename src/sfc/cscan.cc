// The C-Scan curve (the paper also calls it Sweep): plain row-major order.
// Every lower-dimensional block is traversed in the same direction, like a
// C-SCAN disk arm that jumps back to cylinder 0 after each sweep. It is the
// only Figure-1 curve with "free" inversions in its last dimension, which is
// why the paper finds it ideal when one QoS dimension dominates all others
// (Figure 7b).

#include "sfc/curve.h"

#include "common/annotations.h"

#include <cassert>

namespace csfc {

namespace {

class CScanCurve final : public SpaceFillingCurve {
 public:
  explicit CScanCurve(GridSpec spec) : SpaceFillingCurve(spec) {}

  std::string_view name() const override { return "cscan"; }

  CSFC_DETERMINISTIC
  uint64_t Index(std::span<const uint32_t> point) const override {
    assert(point.size() == dims());
    uint64_t index = 0;
    for (uint32_t i = 0; i < dims(); ++i) {
      assert(point[i] < side());
      index = (index << bits()) | point[i];
    }
    return index;
  }

  CSFC_DETERMINISTIC
  void Point(uint64_t index, std::span<uint32_t> out) const override {
    assert(out.size() == dims());
    const uint64_t mask = side() - 1;
    for (uint32_t i = 0; i < dims(); ++i) {
      const uint32_t shift = (dims() - 1 - i) * bits();
      out[i] = static_cast<uint32_t>((index >> shift) & mask);
    }
  }
};

}  // namespace

Result<CurvePtr> MakeCScanCurve(GridSpec spec) {
  if (Status s = spec.Validate(); !s.ok()) return s;
  return CurvePtr(new CScanCurve(spec));
}

}  // namespace csfc
