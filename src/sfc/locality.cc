#include "sfc/locality.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/random.h"

namespace csfc {

Result<LocalityStats> AnalyzeCurve(const SpaceFillingCurve& curve,
                                   uint64_t max_cells, uint64_t pair_samples,
                                   uint64_t seed) {
  const uint64_t cells = curve.num_cells();
  if (cells > max_cells) {
    return Status::InvalidArgument(
        "curve has " + std::to_string(cells) +
        " cells, above the analysis cap of " + std::to_string(max_cells));
  }
  const uint32_t d = curve.dims();
  LocalityStats stats;
  stats.dim_inversion_rate.assign(d, 0.0);
  stats.dim_irregularity.assign(d, 0);

  // Full walk for step statistics.
  std::vector<uint32_t> prev(d), cur(d);
  curve.Point(0, std::span<uint32_t>(prev.data(), d));
  double sum_l1 = 0.0;
  for (uint64_t i = 1; i < cells; ++i) {
    curve.Point(i, std::span<uint32_t>(cur.data(), d));
    uint64_t l1 = 0;
    for (uint32_t k = 0; k < d; ++k) {
      if (cur[k] < prev[k]) ++stats.dim_irregularity[k];
      l1 += static_cast<uint64_t>(
          std::abs(static_cast<int64_t>(cur[k]) - static_cast<int64_t>(prev[k])));
    }
    sum_l1 += static_cast<double>(l1);
    if (l1 == 1) {
      ++stats.contiguous_steps;
    } else {
      ++stats.jumps;
    }
    stats.max_step_l1 = std::max(stats.max_step_l1, l1);
    std::swap(prev, cur);
  }
  if (cells > 1) sum_l1 /= static_cast<double>(cells - 1);
  stats.mean_step_l1 = sum_l1;

  // Sampled ordered pairs for per-dimension inversion rates.
  Rng rng(seed);
  std::vector<uint64_t> inversions(d, 0);
  std::vector<uint32_t> pa(d), pb(d);
  uint64_t valid_pairs = 0;
  for (uint64_t s = 0; s < pair_samples; ++s) {
    uint64_t i = rng.Uniform(cells);
    uint64_t j = rng.Uniform(cells);
    if (i == j) continue;
    if (i > j) std::swap(i, j);
    curve.Point(i, std::span<uint32_t>(pa.data(), d));
    curve.Point(j, std::span<uint32_t>(pb.data(), d));
    for (uint32_t k = 0; k < d; ++k) {
      if (pa[k] > pb[k]) ++inversions[k];
    }
    ++valid_pairs;
  }
  for (uint32_t k = 0; k < d; ++k) {
    stats.dim_inversion_rate[k] =
        valid_pairs == 0
            ? 0.0
            : static_cast<double>(inversions[k]) /
                  static_cast<double>(valid_pairs);
  }
  return stats;
}

}  // namespace csfc
