#include "workload/edl.h"

#include <algorithm>

namespace csfc {

Status EdlWorkloadConfig::Validate() const {
  if (num_editors == 0) {
    return Status::InvalidArgument("num_editors must be > 0");
  }
  if (ops_per_script == 0) {
    return Status::InvalidArgument("ops_per_script must be > 0");
  }
  if (clip_blocks_lo == 0 || clip_blocks_hi < clip_blocks_lo) {
    return Status::InvalidArgument("clip block range is invalid");
  }
  if (av_block_bytes == 0 || archive_block_bytes == 0) {
    return Status::InvalidArgument("block sizes must be > 0");
  }
  if (period_ms <= 0) return Status::InvalidArgument("period_ms must be > 0");
  if (deadline_hi_ms < deadline_lo_ms) {
    return Status::InvalidArgument("deadline range is inverted");
  }
  if (play_weight < 0 || ingest_weight < 0 || archive_weight < 0 ||
      play_weight + ingest_weight + archive_weight <= 0) {
    return Status::InvalidArgument("op weights must be nonnegative, sum > 0");
  }
  if (priority_levels == 0) {
    return Status::InvalidArgument("priority_levels must be > 0");
  }
  if (cylinders < 1) return Status::InvalidArgument("cylinders must be >= 1");
  return Status::OK();
}

Result<std::unique_ptr<EdlWorkloadGenerator>> EdlWorkloadGenerator::Create(
    const EdlWorkloadConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  return std::unique_ptr<EdlWorkloadGenerator>(
      new EdlWorkloadGenerator(config));
}

EdlWorkloadGenerator::EdlWorkloadGenerator(const EdlWorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  const double total_weight =
      config_.play_weight + config_.ingest_weight + config_.archive_weight;
  scripts_.resize(config_.num_editors);
  levels_.resize(config_.num_editors);
  for (uint32_t e = 0; e < config_.num_editors; ++e) {
    levels_[e] =
        static_cast<PriorityLevel>(rng_.Uniform(config_.priority_levels));
    scripts_[e].reserve(config_.ops_per_script);
    for (uint32_t i = 0; i < config_.ops_per_script; ++i) {
      EdlOp op;
      const double pick = rng_.NextDouble() * total_weight;
      if (pick < config_.play_weight) {
        op.kind = EdlOpKind::kPlayClip;
      } else if (pick < config_.play_weight + config_.ingest_weight) {
        op.kind = EdlOpKind::kIngest;
      } else {
        op.kind = EdlOpKind::kArchive;
      }
      op.start_cylinder =
          static_cast<Cylinder>(rng_.Uniform(config_.cylinders));
      op.blocks = static_cast<uint32_t>(
          config_.clip_blocks_lo +
          rng_.Uniform(config_.clip_blocks_hi - config_.clip_blocks_lo + 1));
      scripts_[e].push_back(op);
    }
    // Editors start with a small random phase so scripts interleave.
    ready_.push(EditorState{
        .editor = e,
        .op = 0,
        .block = 0,
        .next_time = MsToSim(rng_.UniformDouble(0.0, config_.period_ms))});
  }
}

std::optional<Request> EdlWorkloadGenerator::Next() {
  while (!ready_.empty()) {
    EditorState state = ready_.top();
    ready_.pop();
    const std::vector<EdlOp>& script = scripts_[state.editor];
    if (state.op >= script.size()) continue;  // editor finished
    const EdlOp& op = script[state.op];

    Request r;
    r.id = next_id_++;
    r.arrival = state.next_time;
    r.stream = state.editor;
    r.priorities.push_back(levels_[state.editor]);
    r.cylinder = static_cast<Cylinder>(
        (op.start_cylinder + state.block) % config_.cylinders);
    switch (op.kind) {
      case EdlOpKind::kPlayClip:
        r.is_write = false;
        r.bytes = config_.av_block_bytes;
        r.deadline = r.arrival + MsToSim(rng_.UniformDouble(
                                     config_.deadline_lo_ms,
                                     config_.deadline_hi_ms));
        break;
      case EdlOpKind::kIngest:
        r.is_write = true;
        r.bytes = config_.av_block_bytes;
        r.deadline = r.arrival + MsToSim(rng_.UniformDouble(
                                     config_.deadline_lo_ms,
                                     config_.deadline_hi_ms));
        break;
      case EdlOpKind::kArchive:
        r.is_write = false;
        r.bytes = config_.archive_block_bytes;
        r.deadline = kNoDeadline;
        break;
    }

    // Advance the editor's cursor.
    ++state.block;
    if (state.block >= op.blocks) {
      state.block = 0;
      ++state.op;
    }
    state.next_time += MsToSim(config_.period_ms);
    ready_.push(state);
    return r;
  }
  return std::nullopt;
}

}  // namespace csfc
