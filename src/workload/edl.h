// The Edit Decision List (EDL) workload of Section 6: a non-linear editing
// server executes per-editor scripts of operations — real-time clip
// playback (sequential reads with deadlines), real-time ingest (sequential
// writes with deadlines), and background archive/ftp transfers (large
// blocks, no deadline). Each editor runs its script sequentially at stream
// rate; editors are merged into one arrival-ordered request stream.
//
// Compared with MpegStreamGenerator (pure periodic streams), the EDL
// generator produces the heterogeneous traffic the paper's NewsByte
// scenario describes: mixes of urgent small-block A/V requests and bulk
// non-real-time transfers competing for the same disk, keyed by editor
// priority.

#ifndef CSFC_WORKLOAD_EDL_H_
#define CSFC_WORKLOAD_EDL_H_

#include <memory>
#include <queue>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "workload/generator.h"

namespace csfc {

/// One step of an editor's script.
enum class EdlOpKind {
  kPlayClip,  ///< real-time sequential reads
  kIngest,    ///< real-time sequential writes
  kArchive,   ///< background bulk transfer, no deadline
};

/// A materialized script step.
struct EdlOp {
  EdlOpKind kind = EdlOpKind::kPlayClip;
  Cylinder start_cylinder = 0;
  uint32_t blocks = 1;  ///< requests this step issues
};

/// Configuration for EdlWorkloadGenerator.
struct EdlWorkloadConfig {
  uint64_t seed = 1;
  /// Concurrent editors.
  uint32_t num_editors = 16;
  /// Script steps per editor.
  uint32_t ops_per_script = 8;
  /// Blocks per clip (uniform range).
  uint32_t clip_blocks_lo = 4;
  uint32_t clip_blocks_hi = 24;
  /// Block size of real-time A/V requests.
  uint64_t av_block_bytes = 64 * 1024;
  /// Block size of archive transfers.
  uint64_t archive_block_bytes = 256 * 1024;
  /// Per-editor request period during real-time steps (ms). Archive steps
  /// issue at the same pacing (a throttled background copy).
  double period_ms = 40.0;
  /// Relative deadline range for real-time requests (ms).
  double deadline_lo_ms = 75.0;
  double deadline_hi_ms = 150.0;
  /// Probability weights of the three op kinds (normalized internally).
  double play_weight = 0.6;
  double ingest_weight = 0.3;
  double archive_weight = 0.1;
  /// Editor priority levels (level assigned uniformly per editor).
  uint32_t priority_levels = 8;
  uint32_t cylinders = 3832;

  Status Validate() const;
};

/// Pull-based generator executing one script per editor.
class EdlWorkloadGenerator final : public RequestGenerator {
 public:
  static Result<std::unique_ptr<EdlWorkloadGenerator>> Create(
      const EdlWorkloadConfig& config);

  std::optional<Request> Next() override;

  /// The script assigned to editor `e` (for inspection/tests).
  const std::vector<EdlOp>& script(uint32_t editor) const {
    return scripts_[editor];
  }
  PriorityLevel editor_level(uint32_t editor) const {
    return levels_[editor];
  }

 private:
  explicit EdlWorkloadGenerator(const EdlWorkloadConfig& config);

  struct EditorState {
    uint32_t editor = 0;
    size_t op = 0;        ///< current script step
    uint32_t block = 0;   ///< next block within the step
    SimTime next_time = 0;
  };
  struct LaterFirst {
    bool operator()(const EditorState& a, const EditorState& b) const {
      return a.next_time > b.next_time ||
             (a.next_time == b.next_time && a.editor > b.editor);
    }
  };

  EdlWorkloadConfig config_;
  Rng rng_;
  std::vector<std::vector<EdlOp>> scripts_;
  std::vector<PriorityLevel> levels_;
  std::priority_queue<EditorState, std::vector<EditorState>, LaterFirst>
      ready_;
  RequestId next_id_ = 0;
};

}  // namespace csfc

#endif  // CSFC_WORKLOAD_EDL_H_
