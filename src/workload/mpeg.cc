#include "workload/mpeg.h"

#include <algorithm>
#include <cmath>

namespace csfc {

Status MpegWorkloadConfig::Validate() const {
  if (num_users == 0) return Status::InvalidArgument("num_users must be > 0");
  if (stream_mbps <= 0) return Status::InvalidArgument("stream_mbps must be > 0");
  if (block_bytes == 0) return Status::InvalidArgument("block_bytes must be > 0");
  if (priority_levels < 1) {
    return Status::InvalidArgument("priority_levels must be >= 1");
  }
  if (deadline_hi_ms < deadline_lo_ms) {
    return Status::InvalidArgument("deadline range is inverted");
  }
  if (read_fraction < 0.0 || read_fraction > 1.0) {
    return Status::InvalidArgument("read_fraction must be in [0,1]");
  }
  if (user_phase_spread_ms < 0.0) {
    return Status::InvalidArgument("user_phase_spread_ms must be >= 0");
  }
  if (user_phase_spread_ms + batch_jitter_ms > PeriodMs()) {
    return Status::InvalidArgument(
        "user_phase_spread_ms + batch_jitter_ms must not exceed the stream "
        "period, or consecutive periods would emit out of arrival order");
  }
  if (duration_ms <= 0) return Status::InvalidArgument("duration_ms must be > 0");
  if (cylinders < 1) return Status::InvalidArgument("cylinders must be >= 1");
  return Status::OK();
}

Result<std::unique_ptr<MpegStreamGenerator>> MpegStreamGenerator::Create(
    const MpegWorkloadConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  return std::unique_ptr<MpegStreamGenerator>(new MpegStreamGenerator(config));
}

MpegStreamGenerator::MpegStreamGenerator(const MpegWorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      period_(MsToSim(config.PeriodMs())),
      horizon_(MsToSim(config.duration_ms)) {
  levels_.reserve(config_.num_users);
  positions_.reserve(config_.num_users);
  const double mid = (config_.priority_levels - 1) / 2.0;
  for (uint32_t u = 0; u < config_.num_users; ++u) {
    const double v = rng_.Normal(mid, config_.priority_levels / 4.0);
    levels_.push_back(static_cast<PriorityLevel>(std::clamp(
        v, 0.0, static_cast<double>(config_.priority_levels - 1))));
    positions_.push_back(static_cast<Cylinder>(rng_.Uniform(config_.cylinders)));
    phases_.push_back(
        config_.user_phase_spread_ms > 0.0
            ? MsToSim(rng_.UniformDouble(0.0, config_.user_phase_spread_ms))
            : 0);
  }
}

void MpegStreamGenerator::FillBatch() {
  batch_.clear();
  batch_pos_ = 0;
  if (batch_time_ >= horizon_) return;
  for (uint32_t u = 0; u < config_.num_users; ++u) {
    Request r;
    r.id = next_id_++;
    r.arrival =
        batch_time_ + phases_[u] +
        MsToSim(rng_.UniformDouble(0.0, config_.batch_jitter_ms));
    r.deadline = r.arrival + MsToSim(rng_.UniformDouble(
                                 config_.deadline_lo_ms, config_.deadline_hi_ms));
    r.cylinder = positions_[u];
    // Advance the stream: blocks of a stream occupy consecutive cylinders
    // once the per-cylinder capacity is exhausted; modeled as +1 cylinder
    // per block with wraparound.
    positions_[u] = (positions_[u] + 1) % config_.cylinders;
    r.bytes = config_.block_bytes;
    r.is_write = !rng_.Bernoulli(config_.read_fraction);
    r.stream = u;
    r.priorities.push_back(levels_[u]);
    batch_.push_back(r);
  }
  std::sort(batch_.begin(), batch_.end(),
            [](const Request& a, const Request& b) {
              return a.arrival < b.arrival ||
                     (a.arrival == b.arrival && a.id < b.id);
            });
  batch_time_ += period_;
}

std::optional<Request> MpegStreamGenerator::Next() {
  if (batch_pos_ >= batch_.size()) {
    FillBatch();
    if (batch_.empty()) return std::nullopt;
  }
  return batch_[batch_pos_++];
}

}  // namespace csfc
