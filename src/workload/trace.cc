#include "workload/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace csfc {

std::string FormatTraceLine(const Request& r) {
  std::ostringstream out;
  out << r.id << ' ' << r.arrival << ' '
      << (r.has_deadline() ? r.deadline : -1) << ' ' << r.cylinder << ' '
      << r.bytes << ' ' << (r.is_write ? 1 : 0) << ' ' << r.stream;
  for (PriorityLevel p : r.priorities) out << ' ' << p;
  return out.str();
}

Result<Request> ParseTraceLine(const std::string& line) {
  std::istringstream in(line);
  Request r;
  int64_t deadline = 0;
  int is_write = 0;
  if (!(in >> r.id >> r.arrival >> deadline >> r.cylinder >> r.bytes >>
        is_write >> r.stream)) {
    return Status::InvalidArgument("malformed trace line: " + line);
  }
  if (deadline < -1) {
    return Status::InvalidArgument("negative deadline in trace line: " + line);
  }
  r.deadline = deadline == -1 ? kNoDeadline : deadline;
  r.is_write = is_write != 0;
  PriorityLevel p;
  while (in >> p) r.priorities.push_back(p);
  if (!in.eof() && in.fail()) {
    // trailing garbage that failed to parse as a priority level
    in.clear();
    std::string rest;
    in >> rest;
    if (!rest.empty()) {
      return Status::InvalidArgument("trailing garbage in trace line: " + line);
    }
  }
  return r;
}

Status SaveTrace(const std::string& path,
                 const std::vector<Request>& requests) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "# csfc trace v1: id arrival_us deadline_us cyl bytes write stream "
         "priorities...\n";
  for (const Request& r : requests) out << FormatTraceLine(r) << '\n';
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<std::vector<Request>> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<Request> requests;
  std::string line;
  SimTime last_arrival = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    Result<Request> r = ParseTraceLine(line);
    if (!r.ok()) return r.status();
    if (r->arrival < last_arrival) {
      return Status::InvalidArgument(
          "trace is not arrival-ordered at request id " +
          std::to_string(r->id));
    }
    last_arrival = r->arrival;
    requests.push_back(std::move(*r));
  }
  return requests;
}

std::vector<Request> DrainGenerator(RequestGenerator& gen,
                                    uint64_t max_requests) {
  std::vector<Request> out;
  for (uint64_t i = 0; i < max_requests; ++i) {
    std::optional<Request> r = gen.Next();
    if (!r) break;
    out.push_back(std::move(*r));
  }
  return out;
}

}  // namespace csfc
