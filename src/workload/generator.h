// Synthetic workload generation for the Section-5 experiments: Poisson or
// bursty arrivals of multi-priority, optionally real-time disk requests.
//
// Generators are pull-based: each Next() returns the next request in
// arrival order, so the simulator can lazily interleave arrivals with
// service completions. All randomness flows from the seed in the config.

#ifndef CSFC_WORKLOAD_GENERATOR_H_
#define CSFC_WORKLOAD_GENERATOR_H_

#include <memory>
#include <optional>

#include "common/random.h"
#include "common/status.h"
#include "workload/request.h"

namespace csfc {

/// How priority levels are assigned across requests.
enum class PriorityDistribution {
  kUniform,  ///< uniform over [0, levels)
  kNormal,   ///< normal centered mid-scale, clamped (Section 6 workload)
};

/// How target cylinders are drawn.
enum class CylinderDistribution {
  kUniform,  ///< uniform over the disk
  kZipf,     ///< Zipf-skewed toward low cylinders (hot outer zone), the
             ///< classic hot-spot access pattern of shared media libraries
};

/// Configuration for SyntheticGenerator.
struct WorkloadConfig {
  uint64_t seed = 1;
  /// Number of requests to generate.
  uint64_t count = 10000;

  /// Mean of the exponential interarrival distribution (ms).
  double mean_interarrival_ms = 25.0;
  /// Requests per burst; 1 = plain Poisson. With k > 1, bursts of k
  /// requests share an arrival instant and burst interarrivals are
  /// exponential with mean k * mean_interarrival_ms (same offered load).
  uint32_t burst_size = 1;

  /// Number of priority-like QoS dimensions (0 = none).
  uint32_t priority_dims = 3;
  /// Levels per dimension (level 0 = highest priority).
  uint32_t priority_levels = 16;
  PriorityDistribution priority_distribution = PriorityDistribution::kUniform;

  /// Relative deadline range (ms after arrival); ignored when
  /// relaxed_deadlines is true.
  double deadline_lo_ms = 500.0;
  double deadline_hi_ms = 700.0;
  bool relaxed_deadlines = false;

  /// Transfer size range (bytes), sampled uniformly...
  uint64_t bytes_lo = 64 * 1024;
  uint64_t bytes_hi = 64 * 1024;
  /// ...unless this is set: then size scales linearly with the request's
  /// dimension-0 priority level, from bytes_lo at level 0 (most important:
  /// small audio/video chunks) to bytes_hi at the lowest level (bulk ftp) —
  /// the Section 5.2 assumption that high-priority requests have smaller
  /// service times.
  bool couple_size_to_priority = false;

  /// Disk size; cylinders are drawn over [0, cylinders).
  uint32_t cylinders = 3832;
  CylinderDistribution cylinder_distribution = CylinderDistribution::kUniform;
  /// Skew of the kZipf distribution, in (0, 1); larger = hotter hot spot.
  double zipf_theta = 0.8;
  /// Fraction of write requests.
  double write_fraction = 0.0;

  Status Validate() const;
};

/// Abstract pull-based request source.
class RequestGenerator {
 public:
  virtual ~RequestGenerator() = default;
  /// Next request in nondecreasing arrival order; nullopt when exhausted.
  virtual std::optional<Request> Next() = 0;
};

/// Generator implementing WorkloadConfig.
class SyntheticGenerator final : public RequestGenerator {
 public:
  static Result<std::unique_ptr<SyntheticGenerator>> Create(
      const WorkloadConfig& config);

  std::optional<Request> Next() override;

  const WorkloadConfig& config() const { return config_; }

 private:
  explicit SyntheticGenerator(const WorkloadConfig& config);

  WorkloadConfig config_;
  Rng rng_;
  std::optional<ZipfDistribution> zipf_;
  uint64_t emitted_ = 0;
  SimTime clock_ = 0;
  uint32_t burst_left_ = 0;
};

}  // namespace csfc

#endif  // CSFC_WORKLOAD_GENERATOR_H_
