// The Section-6 workload: a non-linear editing / broadcast server
// (NewsByte-class) where 68..91 users per disk each sustain an MPEG-1
// stream at 1.5 Mbps. Users issue one block-sized request per stream
// period; requests arrive in bursts (the server works in batches), carry
// one of 8 priority levels distributed normally across users, are an
// even read/write editing mix, and must complete within a deadline drawn
// uniformly from 75..150 ms.
//
// Streams are laid out contiguously on disk: each user's requests advance
// cylinder-sequentially from a random start, wrapping at the end — giving
// the per-stream spatial locality a real editing server exhibits.

#ifndef CSFC_WORKLOAD_MPEG_H_
#define CSFC_WORKLOAD_MPEG_H_

#include <memory>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "workload/generator.h"

namespace csfc {

/// Configuration for MpegStreamGenerator.
struct MpegWorkloadConfig {
  uint64_t seed = 1;
  /// Concurrent editing users on this disk (paper: 68..91).
  uint32_t num_users = 80;
  /// Per-stream bit rate in Mbps (paper: MPEG-1 at 1.5).
  double stream_mbps = 1.5;
  /// Block size per request (Table 1: 64 KB).
  uint64_t block_bytes = 64 * 1024;
  /// Number of user priority levels (paper: 8).
  uint32_t priority_levels = 8;
  /// Relative deadline range in ms (paper: 75..150).
  double deadline_lo_ms = 75.0;
  double deadline_hi_ms = 150.0;
  /// Fraction of requests that are stream reads (rest are editing writes).
  double read_fraction = 0.5;
  /// Total simulated duration.
  double duration_ms = 60000.0;
  /// Per-request arrival jitter within a batch (ms); models queueing ahead
  /// of the disk scheduler rather than a truly simultaneous burst.
  double batch_jitter_ms = 2.0;
  /// Spread of per-user phase offsets (ms). 0 aligns every user on the
  /// same period boundary (one synchronized burst per period); setting it
  /// to the stream period staggers users uniformly, the steady-state of a
  /// server whose editors started at independent times.
  double user_phase_spread_ms = 0.0;
  /// Disk geometry for stream placement.
  uint32_t cylinders = 3832;

  Status Validate() const;

  /// The stream period: time to consume one block at the stream rate.
  double PeriodMs() const {
    return static_cast<double>(block_bytes) * 8.0 / (stream_mbps * 1e6) *
           1000.0;
  }
};

/// Pull-based generator for the editing-server workload. Each user has a
/// fixed priority level (normal across users, clamped), a fixed read/write
/// role per request, and a private sequential cylinder walk.
class MpegStreamGenerator final : public RequestGenerator {
 public:
  static Result<std::unique_ptr<MpegStreamGenerator>> Create(
      const MpegWorkloadConfig& config);

  std::optional<Request> Next() override;

  const MpegWorkloadConfig& config() const { return config_; }

  /// The priority level assigned to each user (index = user).
  const std::vector<PriorityLevel>& user_levels() const { return levels_; }

 private:
  explicit MpegStreamGenerator(const MpegWorkloadConfig& config);

  void FillBatch();

  MpegWorkloadConfig config_;
  Rng rng_;
  SimTime period_;
  SimTime horizon_;
  SimTime batch_time_ = 0;
  std::vector<PriorityLevel> levels_;
  std::vector<Cylinder> positions_;    // per-user next cylinder
  std::vector<SimTime> phases_;        // per-user period phase offset
  std::vector<Request> batch_;         // current batch, arrival-sorted
  size_t batch_pos_ = 0;
  RequestId next_id_ = 0;
};

}  // namespace csfc

#endif  // CSFC_WORKLOAD_MPEG_H_
