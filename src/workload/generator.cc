#include "workload/generator.h"

#include <algorithm>
#include <cmath>

namespace csfc {

Status WorkloadConfig::Validate() const {
  if (count == 0) return Status::InvalidArgument("count must be > 0");
  if (mean_interarrival_ms <= 0.0) {
    return Status::InvalidArgument("mean_interarrival_ms must be > 0");
  }
  if (burst_size == 0) return Status::InvalidArgument("burst_size must be > 0");
  if (priority_dims > 12) {
    return Status::InvalidArgument("priority_dims must be <= 12");
  }
  if (priority_dims > 0 && priority_levels < 2) {
    return Status::InvalidArgument("priority_levels must be >= 2");
  }
  if (!relaxed_deadlines && deadline_hi_ms < deadline_lo_ms) {
    return Status::InvalidArgument("deadline range is inverted");
  }
  if (bytes_hi < bytes_lo) {
    return Status::InvalidArgument("bytes range is inverted");
  }
  if (cylinders < 1) return Status::InvalidArgument("cylinders must be >= 1");
  if (cylinder_distribution == CylinderDistribution::kZipf &&
      (zipf_theta <= 0.0 || zipf_theta >= 1.0)) {
    return Status::InvalidArgument("zipf_theta must be in (0,1)");
  }
  if (write_fraction < 0.0 || write_fraction > 1.0) {
    return Status::InvalidArgument("write_fraction must be in [0,1]");
  }
  return Status::OK();
}

Result<std::unique_ptr<SyntheticGenerator>> SyntheticGenerator::Create(
    const WorkloadConfig& config) {
  if (Status s = config.Validate(); !s.ok()) return s;
  return std::unique_ptr<SyntheticGenerator>(new SyntheticGenerator(config));
}

SyntheticGenerator::SyntheticGenerator(const WorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  if (config.cylinder_distribution == CylinderDistribution::kZipf) {
    zipf_.emplace(config.cylinders, config.zipf_theta);
  }
}

std::optional<Request> SyntheticGenerator::Next() {
  if (emitted_ >= config_.count) return std::nullopt;

  if (burst_left_ == 0) {
    // Advance the clock to the next burst instant. Burst interarrivals are
    // scaled by burst_size so the offered request rate is independent of
    // burstiness.
    const double mean =
        config_.mean_interarrival_ms * static_cast<double>(config_.burst_size);
    clock_ += MsToSim(rng_.Exponential(mean));
    burst_left_ = config_.burst_size;
  }
  --burst_left_;

  Request r;
  r.id = emitted_++;
  r.arrival = clock_;
  r.cylinder = zipf_ ? static_cast<Cylinder>(zipf_->Sample(rng_))
                     : static_cast<Cylinder>(rng_.Uniform(config_.cylinders));
  r.is_write = rng_.Bernoulli(config_.write_fraction);

  for (uint32_t k = 0; k < config_.priority_dims; ++k) {
    PriorityLevel level;
    if (config_.priority_distribution == PriorityDistribution::kNormal) {
      const double mid = (config_.priority_levels - 1) / 2.0;
      const double v = rng_.Normal(mid, config_.priority_levels / 4.0);
      level = static_cast<PriorityLevel>(std::clamp(
          v, 0.0, static_cast<double>(config_.priority_levels - 1)));
    } else {
      level = static_cast<PriorityLevel>(rng_.Uniform(config_.priority_levels));
    }
    r.priorities.push_back(level);
  }

  if (config_.relaxed_deadlines) {
    r.deadline = kNoDeadline;
  } else {
    r.deadline = r.arrival + MsToSim(rng_.UniformDouble(
                                 config_.deadline_lo_ms, config_.deadline_hi_ms));
  }

  if (config_.couple_size_to_priority && config_.priority_dims > 0 &&
      config_.priority_levels > 1) {
    const double frac = static_cast<double>(r.priorities[0]) /
                        static_cast<double>(config_.priority_levels - 1);
    r.bytes = config_.bytes_lo +
              static_cast<uint64_t>(
                  frac * static_cast<double>(config_.bytes_hi - config_.bytes_lo));
  } else if (config_.bytes_hi > config_.bytes_lo) {
    r.bytes = config_.bytes_lo +
              rng_.Uniform(config_.bytes_hi - config_.bytes_lo + 1);
  } else {
    r.bytes = config_.bytes_lo;
  }

  return r;
}

}  // namespace csfc
