// The multimedia disk request: the multi-dimensional point the Cascaded-SFC
// scheduler linearizes. A request carries D priority-like QoS parameters
// (level 0 = most important), an absolute real-time deadline (or
// kNoDeadline), a cylinder position, and a transfer size.

#ifndef CSFC_WORKLOAD_REQUEST_H_
#define CSFC_WORKLOAD_REQUEST_H_

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>

#include "common/small_vector.h"
#include "common/types.h"

namespace csfc {

/// Per-request vector of priority levels, one per QoS dimension.
/// Inline capacity covers the paper's maximum of 12 dimensions.
using PriorityVec = SmallVector<PriorityLevel, 12>;

/// Sentinel deadline for requests with relaxed (no) deadlines.
inline constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::max();

/// A disk request flowing through the simulator.
struct Request {
  RequestId id = 0;
  /// Absolute arrival time.
  SimTime arrival = 0;
  /// Absolute deadline; kNoDeadline when relaxed.
  SimTime deadline = kNoDeadline;
  /// Target cylinder.
  Cylinder cylinder = 0;
  /// Transfer size in bytes.
  uint64_t bytes = 64 * 1024;
  /// QoS priority levels; empty for single-class workloads.
  PriorityVec priorities;
  /// True for writes (affects nothing in the base disk model but is kept
  /// for stream workloads and trace fidelity).
  bool is_write = false;
  /// Owning stream for stream workloads (0 when not applicable).
  uint32_t stream = 0;

  // Requests move through slot pools and growing vectors on the zero-copy
  // dispatch path; the moves are declared noexcept explicitly so the
  // compiler rejects any member change that would make them throwing
  // (which would silently degrade every vector growth back to copies).
  Request() = default;
  Request(const Request&) = default;
  Request& operator=(const Request&) = default;
  Request(Request&&) noexcept = default;
  Request& operator=(Request&&) noexcept = default;

  bool has_deadline() const { return deadline != kNoDeadline; }

  /// The priority level on dimension `k`, or 0 if the request has fewer
  /// dimensions.
  PriorityLevel priority(size_t k) const {
    return k < priorities.size() ? priorities[k] : 0;
  }

  /// Debug rendering: "id=3 t=12.5ms dl=100ms cyl=77 pri=[1,0,4]".
  std::string DebugString() const;
};

static_assert(std::is_nothrow_move_constructible_v<Request> &&
                  std::is_nothrow_move_assignable_v<Request>,
              "Request must stay nothrow-movable: slot pools and queue "
              "growth rely on moves never falling back to copies");

}  // namespace csfc

#endif  // CSFC_WORKLOAD_REQUEST_H_
