#include "workload/request.h"

#include <cstdio>

namespace csfc {

std::string Request::DebugString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "id=%llu t=%.3fms dl=%s cyl=%u pri=[",
                static_cast<unsigned long long>(id), SimToMs(arrival),
                has_deadline() ? std::to_string(SimToMs(deadline)).c_str()
                               : "none",
                cylinder);
  std::string out(buf);
  for (size_t i = 0; i < priorities.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(priorities[i]);
  }
  out += ']';
  return out;
}

}  // namespace csfc
