#include "sched/fcfs.h"

namespace csfc {

void FcfsScheduler::Enqueue(const Request& r, const DispatchContext&) {
  queue_.push_back(r);
}

std::optional<Request> FcfsScheduler::Dispatch(const DispatchContext&) {
  if (queue_.empty()) return std::nullopt;
  Request r = queue_.front();
  queue_.pop_front();
  return r;
}

void FcfsScheduler::ForEachWaiting(
    const std::function<void(const Request&)>& fn) const {
  for (const Request& r : queue_) fn(r);
}

}  // namespace csfc
