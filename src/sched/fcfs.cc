#include "sched/fcfs.h"

#include <utility>

namespace csfc {

void FcfsScheduler::Enqueue(Request r, const DispatchContext&) {
  queue_.push_back(std::move(r));
}

std::optional<Request> FcfsScheduler::Dispatch(const DispatchContext&) {
  if (queue_.empty()) return std::nullopt;
  Request r = std::move(queue_.front());
  queue_.pop_front();
  return r;
}

void FcfsScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const Request& r : queue_) fn(r);
}

}  // namespace csfc
