#include "sched/registry.h"

#include <algorithm>
#include <memory>
#include <string>

#include "sched/bucket.h"
#include "sched/dds.h"
#include "sched/edf.h"
#include "sched/extended.h"
#include "sched/fcfs.h"
#include "sched/fd_scan.h"
#include "sched/multi_queue.h"
#include "sched/scan_edf.h"
#include "sched/scan_family.h"
#include "sched/scan_rt.h"
#include "sched/ssed.h"
#include "sched/sstf.h"

namespace csfc {

namespace {

Status RequireDisk(std::string_view name, const SchedulerRegistryContext& ctx) {
  if (ctx.disk == nullptr) {
    return Status::FailedPrecondition(
        std::string(name) + " needs a DiskModel in the registry context");
  }
  return Status::OK();
}

}  // namespace

Result<SchedulerFactory> MakeSchedulerFactory(
    std::string_view name, const SchedulerRegistryContext& ctx) {
  const uint32_t cylinders =
      ctx.disk != nullptr ? ctx.disk->params().cylinders : 3832;
  if (name == "fcfs") {
    return SchedulerFactory([] { return std::make_unique<FcfsScheduler>(); });
  }
  if (name == "sstf") {
    return SchedulerFactory([] { return std::make_unique<SstfScheduler>(); });
  }
  if (name == "scan" || name == "look" || name == "cscan" ||
      name == "clook") {
    ScanVariant variant = ScanVariant::kScan;
    if (name == "look") variant = ScanVariant::kLook;
    if (name == "cscan") variant = ScanVariant::kCScan;
    if (name == "clook") variant = ScanVariant::kCLook;
    return SchedulerFactory([variant, cylinders] {
      return std::make_unique<ScanScheduler>(variant, cylinders);
    });
  }
  if (name == "edf") {
    return SchedulerFactory([] { return std::make_unique<EdfScheduler>(); });
  }
  if (name == "scan-edf") {
    return SchedulerFactory(
        [] { return std::make_unique<ScanEdfScheduler>(); });
  }
  if (name == "fd-scan") {
    if (Status s = RequireDisk(name, ctx); !s.ok()) return s;
    const DiskModel* disk = ctx.disk;
    return SchedulerFactory(
        [disk] { return std::make_unique<FdScanScheduler>(disk); });
  }
  if (name == "scan-rt") {
    if (Status s = RequireDisk(name, ctx); !s.ok()) return s;
    const DiskModel* disk = ctx.disk;
    return SchedulerFactory(
        [disk] { return std::make_unique<ScanRtScheduler>(disk); });
  }
  if (name == "ssedo" || name == "ssedv") {
    const SsedVariant variant =
        name == "ssedo" ? SsedVariant::kOrdering : SsedVariant::kValue;
    const double alpha = ctx.ssed_alpha;
    return SchedulerFactory([variant, cylinders, alpha] {
      return std::make_unique<SsedScheduler>(variant, cylinders, alpha);
    });
  }
  if (name == "multi-queue") {
    const uint32_t levels = ctx.priority_levels;
    return SchedulerFactory(
        [levels] { return std::make_unique<MultiQueueScheduler>(levels); });
  }
  if (name == "bucket") {
    const uint32_t levels = ctx.priority_levels;
    const uint32_t buckets = ctx.buckets;
    return SchedulerFactory([levels, buckets] {
      return std::make_unique<BucketScheduler>(levels, buckets);
    });
  }
  if (name == "dds") {
    if (Status s = RequireDisk(name, ctx); !s.ok()) return s;
    const DiskModel* disk = ctx.disk;
    return SchedulerFactory(
        [disk] { return std::make_unique<DdsScheduler>(disk); });
  }
  if (name == "sfc-dds") {
    if (Status s = RequireDisk(name, ctx); !s.ok()) return s;
    const DiskModel* disk = ctx.disk;
    // 16 levels per dimension over the cascaded config's dimensionality.
    const uint32_t dims =
        std::max(ctx.cascaded.encapsulator.priority_dims, 1u);
    const uint32_t bits = ctx.cascaded.encapsulator.priority_bits;
    auto probe = SfcDdsScheduler::Create(disk, ctx.cascaded.encapsulator.sfc1,
                                         dims, bits);
    if (!probe.ok()) return probe.status();
    const std::string curve = ctx.cascaded.encapsulator.sfc1;
    return SchedulerFactory([disk, curve, dims, bits]() -> SchedulerPtr {
      auto s = SfcDdsScheduler::Create(disk, curve, dims, bits);
      if (!s.ok()) return nullptr;
      return std::move(*s);
    });
  }
  if (name == "sfc-bucket") {
    const uint32_t levels = ctx.priority_levels;
    const uint32_t buckets = ctx.buckets;
    return SchedulerFactory([levels, buckets] {
      return std::make_unique<SfcBucketScheduler>(levels, buckets,
                                                  MsToSim(100.0));
    });
  }
  if (name == "csfc") {
    // Validate eagerly so a bad configuration fails here, not per run.
    auto probe = CascadedSfcScheduler::Create(ctx.cascaded);
    if (!probe.ok()) return probe.status();
    const CascadedConfig config = ctx.cascaded;
    return SchedulerFactory([config]() -> SchedulerPtr {
      auto s = CascadedSfcScheduler::Create(config);
      if (!s.ok()) return nullptr;
      return std::move(*s);
    });
  }
  return Status::NotFound("unknown scheduler: " + std::string(name));
}

const std::vector<std::string_view>& AllSchedulerNames() {
  static const std::vector<std::string_view> kNames = {
      "fcfs",    "sstf",   "scan",    "look",        "cscan",  "clook",
      "edf",     "scan-edf", "fd-scan", "scan-rt",   "ssedo",  "ssedv",
      "multi-queue", "bucket", "dds",   "sfc-dds", "sfc-bucket", "csfc"};
  return kNames;
}

}  // namespace csfc
