#include "sched/fd_scan.h"

#include <utility>

namespace csfc {

void FdScanScheduler::Enqueue(Request r, const DispatchContext&) {
  if (r.has_deadline()) by_deadline_.emplace(r.deadline, r.id);
  by_cylinder_.emplace(r.cylinder, std::move(r));
  ++size_;
}

SimTime FdScanScheduler::EstimateFinish(const Request& r,
                                        const DispatchContext& ctx) const {
  const double ms = disk_->SeekTimeMs(ctx.head, r.cylinder) +
                    disk_->AvgRotationalLatencyMs() +
                    disk_->TransferTimeMs(r.cylinder, r.bytes);
  return ctx.now + MsToSim(ms);
}

std::optional<Request> FdScanScheduler::Dispatch(const DispatchContext& ctx) {
  if (by_cylinder_.empty()) return std::nullopt;

  // Find the earliest feasible deadline and its cylinder.
  const Request* target = nullptr;
  for (const auto& [deadline, id] : by_deadline_) {
    // Locate the request by scanning its deadline peers (ids are unique).
    for (auto it = by_cylinder_.begin(); it != by_cylinder_.end(); ++it) {
      if (it->second.id == id) {
        if (EstimateFinish(it->second, ctx) <= deadline) target = &it->second;
        break;
      }
    }
    if (target != nullptr) break;
  }

  auto take = [&](std::multimap<Cylinder, Request>::iterator it) {
    Request r = std::move(it->second);
    by_cylinder_.erase(it);
    for (auto dit = by_deadline_.lower_bound(r.deadline);
         dit != by_deadline_.end() && dit->first == r.deadline; ++dit) {
      if (dit->second == r.id) {
        by_deadline_.erase(dit);
        break;
      }
    }
    --size_;
    return r;
  };

  if (target == nullptr) {
    // No feasible deadline: fall back to nearest-first (SSTF move).
    auto above = by_cylinder_.lower_bound(ctx.head);
    auto chosen = above != by_cylinder_.end() ? above : std::prev(above);
    if (above != by_cylinder_.begin() && above != by_cylinder_.end()) {
      auto below = std::prev(above);
      if (ctx.head - below->first < above->first - ctx.head) chosen = below;
    } else if (above == by_cylinder_.end()) {
      chosen = std::prev(by_cylinder_.end());
    }
    return take(chosen);
  }

  // Serve the first pending request en route toward the target (including
  // the target itself when nothing is closer in that direction).
  if (target->cylinder >= ctx.head) {
    auto it = by_cylinder_.lower_bound(ctx.head);  // first at/after head
    return take(it);
  }
  auto it = by_cylinder_.upper_bound(ctx.head);
  return take(std::prev(it));  // first at/below head going down
}

void FdScanScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const auto& [cyl, r] : by_cylinder_) fn(r);
}

}  // namespace csfc
