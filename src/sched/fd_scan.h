// FD-SCAN (Abbott & Garcia-Molina, RTSS '89): at each scheduling point the
// arm targets the request with the earliest *feasible* deadline — one the
// disk can still reach in time, estimated with the seek model — and serves
// requests encountered en route toward that target. If no deadline is
// feasible, the nearest request is served (pure seek optimization).

#ifndef CSFC_SCHED_FD_SCAN_H_
#define CSFC_SCHED_FD_SCAN_H_

#include <map>

#include "disk/disk_model.h"
#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

class FdScanScheduler final : public Scheduler {
 public:
  /// `disk` must outlive the scheduler (used for feasibility estimates).
  explicit FdScanScheduler(const DiskModel* disk) : disk_(disk) {}

  std::string_view name() const override { return "fd-scan"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return size_; }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  // Estimated completion time if the head went straight to `r` now.
  SimTime EstimateFinish(const Request& r, const DispatchContext& ctx) const;

  const DiskModel* disk_;
  std::multimap<Cylinder, Request> by_cylinder_;
  std::multimap<SimTime, RequestId> by_deadline_;  // deadline -> id index
  size_t size_ = 0;
};

}  // namespace csfc

#endif  // CSFC_SCHED_FD_SCAN_H_
