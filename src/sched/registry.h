// Name-based scheduler factory covering every baseline policy plus the
// Cascaded-SFC scheduler in its common configurations. Used by the CLI
// tools and the experiment harness so a scheduler can be selected with a
// string like "edf", "scan-rt" or "csfc".

#ifndef CSFC_SCHED_REGISTRY_H_
#define CSFC_SCHED_REGISTRY_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/cascaded_scheduler.h"
#include "disk/disk_model.h"
#include "sched/scheduler.h"

namespace csfc {

/// Shared context the baseline schedulers draw parameters from.
struct SchedulerRegistryContext {
  /// Disk model for policies needing service-time estimates (fd-scan,
  /// scan-rt, dds). Must outlive the produced factories/schedulers.
  const DiskModel* disk = nullptr;
  /// Priority levels for multi-queue / bucket.
  uint32_t priority_levels = 8;
  /// BUCKET bucket count.
  uint32_t buckets = 4;
  /// SSEDO/SSEDV urgency weight.
  double ssed_alpha = 0.8;
  /// Configuration used when "csfc" is requested.
  CascadedConfig cascaded;
};

/// Builds a factory for `name`. Recognized names: fcfs, sstf, scan, look,
/// cscan, clook, edf, scan-edf, fd-scan, scan-rt, ssedo, ssedv,
/// multi-queue, bucket, dds, csfc. Names needing the disk model fail with
/// FailedPrecondition when ctx.disk is null.
Result<SchedulerFactory> MakeSchedulerFactory(
    std::string_view name, const SchedulerRegistryContext& ctx);

/// Every recognized scheduler name.
const std::vector<std::string_view>& AllSchedulerNames();

}  // namespace csfc

#endif  // CSFC_SCHED_REGISTRY_H_
