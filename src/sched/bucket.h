// BUCKET (Haritsa, Carey & Livny, VLDB Journal '93): value-based
// scheduling for requests carrying both a value and a deadline. The value
// domain is split into buckets; buckets are served highest-value first and
// requests inside a bucket are served EDF. Designed for transaction
// scheduling, so it deliberately ignores the arm position — the property
// the paper exploits when showing Cascaded-SFC can *extend* BUCKET with an
// SFC3 stage (Section 4.3).
//
// Dimension 0 of the priority vector is the request value (level 0 = most
// valuable).

#ifndef CSFC_SCHED_BUCKET_H_
#define CSFC_SCHED_BUCKET_H_

#include <map>
#include <vector>

#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

class BucketScheduler final : public Scheduler {
 public:
  /// `levels` distinct value levels, grouped into `buckets` buckets
  /// (buckets <= levels; levels divisible grouping by range).
  BucketScheduler(uint32_t levels, uint32_t buckets);

  std::string_view name() const override { return "bucket"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return size_; }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  uint32_t BucketOf(PriorityLevel value_level) const;

  uint32_t levels_;
  uint32_t buckets_;
  // bucket index -> deadline-ordered requests; bucket 0 served first.
  std::vector<std::multimap<SimTime, Request>> queues_;
  size_t size_ = 0;
};

}  // namespace csfc

#endif  // CSFC_SCHED_BUCKET_H_
