#include "sched/scan_rt.h"

#include <algorithm>
#include <utility>

namespace csfc {

uint64_t ScanRtScheduler::ScanKey(Cylinder cyl, Cylinder head) const {
  const uint32_t cylinders = disk_->params().cylinders;
  return cyl >= head ? cyl - head : static_cast<uint64_t>(cyl) + cylinders - head;
}

bool ScanRtScheduler::PlanFeasible(const DispatchContext& ctx) const {
  SimTime clock = ctx.now;
  Cylinder head = ctx.head;
  for (const Request& r : plan_) {
    const double ms = disk_->SeekTimeMs(head, r.cylinder) +
                      disk_->AvgRotationalLatencyMs() +
                      disk_->TransferTimeMs(r.cylinder, r.bytes);
    clock += MsToSim(ms);
    if (r.has_deadline() && clock > r.deadline) return false;
    head = r.cylinder;
  }
  return true;
}

void ScanRtScheduler::Enqueue(Request r, const DispatchContext& ctx) {
  const uint64_t key = ScanKey(r.cylinder, ctx.head);
  auto pos = std::find_if(plan_.begin(), plan_.end(), [&](const Request& q) {
    return ScanKey(q.cylinder, ctx.head) > key;
  });
  const size_t idx = static_cast<size_t>(pos - plan_.begin());
  plan_.insert(pos, std::move(r));
  if (!PlanFeasible(ctx)) {
    // Back out the SCAN insertion and append instead.
    Request backed = std::move(plan_[idx]);
    plan_.erase(plan_.begin() + static_cast<ptrdiff_t>(idx));
    plan_.push_back(std::move(backed));
  }
}

std::optional<Request> ScanRtScheduler::Dispatch(const DispatchContext&) {
  if (plan_.empty()) return std::nullopt;
  Request r = std::move(plan_.front());
  plan_.erase(plan_.begin());
  return r;
}

void ScanRtScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const Request& r : plan_) fn(r);
}

}  // namespace csfc
