#include "sched/scan_edf.h"

#include <utility>

namespace csfc {

void ScanEdfScheduler::Enqueue(Request r, const DispatchContext&) {
  buckets_[Bucket(r.deadline)].emplace(r.cylinder, std::move(r));
  ++size_;
}

std::optional<Request> ScanEdfScheduler::Dispatch(const DispatchContext& ctx) {
  if (buckets_.empty()) return std::nullopt;
  auto& [bucket, group] = *buckets_.begin();
  // Within the earliest-deadline group, continue the upward sweep from the
  // head; wrap to the lowest cylinder of the group (C-SCAN-style order, as
  // in the paper's realization of SCAN-EDF via SFC3).
  auto it = group.lower_bound(ctx.head);
  if (it == group.end()) it = group.begin();
  Request r = std::move(it->second);
  group.erase(it);
  if (group.empty()) buckets_.erase(buckets_.begin());
  --size_;
  return r;
}

void ScanEdfScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const auto& [bucket, group] : buckets_) {
    for (const auto& [cyl, r] : group) fn(r);
  }
}

}  // namespace csfc
