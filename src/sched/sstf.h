// Shortest Seek Time First: always serves the pending request whose
// cylinder is nearest the head. Maximizes disk utilization, ignores
// deadlines and priorities, and can starve edge cylinders.

#ifndef CSFC_SCHED_SSTF_H_
#define CSFC_SCHED_SSTF_H_

#include <map>

#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

class SstfScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "sstf"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return size_; }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  // Cylinder-keyed multimap; requests on the same cylinder keep FIFO order.
  std::multimap<Cylinder, Request> by_cylinder_;
  size_t size_ = 0;
};

}  // namespace csfc

#endif  // CSFC_SCHED_SSTF_H_
