#include "sched/dds.h"

#include <algorithm>
#include <utility>

namespace csfc {

uint64_t DdsScheduler::ScanKey(Cylinder cyl, Cylinder head) const {
  const uint32_t cylinders = disk_->params().cylinders;
  return cyl >= head ? cyl - head : static_cast<uint64_t>(cyl) + cylinders - head;
}

bool DdsScheduler::PlanFeasible(const DispatchContext& ctx) const {
  SimTime clock = ctx.now;
  Cylinder head = ctx.head;
  for (const Request& r : plan_) {
    const double ms = disk_->SeekTimeMs(head, r.cylinder) +
                      disk_->AvgRotationalLatencyMs() +
                      disk_->TransferTimeMs(r.cylinder, r.bytes);
    clock += MsToSim(ms);
    if (r.has_deadline() && clock > r.deadline) return false;
    head = r.cylinder;
  }
  return true;
}

void DdsScheduler::Enqueue(Request r, const DispatchContext& ctx) {
  // Insert in C-SCAN order relative to the current head.
  const uint64_t key = ScanKey(r.cylinder, ctx.head);
  auto pos = std::find_if(plan_.begin(), plan_.end(), [&](const Request& q) {
    return ScanKey(q.cylinder, ctx.head) > key;
  });
  plan_.insert(pos, std::move(r));

  // If the insertion broke a deadline, demote the lowest-priority request
  // to the tail — one victim per arrival, exactly as the paper describes
  // ("the scheduler chooses the lowest priority disk request in the queue
  // and moves it to the tail"). This also bounds the per-arrival cost to
  // O(queue) even under sustained overload.
  if (plan_.size() > 1 && !PlanFeasible(ctx)) {
    // Lowest priority = largest level number; ties demote the later one.
    size_t victim = 0;
    for (size_t i = 1; i + 1 < plan_.size(); ++i) {
      if (plan_[i].priority(0) >= plan_[victim].priority(0)) victim = i;
    }
    Request demoted = std::move(plan_[victim]);
    plan_.erase(plan_.begin() + static_cast<ptrdiff_t>(victim));
    plan_.push_back(std::move(demoted));
  }
}

std::optional<Request> DdsScheduler::Dispatch(const DispatchContext&) {
  if (plan_.empty()) return std::nullopt;
  Request r = std::move(plan_.front());
  plan_.erase(plan_.begin());
  return r;
}

void DdsScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const Request& r : plan_) fn(r);
}

}  // namespace csfc
