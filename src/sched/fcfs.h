// First-Come First-Served: requests are served strictly in arrival order.
// The fairness baseline; also the normalization base for the paper's
// priority-inversion metric (Section 5.1).

#ifndef CSFC_SCHED_FCFS_H_
#define CSFC_SCHED_FCFS_H_

#include <deque>

#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

class FcfsScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "fcfs"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return queue_.size(); }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  std::deque<Request> queue_;
};

}  // namespace csfc

#endif  // CSFC_SCHED_FCFS_H_
