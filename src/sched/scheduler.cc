// Intentionally almost empty: Scheduler is an interface; this TU anchors
// its vtable/key function-free typeinfo in the library.

#include "sched/scheduler.h"

namespace csfc {}  // namespace csfc
