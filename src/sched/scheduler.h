// The scheduler interface every disk-scheduling policy implements —
// baselines (FCFS, SSTF, SCAN family, EDF, SCAN-EDF, FD-SCAN, SCAN-RT,
// SSEDO/SSEDV, multi-queue, BUCKET, DDS) and the Cascaded-SFC scheduler.
//
// The simulator pushes arrivals with Enqueue() and pulls the next request
// to serve with Dispatch() whenever the disk goes idle. Schedulers own all
// ordering state (e.g. the SCAN direction); the context carries the
// observable disk state.

#ifndef CSFC_SCHED_SCHEDULER_H_
#define CSFC_SCHED_SCHEDULER_H_

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <utility>

#include "common/function_ref.h"
#include "common/types.h"
#include "workload/request.h"

namespace csfc {

namespace obs {
class Tracer;
}  // namespace obs

/// Disk state visible to a scheduler at enqueue/dispatch time.
struct DispatchContext {
  /// Current simulation time.
  SimTime now = 0;
  /// Cylinder under the head (position after the most recent transfer).
  Cylinder head = 0;
};

/// Abstract disk scheduling policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Policy name for reports ("edf", "cascaded-sfc[hilbert,...]", ...).
  virtual std::string_view name() const = 0;

  /// Accepts an arriving request. Taken by value: the simulator moves each
  /// arrival in, and implementations move it on into their queue state, so
  /// the ~100-byte payload is never copied on the generator->queue path.
  /// Callers that still need the request afterwards pass an lvalue and pay
  /// exactly one copy at the call site.
  virtual void Enqueue(Request r, const DispatchContext& ctx) = 0;

  /// Accepts a batch of arrivals sharing one dispatch context. The default
  /// simply loops Enqueue; policies with batch characterization kernels
  /// (the cascaded scheduler's Encapsulator::CharacterizeBatch) override it
  /// so per-batch invariants are hoisted once instead of per request. The
  /// service front-end's drain path feeds ring batches through this.
  /// Requests are consumed (moved from); the span's payloads are dead
  /// after the call.
  virtual void EnqueueBatch(std::span<Request> batch,
                            const DispatchContext& ctx) {
    for (Request& r : batch) Enqueue(std::move(r), ctx);
  }

  /// Removes and returns the next request to serve, or nullopt if no
  /// request is pending. Implementations move the payload out of their
  /// queue state (the queue->service path is copy-free too).
  virtual std::optional<Request> Dispatch(const DispatchContext& ctx) = 0;

  /// Number of pending requests.
  virtual size_t queue_size() const = 0;

  /// Visits every pending request (order unspecified). Used by the metrics
  /// layer to count priority inversions at dispatch time — once per
  /// dispatch, so the visitor is a non-owning FunctionRef rather than a
  /// std::function (no allocation, single indirection).
  virtual void ForEachWaiting(FunctionRef<void(const Request&)> fn) const = 0;

  /// Observability hook. The simulator calls this at the start of every
  /// Run with the run's tracer; policies with internal state worth
  /// tracing (the cascaded scheduler's per-stage characterization, SP
  /// promotions, ER resets) override it and emit obs::TraceEvents during
  /// subsequent Enqueue/Dispatch calls. Contract:
  ///
  ///  * The default is a no-op — baselines (FCFS, the SCAN family, EDF,
  ///    ...) need no changes and pay nothing.
  ///  * `tracer` is borrowed, not owned. It stays valid until the next
  ///    Observe call; implementations must drop any stored reference when
  ///    Observe is called again (the new tracer replaces the old).
  ///  * The tracer may be disabled (enabled() == false). Implementations
  ///    must guard event construction behind enabled() so a disabled
  ///    tracer costs at most one branch per emission site.
  ///  * Observe may be called multiple times over a scheduler's life (one
  ///    per simulator Run); each call starts a new trace scope.
  virtual void Observe(obs::Tracer& tracer) { (void)tracer; }
};

using SchedulerPtr = std::unique_ptr<Scheduler>;

/// Factory signature used by the experiment harness so a fresh scheduler
/// can be built per simulation run.
using SchedulerFactory = std::function<SchedulerPtr()>;

}  // namespace csfc

#endif  // CSFC_SCHED_SCHEDULER_H_
