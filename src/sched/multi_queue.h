// Multi-queue priority scheduling (Carey, Jauhari & Livny, VLDB '89): one
// queue per priority level; the highest-priority non-empty queue is always
// served first; within a queue requests are served in SCAN (cylinder sweep)
// order. Uses dimension 0 of the request's priority vector.

#ifndef CSFC_SCHED_MULTI_QUEUE_H_
#define CSFC_SCHED_MULTI_QUEUE_H_

#include <map>
#include <vector>

#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

class MultiQueueScheduler final : public Scheduler {
 public:
  explicit MultiQueueScheduler(uint32_t levels);

  std::string_view name() const override { return "multi-queue"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return size_; }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  // queues_[level] is cylinder-ordered; level 0 = highest priority.
  std::vector<std::multimap<Cylinder, Request>> queues_;
  size_t size_ = 0;
};

}  // namespace csfc

#endif  // CSFC_SCHED_MULTI_QUEUE_H_
