// SCAN-RT (Kamel & Ito, '95): an arriving request is inserted into the
// service plan in SCAN order only when the insertion would not push any
// already-pending request past its deadline (estimated with the disk
// model); otherwise the newcomer is appended to the tail of the plan.
// The single-priority precursor of DDS.

#ifndef CSFC_SCHED_SCAN_RT_H_
#define CSFC_SCHED_SCAN_RT_H_

#include <vector>

#include "disk/disk_model.h"
#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

class ScanRtScheduler final : public Scheduler {
 public:
  /// `disk` must outlive the scheduler.
  explicit ScanRtScheduler(const DiskModel* disk) : disk_(disk) {}

  std::string_view name() const override { return "scan-rt"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return plan_.size(); }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  uint64_t ScanKey(Cylinder cyl, Cylinder head) const;
  bool PlanFeasible(const DispatchContext& ctx) const;

  const DiskModel* disk_;
  std::vector<Request> plan_;
};

}  // namespace csfc

#endif  // CSFC_SCHED_SCAN_RT_H_
