#include "sched/bucket.h"

#include <algorithm>
#include <utility>

namespace csfc {

BucketScheduler::BucketScheduler(uint32_t levels, uint32_t buckets)
    : levels_(std::max(levels, 1u)),
      buckets_(std::clamp(buckets, 1u, std::max(levels, 1u))),
      queues_(buckets_) {}

uint32_t BucketScheduler::BucketOf(PriorityLevel value_level) const {
  const uint32_t clamped = std::min(value_level, levels_ - 1);
  return clamped * buckets_ / levels_;
}

void BucketScheduler::Enqueue(Request r, const DispatchContext&) {
  queues_[BucketOf(r.priority(0))].emplace(r.deadline, std::move(r));
  ++size_;
}

std::optional<Request> BucketScheduler::Dispatch(const DispatchContext&) {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    auto it = queue.begin();  // earliest deadline within the bucket
    Request r = std::move(it->second);
    queue.erase(it);
    --size_;
    return r;
  }
  return std::nullopt;
}

void BucketScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const auto& queue : queues_) {
    for (const auto& [dl, r] : queue) fn(r);
  }
}

}  // namespace csfc
