#include "sched/edf.h"

#include <utility>

namespace csfc {

void EdfScheduler::Enqueue(Request r, const DispatchContext&) {
  by_deadline_.emplace(std::make_pair(r.deadline, r.arrival), std::move(r));
  ++size_;
}

std::optional<Request> EdfScheduler::Dispatch(const DispatchContext&) {
  if (by_deadline_.empty()) return std::nullopt;
  auto it = by_deadline_.begin();
  Request r = std::move(it->second);
  by_deadline_.erase(it);
  --size_;
  return r;
}

void EdfScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const auto& [key, r] : by_deadline_) fn(r);
}

}  // namespace csfc
