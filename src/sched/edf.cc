#include "sched/edf.h"

namespace csfc {

void EdfScheduler::Enqueue(const Request& r, const DispatchContext&) {
  by_deadline_.emplace(std::make_pair(r.deadline, r.arrival), r);
  ++size_;
}

std::optional<Request> EdfScheduler::Dispatch(const DispatchContext&) {
  if (by_deadline_.empty()) return std::nullopt;
  auto it = by_deadline_.begin();
  Request r = it->second;
  by_deadline_.erase(it);
  --size_;
  return r;
}

void EdfScheduler::ForEachWaiting(
    const std::function<void(const Request&)>& fn) const {
  for (const auto& [key, r] : by_deadline_) fn(r);
}

}  // namespace csfc
