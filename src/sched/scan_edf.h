// SCAN-EDF (Reddy & Wyllie, ACM Multimedia '93): requests are served in
// deadline order; requests whose deadlines fall within the same batching
// window are served in SCAN order instead, recovering seek efficiency
// among equal-urgency requests. `deadline_granularity` controls the
// batching window (0 = exact-tie grouping only).

#ifndef CSFC_SCHED_SCAN_EDF_H_
#define CSFC_SCHED_SCAN_EDF_H_

#include <map>

#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

class ScanEdfScheduler final : public Scheduler {
 public:
  explicit ScanEdfScheduler(SimTime deadline_granularity = 0)
      : granularity_(deadline_granularity) {}

  std::string_view name() const override { return "scan-edf"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return size_; }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  SimTime Bucket(SimTime deadline) const {
    if (granularity_ <= 0) return deadline;
    return deadline / granularity_;
  }

  SimTime granularity_;
  // Outer key: deadline bucket; inner: cylinder-ordered requests.
  std::map<SimTime, std::multimap<Cylinder, Request>> buckets_;
  size_t size_ = 0;
};

}  // namespace csfc

#endif  // CSFC_SCHED_SCAN_EDF_H_
