// The elevator family: SCAN (sweep both directions, to the physical edge),
// LOOK (sweep both directions, reverse at the last pending request), C-SCAN
// and C-LOOK (serve in one direction only; jump back and sweep again).
// Classical seek-optimizing baselines (Denning 1967); C-SCAN is also the
// normalization base for Figure 10.

#ifndef CSFC_SCHED_SCAN_FAMILY_H_
#define CSFC_SCHED_SCAN_FAMILY_H_

#include <map>

#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

/// Which member of the elevator family.
enum class ScanVariant { kScan, kLook, kCScan, kCLook };

class ScanScheduler final : public Scheduler {
 public:
  /// `cylinders` is the disk size (needed by kScan to know the edges).
  ScanScheduler(ScanVariant variant, uint32_t cylinders);

  std::string_view name() const override;
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return size_; }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

  /// Current sweep direction (+1 toward higher cylinders). Exposed for
  /// tests.
  int direction() const { return direction_; }

 private:
  ScanVariant variant_;
  uint32_t cylinders_;
  int direction_ = +1;
  std::multimap<Cylinder, Request> by_cylinder_;
  size_t size_ = 0;
};

}  // namespace csfc

#endif  // CSFC_SCHED_SCAN_FAMILY_H_
