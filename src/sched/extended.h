// Section 4.3 (Extensibility): the Cascaded-SFC stages bolted onto
// existing schedulers.
//
//  * SfcDdsScheduler — DDS (Kamel et al., ICDE 2000) handles one priority
//    type; entering the multi-priority vector into SFC1 and using the
//    curve position as the request's absolute priority extends it to any
//    number of QoS dimensions, exactly as the paper proposes.
//
//  * SfcBucketScheduler — BUCKET (Haritsa et al.) ignores the arm
//    position; taking BUCKET's (value-bucket, deadline) order as the
//    priority-deadline axis of an SFC3 stage adds disk-utilization
//    awareness: each bucket is served in cylinder sweeps instead of pure
//    EDF order.

#ifndef CSFC_SCHED_EXTENDED_H_
#define CSFC_SCHED_EXTENDED_H_

#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "disk/disk_model.h"
#include "sched/dds.h"
#include "common/annotations.h"
#include "sched/scheduler.h"
#include "sfc/curve.h"

namespace csfc {

/// DDS extended with an SFC1 stage: the request's multi-dimensional
/// priority vector is mapped to a single absolute priority level through a
/// space-filling curve, and the underlying DDS demotes victims by that
/// level.
class SfcDdsScheduler final : public Scheduler {
 public:
  /// `sfc1` is a registry curve name over (dims x bits); `disk` must
  /// outlive the scheduler.
  static Result<std::unique_ptr<SfcDdsScheduler>> Create(
      const DiskModel* disk, std::string_view sfc1, uint32_t dims,
      uint32_t bits);

  std::string_view name() const override { return "sfc-dds"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return inner_.queue_size(); }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

  /// The absolute priority level SFC1 assigns to `r` (exposed for tests).
  PriorityLevel AbsolutePriority(const Request& r) const;

 private:
  SfcDdsScheduler(const DiskModel* disk, CurvePtr curve);

  CurvePtr curve_;
  DdsScheduler inner_;
  // Original priority vectors, keyed by request id, so dispatched
  // requests leave with their caller-visible priorities intact.
  std::map<RequestId, PriorityVec> originals_;
};

/// BUCKET extended with an SFC3 stage: buckets are served highest-value
/// first as before, but within a bucket the requests whose deadlines fall
/// in the same urgency band are served in a cylinder sweep instead of pure
/// deadline order.
class SfcBucketScheduler final : public Scheduler {
 public:
  /// `levels` value levels grouped into `buckets`; deadlines inside a
  /// bucket are banded at `urgency_band` granularity (a SCAN-EDF-style
  /// trade; 0 = exact deadlines, degenerating to plain BUCKET).
  SfcBucketScheduler(uint32_t levels, uint32_t buckets,
                     SimTime urgency_band);

  std::string_view name() const override { return "sfc-bucket"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return size_; }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  uint32_t BucketOf(PriorityLevel value_level) const;
  SimTime Band(SimTime deadline) const;

  uint32_t levels_;
  uint32_t buckets_;
  SimTime urgency_band_;
  // bucket -> urgency band -> cylinder-ordered requests.
  std::vector<std::map<SimTime, std::multimap<Cylinder, Request>>> queues_;
  size_t size_ = 0;
};

}  // namespace csfc

#endif  // CSFC_SCHED_EXTENDED_H_
