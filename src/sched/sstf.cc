#include "sched/sstf.h"

#include <utility>

namespace csfc {

void SstfScheduler::Enqueue(Request r, const DispatchContext&) {
  by_cylinder_.emplace(r.cylinder, std::move(r));
  ++size_;
}

std::optional<Request> SstfScheduler::Dispatch(const DispatchContext& ctx) {
  if (by_cylinder_.empty()) return std::nullopt;
  // Candidates: first at/above the head, and last below it.
  auto above = by_cylinder_.lower_bound(ctx.head);
  auto chosen = by_cylinder_.end();
  if (above != by_cylinder_.end()) chosen = above;
  if (above != by_cylinder_.begin()) {
    auto below = std::prev(above);
    if (chosen == by_cylinder_.end() ||
        ctx.head - below->first < chosen->first - ctx.head) {
      chosen = below;
    }
  }
  Request r = std::move(chosen->second);
  by_cylinder_.erase(chosen);
  --size_;
  return r;
}

void SstfScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const auto& [cyl, r] : by_cylinder_) fn(r);
}

}  // namespace csfc
