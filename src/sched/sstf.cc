#include "sched/sstf.h"

namespace csfc {

void SstfScheduler::Enqueue(const Request& r, const DispatchContext&) {
  by_cylinder_.emplace(r.cylinder, r);
  ++size_;
}

std::optional<Request> SstfScheduler::Dispatch(const DispatchContext& ctx) {
  if (by_cylinder_.empty()) return std::nullopt;
  // Candidates: first at/above the head, and last below it.
  auto above = by_cylinder_.lower_bound(ctx.head);
  auto chosen = by_cylinder_.end();
  if (above != by_cylinder_.end()) chosen = above;
  if (above != by_cylinder_.begin()) {
    auto below = std::prev(above);
    if (chosen == by_cylinder_.end() ||
        ctx.head - below->first < chosen->first - ctx.head) {
      chosen = below;
    }
  }
  Request r = chosen->second;
  by_cylinder_.erase(chosen);
  --size_;
  return r;
}

void SstfScheduler::ForEachWaiting(
    const std::function<void(const Request&)>& fn) const {
  for (const auto& [cyl, r] : by_cylinder_) fn(r);
}

}  // namespace csfc
