#include "sched/multi_queue.h"

#include <algorithm>
#include <utility>

namespace csfc {

MultiQueueScheduler::MultiQueueScheduler(uint32_t levels)
    : queues_(std::max(levels, 1u)) {}

void MultiQueueScheduler::Enqueue(Request r, const DispatchContext&) {
  const size_t level =
      std::min<size_t>(r.priority(0), queues_.size() - 1);
  queues_[level].emplace(r.cylinder, std::move(r));
  ++size_;
}

std::optional<Request> MultiQueueScheduler::Dispatch(
    const DispatchContext& ctx) {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    // Continue the upward sweep within this level; wrap to the lowest.
    auto it = queue.lower_bound(ctx.head);
    if (it == queue.end()) it = queue.begin();
    Request r = std::move(it->second);
    queue.erase(it);
    --size_;
    return r;
  }
  return std::nullopt;
}

void MultiQueueScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const auto& queue : queues_) {
    for (const auto& [cyl, r] : queue) fn(r);
  }
}

}  // namespace csfc
