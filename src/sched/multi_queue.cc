#include "sched/multi_queue.h"

#include <algorithm>

namespace csfc {

MultiQueueScheduler::MultiQueueScheduler(uint32_t levels)
    : queues_(std::max(levels, 1u)) {}

void MultiQueueScheduler::Enqueue(const Request& r, const DispatchContext&) {
  const size_t level =
      std::min<size_t>(r.priority(0), queues_.size() - 1);
  queues_[level].emplace(r.cylinder, r);
  ++size_;
}

std::optional<Request> MultiQueueScheduler::Dispatch(
    const DispatchContext& ctx) {
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    // Continue the upward sweep within this level; wrap to the lowest.
    auto it = queue.lower_bound(ctx.head);
    if (it == queue.end()) it = queue.begin();
    Request r = it->second;
    queue.erase(it);
    --size_;
    return r;
  }
  return std::nullopt;
}

void MultiQueueScheduler::ForEachWaiting(
    const std::function<void(const Request&)>& fn) const {
  for (const auto& queue : queues_) {
    for (const auto& [cyl, r] : queue) fn(r);
  }
}

}  // namespace csfc
