#include "sched/scan_family.h"

#include <utility>

namespace csfc {

ScanScheduler::ScanScheduler(ScanVariant variant, uint32_t cylinders)
    : variant_(variant), cylinders_(cylinders) {}

std::string_view ScanScheduler::name() const {
  switch (variant_) {
    case ScanVariant::kScan:
      return "scan";
    case ScanVariant::kLook:
      return "look";
    case ScanVariant::kCScan:
      return "cscan";
    case ScanVariant::kCLook:
      return "clook";
  }
  return "scan?";
}

void ScanScheduler::Enqueue(Request r, const DispatchContext&) {
  by_cylinder_.emplace(r.cylinder, std::move(r));
  ++size_;
}

std::optional<Request> ScanScheduler::Dispatch(const DispatchContext& ctx) {
  if (by_cylinder_.empty()) return std::nullopt;
  auto take = [&](auto it) {
    Request r = std::move(it->second);
    by_cylinder_.erase(it);
    --size_;
    return r;
  };

  if (variant_ == ScanVariant::kCScan || variant_ == ScanVariant::kCLook) {
    // One-directional sweep upward; wrap to the lowest pending request.
    auto it = by_cylinder_.lower_bound(ctx.head);
    if (it == by_cylinder_.end()) it = by_cylinder_.begin();
    return take(it);
  }

  // SCAN / LOOK: serve the next request in the current direction; reverse
  // when none remain that way.
  if (direction_ > 0) {
    auto it = by_cylinder_.lower_bound(ctx.head);
    if (it != by_cylinder_.end()) return take(it);
    direction_ = -1;
  } else {
    auto it = by_cylinder_.upper_bound(ctx.head);
    if (it != by_cylinder_.begin()) return take(std::prev(it));
    direction_ = +1;
  }
  // Direction reversed; serve in the new direction (queue is nonempty).
  if (direction_ > 0) {
    return take(by_cylinder_.lower_bound(ctx.head));
  }
  auto it = by_cylinder_.upper_bound(ctx.head);
  return take(std::prev(it));
}

void ScanScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const auto& [cyl, r] : by_cylinder_) fn(r);
}

}  // namespace csfc
