// DDS — the deadline-driven scheduler of Kamel, Niranjan & Ghandeharizadeh
// (ICDE 2000), the algorithm running in the PanaViss server this paper
// builds on. An arriving request is inserted into the service plan in SCAN
// order; if the insertion pushes any pending deadline past feasibility
// (checked with service-time estimates from the disk model), the
// lowest-priority request in the plan is demoted to the tail — one victim
// per arrival, as the paper describes.
//
// Dimension 0 of the priority vector is the request priority (level 0 =
// most important, demoted last).

#ifndef CSFC_SCHED_DDS_H_
#define CSFC_SCHED_DDS_H_

#include <vector>

#include "disk/disk_model.h"
#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

class DdsScheduler final : public Scheduler {
 public:
  /// `disk` must outlive the scheduler.
  explicit DdsScheduler(const DiskModel* disk) : disk_(disk) {}

  std::string_view name() const override { return "dds"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return plan_.size(); }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  // C-SCAN position key of a cylinder relative to the head: distance of
  // the upward sweep (with wraparound).
  uint64_t ScanKey(Cylinder cyl, Cylinder head) const;

  // True iff serving plan_ in order from `ctx` meets every deadline
  // (estimated seek + expected latency + transfer per step).
  bool PlanFeasible(const DispatchContext& ctx) const;

  const DiskModel* disk_;
  std::vector<Request> plan_;  // service order; front is served next
};

}  // namespace csfc

#endif  // CSFC_SCHED_DDS_H_
