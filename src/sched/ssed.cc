#include "sched/ssed.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace csfc {

SsedScheduler::SsedScheduler(SsedVariant variant, uint32_t cylinders,
                             double alpha)
    : variant_(variant), cylinders_(cylinders),
      alpha_(std::clamp(alpha, 0.0, 1.0)) {}

void SsedScheduler::Enqueue(Request r, const DispatchContext&) {
  queue_.push_back(std::move(r));
}

std::optional<Request> SsedScheduler::Dispatch(const DispatchContext& ctx) {
  if (queue_.empty()) return std::nullopt;

  // Urgency normalization inputs. Both scratch vectors are fully
  // overwritten below before any element is read, so reusing them across
  // dispatches is safe.
  std::vector<size_t>& order = order_scratch_;
  order.resize(queue_.size());  // csfc:alloc-ok(scoring scratch reused across dispatches)
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  SimTime min_dl = kNoDeadline;
  SimTime max_dl = 0;
  if (variant_ == SsedVariant::kOrdering) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return queue_[a].deadline < queue_[b].deadline;
    });
  } else {
    for (const Request& r : queue_) {
      min_dl = std::min(min_dl, r.deadline);
      if (r.has_deadline()) max_dl = std::max(max_dl, r.deadline);
    }
  }
  std::vector<double>& urgency = urgency_scratch_;
  urgency.resize(queue_.size());  // csfc:alloc-ok(scoring scratch reused across dispatches)
  if (variant_ == SsedVariant::kOrdering) {
    for (size_t rank = 0; rank < order.size(); ++rank) {
      urgency[order[rank]] =
          order.size() > 1
              ? static_cast<double>(rank) / static_cast<double>(order.size() - 1)
              : 0.0;
    }
  } else {
    const double span =
        max_dl > min_dl ? static_cast<double>(max_dl - min_dl) : 1.0;
    for (size_t i = 0; i < queue_.size(); ++i) {
      urgency[i] = queue_[i].has_deadline()
                       ? static_cast<double>(queue_[i].deadline - min_dl) / span
                       : 1.0;
    }
  }

  size_t best = 0;
  double best_score = 0.0;
  for (size_t i = 0; i < queue_.size(); ++i) {
    const double dist = std::abs(static_cast<double>(queue_[i].cylinder) -
                                 static_cast<double>(ctx.head));
    const double seek = dist / static_cast<double>(cylinders_ - 1);
    const double score = alpha_ * urgency[i] + (1.0 - alpha_) * seek;
    if (i == 0 || score < best_score) {
      best = i;
      best_score = score;
    }
  }
  Request r = std::move(queue_[best]);
  queue_.erase(queue_.begin() + static_cast<ptrdiff_t>(best));
  return r;
}

void SsedScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const Request& r : queue_) fn(r);
}

}  // namespace csfc
