// SSEDO / SSEDV (Chen, Stankovic, Kurose, Towsley — Real-Time Systems '91):
// "Shortest Seek and Earliest Deadline by Ordering / by Value". Both blend
// urgency with arm proximity; a request with a later deadline can win if it
// sits very close to the arm.
//
//   SSEDO: urgency = the request's rank in deadline order (ordinal).
//   SSEDV: urgency = the request's time-to-deadline (value).
//
// score = alpha * normalized_urgency + (1 - alpha) * normalized_seek.
// The request with the lowest score is served. alpha = 1 degenerates to
// EDF; alpha = 0 to SSTF.

#ifndef CSFC_SCHED_SSED_H_
#define CSFC_SCHED_SSED_H_

#include <vector>

#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

/// Urgency flavor: by deadline rank (SSEDO) or by deadline value (SSEDV).
enum class SsedVariant { kOrdering, kValue };

class SsedScheduler final : public Scheduler {
 public:
  /// `cylinders` normalizes seek distances; `alpha` in [0,1] weighs urgency
  /// against proximity (the papers' W parameter).
  SsedScheduler(SsedVariant variant, uint32_t cylinders, double alpha = 0.8);

  std::string_view name() const override {
    return variant_ == SsedVariant::kOrdering ? "ssedo" : "ssedv";
  }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return queue_.size(); }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  SsedVariant variant_;
  uint32_t cylinders_;
  double alpha_;
  std::vector<Request> queue_;  // unsorted; scored at dispatch
  /// Dispatch-time scoring scratch (deadline ranks and per-request
  /// urgency), reused across dispatches so scoring settles to zero
  /// allocations at steady queue depth.
  std::vector<size_t> order_scratch_;
  std::vector<double> urgency_scratch_;
};

}  // namespace csfc

#endif  // CSFC_SCHED_SSED_H_
