// Earliest Deadline First (Liu & Layland): serves the pending request with
// the smallest deadline; relaxed-deadline requests sort last (by arrival).
// Minimizes deadline losses under light load but ignores the arm position,
// destroying disk utilization — the trade-off SFC2/SFC3 of the
// Cascaded-SFC scheduler navigates.

#ifndef CSFC_SCHED_EDF_H_
#define CSFC_SCHED_EDF_H_

#include <map>

#include "common/annotations.h"
#include "sched/scheduler.h"

namespace csfc {

class EdfScheduler final : public Scheduler {
 public:
  std::string_view name() const override { return "edf"; }
  void Enqueue(Request r, const DispatchContext& ctx) override;
  CSFC_HOT CSFC_DETERMINISTIC
  std::optional<Request> Dispatch(const DispatchContext& ctx) override;
  size_t queue_size() const override { return size_; }
  void ForEachWaiting(FunctionRef<void(const Request&)> fn) const override;

 private:
  // (deadline, arrival) keyed; FIFO among exact ties via multimap order.
  std::multimap<std::pair<SimTime, SimTime>, Request> by_deadline_;
  size_t size_ = 0;
};

}  // namespace csfc

#endif  // CSFC_SCHED_EDF_H_
