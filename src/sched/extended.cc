#include "sched/extended.h"

#include <algorithm>
#include <utility>

#include "sfc/registry.h"

namespace csfc {

Result<std::unique_ptr<SfcDdsScheduler>> SfcDdsScheduler::Create(
    const DiskModel* disk, std::string_view sfc1, uint32_t dims,
    uint32_t bits) {
  if (disk == nullptr) {
    return Status::InvalidArgument("SfcDdsScheduler needs a disk model");
  }
  Result<CurvePtr> curve = MakeCurve(sfc1, GridSpec{.dims = dims, .bits = bits});
  if (!curve.ok()) return curve.status();
  return std::unique_ptr<SfcDdsScheduler>(
      new SfcDdsScheduler(disk, std::move(*curve)));
}

SfcDdsScheduler::SfcDdsScheduler(const DiskModel* disk, CurvePtr curve)
    : curve_(std::move(curve)), inner_(disk) {}

PriorityLevel SfcDdsScheduler::AbsolutePriority(const Request& r) const {
  uint32_t point[16];
  const uint32_t levels = uint32_t{1} << curve_->bits();
  for (uint32_t k = 0; k < curve_->dims(); ++k) {
    point[k] = std::min<uint32_t>(r.priority(k), levels - 1);
  }
  const uint64_t index =
      curve_->Index(std::span<const uint32_t>(point, curve_->dims()));
  // Quantize the curve position into a 16-bit absolute level so the DDS
  // victim comparison stays a small integer.
  const uint32_t total_bits = curve_->dims() * curve_->bits();
  const uint32_t shift = total_bits > 16 ? total_bits - 16 : 0;
  return static_cast<PriorityLevel>(index >> shift);
}

void SfcDdsScheduler::Enqueue(Request r, const DispatchContext& ctx) {
  originals_[r.id] = r.priorities;
  r.priorities = PriorityVec{AbsolutePriority(r)};
  inner_.Enqueue(std::move(r), ctx);
}

std::optional<Request> SfcDdsScheduler::Dispatch(const DispatchContext& ctx) {
  std::optional<Request> r = inner_.Dispatch(ctx);
  if (!r) return r;
  auto it = originals_.find(r->id);
  if (it != originals_.end()) {
    r->priorities = it->second;
    originals_.erase(it);
  }
  return r;
}

void SfcDdsScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  inner_.ForEachWaiting([&](const Request& flattened) {
    auto it = originals_.find(flattened.id);
    if (it == originals_.end()) {
      fn(flattened);
      return;
    }
    Request restored = flattened;
    restored.priorities = it->second;
    fn(restored);
  });
}

SfcBucketScheduler::SfcBucketScheduler(uint32_t levels, uint32_t buckets,
                                       SimTime urgency_band)
    : levels_(std::max(levels, 1u)),
      buckets_(std::clamp(buckets, 1u, std::max(levels, 1u))),
      urgency_band_(urgency_band), queues_(buckets_) {}

uint32_t SfcBucketScheduler::BucketOf(PriorityLevel value_level) const {
  const uint32_t clamped = std::min(value_level, levels_ - 1);
  return clamped * buckets_ / levels_;
}

SimTime SfcBucketScheduler::Band(SimTime deadline) const {
  if (urgency_band_ <= 0) return deadline;
  return deadline / urgency_band_;
}

void SfcBucketScheduler::Enqueue(Request r, const DispatchContext&) {
  queues_[BucketOf(r.priority(0))][Band(r.deadline)].emplace(r.cylinder,
                                                              std::move(r));
  ++size_;
}

std::optional<Request> SfcBucketScheduler::Dispatch(
    const DispatchContext& ctx) {
  for (auto& bucket : queues_) {
    if (bucket.empty()) continue;
    auto& [band, group] = *bucket.begin();
    // SFC3 behavior inside the urgency band: continue the cylinder sweep.
    auto it = group.lower_bound(ctx.head);
    if (it == group.end()) it = group.begin();
    Request r = std::move(it->second);
    group.erase(it);
    if (group.empty()) bucket.erase(bucket.begin());
    --size_;
    return r;
  }
  return std::nullopt;
}

void SfcBucketScheduler::ForEachWaiting(FunctionRef<void(const Request&)> fn) const {
  for (const auto& bucket : queues_) {
    for (const auto& [band, group] : bucket) {
      for (const auto& [cyl, r] : group) fn(r);
    }
  }
}

}  // namespace csfc
