// Deterministic, seedable random number generation for simulations.
//
// Every experiment in csfc is driven by an explicit seed so that identical
// configurations reproduce identical traces bit-for-bit. The generator is
// xoshiro256++ (Blackman & Vigna), which is fast, has a 2^256-1 period, and
// passes BigCrush.

#ifndef CSFC_COMMON_RANDOM_H_
#define CSFC_COMMON_RANDOM_H_

#include <cstdint>
#include <limits>

namespace csfc {

/// xoshiro256++ pseudo-random generator. Satisfies the C++
/// UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator. Any seed (including 0) is valid; the state is
  /// expanded with splitmix64 so similar seeds yield unrelated streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64-bit value.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses Lemire's
  /// unbiased multiply-shift rejection method.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Exponentially distributed double with the given mean (> 0).
  double Exponential(double mean);

  /// Normally distributed double (Box-Muller; consumes two uniforms).
  double Normal(double mean, double stddev);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Forks an independent generator whose stream does not overlap usefully
  /// with this one (seeded from the parent's output).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Bounded Zipf sampler over {0, ..., n-1} with skew parameter theta in
/// (0, 1): value k is drawn with probability proportional to 1/(k+1)^theta
/// (value 0 is the hottest). Uses Gray et al.'s constant-time method after
/// an O(n) constant precomputation, so one instance should be reused
/// across samples.
class ZipfDistribution {
 public:
  /// `n` >= 1; `theta` in (0, 1).
  ZipfDistribution(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace csfc

#endif  // CSFC_COMMON_RANDOM_H_
