#include "common/status.h"

namespace csfc {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace csfc
