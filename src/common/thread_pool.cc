#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <utility>

namespace csfc {

unsigned ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = DefaultThreads();
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  while (in_flight_ != 0) all_done_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stopping_ && tasks_.empty()) task_ready_.Wait(mu_);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void ParallelFor(size_t n, unsigned num_threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads == 0) num_threads = ThreadPool::DefaultThreads();
  if (num_threads == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One claim-next-index task per worker: dynamic load balancing without
  // pushing n closures through the queue. Relaxed: the ticket only
  // partitions indices between workers; results are published by the
  // pool's mutex in Wait() (see tools/csfc_analyze/concurrency.toml).
  std::atomic<size_t> next{0};
  const size_t width = std::min<size_t>(num_threads, n);
  ThreadPool pool(static_cast<unsigned>(width));
  for (size_t w = 0; w < width; ++w) {
    pool.Submit([&next, n, &fn] {
      for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  pool.Wait();
}

}  // namespace csfc
