// Annotated mutex wrappers for Clang Thread Safety Analysis.
//
// std::mutex on libstdc++ carries no capability attributes, so locks taken
// through it are invisible to -Wthread-safety. These thin wrappers carry
// the attributes and cost nothing extra: Mutex is a std::mutex, MutexLock
// is a lock_guard, CondVar is a std::condition_variable_any waiting on the
// annotated Mutex directly. All concurrent code in the repo (ThreadPool,
// obs::LockedSink) locks through these so the discipline is checked at
// compile time; see DESIGN.md section 11 for the conventions.

#ifndef CSFC_COMMON_MUTEX_H_
#define CSFC_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/thread_annotations.h"

namespace csfc {

/// A std::mutex that the thread-safety analysis can see. Lock/Unlock are
/// the annotated entry points; the lowercase BasicLockable aliases exist
/// so CondVar (condition_variable_any) can wait on it directly.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  // BasicLockable interface for std::condition_variable_any. The analysis
  // treats these as the same capability as Lock/Unlock.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock. The analysis knows the capability is held for exactly the
/// scope of this object.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to an annotated Mutex. Wait atomically
/// releases and reacquires the mutex internally; REQUIRES expresses the
/// caller-visible contract (held on entry, held again on return).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks; `mu` is held again on return.
  /// Spurious wakeups happen: callers re-test their condition in a while
  /// loop (a loop, not a predicate lambda — lambda bodies are analyzed
  /// without the enclosing capability context).
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Timed wait: like Wait but returns after at most `timeout_us`
  /// microseconds even without a notification. Same spurious-wakeup
  /// contract — callers re-test in a loop. Used by the service pump to
  /// sleep until the next modeled completion while staying responsive to
  /// Offer/Stop notifications.
  void WaitFor(Mutex& mu, int64_t timeout_us) REQUIRES(mu) {
    cv_.wait_for(mu, std::chrono::microseconds(timeout_us));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace csfc

#endif  // CSFC_COMMON_MUTEX_H_
