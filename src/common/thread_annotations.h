// Clang Thread Safety Analysis attribute macros.
//
// These expand to Clang capability attributes when the compiler supports
// them (clang with -Wthread-safety) and to nothing elsewhere (gcc), so
// annotated headers stay portable. The analysis statically proves the
// locking discipline the annotations declare: a GUARDED_BY(mu) member
// touched without mu held is a compile error, not a TSan report.
//
// Annotate with the csfc::Mutex / csfc::MutexLock / csfc::CondVar wrappers
// from common/mutex.h — libstdc++'s std::mutex carries no capability
// attributes, so the analysis only sees locks taken through annotated
// types. Conventions are documented in DESIGN.md section 11.

#ifndef CSFC_COMMON_THREAD_ANNOTATIONS_H_
#define CSFC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define CSFC_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define CSFC_THREAD_ANNOTATION__(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex").
#define CAPABILITY(x) CSFC_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define SCOPED_CAPABILITY CSFC_THREAD_ANNOTATION__(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define GUARDED_BY(x) CSFC_THREAD_ANNOTATION__(guarded_by(x))

/// Declares that the pointed-to data is protected by the given capability
/// (the pointer itself is not).
#define PT_GUARDED_BY(x) CSFC_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares that the calling thread must hold the given capabilities.
#define REQUIRES(...) \
  CSFC_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// As REQUIRES, for capabilities held shared (read locks).
#define REQUIRES_SHARED(...) \
  CSFC_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  CSFC_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function releases the capability (must be held on entry).
#define RELEASE(...) \
  CSFC_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The caller must NOT hold the given capabilities (deadlock guard for
/// public entry points of a class that locks internally).
#define EXCLUDES(...) CSFC_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) CSFC_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: turns the analysis off for one function body. Use only
/// for code the analysis cannot model (cf. CondVar::Wait); never to
/// silence a genuine discipline violation.
#define NO_THREAD_SAFETY_ANALYSIS \
  CSFC_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // CSFC_COMMON_THREAD_ANNOTATIONS_H_
