// Streaming statistics helpers used by the metrics layer: a running
// mean/variance accumulator (Welford) and a fixed-bucket histogram.

#ifndef CSFC_COMMON_HISTOGRAM_H_
#define CSFC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace csfc {

/// Online mean / variance / min / max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (division by n).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStat& other);

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Equal-width histogram over [lo, hi) with out-of-range values clamped to
/// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(size_t i) const;
  uint64_t total() const { return total_; }

  /// Value below which `q` (in [0,1]) of the mass lies, interpolated within
  /// the bucket. Returns lo() for an empty histogram.
  double Quantile(double q) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Multi-line ASCII rendering, for debugging / example output.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Log-bucketed histogram for nonnegative integer samples spanning many
/// decades (enqueue-to-dispatch latencies in microseconds: the interesting
/// range runs 1us .. minutes). HDR-style layout: each power-of-two range
/// is split into `kSubBuckets` equal sub-buckets, giving a bounded
/// relative error of 1/kSubBuckets at every magnitude — accurate enough
/// for p999 without the O(range) memory of a linear histogram. Add is
/// branch-light O(1); Quantile interpolates within the landing bucket.
class LogHistogram {
 public:
  /// Sub-buckets per power-of-two range: 1/32 ~ 3% worst-case relative
  /// quantile error.
  static constexpr uint32_t kSubBuckets = 32;
  /// Powers of two covered (2^0 .. 2^kRanges us ~ 1.2 hours in us).
  static constexpr uint32_t kRanges = 32;

  LogHistogram();

  /// Records one sample (negative samples clamp to 0, oversized samples
  /// clamp to the top bucket).
  void Add(int64_t x);

  uint64_t total() const { return total_; }
  int64_t max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const {
    return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
  }

  /// Value below which a `q` (in [0,1]) fraction of the samples lies,
  /// interpolated within the landing bucket. 0 when empty.
  double Quantile(double q) const;

  /// Merges another histogram into this one (same fixed geometry).
  void Merge(const LogHistogram& other);

  /// Resets to empty (window rollover in the SLO sinks).
  void Reset();

 private:
  static size_t BucketIndex(int64_t x);
  /// Inclusive lower edge and width of bucket i, in sample units.
  static double BucketLo(size_t i);
  static double BucketWidth(size_t i);

  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace csfc

#endif  // CSFC_COMMON_HISTOGRAM_H_
