// Streaming statistics helpers used by the metrics layer: a running
// mean/variance accumulator (Welford) and a fixed-bucket histogram.

#ifndef CSFC_COMMON_HISTOGRAM_H_
#define CSFC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace csfc {

/// Online mean / variance / min / max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance (division by n).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel Welford merge).
  void Merge(const RunningStat& other);

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Equal-width histogram over [lo, hi) with out-of-range values clamped to
/// the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);

  size_t num_buckets() const { return counts_.size(); }
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  /// Inclusive lower edge of bucket i.
  double bucket_lo(size_t i) const;
  uint64_t total() const { return total_; }

  /// Value below which `q` (in [0,1]) of the mass lies, interpolated within
  /// the bucket. Returns lo() for an empty histogram.
  double Quantile(double q) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Multi-line ASCII rendering, for debugging / example output.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace csfc

#endif  // CSFC_COMMON_HISTOGRAM_H_
