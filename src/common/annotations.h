// Contract annotations, checked by tools/csfc_analyze.
//
// CSFC_HOT marks a function as part of the scheduler's per-request hot
// path: the dispatch/rekey/characterize loop whose allocation behavior
// the paper's bounds depend on (a malloc inside Pop() turns the bounded
// priority-inversion argument into "bounded, plus whatever the allocator
// does"). csfc_analyze verifies that no allocation — `new`, malloc-family
// calls, `std::function` construction, node-based containers, or
// unsanctioned container growth — is reachable from a CSFC_HOT function,
// and that no allocating call sits inside a REQUIRES-annotated lock
// region reachable from one.
//
// Amortized growth that provably settles (slot pools, heap storage,
// scratch buffers reused across calls) is sanctioned explicitly: put
//
//   // csfc:alloc-ok(<short reason>)
//
// on the allocating line. The analyzer skips marked lines; the marker
// keeps every sanctioned allocation visible and greppable rather than
// silently grandfathered.
//
// CSFC_DETERMINISTIC marks a function whose output must be a pure
// function of its inputs and recorded seeds: the simulator run loop,
// ServiceServer::RunVirtual, the characterization kernels, every
// Dispatch method, the SFC encode/decode maps, and the RunParallel
// result merge. Every bit-identity pin in this repo (SIMD vs scalar,
// calendar vs flat, RunVirtual vs offline sim, twice-run sweeps, the
// csfc_golden cross-build ledger) rides on these functions, so
// csfc_analyze's determinism-taint family verifies their bodies touch
// no wall clock outside the common/clock seam, no std::random_device /
// time() / unseeded engine, no environment read outside the manifested
// allowlist, no pointer-to-integer cast (address-dependent ordering),
// and no thread-id-dependent branching. Unordered-container use inside
// one needs an explicit marker:
//
//   // csfc:unordered-ok(<why iteration order cannot reach output>)
//
// and a libm transcendental (log/exp/pow/sin/cos/...) on a deterministic
// path needs
//
//   // csfc:libm-ok(<why the call is reproducible across builds>)
//
// since those functions are correctly-rounded nowhere and pinned only
// per libm build (the golden ledger is what actually pins the values).
//
// Under clang the macros expand to `annotate` attributes the AST engine
// reads directly; other compilers see nothing (the regex fallback engine
// matches the macro textually, so annotations work under gcc too).

#ifndef CSFC_COMMON_ANNOTATIONS_H_
#define CSFC_COMMON_ANNOTATIONS_H_

#if defined(__clang__)
#define CSFC_HOT __attribute__((annotate("csfc_hot")))
#define CSFC_DETERMINISTIC __attribute__((annotate("csfc_deterministic")))
#else
#define CSFC_HOT  // no-op: the analyzer's regex engine matches the token
#define CSFC_DETERMINISTIC  // no-op: matched textually by the regex engine
#endif

#endif  // CSFC_COMMON_ANNOTATIONS_H_
