// Hot-path contract annotations, checked by tools/csfc_analyze.
//
// CSFC_HOT marks a function as part of the scheduler's per-request hot
// path: the dispatch/rekey/characterize loop whose allocation behavior
// the paper's bounds depend on (a malloc inside Pop() turns the bounded
// priority-inversion argument into "bounded, plus whatever the allocator
// does"). csfc_analyze verifies that no allocation — `new`, malloc-family
// calls, `std::function` construction, node-based containers, or
// unsanctioned container growth — is reachable from a CSFC_HOT function,
// and that no allocating call sits inside a REQUIRES-annotated lock
// region reachable from one.
//
// Amortized growth that provably settles (slot pools, heap storage,
// scratch buffers reused across calls) is sanctioned explicitly: put
//
//   // csfc:alloc-ok(<short reason>)
//
// on the allocating line. The analyzer skips marked lines; the marker
// keeps every sanctioned allocation visible and greppable rather than
// silently grandfathered.
//
// Under clang the macro expands to an `annotate` attribute the AST engine
// reads directly; other compilers see nothing (the regex fallback engine
// matches the macro textually, so annotations work under gcc too).

#ifndef CSFC_COMMON_ANNOTATIONS_H_
#define CSFC_COMMON_ANNOTATIONS_H_

#if defined(__clang__)
#define CSFC_HOT __attribute__((annotate("csfc_hot")))
#else
#define CSFC_HOT  // no-op: the analyzer's regex engine matches the token
#endif

#endif  // CSFC_COMMON_ANNOTATIONS_H_
