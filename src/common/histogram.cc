#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace csfc {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t n = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ = n;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::Add(double x) {
  size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar =
        peak == 0 ? 0
                  : static_cast<size_t>(static_cast<double>(counts_[i]) /
                                        static_cast<double>(peak) *
                                        static_cast<double>(max_width));
    std::snprintf(line, sizeof(line), "[%10.3f) %8llu |", bucket_lo(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

LogHistogram::LogHistogram()
    : counts_(static_cast<size_t>(kRanges) * kSubBuckets, 0) {}

size_t LogHistogram::BucketIndex(int64_t x) {
  if (x < static_cast<int64_t>(kSubBuckets)) {
    // The first two ranges are the linear head: values below kSubBuckets
    // map 1:1 so small latencies are exact.
    return static_cast<size_t>(x < 0 ? 0 : x);
  }
  const uint64_t v = static_cast<uint64_t>(x);
  // Position of the leading bit relative to the sub-bucket resolution.
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - 5;  // 2^5 == kSubBuckets
  const uint64_t sub = v >> shift;  // in [kSubBuckets, 2*kSubBuckets)
  // `sub` carries the +kSubBuckets offset, so consecutive shifts tile the
  // index space contiguously: shift 0 covers [32, 64), shift 1 [64, 96)...
  const size_t index =
      static_cast<size_t>(shift) * kSubBuckets + static_cast<size_t>(sub);
  return std::min<size_t>(index,
                          static_cast<size_t>(kRanges) * kSubBuckets - 1);
}

double LogHistogram::BucketLo(size_t i) {
  const size_t range = i / kSubBuckets;
  const size_t sub = i % kSubBuckets;
  if (range == 0) return static_cast<double>(sub);
  const double unit = std::ldexp(1.0, static_cast<int>(range) - 1);
  return unit * static_cast<double>(kSubBuckets + sub);
}

double LogHistogram::BucketWidth(size_t i) {
  const size_t range = i / kSubBuckets;
  return range == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(range) - 1);
}

void LogHistogram::Add(int64_t x) {
  if (x < 0) x = 0;
  ++counts_[BucketIndex(x)];
  ++total_;
  sum_ += static_cast<double>(x);
  max_ = std::max(max_, x);
}

double LogHistogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      const double v = BucketLo(i) + frac * BucketWidth(i);
      // Never report beyond the observed maximum (the top landing bucket
      // is usually only part-filled).
      return std::min(v, static_cast<double>(max_));
    }
    cum = next;
  }
  return static_cast<double>(max_);
}

void LogHistogram::Merge(const LogHistogram& other) {
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void LogHistogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

}  // namespace csfc
