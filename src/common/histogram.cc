#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace csfc {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ == 0) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t n = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(n);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ = n;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::Add(double x) {
  size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<size_t>((x - lo_) / width_);
    i = std::min(i, counts_.size() - 1);
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToAscii(size_t max_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar =
        peak == 0 ? 0
                  : static_cast<size_t>(static_cast<double>(counts_[i]) /
                                        static_cast<double>(peak) *
                                        static_cast<double>(max_width));
    std::snprintf(line, sizeof(line), "[%10.3f) %8llu |", bucket_lo(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace csfc
