// FunctionRef: a non-owning, non-allocating reference to a callable —
// the hot-path replacement for `const std::function&` parameters.
//
// std::function is the wrong tool for "call me back during this call":
// constructing one from a capturing lambda heap-allocates (beyond the
// small-buffer size) and every invocation goes through two indirections.
// The dispatcher's rekey/visitation hooks and the scheduler's
// ForEachWaiting are invoked once per pending request on every dispatch,
// so those costs land on the simulator's innermost loop.
//
// FunctionRef is two words (object pointer + trampoline pointer), is
// trivially copyable, and never allocates. Like std::string_view it does
// not extend the callable's lifetime: use it only for callbacks consumed
// before the call returns (every use in this codebase), never stored.

#ifndef CSFC_COMMON_FUNCTION_REF_H_
#define CSFC_COMMON_FUNCTION_REF_H_

#include <memory>
#include <type_traits>
#include <utility>

namespace csfc {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Binds to any callable invocable as R(Args...). Intentionally
  /// implicit so call sites keep passing lambdas directly.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return static_cast<R>((*static_cast<std::remove_reference_t<F>*>(
              obj))(std::forward<Args>(args)...));
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace csfc

#endif  // CSFC_COMMON_FUNCTION_REF_H_
