// Portable SIMD wrapper for the hot-path kernels.
//
// Three backends expose one fixed-width lane model — kWidth f64 lanes,
// kWidth i64 lanes, and kWidth i32 lanes packed into a half-width
// register — behind an identical static-op interface:
//
//   * ScalarBackend  (4 lanes)  plain arrays + loops; compiles anywhere
//     and doubles as the reference semantics for the wrapper's own tests.
//   * Sse2Backend    (2 lanes)  the x86-64 baseline ISA; no compile flag
//     needed, so any translation unit may instantiate it.
//   * Avx2Backend    (4 lanes)  only defined when the including TU is
//     compiled with -mavx2 (see src/CMakeLists.txt: the AVX2 kernel
//     lives in its own TU with per-file flags, never behind a runtime
//     branch in generic code).
//
// The op set is exactly what the fused characterization kernel and the
// SFC encode loops need; every op is elementwise and IEEE-exact, so a
// kernel written against this interface is bit-identical across
// backends by construction (property-tested in tests/).
//
// Semantics pinned by the kernels (do not "fix" these):
//   * MinF64(a, b) == a < b ? a : b (the MINPD rule: second operand on
//     equal; callers guarantee no NaNs and no +-0 ambiguity).
//   * U64ToF64 is the correctly-rounded u64 -> f64 conversion, matching
//     static_cast<double>(uint64_t) on every input (the AVX2/SSE2
//     implementations use the split-halves exponent trick).
//   * F64ToI32Trunc truncates toward zero; defined for |x| < 2^31.
//   * Compares return all-ones/all-zero lane masks for AndMask/AndI32.
//
// Runtime dispatch: Level is what the CPU (or an operator override) says
// may run; DetectLevel() probes once and caches, CSFC_SIMD=
// {auto,scalar,sse2,avx2} (env, or SetOverride for --simd/tests)
// narrows it. Resolve() is clamped to DetectLevel(), so requesting avx2
// on an SSE2-only machine degrades safely.

#ifndef CSFC_COMMON_SIMD_H_
#define CSFC_COMMON_SIMD_H_

#include <bit>
#include <cstdint>
#include <string_view>

#if defined(__x86_64__) || defined(_M_X64)
#define CSFC_SIMD_X86 1
#include <emmintrin.h>  // SSE2
#if defined(__AVX2__)
#include <immintrin.h>
#endif
#else
#define CSFC_SIMD_X86 0
#endif

namespace csfc::simd {

/// An ISA tier the process can execute. Ordered: higher includes lower.
enum class Level : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// A dispatch request: a Level, or "pick the best the CPU has".
enum class Mode : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAuto = 3 };

/// Best Level the executing CPU supports. Probed once (cached).
Level DetectLevel();

/// Process-wide override, initialized from the CSFC_SIMD environment
/// variable on first use (invalid values warn once and read as kAuto).
Mode OverrideMode();

/// Replaces the process-wide override (tests, --simd flag). Pass kAuto
/// to defer to per-call requests again. Callers that probe temporarily
/// should save OverrideMode() first and restore it.
void SetOverride(Mode mode);

/// Resolves a dispatch request to an executable Level: the process
/// override wins over `requested`, kAuto means DetectLevel(), and the
/// result is clamped to DetectLevel().
Level Resolve(Mode requested);

/// Parses "auto" | "scalar" | "sse2" | "avx2". Returns false (and leaves
/// *out alone) on anything else.
bool ParseMode(std::string_view text, Mode* out);

const char* LevelName(Level level);
const char* ModeName(Mode mode);

// ---------------------------------------------------------------------------
// ScalarBackend: array emulation. The reference implementation of the op
// semantics, and the fallback the ISA-specific kernel TUs instantiate on
// non-x86 targets.
// ---------------------------------------------------------------------------

struct ScalarBackend {
  static constexpr int kWidth = 4;
  struct F64 {
    double v[kWidth];
  };
  struct I64 {
    int64_t v[kWidth];
  };
  struct I32 {
    int32_t v[kWidth];
  };

  static const char* Name() { return "scalar"; }

  static F64 LoadF64(const double* p) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = p[l];
    return r;
  }
  static void StoreF64(double* p, F64 x) {
    for (int l = 0; l < kWidth; ++l) p[l] = x.v[l];
  }
  static I64 LoadI64(const int64_t* p) {
    I64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = p[l];
    return r;
  }
  static I32 LoadI32(const int32_t* p) {
    I32 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = p[l];
    return r;
  }
  static void StoreI64(int64_t* p, I64 x) {
    for (int l = 0; l < kWidth; ++l) p[l] = x.v[l];
  }

  static F64 Set1F64(double x) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = x;
    return r;
  }
  static I64 Set1I64(int64_t x) {
    I64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = x;
    return r;
  }
  static I32 Set1I32(int32_t x) {
    I32 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = x;
    return r;
  }

  static F64 AddF64(F64 a, F64 b) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] + b.v[l];
    return r;
  }
  static F64 SubF64(F64 a, F64 b) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] - b.v[l];
    return r;
  }
  static F64 MulF64(F64 a, F64 b) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] * b.v[l];
    return r;
  }
  static F64 DivF64(F64 a, F64 b) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] / b.v[l];
    return r;
  }
  /// MINPD semantics: a < b ? a : b (second operand when equal).
  static F64 MinF64(F64 a, F64 b) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] < b.v[l] ? a.v[l] : b.v[l];
    return r;
  }
  /// Bitwise AND of a value with a lane mask (keeps lanes whose mask is
  /// all-ones, zeroes the rest — the branch-free "x if cond else +0.0").
  static F64 AndMaskF64(F64 x, I64 mask) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) {
      r.v[l] = std::bit_cast<double>(std::bit_cast<int64_t>(x.v[l]) & mask.v[l]);
    }
    return r;
  }

  static I64 SubI64(I64 a, I64 b) {
    I64 r;
    for (int l = 0; l < kWidth; ++l) {
      r.v[l] = static_cast<int64_t>(static_cast<uint64_t>(a.v[l]) -
                                    static_cast<uint64_t>(b.v[l]));
    }
    return r;
  }
  /// Signed 64-bit a > b, as an all-ones/all-zero lane mask.
  static I64 CmpGtI64(I64 a, I64 b) {
    I64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] > b.v[l] ? -1 : 0;
    return r;
  }
  static I64 AndI64(I64 a, I64 b) {
    I64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] & b.v[l];
    return r;
  }
  static I64 OrI64(I64 a, I64 b) {
    I64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] | b.v[l];
    return r;
  }
  static I64 XorI64(I64 a, I64 b) {
    I64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] ^ b.v[l];
    return r;
  }
  /// Logical shifts; `count` is shared by all lanes and must be < 64.
  static I64 ShlI64(I64 a, uint32_t count) {
    I64 r;
    for (int l = 0; l < kWidth; ++l) {
      r.v[l] = static_cast<int64_t>(static_cast<uint64_t>(a.v[l]) << count);
    }
    return r;
  }
  static I64 ShrI64(I64 a, uint32_t count) {
    I64 r;
    for (int l = 0; l < kWidth; ++l) {
      r.v[l] = static_cast<int64_t>(static_cast<uint64_t>(a.v[l]) >> count);
    }
    return r;
  }

  static I32 AddI32(I32 a, I32 b) {
    I32 r;
    for (int l = 0; l < kWidth; ++l) {
      r.v[l] = static_cast<int32_t>(static_cast<uint32_t>(a.v[l]) +
                                    static_cast<uint32_t>(b.v[l]));
    }
    return r;
  }
  static I32 SubI32(I32 a, I32 b) {
    I32 r;
    for (int l = 0; l < kWidth; ++l) {
      r.v[l] = static_cast<int32_t>(static_cast<uint32_t>(a.v[l]) -
                                    static_cast<uint32_t>(b.v[l]));
    }
    return r;
  }
  static I32 AndI32(I32 a, I32 b) {
    I32 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] & b.v[l];
    return r;
  }
  /// Signed 32-bit min (callers keep values in [0, 2^31)).
  static I32 MinI32(I32 a, I32 b) {
    I32 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = a.v[l] < b.v[l] ? a.v[l] : b.v[l];
    return r;
  }
  /// Unsigned 32-bit a < b, as an all-ones/all-zero lane mask.
  static I32 CmpLtU32(I32 a, I32 b) {
    I32 r;
    for (int l = 0; l < kWidth; ++l) {
      r.v[l] =
          static_cast<uint32_t>(a.v[l]) < static_cast<uint32_t>(b.v[l]) ? -1 : 0;
    }
    return r;
  }
  /// High 32 bits of the unsigned 32x32 -> 64 product.
  static I32 MulHiU32(I32 a, I32 b) {
    I32 r;
    for (int l = 0; l < kWidth; ++l) {
      const uint64_t p = static_cast<uint64_t>(static_cast<uint32_t>(a.v[l])) *
                         static_cast<uint64_t>(static_cast<uint32_t>(b.v[l]));
      r.v[l] = static_cast<int32_t>(static_cast<uint32_t>(p >> 32));
    }
    return r;
  }

  /// Correctly-rounded u64 -> f64 (lane bits reinterpreted as unsigned).
  static F64 U64ToF64(I64 x) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) {
      r.v[l] = static_cast<double>(static_cast<uint64_t>(x.v[l]));
    }
    return r;
  }
  /// Signed i32 -> f64 (exact; every i32 is representable).
  static F64 I32ToF64(I32 x) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = static_cast<double>(x.v[l]);
    return r;
  }
  /// Truncate toward zero; defined for |x| < 2^31.
  static I32 F64ToI32Trunc(F64 x) {
    I32 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = static_cast<int32_t>(x.v[l]);
    return r;
  }
  /// r[l] = base[idx[l]] (indices are non-negative i32).
  static F64 GatherF64(const double* base, I32 idx) {
    F64 r;
    for (int l = 0; l < kWidth; ++l) r.v[l] = base[idx.v[l]];
    return r;
  }
};

#if CSFC_SIMD_X86

namespace detail {

/// Bit pattern of 2^84 / 2^52 as doubles — the split-halves constants of
/// the exact u64 -> f64 conversion (high 32 bits land in the 2^84
/// mantissa, low 32 bits in the 2^52 mantissa; both ORs are carry-free
/// because each half is < 2^32 <= the 52-bit mantissa).
inline constexpr int64_t k2p84Bits = std::bit_cast<int64_t>(0x1.0p84);
inline constexpr int64_t k2p52Bits = std::bit_cast<int64_t>(0x1.0p52);
inline constexpr double k2p84Plus2p52 = 0x1.0p84 + 0x1.0p52;

/// SSE2 MulHiU32 over the low 4 i32 lanes of a 128-bit register: widen
/// even/odd dword pairs with PMULUDQ, then pick each product's high half.
inline __m128i MulHiU32Sse2(__m128i a, __m128i b) {
  const __m128i even = _mm_srli_epi64(_mm_mul_epu32(a, b), 32);
  const __m128i odd = _mm_srli_epi64(
      _mm_mul_epu32(_mm_srli_epi64(a, 32), _mm_srli_epi64(b, 32)), 32);
  return _mm_or_si128(even, _mm_slli_epi64(odd, 32));
}

/// Unsigned 32-bit a < b via the sign-bias trick (SSE2 only has signed
/// compares).
inline __m128i CmpLtU32Sse2(__m128i a, __m128i b) {
  const __m128i bias = _mm_set1_epi32(static_cast<int32_t>(0x80000000u));
  return _mm_cmpgt_epi32(_mm_xor_si128(b, bias), _mm_xor_si128(a, bias));
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Sse2Backend: 2 f64/i64 lanes; the i32 lanes ride in the low half of a
// 128-bit register (loads/stores touch exactly 8 bytes).
// ---------------------------------------------------------------------------

struct Sse2Backend {
  static constexpr int kWidth = 2;
  using F64 = __m128d;
  using I64 = __m128i;
  using I32 = __m128i;

  static const char* Name() { return "sse2"; }

  static F64 LoadF64(const double* p) { return _mm_loadu_pd(p); }
  static void StoreF64(double* p, F64 x) { _mm_storeu_pd(p, x); }
  static I64 LoadI64(const int64_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static I32 LoadI32(const int32_t* p) {
    return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  }
  static void StoreI64(int64_t* p, I64 x) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), x);
  }

  static F64 Set1F64(double x) { return _mm_set1_pd(x); }
  static I64 Set1I64(int64_t x) { return _mm_set1_epi64x(x); }
  static I32 Set1I32(int32_t x) { return _mm_set1_epi32(x); }

  static F64 AddF64(F64 a, F64 b) { return _mm_add_pd(a, b); }
  static F64 SubF64(F64 a, F64 b) { return _mm_sub_pd(a, b); }
  static F64 MulF64(F64 a, F64 b) { return _mm_mul_pd(a, b); }
  static F64 DivF64(F64 a, F64 b) { return _mm_div_pd(a, b); }
  static F64 MinF64(F64 a, F64 b) { return _mm_min_pd(a, b); }
  static F64 AndMaskF64(F64 x, I64 mask) {
    return _mm_and_pd(x, _mm_castsi128_pd(mask));
  }

  static I64 SubI64(I64 a, I64 b) { return _mm_sub_epi64(a, b); }
  /// Signed 64-bit compare without SSE4.2's PCMPGTQ: decide on the high
  /// dwords, and when those tie take the borrow of the low-half subtract;
  /// the sign of the merged dword is broadcast into the lane mask.
  static I64 CmpGtI64(I64 a, I64 b) {
    __m128i r = _mm_and_si128(_mm_cmpeq_epi32(a, b), _mm_sub_epi64(b, a));
    r = _mm_or_si128(r, _mm_cmpgt_epi32(a, b));
    return _mm_shuffle_epi32(_mm_srai_epi32(r, 31), _MM_SHUFFLE(3, 3, 1, 1));
  }
  static I64 AndI64(I64 a, I64 b) { return _mm_and_si128(a, b); }
  static I64 OrI64(I64 a, I64 b) { return _mm_or_si128(a, b); }
  static I64 XorI64(I64 a, I64 b) { return _mm_xor_si128(a, b); }
  static I64 ShlI64(I64 a, uint32_t count) {
    return _mm_slli_epi64(a, static_cast<int>(count));
  }
  static I64 ShrI64(I64 a, uint32_t count) {
    return _mm_srli_epi64(a, static_cast<int>(count));
  }

  static I32 AddI32(I32 a, I32 b) { return _mm_add_epi32(a, b); }
  static I32 SubI32(I32 a, I32 b) { return _mm_sub_epi32(a, b); }
  static I32 AndI32(I32 a, I32 b) { return _mm_and_si128(a, b); }
  static I32 MinI32(I32 a, I32 b) {
    const __m128i a_lt = _mm_cmplt_epi32(a, b);
    return _mm_or_si128(_mm_and_si128(a_lt, a), _mm_andnot_si128(a_lt, b));
  }
  static I32 CmpLtU32(I32 a, I32 b) { return detail::CmpLtU32Sse2(a, b); }
  static I32 MulHiU32(I32 a, I32 b) { return detail::MulHiU32Sse2(a, b); }

  static F64 U64ToF64(I64 x) {
    const __m128i hi = _mm_or_si128(_mm_srli_epi64(x, 32),
                                    _mm_set1_epi64x(detail::k2p84Bits));
    const __m128i lo =
        _mm_or_si128(_mm_and_si128(x, _mm_set1_epi64x(0xFFFFFFFFll)),
                     _mm_set1_epi64x(detail::k2p52Bits));
    const __m128d f = _mm_sub_pd(_mm_castsi128_pd(hi),
                                 _mm_set1_pd(detail::k2p84Plus2p52));
    return _mm_add_pd(f, _mm_castsi128_pd(lo));
  }
  static F64 I32ToF64(I32 x) { return _mm_cvtepi32_pd(x); }
  static I32 F64ToI32Trunc(F64 x) { return _mm_cvttpd_epi32(x); }
  static F64 GatherF64(const double* base, I32 idx) {
    const int i0 = _mm_cvtsi128_si32(idx);
    const int i1 = _mm_cvtsi128_si32(_mm_shuffle_epi32(idx, 0x55));
    return _mm_set_pd(base[i1], base[i0]);
  }
};

#if defined(__AVX2__)

// ---------------------------------------------------------------------------
// Avx2Backend: 4 f64/i64 lanes; the i32 lanes are a full __m128i. Only
// defined in TUs compiled with -mavx2.
// ---------------------------------------------------------------------------

struct Avx2Backend {
  static constexpr int kWidth = 4;
  using F64 = __m256d;
  using I64 = __m256i;
  using I32 = __m128i;

  static const char* Name() { return "avx2"; }

  static F64 LoadF64(const double* p) { return _mm256_loadu_pd(p); }
  static void StoreF64(double* p, F64 x) { _mm256_storeu_pd(p, x); }
  static I64 LoadI64(const int64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static I32 LoadI32(const int32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void StoreI64(int64_t* p, I64 x) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), x);
  }

  static F64 Set1F64(double x) { return _mm256_set1_pd(x); }
  static I64 Set1I64(int64_t x) { return _mm256_set1_epi64x(x); }
  static I32 Set1I32(int32_t x) { return _mm_set1_epi32(x); }

  static F64 AddF64(F64 a, F64 b) { return _mm256_add_pd(a, b); }
  static F64 SubF64(F64 a, F64 b) { return _mm256_sub_pd(a, b); }
  static F64 MulF64(F64 a, F64 b) { return _mm256_mul_pd(a, b); }
  static F64 DivF64(F64 a, F64 b) { return _mm256_div_pd(a, b); }
  static F64 MinF64(F64 a, F64 b) { return _mm256_min_pd(a, b); }
  static F64 AndMaskF64(F64 x, I64 mask) {
    return _mm256_and_pd(x, _mm256_castsi256_pd(mask));
  }

  static I64 SubI64(I64 a, I64 b) { return _mm256_sub_epi64(a, b); }
  static I64 CmpGtI64(I64 a, I64 b) { return _mm256_cmpgt_epi64(a, b); }
  static I64 AndI64(I64 a, I64 b) { return _mm256_and_si256(a, b); }
  static I64 OrI64(I64 a, I64 b) { return _mm256_or_si256(a, b); }
  static I64 XorI64(I64 a, I64 b) { return _mm256_xor_si256(a, b); }
  static I64 ShlI64(I64 a, uint32_t count) {
    return _mm256_slli_epi64(a, static_cast<int>(count));
  }
  static I64 ShrI64(I64 a, uint32_t count) {
    return _mm256_srli_epi64(a, static_cast<int>(count));
  }

  static I32 AddI32(I32 a, I32 b) { return _mm_add_epi32(a, b); }
  static I32 SubI32(I32 a, I32 b) { return _mm_sub_epi32(a, b); }
  static I32 AndI32(I32 a, I32 b) { return _mm_and_si128(a, b); }
  static I32 MinI32(I32 a, I32 b) { return _mm_min_epi32(a, b); }
  static I32 CmpLtU32(I32 a, I32 b) { return detail::CmpLtU32Sse2(a, b); }
  static I32 MulHiU32(I32 a, I32 b) { return detail::MulHiU32Sse2(a, b); }

  static F64 U64ToF64(I64 x) {
    const __m256i hi = _mm256_or_si256(_mm256_srli_epi64(x, 32),
                                       _mm256_set1_epi64x(detail::k2p84Bits));
    const __m256i lo =
        _mm256_or_si256(_mm256_and_si256(x, _mm256_set1_epi64x(0xFFFFFFFFll)),
                        _mm256_set1_epi64x(detail::k2p52Bits));
    const __m256d f = _mm256_sub_pd(_mm256_castsi256_pd(hi),
                                    _mm256_set1_pd(detail::k2p84Plus2p52));
    return _mm256_add_pd(f, _mm256_castsi256_pd(lo));
  }
  static F64 I32ToF64(I32 x) { return _mm256_cvtepi32_pd(x); }
  static I32 F64ToI32Trunc(F64 x) { return _mm256_cvttpd_epi32(x); }
  static F64 GatherF64(const double* base, I32 idx) {
    // The masked form with a zeroed source: the plain intrinsic expands
    // through _mm256_undefined_pd(), which GCC flags under
    // -Wmaybe-uninitialized -Werror. All-ones mask = gather every lane.
    return _mm256_mask_i32gather_pd(
        _mm256_setzero_pd(), base, idx,
        _mm256_castsi256_pd(_mm256_set1_epi64x(-1)), 8);
  }
};

#endif  // defined(__AVX2__)
#endif  // CSFC_SIMD_X86

}  // namespace csfc::simd

#endif  // CSFC_COMMON_SIMD_H_
