// A small fixed-size thread pool for embarrassingly parallel sweeps.
//
// The experiment harness fans independent (scheduler, workload, seed)
// simulation points out across cores (exp/runner.h); each point owns its
// simulator, scheduler and RNG, so the only shared state is the task queue
// itself. The pool is deliberately minimal: FIFO task queue, no futures,
// no work stealing — Submit() closures write their results into
// caller-owned slots, and Wait() is the single synchronization point.

#ifndef CSFC_COMMON_THREAD_POOL_H_
#define CSFC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace csfc {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned num_threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// The pool width `num_threads = 0` resolves to (hardware concurrency,
  /// with a floor of 1 when it is unknown).
  static unsigned DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> tasks_;
  size_t in_flight_ = 0;  // queued + currently running tasks
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(n-1) across `num_threads` workers (0 = hardware
/// concurrency, 1 = inline on the calling thread) and returns when all
/// calls have finished. Iterations must be independent.
void ParallelFor(size_t n, unsigned num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace csfc

#endif  // CSFC_COMMON_THREAD_POOL_H_
