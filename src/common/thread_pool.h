// A small fixed-size thread pool for embarrassingly parallel sweeps.
//
// The experiment harness fans independent (scheduler, workload, seed)
// simulation points out across cores (exp/runner.h); each point owns its
// simulator, scheduler and RNG, so the only shared state is the task queue
// itself. The pool is deliberately minimal: FIFO task queue, no futures,
// no work stealing — Submit() closures write their results into
// caller-owned slots, and Wait() is the single synchronization point.
//
// The locking discipline is declared with thread-safety annotations
// (common/thread_annotations.h) and verified at compile time under clang's
// -Wthread-safety: every queue field is GUARDED_BY(mu_), and the public
// entry points are EXCLUDES(mu_) so a task can never re-enter the pool
// while its worker holds the queue lock.

#ifndef CSFC_COMMON_THREAD_POOL_H_
#define CSFC_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace csfc {

class ThreadPool {
 public:
  /// Starts `num_threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned num_threads);
  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> task) EXCLUDES(mu_);

  /// Blocks until every submitted task has finished executing.
  void Wait() EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// The pool width `num_threads = 0` resolves to (hardware concurrency,
  /// with a floor of 1 when it is unknown).
  static unsigned DefaultThreads();

 private:
  void WorkerLoop() EXCLUDES(mu_);

  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  size_t in_flight_ GUARDED_BY(mu_) = 0;  // queued + currently running
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written only in the constructor
};

/// Runs fn(0), ..., fn(n-1) across `num_threads` workers (0 = hardware
/// concurrency, 1 = inline on the calling thread) and returns when all
/// calls have finished. Iterations must be independent.
void ParallelFor(size_t n, unsigned num_threads,
                 const std::function<void(size_t)>& fn);

}  // namespace csfc

#endif  // CSFC_COMMON_THREAD_POOL_H_
