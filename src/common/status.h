// RocksDB-style Status / Result error handling.
//
// Fallible operations return Status (or Result<T> when they produce a
// value) instead of throwing. The OK path stores no heap state, so passing
// Status by value is cheap.

#ifndef CSFC_COMMON_STATUS_H_
#define CSFC_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace csfc {

/// Error category for a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,
  kNotSupported,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kCancelled,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
std::string_view StatusCodeName(StatusCode code);

/// The result of a fallible operation: a code plus an optional message.
///
/// [[nodiscard]] at class scope: any call returning a Status by value
/// must be consumed. An error that should genuinely be ignored is spelled
/// `s.IgnoreError()` so the decision is visible at the call site.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }

  /// Explicitly discards this status. The only sanctioned way to drop a
  /// must-check return (e.g. best-effort cleanup in a destructor).
  void IgnoreError() const {}
  const std::string& message() const { return msg_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && msg_ == other.msg_;
  }

 private:
  StatusCode code_;
  std::string msg_;
};

/// A value-or-Status union. `ok()` implies `value()` is valid; accessing the
/// value of a failed Result is a programming error (asserted in debug).
/// [[nodiscard]] like Status: dropping a Result drops an error silently.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK Status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result<T> must not be built from an OK status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace csfc

#endif  // CSFC_COMMON_STATUS_H_
