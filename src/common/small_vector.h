// A vector with inline storage for small sizes, used for per-request
// priority vectors (typically 1-12 dimensions) to avoid a heap allocation
// per simulated request.

#ifndef CSFC_COMMON_SMALL_VECTOR_H_
#define CSFC_COMMON_SMALL_VECTOR_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <utility>
#include <vector>

namespace csfc {

/// Vector of trivially-copyable T with N elements of inline storage.
/// Spills to the heap beyond N. Only the operations the simulator needs are
/// provided (this is deliberately not a full std::vector clone).
template <typename T, size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable elements");

 public:
  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVector(size_t count, const T& value) {
    for (size_t i = 0; i < count; ++i) push_back(value);
  }

  SmallVector(const SmallVector& other) { *this = other; }

  SmallVector& operator=(const SmallVector& other) {
    if (this == &other) return *this;
    clear();
    for (const T& v : other) push_back(v);
    return *this;
  }

  // Moves are noexcept — a contract tools/csfc_analyze verifies for every
  // type flowing through the zero-copy queue path: std::vector only uses
  // move construction during growth when it cannot throw, and the
  // dispatcher's slot pool relies on that. The inline buffer is memcpy'd
  // (T is trivially copyable); only the heap spill actually moves.
  SmallVector(SmallVector&& other) noexcept
      : heap_(std::move(other.heap_)), size_(other.size_) {
    std::copy(other.inline_, other.inline_ + std::min(size_, N), inline_);
    other.heap_.clear();
    other.size_ = 0;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this == &other) return *this;
    heap_ = std::move(other.heap_);
    size_ = other.size_;
    std::copy(other.inline_, other.inline_ + std::min(size_, N), inline_);
    other.heap_.clear();
    other.size_ = 0;
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    size_ = 0;
    heap_.clear();
  }

  void push_back(const T& v) {
    if (size_ < N) {
      inline_[size_] = v;
    } else {
      heap_.push_back(v);
    }
    ++size_;
  }

  void resize(size_t n, const T& fill = T()) {
    while (size_ > n) pop_back();
    while (size_ < n) push_back(fill);
  }

  void pop_back() {
    assert(size_ > 0);
    if (size_ > N) heap_.pop_back();
    --size_;
  }

  T& operator[](size_t i) {
    assert(i < size_);
    return i < N ? inline_[i] : heap_[i - N];
  }
  const T& operator[](size_t i) const {
    assert(i < size_);
    return i < N ? inline_[i] : heap_[i - N];
  }

  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  /// Inline storage capacity (elements 0..N-1 never spill to the heap).
  static constexpr size_t kInlineCapacity = N;

  /// Direct pointer to the inline buffer: the first min(size(), N)
  /// elements, contiguous. Lets batch kernels hoist the per-element
  /// inline-vs-heap branch of operator[] out of their hot loops; reading
  /// past min(size(), N) through this pointer is the caller's bug.
  const T* inline_data() const { return inline_; }

  bool operator==(const SmallVector& other) const {
    if (size_ != other.size_) return false;
    for (size_t i = 0; i < size_; ++i) {
      if ((*this)[i] != other[i]) return false;
    }
    return true;
  }

  /// Forward iterator (proxy-based because storage may be split between the
  /// inline buffer and the heap spill).
  template <typename Vec, typename Ref>
  class Iter {
   public:
    Iter(Vec* v, size_t i) : v_(v), i_(i) {}
    Ref operator*() const { return (*v_)[i_]; }
    Iter& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const Iter& o) const { return i_ != o.i_; }
    bool operator==(const Iter& o) const { return i_ == o.i_; }

   private:
    Vec* v_;
    size_t i_;
  };

  using iterator = Iter<SmallVector, T&>;
  using const_iterator = Iter<const SmallVector, const T&>;

  iterator begin() { return iterator(this, 0); }
  iterator end() { return iterator(this, size_); }
  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, size_); }

 private:
  T inline_[N] = {};
  std::vector<T> heap_;
  size_t size_ = 0;
};

}  // namespace csfc

#endif  // CSFC_COMMON_SMALL_VECTOR_H_
