#include "common/random.h"

#include <cmath>

namespace csfc {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  if (hi <= lo) return lo;
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);  // avoid log(0)
  // Inverse-CDF transform: glibc's log is deterministic for a fixed
  // libm build, and the golden ledger pins the produced streams.
  return -mean * std::log(u);  // csfc:libm-ok(inverse-CDF shape; ledger-pinned)
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  // Box-Muller: one libm build -> one bit stream; ledger-pinned.
  const double mag = std::sqrt(-2.0 * std::log(u1));  // csfc:libm-ok(Box-Muller)
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);  // csfc:libm-ok(Box-Muller)
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  // Zipf normalizer (Gray et al.): shape constants computed once per
  // distribution; same libm -> same constants, ledger-pinned.
  for (uint64_t i = 1; i <= n; ++i)
    sum += 1.0 / std::pow(static_cast<double>(i), theta);  // csfc:libm-ok(zeta)
  return sum;
}

}  // namespace

ZipfDistribution::ZipfDistribution(uint64_t n, double theta)
    : n_(n < 1 ? 1 : n), theta_(theta) {
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  eta_ = (1.0 -
          std::pow(2.0 / static_cast<double>(n_),  // csfc:libm-ok(Zipf shape)
                   1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) return 0;
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  // Rejection-free Zipf sampling (same libm -> same ranks; the golden
  // ledger pins every stream that flows through this path).
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;  // csfc:libm-ok(Zipf sample)
  const uint64_t k = static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));  // csfc:libm-ok(Zipf sample)
  return k >= n_ ? n_ - 1 : k;
}

}  // namespace csfc
