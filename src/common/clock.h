// The time seam: every source of "now" outside the event-driven simulator
// goes through a Clock, the way every source of randomness goes through
// common/random. csfc_lint's determinism rule bans wall-clock types in
// src/ outside this file (and common/random), so real time can only enter
// the system here — code that takes a Clock& can be driven by the
// deterministic VirtualClock in tests and benches and by MonotonicClock
// only in the real-time service front-end (src/svc) and the CLIs.
//
// Timestamps are SimTime microseconds (common/types.h) in both cases, so
// the service layer's latency accounting is unit-identical whether a run
// is virtual (bit-reproducible) or wall-clock.

#ifndef CSFC_COMMON_CLOCK_H_
#define CSFC_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>

#include "common/types.h"

namespace csfc {

/// Monotonic microsecond clock interface.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds. Monotonic non-decreasing.
  virtual SimTime NowUs() = 0;
};

/// Deterministic clock: time moves only when something advances it.
/// Thread-safe — producers may read while a driver advances; Advance and
/// AdvanceTo are monotonic (time never goes backwards even when callers
/// race).
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(SimTime start = 0) : now_(start) {}

  SimTime NowUs() override { return now_.load(std::memory_order_acquire); }

  /// Moves time forward by `delta` (>= 0) and returns the new now.
  SimTime Advance(SimTime delta) {
    return now_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  }

  /// Moves time forward to `t` if `t` is ahead; never rewinds.
  void AdvanceTo(SimTime t) {
    SimTime cur = now_.load(std::memory_order_relaxed);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
    }
  }

 private:
  /// Allowed memory orders per op are manifested in
  /// tools/csfc_analyze/concurrency.toml (row `now_`).
  std::atomic<SimTime> now_;
};

/// Real time: std::chrono::steady_clock, rebased so NowUs() starts near 0
/// at construction (keeps wall-clock timestamps in the same small-integer
/// range virtual runs produce, which the trace exporters format as-is).
class MonotonicClock final : public Clock {
 public:
  MonotonicClock() : epoch_(std::chrono::steady_clock::now()) {}

  SimTime NowUs() override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace csfc

#endif  // CSFC_COMMON_CLOCK_H_
