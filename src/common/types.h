// Core scalar types and time conventions shared by every csfc module.
//
// Simulation time is a signed 64-bit count of microseconds (`SimTime`).
// Disk-model arithmetic is done in double milliseconds and converted at the
// boundary with MsToSim/SimToMs.

#ifndef CSFC_COMMON_TYPES_H_
#define CSFC_COMMON_TYPES_H_

#include <cstdint>

namespace csfc {

/// Simulation timestamp / duration in microseconds.
using SimTime = int64_t;

/// One millisecond in SimTime units.
inline constexpr SimTime kMillisecond = 1000;
/// One second in SimTime units.
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Converts a duration in (possibly fractional) milliseconds to SimTime.
constexpr SimTime MsToSim(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond) + 0.5);
}

/// Converts a SimTime duration to fractional milliseconds.
constexpr double SimToMs(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// Disk cylinder index.
using Cylinder = uint32_t;

/// A quantized priority level. Level 0 is the HIGHEST priority in every
/// dimension, so that ascending characterization order serves important
/// requests first (see DESIGN.md section 6).
using PriorityLevel = uint32_t;

/// Monotonically increasing request identifier.
using RequestId = uint64_t;

}  // namespace csfc

#endif  // CSFC_COMMON_TYPES_H_
