#include "common/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace csfc::simd {

namespace {

// -1 = not yet initialized from the environment. Values >= 0 are Modes.
// Fully relaxed by contract (row `g_override` in
// tools/csfc_analyze/concurrency.toml): the probe is idempotent, so
// only atomicity matters, not ordering.
std::atomic<int> g_override{-1};

Mode ReadEnvMode() {
  const char* s = std::getenv("CSFC_SIMD");
  if (s == nullptr || *s == '\0') return Mode::kAuto;
  Mode m = Mode::kAuto;
  if (!ParseMode(s, &m)) {
    // Warned once: the env read happens only on the first OverrideMode().
    std::fprintf(stderr,
                 "csfc: ignoring invalid CSFC_SIMD=%s "
                 "(expected auto|scalar|sse2|avx2)\n",
                 s);
    return Mode::kAuto;
  }
  return m;
}

}  // namespace

Level DetectLevel() {
  static const Level level = [] {
#if CSFC_SIMD_X86
#if defined(__GNUC__) || defined(__clang__)
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
    return Level::kSse2;  // SSE2 is the x86-64 baseline.
#else
    return Level::kScalar;
#endif
  }();
  return level;
}

Mode OverrideMode() {
  int cur = g_override.load(std::memory_order_relaxed);
  if (cur < 0) {
    int expected = -1;
    g_override.compare_exchange_strong(expected,
                                       static_cast<int>(ReadEnvMode()),
                                       std::memory_order_relaxed);
    cur = g_override.load(std::memory_order_relaxed);
  }
  return static_cast<Mode>(cur);
}

void SetOverride(Mode mode) {
  g_override.store(static_cast<int>(mode), std::memory_order_relaxed);
}

Level Resolve(Mode requested) {
  Mode m = OverrideMode();
  if (m == Mode::kAuto) m = requested;
  const Level detected = DetectLevel();
  if (m == Mode::kAuto) return detected;
  const int want = static_cast<int>(m);
  const int have = static_cast<int>(detected);
  return static_cast<Level>(want < have ? want : have);
}

bool ParseMode(std::string_view text, Mode* out) {
  if (text == "auto") {
    *out = Mode::kAuto;
  } else if (text == "scalar") {
    *out = Mode::kScalar;
  } else if (text == "sse2") {
    *out = Mode::kSse2;
  } else if (text == "avx2") {
    *out = Mode::kAvx2;
  } else {
    return false;
  }
  return true;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kScalar:
      return "scalar";
    case Mode::kSse2:
      return "sse2";
    case Mode::kAvx2:
      return "avx2";
    case Mode::kAuto:
      return "auto";
  }
  return "auto";
}

}  // namespace csfc::simd
