// The observability event model: one flat record type for every
// per-request lifecycle event the instrumented pipeline can emit
// (DESIGN.md section 10).
//
// A request's life is traced as
//
//   arrival -> characterize -> enqueue -> [promote]* -> dispatch
//           -> completion [-> deadline_miss]
//
// with dispatcher-global events (preempt, queue_swap, window_reset)
// interleaved. Every event carries the simulation timestamp it happened
// at; kind-specific payload lives in optional fields of the single
// TraceEvent struct so sinks stay allocation-free and the ring buffer can
// hold events by value.
//
// Consumers implement EventSink. A null sink (no sink attached) is the
// disabled state: instrumented code guards every emission with
// Tracer::enabled(), so tracing compiled in but switched off costs one
// pointer test per would-be event.

#ifndef CSFC_OBS_TRACE_EVENT_H_
#define CSFC_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <string_view>

#include "common/types.h"
#include "workload/request.h"  // kNoDeadline sentinel

namespace csfc {
namespace obs {

/// Every event kind the instrumented scheduler pipeline emits.
enum class TraceEventKind : uint8_t {
  kArrival,       ///< request entered the simulator
  kCharacterize,  ///< encapsulator mapped the request to v_c (v1/v2/vc)
  kEnqueue,       ///< request inserted into the scheduler queue
  kPreempt,       ///< arrival preempted the active batch (conditional)
  kPromote,       ///< SP moved a waiting request into the active batch
  kQueueSwap,     ///< active batch exhausted; q and q' swapped
  kWindowReset,   ///< ER reset the blocking window at a swap
  kDispatch,      ///< request handed to the disk
  kCompletion,    ///< service finished
  kDeadlineMiss,  ///< the completion was after the request's deadline
  // Service front-end events (src/svc, DESIGN.md section 12). A request
  // served through the real-time front-end is traced as
  //   ingest -> admit -> enqueue -> ... -> dispatch -> drain
  // or sheds at the door as ingest -> reject.
  kIngest,        ///< request offered to the service front-end
  kAdmit,         ///< admission control accepted the request
  kReject,        ///< admission shed the request (see RejectReason)
  kDrain,         ///< front-end handed the request to service; wait_ms is
                  ///< the enqueue-to-dispatch latency the SLOs track
};

/// Why the admission controller shed a request (kReject payload).
enum class RejectReason : uint8_t {
  kNone = 0,
  kRate,      ///< per-stream token bucket empty
  kLoad,      ///< SCAN-tour oracle predicts the wait would bust the SLO
  kRingFull,  ///< ingest ring full (backpressure)
};

/// Stable wire name of a reject reason ("rate", "load", "ring_full").
std::string_view RejectReasonName(RejectReason reason);

/// Inverse of RejectReasonName; false when `name` is unknown.
bool ParseRejectReason(std::string_view name, RejectReason* out);

/// Sentinel for events that are not tied to one request (queue_swap,
/// window_reset).
inline constexpr RequestId kNoRequestId = ~RequestId{0};

/// Stable wire name of an event kind ("arrival", "queue_swap", ...).
std::string_view TraceEventKindName(TraceEventKind kind);

/// Inverse of TraceEventKindName; false when `name` is unknown.
bool ParseTraceEventKind(std::string_view name, TraceEventKind* out);

/// One lifecycle event. Fields beyond `kind`/`t` are populated per kind;
/// unused fields keep their zero defaults and exporters omit them.
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kArrival;
  /// Simulation time of the event.
  SimTime t = 0;
  /// Request the event belongs to; kNoRequestId for dispatcher-global
  /// events.
  RequestId id = kNoRequestId;

  // arrival / dispatch
  Cylinder cylinder = 0;
  /// Dimension-0 priority level at arrival (the level the per-level
  /// response stats key on).
  PriorityLevel level = 0;
  SimTime deadline = kNoDeadline;

  // characterize (vc is also set on preempt/promote)
  double v1 = 0.0;  ///< SFC1 output
  double v2 = 0.0;  ///< SFC2 output
  double vc = 0.0;  ///< SFC3 output = the final characterization value
  /// True when the characterization is a batch-formation re-key rather
  /// than the arrival-time one.
  bool rekey = false;

  // enqueue / dispatch / queue_swap
  /// Scheduler queue depth after the event.
  uint64_t queue_depth = 0;

  // preempt / promote / window_reset
  /// Blocking window after the event (ER growth / reset visible here).
  double window = 0.0;

  // completion
  double seek_ms = 0.0;
  double service_ms = 0.0;
  double response_ms = 0.0;
  bool missed = false;

  // ingest (owning stream of the offered request)
  uint32_t stream = 0;
  // drain: enqueue-to-dispatch latency through the service front-end
  double wait_ms = 0.0;
  // reject
  RejectReason reject = RejectReason::kNone;

  bool has_request() const { return id != kNoRequestId; }
};

/// Receives every emitted event. Implementations must tolerate events
/// arriving in simulation order from a single thread (one sink per
/// simulator run; parallel sweeps use one sink per point). The in-memory
/// sinks (TraceRecorder, WindowedMetrics) are thread-compatible, not
/// thread-safe: to share one sink across RunParallel points, wrap it in
/// obs::LockedSink (obs/locked_sink.h) or use the internally locked
/// JsonlSink. The thread-safety annotations on those adapters make any
/// unlocked sharing a -Wthread-safety compile error.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;
};

}  // namespace obs
}  // namespace csfc

#endif  // CSFC_OBS_TRACE_EVENT_H_
