// LockedSink: a thread-safe EventSink adapter for parallel sweeps.
//
// Every other sink (TraceRecorder, WindowedMetrics, JsonlSink) is
// single-threaded by contract — one sink per simulator run. When a
// parallel sweep (exp::RunParallel) wants one merged event stream instead
// of one sink per point, LockedSink serializes OnEvent calls from all
// worker threads into the wrapped sink under an annotated Mutex, so the
// sharing is proven safe by -Wthread-safety and exercised under TSan by
// tests/common/parallel_stress_test.cc.
//
// Events from different points interleave in wall-clock order, not
// simulation order: the merged stream is a fan-in, not a trace of one run,
// so per-request lifecycle ordering only holds per point. Use one sink
// per point when the downstream consumer (trace_inspect) needs ordering.

#ifndef CSFC_OBS_LOCKED_SINK_H_
#define CSFC_OBS_LOCKED_SINK_H_

#include <cstdint>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/trace_event.h"

namespace csfc {
namespace obs {

class LockedSink : public EventSink {
 public:
  /// Wraps `sink` (not owned; must outlive this adapter). The wrapped
  /// sink's OnEvent only ever runs with mu_ held.
  explicit LockedSink(EventSink& sink) : sink_(&sink) {}

  void OnEvent(const TraceEvent& event) EXCLUDES(mu_) override {
    MutexLock lock(mu_);
    ++forwarded_;
    sink_->OnEvent(event);
  }

  /// Events forwarded so far (settled once no emitter is running).
  uint64_t forwarded() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return forwarded_;
  }

 private:
  mutable Mutex mu_;
  EventSink* const sink_ PT_GUARDED_BY(mu_);
  uint64_t forwarded_ GUARDED_BY(mu_) = 0;
};

}  // namespace obs
}  // namespace csfc

#endif  // CSFC_OBS_LOCKED_SINK_H_
