#include "obs/trace_event.h"

namespace csfc {
namespace obs {

namespace {
struct KindName {
  TraceEventKind kind;
  std::string_view name;
};
constexpr KindName kKindNames[] = {
    {TraceEventKind::kArrival, "arrival"},
    {TraceEventKind::kCharacterize, "characterize"},
    {TraceEventKind::kEnqueue, "enqueue"},
    {TraceEventKind::kPreempt, "preempt"},
    {TraceEventKind::kPromote, "promote"},
    {TraceEventKind::kQueueSwap, "queue_swap"},
    {TraceEventKind::kWindowReset, "window_reset"},
    {TraceEventKind::kDispatch, "dispatch"},
    {TraceEventKind::kCompletion, "completion"},
    {TraceEventKind::kDeadlineMiss, "deadline_miss"},
};
}  // namespace

std::string_view TraceEventKindName(TraceEventKind kind) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

bool ParseTraceEventKind(std::string_view name, TraceEventKind* out) {
  for (const KindName& kn : kKindNames) {
    if (kn.name == name) {
      *out = kn.kind;
      return true;
    }
  }
  return false;
}

}  // namespace obs
}  // namespace csfc
