#include "obs/trace_event.h"

namespace csfc {
namespace obs {

namespace {
struct KindName {
  TraceEventKind kind;
  std::string_view name;
};
constexpr KindName kKindNames[] = {
    {TraceEventKind::kArrival, "arrival"},
    {TraceEventKind::kCharacterize, "characterize"},
    {TraceEventKind::kEnqueue, "enqueue"},
    {TraceEventKind::kPreempt, "preempt"},
    {TraceEventKind::kPromote, "promote"},
    {TraceEventKind::kQueueSwap, "queue_swap"},
    {TraceEventKind::kWindowReset, "window_reset"},
    {TraceEventKind::kDispatch, "dispatch"},
    {TraceEventKind::kCompletion, "completion"},
    {TraceEventKind::kDeadlineMiss, "deadline_miss"},
    {TraceEventKind::kIngest, "ingest"},
    {TraceEventKind::kAdmit, "admit"},
    {TraceEventKind::kReject, "reject"},
    {TraceEventKind::kDrain, "drain"},
};

struct ReasonName {
  RejectReason reason;
  std::string_view name;
};
constexpr ReasonName kReasonNames[] = {
    {RejectReason::kNone, "none"},
    {RejectReason::kRate, "rate"},
    {RejectReason::kLoad, "load"},
    {RejectReason::kRingFull, "ring_full"},
};
}  // namespace

std::string_view TraceEventKindName(TraceEventKind kind) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

bool ParseTraceEventKind(std::string_view name, TraceEventKind* out) {
  for (const KindName& kn : kKindNames) {
    if (kn.name == name) {
      *out = kn.kind;
      return true;
    }
  }
  return false;
}

std::string_view RejectReasonName(RejectReason reason) {
  for (const ReasonName& rn : kReasonNames) {
    if (rn.reason == reason) return rn.name;
  }
  return "unknown";
}

bool ParseRejectReason(std::string_view name, RejectReason* out) {
  for (const ReasonName& rn : kReasonNames) {
    if (rn.name == name) {
      *out = rn.reason;
      return true;
    }
  }
  return false;
}

}  // namespace obs
}  // namespace csfc
