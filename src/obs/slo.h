// SloMetrics: windowed service-level objective tracking over the
// service-front-end event stream (ingest / admit / reject / drain). Per
// fixed-width window it accumulates the offered/admitted/shed counts and
// a log-bucketed histogram of the drain events' enqueue-to-dispatch
// latency, reporting p50/p99/p999/max per window — the "is the tail
// holding" view a whole-run aggregate cannot give (e.g. the p999 spike in
// exactly the window where a burst landed).
//
// Thread-compatible like the other in-memory sinks: one SloMetrics per
// event stream, or wrap in obs::LockedSink when producers emit directly
// (the service front-end instead funnels all events through its
// dispatcher thread, so the usual setup needs no lock).

#ifndef CSFC_OBS_SLO_H_
#define CSFC_OBS_SLO_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "obs/trace_event.h"

namespace csfc {
namespace obs {

/// SLO counters for one time window [start_ms, start_ms + width).
struct SloWindowRow {
  double start_ms = 0.0;
  uint64_t offered = 0;    ///< ingest events
  uint64_t admitted = 0;   ///< admit events
  uint64_t rejected = 0;   ///< reject events, all reasons
  uint64_t rejected_rate = 0;
  uint64_t rejected_load = 0;
  uint64_t rejected_ring_full = 0;
  uint64_t drains = 0;     ///< drain events (requests handed to service)
  double p50_ms = 0.0;     ///< wait-latency percentiles over this window
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;

  /// Fraction of offered requests shed this window.
  double shed_rate() const {
    return offered == 0
               ? 0.0
               : static_cast<double>(rejected) / static_cast<double>(offered);
  }
};

class SloMetrics : public EventSink {
 public:
  explicit SloMetrics(double window_ms = 100.0);

  void OnEvent(const TraceEvent& event) override;

  /// Closed windows plus the currently open one, in time order (gap
  /// windows between populated ones are materialized with zero counts so
  /// the series is plottable as-is).
  std::vector<SloWindowRow> Rows() const;

  /// Whole-run latency distribution across every window.
  const LogHistogram& overall() const { return overall_; }

  double window_ms() const { return window_ms_; }

 private:
  void AdvanceTo(SimTime t);
  void Close();

  double window_ms_;
  SimTime window_span_;
  int64_t current_index_ = 0;
  bool started_ = false;
  SloWindowRow current_;
  LogHistogram window_hist_;  ///< wait samples (us) of the open window
  LogHistogram overall_;
  std::vector<SloWindowRow> closed_;
};

}  // namespace obs
}  // namespace csfc

#endif  // CSFC_OBS_SLO_H_
