#include "obs/recorder.h"

#include <algorithm>

namespace csfc {
namespace obs {

TraceRecorder::TraceRecorder(size_t capacity)
    : buffer_(std::max<size_t>(capacity, 1)) {}

void TraceRecorder::OnEvent(const TraceEvent& event) {
  buffer_[next_] = event;
  next_ = next_ + 1 == buffer_.size() ? 0 : next_ + 1;
  ++total_;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<TraceEvent> out;
  const size_t n = size();
  out.reserve(n);
  // When wrapped, the oldest surviving event is at next_.
  const size_t start = total_ <= buffer_.size() ? 0 : next_;
  for (size_t i = 0; i < n; ++i) {
    out.push_back(buffer_[(start + i) % buffer_.size()]);
  }
  return out;
}

void TraceRecorder::Clear() {
  next_ = 0;
  total_ = 0;
}

}  // namespace obs
}  // namespace csfc
