// WindowedMetrics: fixed-width time-series counters over the event
// stream — queue depth, arrival/completion throughput, deadline-miss rate
// and mean seek per window. This is the "how did the run evolve" view the
// aggregate RunMetrics blob cannot give (e.g. queue-depth ramp under a
// burst, the window in which misses cluster).
//
// Depth is reconstructed from enqueue/dispatch deltas, so the sink needs
// no access to the scheduler; it samples the running depth at every event
// and reports the per-window mean and end-of-window value.
//
// Thread-compatible, deliberately unlocked (single-threaded hot path);
// wrap in obs::LockedSink to share across parallel sweep points.

#ifndef CSFC_OBS_WINDOWED_H_
#define CSFC_OBS_WINDOWED_H_

#include <cstdint>
#include <vector>

#include "obs/trace_event.h"

namespace csfc {
namespace obs {

/// Counters for one time window [start_ms, start_ms + width).
struct WindowRow {
  double start_ms = 0.0;
  uint64_t arrivals = 0;
  uint64_t completions = 0;
  uint64_t misses = 0;
  uint64_t promotions = 0;
  uint64_t preemptions = 0;
  /// Mean queue depth over the event samples in this window (end-of-window
  /// depth when the window saw no events).
  double mean_queue_depth = 0.0;
  /// Queue depth when the window closed.
  uint64_t end_queue_depth = 0;
  double total_seek_ms = 0.0;

  /// Misses / completions-with-deadline proxy: misses over completions.
  double miss_rate() const {
    return completions == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(completions);
  }
  double mean_seek_ms() const {
    return completions == 0 ? 0.0
                            : total_seek_ms / static_cast<double>(completions);
  }
};

class WindowedMetrics : public EventSink {
 public:
  explicit WindowedMetrics(double window_ms = 100.0);

  void OnEvent(const TraceEvent& event) override;

  /// Closed windows plus the currently open one, in time order. Windows
  /// with no events between populated ones are materialized (zero counts,
  /// carried-over depth) so the series is gap-free.
  std::vector<WindowRow> Rows() const;

  double window_ms() const { return window_ms_; }

 private:
  /// Closes windows up to the one containing `t`.
  void AdvanceTo(SimTime t);

  double window_ms_;
  SimTime window_span_;         // window width in SimTime units
  int64_t current_index_ = 0;   // index of the open window
  bool started_ = false;
  WindowRow current_;
  uint64_t depth_ = 0;          // running queue depth
  uint64_t depth_samples_ = 0;  // samples folded into current_.mean_...
  double depth_sum_ = 0.0;
  std::vector<WindowRow> closed_;
};

}  // namespace obs
}  // namespace csfc

#endif  // CSFC_OBS_WINDOWED_H_
