// The unified export API: every structured artifact the repo produces —
// aggregate RunMetrics, recorded traces, windowed time series, bench
// tables — leaves the process through one overload set,
//
//   Status Export(<thing>, Writer&, ExportFormat)
//
// so benches and tools stop hand-rolling fprintf formatting. Formats:
//
//   * kJson  - one JSON document (object or array).
//   * kJsonl - one JSON object per line; the trace interchange format
//              tools/trace_inspect consumes (schema in DESIGN.md §10).
//   * kCsv   - header row + data rows, RFC-4180 quoting.
//
// Writer is the byte sink: StringWriter for tests/round-trips, FileWriter
// for files. JsonlSink adapts a Writer into an EventSink so long runs can
// stream their trace straight to disk instead of buffering it.

#ifndef CSFC_OBS_EXPORT_H_
#define CSFC_OBS_EXPORT_H_

#include <cstdio>
#include <span>
#include <string>
#include <string_view>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "obs/trace_event.h"
#include "obs/windowed.h"

namespace csfc {

struct RunMetrics;
class TablePrinter;

namespace obs {

/// Byte sink the exporters write through.
class Writer {
 public:
  virtual ~Writer() = default;
  virtual Status Append(std::string_view data) = 0;
};

/// Accumulates into a string (tests, in-memory round trips).
class StringWriter : public Writer {
 public:
  Status Append(std::string_view data) override {
    out_.append(data);
    return Status::OK();
  }
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Writes to a file it owns. Move-only; flushes and closes on destruction.
class FileWriter : public Writer {
 public:
  static Result<FileWriter> Open(const std::string& path);
  ~FileWriter() override;

  FileWriter(FileWriter&& other) noexcept;
  FileWriter& operator=(FileWriter&& other) noexcept;
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  Status Append(std::string_view data) override;
  /// Flushes and closes; further Appends fail. Returns the first error.
  Status Close();

 private:
  explicit FileWriter(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  std::FILE* file_ = nullptr;
  std::string path_;
};

enum class ExportFormat { kJson, kJsonl, kCsv };

/// Serializes one trace event as a single-line JSON object (no trailing
/// newline) — the JSONL schema unit.
std::string TraceEventToJson(const TraceEvent& event);

/// RunMetrics -> one JSON document (kJson; kJsonl emits the same single
/// object as one line). kCsv is not meaningful for the nested aggregate
/// and returns InvalidArgument.
Status Export(const RunMetrics& metrics, Writer& writer,
              ExportFormat format = ExportFormat::kJson);

/// Trace events -> JSONL (default) or CSV with one row per event.
Status Export(std::span<const TraceEvent> events, Writer& writer,
              ExportFormat format = ExportFormat::kJsonl);

/// Recorded trace -> JSONL/CSV (oldest surviving event first).
Status Export(const TraceRecorder& recorder, Writer& writer,
              ExportFormat format = ExportFormat::kJsonl);

/// Windowed time series -> JSONL/CSV, one row per window.
Status Export(const WindowedMetrics& windows, Writer& writer,
              ExportFormat format = ExportFormat::kCsv);

/// Windowed SLO series (service front-end) -> JSONL/CSV, one row per
/// window with the per-window wait-latency percentiles.
Status Export(const SloMetrics& slo, Writer& writer,
              ExportFormat format = ExportFormat::kCsv);

/// Bench table -> CSV (what the figure CSVs always were) or a JSON array
/// of {header: cell} row objects. kJsonl emits one row object per line.
Status Export(const TablePrinter& table, Writer& writer,
              ExportFormat format = ExportFormat::kCsv);

/// EventSink that streams every event through `writer` as JSONL, for
/// runs too long to buffer in a TraceRecorder. Write errors are sticky:
/// the first failure is kept and later events are dropped.
///
/// Unlike the in-memory sinks, JsonlSink is internally locked: the
/// underlying Writer (a FILE* for FileWriter) is shared mutable state, so
/// one JsonlSink may be attached to every point of a parallel sweep and
/// the lines stay whole. The lock is uncontended in the usual
/// one-sink-per-run setup.
class JsonlSink : public EventSink {
 public:
  explicit JsonlSink(Writer& writer) : writer_(&writer) {}

  void OnEvent(const TraceEvent& event) EXCLUDES(mu_) override;

  uint64_t events_written() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return events_written_;
  }
  /// First write failure, OK while the stream is healthy. Settled once no
  /// emitter is running (copy, not reference: the field is guarded).
  Status status() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return status_;
  }

 private:
  mutable Mutex mu_;
  Writer* const writer_ PT_GUARDED_BY(mu_);
  uint64_t events_written_ GUARDED_BY(mu_) = 0;
  Status status_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace csfc

#endif  // CSFC_OBS_EXPORT_H_
