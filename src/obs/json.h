// Minimal JSON support for the export layer: a streaming writer (the only
// JSON producer in the repo — RunMetrics::ToJson, the JSONL trace
// exporter and the bench baselines all build on it) and a flat-object
// parser sized to the trace schema (one-level objects of strings,
// numbers and booleans — exactly what one JSONL event line is), used by
// tools/trace_inspect and the round-trip tests. Not a general JSON
// library; nested values are out of scope by design.

#ifndef CSFC_OBS_JSON_H_
#define CSFC_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/status.h"

namespace csfc {
namespace obs {

/// Escapes `s` per JSON string rules (quotes not included).
std::string JsonEscape(std::string_view s);

/// Appends JSON values to a string. Handles the comma/key bookkeeping;
/// callers open/close containers explicitly. Numbers are emitted with
/// enough precision to round-trip doubles.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Sets the key the next value is written under (objects only).
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view v);
  JsonWriter& Value(const char* v) { return Value(std::string_view(v)); }
  JsonWriter& Value(double v);
  JsonWriter& Value(uint64_t v);
  JsonWriter& Value(int64_t v);
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(unsigned v) { return Value(static_cast<uint64_t>(v)); }
  JsonWriter& Value(bool v);

  /// Key(k).Value(v) in one call.
  template <typename T>
  JsonWriter& Field(std::string_view key, T v) {
    return Key(key).Value(v);
  }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Separate();

  std::string out_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

/// One scalar from a parsed flat JSON object.
struct JsonScalar {
  enum class Type { kString, kNumber, kBool, kNull };
  Type type = Type::kNull;
  std::string str;     // kString
  double num = 0.0;    // kNumber
  bool boolean = false;  // kBool

  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_bool() const { return type == Type::kBool; }
};

using JsonObject = std::map<std::string, JsonScalar>;

/// Parses a single flat JSON object ({"k": scalar, ...}). Returns
/// InvalidArgument on malformed input or on nested containers.
Result<JsonObject> ParseFlatJsonObject(std::string_view line);

}  // namespace obs
}  // namespace csfc

#endif  // CSFC_OBS_JSON_H_
