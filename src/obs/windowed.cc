#include "obs/windowed.h"

#include <algorithm>

namespace csfc {
namespace obs {

WindowedMetrics::WindowedMetrics(double window_ms)
    : window_ms_(window_ms > 0.0 ? window_ms : 100.0),
      window_span_(std::max<SimTime>(MsToSim(window_ms_), 1)) {}

void WindowedMetrics::AdvanceTo(SimTime t) {
  const int64_t index = t / window_span_;
  if (!started_) {
    started_ = true;
    current_index_ = index;
    current_.start_ms = SimToMs(current_index_ * window_span_);
    return;
  }
  while (index > current_index_) {
    current_.mean_queue_depth =
        depth_samples_ > 0 ? depth_sum_ / static_cast<double>(depth_samples_)
                           : static_cast<double>(depth_);
    current_.end_queue_depth = depth_;
    closed_.push_back(current_);
    ++current_index_;
    current_ = WindowRow{};
    current_.start_ms = SimToMs(current_index_ * window_span_);
    depth_sum_ = 0.0;
    depth_samples_ = 0;
  }
}

void WindowedMetrics::OnEvent(const TraceEvent& e) {
  AdvanceTo(e.t);
  switch (e.kind) {
    case TraceEventKind::kArrival:
      ++current_.arrivals;
      break;
    case TraceEventKind::kEnqueue:
      ++depth_;
      break;
    case TraceEventKind::kDispatch:
      if (depth_ > 0) --depth_;
      break;
    case TraceEventKind::kCompletion:
      ++current_.completions;
      current_.total_seek_ms += e.seek_ms;
      if (e.missed) ++current_.misses;
      break;
    case TraceEventKind::kPromote:
      ++current_.promotions;
      break;
    case TraceEventKind::kPreempt:
      ++current_.preemptions;
      break;
    default:
      break;
  }
  depth_sum_ += static_cast<double>(depth_);
  ++depth_samples_;
}

std::vector<WindowRow> WindowedMetrics::Rows() const {
  std::vector<WindowRow> rows = closed_;
  if (started_) {
    WindowRow open = current_;
    open.mean_queue_depth =
        depth_samples_ > 0 ? depth_sum_ / static_cast<double>(depth_samples_)
                           : static_cast<double>(depth_);
    open.end_queue_depth = depth_;
    rows.push_back(open);
  }
  return rows;
}

}  // namespace obs
}  // namespace csfc
