#include "obs/export.h"

#include <utility>

#include "exp/table.h"
#include "obs/json.h"
#include "stats/metrics.h"

namespace csfc {
namespace obs {

// --------------------------------------------------------------------------
// Writers
// --------------------------------------------------------------------------

Result<FileWriter> FileWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  return FileWriter(f, path);
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

FileWriter::FileWriter(FileWriter&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)) {}

FileWriter& FileWriter::operator=(FileWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
  }
  return *this;
}

Status FileWriter::Append(std::string_view data) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer is closed");
  if (std::fwrite(data.data(), 1, data.size(), file_) != data.size()) {
    return Status::IoError("write failed: " + path_);
  }
  return Status::OK();
}

Status FileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  const bool ok = std::fflush(file_) == 0;
  const bool closed = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!ok || !closed) return Status::IoError("close failed: " + path_);
  return Status::OK();
}

// --------------------------------------------------------------------------
// Trace events
// --------------------------------------------------------------------------

std::string TraceEventToJson(const TraceEvent& e) {
  JsonWriter w;
  w.BeginObject();
  w.Field("ev", TraceEventKindName(e.kind));
  w.Field("t_ms", SimToMs(e.t));
  if (e.has_request()) w.Field("id", e.id);
  switch (e.kind) {
    case TraceEventKind::kArrival:
      w.Field("cyl", e.cylinder);
      w.Field("level", e.level);
      if (e.deadline != kNoDeadline) w.Field("deadline_ms", SimToMs(e.deadline));
      break;
    case TraceEventKind::kCharacterize:
      w.Field("v1", e.v1);
      w.Field("v2", e.v2);
      w.Field("vc", e.vc);
      if (e.rekey) w.Field("rekey", true);
      break;
    case TraceEventKind::kEnqueue:
    case TraceEventKind::kQueueSwap:
      w.Field("qd", e.queue_depth);
      break;
    case TraceEventKind::kPreempt:
    case TraceEventKind::kPromote:
      w.Field("vc", e.vc);
      w.Field("window", e.window);
      break;
    case TraceEventKind::kWindowReset:
      w.Field("window", e.window);
      break;
    case TraceEventKind::kDispatch:
      w.Field("cyl", e.cylinder);
      w.Field("qd", e.queue_depth);
      break;
    case TraceEventKind::kCompletion:
      w.Field("seek_ms", e.seek_ms);
      w.Field("service_ms", e.service_ms);
      w.Field("response_ms", e.response_ms);
      w.Field("missed", e.missed);
      break;
    case TraceEventKind::kDeadlineMiss:
      break;
    case TraceEventKind::kIngest:
      w.Field("stream", e.stream);
      break;
    case TraceEventKind::kAdmit:
      w.Field("qd", e.queue_depth);
      break;
    case TraceEventKind::kReject:
      w.Field("reason", RejectReasonName(e.reject));
      break;
    case TraceEventKind::kDrain:
      w.Field("wait_ms", e.wait_ms);
      w.Field("qd", e.queue_depth);
      break;
  }
  w.EndObject();
  return w.Take();
}

namespace {

std::string CsvQuote(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status AppendCsvRow(Writer& writer, const std::vector<std::string>& cells) {
  std::string line;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += CsvQuote(cells[i]);
  }
  line += '\n';
  return writer.Append(line);
}

std::string Num(double v) {
  JsonWriter w;
  w.Value(v);
  return w.Take();
}

Status ExportEventsCsv(std::span<const TraceEvent> events, Writer& writer) {
  if (Status s = AppendCsvRow(
          writer, {"ev", "t_ms", "id", "cyl", "level", "deadline_ms", "v1",
                   "v2", "vc", "rekey", "qd", "window", "seek_ms",
                   "service_ms", "response_ms", "missed", "stream", "wait_ms",
                   "reason"});
      !s.ok()) {
    return s;
  }
  for (const TraceEvent& e : events) {
    std::vector<std::string> row;
    row.emplace_back(TraceEventKindName(e.kind));
    row.push_back(Num(SimToMs(e.t)));
    row.push_back(e.has_request() ? std::to_string(e.id) : "");
    row.push_back(std::to_string(e.cylinder));
    row.push_back(std::to_string(e.level));
    row.push_back(e.deadline == kNoDeadline ? "" : Num(SimToMs(e.deadline)));
    row.push_back(Num(e.v1));
    row.push_back(Num(e.v2));
    row.push_back(Num(e.vc));
    row.push_back(e.rekey ? "1" : "0");
    row.push_back(std::to_string(e.queue_depth));
    row.push_back(Num(e.window));
    row.push_back(Num(e.seek_ms));
    row.push_back(Num(e.service_ms));
    row.push_back(Num(e.response_ms));
    row.push_back(e.missed ? "1" : "0");
    row.push_back(std::to_string(e.stream));
    row.push_back(Num(e.wait_ms));
    row.emplace_back(e.kind == TraceEventKind::kReject
                         ? RejectReasonName(e.reject)
                         : std::string_view());
    if (Status s = AppendCsvRow(writer, row); !s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace

Status Export(const RunMetrics& metrics, Writer& writer, ExportFormat format) {
  if (format == ExportFormat::kCsv) {
    return Status::InvalidArgument(
        "RunMetrics is a nested aggregate; export it as JSON");
  }
  if (Status s = writer.Append(metrics.ToJson()); !s.ok()) return s;
  return writer.Append("\n");
}

Status Export(std::span<const TraceEvent> events, Writer& writer,
              ExportFormat format) {
  switch (format) {
    case ExportFormat::kCsv:
      return ExportEventsCsv(events, writer);
    case ExportFormat::kJson:
      return Status::InvalidArgument(
          "traces export as JSONL (one event per line) or CSV");
    case ExportFormat::kJsonl:
      for (const TraceEvent& e : events) {
        if (Status s = writer.Append(TraceEventToJson(e)); !s.ok()) return s;
        if (Status s = writer.Append("\n"); !s.ok()) return s;
      }
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status Export(const TraceRecorder& recorder, Writer& writer,
              ExportFormat format) {
  const std::vector<TraceEvent> events = recorder.Events();
  return Export(std::span<const TraceEvent>(events), writer, format);
}

Status Export(const WindowedMetrics& windows, Writer& writer,
              ExportFormat format) {
  const std::vector<WindowRow> rows = windows.Rows();
  if (format == ExportFormat::kCsv) {
    if (Status s = AppendCsvRow(
            writer, {"start_ms", "arrivals", "completions", "misses",
                     "miss_rate", "mean_queue_depth", "end_queue_depth",
                     "promotions", "preemptions", "mean_seek_ms"});
        !s.ok()) {
      return s;
    }
    for (const WindowRow& r : rows) {
      if (Status s = AppendCsvRow(
              writer,
              {Num(r.start_ms), std::to_string(r.arrivals),
               std::to_string(r.completions), std::to_string(r.misses),
               Num(r.miss_rate()), Num(r.mean_queue_depth),
               std::to_string(r.end_queue_depth), std::to_string(r.promotions),
               std::to_string(r.preemptions), Num(r.mean_seek_ms())});
          !s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }
  const bool jsonl = format == ExportFormat::kJsonl;
  JsonWriter w;
  if (!jsonl) w.BeginArray();
  for (size_t i = 0; i < rows.size(); ++i) {
    const WindowRow& r = rows[i];
    w.BeginObject();
    w.Field("start_ms", r.start_ms);
    w.Field("arrivals", r.arrivals);
    w.Field("completions", r.completions);
    w.Field("misses", r.misses);
    w.Field("miss_rate", r.miss_rate());
    w.Field("mean_queue_depth", r.mean_queue_depth);
    w.Field("end_queue_depth", r.end_queue_depth);
    w.Field("promotions", r.promotions);
    w.Field("preemptions", r.preemptions);
    w.Field("mean_seek_ms", r.mean_seek_ms());
    w.EndObject();
    if (jsonl) {
      if (Status s = writer.Append(w.Take()); !s.ok()) return s;
      if (Status s = writer.Append("\n"); !s.ok()) return s;
      w = JsonWriter();
    }
  }
  if (jsonl) return Status::OK();
  w.EndArray();
  if (Status s = writer.Append(w.Take()); !s.ok()) return s;
  return writer.Append("\n");
}

Status Export(const SloMetrics& slo, Writer& writer, ExportFormat format) {
  const std::vector<SloWindowRow> rows = slo.Rows();
  if (format == ExportFormat::kCsv) {
    if (Status s = AppendCsvRow(
            writer, {"start_ms", "offered", "admitted", "rejected",
                     "rejected_rate", "rejected_load", "rejected_ring_full",
                     "shed_rate", "drains", "p50_ms", "p99_ms", "p999_ms",
                     "max_ms"});
        !s.ok()) {
      return s;
    }
    for (const SloWindowRow& r : rows) {
      if (Status s = AppendCsvRow(
              writer, {Num(r.start_ms), std::to_string(r.offered),
                       std::to_string(r.admitted), std::to_string(r.rejected),
                       std::to_string(r.rejected_rate),
                       std::to_string(r.rejected_load),
                       std::to_string(r.rejected_ring_full), Num(r.shed_rate()),
                       std::to_string(r.drains), Num(r.p50_ms), Num(r.p99_ms),
                       Num(r.p999_ms), Num(r.max_ms)});
          !s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }
  const bool jsonl = format == ExportFormat::kJsonl;
  JsonWriter w;
  if (!jsonl) w.BeginArray();
  for (const SloWindowRow& r : rows) {
    w.BeginObject();
    w.Field("start_ms", r.start_ms);
    w.Field("offered", r.offered);
    w.Field("admitted", r.admitted);
    w.Field("rejected", r.rejected);
    w.Field("rejected_rate", r.rejected_rate);
    w.Field("rejected_load", r.rejected_load);
    w.Field("rejected_ring_full", r.rejected_ring_full);
    w.Field("shed_rate", r.shed_rate());
    w.Field("drains", r.drains);
    w.Field("p50_ms", r.p50_ms);
    w.Field("p99_ms", r.p99_ms);
    w.Field("p999_ms", r.p999_ms);
    w.Field("max_ms", r.max_ms);
    w.EndObject();
    if (jsonl) {
      if (Status s = writer.Append(w.Take()); !s.ok()) return s;
      if (Status s = writer.Append("\n"); !s.ok()) return s;
      w = JsonWriter();
    }
  }
  if (jsonl) return Status::OK();
  w.EndArray();
  if (Status s = writer.Append(w.Take()); !s.ok()) return s;
  return writer.Append("\n");
}

Status Export(const TablePrinter& table, Writer& writer, ExportFormat format) {
  const std::vector<std::string>& headers = table.headers();
  if (format == ExportFormat::kCsv) {
    if (Status s = AppendCsvRow(writer, headers); !s.ok()) return s;
    for (const std::vector<std::string>& row : table.rows()) {
      if (Status s = AppendCsvRow(writer, row); !s.ok()) return s;
    }
    return Status::OK();
  }
  const bool jsonl = format == ExportFormat::kJsonl;
  JsonWriter w;
  if (!jsonl) w.BeginArray();
  for (const std::vector<std::string>& row : table.rows()) {
    w.BeginObject();
    for (size_t c = 0; c < headers.size() && c < row.size(); ++c) {
      w.Field(headers[c], row[c]);
    }
    w.EndObject();
    if (jsonl) {
      if (Status s = writer.Append(w.Take()); !s.ok()) return s;
      if (Status s = writer.Append("\n"); !s.ok()) return s;
      w = JsonWriter();
    }
  }
  if (jsonl) return Status::OK();
  w.EndArray();
  if (Status s = writer.Append(w.Take()); !s.ok()) return s;
  return writer.Append("\n");
}

void JsonlSink::OnEvent(const TraceEvent& event) {
  MutexLock lock(mu_);
  if (!status_.ok()) return;
  Status s = writer_->Append(TraceEventToJson(event));
  if (s.ok()) s = writer_->Append("\n");
  if (!s.ok()) {
    status_ = std::move(s);
    return;
  }
  ++events_written_;
}

}  // namespace obs
}  // namespace csfc
