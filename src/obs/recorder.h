// TraceRecorder: a bounded in-memory ring buffer of trace events.
//
// Records the most recent `capacity` events; older events are overwritten
// and counted in dropped(). The buffer is sized once at construction so
// recording never allocates on the hot path.
//
// Thread-compatible, deliberately unlocked: one recorder per simulator
// run (the EventSink contract). A recorder shared across parallel sweep
// points must go through obs::LockedSink — parallel_stress_test pins that
// combination under TSan.

#ifndef CSFC_OBS_RECORDER_H_
#define CSFC_OBS_RECORDER_H_

#include <cstddef>
#include <vector>

#include "obs/trace_event.h"

namespace csfc {
namespace obs {

class TraceRecorder : public EventSink {
 public:
  /// Default capacity: 64k events (~8 MB).
  static constexpr size_t kDefaultCapacity = size_t{1} << 16;

  explicit TraceRecorder(size_t capacity = kDefaultCapacity);

  void OnEvent(const TraceEvent& event) override;

  /// Events still held, oldest first. O(size) copy; intended for
  /// post-run export, not the hot path.
  std::vector<TraceEvent> Events() const;

  /// Total events ever offered.
  uint64_t total() const { return total_; }
  /// Events overwritten because the buffer wrapped.
  uint64_t dropped() const {
    return total_ > buffer_.size() ? total_ - buffer_.size() : 0;
  }
  /// Events currently held.
  size_t size() const {
    return total_ < buffer_.size() ? static_cast<size_t>(total_)
                                   : buffer_.size();
  }
  size_t capacity() const { return buffer_.size(); }

  /// Forgets all recorded events (capacity is kept).
  void Clear();

 private:
  std::vector<TraceEvent> buffer_;
  size_t next_ = 0;       // slot the next event lands in
  uint64_t total_ = 0;
};

}  // namespace obs
}  // namespace csfc

#endif  // CSFC_OBS_RECORDER_H_
