#include "obs/slo.h"

#include <algorithm>

namespace csfc {
namespace obs {

SloMetrics::SloMetrics(double window_ms)
    : window_ms_(window_ms > 0.0 ? window_ms : 100.0),
      window_span_(std::max<SimTime>(MsToSim(window_ms_), 1)) {}

void SloMetrics::Close() {
  current_.p50_ms = SimToMs(static_cast<SimTime>(window_hist_.Quantile(0.5)));
  current_.p99_ms = SimToMs(static_cast<SimTime>(window_hist_.Quantile(0.99)));
  current_.p999_ms =
      SimToMs(static_cast<SimTime>(window_hist_.Quantile(0.999)));
  current_.max_ms = SimToMs(window_hist_.max());
  closed_.push_back(current_);
}

void SloMetrics::AdvanceTo(SimTime t) {
  const int64_t index = t / window_span_;
  if (!started_) {
    started_ = true;
    current_index_ = index;
    current_.start_ms = SimToMs(current_index_ * window_span_);
    return;
  }
  while (index > current_index_) {
    Close();
    ++current_index_;
    current_ = SloWindowRow{};
    current_.start_ms = SimToMs(current_index_ * window_span_);
    window_hist_.Reset();
  }
}

void SloMetrics::OnEvent(const TraceEvent& e) {
  AdvanceTo(e.t);
  switch (e.kind) {
    case TraceEventKind::kIngest:
      ++current_.offered;
      break;
    case TraceEventKind::kAdmit:
      ++current_.admitted;
      break;
    case TraceEventKind::kReject:
      ++current_.rejected;
      switch (e.reject) {
        case RejectReason::kRate:
          ++current_.rejected_rate;
          break;
        case RejectReason::kLoad:
          ++current_.rejected_load;
          break;
        case RejectReason::kRingFull:
          ++current_.rejected_ring_full;
          break;
        case RejectReason::kNone:
          break;
      }
      break;
    case TraceEventKind::kDrain: {
      ++current_.drains;
      const SimTime wait_us = MsToSim(e.wait_ms);
      window_hist_.Add(wait_us);
      overall_.Add(wait_us);
      break;
    }
    default:
      break;
  }
}

std::vector<SloWindowRow> SloMetrics::Rows() const {
  std::vector<SloWindowRow> rows = closed_;
  if (started_) {
    SloWindowRow open = current_;
    open.p50_ms = SimToMs(static_cast<SimTime>(window_hist_.Quantile(0.5)));
    open.p99_ms = SimToMs(static_cast<SimTime>(window_hist_.Quantile(0.99)));
    open.p999_ms = SimToMs(static_cast<SimTime>(window_hist_.Quantile(0.999)));
    open.max_ms = SimToMs(window_hist_.max());
    rows.push_back(open);
  }
  return rows;
}

}  // namespace obs
}  // namespace csfc
