// The Tracer: the handle instrumented code emits through.
//
// A Tracer wraps an EventSink pointer; a null sink means tracing is
// disabled and every emission site reduces to one branch on enabled().
// That branch is the whole cost of the observability layer when it is
// off — the null-sink fast path bench_micro_hotpath verifies stays within
// noise of the uninstrumented baseline.
//
// Tracers are plain handles: copyable, no ownership of the sink. The
// simulator owns one per run (built from SimulatorConfig::trace_sink) and
// hands it to the scheduler via Scheduler::Observe(); see
// sched/scheduler.h for the lifetime contract.
//
// now(): dispatcher internals (SP promotions, ER resets) fire deep inside
// Pop()/Insert() where no DispatchContext is in scope, so the enclosing
// scheduler stamps the current simulation time on the tracer before
// delegating and the dispatcher reads it back.

#ifndef CSFC_OBS_TRACER_H_
#define CSFC_OBS_TRACER_H_

#include "obs/trace_event.h"

namespace csfc {
namespace obs {

class Tracer {
 public:
  /// Disabled tracer (no sink).
  Tracer() = default;
  /// Traces into `sink` (not owned; may be null for a disabled tracer).
  explicit Tracer(EventSink* sink) : sink_(sink) {}

  /// True when a sink is attached. Emission sites must guard on this
  /// before building a TraceEvent so the disabled path stays free.
  bool enabled() const { return sink_ != nullptr; }

  /// Forwards `event` to the sink (no-op when disabled).
  void Emit(const TraceEvent& event) {
    if (sink_ != nullptr) sink_->OnEvent(event);
  }

  /// Current simulation time for emission sites with no context of their
  /// own (see header comment).
  void set_now(SimTime now) { now_ = now; }
  SimTime now() const { return now_; }

 private:
  EventSink* sink_ = nullptr;
  SimTime now_ = 0;
};

}  // namespace obs
}  // namespace csfc

#endif  // CSFC_OBS_TRACER_H_
