#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace csfc {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Separate() {
  if (have_key_) {
    have_key_ = false;  // value follows its key; no comma
    return;
  }
  if (need_comma_) out_ += ',';
}

JsonWriter& JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separate();
  out_ += '[';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (need_comma_) out_ += ',';
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  need_comma_ = false;
  have_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view v) {
  Separate();
  out_ += '"';
  out_ += JsonEscape(v);
  out_ += '"';
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double v) {
  Separate();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no inf/nan
  } else {
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out_.append(buf, res.ptr);
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(int64_t v) {
  Separate();
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  Separate();
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

namespace {

void SkipSpace(std::string_view s, size_t* i) {
  while (*i < s.size() &&
         (s[*i] == ' ' || s[*i] == '\t' || s[*i] == '\n' || s[*i] == '\r')) {
    ++*i;
  }
}

Status Malformed(const char* what, size_t pos) {
  return Status::InvalidArgument(std::string("malformed JSON (") + what +
                                 ") at offset " + std::to_string(pos));
}

Result<std::string> ParseString(std::string_view s, size_t* i) {
  if (*i >= s.size() || s[*i] != '"') return Malformed("expected string", *i);
  ++*i;
  std::string out;
  while (*i < s.size()) {
    const char c = s[*i];
    if (c == '"') {
      ++*i;
      return out;
    }
    if (c == '\\') {
      ++*i;
      if (*i >= s.size()) break;
      const char e = s[*i];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (*i + 4 >= s.size()) return Malformed("bad \\u escape", *i);
          unsigned code = 0;
          for (int k = 1; k <= 4; ++k) {
            const char h = s[*i + k];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Malformed("bad \\u escape", *i);
          }
          // The schema is ASCII; decode BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          *i += 4;
          break;
        }
        default:
          return Malformed("unknown escape", *i);
      }
      ++*i;
    } else {
      out += c;
      ++*i;
    }
  }
  return Malformed("unterminated string", *i);
}

Result<JsonScalar> ParseScalar(std::string_view s, size_t* i) {
  SkipSpace(s, i);
  if (*i >= s.size()) return Malformed("expected value", *i);
  JsonScalar v;
  const char c = s[*i];
  if (c == '"') {
    Result<std::string> str = ParseString(s, i);
    if (!str.ok()) return str.status();
    v.type = JsonScalar::Type::kString;
    v.str = std::move(*str);
    return v;
  }
  if (c == '{' || c == '[') {
    return Malformed("nested containers not supported", *i);
  }
  if (s.compare(*i, 4, "true") == 0) {
    *i += 4;
    v.type = JsonScalar::Type::kBool;
    v.boolean = true;
    return v;
  }
  if (s.compare(*i, 5, "false") == 0) {
    *i += 5;
    v.type = JsonScalar::Type::kBool;
    v.boolean = false;
    return v;
  }
  if (s.compare(*i, 4, "null") == 0) {
    *i += 4;
    v.type = JsonScalar::Type::kNull;
    return v;
  }
  // Number.
  const char* begin = s.data() + *i;
  double num = 0.0;
  const auto res = std::from_chars(begin, s.data() + s.size(), num);
  if (res.ec != std::errc{} || res.ptr == begin) {
    return Malformed("expected number", *i);
  }
  *i += static_cast<size_t>(res.ptr - begin);
  v.type = JsonScalar::Type::kNumber;
  v.num = num;
  return v;
}

}  // namespace

Result<JsonObject> ParseFlatJsonObject(std::string_view line) {
  size_t i = 0;
  SkipSpace(line, &i);
  if (i >= line.size() || line[i] != '{') return Malformed("expected '{'", i);
  ++i;
  JsonObject obj;
  SkipSpace(line, &i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      SkipSpace(line, &i);
      Result<std::string> key = ParseString(line, &i);
      if (!key.ok()) return key.status();
      SkipSpace(line, &i);
      if (i >= line.size() || line[i] != ':') return Malformed("expected ':'", i);
      ++i;
      Result<JsonScalar> value = ParseScalar(line, &i);
      if (!value.ok()) return value.status();
      obj[std::move(*key)] = std::move(*value);
      SkipSpace(line, &i);
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return Malformed("expected ',' or '}'", i);
    }
  }
  SkipSpace(line, &i);
  if (i != line.size()) return Malformed("trailing characters", i);
  return obj;
}

}  // namespace obs
}  // namespace csfc
