#include "exp/runner.h"

namespace csfc {

Result<RunMetrics> RunSchedulerOnTrace(const SimulatorConfig& sim_config,
                                       const std::vector<Request>& trace,
                                       const SchedulerFactory& factory) {
  Result<DiskServerSimulator> sim = DiskServerSimulator::Create(sim_config);
  if (!sim.ok()) return sim.status();
  SchedulerPtr sched = factory();
  if (sched == nullptr) {
    return Status::Internal("scheduler factory returned null");
  }
  TraceReplayGenerator gen(trace);
  return sim->Run(gen, *sched);
}

double Percent(double value, double base) {
  return base == 0.0 ? 0.0 : 100.0 * value / base;
}

Result<std::vector<ComparisonRow>> ComparePolicies(
    const SimulatorConfig& sim_config, const std::vector<Request>& trace,
    const std::vector<SchedulerEntry>& entries) {
  std::vector<ComparisonRow> rows;
  rows.reserve(entries.size());
  for (const SchedulerEntry& entry : entries) {
    Result<RunMetrics> m =
        RunSchedulerOnTrace(sim_config, trace, entry.factory);
    if (!m.ok()) return m.status();
    rows.push_back(ComparisonRow{entry.label, std::move(*m)});
  }
  return rows;
}

}  // namespace csfc
