#include "exp/runner.h"

#include <optional>
#include <utility>

#include "common/thread_pool.h"

namespace csfc {

Result<RunMetrics> RunSchedulerOnTrace(const SimulatorConfig& sim_config,
                                       const std::vector<Request>& trace,
                                       const SchedulerFactory& factory) {
  Result<DiskServerSimulator> sim = DiskServerSimulator::Create(sim_config);
  if (!sim.ok()) return sim.status();
  SchedulerPtr sched = factory();
  if (sched == nullptr) {
    return Status::Internal("scheduler factory returned null");
  }
  TraceReplayGenerator gen(trace);
  return sim->Run(gen, *sched);
}

double Percent(double value, double base) {
  return base == 0.0 ? 0.0 : 100.0 * value / base;
}

Result<std::vector<RunMetrics>> RunParallel(const std::vector<RunPoint>& points,
                                            unsigned num_threads,
                                            RunProgress* progress) {
  std::vector<std::optional<RunMetrics>> slots(points.size());
  std::vector<Status> errors(points.size());
  ParallelFor(points.size(), num_threads, [&](size_t i) {
    // The abort gate sits before any per-point work: a point either runs
    // in full or is skipped entirely, so `completed` counts whole
    // simulations and a skipped point never touches its result slot.
    if (progress != nullptr) {
      if (progress->aborted()) return;
      progress->started.fetch_add(1, std::memory_order_relaxed);
    }
    const RunPoint& p = points[i];
    if (p.trace == nullptr) {
      errors[i] = Status::InvalidArgument("RunPoint.trace is null");
    } else {
      Result<RunMetrics> m =
          RunSchedulerOnTrace(p.sim_config, *p.trace, p.factory);
      if (m.ok()) {
        slots[i] = std::move(*m);
      } else {
        errors[i] = m.status();
      }
    }
    if (progress != nullptr) {
      progress->completed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Deterministic error reporting: the lowest-index failure wins, and a
  // point failure outranks the abort (aborting must not mask an error).
  for (const Status& s : errors) {
    if (!s.ok()) return s;
  }
  if (progress != nullptr && progress->aborted()) {
    return Status::Cancelled(
        "sweep aborted: " +
        std::to_string(progress->completed.load(std::memory_order_relaxed)) +
        " of " + std::to_string(points.size()) + " points completed");
  }
  std::vector<RunMetrics> results;
  results.reserve(slots.size());
  for (std::optional<RunMetrics>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

Result<std::vector<ComparisonRow>> ComparePolicies(
    const SimulatorConfig& sim_config, const std::vector<Request>& trace,
    const std::vector<SchedulerEntry>& entries, unsigned num_threads) {
  std::vector<RunPoint> points;
  points.reserve(entries.size());
  const TracePtr shared = ShareTrace(trace);
  for (const SchedulerEntry& entry : entries) {
    points.push_back(RunPoint{sim_config, shared, entry.factory});
  }
  Result<std::vector<RunMetrics>> metrics = RunParallel(points, num_threads);
  if (!metrics.ok()) return metrics.status();
  std::vector<ComparisonRow> rows;
  rows.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    rows.push_back(ComparisonRow{entries[i].label, std::move((*metrics)[i])});
  }
  return rows;
}

}  // namespace csfc
