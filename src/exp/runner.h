// Experiment harness: capture a workload once, replay it through any
// number of schedulers under identical conditions, and normalize metrics
// against a baseline run — the methodology behind every figure in
// Section 5/6 (priority inversion as % of FIFO, losses normalized to EDF
// or C-SCAN, etc.).
//
// Every (scheduler, workload) point is an independent simulation with its
// own simulator, scheduler instance and deterministic trace, so sweeps
// parallelize trivially: RunParallel fans a point list out across a thread
// pool and returns results ordered by point index — identical to running
// the same list serially, just faster.

#ifndef CSFC_EXP_RUNNER_H_
#define CSFC_EXP_RUNNER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace csfc {

/// Shared, immutable trace handle so parallel points can replay the same
/// workload without copying it per point.
using TracePtr = std::shared_ptr<const std::vector<Request>>;

/// Wraps a trace for sharing across points.
inline TracePtr ShareTrace(std::vector<Request> trace) {
  return std::make_shared<const std::vector<Request>>(std::move(trace));
}

/// Runs `factory`'s scheduler over a replay of `trace` on a fresh
/// simulator built from `sim_config`.
Result<RunMetrics> RunSchedulerOnTrace(const SimulatorConfig& sim_config,
                                       const std::vector<Request>& trace,
                                       const SchedulerFactory& factory);

/// Percentage helper: 100 * value / base (0 when base is 0).
double Percent(double value, double base);

/// One independent simulation point in a sweep.
struct RunPoint {
  SimulatorConfig sim_config;
  TracePtr trace;
  SchedulerFactory factory;
};

/// Shared progress/early-abort state for RunParallel. Every field is an
/// atomic — never a plain aggregate — so the cross-thread publication is
/// explicit to both ThreadSanitizer and `-Wthread-safety` (atomics need
/// no capability; a plain counter here would be the exact "shared mutable
/// aggregate" gap ROADMAP warned about). Writers are the worker threads;
/// any thread (a UI poller, a deadline watchdog) may read `started` /
/// `completed` or flip `abort` while the sweep runs.
struct RunProgress {
  // All three are relaxed by contract (rows `started` / `completed` /
  // `abort` in tools/csfc_analyze/concurrency.toml): they publish no
  // data — results travel through ThreadPool::Wait's mutex.
  /// Points whose simulation has begun (monotonic, <= points.size()).
  std::atomic<size_t> started{0};
  /// Points whose simulation has finished, success or failure (monotonic,
  /// <= started).
  std::atomic<size_t> completed{0};
  /// Set to stop the sweep early: points not yet started are skipped and
  /// RunParallel returns Status::Cancelled. Points already in flight run
  /// to completion (a simulation point is not interruptible mid-run).
  std::atomic<bool> abort{false};

  void RequestAbort() { abort.store(true, std::memory_order_relaxed); }
  bool aborted() const { return abort.load(std::memory_order_relaxed); }
};

/// Runs every point, fanning them out across `num_threads` workers (0 =
/// one per hardware thread, 1 = serial on the calling thread). Results are
/// ordered by point index and identical to a serial run — the threading
/// only reassigns which core executes which point. On failure the error of
/// the lowest-index failing point is returned.
///
/// Concurrency contract: each point's simulator/scheduler/RNG are built
/// and destroyed on the worker that runs it; the only cross-thread state
/// is the annotated ThreadPool queue, the per-point result slots (disjoint
/// indices, published by ThreadPool::Wait's release/acquire on the pool
/// mutex), the optional `progress` atomics, and whatever
/// `sim_config.trace_sink` points at — which must therefore be null,
/// per-point, or a lockable sink (obs::LockedSink / JsonlSink).
///
/// `progress` (optional, borrowed, must outlive the call) publishes
/// started/completed counts while the sweep runs and accepts an abort
/// request from any thread. On abort, points not yet started are skipped
/// and the call returns Status::Cancelled (point errors that occurred
/// before the abort still win, lowest index first, so an abort can never
/// mask a failure).
CSFC_DETERMINISTIC
Result<std::vector<RunMetrics>> RunParallel(const std::vector<RunPoint>& points,
                                            unsigned num_threads = 0,
                                            RunProgress* progress = nullptr);

/// A labelled scheduler entry for comparison sweeps.
struct SchedulerEntry {
  std::string label;
  SchedulerFactory factory;
};

/// Result of ComparePolicies for one entry.
struct ComparisonRow {
  std::string label;
  RunMetrics metrics;
};

/// Runs every entry over the same trace, `num_threads` entries at a time
/// (0 = one per hardware thread, 1 = serial). Row order always matches
/// `entries`.
Result<std::vector<ComparisonRow>> ComparePolicies(
    const SimulatorConfig& sim_config, const std::vector<Request>& trace,
    const std::vector<SchedulerEntry>& entries, unsigned num_threads = 1);

}  // namespace csfc

#endif  // CSFC_EXP_RUNNER_H_
