// Experiment harness: capture a workload once, replay it through any
// number of schedulers under identical conditions, and normalize metrics
// against a baseline run — the methodology behind every figure in
// Section 5/6 (priority inversion as % of FIFO, losses normalized to EDF
// or C-SCAN, etc.).

#ifndef CSFC_EXP_RUNNER_H_
#define CSFC_EXP_RUNNER_H_

#include <string>
#include <vector>

#include "sched/scheduler.h"
#include "sim/simulator.h"
#include "workload/trace.h"

namespace csfc {

/// Runs `factory`'s scheduler over a replay of `trace` on a fresh
/// simulator built from `sim_config`.
Result<RunMetrics> RunSchedulerOnTrace(const SimulatorConfig& sim_config,
                                       const std::vector<Request>& trace,
                                       const SchedulerFactory& factory);

/// Percentage helper: 100 * value / base (0 when base is 0).
double Percent(double value, double base);

/// A labelled scheduler entry for comparison sweeps.
struct SchedulerEntry {
  std::string label;
  SchedulerFactory factory;
};

/// Result of ComparePolicies for one entry.
struct ComparisonRow {
  std::string label;
  RunMetrics metrics;
};

/// Runs every entry over the same trace.
Result<std::vector<ComparisonRow>> ComparePolicies(
    const SimulatorConfig& sim_config, const std::vector<Request>& trace,
    const std::vector<SchedulerEntry>& entries);

}  // namespace csfc

#endif  // CSFC_EXP_RUNNER_H_
