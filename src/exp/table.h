// Plain-text table and CSV emission for the bench binaries: each figure
// binary prints the same rows/series the paper plots.

#ifndef CSFC_EXP_TABLE_H_
#define CSFC_EXP_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace csfc {

/// Column-aligned plain-text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Renders with aligned columns and a header rule.
  std::string ToString() const;

  /// Prints ToString() to stdout.
  void Print() const;

  /// Writes the table as CSV to `path` (thin wrapper over
  /// obs::Export(table, FileWriter, kCsv)).
  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.34").
std::string FormatDouble(double v, int precision = 2);

}  // namespace csfc

#endif  // CSFC_EXP_TABLE_H_
